// Tests of direct permutation routing and the Lemma V.1 lower-bound
// witness.
#include "sort/permute.hpp"

#include "spatial/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

namespace scm {
namespace {

TEST(Permute, AppliesArbitraryPermutations) {
  std::mt19937_64 rng(2);
  for (index_t n : {1, 4, 16, 100, 256}) {
    std::vector<index_t> perm(static_cast<size_t>(n));
    std::iota(perm.begin(), perm.end(), index_t{0});
    std::shuffle(perm.begin(), perm.end(), rng);
    std::vector<int> v(static_cast<size_t>(n));
    std::iota(v.begin(), v.end(), 0);
    Machine m;
    auto a = GridArray<int>::from_values_square({0, 0}, v);
    GridArray<int> out = permute(m, a, perm);
    for (index_t i = 0; i < n; ++i) {
      EXPECT_EQ(out[perm[static_cast<size_t>(i)]].value, v[static_cast<size_t>(i)]);
    }
  }
}

TEST(Permute, IdentityIsFree) {
  std::vector<index_t> perm(64);
  std::iota(perm.begin(), perm.end(), index_t{0});
  Machine m;
  GridArray<int> a(Rect{0, 0, 8, 8}, Layout::kRowMajor, 64);
  (void)permute(m, a, perm);
  EXPECT_EQ(m.metrics().energy, 0);
}

TEST(Permute, EnergyEqualsSumOfDistances) {
  std::mt19937_64 rng(5);
  std::vector<index_t> perm(256);
  std::iota(perm.begin(), perm.end(), index_t{0});
  std::shuffle(perm.begin(), perm.end(), rng);
  GridArray<int> a(Rect{0, 0, 16, 16}, Layout::kRowMajor, 256);
  Machine m;
  (void)permute(m, a, perm);
  EXPECT_EQ(m.metrics().energy, permutation_energy_lower_bound(a, perm));
}

TEST(ReversalPermutation, WitnessesTheLowerBound) {
  // Lemma V.1: reversing an n-element row-major layout costs
  // Omega(n^{3/2}): the first h/3 rows travel at least h/3 each.
  for (index_t side : {8, 16, 32, 64}) {
    const index_t n = side * side;
    GridArray<int> a(Rect{0, 0, side, side}, Layout::kRowMajor, n);
    const std::vector<index_t> perm = reversal_permutation(n);
    const index_t lb = permutation_energy_lower_bound(a, perm);
    const double floor_bound =
        (static_cast<double>(n) / 3.0) * (static_cast<double>(side) / 3.0);
    EXPECT_GE(static_cast<double>(lb), floor_bound) << side;
    // And the direct routing achieves O(n^{3/2}).
    EXPECT_LE(static_cast<double>(lb),
              2.0 * std::pow(static_cast<double>(n), 1.5));
  }
}

TEST(ReversalPermutation, NormalizedEnergyConverges) {
  auto normalized = [](index_t side) {
    const index_t n = side * side;
    GridArray<int> a(Rect{0, 0, side, side}, Layout::kRowMajor, n);
    return static_cast<double>(permutation_energy_lower_bound(
               a, reversal_permutation(n))) /
           std::pow(static_cast<double>(n), 1.5);
  };
  EXPECT_NEAR(normalized(32), normalized(128), 0.05);
}

}  // namespace
}  // namespace scm
