// Tests of histogramming / counting sort over the sort + segmented-scan
// pipeline.
#include "sort/histogram.hpp"

#include "spatial/rng.hpp"

#include <gtest/gtest.h>

namespace scm {
namespace {

TEST(Histogram, CountsRandomKeys) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    Machine m;
    const index_t n = 500;
    const index_t buckets = 16;
    auto keys = random_ints(seed, static_cast<size_t>(n), 0, buckets - 1);
    std::vector<index_t> v(keys.begin(), keys.end());
    auto a = GridArray<index_t>::from_values_square({0, 0}, v,
                                                    Layout::kRowMajor);
    GridArray<index_t> counts = histogram(m, a, buckets);
    std::vector<index_t> ref(static_cast<size_t>(buckets), 0);
    for (index_t k : v) ++ref[static_cast<size_t>(k)];
    EXPECT_EQ(counts.values(), ref) << seed;
  }
}

TEST(Histogram, EmptyInputAndMissingBuckets) {
  Machine m;
  GridArray<index_t> empty(Rect{0, 0, 1, 1}, Layout::kRowMajor, 0);
  GridArray<index_t> counts = histogram(m, empty, 4);
  EXPECT_EQ(counts.values(), (std::vector<index_t>{0, 0, 0, 0}));

  // Keys that skip buckets: the skipped buckets stay zero.
  auto a = GridArray<index_t>::from_values_square(
      {0, 0}, std::vector<index_t>{3, 3, 0, 3});
  GridArray<index_t> c2 = histogram(m, a, 5);
  EXPECT_EQ(c2.values(), (std::vector<index_t>{1, 0, 0, 3, 0}));
}

TEST(Histogram, SingleKeyDominates) {
  Machine m;
  std::vector<index_t> v(300, 7);
  auto a = GridArray<index_t>::from_values_square({0, 0}, v);
  GridArray<index_t> counts = histogram(m, a, 8);
  EXPECT_EQ(counts[7].value, 300);
  for (index_t b = 0; b < 7; ++b) EXPECT_EQ(counts[b].value, 0);
}

TEST(Histogram, BucketGridSitsRightOfTheInput) {
  Machine m;
  auto a = GridArray<index_t>::from_values_square(
      {0, 0}, std::vector<index_t>{0, 1, 2, 3});
  GridArray<index_t> counts = histogram(m, a, 4);
  EXPECT_GE(counts.region().col0, a.region().col0 + a.region().cols);
}

TEST(CountingSort, SortsSmallIntegerKeys) {
  Machine m;
  auto keys = random_ints(9, 200, 0, 6);
  std::vector<index_t> v(keys.begin(), keys.end());
  auto a = GridArray<index_t>::from_values_square({0, 0}, v,
                                                  Layout::kRowMajor);
  GridArray<index_t> sorted = counting_sort(m, a, 7);
  auto ref = v;
  std::sort(ref.begin(), ref.end());
  EXPECT_EQ(sorted.values(), ref);
}

}  // namespace
}  // namespace scm
