// Tests of the bench-harness utilities: exponent fitting, series
// registration and claim checking, table printing, CLI parsing, and the
// COO generators.
#include "spatial/parallel.hpp"
#include "spmv/generators.hpp"
#include "util/cli.hpp"
#include "util/fit.hpp"
#include "util/json.hpp"
#include "util/profile_session.hpp"
#include "util/series.hpp"
#include "util/table.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace scm {
namespace {

TEST(Fit, RecoversExactPowerLaw) {
  std::vector<double> n;
  std::vector<double> cost;
  for (double x : {64.0, 256.0, 1024.0, 4096.0}) {
    n.push_back(x);
    cost.push_back(7.5 * std::pow(x, 1.5));
  }
  const util::PowerFit fit = util::fit_power_law(n, cost);
  EXPECT_NEAR(fit.exponent, 1.5, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-9);
  EXPECT_TRUE(util::exponent_matches(fit, 1.5, 0.01));
  EXPECT_FALSE(util::exponent_matches(fit, 1.0, 0.1));
}

TEST(Fit, RecoversPolylogShape) {
  std::vector<double> n;
  std::vector<double> cost;
  for (double x : {256.0, 1024.0, 4096.0, 16384.0}) {
    n.push_back(x);
    cost.push_back(3.0 * std::pow(std::log2(x), 3.0));
  }
  const util::PowerFit fit = util::fit_polylog(n, cost);
  EXPECT_NEAR(fit.exponent, 3.0, 1e-9);
}

TEST(Fit, DegenerateInputsAreSafe) {
  EXPECT_EQ(util::fit_power_law({}, {}).exponent, 0.0);
  EXPECT_EQ(util::fit_power_law({4.0}, {2.0}).exponent, 0.0);
  const util::PowerFit fit =
      util::fit_power_law({1.0, 2.0, 0.0}, {3.0, 6.0, -1.0});
  EXPECT_NEAR(fit.exponent, 1.0, 1e-9);  // non-positive points are dropped
  EXPECT_TRUE(fit.valid);
}

TEST(Fit, DegenerateFitsAreInvalidAndNeverMatch) {
  // Zero points, one point, points with non-positive cost, and points
  // with zero spread in n all produce exponent 0 — which previously
  // satisfied every upper-bound claim (fit.exponent < expected). The
  // valid flag marks them as carrying no shape information.
  const util::PowerFit empty = util::fit_power_law({}, {});
  const util::PowerFit single = util::fit_power_law({4.0}, {2.0});
  const util::PowerFit zeros =
      util::fit_power_law({64.0, 256.0}, {0.0, 0.0});
  const util::PowerFit no_spread =
      util::fit_power_law({8.0, 8.0}, {1.0, 2.0});
  for (const util::PowerFit* fit : {&empty, &single, &zeros, &no_spread}) {
    EXPECT_FALSE(fit->valid);
    EXPECT_EQ(fit->exponent, 0.0);
    // Even an arbitrarily generous tolerance must not match.
    EXPECT_FALSE(util::exponent_matches(*fit, 0.0, 100.0));
  }
  EXPECT_FALSE(util::fit_polylog({4.0}, {2.0}).valid);
}

TEST(Fit, DescribeProducesReadableStrings) {
  const util::PowerFit fit{1.52, 0.0, 0.999, true};
  EXPECT_NE(util::describe_power(fit).find("n^1.52"), std::string::npos);
  EXPECT_NE(util::describe_polylog(fit).find("(log n)^1.52"),
            std::string::npos);
  // Invalid fits say so instead of rendering a meaningless n^0.
  const util::PowerFit invalid{};
  EXPECT_NE(util::describe_power(invalid).find("no fit"), std::string::npos);
}

TEST(Series, RegistryKeepsSamplesSortedAndDeduplicatedByN) {
  // Points arrive in registration order, not size order; the registry
  // guarantees ascending n with same-n overwrites so tables, fits, and
  // ratio rows never depend on benchmark registration order.
  auto& reg = util::SeriesRegistry::instance();
  Metrics a;
  a.energy = 10;
  Metrics b;
  b.energy = 20;
  Metrics c;
  c.energy = 30;
  Metrics b2;
  b2.energy = 25;
  reg.add("test_series_order", 1024.0, b);
  reg.add("test_series_order", 256.0, a);
  reg.add("test_series_order", 4096.0, c);
  reg.add("test_series_order", 1024.0, b2);  // dedup: overwrite, not append
  const auto& samples = reg.series("test_series_order");
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].n, 256.0);
  EXPECT_EQ(samples[1].n, 1024.0);
  EXPECT_EQ(samples[2].n, 4096.0);
  EXPECT_EQ(samples[1].metrics.energy, 25);
  EXPECT_TRUE(reg.series("never_registered").empty());
}

TEST(Series, UnknownMetricNamesAreRejected) {
  EXPECT_TRUE(util::known_metric("energy"));
  EXPECT_TRUE(util::known_metric("depth"));
  EXPECT_TRUE(util::known_metric("distance"));
  EXPECT_TRUE(util::known_metric("messages"));
  EXPECT_FALSE(util::known_metric("mesages"));  // the typo that motivated this
  EXPECT_FALSE(util::known_metric(""));
#ifdef NDEBUG
  // In release builds the assert is compiled out; the NaN return can
  // never satisfy a claim comparison.
  Metrics m;
  m.messages = 7;
  EXPECT_TRUE(std::isnan(util::metric_value(m, "mesages")));
#endif
}

TEST(Series, PrintSeriesMarksDegenerateFitsInconclusive) {
  // A series whose metric has < 2 positive points must not PASS any
  // claim — the fit is degenerate, so the claim is INCONCLUSIVE.
  auto& reg = util::SeriesRegistry::instance();
  Metrics zero;  // energy 0 at both sizes: zero usable log-log points
  reg.add("test_series_degenerate", 256.0, zero);
  reg.add("test_series_degenerate", 1024.0, zero);
  ::testing::internal::CaptureStdout();
  util::print_series("degenerate", "test_series_degenerate",
                     {{"energy", false, 1.0, 0.1, "Theta(n)"},
                      {"depth", true, 1.0, 0.25, "O(log n)"}});
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("INCONCLUSIVE"), std::string::npos);
  EXPECT_EQ(out.find("PASS"), std::string::npos);
}

TEST(Series, PrintSeriesFailsUnknownMetricClaimsLoudly) {
  auto& reg = util::SeriesRegistry::instance();
  Metrics m;
  m.energy = 100;
  reg.add("test_series_typo", 256.0, m);
  m.energy = 400;
  reg.add("test_series_typo", 1024.0, m);
  ::testing::internal::CaptureStdout();
  util::print_series("typo", "test_series_typo",
                     {{"enregy", false, 1.0, 0.1, "Theta(n)"}});
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("unknown metric"), std::string::npos);
  EXPECT_NE(out.find("FAIL"), std::string::npos);
  EXPECT_EQ(out.find("PASS"), std::string::npos);
}

TEST(Table, AlignsColumnsAndCounts) {
  util::Table t({"a", "bbbb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  const std::string s = t.str();
  EXPECT_NE(s.find("a    bbbb"), std::string::npos);
  EXPECT_NE(s.find("333"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(util::fmt_count(1234567), "1,234,567");
  EXPECT_EQ(util::fmt_count(0), "0");
  EXPECT_EQ(util::fmt_count(-42000), "-42,000");
  EXPECT_EQ(util::fmt_double(3.14159, 3), "3.14");
}

TEST(Cli, ParsesFlagsInBothForms) {
  // "--name=value", "--name value", and a bare trailing "--flag".
  const char* argv[] = {"prog", "--n=128", "--seed", "7", "--flag"};
  util::Cli cli(5, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("n", 0), 128);
  EXPECT_EQ(cli.get_int("seed", 0), 7);
  EXPECT_TRUE(cli.has("flag"));
  EXPECT_EQ(cli.get("flag", ""), "true");
  EXPECT_EQ(cli.get_int("missing", 42), 42);
  EXPECT_EQ(cli.get_double("missing", 2.5), 2.5);
  EXPECT_FALSE(cli.has("positional"));
}

TEST(Cli, WarnUnknownSuggestsTheIntendedFlag) {
  // `--profle` is a typo of the queried `--profile`; it must be reported
  // with the suggestion instead of failing silently.
  const char* argv[] = {"prog", "--profle=out.json", "--n=8"};
  util::Cli cli(3, const_cast<char**>(argv));
  EXPECT_EQ(cli.get("profile", ""), "");
  EXPECT_EQ(cli.get_int("n", 0), 8);
  std::ostringstream os;
  EXPECT_EQ(cli.warn_unknown(os), 1);
  EXPECT_NE(os.str().find("unknown flag --profle"), std::string::npos);
  EXPECT_NE(os.str().find("did you mean --profile"), std::string::npos);
}

TEST(Cli, WarnUnknownIsSilentWhenEveryFlagWasQueried) {
  const char* argv[] = {"prog", "--profile=a.json", "--trace-json=b.json"};
  util::Cli cli(3, const_cast<char**>(argv));
  (void)cli.get("profile", "");
  (void)cli.get("trace-json", "");
  std::ostringstream os;
  EXPECT_EQ(cli.warn_unknown(os), 0);
  EXPECT_TRUE(os.str().empty());
}

TEST(Cli, WarnUnknownExemptsBenchmarkFlags) {
  // google-benchmark parses --benchmark_* itself; the Cli never sees
  // lookups for them but must not cry wolf.
  const char* argv[] = {"prog", "--benchmark_filter=BM_Scan",
                        "--benchmark_min_time=0.01", "--mystery=1"};
  util::Cli cli(4, const_cast<char**>(argv));
  std::ostringstream os;
  EXPECT_EQ(cli.warn_unknown(os), 1);
  EXPECT_NE(os.str().find("--mystery"), std::string::npos);
  EXPECT_EQ(os.str().find("benchmark"), std::string::npos);
}

TEST(ProfileSessionFlags, ThreadsAndTileConfigureTheParallelEngine) {
  const parallel::Config saved = parallel::config();
  {
    const char* argv[] = {"prog", "--threads=2", "--tile=16x8"};
    util::Cli cli(3, const_cast<char**>(argv));
    const util::ProfileSession session(cli);
    // Parallel flags alone don't turn on profiling artifacts...
    EXPECT_FALSE(session.active());
    // ...but they install the engine: 2 workers, 16-column x 8-row tiles.
    EXPECT_EQ(parallel::config().threads, 2);
    EXPECT_EQ(parallel::config().tile_cols, 16);
    EXPECT_EQ(parallel::config().tile_rows, 8);
    EXPECT_NE(parallel::engine(), nullptr);
    // Both flags are queried, so warn_unknown has nothing to report.
    std::ostringstream os;
    EXPECT_EQ(cli.warn_unknown(os), 0) << os.str();
  }
  parallel::configure(saved);
}

TEST(ProfileSessionFlags, DefaultStaysScalarAndBadTileIsIgnored) {
  const parallel::Config saved = parallel::config();
  {
    const char* argv[] = {"prog"};
    util::Cli cli(1, const_cast<char**>(argv));
    const util::ProfileSession session(cli);
    EXPECT_EQ(parallel::config(), saved);  // no flags: configuration kept
  }
  {
    const char* argv[] = {"prog", "--tile=bogus"};
    util::Cli cli(2, const_cast<char**>(argv));
    const util::ProfileSession session(cli);  // warns on stderr, ignores
    EXPECT_EQ(parallel::config().tile_rows, saved.tile_rows);
    EXPECT_EQ(parallel::config().tile_cols, saved.tile_cols);
  }
  parallel::configure(saved);
}

TEST(Json, ParsesTheValueGrammar) {
  const auto doc = util::json::parse(
      R"({"a": [1, 2.5, -3e2], "b": {"nested": true}, "s": "x\ny",)"
      R"( "null": null, "f": false})");
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  const util::json::Value* a = doc->find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_EQ(a->array[0].number, 1.0);
  EXPECT_EQ(a->array[1].number, 2.5);
  EXPECT_EQ(a->array[2].number, -300.0);
  EXPECT_TRUE(doc->find("b")->find("nested")->boolean);
  EXPECT_EQ(doc->find("s")->string, "x\ny");
  EXPECT_EQ(doc->find("null")->kind, util::json::Value::Kind::kNull);
  EXPECT_FALSE(doc->find("f")->boolean);
  EXPECT_EQ(doc->find("absent"), nullptr);
}

TEST(Json, DecodesEscapesIncludingUnicode) {
  // é is é (2-byte UTF-8), € is € (3-byte UTF-8).
  const auto doc =
      util::json::parse("[\"A\\u00e9\\u20ac\", \"\\t\\\"\\\\\"]");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->array[0].string, "A\xc3\xa9\xe2\x82\xac");
  EXPECT_EQ(doc->array[1].string, "\t\"\\");
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_FALSE(util::json::parse("").has_value());
  EXPECT_FALSE(util::json::parse("{").has_value());
  EXPECT_FALSE(util::json::parse("[1,]").has_value());
  EXPECT_FALSE(util::json::parse(R"({"a":1} trailing)").has_value());
  EXPECT_FALSE(util::json::parse(R"("unterminated)").has_value());
  EXPECT_FALSE(util::json::parse("{'single':1}").has_value());
  EXPECT_FALSE(util::json::parse("nul").has_value());
}

TEST(Generators, ProduceValidMatricesOfTheRightShape) {
  const CooMatrix u = random_uniform_matrix(32, 100, 1);
  EXPECT_TRUE(u.valid());
  EXPECT_EQ(u.nnz(), 100);

  const CooMatrix b = banded_matrix(16, 2, 2);
  EXPECT_TRUE(b.valid());
  for (const Triple& t : b.entries()) {
    EXPECT_LE(std::abs(t.row - t.col), 2);
  }

  const CooMatrix d = diagonal_matrix({1.0, 2.0, 3.0});
  EXPECT_EQ(d.nnz(), 3);
  for (const Triple& t : d.entries()) EXPECT_EQ(t.row, t.col);

  const CooMatrix p = power_law_matrix(64, 16, 1.0, 3);
  EXPECT_TRUE(p.valid());
  EXPECT_GE(p.nnz(), 64);  // every row gets >= 1 entry

  const CooMatrix poisson = poisson2d_matrix(5);
  EXPECT_TRUE(poisson.valid());
  EXPECT_EQ(poisson.n_rows(), 25);
  EXPECT_EQ(poisson.nnz(), 25 + 2 * 2 * 5 * 4);  // diag + 4 neighbor bands
}

TEST(Generators, PoissonIsSymmetric) {
  const CooMatrix a = poisson2d_matrix(4);
  // Check symmetry through reference multiplication: <Ax, y> == <x, Ay>.
  std::vector<double> x(16), y(16);
  for (int i = 0; i < 16; ++i) {
    x[static_cast<size_t>(i)] = std::sin(i + 1.0);
    y[static_cast<size_t>(i)] = std::cos(i * 2.0);
  }
  const auto ax = a.multiply_reference(x);
  const auto ay = a.multiply_reference(y);
  double lhs = 0, rhs = 0;
  for (int i = 0; i < 16; ++i) {
    lhs += ax[static_cast<size_t>(i)] * y[static_cast<size_t>(i)];
    rhs += x[static_cast<size_t>(i)] * ay[static_cast<size_t>(i)];
  }
  EXPECT_NEAR(lhs, rhs, 1e-9);
}

}  // namespace
}  // namespace scm
