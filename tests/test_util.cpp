// Tests of the bench-harness utilities: exponent fitting, table printing,
// CLI parsing, and the COO generators.
#include "spmv/generators.hpp"
#include "util/cli.hpp"
#include "util/fit.hpp"
#include "util/table.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace scm {
namespace {

TEST(Fit, RecoversExactPowerLaw) {
  std::vector<double> n;
  std::vector<double> cost;
  for (double x : {64.0, 256.0, 1024.0, 4096.0}) {
    n.push_back(x);
    cost.push_back(7.5 * std::pow(x, 1.5));
  }
  const util::PowerFit fit = util::fit_power_law(n, cost);
  EXPECT_NEAR(fit.exponent, 1.5, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-9);
  EXPECT_TRUE(util::exponent_matches(fit, 1.5, 0.01));
  EXPECT_FALSE(util::exponent_matches(fit, 1.0, 0.1));
}

TEST(Fit, RecoversPolylogShape) {
  std::vector<double> n;
  std::vector<double> cost;
  for (double x : {256.0, 1024.0, 4096.0, 16384.0}) {
    n.push_back(x);
    cost.push_back(3.0 * std::pow(std::log2(x), 3.0));
  }
  const util::PowerFit fit = util::fit_polylog(n, cost);
  EXPECT_NEAR(fit.exponent, 3.0, 1e-9);
}

TEST(Fit, DegenerateInputsAreSafe) {
  EXPECT_EQ(util::fit_power_law({}, {}).exponent, 0.0);
  EXPECT_EQ(util::fit_power_law({4.0}, {2.0}).exponent, 0.0);
  const util::PowerFit fit =
      util::fit_power_law({1.0, 2.0, 0.0}, {3.0, 6.0, -1.0});
  EXPECT_NEAR(fit.exponent, 1.0, 1e-9);  // non-positive points are dropped
}

TEST(Fit, DescribeProducesReadableStrings) {
  const util::PowerFit fit{1.52, 0.0, 0.999};
  EXPECT_NE(util::describe_power(fit).find("n^1.52"), std::string::npos);
  EXPECT_NE(util::describe_polylog(fit).find("(log n)^1.52"),
            std::string::npos);
}

TEST(Table, AlignsColumnsAndCounts) {
  util::Table t({"a", "bbbb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  const std::string s = t.str();
  EXPECT_NE(s.find("a    bbbb"), std::string::npos);
  EXPECT_NE(s.find("333"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(util::fmt_count(1234567), "1,234,567");
  EXPECT_EQ(util::fmt_count(0), "0");
  EXPECT_EQ(util::fmt_count(-42000), "-42,000");
  EXPECT_EQ(util::fmt_double(3.14159, 3), "3.14");
}

TEST(Cli, ParsesFlagsInBothForms) {
  // "--name=value", "--name value", and a bare trailing "--flag".
  const char* argv[] = {"prog", "--n=128", "--seed", "7", "--flag"};
  util::Cli cli(5, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("n", 0), 128);
  EXPECT_EQ(cli.get_int("seed", 0), 7);
  EXPECT_TRUE(cli.has("flag"));
  EXPECT_EQ(cli.get("flag", ""), "true");
  EXPECT_EQ(cli.get_int("missing", 42), 42);
  EXPECT_EQ(cli.get_double("missing", 2.5), 2.5);
  EXPECT_FALSE(cli.has("positional"));
}

TEST(Generators, ProduceValidMatricesOfTheRightShape) {
  const CooMatrix u = random_uniform_matrix(32, 100, 1);
  EXPECT_TRUE(u.valid());
  EXPECT_EQ(u.nnz(), 100);

  const CooMatrix b = banded_matrix(16, 2, 2);
  EXPECT_TRUE(b.valid());
  for (const Triple& t : b.entries()) {
    EXPECT_LE(std::abs(t.row - t.col), 2);
  }

  const CooMatrix d = diagonal_matrix({1.0, 2.0, 3.0});
  EXPECT_EQ(d.nnz(), 3);
  for (const Triple& t : d.entries()) EXPECT_EQ(t.row, t.col);

  const CooMatrix p = power_law_matrix(64, 16, 1.0, 3);
  EXPECT_TRUE(p.valid());
  EXPECT_GE(p.nnz(), 64);  // every row gets >= 1 entry

  const CooMatrix poisson = poisson2d_matrix(5);
  EXPECT_TRUE(poisson.valid());
  EXPECT_EQ(poisson.n_rows(), 25);
  EXPECT_EQ(poisson.nnz(), 25 + 2 * 2 * 5 * 4);  // diag + 4 neighbor bands
}

TEST(Generators, PoissonIsSymmetric) {
  const CooMatrix a = poisson2d_matrix(4);
  // Check symmetry through reference multiplication: <Ax, y> == <x, Ay>.
  std::vector<double> x(16), y(16);
  for (int i = 0; i < 16; ++i) {
    x[static_cast<size_t>(i)] = std::sin(i + 1.0);
    y[static_cast<size_t>(i)] = std::cos(i * 2.0);
  }
  const auto ax = a.multiply_reference(x);
  const auto ay = a.multiply_reference(y);
  double lhs = 0, rhs = 0;
  for (int i = 0; i < 16; ++i) {
    lhs += ax[static_cast<size_t>(i)] * y[static_cast<size_t>(i)];
    rhs += x[static_cast<size_t>(i)] * ay[static_cast<size_t>(i)];
  }
  EXPECT_NEAR(lhs, rhs, 1e-9);
}

}  // namespace
}  // namespace scm
