// Unit tests for the sharded parallel execution engine
// (src/spatial/parallel.*): tiling arithmetic, deterministic shard-merge,
// engine-vs-serial bit-identity, the inline independence guard's safe
// downgrade, and the sharded observability sinks against their serial
// counterparts. The end-to-end three-way proof over every Table-1
// algorithm lives in tests/test_bulk_equivalence.cpp; these tests pin the
// individual mechanisms.
#include "spatial/parallel.hpp"

#include "core/scm.hpp"
#include "spatial/bulk_ab.hpp"
#include "spatial/congestion.hpp"
#include "spatial/geometry.hpp"
#include "spatial/independence.hpp"
#include "spatial/machine.hpp"
#include "spatial/phase.hpp"
#include "spatial/trace.hpp"
#include "spatial/validate.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>
#include <numeric>
#include <random>
#include <span>
#include <string>
#include <vector>

namespace scm {
namespace {

using parallel::BulkAggregate;
using parallel::Config;
using parallel::ScopedParallelEngine;
using parallel::TileCoord;
using parallel::Tiling;

Config small_config(int threads, index_t tile_rows, index_t tile_cols) {
  Config cfg;
  cfg.threads = threads;
  cfg.tile_rows = tile_rows;
  cfg.tile_cols = tile_cols;
  cfg.min_parallel_batch = 1;
  return cfg;
}

// ---- Tiling ---------------------------------------------------------------

TEST(ParallelTiling, FloorDivisionIncludingNegativeCoords) {
  const Tiling t(8, 8, 4);
  EXPECT_EQ(t.tile_of({0, 0}), (TileCoord{0, 0}));
  EXPECT_EQ(t.tile_of({7, 7}), (TileCoord{0, 0}));
  EXPECT_EQ(t.tile_of({8, 0}), (TileCoord{1, 0}));
  EXPECT_EQ(t.tile_of({0, 15}), (TileCoord{0, 1}));
  // Floor division, not truncation: cell (-1,-1) is in tile (-1,-1).
  EXPECT_EQ(t.tile_of({-1, -1}), (TileCoord{-1, -1}));
  EXPECT_EQ(t.tile_of({-8, -9}), (TileCoord{-1, -2}));
  EXPECT_EQ(t.tile_of({-9, 3}), (TileCoord{-2, 0}));
}

TEST(ParallelTiling, BandHelpersAndCellIndex) {
  const Tiling t(8, 8, 4);
  EXPECT_EQ(t.next_row_band(0), 8);
  EXPECT_EQ(t.next_row_band(7), 8);
  EXPECT_EQ(t.next_row_band(8), 16);
  EXPECT_EQ(t.next_row_band(-1), 0);
  EXPECT_EQ(t.next_row_band(-8), 0);
  EXPECT_EQ(t.next_row_band(-9), -8);
  EXPECT_EQ(t.row_band_start(-1), -8);
  EXPECT_EQ(t.col_band_start(13), 8);
  // cell_index is a mask, so it stays in [0, cells_per_tile) for negative
  // coordinates too, and is unique within a tile.
  for (index_t r = -16; r < 16; ++r) {
    for (index_t c = -16; c < 16; ++c) {
      const index_t idx = t.cell_index({r, c});
      ASSERT_GE(idx, 0);
      ASSERT_LT(idx, t.cells_per_tile());
    }
  }
}

TEST(ParallelTiling, RoundsTileSidesUpToPowersOfTwo) {
  const Tiling t(5, 12, 3);
  EXPECT_EQ(t.tile_rows(), 8);
  EXPECT_EQ(t.tile_cols(), 16);
  const Tiling unit(1, 1, 2);
  EXPECT_EQ(unit.tile_rows(), 1);
  EXPECT_EQ(unit.tile_cols(), 1);
  EXPECT_EQ(unit.tile_of({3, -3}), (TileCoord{3, -3}));
}

TEST(ParallelTiling, ShardOfIsDeterministicAndInRange) {
  const Tiling t(8, 8, 5);
  for (index_t r = -4; r <= 4; ++r) {
    for (index_t c = -4; c <= 4; ++c) {
      const int s = t.shard_of({r, c});
      ASSERT_GE(s, 0);
      ASSERT_LT(s, t.shards());
      ASSERT_EQ(s, t.shard_of({r, c}));  // stable
    }
  }
  const Tiling single(8, 8, 1);
  EXPECT_EQ(single.shard_of({123, -456}), 0);
}

// ---- Config / environment -------------------------------------------------

TEST(ParallelConfig, FromEnvironment) {
  const auto set = [](const char* k, const char* v) { setenv(k, v, 1); };
  set("SCM_THREADS", "4");
  set("SCM_TILE", "32x16");  // WxH: 32 columns, 16 rows
  set("SCM_PARALLEL_MIN_BATCH", "7");
  const Config cfg = parallel::config_from_env();
  EXPECT_EQ(cfg.threads, 4);
  EXPECT_EQ(cfg.tile_cols, 32);
  EXPECT_EQ(cfg.tile_rows, 16);
  EXPECT_EQ(cfg.min_parallel_batch, 7);
  set("SCM_TILE", "garbage");  // unparseable -> defaults kept
  const Config bad = parallel::config_from_env();
  EXPECT_EQ(bad.tile_rows, Config{}.tile_rows);
  EXPECT_EQ(bad.tile_cols, Config{}.tile_cols);
  unsetenv("SCM_THREADS");
  unsetenv("SCM_TILE");
  unsetenv("SCM_PARALLEL_MIN_BATCH");
  const Config dflt = parallel::config_from_env();
  EXPECT_EQ(dflt.threads, 1);  // default is scalar
}

// ---- BulkAggregate merge --------------------------------------------------

TEST(ParallelAggregate, MergeIsAssociativeCommutativeAndOrderFree) {
  std::mt19937_64 rng(42);
  std::vector<BulkAggregate> parts;
  for (int i = 0; i < 12; ++i) {
    BulkAggregate a;
    a.energy = static_cast<index_t>(rng() % 1000);
    a.messages = static_cast<index_t>(rng() % 100);
    a.max_clock = Clock{static_cast<index_t>(rng() % 50),
                        static_cast<index_t>(rng() % 500)};
    parts.push_back(a);
  }
  EXPECT_EQ(merge(parts[0], parts[1]), merge(parts[1], parts[0]));
  EXPECT_EQ(merge(merge(parts[0], parts[1]), parts[2]),
            merge(parts[0], merge(parts[1], parts[2])));
  // Any fold order over a permuted worker set gives the same result —
  // the algebraic fact the fixed-order phase-boundary merge relies on
  // (fixed order makes the merge deterministic; this makes it exact).
  const BulkAggregate in_order = std::accumulate(
      parts.begin(), parts.end(), BulkAggregate{},
      [](const BulkAggregate& a, const BulkAggregate& b) {
        return merge(a, b);
      });
  std::vector<BulkAggregate> shuffled = parts;
  std::shuffle(shuffled.begin(), shuffled.end(), rng);
  const BulkAggregate permuted = std::accumulate(
      shuffled.begin(), shuffled.end(), BulkAggregate{},
      [](const BulkAggregate& a, const BulkAggregate& b) {
        return merge(a, b);
      });
  EXPECT_EQ(in_order, permuted);
}

TEST(ParallelEngine, SlicePartitionsExactly) {
  const ScopedParallelEngine scoped(small_config(4, 8, 8));
  const parallel::Engine* eng = parallel::engine();
  ASSERT_NE(eng, nullptr);
  for (const std::size_t n : {0ul, 1ul, 3ul, 4ul, 5ul, 1000ul}) {
    std::size_t covered = 0;
    std::size_t prev_end = 0;
    for (int w = 0; w < eng->threads(); ++w) {
      const auto [begin, end] = eng->slice(n, w);
      EXPECT_EQ(begin, prev_end);  // contiguous, disjoint
      EXPECT_LE(begin, end);
      covered += end - begin;
      prev_end = end;
    }
    EXPECT_EQ(covered, n);
    EXPECT_EQ(prev_end, n);
  }
}

// ---- Engine vs serial bulk: bit-identity ----------------------------------

/// A batch with distinct sources and distinct destinations spanning many
/// tiles, including negative coordinates and one distance-0 entry.
std::vector<MessageEvent> make_batch(index_t n) {
  std::vector<MessageEvent> batch;
  batch.reserve(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    const Coord from{i / 40 - 5, i % 40 - 7};
    // (r, c) -> (3c - 11, 2r + 9) is injective, so destinations are
    // distinct; distances vary from a few cells to several tiles.
    const Coord to{3 * from.col - 11, 2 * from.row + 9};
    MessageEvent e;
    e.from = from;
    e.to = to;
    e.payload = Clock{i % 7, i % 13};
    batch.push_back(e);
  }
  MessageEvent self;  // distance 0, far from the grid above
  self.from = Coord{1000, 1000};
  self.to = self.from;
  batch.push_back(self);
  return batch;
}

struct RunOutput {
  Metrics totals;
  std::map<std::string, Metrics> phases;
  std::vector<MessageEvent> charged;  ///< batch with distance/arrival filled
};

RunOutput run_bulk(const Config* cfg) {
  const ScopedBulkCharging bulk(true);
  RunOutput out;
  out.charged = make_batch(400);
  Machine m;
  if (cfg != nullptr) {
    const ScopedParallelEngine scoped(*cfg);
    const Machine::PhaseScope phase(m, "batch");
    m.send_bulk(out.charged);
    EXPECT_GE(parallel::engine()->stats().parallel_batches, 1u)
        << "engine was configured but the batch stayed serial";
  } else {
    const Machine::PhaseScope phase(m, "batch");
    m.send_bulk(out.charged);
  }
  out.totals = m.metrics();
  out.phases = m.phases();
  return out;
}

TEST(ParallelEngine, ChargesBitIdenticallyToSerialBulk) {
  const RunOutput serial = run_bulk(nullptr);
  const Config cfg = small_config(4, 8, 8);
  const RunOutput par = run_bulk(&cfg);
  EXPECT_EQ(serial.totals, par.totals);
  EXPECT_EQ(serial.phases, par.phases);
  // Per-entry outputs (distance, arrival clock) match too: the engine
  // fills them in place exactly as the serial loop does.
  ASSERT_EQ(serial.charged.size(), par.charged.size());
  for (std::size_t i = 0; i < serial.charged.size(); ++i) {
    ASSERT_EQ(serial.charged[i].distance, par.charged[i].distance) << i;
    ASSERT_EQ(serial.charged[i].arrival, par.charged[i].arrival) << i;
  }
}

TEST(ParallelEngine, ExportsInvariantUnderThreadAndTileChoice) {
  const RunOutput serial = run_bulk(nullptr);
  for (const int threads : {2, 3, 4, 8}) {
    for (const index_t tile : {4, 32}) {
      const Config cfg = small_config(threads, tile, tile);
      const RunOutput par = run_bulk(&cfg);
      EXPECT_EQ(serial.totals, par.totals)
          << "threads=" << threads << " tile=" << tile;
      EXPECT_EQ(serial.phases, par.phases)
          << "threads=" << threads << " tile=" << tile;
    }
  }
}

TEST(ParallelEngine, JoinsBirthClocksBitIdentically) {
  std::vector<BirthEvent> batch;
  for (index_t i = 0; i < 300; ++i) {
    batch.push_back(BirthEvent{Coord{i / 20, i % 20},
                               Clock{(i * 7) % 23, (i * 13) % 101}});
  }
  Clock serial{};
  for (const BirthEvent& b : batch) serial = Clock::join(serial, b.clock);
  const ScopedParallelEngine scoped(small_config(4, 8, 8));
  const Clock par = parallel::engine()->join_birth_clocks(batch);
  EXPECT_EQ(serial, par);
}

// ---- Inline guard: decline and degrade ------------------------------------

TEST(ParallelEngine, GuardDeclinesDuplicateDestinations) {
  const ScopedParallelEngine scoped(small_config(4, 8, 8));
  parallel::Engine* eng = parallel::engine();
  ASSERT_NE(eng, nullptr);
  std::vector<MessageEvent> racy(2);
  racy[0].from = Coord{0, 0};
  racy[0].to = Coord{5, 5};
  racy[1].from = Coord{9, 9};
  racy[1].to = Coord{5, 5};  // same destination: unproven batch
  BulkAggregate agg;
  EXPECT_FALSE(eng->charge_send_bulk(racy, agg));
  EXPECT_EQ(eng->stats().downgraded_batches, 1u);
  EXPECT_EQ(eng->stats().parallel_batches, 0u);
  // Under ScopedUnorderedDelivery the batch is exempt — exactly the
  // IndependenceChecker's rule — and charges in parallel.
  {
    const ScopedUnorderedDelivery unordered("test: commutative delivery");
    EXPECT_TRUE(eng->charge_send_bulk(racy, agg));
  }
  EXPECT_EQ(eng->stats().parallel_batches, 1u);
  // A declined epoch leaves no stale stamps: the next clean batch runs.
  std::vector<MessageEvent> clean(2);
  clean[0].from = Coord{0, 0};
  clean[0].to = Coord{5, 5};
  clean[1].from = Coord{9, 9};
  clean[1].to = Coord{6, 5};
  EXPECT_TRUE(eng->charge_send_bulk(clean, agg));
  EXPECT_EQ(agg.messages, 2);
  EXPECT_EQ(agg.energy, manhattan(clean[0].from, clean[0].to) +
                            manhattan(clean[1].from, clean[1].to));
}

TEST(ParallelEngine, MachineDegradesUnprovenBatchToScalar) {
  // The injected write-write conflict would (correctly) fail the global
  // independence checker; mute it — the point here is the engine's safe
  // fallback, whose totals must match the scalar decomposition.
  const ScopedGlobalTraceSuspension mute;
  const ScopedBulkCharging bulk(true);
  std::vector<MessageEvent> racy(2);
  racy[0].from = Coord{0, 0};
  racy[0].to = Coord{5, 5};
  racy[1].from = Coord{9, 9};
  racy[1].to = Coord{5, 5};
  Metrics serial_totals;
  {
    Machine m;
    auto copy = racy;
    m.send_bulk(copy);  // bulk-ok: phase-less on purpose, totals-only probe
    serial_totals = m.metrics();
  }
  const ScopedParallelEngine scoped(small_config(4, 8, 8));
  Machine m;
  m.send_bulk(racy);  // bulk-ok: phase-less on purpose, totals-only probe
  EXPECT_EQ(m.metrics(), serial_totals);
  EXPECT_EQ(parallel::engine()->stats().downgraded_batches, 1u);
  EXPECT_EQ(parallel::engine()->stats().parallel_batches, 0u);
}

// ---- Sharded sinks vs serial sinks ----------------------------------------

/// Drives one identical event stream into any sink: unattributed and
/// phase-attributed traffic, scalar and bulk, multi-tile paths, negative
/// coordinates, and distance-0 messages.
void drive_stream(TraceSink& sink) {
  const PhaseId pa = PhaseRegistry::instance().intern("shard-a");
  const PhaseId pb = PhaseRegistry::instance().intern("shard-b");
  sink.on_message({0, 0}, {5, 9}, manhattan({0, 0}, {5, 9}));
  sink.on_message({-3, -7}, {-3, -7}, 0);  // counted, routes nothing
  sink.on_phase_enter(pa);
  auto b1 = make_batch(300);
  for (auto& e : b1) e.distance = manhattan(e.from, e.to);
  sink.on_send_bulk(b1);
  sink.on_phase_enter(pb);
  sink.on_message({10, -10}, {-10, 10}, manhattan({10, -10}, {-10, 10}));
  sink.on_phase_exit(pb);
  std::vector<MessageEvent> b2(3);
  b2[0].from = Coord{-20, -20};
  b2[0].to = Coord{20, 20};
  b2[1].from = Coord{0, 50};
  b2[1].to = Coord{0, -50};
  b2[2].from = Coord{7, 7};
  b2[2].to = Coord{7, 7};  // distance 0 inside a batch
  for (auto& e : b2) e.distance = manhattan(e.from, e.to);
  sink.on_send_bulk(b2);
  sink.on_phase_exit(pa);
}

void expect_congestion_equal(const CongestionMap& serial,
                             const parallel::ShardedCongestionMap& sharded) {
  EXPECT_EQ(serial.messages(), sharded.messages());
  EXPECT_EQ(serial.total_occupancy(), sharded.total_occupancy());
  EXPECT_EQ(serial.links(), sharded.links());
  EXPECT_EQ(serial.max_link_load(), sharded.max_link_load());
  EXPECT_EQ(serial.sorted_links(), sharded.sorted_links());
  EXPECT_EQ(serial.occupancy_multiset(), sharded.occupancy_multiset());
  EXPECT_EQ(serial.congested_clock(), sharded.congested_clock());
  for (const auto& [link, load] : serial.sorted_links()) {
    ASSERT_EQ(load, sharded.occupancy(link)) << link.str();
  }
  const auto sp = serial.phase_congestion();
  const auto pp = sharded.phase_congestion();
  ASSERT_EQ(sp.size(), pp.size());
  for (std::size_t i = 0; i < sp.size(); ++i) {
    EXPECT_EQ(sp[i].phase, pp[i].phase) << i;
    EXPECT_EQ(sp[i].occupancy, pp[i].occupancy) << i;
    EXPECT_EQ(sp[i].links, pp[i].links) << i;
    EXPECT_EQ(sp[i].peak, pp[i].peak) << i;
    EXPECT_EQ(serial.phase_peak(sp[i].phase), sharded.phase_peak(sp[i].phase));
  }
}

TEST(ShardedCongestion, MatchesSerialWithoutEngine) {
  CongestionMap serial;
  parallel::ShardedCongestionMap sharded(small_config(4, 8, 8));
  drive_stream(serial);
  drive_stream(sharded);
  EXPECT_EQ(sharded.parallel_batches(), 0u);  // no engine installed
  expect_congestion_equal(serial, sharded);
}

TEST(ShardedCongestion, MatchesSerialThroughWorkerPool) {
  const Config cfg = small_config(4, 8, 8);
  const ScopedParallelEngine scoped(cfg);
  CongestionMap serial;
  parallel::ShardedCongestionMap sharded(cfg);
  drive_stream(serial);
  drive_stream(sharded);
  EXPECT_GE(sharded.parallel_batches(), 2u);
  EXPECT_GE(sharded.cross_tile_segments(), 1u);  // long paths cross tiles
  expect_congestion_equal(serial, sharded);
}

TEST(ShardedCongestion, ShardCountDoesNotChangeExports) {
  CongestionMap serial;
  drive_stream(serial);
  for (const int threads : {1, 2, 3, 8}) {
    for (const index_t tile : {4, 64}) {
      parallel::ShardedCongestionMap sharded(small_config(threads, tile, tile));
      drive_stream(sharded);
      expect_congestion_equal(serial, sharded);
    }
  }
}

TEST(ShardedCongestion, TilingMismatchFallsBackToSerialPath) {
  // Engine tiled 8x8, sink tiled 16x16: the sink must not hand its shards
  // to a pool whose ownership map disagrees — it applies serially.
  const ScopedParallelEngine scoped(small_config(4, 8, 8));
  CongestionMap serial;
  parallel::ShardedCongestionMap sharded(small_config(4, 16, 16));
  drive_stream(serial);
  drive_stream(sharded);
  EXPECT_EQ(sharded.parallel_batches(), 0u);
  expect_congestion_equal(serial, sharded);
}

TEST(ShardedCongestion, ResetPreservesPhaseStackLikeSerial) {
  const PhaseId pa = PhaseRegistry::instance().intern("shard-reset");
  CongestionMap serial;
  parallel::ShardedCongestionMap sharded(small_config(3, 8, 8));
  for (TraceSink* sink : {static_cast<TraceSink*>(&serial),
                          static_cast<TraceSink*>(&sharded)}) {
    sink->on_phase_enter(pa);
    sink->on_message({0, 0}, {9, 9}, 18);
    sink->on_reset();  // clears counts, keeps the entered phase
    sink->on_message({0, 0}, {3, 0}, 3);
    sink->on_phase_exit(pa);
  }
  expect_congestion_equal(serial, sharded);
  EXPECT_EQ(sharded.messages(), 1);
  EXPECT_EQ(sharded.phase_peak(pa), serial.phase_peak(pa));
  EXPECT_GT(sharded.phase_peak(pa), 0);
}

TEST(ShardedLoad, MatchesSerialLoadMap) {
  for (const bool with_engine : {false, true}) {
    const Config cfg = small_config(4, 8, 8);
    std::unique_ptr<ScopedParallelEngine> scoped;
    if (with_engine) scoped = std::make_unique<ScopedParallelEngine>(cfg);
    LoadMap serial;
    parallel::ShardedLoadMap sharded(cfg);
    drive_stream(serial);
    drive_stream(sharded);
    if (with_engine) {
      EXPECT_GE(sharded.parallel_batches(), 2u);
    }
    EXPECT_EQ(serial.messages(), sharded.messages());
    EXPECT_EQ(serial.total_load(), sharded.total_load());
    EXPECT_EQ(serial.max_load(), sharded.max_load());
    // Per-cell identity over every touched cell, both directions: the
    // sharded sorted_loads() set must be exactly the serial per-cell map.
    const auto cells = sharded.sorted_loads();
    EXPECT_EQ(static_cast<index_t>(cells.size()), sharded.touched_cells());
    index_t sum = 0;
    for (const auto& [cell, load] : cells) {
      ASSERT_EQ(load, serial.load_at(cell))
          << "(" << cell.row << "," << cell.col << ")";
      ASSERT_GT(load, 0);
      sum += load;
    }
    EXPECT_EQ(sum, serial.total_load());
    // Distance-0 messages bump their single cell (inclusive endpoints).
    EXPECT_GE(serial.load_at({-3, -7}), 1);
    EXPECT_EQ(sharded.load_at({-3, -7}), serial.load_at({-3, -7}));
  }
}

// ---- phases() caching (satellite: Machine::phases materialization) --------

TEST(MachinePhases, CachedReferenceInvalidatedOnMutation) {
  const ScopedBulkCharging bulk(true);
  Machine m;
  {
    const Machine::PhaseScope p(m, "alpha");
    m.send({0, 0}, {0, 3}, Clock{});
  }
  const auto& first = m.phases();
  EXPECT_EQ(first.size(), 1u);
  EXPECT_EQ(first.at("alpha").energy, 3);
  // Repeated calls return the same object without rebuilding.
  EXPECT_EQ(&first, &m.phases());
  // Charging under an active phase invalidates; the same reference
  // observes the refreshed contents on the next call.
  {
    const Machine::PhaseScope p(m, "alpha");
    m.send({0, 0}, {0, 2}, Clock{});
  }
  const auto& second = m.phases();
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(second.at("alpha").energy, 5);
  {
    const Machine::PhaseScope p(m, "beta");
    m.op(4);
  }
  EXPECT_EQ(m.phases().size(), 2u);
  EXPECT_EQ(m.phases().at("beta").local_ops, 4);
  m.reset();
  EXPECT_TRUE(m.phases().empty());
}

TEST(MachinePhases, CostReportByteIdenticalWithCacheHitsInterleaved) {
  const auto run = [](bool query_between_charges) {
    Machine m;
    {
      const Machine::PhaseScope p(m, "report-a");
      m.send({0, 0}, {4, 4}, Clock{});
      if (query_between_charges) (void)m.phases();
      m.send({1, 1}, {2, 7}, Clock{});
    }
    if (query_between_charges) (void)m.phases();
    {
      const Machine::PhaseScope p(m, "report-b");
      m.op(3);
    }
    return cost_report(m);
  };
  const std::string cold = run(false);
  const std::string warm = run(true);
  EXPECT_FALSE(cold.empty());
  EXPECT_EQ(cold, warm);  // cache hits must never change report bytes
}

}  // namespace
}  // namespace scm
