// Tests of the batch-independence analyzer: adversarial fixtures that
// deliberately race bulk-round batches and assert the checker reports
// exactly that conflict, negative fixtures proving the library's legal
// round shapes (exchange, shift, permutation) stay silent, the operator
// annotation machinery, the profiler's run-report export, and the fuzzer
// integration (an injected overlapping batch is caught as an
// "independence" finding, carries a replay token, and shrinks to the
// minimal witness).
#include "spatial/independence.hpp"

#include "collectives/operators.hpp"
#include "sort/mergesort2d.hpp"
#include "spatial/grid_array.hpp"
#include "spatial/machine.hpp"
#include "spatial/profile.hpp"
#include "spatial/validate.hpp"
#include "testing/runner.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

namespace scm {
namespace {

IndependenceChecker::Config lenient() {
  IndependenceChecker::Config config;
  config.strict = false;
  return config;
}

// Two charged members delivering to {0, 9} from distinct sources.
std::vector<MessageEvent> overlapping_batch() {
  return {MessageEvent{{0, 0}, {0, 9}, 0, Clock{}, Clock{}},
          MessageEvent{{1, 0}, {0, 9}, 0, Clock{}, Clock{}}};
}

// --- Adversarial fixtures: one per conflict kind. -----------------------

TEST(IndependenceAdversarial, WriteWriteConflictIsFlagged) {
  ScopedGlobalTraceSuspension off;
  Machine m;
  IndependenceChecker checker(lenient());
  m.set_trace(&checker);
  {
    Machine::PhaseScope scope(m, "ww");
    std::vector<MessageEvent> batch = overlapping_batch();
    m.send_bulk(batch);
  }
  const IndependenceReport& report = checker.report();
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.count(IndependenceViolationKind::kWriteWriteConflict), 1);
  const IndependenceViolation& v = report.violations.front();
  EXPECT_EQ(v.kind, IndependenceViolationKind::kWriteWriteConflict);
  EXPECT_EQ(v.phase, "ww");
  EXPECT_EQ(v.at, (Coord{0, 9}));
  EXPECT_NE(v.detail.find("same destination"), std::string::npos);
  // The offending batch itself is in the backtrace (pushed pre-analysis).
  ASSERT_EQ(v.backtrace.size(), 2u);
  EXPECT_EQ(v.backtrace.back().to, (Coord{0, 9}));
  EXPECT_EQ(report.per_phase.at("ww").conflicts, 1);
}

TEST(IndependenceAdversarial, ScopedUnorderedDeliveryExemptsFanIn) {
  ScopedGlobalTraceSuspension off;
  Machine m;
  IndependenceChecker checker(lenient());
  m.set_trace(&checker);
  {
    Machine::PhaseScope scope(m, "reduce");
    ScopedUnorderedDelivery order_free("test: declared order-free");
    EXPECT_TRUE(ScopedUnorderedDelivery::active());
    EXPECT_STREQ(ScopedUnorderedDelivery::reason(),
                 "test: declared order-free");
    std::vector<MessageEvent> batch = overlapping_batch();
    m.send_bulk(batch);
  }
  EXPECT_FALSE(ScopedUnorderedDelivery::active());
  EXPECT_EQ(ScopedUnorderedDelivery::reason(), nullptr);
  const IndependenceReport& report = checker.report();
  EXPECT_TRUE(report.ok()) << report.str();
  EXPECT_EQ(report.exempted_batches, 1);
  EXPECT_EQ(report.per_phase.at("reduce").exempted_batches, 1);
  EXPECT_EQ(report.max_fan_in, 2);
}

TEST(IndependenceAdversarial, CommutativeDeliveryScopeExempts) {
  ScopedGlobalTraceSuspension off;
  Machine m;
  IndependenceChecker checker(lenient());
  m.set_trace(&checker);
  {
    Machine::PhaseScope scope(m, "sum");
    // Compiles only because Plus is annotated commutative via OpTraits.
    CommutativeDeliveryScope<Plus> order_free("test: + fan-in");
    std::vector<MessageEvent> batch = overlapping_batch();
    m.send_bulk(batch);
  }
  EXPECT_TRUE(checker.report().ok()) << checker.report().str();
  EXPECT_EQ(checker.report().exempted_batches, 1);
}

TEST(IndependenceAdversarial, ReadWriteHazardOnRetiredCell) {
  ScopedGlobalTraceSuspension off;
  Machine m;
  IndependenceChecker checker(lenient());
  m.set_trace(&checker);
  {
    Machine::PhaseScope scope(m, "hazard");
    m.death({0, 5});  // the cell holds no value at batch start
    std::vector<MessageEvent> batch{
        MessageEvent{{0, 0}, {0, 5}, 0, Clock{}, Clock{}},   // write
        MessageEvent{{0, 5}, {0, 9}, 0, Clock{}, Clock{}}};  // read
    m.send_bulk(batch);
  }
  const IndependenceReport& report = checker.report();
  ASSERT_EQ(report.count(IndependenceViolationKind::kReadWriteHazard), 1);
  const IndependenceViolation& v = report.violations.front();
  EXPECT_EQ(v.at, (Coord{0, 5}));
  EXPECT_NE(v.detail.find("retired"), std::string::npos);
  // 1-in/1-out: the hub (aliasing) rule must NOT also fire.
  EXPECT_EQ(report.count(IndependenceViolationKind::kGatherScatterAliasing),
            0);
}

TEST(IndependenceAdversarial, OccupiedCellMayBeSourceAndDestination) {
  // Synchronous-round semantics: a cell that already holds a value may be
  // both read and overwritten in one batch (exchange / shift rounds).
  ScopedGlobalTraceSuspension off;
  Machine m;
  IndependenceChecker checker(lenient());
  m.set_trace(&checker);
  {
    Machine::PhaseScope scope(m, "exchange");
    std::vector<MessageEvent> batch{
        MessageEvent{{0, 0}, {0, 1}, 0, Clock{}, Clock{}},
        MessageEvent{{0, 1}, {0, 0}, 0, Clock{}, Clock{}}};
    m.send_bulk(batch);
  }
  EXPECT_TRUE(checker.report().ok()) << checker.report().str();
}

TEST(IndependenceAdversarial, ArrivalRevivesARetiredCell) {
  ScopedGlobalTraceSuspension off;
  Machine m;
  IndependenceChecker checker(lenient());
  m.set_trace(&checker);
  {
    Machine::PhaseScope scope(m, "revive");
    m.death({0, 5});
    m.send({0, 0}, {0, 5}, Clock{});  // scalar arrival revives the cell
    std::vector<MessageEvent> batch{
        MessageEvent{{1, 0}, {0, 5}, 0, Clock{}, Clock{}},
        MessageEvent{{0, 5}, {0, 9}, 0, Clock{}, Clock{}}};
    m.send_bulk(batch);
  }
  EXPECT_TRUE(checker.report().ok()) << checker.report().str();
}

TEST(IndependenceAdversarial, BirthRevivesARetiredCell) {
  ScopedGlobalTraceSuspension off;
  Machine m;
  IndependenceChecker checker(lenient());
  m.set_trace(&checker);
  {
    Machine::PhaseScope scope(m, "rebirth");
    m.death({0, 5});
    m.birth({0, 5}, Clock{});
    std::vector<MessageEvent> batch{
        MessageEvent{{1, 0}, {0, 5}, 0, Clock{}, Clock{}},
        MessageEvent{{0, 5}, {0, 9}, 0, Clock{}, Clock{}}};
    m.send_bulk(batch);
  }
  EXPECT_TRUE(checker.report().ok()) << checker.report().str();
}

TEST(IndependenceAdversarial, PhaseBoundaryOpensAFreshEpoch) {
  // A death in one phase does not poison the next: epoch state (like the
  // conformance checker's residency epochs) resets at phase boundaries.
  ScopedGlobalTraceSuspension off;
  Machine m;
  IndependenceChecker checker(lenient());
  m.set_trace(&checker);
  {
    Machine::PhaseScope scope(m, "retiring");
    m.death({0, 5});
  }
  {
    Machine::PhaseScope scope(m, "next-round");
    std::vector<MessageEvent> batch{
        MessageEvent{{1, 0}, {0, 5}, 0, Clock{}, Clock{}},
        MessageEvent{{0, 5}, {0, 9}, 0, Clock{}, Clock{}}};
    m.send_bulk(batch);
  }
  EXPECT_TRUE(checker.report().ok()) << checker.report().str();
}

TEST(IndependenceAdversarial, GatherScatterAliasingFiresEvenWhenExempt) {
  ScopedGlobalTraceSuspension off;
  Machine m;
  IndependenceChecker checker(lenient());
  m.set_trace(&checker);
  {
    Machine::PhaseScope scope(m, "fused");
    // An exemption waives delivery *order*, not round fusion: the hub
    // cannot relay a value before the round delivering it ends.
    ScopedUnorderedDelivery order_free("test: fan-in declared order-free");
    std::vector<MessageEvent> batch{
        MessageEvent{{0, 0}, {2, 2}, 0, Clock{}, Clock{}},   // gather
        MessageEvent{{4, 4}, {2, 2}, 0, Clock{}, Clock{}},   // gather
        MessageEvent{{2, 2}, {8, 8}, 0, Clock{}, Clock{}}};  // scatter
    m.send_bulk(batch);
  }
  const IndependenceReport& report = checker.report();
  ASSERT_EQ(
      report.count(IndependenceViolationKind::kGatherScatterAliasing), 1);
  EXPECT_EQ(report.violations.front().at, (Coord{2, 2}));
  // The exemption did suppress the write-write half.
  EXPECT_EQ(report.count(IndependenceViolationKind::kWriteWriteConflict), 0);
  EXPECT_EQ(report.exempted_batches, 1);
}

TEST(IndependenceAdversarial, UnexemptedHubReportsBothKinds) {
  ScopedGlobalTraceSuspension off;
  Machine m;
  IndependenceChecker checker(lenient());
  m.set_trace(&checker);
  {
    Machine::PhaseScope scope(m, "fused");
    std::vector<MessageEvent> batch{
        MessageEvent{{0, 0}, {2, 2}, 0, Clock{}, Clock{}},
        MessageEvent{{4, 4}, {2, 2}, 0, Clock{}, Clock{}},
        MessageEvent{{2, 2}, {8, 8}, 0, Clock{}, Clock{}}};
    m.send_bulk(batch);
  }
  const IndependenceReport& report = checker.report();
  EXPECT_EQ(report.count(IndependenceViolationKind::kWriteWriteConflict), 1);
  EXPECT_EQ(
      report.count(IndependenceViolationKind::kGatherScatterAliasing), 1);
}

TEST(IndependenceAdversarial, ZeroDistanceEntriesAreNeverCharged) {
  ScopedGlobalTraceSuspension off;
  IndependenceChecker checker(lenient());
  // Hand-built batch: both entries claim destination {0, 0} but with
  // distance 0 (self-sends are free and undelivered in the model).
  const std::vector<MessageEvent> batch{
      MessageEvent{{0, 0}, {0, 0}, 0, Clock{}, Clock{}},
      MessageEvent{{0, 0}, {0, 0}, 0, Clock{}, Clock{}}};
  checker.on_send_bulk(batch);
  EXPECT_TRUE(checker.report().ok());
  EXPECT_EQ(checker.report().batches, 0);
}

TEST(IndependenceAdversarial, FootprintsAccumulatePerPhase) {
  ScopedGlobalTraceSuspension off;
  Machine m;
  IndependenceChecker checker(lenient());
  m.set_trace(&checker);
  for (int round = 0; round < 3; ++round) {
    Machine::PhaseScope scope(m, "shift");
    std::vector<MessageEvent> batch{
        MessageEvent{{0, 0}, {0, 1}, 0, Clock{}, Clock{}},
        MessageEvent{{0, 1}, {0, 2}, 0, Clock{}, Clock{}}};
    m.send_bulk(batch);
  }
  const IndependenceReport& report = checker.report();
  EXPECT_TRUE(report.ok()) << report.str();
  EXPECT_EQ(report.batches, 3);
  EXPECT_EQ(report.bulk_messages, 6);
  const PhaseFootprint& fp = report.per_phase.at("shift");
  EXPECT_EQ(fp.batches, 3);
  EXPECT_EQ(fp.bulk_messages, 6);
  EXPECT_EQ(fp.max_batch, 2);
  EXPECT_EQ(fp.max_fan_in, 1);
  EXPECT_EQ(fp.conflicts, 0);
  EXPECT_NE(report.str().find("independence: ok"), std::string::npos);
}

TEST(IndependenceAdversarialDeathTest, StrictModeAbortsAtTheViolation) {
  ScopedGlobalTraceSuspension off;
  IndependenceChecker::Config config;
  config.strict = true;
  const std::vector<MessageEvent> bad{
      MessageEvent{{0, 0}, {0, 9}, 9, Clock{}, Clock{}},
      MessageEvent{{1, 0}, {0, 9}, 10, Clock{}, Clock{}}};
  EXPECT_DEATH(
      {
        IndependenceChecker strict_checker(config);
        strict_checker.on_send_bulk(bad);
      },
      "write-write-conflict");
}

TEST(IndependenceAdversarial, StrictDefaultHonorsTheEnvironment) {
#ifndef SCM_STRICT_MODEL
  const char* saved = std::getenv("SCM_STRICT_MODEL");
  const std::string restore = saved == nullptr ? "" : saved;
  ::setenv("SCM_STRICT_MODEL", "1", 1);
  EXPECT_TRUE(IndependenceChecker::strict_model_default());
  ::setenv("SCM_STRICT_MODEL", "0", 1);
  EXPECT_FALSE(IndependenceChecker::strict_model_default());
  if (saved == nullptr) {
    ::unsetenv("SCM_STRICT_MODEL");
  } else {
    ::setenv("SCM_STRICT_MODEL", restore.c_str(), 1);
  }
#else
  EXPECT_TRUE(IndependenceChecker::strict_model_default());
#endif
}

// --- Operator annotations. ----------------------------------------------

TEST(OpTraitsAnnotations, AlgebraicLawsMatchTheOperators) {
  static_assert(is_commutative_v<Plus> && is_associative_v<Plus>);
  static_assert(is_commutative_v<Min> && is_associative_v<Min>);
  static_assert(is_commutative_v<Max> && is_associative_v<Max>);
  // First keeps the earlier operand: associative but order-sensitive.
  static_assert(is_associative_v<First> && !is_commutative_v<First>);
  // Segmented operators reset at flags: never commutative, associativity
  // inherited from the inner operator.
  static_assert(is_associative_v<SegOp<Plus>> &&
                !is_commutative_v<SegOp<Plus>>);
  static_assert(!is_commutative_v<SegOp<Min>>);
  // CommutativeDeliveryScope<First> must not compile; enforced by
  // static_assert, which a positive test cannot exercise — the negative
  // cases above pin the trait values it keys on.
  SUCCEED();
}

// --- Library sweeps: real round loops are conflict-free. ----------------

TEST(IndependenceSweep, MergesortRunsConflictFree) {
  ScopedGlobalTraceSuspension off;
  Machine m;
  IndependenceChecker checker(lenient());
  m.set_trace(&checker);
  const Rect region{0, 0, 8, 8};
  GridArray<std::int64_t> a(region, Layout::kZOrder, 64);
  for (index_t i = 0; i < 64; ++i) {
    a[i] = Cell<std::int64_t>{(i * 37) % 64, Clock{}};
  }
  a.announce(m);
  const GridArray<std::int64_t> sorted = mergesort2d(m, a);
  ASSERT_EQ(sorted.size(), 64);
  EXPECT_TRUE(checker.report().ok()) << checker.report().str();
  EXPECT_GT(checker.report().batches, 0);
  // The merge base case's gather is the library's one declared exemption.
  EXPECT_GT(checker.report().exempted_batches, 0);
}

// --- FanoutSink: bulk events reach every attached checker as batches. ---

TEST(IndependenceFanout, FanoutForwardsBatchesWithoutReplay) {
  ScopedGlobalTraceSuspension off;
  IndependenceChecker first(lenient());
  IndependenceChecker second(lenient());
  FanoutSink fanout(std::vector<TraceSink*>{&first, &second});
  Machine m;
  m.set_trace(&fanout);
  {
    Machine::PhaseScope scope(m, "both");
    std::vector<MessageEvent> batch = overlapping_batch();
    m.send_bulk(batch);
  }
  EXPECT_EQ(first.report().batches, 1);
  EXPECT_EQ(second.report().batches, 1);
  EXPECT_EQ(
      first.report().count(IndependenceViolationKind::kWriteWriteConflict),
      1);
  EXPECT_EQ(
      second.report().count(IndependenceViolationKind::kWriteWriteConflict),
      1);
}

// --- Profiler export: the run report carries the verdict. ---------------

TEST(IndependenceExport, ProfilerJsonReportCarriesTheSection) {
  ScopedGlobalTraceSuspension off;
  Profiler profiler;  // Options::independence defaults to on
  Machine m;
  m.set_trace(&profiler);
  {
    Machine::PhaseScope scope(m, "ww");
    std::vector<MessageEvent> batch = overlapping_batch();
    m.send_bulk(batch);
  }
  ASSERT_NE(profiler.independence(), nullptr);
  EXPECT_FALSE(profiler.independence()->report().ok());
  const std::string json = profiler.json_report();
  EXPECT_NE(json.find("\"independence\":{\"enabled\":true"),
            std::string::npos);
  EXPECT_NE(json.find("\"write_write\":1"), std::string::npos);
  EXPECT_NE(json.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"ww\""), std::string::npos);

  Profiler::Options off_opts;
  off_opts.independence = false;
  Profiler disabled(off_opts);
  EXPECT_EQ(disabled.independence(), nullptr);
  EXPECT_NE(disabled.json_report().find("\"independence\":{\"enabled\":false"),
            std::string::npos);
}

// --- Fuzzer integration: the sixth oracle family end to end. ------------

class InjectionGuard {
 public:
  InjectionGuard() { testing::set_inject_bulk_overlap(true); }
  ~InjectionGuard() { testing::set_inject_bulk_overlap(false); }
};

TEST(IndependenceFuzz, InjectedOverlapIsCaughtAndShrinksToMinimum) {
  ScopedGlobalTraceSuspension off;
  InjectionGuard inject;
  testing::RunnerConfig config;
  config.seed = 77;
  config.cases = 2;
  config.only = {"permute"};
  config.metamorphic_every = 0;
  config.ab_every = 0;
  std::ostringstream log;
  testing::FuzzRunner runner(config, testing::BoundSet{});
  const testing::FuzzReport report = runner.run(log);
  ASSERT_FALSE(report.ok()) << log.str();
  const testing::FailureRecord& failure = report.failures.front();
  EXPECT_EQ(failure.property, "permute");
  EXPECT_EQ(failure.kind, "independence");
  EXPECT_NE(failure.detail.find("write-write-conflict"), std::string::npos);
  // The replay token reproduces the finding on a fresh runner.
  EXPECT_EQ(failure.replay_token,
            "77:" + std::to_string(failure.case_index));
  std::ostringstream replay_log;
  testing::FuzzRunner replayer(config, testing::BoundSet{});
  const auto replayed = replayer.replay(failure.replay_token, replay_log);
  ASSERT_TRUE(replayed.has_value());
  ASSERT_FALSE(replayed->ok());
  EXPECT_EQ(replayed->failures.front().kind, "independence");
  // Shrinking reached the minimal witness: the injection needs only two
  // cells, and permute's smallest legal instance has n == 2.
  EXPECT_EQ(failure.shrunk.n, 2);
  EXPECT_LE(failure.shrunk.n, failure.original.n);
}

TEST(IndependenceFuzz, NoInjectionMeansNoFindings) {
  ScopedGlobalTraceSuspension off;
  testing::RunnerConfig config;
  config.seed = 77;
  config.cases = 4;
  config.only = {"permute"};
  config.metamorphic_every = 0;
  config.ab_every = 0;
  std::ostringstream log;
  testing::FuzzRunner runner(config, testing::BoundSet{});
  EXPECT_TRUE(runner.run(log).ok()) << log.str();
}

}  // namespace
}  // namespace scm
