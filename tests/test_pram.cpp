// Tests of the PRAM simulations (Section VII, Lemmas VII.1-VII.2).
#include "pram/crcw.hpp"
#include "pram/erew.hpp"
#include "pram/programs.hpp"

#include "spatial/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>

namespace scm {
namespace {

using pram::Word;

Word add(Word a, Word b) { return a + b; }
Word take_max(Word a, Word b) { return a > b ? a : b; }

TEST(Erew, TreeReduceSum) {
  for (index_t n : {2, 16, 64, 256}) {
    Machine m;
    auto v = random_doubles(static_cast<std::uint64_t>(n),
                            static_cast<size_t>(n));
    pram::TreeReduceProgram prog(n, add);
    const auto out = pram::simulate_erew(m, prog, v);
    EXPECT_NEAR(out[0], std::accumulate(v.begin(), v.end(), 0.0), 1e-9) << n;
  }
}

TEST(Erew, TreeReduceMax) {
  Machine m;
  auto v = random_doubles(3, 128);
  pram::TreeReduceProgram prog(128, take_max);
  const auto out = pram::simulate_erew(m, prog, v);
  EXPECT_EQ(out[0], *std::max_element(v.begin(), v.end()));
}

TEST(Erew, HillisSteeleScan) {
  Machine m;
  auto v = random_doubles(4, 256);
  pram::HillisSteeleScanProgram prog(256);
  const auto out = pram::simulate_erew(m, prog, v);
  std::vector<double> ref(v.size());
  std::inclusive_scan(v.begin(), v.end(), ref.begin());
  for (size_t i = 0; i < ref.size(); ++i) EXPECT_NEAR(out[i], ref[i], 1e-9);
}

TEST(Erew, RejectsConcurrentRead) {
  Machine m;
  pram::BroadcastReadProgram prog(8);
  std::vector<Word> mem(9, 0.0);
  EXPECT_THROW((void)pram::simulate_erew(m, prog, mem),
               pram::ConcurrencyViolation);
}

TEST(Erew, RejectsConcurrentWrite) {
  Machine m;
  pram::CommonWriteProgram prog(8);
  std::vector<Word> mem(1, 0.0);
  EXPECT_THROW((void)pram::simulate_erew(m, prog, mem),
               pram::ConcurrencyViolation);
}

TEST(Erew, RejectsWrongMemorySize) {
  Machine m;
  pram::HillisSteeleScanProgram prog(16);
  std::vector<Word> mem(5, 0.0);
  EXPECT_THROW((void)pram::simulate_erew(m, prog, mem),
               std::invalid_argument);
}

TEST(Erew, CostPerStepMatchesLemmaVII1) {
  // Lemma VII.1: O(p (sqrt p + sqrt m)) energy per step; the tree reduce
  // touches at most p cells per step, so the per-step normalized energy
  // stays bounded.
  Machine m;
  const index_t n = 1024;
  auto v = random_doubles(5, static_cast<size_t>(n));
  pram::TreeReduceProgram prog(n, add);
  (void)pram::simulate_erew(m, prog, v);
  const double steps = static_cast<double>(prog.num_steps());
  const double per_step = static_cast<double>(m.metrics().energy) / steps;
  const double bound = static_cast<double>(prog.num_processors()) *
                       2.0 * std::sqrt(static_cast<double>(n));
  EXPECT_LE(per_step, 4.0 * bound);
  // Depth O(1) message-rounds per step.
  EXPECT_LE(m.metrics().depth(), 3 * prog.num_steps());
}

TEST(Crcw, AgreesWithErewOnExclusivePrograms) {
  Machine m1;
  Machine m2;
  auto v = random_doubles(6, 64);
  pram::HillisSteeleScanProgram prog(64);
  const auto o1 = pram::simulate_erew(m1, prog, v);
  const auto o2 = pram::simulate_crcw(m2, prog, v);
  EXPECT_EQ(o1, o2);
}

TEST(Crcw, ConcurrentReadBroadcasts) {
  Machine m;
  pram::BroadcastReadProgram prog(32);
  std::vector<Word> mem(33, 0.0);
  mem[0] = 7.5;
  const auto out = pram::simulate_crcw(m, prog, mem);
  for (index_t p = 0; p < 32; ++p) {
    EXPECT_EQ(out[static_cast<size_t>(p + 1)], 7.5 + static_cast<double>(p));
  }
}

TEST(Crcw, ArbitraryWriteResolvesToLowestId) {
  Machine m;
  pram::CommonWriteProgram prog(32);
  std::vector<Word> mem(1, -1.0);
  const auto out = pram::simulate_crcw(m, prog, mem);
  EXPECT_EQ(out[0], 0.0);
}

TEST(Crcw, DepthCarriesTheSortingLogCube) {
  // Lemma VII.2: depth O(T log^3 p). One concurrent-read step on p = 256
  // processors must stay within a constant times log^3(256).
  Machine m;
  pram::BroadcastReadProgram prog(256);
  std::vector<Word> mem(257, 0.0);
  (void)pram::simulate_crcw(m, prog, mem);
  EXPECT_LE(static_cast<double>(m.metrics().depth()),
            2.0 * std::pow(std::log2(256.0), 3));
  // ... and is far above the EREW per-step constant, showing the log^3
  // factor is real.
  EXPECT_GE(m.metrics().depth(), 20);
}

TEST(Crcw, ListRankingByPointerJumping) {
  // A linked list in a scrambled order; after the program, memory cell
  // n + i holds node i's distance to the tail.
  const index_t n = 32;
  std::mt19937_64 rng(11);
  std::vector<index_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), index_t{0});
  std::shuffle(order.begin(), order.end(), rng);
  std::vector<Word> mem(static_cast<size_t>(2 * n), 0.0);
  for (index_t pos = 0; pos + 1 < n; ++pos) {
    mem[static_cast<size_t>(order[static_cast<size_t>(pos)])] =
        static_cast<Word>(order[static_cast<size_t>(pos + 1)]);
  }
  mem[static_cast<size_t>(order[static_cast<size_t>(n - 1)])] =
      static_cast<Word>(n);  // tail marker
  Machine m;
  pram::ListRankProgram prog(n);
  const auto out = pram::simulate_crcw(m, prog, mem);
  for (index_t pos = 0; pos < n; ++pos) {
    const index_t node = order[static_cast<size_t>(pos)];
    EXPECT_EQ(out[static_cast<size_t>(n + node)],
              static_cast<Word>(n - 1 - pos))
        << "node " << node;
  }
}

TEST(Erew, ListRankingWorksWithoutSharedSuffixes) {
  // A 2-node list has no concurrent reads mid-jump; it runs under EREW.
  std::vector<Word> mem{1.0, 2.0, 0.0, 0.0};
  Machine m;
  pram::ListRankProgram prog(2);
  const auto out = pram::simulate_erew(m, prog, mem);
  EXPECT_EQ(out[2], 1.0);
  EXPECT_EQ(out[3], 0.0);
}

TEST(Crcw, SingleProcessorProgram) {
  Machine m;
  pram::TreeReduceProgram prog(2, add);
  std::vector<Word> mem{3.0, 4.0};
  const auto out = pram::simulate_crcw(m, prog, mem);
  EXPECT_EQ(out[0], 7.0);
}

}  // namespace
}  // namespace scm
