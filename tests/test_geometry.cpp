// Unit tests for the grid geometry substrate (Section III notation).
#include "spatial/geometry.hpp"

#include <gtest/gtest.h>

namespace scm {
namespace {

TEST(Manhattan, MatchesDefinition) {
  EXPECT_EQ(manhattan({0, 0}, {0, 0}), 0);
  EXPECT_EQ(manhattan({1, 2}, {4, 6}), 3 + 4);
  EXPECT_EQ(manhattan({4, 6}, {1, 2}), 3 + 4);
  EXPECT_EQ(manhattan({-3, 5}, {2, -1}), 5 + 6);
}

TEST(Manhattan, TriangleInequality) {
  const Coord a{0, 0};
  const Coord b{7, 3};
  const Coord c{2, 9};
  EXPECT_LE(manhattan(a, c), manhattan(a, b) + manhattan(b, c));
}

TEST(Rect, SizeOriginContains) {
  const Rect r{2, 3, 4, 5};
  EXPECT_EQ(r.size(), 20);
  EXPECT_EQ(r.origin(), (Coord{2, 3}));
  EXPECT_TRUE(r.contains({2, 3}));
  EXPECT_TRUE(r.contains({5, 7}));
  EXPECT_FALSE(r.contains({6, 3}));
  EXPECT_FALSE(r.contains({2, 8}));
  EXPECT_FALSE(r.contains({1, 3}));
}

TEST(Rect, AtAndDiameter) {
  const Rect r{1, 1, 4, 4};
  EXPECT_EQ(r.at(0, 0), r.origin());
  EXPECT_EQ(r.at(3, 3), (Coord{4, 4}));
  EXPECT_EQ(r.diameter(), 6);
  EXPECT_EQ((Rect{0, 0, 1, 1}).diameter(), 0);
}

TEST(Rect, QuadrantsPartitionInZOrder) {
  const Rect r{0, 0, 8, 8};
  const Rect q0 = r.quadrant(0);
  const Rect q1 = r.quadrant(1);
  const Rect q2 = r.quadrant(2);
  const Rect q3 = r.quadrant(3);
  // Top two quadrants left to right, then bottom two (the paper's Z
  // order).
  EXPECT_EQ(q0, (Rect{0, 0, 4, 4}));
  EXPECT_EQ(q1, (Rect{0, 4, 4, 4}));
  EXPECT_EQ(q2, (Rect{4, 0, 4, 4}));
  EXPECT_EQ(q3, (Rect{4, 4, 4, 4}));
  EXPECT_EQ(q0.size() + q1.size() + q2.size() + q3.size(), r.size());
  EXPECT_FALSE(q0.intersects(q3));
  EXPECT_TRUE(r.intersects(q2));
}

TEST(Rect, Intersects) {
  const Rect a{0, 0, 4, 4};
  EXPECT_TRUE(a.intersects(Rect{3, 3, 4, 4}));
  EXPECT_FALSE(a.intersects(Rect{4, 0, 4, 4}));
  EXPECT_FALSE(a.intersects(Rect{0, 4, 4, 4}));
  EXPECT_TRUE(a.intersects(a));
}

TEST(PowersOfTwo, Predicates) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(-4));
  EXPECT_EQ(ceil_pow2(1), 1);
  EXPECT_EQ(ceil_pow2(5), 8);
  EXPECT_EQ(ceil_pow2(64), 64);
}

TEST(Isqrt, ExactAndRounded) {
  EXPECT_EQ(isqrt(0), 0);
  EXPECT_EQ(isqrt(1), 1);
  EXPECT_EQ(isqrt(15), 3);
  EXPECT_EQ(isqrt(16), 4);
  EXPECT_EQ(isqrt(17), 4);
  for (index_t v = 0; v < 5000; ++v) {
    const index_t s = isqrt(v);
    EXPECT_LE(s * s, v);
    EXPECT_GT((s + 1) * (s + 1), v);
  }
}

TEST(SquareSide, SmallestPowerOfTwoCover) {
  EXPECT_EQ(square_side_for(0), 1);
  EXPECT_EQ(square_side_for(1), 1);
  EXPECT_EQ(square_side_for(2), 2);
  EXPECT_EQ(square_side_for(4), 2);
  EXPECT_EQ(square_side_for(5), 4);
  EXPECT_EQ(square_side_for(16), 4);
  EXPECT_EQ(square_side_for(17), 8);
  for (index_t n = 1; n < 3000; ++n) {
    const index_t s = square_side_for(n);
    EXPECT_TRUE(is_pow2(s));
    EXPECT_GE(s * s, n);
    EXPECT_TRUE(s == 1 || (s / 2) * (s / 2) < n);
  }
}

}  // namespace
}  // namespace scm
