// Tests of spatial connected components against a union-find reference.
#include "graph/components.hpp"

#include "spatial/machine.hpp"

#include <gtest/gtest.h>

#include <random>

namespace scm {
namespace {

using graph::ComponentsResult;
using graph::EdgeList;

void expect_same_partition(const std::vector<index_t>& got,
                           const std::vector<index_t>& want) {
  ASSERT_EQ(got.size(), want.size());
  // Both label with the component's minimum vertex id, so they must match
  // exactly.
  EXPECT_EQ(got, want);
}

TEST(Components, EmptyGraphIsAllSingletons) {
  Machine m;
  EdgeList g{5, {}};
  const ComponentsResult r = graph::connected_components(m, g);
  EXPECT_EQ(r.components, 5);
  for (index_t v = 0; v < 5; ++v) EXPECT_EQ(r.label[static_cast<size_t>(v)], v);
}

TEST(Components, SingleEdge) {
  Machine m;
  EdgeList g{4, {{1, 3}}};
  const ComponentsResult r = graph::connected_components(m, g);
  EXPECT_EQ(r.components, 3);
  EXPECT_EQ(r.label[1], 1);
  EXPECT_EQ(r.label[3], 1);
}

TEST(Components, PathGraphPropagatesToTheMinimum) {
  Machine m;
  EdgeList g{10, {}};
  for (index_t v = 0; v + 1 < 10; ++v) g.edges.push_back({v, v + 1});
  const ComponentsResult r = graph::connected_components(m, g);
  EXPECT_EQ(r.components, 1);
  for (index_t v = 0; v < 10; ++v) EXPECT_EQ(r.label[static_cast<size_t>(v)], 0);
  EXPECT_GE(r.rounds, 5);  // label 0 travels the path's diameter
}

TEST(Components, TwoCliquesAndABridge) {
  Machine m;
  EdgeList g{12, {}};
  for (index_t a = 0; a < 5; ++a) {
    for (index_t b = a + 1; b < 5; ++b) g.edges.push_back({a, b});
  }
  for (index_t a = 6; a < 11; ++a) {
    for (index_t b = a + 1; b < 11; ++b) g.edges.push_back({a, b});
  }
  const ComponentsResult before = graph::connected_components(m, g);
  EXPECT_EQ(before.components, 4);  // clique, clique, vertex 5, vertex 11
  g.edges.push_back({4, 6});
  const ComponentsResult after = graph::connected_components(m, g);
  EXPECT_EQ(after.components, 3);
  EXPECT_EQ(after.label[10], 0);
}

TEST(Components, RandomGraphsMatchUnionFind) {
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    const index_t n = 60 + trial * 20;
    EdgeList g{n, {}};
    std::uniform_int_distribution<index_t> pick(0, n - 1);
    const index_t m_edges = n;  // sparse: several components likely
    for (index_t e = 0; e < m_edges; ++e) {
      g.edges.push_back({pick(rng), pick(rng)});
    }
    Machine m;
    const ComponentsResult r = graph::connected_components(m, g);
    expect_same_partition(r.label, graph::reference_components(g));
  }
}

TEST(Components, SelfLoopsAndParallelEdges) {
  Machine m;
  EdgeList g{4, {{0, 0}, {1, 2}, {2, 1}, {1, 2}}};
  const ComponentsResult r = graph::connected_components(m, g);
  expect_same_partition(r.label, graph::reference_components(g));
  EXPECT_EQ(r.components, 3);
}

TEST(Components, CostsScaleWithRoundsTimesLinearWork) {
  // After the one-off sorts, each round is O(m + n sqrt m) energy; a
  // low-diameter graph needs few rounds.
  Machine m;
  std::mt19937_64 rng(9);
  const index_t n = 256;
  EdgeList g{n, {}};
  std::uniform_int_distribution<index_t> pick(0, n - 1);
  for (index_t e = 0; e < 4 * n; ++e) g.edges.push_back({pick(rng), pick(rng)});
  const ComponentsResult r = graph::connected_components(m, g);
  expect_same_partition(r.label, graph::reference_components(g));
  EXPECT_LE(r.rounds, 12);  // random graphs have O(log n) diameter
}

}  // namespace
}  // namespace scm
