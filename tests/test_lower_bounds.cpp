// Empirical checks of the paper's lower bounds (Lemma V.1, Corollary V.2,
// Lemma VIII.1, Observation 1): the witnesses really cost what the proofs
// say, and the matching algorithms stay within constant factors above
// them.
#include "sort/mergesort2d.hpp"
#include "sort/permute.hpp"
#include "spmv/generators.hpp"
#include "spmv/spmv.hpp"
#include "spatial/rng.hpp"
#include "spatial/zorder.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

namespace scm {
namespace {

TEST(LowerBounds, ReversalNeedsN32OnAnyShape) {
  // Lemma V.1: permuting h x w elements takes
  // Omega(max(w,h)^2 min(w,h)) energy; the reversal witness achieves it.
  for (const Rect rect : {Rect{0, 0, 16, 16}, Rect{0, 0, 64, 4},
                          Rect{0, 0, 4, 64}, Rect{0, 0, 128, 2}}) {
    const index_t n = rect.size();
    GridArray<int> a(rect, Layout::kRowMajor, n);
    const index_t lb =
        permutation_energy_lower_bound(a, reversal_permutation(n));
    const double hi = static_cast<double>(std::max(rect.rows, rect.cols));
    const double lo = static_cast<double>(std::min(rect.rows, rect.cols));
    EXPECT_GE(static_cast<double>(lb), hi * hi * lo / 9.0) << rect.str();
  }
}

TEST(LowerBounds, SortingPaysThePermutationBound) {
  // Corollary V.2: sorting realizes permutations, so sorting the reversal
  // input must cost at least the reversal's routing energy.
  const index_t side = 32;
  const index_t n = side * side;
  std::vector<double> reversed;
  for (index_t i = 0; i < n; ++i) {
    reversed.push_back(static_cast<double>(n - i));
  }
  Machine m;
  auto a = GridArray<double>::from_values_square({0, 0}, reversed,
                                                 Layout::kRowMajor);
  (void)mergesort2d(m, a);
  GridArray<int> w(Rect{0, 0, side, side}, Layout::kRowMajor, n);
  const index_t lb =
      permutation_energy_lower_bound(w, reversal_permutation(n));
  EXPECT_GE(m.metrics().energy, lb);
}

TEST(LowerBounds, MergesortIsWithinConstantFactorOfOptimal) {
  // Energy-optimality in practice: measured energy / n^{3/2} is a bounded
  // constant (checked at two sizes; the per-module test checks flatness).
  for (index_t n : {1024, 4096}) {
    Machine m;
    auto v = random_doubles(1, static_cast<size_t>(n));
    auto a = GridArray<double>::from_values_square({0, 0}, v,
                                                   Layout::kRowMajor);
    (void)mergesort2d(m, a);
    EXPECT_LE(static_cast<double>(m.metrics().energy),
              700.0 * std::pow(static_cast<double>(n), 1.5))
        << n;
  }
}

TEST(LowerBounds, SpmvPermutationReduction) {
  // Lemma VIII.1: SpMV with a permutation matrix performs the permutation,
  // so its energy cannot beat direct permutation routing... and on the
  // reversal matrix it must be Omega(n^{3/2}).
  const index_t n = 256;
  std::vector<index_t> perm = reversal_permutation(n);
  const CooMatrix p = permutation_matrix(perm);
  const auto x = random_doubles(2, static_cast<size_t>(n));
  Machine m;
  const SpmvResult r = spmv(m, p, x);
  for (index_t i = 0; i < n; ++i) {
    ASSERT_EQ(r.y[static_cast<size_t>(i)],
              x[static_cast<size_t>(perm[static_cast<size_t>(i)])]);
  }
  EXPECT_GE(static_cast<double>(m.metrics().energy),
            std::pow(static_cast<double>(n), 1.5) / 9.0);
}

TEST(Observation1, ZOrderWalkIsLinearEnergy) {
  // Walking the Z curve with one message per edge costs O(n) energy.
  Machine m;
  const Rect r{0, 0, 32, 32};
  Clock c{};
  for (index_t i = 1; i < r.size(); ++i) {
    c = m.send(zorder_coord(r, i - 1), zorder_coord(r, i), c);
  }
  EXPECT_LE(m.metrics().energy, 3 * r.size());
  EXPECT_EQ(m.metrics().depth(), r.size() - 1);
}

}  // namespace
}  // namespace scm
