// Tests of the energy-optimal 2-D Mergesort (Section V-C, Theorem V.8).
#include "sort/mergesort2d.hpp"

#include "spatial/rng.hpp"
#include "spatial/validate.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace scm {
namespace {

class MergesortSweep
    : public ::testing::TestWithParam<std::tuple<index_t, std::uint64_t>> {};

TEST_P(MergesortSweep, SortsRandomDoubles) {
  const auto [n, seed] = GetParam();
  Machine m;
  auto v = random_doubles(seed, static_cast<size_t>(n));
  auto a = GridArray<double>::from_values_square({0, 0}, v,
                                                 Layout::kRowMajor);
  GridArray<double> s = mergesort2d(m, a);
  auto ref = v;
  std::sort(ref.begin(), ref.end());
  EXPECT_EQ(s.values(), ref) << "n=" << n << " seed=" << seed;
  EXPECT_EQ(s.layout(), Layout::kRowMajor);  // Fig. 3(d) final layout
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, MergesortSweep,
    ::testing::Combine(::testing::Values<index_t>(0, 1, 2, 3, 4, 5, 16, 31,
                                                  32, 33, 64, 100, 256, 333,
                                                  1000, 1024),
                       ::testing::Values<std::uint64_t>(1, 2)));

TEST(Mergesort2d, Stability) {
  Machine m;
  std::vector<std::pair<int, int>> v;
  std::mt19937_64 rng(9);
  for (int i = 0; i < 300; ++i) v.emplace_back(static_cast<int>(rng() % 5), i);
  auto a = GridArray<std::pair<int, int>>::from_values_square(
      {0, 0}, v, Layout::kRowMajor);
  auto s = mergesort2d(
      m, a, [](const auto& x, const auto& y) { return x.first < y.first; });
  auto ref = v;
  std::stable_sort(ref.begin(), ref.end(), [](const auto& x, const auto& y) {
    return x.first < y.first;
  });
  EXPECT_EQ(s.values(), ref);
}

TEST(Mergesort2d, AdversarialDistributions) {
  const index_t n = 512;
  std::vector<std::vector<double>> inputs;
  std::vector<double> sorted;
  std::vector<double> reversed;
  std::vector<double> sawtooth;
  std::vector<double> constant(static_cast<size_t>(n), 3.0);
  for (index_t i = 0; i < n; ++i) {
    sorted.push_back(static_cast<double>(i));
    reversed.push_back(static_cast<double>(n - i));
    sawtooth.push_back(static_cast<double>(i % 13));
  }
  inputs = {sorted, reversed, sawtooth, constant};
  for (const auto& v : inputs) {
    Machine m;
    auto a = GridArray<double>::from_values_square({0, 0}, v,
                                                   Layout::kRowMajor);
    GridArray<double> s = mergesort2d(m, a);
    auto ref = v;
    std::sort(ref.begin(), ref.end());
    EXPECT_EQ(s.values(), ref);
  }
}

TEST(Mergesort2d, ZOrderInputsSortToo) {
  Machine m;
  auto v = random_doubles(12, 256);
  auto a = GridArray<double>::from_values_square({0, 0}, v, Layout::kZOrder);
  GridArray<double> s = mergesort2d(m, a);
  auto ref = v;
  std::sort(ref.begin(), ref.end());
  EXPECT_EQ(s.values(), ref);
}

TEST(Mergesort2d, CustomComparatorDescending) {
  Machine m;
  auto v = random_doubles(13, 200);
  auto a = GridArray<double>::from_values_square({0, 0}, v,
                                                 Layout::kRowMajor);
  GridArray<double> s = mergesort2d(m, a, std::greater<double>{});
  auto ref = v;
  std::sort(ref.begin(), ref.end(), std::greater<double>{});
  EXPECT_EQ(s.values(), ref);
}

TEST(Mergesort2d, CorrectForEveryBaseSizeKnob) {
  // The oversized knobs (64, 600) deliberately park more than the model's
  // O(1) constant on the base case's corner processor — that residency
  // trade-off is exactly what the ablation benchmark studies — so this
  // test opts out of the harness's conformance enforcement.
  ScopedGlobalTraceSuspension no_conformance;
  auto v = random_doubles(21, 600);
  auto ref = v;
  std::sort(ref.begin(), ref.end());
  for (index_t base : {1, 2, 4, 8, 64, 600}) {
    Machine m;
    auto a = GridArray<double>::from_values_square({0, 0}, v,
                                                   Layout::kRowMajor);
    GridArray<double> s =
        mergesort2d(m, a, std::less<double>{}, MergeConfig{base});
    EXPECT_EQ(s.values(), ref) << "base=" << base;
  }
}

TEST(Mergesort2d, EnergyConvergesToN32Shape) {
  // Theorem V.8: Theta(n^{3/2}) energy. The normalized ratio must stop
  // growing (contrast with bitonic, whose ratio grows like log n).
  auto normalized = [](index_t n) {
    Machine m;
    auto v = random_doubles(14, static_cast<size_t>(n));
    auto a = GridArray<double>::from_values_square({0, 0}, v,
                                                   Layout::kRowMajor);
    (void)mergesort2d(m, a);
    return static_cast<double>(m.metrics().energy) /
           std::pow(static_cast<double>(n), 1.5);
  };
  const double r1 = normalized(1024);
  const double r2 = normalized(4096);
  EXPECT_LT(r2 / r1, 1.25);  // flat, not log-growing
}

TEST(Mergesort2d, DepthWithinLogCubed) {
  for (index_t n : {1024, 4096}) {
    Machine m;
    auto v = random_doubles(15, static_cast<size_t>(n));
    auto a = GridArray<double>::from_values_square({0, 0}, v,
                                                   Layout::kRowMajor);
    (void)mergesort2d(m, a);
    EXPECT_LE(static_cast<double>(m.metrics().depth()),
              std::pow(std::log2(static_cast<double>(n)), 3))
        << n;
  }
}

TEST(Mergesort2d, DistanceWithinSqrtShape) {
  Machine m;
  auto v = random_doubles(16, 4096);
  auto a = GridArray<double>::from_values_square({0, 0}, v,
                                                 Layout::kRowMajor);
  (void)mergesort2d(m, a);
  EXPECT_LE(static_cast<double>(m.metrics().distance()),
            250.0 * std::sqrt(4096.0));
}

}  // namespace
}  // namespace scm
