// Tests of the 2-D merge (Section V-C-b, Lemma V.7).
#include "sort/merge2d.hpp"

#include "sort/keyed.hpp"
#include "spatial/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>
#include <vector>

namespace scm {
namespace {

using E = WithId<double>;
using Less = TotalLess<std::less<double>>;

// Builds two sorted id-tagged range arrays on one parent square.
struct MergeInput {
  Rect parent;
  GridArray<E> a;
  GridArray<E> b;
  std::vector<double> expected;
};

MergeInput make_input(index_t na, index_t nb, std::uint64_t seed) {
  auto va = random_doubles(seed, static_cast<size_t>(na));
  auto vb = random_doubles(seed + 1, static_cast<size_t>(nb));
  std::sort(va.begin(), va.end());
  std::sort(vb.begin(), vb.end());
  const Rect parent = square_at({0, 0}, square_side_for(na + nb));
  GridArray<E> a(parent, Layout::kZOrder, na, 0);
  for (index_t i = 0; i < na; ++i) {
    a[i].value = E{va[static_cast<size_t>(i)], i};
  }
  GridArray<E> b(parent, Layout::kZOrder, nb, na);
  for (index_t i = 0; i < nb; ++i) {
    b[i].value = E{vb[static_cast<size_t>(i)], na + i};
  }
  std::vector<double> all = va;
  all.insert(all.end(), vb.begin(), vb.end());
  std::sort(all.begin(), all.end());
  return MergeInput{parent, std::move(a), std::move(b), std::move(all)};
}

std::vector<double> raw_values(const GridArray<E>& arr) {
  std::vector<double> out;
  for (index_t i = 0; i < arr.size(); ++i) out.push_back(arr[i].value.value);
  return out;
}

class MergeSweep
    : public ::testing::TestWithParam<std::tuple<index_t, index_t>> {};

TEST_P(MergeSweep, ProducesSortedUnion) {
  const auto [na, nb] = GetParam();
  Machine m;
  MergeInput in = make_input(na, nb, 31 + na + nb);
  GridArray<E> out = merge2d(m, in.a, in.b, 0, Less{});
  ASSERT_EQ(out.size(), na + nb);
  EXPECT_EQ(raw_values(out), in.expected);
}

const std::vector<std::tuple<index_t, index_t>> kMergeSizes{
    {0, 0},     {0, 5},    {5, 0},     {1, 1},     {8, 8},     {16, 16},
    {30, 34},   {128, 128}, {1, 255},  {200, 56},  {512, 512}, {100, 924}};

INSTANTIATE_TEST_SUITE_P(Sizes, MergeSweep,
                         ::testing::ValuesIn(kMergeSizes));

TEST(Merge2d, OutputLandsOnTheRequestedOffset) {
  Machine m;
  MergeInput in = make_input(32, 32, 5);
  GridArray<E> out = merge2d(m, in.a, in.b, 0, Less{});
  EXPECT_EQ(out.offset(), 0);
  EXPECT_EQ(out.region(), in.parent);
  EXPECT_EQ(out.layout(), Layout::kZOrder);
}

TEST(Merge2d, MergesIntoUpperRange) {
  // Merge into the second half of a larger parent square: the destination
  // offset is honoured.
  const Rect parent = square_at({0, 0}, 16);  // 256 cells
  auto va = random_doubles(6, 64);
  auto vb = random_doubles(7, 64);
  std::sort(va.begin(), va.end());
  std::sort(vb.begin(), vb.end());
  GridArray<E> a(parent, Layout::kZOrder, 64, 0);
  GridArray<E> b(parent, Layout::kZOrder, 64, 64);
  for (index_t i = 0; i < 64; ++i) {
    a[i].value = E{va[static_cast<size_t>(i)], i};
    b[i].value = E{vb[static_cast<size_t>(i)], 64 + i};
  }
  Machine m;
  GridArray<E> out = merge2d(m, a, b, 128, Less{});
  EXPECT_EQ(out.offset(), 128);
  std::vector<double> all = va;
  all.insert(all.end(), vb.begin(), vb.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(raw_values(out), all);
}

TEST(Merge2d, DuplicateKeysMergeStably) {
  const Rect parent = square_at({0, 0}, 8);
  GridArray<E> a(parent, Layout::kZOrder, 32, 0);
  GridArray<E> b(parent, Layout::kZOrder, 32, 32);
  for (index_t i = 0; i < 32; ++i) {
    a[i].value = E{static_cast<double>(i / 8), i};
    b[i].value = E{static_cast<double>(i / 8), 32 + i};
  }
  Machine m;
  GridArray<E> out = merge2d(m, a, b, 0, Less{});
  // Sorted by (key, id): within a key, A's ids (smaller) come first.
  for (index_t i = 1; i < out.size(); ++i) {
    EXPECT_FALSE(Less{}(out[i].value, out[i - 1].value)) << i;
  }
}

TEST(Merge2d, CostBoundsLemmaV7) {
  Machine m;
  MergeInput in = make_input(2048, 2048, 77);
  (void)merge2d(m, in.a, in.b, 0, Less{});
  const double n = 4096.0;
  EXPECT_LE(static_cast<double>(m.metrics().energy),
            700.0 * std::pow(n, 1.5));
  EXPECT_LE(static_cast<double>(m.metrics().depth()),
            2.0 * std::pow(std::log2(n), 2));
  EXPECT_LE(static_cast<double>(m.metrics().distance()),
            200.0 * std::sqrt(n));
}

}  // namespace
}  // namespace scm
