// Tests of the model-conformance checker: adversarial fixtures that
// deliberately violate each Spatial Computer Model invariant and assert
// the checker reports exactly that violation, plus conformance sweeps
// asserting the paper's algorithms run violation-free under enforcement.
#include "spatial/validate.hpp"

#include "collectives/operators.hpp"
#include "collectives/scan.hpp"
#include "select/select.hpp"
#include "sort/mergesort2d.hpp"
#include "spatial/grid_array.hpp"
#include "spatial/machine.hpp"
#include "spatial/rng.hpp"
#include "spmv/generators.hpp"
#include "spmv/spmv.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace scm {
namespace {

ConformanceChecker::Config lenient() {
  ConformanceChecker::Config config;
  config.strict = false;
  return config;
}

ConformanceChecker::Config lenient(index_t cap) {
  ConformanceChecker::Config config = lenient();
  config.live_word_cap = cap;
  return config;
}

// --- Adversarial fixtures: one per enforced invariant. ------------------

TEST(ConformanceAdversarial, HoardingCellExceedsLiveWordCap) {
  ScopedGlobalTraceSuspension off;
  Machine m;
  ConformanceChecker checker(lenient(/*cap=*/8));
  m.set_trace(&checker);
  {
    Machine::PhaseScope scope(m, "hoard");
    // Θ(√n)-style hoarding: park 40 words on one processor in one phase.
    for (index_t i = 1; i <= 40; ++i) m.send({0, i}, {0, 0}, Clock{});
  }
  checker.finish();
  const ConformanceReport& report = checker.report();
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.count(ViolationKind::kMemoryCapExceeded), 1);
  const Violation& v = report.violations.front();
  EXPECT_EQ(v.kind, ViolationKind::kMemoryCapExceeded);
  EXPECT_EQ(v.phase, "hoard");
  EXPECT_EQ(v.at, (Coord{0, 0}));
  EXPECT_FALSE(v.backtrace.empty());
  EXPECT_EQ(report.peak_residency, 40);
}

TEST(ConformanceAdversarial, PhaseBoundaryOpensAFreshEpoch) {
  ScopedGlobalTraceSuspension off;
  Machine m;
  ConformanceChecker checker(lenient(/*cap=*/8));
  m.set_trace(&checker);
  // The same 40 words, but spread over phases with <= 8 per epoch: legal.
  for (index_t round = 0; round < 5; ++round) {
    Machine::PhaseScope scope(m, "round");
    for (index_t i = 1; i <= 8; ++i) m.send({0, i}, {0, 0}, Clock{});
  }
  checker.finish();
  EXPECT_TRUE(checker.report().ok()) << checker.report().str();
}

TEST(ConformanceAdversarial, NonMonotoneClockIsCaught) {
  ScopedGlobalTraceSuspension off;
  ConformanceChecker checker(lenient());
  // A forged trace event whose arrival clock did not advance by the hop.
  MessageEvent forged{{0, 0}, {0, 3}, 3, Clock{5, 10}, Clock{5, 10}};
  checker.on_send(forged);
  checker.finish();
  ASSERT_EQ(checker.report().count(ViolationKind::kNonMonotoneClock), 1);
  EXPECT_EQ(checker.report().violations.front().at, (Coord{0, 3}));
}

TEST(ConformanceAdversarial, CorruptDistanceIsCaught) {
  ScopedGlobalTraceSuspension off;
  ConformanceChecker checker(lenient());
  // Distance 2 claimed for a Manhattan-3 hop (energy under-charge).
  MessageEvent forged{{0, 0}, {0, 3}, 2, Clock{}, Clock{1, 2}};
  checker.on_send(forged);
  checker.finish();
  EXPECT_EQ(checker.report().count(ViolationKind::kCorruptDistance), 1);
}

TEST(ConformanceAdversarial, UnbalancedPhaseScopeIsCaught) {
  ScopedGlobalTraceSuspension off;
  Machine m;
  ConformanceChecker checker(lenient());
  m.set_trace(&checker);
  m.begin_phase("leaky");
  m.send({0, 0}, {0, 1}, Clock{});
  checker.finish();
  ASSERT_EQ(checker.report().count(ViolationKind::kUnbalancedPhase), 1);
  const Violation& v = checker.report().violations.front();
  EXPECT_EQ(v.phase, "leaky");
  EXPECT_NE(v.detail.find("leaky"), std::string::npos);
  m.end_phase();  // clean up the machine's stack
}

TEST(ConformanceAdversarial, SendFromRetiredCellIsCaught) {
  ScopedGlobalTraceSuspension off;
  Machine m;
  ConformanceChecker checker(lenient());
  m.set_trace(&checker);
  m.birth({2, 2});
  m.death({2, 2});
  m.send({2, 2}, {2, 3}, Clock{});
  ASSERT_EQ(checker.report().count(ViolationKind::kSendFromDeadCell), 1);
  EXPECT_EQ(checker.report().violations.front().at, (Coord{2, 2}));
  // A new arrival revives the cell: sending onward is legal again.
  m.send({0, 0}, {2, 2}, Clock{});
  m.send({2, 2}, {0, 0}, Clock{});
  checker.finish();
  EXPECT_EQ(checker.report().count(ViolationKind::kSendFromDeadCell), 1);
}

TEST(ConformanceAdversarial, EndpointOutsideArenaIsCaught) {
  ScopedGlobalTraceSuspension off;
  Machine m;
  ConformanceChecker::Config config = lenient();
  config.arena = Rect{0, 0, 4, 4};
  ConformanceChecker checker(config);
  m.set_trace(&checker);
  m.send({0, 0}, {3, 3}, Clock{});  // inside: fine
  m.send({9, 9}, {0, 0}, Clock{});  // from outside the arena
  checker.finish();
  ASSERT_EQ(checker.report().count(ViolationKind::kIllegalCoordinate), 1);
  EXPECT_EQ(checker.report().violations.front().at, (Coord{9, 9}));
}

TEST(ConformanceAdversarial, VerifyCatchesUnobservedCharges) {
  ScopedGlobalTraceSuspension off;
  Machine m;
  m.send({0, 0}, {0, 5}, Clock{});  // charged before the checker attached
  ConformanceChecker checker(lenient());
  m.set_trace(&checker);
  m.send({0, 0}, {0, 2}, Clock{});
  checker.verify(m);
  EXPECT_EQ(checker.report().count(ViolationKind::kEnergyMismatch), 1);
  EXPECT_EQ(checker.report().count(ViolationKind::kMessageCountMismatch), 1);
}

TEST(ConformanceAdversarial, BacktraceKeepsTheMostRecentMessages) {
  ScopedGlobalTraceSuspension off;
  Machine m;
  ConformanceChecker::Config config = lenient();
  config.backtrace_capacity = 4;
  ConformanceChecker checker(config);
  m.set_trace(&checker);
  for (index_t i = 1; i <= 10; ++i) m.send({0, 0}, {i, 0}, Clock{});
  checker.on_send(MessageEvent{{0, 0}, {0, 1}, 99, Clock{}, Clock{1, 99}});
  ASSERT_EQ(checker.report().count(ViolationKind::kCorruptDistance), 1);
  const Violation& v = checker.report().violations.front();
  ASSERT_EQ(v.backtrace.size(), 4u);
  // Oldest retained message is send #7; the newest is send #10.
  EXPECT_EQ(v.backtrace.front().to, (Coord{7, 0}));
  EXPECT_EQ(v.backtrace.back().to, (Coord{10, 0}));
}

TEST(ConformanceAdversarialDeathTest, StrictModeAbortsAtTheViolation) {
  ScopedGlobalTraceSuspension off;
  ConformanceChecker::Config config;
  config.strict = true;
  EXPECT_DEATH(
      {
        ConformanceChecker strict_checker(config);
        strict_checker.on_send(
            MessageEvent{{0, 0}, {0, 3}, 3, Clock{5, 10}, Clock{5, 10}});
      },
      "non-monotone-clock");
}

TEST(ConformanceAdversarial, StrictDefaultHonorsTheEnvironment) {
#ifndef SCM_STRICT_MODEL
  const char* saved = std::getenv("SCM_STRICT_MODEL");
  const std::string restore = saved == nullptr ? "" : saved;
  ::setenv("SCM_STRICT_MODEL", "1", 1);
  EXPECT_TRUE(ConformanceChecker::strict_model_default());
  ::setenv("SCM_STRICT_MODEL", "0", 1);
  EXPECT_FALSE(ConformanceChecker::strict_model_default());
  if (saved == nullptr) {
    ::unsetenv("SCM_STRICT_MODEL");
  } else {
    ::setenv("SCM_STRICT_MODEL", restore.c_str(), 1);
  }
#else
  EXPECT_TRUE(ConformanceChecker::strict_model_default());
#endif
}

// --- Conformance sweeps: the paper's headline algorithms run clean. -----

TEST(ConformanceSweep, ScanIsViolationFree) {
  Machine m;
  ConformanceChecker checker(lenient());
  m.set_trace(&checker);
  auto values = random_ints(7, 1024, 0, 99);
  std::vector<long long> v(values.begin(), values.end());
  auto a = GridArray<long long>::from_values_square({0, 0}, v);
  a.announce(m);
  (void)scan(m, a, Plus{});
  checker.verify(m);
  EXPECT_TRUE(checker.report().ok()) << checker.report().str();
  EXPECT_EQ(checker.report().energy, m.metrics().energy);
}

TEST(ConformanceSweep, Mergesort2dIsViolationFree) {
  Machine m;
  ConformanceChecker checker(lenient());
  m.set_trace(&checker);
  auto v = random_doubles(11, 1024);
  auto a = GridArray<double>::from_values_square({0, 0}, v,
                                                 Layout::kRowMajor);
  a.announce(m);
  (void)mergesort2d(m, a);
  checker.verify(m);
  EXPECT_TRUE(checker.report().ok()) << checker.report().str();
}

TEST(ConformanceSweep, SelectIsViolationFree) {
  Machine m;
  ConformanceChecker checker(lenient());
  m.set_trace(&checker);
  auto v = random_doubles(13, 1024);
  auto a = GridArray<double>::from_values_square({0, 0}, v,
                                                 Layout::kRowMajor);
  a.announce(m);
  (void)select_rank(m, a, 512, /*seed=*/17);
  checker.verify(m);
  EXPECT_TRUE(checker.report().ok()) << checker.report().str();
}

TEST(ConformanceSweep, SpmvIsViolationFree) {
  Machine m;
  ConformanceChecker checker(lenient());
  m.set_trace(&checker);
  const CooMatrix a = random_uniform_matrix(100, 400, /*seed=*/19);
  const auto x = random_doubles(23, static_cast<size_t>(a.n_cols()));
  (void)spmv(m, a, x);
  checker.verify(m);
  EXPECT_TRUE(checker.report().ok()) << checker.report().str();
}

TEST(ConformanceSweep, ReportSummarisesACleanRun) {
  Machine m;
  ConformanceChecker checker(lenient());
  m.set_trace(&checker);
  m.send({0, 0}, {2, 3}, Clock{});
  checker.verify(m);
  const std::string text = checker.report().str();
  EXPECT_NE(text.find("conformance: ok"), std::string::npos);
  EXPECT_NE(text.find("energy 5"), std::string::npos);
}

}  // namespace
}  // namespace scm
