// Adversarial key patterns for the comparison-based algorithms: negative
// keys, heavy duplication, and all-equal arrays. Duplicates are the
// classic failure mode of rank-based merging (ranks stop being unique),
// and negative keys catch any accidental reliance on value arithmetic.
#include "sort/bitonic.hpp"
#include "sort/keyed.hpp"
#include "sort/mergesort2d.hpp"
#include "sort/rank_select_sorted.hpp"
#include "spatial/grid_array.hpp"
#include "spatial/machine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

namespace scm {
namespace {

const std::vector<std::vector<std::int64_t>> kAdversarialInputs = {
    {-5, -5, -5, -5, -5, -5, -5, -5},                  // all equal, negative
    {0, 0, 0, 0},                                      // all equal, zero
    {3, -1, 3, -1, 3, -1, 3, -1, 3, -1, 3, -1},        // two-value flip
    {-9, 7, -9, 7, 0, 0, -9, 7, 0},                    // three values, mixed
    {5, 4, 3, 2, 1, 0, -1, -2, -3, -4, -5},            // descending run
    {std::numeric_limits<std::int64_t>::min() / 4,
     std::numeric_limits<std::int64_t>::max() / 4, 0,
     std::numeric_limits<std::int64_t>::min() / 4},    // extreme magnitudes
    {1},                                               // singleton
    {2, 2},                                            // duplicate pair
};

TEST(AdversarialKeys, BitonicSortsEveryPattern) {
  for (const auto& input : kAdversarialInputs) {
    Machine m;
    const auto arr = GridArray<std::int64_t>::from_values_square({0, 0}, input);
    const GridArray<std::int64_t> sorted =
        bitonic_sort_any(m, arr, std::less<>{});
    std::vector<std::int64_t> want = input;
    std::sort(want.begin(), want.end());
    EXPECT_EQ(sorted.values(), want);
  }
}

TEST(AdversarialKeys, Mergesort2dSortsEveryPattern) {
  for (const auto& input : kAdversarialInputs) {
    Machine m;
    const auto arr = GridArray<std::int64_t>::from_values_square({0, 0}, input);
    const GridArray<std::int64_t> sorted = mergesort2d(m, arr);
    std::vector<std::int64_t> want = input;
    std::sort(want.begin(), want.end());
    EXPECT_EQ(sorted.values(), want);
  }
}

TEST(AdversarialKeys, Mergesort2dIsStableUnderDuplicates) {
  // Sort (key, original index) pairs by key only; within each duplicate
  // key the original order must survive. Exercises the id-tagged total
  // order end to end.
  const std::vector<std::int64_t> keys = {2, 1, 2, 1, 2, 1, 2, 1,
                                          0, 0, 2, 1, 0, 2, 0, 1};
  std::vector<WithId<std::int64_t>> tagged(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    tagged[i] = WithId<std::int64_t>{keys[i], static_cast<index_t>(i)};
  }
  Machine m;
  const auto arr =
      GridArray<WithId<std::int64_t>>::from_values_square({0, 0}, tagged);
  const auto sorted = mergesort2d(
      m, arr, [](const WithId<std::int64_t>& a,
                 const WithId<std::int64_t>& b) { return a.value < b.value; });
  std::vector<WithId<std::int64_t>> want = tagged;
  std::stable_sort(want.begin(), want.end(),
                   [](const WithId<std::int64_t>& a,
                      const WithId<std::int64_t>& b) {
                     return a.value < b.value;
                   });
  EXPECT_EQ(sorted.values(), want);
}

/// Runs rank_select_two_sorted on the concatenation keys = A || B (A the
/// first `na` elements, both halves pre-sorted by the caller) for every
/// rank k, and checks each split against a host two-pointer merge.
void check_rank_select_all_ranks(const std::vector<std::int64_t>& keys,
                                 index_t na) {
  const auto n = static_cast<index_t>(keys.size());
  const index_t nb = n - na;
  using E = WithId<std::int64_t>;
  std::vector<E> a_vals(static_cast<size_t>(na));
  std::vector<E> b_vals(static_cast<size_t>(nb));
  for (index_t i = 0; i < na; ++i) {
    a_vals[static_cast<size_t>(i)] = E{keys[static_cast<size_t>(i)], i};
  }
  for (index_t i = 0; i < nb; ++i) {
    b_vals[static_cast<size_t>(i)] = E{keys[static_cast<size_t>(na + i)],
                                       na + i};
  }
  const TotalLess<std::less<std::int64_t>> less{};
  const index_t side_a = square_side_for(na);
  for (index_t k = 0; k <= n; ++k) {
    Machine m;
    const auto a = GridArray<E>::from_values_square({0, 0}, a_vals);
    const auto b =
        GridArray<E>::from_values_square({0, side_a + 1}, b_vals);
    const SplitResult split = rank_select_two_sorted(m, a, b, k, {0, 0}, less);
    index_t want_a = 0;
    index_t ia = 0;
    index_t ib = 0;
    for (index_t taken = 0; taken < k; ++taken) {
      const bool from_a =
          ib >= nb || (ia < na && less(a_vals[static_cast<size_t>(ia)],
                                       b_vals[static_cast<size_t>(ib)]));
      if (from_a) {
        ++ia;
        ++want_a;
      } else {
        ++ib;
      }
    }
    EXPECT_EQ(split.a_count, want_a) << "k=" << k << " na=" << na;
    EXPECT_EQ(split.b_count, k - want_a) << "k=" << k << " na=" << na;
  }
}

TEST(AdversarialKeys, RankSelectAllEqualKeys) {
  check_rank_select_all_ranks(std::vector<std::int64_t>(24, 7), 11);
}

TEST(AdversarialKeys, RankSelectDuplicateHeavyNegativeKeys) {
  std::vector<std::int64_t> keys = {-3, -3, -3, 0, 0, 2,  2,  2, 2,
                                    -3, -3, 0,  0, 2, 2, -3, 0, 2};
  const index_t na = 9;
  std::sort(keys.begin(), keys.begin() + na);
  std::sort(keys.begin() + na, keys.end());
  check_rank_select_all_ranks(keys, na);
}

TEST(AdversarialKeys, RankSelectEmptySideAndEdgeRanks) {
  // One empty array: every rank must come from the other side.
  check_rank_select_all_ranks({1, 1, 2, 2, 3, 3}, 0);
  check_rank_select_all_ranks({1, 1, 2, 2, 3, 3}, 6);
}

}  // namespace
}  // namespace scm
