// Integration tests composing several primitives end-to-end, exercising
// the public umbrella API the way applications do.
#include "core/scm.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

namespace scm {
namespace {

TEST(Integration, SortThenScanComputesSortedPrefixSums) {
  Machine m;
  auto v = random_doubles(1, 256);
  auto a = GridArray<double>::from_values_square({0, 0}, v,
                                                 Layout::kRowMajor);
  GridArray<double> sorted = mergesort2d(m, a);
  GridArray<double> z =
      route_permutation(m, sorted, sorted.region(), Layout::kZOrder);
  GridArray<double> prefix = scan(m, z, Plus{});

  auto ref = v;
  std::sort(ref.begin(), ref.end());
  std::vector<double> want(ref.size());
  std::inclusive_scan(ref.begin(), ref.end(), want.begin());
  const auto got = prefix.values();
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], 1e-9);
  }
}

TEST(Integration, SelectAgreesWithSortAtEveryRank) {
  auto v = random_doubles(2, 128);
  auto a = GridArray<double>::from_values_square({0, 0}, v,
                                                 Layout::kRowMajor);
  Machine ms;
  GridArray<double> sorted = mergesort2d(ms, a);
  const auto sv = sorted.values();
  for (index_t k = 1; k <= 128; k += 13) {
    Machine m;
    EXPECT_EQ(select_rank(m, a, k, 11 + k).value,
              sv[static_cast<size_t>(k - 1)]);
  }
}

TEST(Integration, PowerIterationWithSpmv) {
  // Two steps of y <- A y with the spatial SpMV must match the dense
  // reference — the PageRank-style loop of the examples.
  const index_t n = 64;
  const CooMatrix a = random_uniform_matrix(n, 3 * n, 3);
  std::vector<double> y = random_doubles(4, static_cast<size_t>(n));
  std::vector<double> ref = y;
  for (int it = 0; it < 2; ++it) {
    Machine m;
    y = spmv(m, a, y).y;
    ref = a.multiply_reference(ref);
  }
  for (index_t i = 0; i < n; ++i) {
    EXPECT_NEAR(y[static_cast<size_t>(i)], ref[static_cast<size_t>(i)],
                1e-6 * (1.0 + std::abs(ref[static_cast<size_t>(i)])));
  }
}

TEST(Integration, TopKViaSelectThenFilterMatchesSort) {
  // The GNN sort-pooling pattern: threshold = rank-k element, then keep
  // everything at or below it.
  const index_t n = 200;
  const index_t k = 25;
  auto v = random_doubles(5, static_cast<size_t>(n));
  auto a = GridArray<double>::from_values_square({0, 0}, v,
                                                 Layout::kRowMajor);
  Machine m;
  const double threshold = select_rank(m, a, k, 6).value;
  std::vector<double> kept;
  for (double x : v) {
    if (x <= threshold) kept.push_back(x);
  }
  EXPECT_EQ(static_cast<index_t>(kept.size()), k);  // distinct doubles
  auto ref = v;
  std::sort(ref.begin(), ref.end());
  std::sort(kept.begin(), kept.end());
  EXPECT_TRUE(std::equal(kept.begin(), kept.end(), ref.begin()));
}

TEST(Integration, CostReportMentionsPhases) {
  Machine m;
  auto v = random_doubles(7, 64);
  auto a = GridArray<double>::from_values_square({0, 0}, v,
                                                 Layout::kRowMajor);
  (void)mergesort2d(m, a);
  const std::string report = cost_report(m);
  EXPECT_NE(report.find("mergesort2d"), std::string::npos);
  EXPECT_NE(report.find("energy="), std::string::npos);
  EXPECT_STREQ(version(), "1.0.0");
}

TEST(Integration, SegmentedScanDrivesSegmentedBroadcast) {
  // The SpMV column-broadcast pattern in isolation: heads carry a value,
  // First fans it across each segment.
  Machine m;
  std::vector<Seg<double>> sv;
  for (int i = 0; i < 100; ++i) {
    sv.push_back({i % 10 == 0 ? static_cast<double>(i) : -1.0, i % 10 == 0});
  }
  auto a = GridArray<Seg<double>>::from_values_square({0, 0}, sv);
  GridArray<Seg<double>> out = segmented_scan(m, a, First{});
  for (index_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].value.value, static_cast<double>((i / 10) * 10));
  }
}

}  // namespace
}  // namespace scm
