// Tests of randomized rank selection (Section VI, Theorem VI.3).
#include "select/select.hpp"

#include "spatial/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace scm {
namespace {

double reference_rank(std::vector<double> v, index_t k) {
  std::nth_element(v.begin(), v.begin() + (k - 1), v.end());
  return v[static_cast<size_t>(k - 1)];
}

class SelectSweep
    : public ::testing::TestWithParam<std::tuple<index_t, std::uint64_t>> {};

TEST_P(SelectSweep, MatchesNthElementAcrossRanks) {
  const auto [n, seed] = GetParam();
  auto v = random_doubles(seed, static_cast<size_t>(n));
  auto a = GridArray<double>::from_values_square({0, 0}, v,
                                                 Layout::kRowMajor);
  for (index_t k : {index_t{1}, n / 4 + 1, (n + 1) / 2, 3 * n / 4 + 1, n}) {
    Machine m;
    const SelectResult<double> r = select_rank(m, a, k, seed * 31 + k);
    EXPECT_EQ(r.value, reference_rank(v, k))
        << "n=" << n << " k=" << k << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, SelectSweep,
    ::testing::Combine(::testing::Values<index_t>(16, 64, 100, 500, 1024,
                                                  4096),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

TEST(Select, TinyInputs) {
  for (index_t n : {1, 2, 3, 4, 7}) {
    auto v = random_doubles(5, static_cast<size_t>(n));
    auto a = GridArray<double>::from_values_square({0, 0}, v,
                                                   Layout::kRowMajor);
    for (index_t k = 1; k <= n; ++k) {
      Machine m;
      EXPECT_EQ(select_rank(m, a, k, 77).value, reference_rank(v, k));
    }
  }
}

TEST(Select, DuplicateKeys) {
  std::vector<long long> v;
  std::mt19937_64 rng(6);
  for (int i = 0; i < 1000; ++i) v.push_back(static_cast<long long>(rng() % 9));
  auto a = GridArray<long long>::from_values_square({0, 0}, v,
                                                    Layout::kRowMajor);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (index_t k : {index_t{1}, index_t{250}, index_t{500}, index_t{1000}}) {
    Machine m;
    EXPECT_EQ(select_rank(m, a, k, k).value,
              sorted[static_cast<size_t>(k - 1)]);
  }
}

TEST(Select, AllEqualKeys) {
  std::vector<int> v(500, 42);
  auto a = GridArray<int>::from_values_square({0, 0}, v, Layout::kRowMajor);
  Machine m;
  EXPECT_EQ(select_rank(m, a, 250, 1).value, 42);
}

TEST(Select, MedianHelper) {
  auto v = random_doubles(8, 999);
  auto a = GridArray<double>::from_values_square({0, 0}, v,
                                                 Layout::kRowMajor);
  Machine m;
  EXPECT_EQ(select_median(m, a, 3).value, reference_rank(v, 500));
}

TEST(Select, DeterministicGivenSeed) {
  auto v = random_doubles(9, 2000);
  auto a = GridArray<double>::from_values_square({0, 0}, v,
                                                 Layout::kRowMajor);
  Machine m1;
  Machine m2;
  const auto r1 = select_rank(m1, a, 700, 123);
  const auto r2 = select_rank(m2, a, 700, 123);
  EXPECT_EQ(r1.value, r2.value);
  EXPECT_EQ(r1.iterations, r2.iterations);
  EXPECT_EQ(m1.metrics(), m2.metrics());
}

TEST(Select, ConstantIterationsAcrossSeeds) {
  // Theorem VI.3: O(1) iterations w.h.p. Over many seeds the iteration
  // count must stay small and fallbacks rare.
  auto v = random_doubles(10, 4096);
  auto a = GridArray<double>::from_values_square({0, 0}, v,
                                                 Layout::kRowMajor);
  index_t max_iters = 0;
  index_t fallbacks = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Machine m;
    const auto r = select_rank(m, a, 2048, seed);
    EXPECT_EQ(r.value, reference_rank(v, 2048));
    max_iters = std::max(max_iters, r.iterations);
    fallbacks += r.fell_back ? 1 : 0;
  }
  EXPECT_LE(max_iters, 10);
  EXPECT_LE(fallbacks, 1);
}

TEST(Select, LinearEnergyLogSquaredDepth) {
  for (index_t n : {1024, 4096, 16384}) {
    auto v = random_doubles(11, static_cast<size_t>(n));
    auto a = GridArray<double>::from_values_square({0, 0}, v,
                                                   Layout::kRowMajor);
    Machine m;
    const auto r = select_rank(m, a, (n + 1) / 2, 7);
    ASSERT_FALSE(r.fell_back);
    const double nd = static_cast<double>(n);
    EXPECT_LE(static_cast<double>(m.metrics().energy), 250.0 * nd) << n;
    EXPECT_LE(static_cast<double>(m.metrics().depth()),
              4.0 * std::pow(std::log2(nd), 2))
        << n;
    EXPECT_LE(static_cast<double>(m.metrics().distance()),
              70.0 * std::sqrt(nd))
        << n;
  }
}

TEST(TopK, ReturnsTheKSmallestSorted) {
  auto v = random_doubles(14, 300);
  auto a = GridArray<double>::from_values_square({0, 0}, v,
                                                 Layout::kRowMajor);
  for (index_t k : {index_t{0}, index_t{1}, index_t{10}, index_t{64},
                    index_t{300}}) {
    Machine m;
    GridArray<double> out = top_k(m, a, k, 5);
    auto ref = v;
    std::sort(ref.begin(), ref.end());
    ref.resize(static_cast<size_t>(k));
    EXPECT_EQ(out.values(), ref) << "k=" << k;
  }
}

TEST(TopK, DuplicatesResolveByInputOrder) {
  std::vector<int> v{5, 3, 5, 3, 5, 1, 3, 5};
  auto a = GridArray<int>::from_values_square({0, 0}, v, Layout::kRowMajor);
  Machine m;
  GridArray<int> out = top_k(m, a, 4, 9);
  EXPECT_EQ(out.values(), (std::vector<int>{1, 3, 3, 3}));
}

TEST(TopK, CheaperThanAFullSortForSmallK) {
  const index_t n = 4096;
  auto v = random_doubles(15, static_cast<size_t>(n));
  auto a = GridArray<double>::from_values_square({0, 0}, v,
                                                 Layout::kRowMajor);
  Machine mk;
  (void)top_k(mk, a, 32, 3);
  Machine ms;
  (void)mergesort2d(ms, a);
  EXPECT_LT(mk.metrics().energy * 5, ms.metrics().energy);
}

TEST(Select, LargerSamplingConstantsStayCorrect) {
  auto v = random_doubles(13, 2048);
  auto a = GridArray<double>::from_values_square({0, 0}, v,
                                                 Layout::kRowMajor);
  const double want = reference_rank(v, 1024);
  for (double c : {3.0, 6.0, 12.0}) {
    Machine m;
    const auto r = select_rank(m, a, 1024, 17, std::less<double>{},
                               SelectConfig{c});
    EXPECT_EQ(r.value, want) << "c=" << c;
  }
}

TEST(Select, CustomComparatorSelectsUnderThatOrder) {
  auto v = random_doubles(12, 500);
  auto a = GridArray<double>::from_values_square({0, 0}, v,
                                                 Layout::kRowMajor);
  Machine m;
  const auto r = select_rank(m, a, 1, 5, std::greater<double>{});
  EXPECT_EQ(r.value, *std::max_element(v.begin(), v.end()));
}

}  // namespace
}  // namespace scm
