// Tests of rank selection in two sorted arrays (Section V-C-c, Lemma V.6).
#include "sort/rank_select_sorted.hpp"

#include "spatial/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace scm {
namespace {

// Builds two sorted Z-order range arrays on one parent square and checks
// the split for every requested k.
void check_splits(index_t na, index_t nb, std::uint64_t seed,
                  const std::vector<index_t>& ks) {
  auto va = random_doubles(seed, static_cast<size_t>(na));
  auto vb = random_doubles(seed + 1, static_cast<size_t>(nb));
  std::sort(va.begin(), va.end());
  std::sort(vb.begin(), vb.end());
  const index_t side = square_side_for(na + nb);
  const Rect parent = square_at({0, 0}, side);
  GridArray<double> a(parent, Layout::kZOrder, na, 0);
  for (index_t i = 0; i < na; ++i) a[i].value = va[static_cast<size_t>(i)];
  GridArray<double> b(parent, Layout::kZOrder, nb, na);
  for (index_t i = 0; i < nb; ++i) b[i].value = vb[static_cast<size_t>(i)];

  std::vector<double> all = va;
  all.insert(all.end(), vb.begin(), vb.end());
  std::sort(all.begin(), all.end());

  for (index_t k : ks) {
    Machine m;
    const SplitResult r = rank_select_two_sorted(
        m, a, b, k, parent.origin(), std::less<double>{});
    ASSERT_EQ(r.a_count + r.b_count, k) << "k=" << k;
    ASSERT_GE(r.a_count, 0);
    ASSERT_LE(r.a_count, na);
    // The prefixes must be exactly the k smallest of the union.
    std::vector<double> got(va.begin(), va.begin() + r.a_count);
    got.insert(got.end(), vb.begin(), vb.begin() + r.b_count);
    std::sort(got.begin(), got.end());
    const std::vector<double> want(all.begin(), all.begin() + k);
    ASSERT_EQ(got, want) << "k=" << k << " na=" << na << " nb=" << nb;
  }
}

TEST(RankSelectTwoSorted, ExhaustiveSmall) {
  for (index_t na : {0, 1, 3, 8}) {
    for (index_t nb : {1, 2, 7}) {
      std::vector<index_t> ks;
      for (index_t k = 0; k <= na + nb; ++k) ks.push_back(k);
      check_splits(na, nb, 42 + na * 10 + nb, ks);
    }
  }
}

TEST(RankSelectTwoSorted, MediumAllK) {
  std::vector<index_t> ks;
  for (index_t k = 0; k <= 96; ++k) ks.push_back(k);
  check_splits(40, 56, 7, ks);
}

TEST(RankSelectTwoSorted, LargeSpotChecks) {
  check_splits(500, 524, 11,
               {1, 2, 100, 256, 511, 512, 513, 777, 1023, 1024});
  check_splits(1024, 0, 12, {1, 512, 1024});
  check_splits(0, 777, 13, {1, 400, 777});
  check_splits(1000, 24, 14, {1, 12, 24, 25, 500, 1024});
}

TEST(RankSelectTwoSorted, InterleavedAndDisjointValueRanges) {
  // B's values all above A's: the split must exhaust A first.
  const index_t na = 100;
  const index_t nb = 100;
  const index_t side = square_side_for(na + nb);
  const Rect parent = square_at({0, 0}, side);
  GridArray<double> a(parent, Layout::kZOrder, na, 0);
  GridArray<double> b(parent, Layout::kZOrder, nb, na);
  for (index_t i = 0; i < na; ++i) a[i].value = static_cast<double>(i);
  for (index_t i = 0; i < nb; ++i) b[i].value = 1000.0 + i;
  for (index_t k : {50, 100, 150}) {
    Machine m;
    const SplitResult r = rank_select_two_sorted(
        m, a, b, k, parent.origin(), std::less<double>{});
    EXPECT_EQ(r.a_count, std::min<index_t>(k, na)) << k;
    EXPECT_EQ(r.b_count, k - r.a_count);
  }
}

TEST(RankSelectTwoSorted, CostBoundsLemmaV6) {
  const index_t na = 2048;
  const index_t nb = 2048;
  auto va = random_doubles(21, static_cast<size_t>(na));
  auto vb = random_doubles(22, static_cast<size_t>(nb));
  std::sort(va.begin(), va.end());
  std::sort(vb.begin(), vb.end());
  const Rect parent = square_at({0, 0}, square_side_for(na + nb));
  GridArray<double> a(parent, Layout::kZOrder, na, 0);
  GridArray<double> b(parent, Layout::kZOrder, nb, na);
  for (index_t i = 0; i < na; ++i) a[i].value = va[static_cast<size_t>(i)];
  for (index_t i = 0; i < nb; ++i) b[i].value = vb[static_cast<size_t>(i)];
  Machine m;
  (void)rank_select_two_sorted(m, a, b, (na + nb) / 2, parent.origin(),
                               std::less<double>{});
  const double n = static_cast<double>(na + nb);
  // O(n^{5/4}) energy, O(log n) depth, O(sqrt n) distance. The energy
  // constant is dominated by the All-Pairs Sort of the ~6 sqrt(n)-wide
  // windows (6^{5/2} ~ 88 on its own); the growth *shape* is fitted by
  // bench_rank_two_arrays.
  EXPECT_LE(static_cast<double>(m.metrics().energy),
            300.0 * std::pow(n, 1.25));
  EXPECT_LE(static_cast<double>(m.metrics().depth()), 6.0 * std::log2(n));
  EXPECT_LE(static_cast<double>(m.metrics().distance()),
            60.0 * std::sqrt(n));
}

}  // namespace
}  // namespace scm
