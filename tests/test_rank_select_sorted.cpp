// Tests of rank selection in two sorted arrays (Section V-C-c, Lemma V.6).
#include "sort/rank_select_sorted.hpp"

#include "sort/keyed.hpp"
#include "spatial/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <span>
#include <tuple>
#include <utility>
#include <vector>

namespace scm {
namespace {

// Builds two sorted Z-order range arrays on one parent square and checks
// the split for every requested k.
void check_splits(index_t na, index_t nb, std::uint64_t seed,
                  const std::vector<index_t>& ks) {
  auto va = random_doubles(seed, static_cast<size_t>(na));
  auto vb = random_doubles(seed + 1, static_cast<size_t>(nb));
  std::sort(va.begin(), va.end());
  std::sort(vb.begin(), vb.end());
  const index_t side = square_side_for(na + nb);
  const Rect parent = square_at({0, 0}, side);
  GridArray<double> a(parent, Layout::kZOrder, na, 0);
  for (index_t i = 0; i < na; ++i) a[i].value = va[static_cast<size_t>(i)];
  GridArray<double> b(parent, Layout::kZOrder, nb, na);
  for (index_t i = 0; i < nb; ++i) b[i].value = vb[static_cast<size_t>(i)];

  std::vector<double> all = va;
  all.insert(all.end(), vb.begin(), vb.end());
  std::sort(all.begin(), all.end());

  for (index_t k : ks) {
    Machine m;
    const SplitResult r = rank_select_two_sorted(
        m, a, b, k, parent.origin(), std::less<double>{});
    ASSERT_EQ(r.a_count + r.b_count, k) << "k=" << k;
    ASSERT_GE(r.a_count, 0);
    ASSERT_LE(r.a_count, na);
    // The prefixes must be exactly the k smallest of the union.
    std::vector<double> got(va.begin(), va.begin() + r.a_count);
    got.insert(got.end(), vb.begin(), vb.begin() + r.b_count);
    std::sort(got.begin(), got.end());
    const std::vector<double> want(all.begin(), all.begin() + k);
    ASSERT_EQ(got, want) << "k=" << k << " na=" << na << " nb=" << nb;
  }
}

TEST(RankSelectTwoSorted, ExhaustiveSmall) {
  for (index_t na : {0, 1, 3, 8}) {
    for (index_t nb : {1, 2, 7}) {
      std::vector<index_t> ks;
      for (index_t k = 0; k <= na + nb; ++k) ks.push_back(k);
      check_splits(na, nb, 42 + na * 10 + nb, ks);
    }
  }
}

TEST(RankSelectTwoSorted, MediumAllK) {
  std::vector<index_t> ks;
  for (index_t k = 0; k <= 96; ++k) ks.push_back(k);
  check_splits(40, 56, 7, ks);
}

TEST(RankSelectTwoSorted, LargeSpotChecks) {
  check_splits(500, 524, 11,
               {1, 2, 100, 256, 511, 512, 513, 777, 1023, 1024});
  check_splits(1024, 0, 12, {1, 512, 1024});
  check_splits(0, 777, 13, {1, 400, 777});
  check_splits(1000, 24, 14, {1, 12, 24, 25, 500, 1024});
}

TEST(RankSelectTwoSorted, InterleavedAndDisjointValueRanges) {
  // B's values all above A's: the split must exhaust A first.
  const index_t na = 100;
  const index_t nb = 100;
  const index_t side = square_side_for(na + nb);
  const Rect parent = square_at({0, 0}, side);
  GridArray<double> a(parent, Layout::kZOrder, na, 0);
  GridArray<double> b(parent, Layout::kZOrder, nb, na);
  for (index_t i = 0; i < na; ++i) a[i].value = static_cast<double>(i);
  for (index_t i = 0; i < nb; ++i) b[i].value = 1000.0 + i;
  for (index_t k : {50, 100, 150}) {
    Machine m;
    const SplitResult r = rank_select_two_sorted(
        m, a, b, k, parent.origin(), std::less<double>{});
    EXPECT_EQ(r.a_count, std::min<index_t>(k, na)) << k;
    EXPECT_EQ(r.b_count, k - r.a_count);
  }
}

TEST(RankSelectTwoSorted, CostBoundsLemmaV6) {
  const index_t na = 2048;
  const index_t nb = 2048;
  auto va = random_doubles(21, static_cast<size_t>(na));
  auto vb = random_doubles(22, static_cast<size_t>(nb));
  std::sort(va.begin(), va.end());
  std::sort(vb.begin(), vb.end());
  const Rect parent = square_at({0, 0}, square_side_for(na + nb));
  GridArray<double> a(parent, Layout::kZOrder, na, 0);
  GridArray<double> b(parent, Layout::kZOrder, nb, na);
  for (index_t i = 0; i < na; ++i) a[i].value = va[static_cast<size_t>(i)];
  for (index_t i = 0; i < nb; ++i) b[i].value = vb[static_cast<size_t>(i)];
  Machine m;
  (void)rank_select_two_sorted(m, a, b, (na + nb) / 2, parent.origin(),
                               std::less<double>{});
  const double n = static_cast<double>(na + nb);
  // O(n^{5/4}) energy, O(log n) depth, O(sqrt n) distance. Measured:
  // 0.72 n^{5/4} energy at this size (the sample All-Pairs Sort dominates;
  // the window is a walking binary search, not a second All-Pairs Sort —
  // the old window sort alone cost ~88 n^{5/4} and needed a 300x
  // constant here). The growth *shape* is fitted by bench_rank_two_arrays.
  EXPECT_LE(static_cast<double>(m.metrics().energy),
            4.0 * std::pow(n, 1.25));
  EXPECT_LE(static_cast<double>(m.metrics().depth()), 6.0 * std::log2(n));
  EXPECT_LE(static_cast<double>(m.metrics().distance()),
            30.0 * std::sqrt(n));
}

TEST(RankSelectTwoSorted, ExtremeRanksKOneAndKNMinusOne) {
  // k = 1 and k = n - 1 exercise the no-pivot path (l = 0) and the
  // deepest-pivot path (l at its maximum) respectively.
  for (auto [na, nb] : {std::pair<index_t, index_t>{500, 524},
                        {64, 1},
                        {1, 64},
                        {333, 91}}) {
    check_splits(na, nb, 91 + na, {1, na + nb - 1});
  }
}

TEST(RankSelectTwoSorted, TrivialAndOneSidedSplitsAreFree) {
  // k = 0, k = n, |A| = 0, and |B| = 0 splits are forced; they resolve
  // host-side without any machine traffic.
  auto va = random_doubles(31, 64);
  auto vb = random_doubles(32, 64);
  std::sort(va.begin(), va.end());
  std::sort(vb.begin(), vb.end());
  const Rect parent = square_at({0, 0}, square_side_for(128));
  GridArray<double> a(parent, Layout::kZOrder, 64, 0);
  GridArray<double> b(parent, Layout::kZOrder, 64, 64);
  GridArray<double> empty(parent, Layout::kZOrder, 0, 0);
  for (index_t i = 0; i < 64; ++i) a[i].value = va[static_cast<size_t>(i)];
  for (index_t i = 0; i < 64; ++i) b[i].value = vb[static_cast<size_t>(i)];
  {
    Machine m;
    const SplitResult r0 =
        rank_select_two_sorted(m, a, b, 0, parent.origin(),
                               std::less<double>{});
    const SplitResult rn =
        rank_select_two_sorted(m, a, b, 128, parent.origin(),
                               std::less<double>{});
    EXPECT_EQ(r0.a_count, 0);
    EXPECT_EQ(r0.b_count, 0);
    EXPECT_EQ(rn.a_count, 64);
    EXPECT_EQ(rn.b_count, 64);
    EXPECT_EQ(m.metrics().energy, 0);
    EXPECT_EQ(m.metrics().messages, 0);
  }
  {
    Machine m;
    const SplitResult r =
        rank_select_two_sorted(m, empty, b, 17, parent.origin(),
                               std::less<double>{});
    EXPECT_EQ(r.a_count, 0);
    EXPECT_EQ(r.b_count, 17);
    EXPECT_EQ(m.metrics().energy, 0);
  }
  {
    Machine m;
    const SplitResult r =
        rank_select_two_sorted(m, a, empty, 17, parent.origin(),
                               std::less<double>{});
    EXPECT_EQ(r.a_count, 17);
    EXPECT_EQ(r.b_count, 0);
    EXPECT_EQ(m.metrics().energy, 0);
  }
}

TEST(RankSelectTwoSorted, PivotIndexClampNeverBinds) {
  // Step 3 clamps l = (k - 1) / step against sorted.size() defensively.
  // The clamp is unreachable: every-step-th sampling of both arrays
  // yields at least ceil(na / step) + ceil(nb / step) >= ceil(n / step)
  // > (n - 1) / step >= l samples. Mirror the implementation's
  // arithmetic across adversarial size mixes, then run the ranks that
  // maximize l for real.
  for (index_t na : {1, 2, 7, 63, 64, 500, 2048}) {
    for (index_t nb : {1, 5, 64, 333, 2047}) {
      const index_t n = na + nb;
      const index_t step = std::max<index_t>(1, 2 * isqrt(n));
      const index_t samples = (na + step - 1) / step + (nb + step - 1) / step;
      const index_t l_max = (n - 1 - 1) / step;  // largest non-trivial k
      ASSERT_LT(l_max, samples) << "na=" << na << " nb=" << nb;
    }
  }
  check_splits(500, 524, 17, {1023});
  check_splits(2048, 5, 18, {2052});
}

TEST(RankSelectTwoSorted, DuplicateHeavyKeysUnderTotalLess) {
  // Massive duplication: three distinct values per array. The strict
  // total order required by the selection comes from WithId/TotalLess
  // tie-breaking, exactly as merge2d uses it.
  const index_t na = 96;
  const index_t nb = 160;
  const index_t n = na + nb;
  using E = WithId<int>;
  std::vector<E> va(static_cast<size_t>(na));
  std::vector<E> vb(static_cast<size_t>(nb));
  for (index_t i = 0; i < na; ++i) {
    va[static_cast<size_t>(i)] = E{static_cast<int>(i / 40), i};
  }
  for (index_t i = 0; i < nb; ++i) {
    vb[static_cast<size_t>(i)] = E{static_cast<int>(i / 70), na + i};
  }
  const TotalLess<std::less<int>> less{};
  const Rect parent = square_at({0, 0}, square_side_for(n));
  GridArray<E> a(parent, Layout::kZOrder, na, 0);
  GridArray<E> b(parent, Layout::kZOrder, nb, na);
  for (index_t i = 0; i < na; ++i) a[i].value = va[static_cast<size_t>(i)];
  for (index_t i = 0; i < nb; ++i) b[i].value = vb[static_cast<size_t>(i)];
  for (index_t k = 0; k <= n; ++k) {
    Machine m;
    const SplitResult r =
        rank_select_two_sorted(m, a, b, k, parent.origin(), less);
    // Host reference: two-pointer merge under the same total order.
    index_t want_a = 0;
    index_t ia = 0;
    index_t ib = 0;
    for (index_t taken = 0; taken < k; ++taken) {
      const bool from_a =
          ib >= nb || (ia < na && less(va[static_cast<size_t>(ia)],
                                       vb[static_cast<size_t>(ib)]));
      if (from_a) {
        ++ia;
        ++want_a;
      } else {
        ++ib;
      }
    }
    ASSERT_EQ(r.a_count, want_a) << "k=" << k;
    ASSERT_EQ(r.b_count, k - want_a) << "k=" << k;
  }
}

TEST(MultiselectTwoSorted, MatchesThreeSingleSelectsAndIsCheaper) {
  for (auto [na, nb, seed] :
       {std::tuple<index_t, index_t, std::uint64_t>{500, 524, 51},
        {1024, 1024, 52},
        {900, 124, 53}}) {
    auto va = random_doubles(seed, static_cast<size_t>(na));
    auto vb = random_doubles(seed + 1, static_cast<size_t>(nb));
    std::sort(va.begin(), va.end());
    std::sort(vb.begin(), vb.end());
    const index_t n = na + nb;
    const Rect parent = square_at({0, 0}, square_side_for(n));
    GridArray<double> a(parent, Layout::kZOrder, na, 0);
    GridArray<double> b(parent, Layout::kZOrder, nb, na);
    for (index_t i = 0; i < na; ++i) a[i].value = va[static_cast<size_t>(i)];
    for (index_t i = 0; i < nb; ++i) b[i].value = vb[static_cast<size_t>(i)];
    const index_t ks[3] = {n / 4, n / 2, (3 * n) / 4};

    Machine mm;
    const std::vector<SplitResult> multi = multiselect_two_sorted(
        mm, a, b, std::span<const index_t>(ks), parent.origin(),
        std::less<double>{});
    ASSERT_EQ(multi.size(), 3u);

    Machine ms;
    for (int i = 0; i < 3; ++i) {
      const SplitResult single = rank_select_two_sorted(
          ms, a, b, ks[i], parent.origin(), std::less<double>{});
      EXPECT_EQ(multi[static_cast<size_t>(i)].a_count, single.a_count)
          << "na=" << na << " k=" << ks[i];
      EXPECT_EQ(multi[static_cast<size_t>(i)].b_count, single.b_count)
          << "na=" << na << " k=" << ks[i];
    }
    // Sharing one sample gather + sort across the three ranks must beat
    // three independent selections outright.
    EXPECT_LT(mm.metrics().energy, ms.metrics().energy)
        << "na=" << na << " nb=" << nb;
  }
}

TEST(MultiselectTwoSorted, TrivialRankMixAndOrdering) {
  // Trivial ranks (k = 0, k = n) pass through the host-side shortcut even
  // when mixed with real ranks, and results come back in request order.
  auto va = random_doubles(61, 128);
  auto vb = random_doubles(62, 128);
  std::sort(va.begin(), va.end());
  std::sort(vb.begin(), vb.end());
  const Rect parent = square_at({0, 0}, square_side_for(256));
  GridArray<double> a(parent, Layout::kZOrder, 128, 0);
  GridArray<double> b(parent, Layout::kZOrder, 128, 128);
  for (index_t i = 0; i < 128; ++i) a[i].value = va[static_cast<size_t>(i)];
  for (index_t i = 0; i < 128; ++i) b[i].value = vb[static_cast<size_t>(i)];
  std::vector<double> all = va;
  all.insert(all.end(), vb.begin(), vb.end());
  std::sort(all.begin(), all.end());

  Machine m;
  const index_t ks[4] = {256, 100, 0, 33};
  const std::vector<SplitResult> r = multiselect_two_sorted(
      m, a, b, std::span<const index_t>(ks), parent.origin(),
      std::less<double>{});
  ASSERT_EQ(r.size(), 4u);
  EXPECT_EQ(r[0].a_count, 128);
  EXPECT_EQ(r[0].b_count, 128);
  EXPECT_EQ(r[2].a_count, 0);
  EXPECT_EQ(r[2].b_count, 0);
  for (size_t j : {size_t{1}, size_t{3}}) {
    const index_t k = ks[j];
    std::vector<double> got(va.begin(), va.begin() + r[j].a_count);
    got.insert(got.end(), vb.begin(), vb.begin() + r[j].b_count);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, std::vector<double>(all.begin(), all.begin() + k))
        << "k=" << k;
  }
}

}  // namespace
}  // namespace scm
