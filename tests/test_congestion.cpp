// Tests of the link-level congestion sink (spatial/congestion):
//   * a hand-built fixture whose every message is scripted, so the
//     dimension-ordered link decomposition, per-phase attribution, peaks,
//     percentiles, hotspots, and congested clock are checked against
//     values computed by hand, link by link;
//   * the link-decomposition identity on every Table-1 algorithm: the
//     summed per-link occupancy equals the machine's energy total (a
//     message of Manhattan distance d crosses exactly d links);
//   * zero-length sends, self-sends, and empty batches produce no
//     occupancy — matching the model's "free and unreported" contract;
//   * the batched on_send_bulk path yields byte-identical per-link
//     occupancy to a scalar replay of the same events;
//   * translation invariance at unit level (the fuzzer asserts it on
//     random programs; here it is pinned on a real collective);
//   * exporters: ascii report / heatmap smoke, Chrome counter track
//     parses, and the Profiler's schema-v3 JSON run report carries the
//     "congestion" section with its CI-checked invariants.
#include "spatial/congestion.hpp"

#include "collectives/baselines.hpp"
#include "collectives/scan.hpp"
#include "select/select.hpp"
#include "sort/sort.hpp"
#include "spatial/machine.hpp"
#include "spatial/profile.hpp"
#include "spatial/rng.hpp"
#include "spmv/generators.hpp"
#include "spmv/spmv.hpp"
#include "util/json.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

namespace scm {
namespace {

index_t link_sum(const CongestionMap& cm) {
  index_t sum = 0;
  for (const auto& [link, count] : cm.sorted_links()) sum += count;
  return sum;
}

// ---- Hand-built fixture, reproduced link by link ---------------------------

TEST(CongestionFixture, HandBuiltRunReproducedLinkByLink) {
  Machine m;
  CongestionMap cm;
  m.set_trace(&cm);

  Clock c{};
  {
    Machine::PhaseScope a(m, "cong_a");
    // (0,0)->(2,1), distance 3: rows first (down twice), then one right.
    c = m.send({0, 0}, {2, 1}, c);
    // (0,0)->(2,0), distance 2: retraces both down links of the first
    // message, driving them (and the phase's peak) to 2.
    c = m.send({0, 0}, {2, 0}, c);
    {
      Machine::PhaseScope b(m, "cong_b");
      // (2,1)->(0,1), distance 2: two up links, attributed to the
      // innermost phase only.
      c = m.send({2, 1}, {0, 1}, c);
    }
  }
  // Outside every scope: one left link in the kNoPhase bucket.
  c = m.send({0, 1}, {0, 0}, c);
  m.set_trace(nullptr);

  EXPECT_EQ(cm.messages(), 4);
  EXPECT_EQ(cm.total_occupancy(), 8);
  EXPECT_EQ(cm.total_occupancy(), m.metrics().energy);
  EXPECT_EQ(cm.links(), 6);

  // Every directed link, checked individually.
  EXPECT_EQ(cm.occupancy(Link{{0, 0}, {1, 0}}), 2);  // down
  EXPECT_EQ(cm.occupancy(Link{{1, 0}, {2, 0}}), 2);  // down
  EXPECT_EQ(cm.occupancy(Link{{2, 0}, {2, 1}}), 1);  // right
  EXPECT_EQ(cm.occupancy(Link{{2, 1}, {1, 1}}), 1);  // up
  EXPECT_EQ(cm.occupancy(Link{{1, 1}, {0, 1}}), 1);  // up
  EXPECT_EQ(cm.occupancy(Link{{0, 1}, {0, 0}}), 1);  // left
  // Links are directed: the reverse wire carried nothing.
  EXPECT_EQ(cm.occupancy(Link{{1, 0}, {0, 0}}), 0);
  // Routing is rows-first: no horizontal link ever leaves row 0 eastward.
  EXPECT_EQ(cm.occupancy(Link{{0, 0}, {0, 1}}), 0);
  // A non-unit "link" is not a link.
  EXPECT_EQ(cm.occupancy(Link{{0, 0}, {2, 0}}), 0);

  EXPECT_EQ(cm.max_link_load(), 2);
  EXPECT_EQ(link_sum(cm), 8);

  // Per-phase buckets partition the traffic (innermost attribution).
  const PhaseId id_a = PhaseRegistry::instance().intern("cong_a");
  const PhaseId id_b = PhaseRegistry::instance().intern("cong_b");
  EXPECT_EQ(cm.phase_peak(id_a), 2);
  EXPECT_EQ(cm.phase_peak(id_b), 1);
  EXPECT_EQ(cm.phase_peak(PhaseRegistry::instance().intern("cong_absent")),
            0);
  const auto phases = cm.phase_congestion();
  ASSERT_EQ(phases.size(), 3u);  // first-touch order: a, b, <top>
  EXPECT_EQ(phases[0].phase, id_a);
  EXPECT_EQ(phases[0].occupancy, 5);
  EXPECT_EQ(phases[0].links, 3);
  EXPECT_EQ(phases[0].peak, 2);
  EXPECT_EQ(phases[1].phase, id_b);
  EXPECT_EQ(phases[1].occupancy, 2);
  EXPECT_EQ(phases[1].links, 2);
  EXPECT_EQ(phases[1].peak, 1);
  EXPECT_EQ(phases[2].phase, kNoPhase);
  EXPECT_EQ(phases[2].occupancy, 1);
  EXPECT_EQ(phases[2].links, 1);
  EXPECT_EQ(phases[2].peak, 1);

  // Congested clock = sum of bucket peaks = 2 + 1 + 1; always at least
  // the global bottleneck.
  EXPECT_EQ(cm.congested_clock(), 4);
  EXPECT_GE(cm.congested_clock(), cm.max_link_load());

  // Occupancy distribution over the 6 touched links: {1,1,1,1,2,2}.
  const std::vector<index_t> expected_multiset{1, 1, 1, 1, 2, 2};
  EXPECT_EQ(cm.occupancy_multiset(), expected_multiset);
  EXPECT_EQ(cm.percentile(0.0), 1);    // nearest rank clamps to rank 1
  EXPECT_EQ(cm.percentile(50.0), 1);   // rank ceil(3) -> 1
  EXPECT_EQ(cm.percentile(90.0), 2);   // rank ceil(5.4) -> 2
  EXPECT_EQ(cm.percentile(100.0), 2);  // the maximum

  // Hotspots: the two load-2 links first, coordinate order breaking ties.
  const auto spots = cm.hotspot_links(3);
  ASSERT_EQ(spots.size(), 3u);
  EXPECT_EQ(spots[0].first, (Link{{0, 0}, {1, 0}}));
  EXPECT_EQ(spots[0].second, 2);
  EXPECT_EQ(spots[1].first, (Link{{1, 0}, {2, 0}}));
  EXPECT_EQ(spots[1].second, 2);
  EXPECT_EQ(spots[2].second, 1);
  // Asking for more hotspots than links returns them all.
  EXPECT_EQ(cm.hotspot_links(100).size(), 6u);

  // sorted_links is the canonical byte-comparable form, in Link order.
  const auto all = cm.sorted_links();
  ASSERT_EQ(all.size(), 6u);
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_TRUE(all[i - 1].first < all[i].first);
  }
}

// ---- Link-decomposition identity on every Table-1 algorithm ----------------

void expect_link_identity(const std::function<void(Machine&)>& algorithm) {
  Machine m;
  CongestionMap cm;
  m.set_trace(&cm);
  algorithm(m);
  m.set_trace(nullptr);
  // A run that charged nothing would make the identity vacuous.
  EXPECT_GT(cm.messages(), 0);
  EXPECT_EQ(cm.messages(), m.metrics().messages);
  // The identity: summed link occupancy == summed Manhattan distance ==
  // Metrics::energy — both through the running total and re-summed from
  // the exported per-link view.
  EXPECT_EQ(cm.total_occupancy(), m.metrics().energy);
  EXPECT_EQ(link_sum(cm), m.metrics().energy);
  EXPECT_GE(cm.congested_clock(), cm.max_link_load());
  EXPECT_GT(cm.max_link_load(), 0);
}

TEST(CongestionIdentity, Scan) {
  const auto v = random_doubles(1, 256);
  expect_link_identity([&](Machine& m) {
    auto a = GridArray<double>::from_values_square({0, 0}, v);
    a.announce(m);
    (void)scan(m, a, Plus{});
  });
}

TEST(CongestionIdentity, ExclusiveScan) {
  const auto v = random_doubles(2, 255);  // non-power-of-4 fill
  expect_link_identity([&](Machine& m) {
    auto a = GridArray<double>::from_values_square({0, 0}, v);
    (void)exclusive_scan(m, a, Plus{}, 0.0);
  });
}

TEST(CongestionIdentity, Mergesort2d) {
  const auto v = random_doubles(3, 256);
  expect_link_identity([&](Machine& m) {
    auto a =
        GridArray<double>::from_values_square({0, 0}, v, Layout::kRowMajor);
    (void)mergesort2d(m, a);
  });
}

TEST(CongestionIdentity, BitonicSort) {
  const auto v = random_doubles(4, 256);
  expect_link_identity([&](Machine& m) {
    auto a =
        GridArray<double>::from_values_square({0, 0}, v, Layout::kRowMajor);
    bitonic_sort(m, a, std::less<double>{});
  });
}

TEST(CongestionIdentity, SelectRank) {
  const auto v = random_doubles(5, 256);
  expect_link_identity([&](Machine& m) {
    auto a =
        GridArray<double>::from_values_square({0, 0}, v, Layout::kRowMajor);
    (void)select_rank(m, a, 128, 9);
  });
}

TEST(CongestionIdentity, Spmv) {
  const CooMatrix mat = random_uniform_matrix(64, 128, 2);
  const auto x = random_doubles(6, 64);
  expect_link_identity([&](Machine& m) { (void)spmv(m, mat, x); });
}

TEST(CongestionIdentity, BinomialBaselines) {
  expect_link_identity([](Machine& m) {
    const Rect rect = square_at({0, 0}, 8);
    auto bc = binomial_broadcast(m, rect, Cell<double>{1.0, Clock{}});
    (void)binomial_reduce(m, bc, Plus{});
  });
}

TEST(CongestionIdentity, AnnounceRetire) {
  const auto v = random_doubles(8, 100);
  expect_link_identity([&](Machine& m) {
    auto a = GridArray<double>::from_values_square({0, 0}, v);
    a.announce(m);
    auto b = route_permutation(m, a, a.region(), Layout::kRowMajor);
    a.retire(m);
    b.retire(m);
  });
}

// ---- Zero-length sends, self-sends, empty batches --------------------------

TEST(CongestionEdge, FreeEventsProduceNoOccupancy) {
  Machine m;
  CongestionMap cm;
  m.set_trace(&cm);
  (void)m.send({1, 1}, {1, 1}, Clock{});  // self-send: free, unreported
  m.send_bulk({});                        // empty batch
  std::vector<MessageEvent> zeros(3);
  for (index_t i = 0; i < 3; ++i) {
    zeros[static_cast<size_t>(i)] =
        MessageEvent{{i, i}, {i, i}, 0, Clock{2, 5}, Clock{}};
  }
  m.send_bulk(zeros);  // all-zero-length batch: free, unreported
  m.set_trace(nullptr);

  EXPECT_EQ(cm.messages(), 0);
  EXPECT_EQ(cm.total_occupancy(), 0);
  EXPECT_EQ(cm.links(), 0);
  EXPECT_EQ(cm.max_link_load(), 0);
  EXPECT_EQ(cm.congested_clock(), 0);
  EXPECT_EQ(cm.percentile(99.0), 0);
  EXPECT_TRUE(cm.hotspot_links(5).empty());
  EXPECT_TRUE(cm.sorted_links().empty());
  EXPECT_EQ(cm.heatmap(), "(no traffic)\n");
}

TEST(CongestionEdge, BulkHookSkipsZeroLengthEntriesItself) {
  // Machine never forwards an all-zero batch, but the sink's own bulk
  // hook must also skip zero-length entries mixed into a real batch.
  CongestionMap cm;
  std::vector<MessageEvent> batch(3);
  batch[0] = MessageEvent{{0, 0}, {0, 0}, 0, Clock{}, Clock{}};
  batch[1] = MessageEvent{{0, 0}, {0, 2}, 2, Clock{}, Clock{}};
  batch[2] = MessageEvent{{5, 5}, {5, 5}, 0, Clock{}, Clock{}};
  cm.on_send_bulk(batch);
  cm.on_send_bulk({});
  EXPECT_EQ(cm.messages(), 1);
  EXPECT_EQ(cm.total_occupancy(), 2);
  EXPECT_EQ(cm.occupancy(Link{{0, 0}, {0, 1}}), 1);
  EXPECT_EQ(cm.occupancy(Link{{0, 1}, {0, 2}}), 1);
}

// ---- Bulk path vs scalar replay: byte-identical occupancy ------------------

TEST(CongestionBulk, BatchedHookMatchesScalarReplayByteForByte) {
  std::vector<MessageEvent> batch;
  // A mix of directions, overlapping routes, and zero-length entries.
  const std::vector<std::pair<Coord, Coord>> endpoints = {
      {{0, 0}, {3, 2}}, {{3, 2}, {0, 0}}, {{1, 1}, {1, 1}},
      {{2, 0}, {0, 3}}, {{0, 3}, {2, 0}}, {{0, 0}, {3, 2}},
  };
  for (const auto& [from, to] : endpoints) {
    batch.push_back(
        MessageEvent{from, to, manhattan(from, to), Clock{}, Clock{}});
  }

  CongestionMap bulk;
  bulk.on_send_bulk(batch);

  CongestionMap scalar;
  for (const MessageEvent& e : batch) {
    if (e.distance == 0) continue;
    scalar.on_message(e.from, e.to, e.distance);
  }

  EXPECT_EQ(bulk.messages(), scalar.messages());
  EXPECT_EQ(bulk.total_occupancy(), scalar.total_occupancy());
  EXPECT_EQ(bulk.max_link_load(), scalar.max_link_load());
  EXPECT_EQ(bulk.congested_clock(), scalar.congested_clock());
  EXPECT_EQ(bulk.sorted_links(), scalar.sorted_links());
  EXPECT_EQ(bulk.occupancy_multiset(), scalar.occupancy_multiset());
}

// ---- Translation invariance (pinned on a real collective) ------------------

TEST(CongestionMetamorphic, TranslationPreservesMultisetAndPeaks) {
  const auto v = random_doubles(11, 64);
  const auto run = [&](Coord origin) {
    Machine m;
    CongestionMap cm;
    m.set_trace(&cm);
    auto a = GridArray<double>::from_values_square(origin, v);
    a.announce(m);
    (void)scan(m, a, Plus{});
    m.set_trace(nullptr);
    return std::tuple{cm.occupancy_multiset(), cm.max_link_load(),
                      cm.congested_clock()};
  };
  const auto at_origin = run({0, 0});
  const auto shifted = run({7, 5});
  EXPECT_EQ(std::get<0>(at_origin), std::get<0>(shifted));
  EXPECT_EQ(std::get<1>(at_origin), std::get<1>(shifted));
  EXPECT_EQ(std::get<2>(at_origin), std::get<2>(shifted));
}

// ---- clear() / Machine::reset semantics ------------------------------------

TEST(CongestionReset, ClearDropsDataButOpenScopesKeepAttributing) {
  Machine m;
  CongestionMap cm;
  m.set_trace(&cm);
  {
    Machine::PhaseScope a(m, "cong_survivor");
    (void)m.send({0, 0}, {0, 1}, Clock{});
    m.reset();  // forwards on_reset: recorded data dropped
    EXPECT_EQ(cm.messages(), 0);
    EXPECT_EQ(cm.total_occupancy(), 0);
    EXPECT_EQ(cm.congested_clock(), 0);
    // The mirrored phase stack survived: traffic after the reset still
    // lands in the still-open scope.
    (void)m.send({3, 3}, {4, 3}, Clock{});
  }
  m.set_trace(nullptr);
  const PhaseId id = PhaseRegistry::instance().intern("cong_survivor");
  EXPECT_EQ(cm.phase_peak(id), 1);
  ASSERT_EQ(cm.phase_congestion().size(), 1u);
  EXPECT_EQ(cm.phase_congestion()[0].phase, id);
  EXPECT_EQ(cm.occupancy(Link{{3, 3}, {4, 3}}), 1);
}

// ---- Exporters -------------------------------------------------------------

TEST(CongestionExport, AsciiReportAndHeatmapSummarizeTheRun) {
  Machine m;
  CongestionMap cm;
  m.set_trace(&cm);
  {
    Machine::PhaseScope a(m, "cong_ascii");
    (void)m.send({0, 0}, {0, 3}, Clock{});
    (void)m.send({0, 0}, {0, 3}, Clock{});
  }
  m.set_trace(nullptr);

  const std::string report = cm.ascii_report();
  EXPECT_NE(report.find("messages 2"), std::string::npos) << report;
  EXPECT_NE(report.find("occupancy 6"), std::string::npos) << report;
  EXPECT_NE(report.find("max link load 2"), std::string::npos) << report;
  EXPECT_NE(report.find("congested clock 2"), std::string::npos) << report;
  EXPECT_NE(report.find("cong_ascii"), std::string::npos) << report;
  EXPECT_NE(report.find("[0,0]->[0,1]"), std::string::npos) << report;

  const std::string map = cm.heatmap();
  EXPECT_NE(map.find("peak 2"), std::string::npos) << map;
  EXPECT_NE(map.find('@'), std::string::npos) << map;  // the peak cell
}

TEST(CongestionExport, ChromeCounterTrackParsesAndEndsAtFinalValues) {
  Machine m;
  CongestionMap cm;
  m.set_trace(&cm);
  {
    Machine::PhaseScope a(m, "cong_track_a");
    (void)m.send({0, 0}, {0, 2}, Clock{});
  }
  {
    Machine::PhaseScope b(m, "cong_track_b");
    (void)m.send({0, 0}, {0, 2}, Clock{});
  }
  m.set_trace(nullptr);

  // Phase transitions recorded samples, deduplicated when nothing moved.
  EXPECT_FALSE(cm.samples().empty());
  for (std::size_t i = 1; i < cm.samples().size(); ++i) {
    const auto& prev = cm.samples()[i - 1];
    const auto& cur = cm.samples()[i];
    EXPECT_TRUE(cur.max_link_load != prev.max_link_load ||
                cur.congested_clock != prev.congested_clock);
  }

  const auto doc = util::json::parse(cm.chrome_counter_json());
  ASSERT_TRUE(doc.has_value()) << "counter track is not valid JSON";
  const util::json::Value* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  int counters = 0;
  const util::json::Value* last_args = nullptr;
  for (const util::json::Value& e : events->array) {
    const util::json::Value* ph = e.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->string != "C") continue;
    ++counters;
    EXPECT_EQ(e.find("name")->string, "link congestion");
    last_args = e.find("args");
  }
  EXPECT_GT(counters, 0);
  ASSERT_NE(last_args, nullptr);
  // The closing sample pins the track at the final totals.
  EXPECT_EQ(static_cast<index_t>(last_args->find("max_link_load")->number),
            cm.max_link_load());
  EXPECT_EQ(static_cast<index_t>(last_args->find("congested_clock")->number),
            cm.congested_clock());
}

TEST(CongestionExport, ProfilerReportCarriesSchemaV3CongestionSection) {
  Machine m;
  Profiler p(Profiler::Options{.congestion = true});
  m.set_trace(&p);
  const auto v = random_doubles(12, 64);
  auto a = GridArray<double>::from_values_square({0, 0}, v);
  (void)scan(m, a, Plus{});
  m.set_trace(nullptr);

  ASSERT_NE(p.congestion(), nullptr);
  EXPECT_EQ(p.congestion()->total_occupancy(), p.totals().energy);

  const auto doc = util::json::parse(p.json_report());
  ASSERT_TRUE(doc.has_value()) << "report is not valid JSON";
  EXPECT_EQ(static_cast<int>(doc->find("schema_version")->number),
            Profiler::kSchemaVersion);
  EXPECT_GE(Profiler::kSchemaVersion, 3);

  const util::json::Value* cong = doc->find("congestion");
  ASSERT_NE(cong, nullptr);
  EXPECT_TRUE(cong->find("enabled")->boolean);
  // The invariants CI asserts from shipped artifacts, via the report.
  EXPECT_EQ(static_cast<index_t>(cong->find("total_occupancy")->number),
            m.metrics().energy);
  EXPECT_GE(cong->find("congested_clock")->number,
            cong->find("max_link_load")->number);
  EXPECT_EQ(static_cast<index_t>(cong->find("messages")->number),
            m.metrics().messages);
  ASSERT_NE(cong->find("hotspots"), nullptr);
  EXPECT_FALSE(cong->find("hotspots")->array.empty());
  ASSERT_NE(cong->find("phases"), nullptr);
  EXPECT_FALSE(cong->find("phases")->array.empty());

  // The embedded sink also rides the Chrome phase trace as a counter
  // track on the shared tick axis.
  const auto trace = util::json::parse(p.chrome_trace_json());
  ASSERT_TRUE(trace.has_value());
  int counters = 0;
  for (const util::json::Value& e : trace->find("traceEvents")->array) {
    if (e.find("ph")->string == "C") ++counters;
  }
  EXPECT_GT(counters, 0);
}

TEST(CongestionExport, DisabledSinkReportsEnabledFalse) {
  Machine m;
  Profiler p;  // default options: no congestion map
  m.set_trace(&p);
  (void)m.send({0, 0}, {0, 1}, Clock{});
  m.set_trace(nullptr);
  EXPECT_EQ(p.congestion(), nullptr);
  const auto doc = util::json::parse(p.json_report());
  ASSERT_TRUE(doc.has_value());
  const util::json::Value* cong = doc->find("congestion");
  ASSERT_NE(cong, nullptr);
  EXPECT_FALSE(cong->find("enabled")->boolean);
}

}  // namespace
}  // namespace scm
