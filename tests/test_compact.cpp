// Tests of the compaction collective (the Section VI step-2 gather
// pattern exposed as a primitive).
#include "collectives/compact.hpp"

#include "spatial/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace scm {
namespace {

TEST(Compact, GathersFlaggedElementsInOrder) {
  Machine m;
  std::vector<int> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  auto a = GridArray<int>::from_values_square({0, 0}, v);
  std::vector<char> flags(100, 0);
  std::vector<int> expected;
  for (int i = 0; i < 100; i += 3) {
    flags[static_cast<size_t>(i)] = 1;
    expected.push_back(i);
  }
  GridArray<int> out = compact_flagged(
      m, a, flags, static_cast<index_t>(expected.size()));
  EXPECT_EQ(out.values(), expected);
}

TEST(Compact, NoneAndAllFlagged) {
  Machine m;
  auto a = GridArray<int>::from_values_square({0, 0}, {1, 2, 3, 4});
  GridArray<int> none = compact_flagged(m, a, {0, 0, 0, 0}, 0);
  EXPECT_EQ(none.size(), 0);
  GridArray<int> all = compact_flagged(m, a, {1, 1, 1, 1}, 4);
  EXPECT_EQ(all.values(), (std::vector<int>{1, 2, 3, 4}));
}

TEST(Compact, PredicateForm) {
  Machine m;
  auto vals = random_ints(3, 256, -100, 100);
  std::vector<long long> v(vals.begin(), vals.end());
  auto a = GridArray<long long>::from_values_square({0, 0}, v);
  GridArray<long long> out =
      compact_if(m, a, [](long long x) { return x >= 0; });
  std::vector<long long> expected;
  for (long long x : v) {
    if (x >= 0) expected.push_back(x);
  }
  EXPECT_EQ(out.values(), expected);
}

TEST(Compact, LinearEnergyLogDepthForSqrtNSurvivors) {
  // The Section VI usage: O(sqrt n) survivors each travel O(sqrt n), so
  // the whole compaction (scan included) is O(n) energy. (Compacting a
  // constant fraction is Theta(n sqrt n) — the elements genuinely move.)
  Machine m;
  const index_t n = 16384;
  auto vals = random_ints(5, static_cast<size_t>(n), 0, n - 1);
  std::vector<long long> v(vals.begin(), vals.end());
  auto a = GridArray<long long>::from_values_square({0, 0}, v);
  const long long cutoff = 128;  // ~ sqrt(n) survivors in expectation
  (void)compact_if(m, a, [&](long long x) { return x < cutoff; });
  EXPECT_LE(static_cast<double>(m.metrics().energy),
            10.0 * static_cast<double>(n));
  EXPECT_LE(static_cast<double>(m.metrics().depth()),
            3.0 * std::log2(static_cast<double>(n)) + 2);
}

TEST(Compact, ClocksDependOnTheScan) {
  // A gathered element cannot land before the scan told it its slot: its
  // clock must exceed its input clock.
  Machine m;
  auto a = GridArray<int>::from_values_square({0, 0}, {5, 6, 7, 8});
  GridArray<int> out = compact_flagged(m, a, {0, 1, 0, 1}, 2);
  EXPECT_GT(out[0].clock.depth, 0);
  EXPECT_GT(out[1].clock.depth, 0);
}

}  // namespace
}  // namespace scm
