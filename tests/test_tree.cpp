// Tests of the spatial tree workload tier (src/tree/): host-reference
// oracles, machine-vs-host agreement across every generator family and a
// size ladder, metamorphic exactness (relabeling and translation leave
// all metrics bit-identical), and the three-way scalar/bulk/parallel
// charging identity (run_abc) for each algorithm under two engine shapes.
#include "tree/tree.hpp"

#include "collectives/operators.hpp"
#include "spatial/bulk_ab.hpp"
#include "spatial/machine.hpp"
#include "testing/gen.hpp"
#include "tree/contraction.hpp"
#include "tree/euler.hpp"
#include "tree/lca.hpp"
#include "tree/reductions.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <utility>
#include <vector>

namespace scm {
namespace {

using testing::Rng;
using testing::TreeShape;
using tree::DenseTree;
using tree::Tree;

constexpr TreeShape kShapes[] = {
    TreeShape::kPath, TreeShape::kStar, TreeShape::kCaterpillar,
    TreeShape::kBalancedBinary, TreeShape::kRandomPrufer};
constexpr index_t kSizes[] = {1, 2, 3, 5, 8, 16, 33};

/// A seeded tree of the given family with a random root.
Tree make_tree(std::uint64_t seed, index_t n, TreeShape shape) {
  Rng rng(seed);
  Tree t;
  t.n = n;
  t.edges = testing::gen_tree(rng, n, shape);
  t.root = rng.uniform(0, n - 1);
  EXPECT_TRUE(tree::is_tree(t));
  return t;
}

std::vector<std::int64_t> make_values(std::uint64_t seed, index_t n) {
  Rng rng(seed);
  std::vector<std::int64_t> vals(static_cast<size_t>(n));
  for (auto& v : vals) v = rng.uniform(-50, 50);
  return vals;
}

std::vector<std::int64_t> dense_values(const DenseTree& dt,
                                       const std::vector<std::int64_t>& x) {
  std::vector<std::int64_t> out(static_cast<size_t>(dt.n));
  for (index_t d = 0; d < dt.n; ++d) {
    out[static_cast<size_t>(d)] =
        x[static_cast<size_t>(dt.to_label[static_cast<size_t>(d)])];
  }
  return out;
}

// ---- host oracles ----------------------------------------------------------

TEST(TreeHost, IsTreeRejectsMalformedInputs) {
  EXPECT_FALSE(tree::is_tree(Tree{0, {}, 0}));
  EXPECT_TRUE(tree::is_tree(Tree{1, {}, 0}));
  EXPECT_FALSE(tree::is_tree(Tree{1, {}, 1}));          // root out of range
  EXPECT_FALSE(tree::is_tree(Tree{2, {}, 0}));          // missing edge
  EXPECT_FALSE(tree::is_tree(Tree{2, {{0, 0}}, 0}));    // self-loop
  EXPECT_FALSE(tree::is_tree(Tree{3, {{0, 1}, {1, 0}}, 0}));  // cycle
  EXPECT_TRUE(tree::is_tree(Tree{3, {{2, 1}, {1, 0}}, 2}));
}

TEST(TreeHost, EulerTourOfAPath) {
  // 0 - 1 - 2 rooted at 0: tour visits 1, 2, back to 1, back to 0.
  const Tree t{3, {{0, 1}, {1, 2}}, 0};
  const tree::HostTour h = tree::host_euler_tour(tree::normalize(t));
  EXPECT_EQ(h.parent, (std::vector<index_t>{-1, 0, 1}));
  EXPECT_EQ(h.depth, (std::vector<index_t>{0, 1, 2}));
  EXPECT_EQ(h.first, (std::vector<index_t>{-1, 0, 1}));
  EXPECT_EQ(h.last, (std::vector<index_t>{4, 3, 2}));
}

TEST(TreeHost, RootfixAndLeaffixOnAStar) {
  const Tree t{4, {{0, 1}, {0, 2}, {0, 3}}, 0};
  const std::vector<std::int64_t> x{1, 10, 100, 1000};
  const auto down = tree::host_rootfix(t, x, Plus{});
  EXPECT_EQ(down, (std::vector<std::int64_t>{1, 11, 101, 1001}));
  const auto up = tree::host_leaffix(t, x, Plus{});
  EXPECT_EQ(up, (std::vector<std::int64_t>{1111, 10, 100, 1000}));
}

TEST(TreeHost, LcaOnACaterpillar) {
  // Spine 0-1-2 with leaves 3 (on 1) and 4 (on 2), rooted at 0.
  const Tree t{5, {{0, 1}, {1, 2}, {1, 3}, {2, 4}}, 0};
  const auto got =
      tree::host_lca(t, {{3, 4}, {3, 1}, {4, 4}, {0, 4}, {3, 2}});
  EXPECT_EQ(got, (std::vector<index_t>{1, 1, 4, 0, 1}));
}

// ---- machine vs host across families and sizes -----------------------------

TEST(TreeMachine, EulerTourMatchesHostEverywhere) {
  for (const TreeShape shape : kShapes) {
    for (const index_t n : kSizes) {
      const Tree t = make_tree(0xE0 + n, n, shape);
      const DenseTree dt = tree::normalize(t);
      Machine m;
      const tree::EulerTour tour = tree::euler_tour(m, dt, {0, 0});
      const tree::HostTour want = tree::host_euler_tour(dt);
      EXPECT_EQ(tour.parent, want.parent)
          << testing::to_string(shape) << " n=" << n;
      EXPECT_EQ(tour.depth, want.depth);
      EXPECT_EQ(tour.first, want.first);
      EXPECT_EQ(tour.last, want.last);
      if (n > 1) EXPECT_GT(m.metrics().depth(), 0) << "n=" << n;
    }
  }
}

TEST(TreeMachine, ReductionsMatchHostEverywhere) {
  const auto neg = [](std::int64_t v) { return -v; };
  for (const TreeShape shape : kShapes) {
    for (const index_t n : kSizes) {
      const Tree t = make_tree(0xF0 + n, n, shape);
      const DenseTree dt = tree::normalize(t);
      const std::vector<std::int64_t> x = make_values(0x5EED + n, n);
      Machine m;
      const tree::EulerTour tour = tree::euler_tour(m, dt, {0, 0});
      const auto down =
          tree::rootfix(m, tour, dense_values(dt, x), Plus{}, neg);
      const auto up = tree::leaffix(m, tour, dense_values(dt, x), Plus{},
                                    neg, std::int64_t{0});
      const auto want_down = tree::host_rootfix(t, x, Plus{});
      const auto want_up = tree::host_leaffix(t, x, Plus{});
      for (index_t d = 0; d < n; ++d) {
        const auto v = static_cast<size_t>(dt.to_label[static_cast<size_t>(d)]);
        EXPECT_EQ(down[static_cast<size_t>(d)], want_down[v])
            << testing::to_string(shape) << " n=" << n << " vertex " << v;
        EXPECT_EQ(up[static_cast<size_t>(d)], want_up[v])
            << testing::to_string(shape) << " n=" << n << " vertex " << v;
      }
    }
  }
}

TEST(TreeMachine, ContractionFoldsTheWholeTree) {
  for (const TreeShape shape : kShapes) {
    for (const index_t n : kSizes) {
      const Tree t = make_tree(0xC0 + n, n, shape);
      const DenseTree dt = tree::normalize(t);
      const std::vector<std::int64_t> x = make_values(0xACC + n, n);
      Machine m;
      const auto r =
          tree::tree_contract(m, dt, dense_values(dt, x), Plus{}, 42, {0, 0});
      EXPECT_EQ(r.value,
                std::accumulate(x.begin(), x.end(), std::int64_t{0}))
          << testing::to_string(shape) << " n=" << n;
      EXPECT_GE(r.survivor, 0);
      EXPECT_LT(r.survivor, n);
      EXPECT_LE(r.rounds, std::max<index_t>(n - 1, 0));
      // Every vertex but the survivor is eliminated in some round.
      index_t eliminated = 0;
      for (const index_t rd : r.elim_round) eliminated += rd > 0 ? 1 : 0;
      EXPECT_EQ(eliminated, n - 1);
    }
  }
}

TEST(TreeMachine, LcaMatchesHostEverywhere) {
  for (const TreeShape shape : kShapes) {
    for (const index_t n : kSizes) {
      const Tree t = make_tree(0x1CA + n, n, shape);
      const DenseTree dt = tree::normalize(t);
      Rng rng(0xA0 + static_cast<std::uint64_t>(n));
      std::vector<std::pair<index_t, index_t>> qs;
      for (index_t i = 0; i < std::min<index_t>(2 * n, 24); ++i) {
        qs.emplace_back(rng.uniform(0, n - 1), rng.uniform(0, n - 1));
      }
      std::vector<std::pair<index_t, index_t>> dense_qs;
      for (const auto& [a, b] : qs) {
        dense_qs.emplace_back(dt.to_dense[static_cast<size_t>(a)],
                              dt.to_dense[static_cast<size_t>(b)]);
      }
      Machine m;
      const tree::EulerTour tour = tree::euler_tour(m, dt, {0, 0});
      const tree::LcaResult r = tree::lca(m, dt, tour, dense_qs, {0, 0});
      const std::vector<index_t> want = tree::host_lca(t, qs);
      ASSERT_EQ(r.answers.size(), want.size());
      for (size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(dt.to_label[static_cast<size_t>(r.answers[i])], want[i])
            << testing::to_string(shape) << " n=" << n << " query " << i;
      }
    }
  }
}

// ---- metamorphic exactness -------------------------------------------------

Metrics run_tree_pipeline(const Tree& t, const std::vector<std::int64_t>& x,
                          Coord origin) {
  const DenseTree dt = tree::normalize(t);
  Machine m;
  const tree::EulerTour tour = tree::euler_tour(m, dt, origin);
  const auto neg = [](std::int64_t v) { return -v; };
  (void)tree::rootfix(m, tour, dense_values(dt, x), Plus{}, neg);
  (void)tree::leaffix(m, tour, dense_values(dt, x), Plus{}, neg,
                      std::int64_t{0});
  return m.metrics();
}

TEST(TreeMetamorphic, VertexRelabelingIsUnobservable) {
  // Dense first-appearance normalization makes the label space invisible:
  // a renamed tree must produce byte-identical metrics, not merely equal
  // results.
  const index_t n = 21;
  const Tree t = make_tree(0xBEEF, n, TreeShape::kCaterpillar);
  const std::vector<std::int64_t> x = make_values(0xF00D, n);
  const Metrics base = run_tree_pipeline(t, x, {3, -5});

  Rng sig_rng(0x516);
  const std::vector<index_t> sigma = testing::gen_permutation(sig_rng, n);
  Tree renamed;
  renamed.n = n;
  renamed.root = sigma[static_cast<size_t>(t.root)];
  for (const auto& [u, v] : t.edges) {
    renamed.edges.emplace_back(sigma[static_cast<size_t>(u)],
                               sigma[static_cast<size_t>(v)]);
  }
  std::vector<std::int64_t> rx(static_cast<size_t>(n));
  for (index_t v = 0; v < n; ++v) {
    rx[static_cast<size_t>(sigma[static_cast<size_t>(v)])] =
        x[static_cast<size_t>(v)];
  }
  const Metrics moved = run_tree_pipeline(renamed, rx, {3, -5});
  EXPECT_EQ(base, moved);
}

TEST(TreeMetamorphic, TranslationPreservesEveryMetric) {
  const index_t n = 18;
  const Tree t = make_tree(0xABBA, n, TreeShape::kRandomPrufer);
  const std::vector<std::int64_t> x = make_values(0xD00F, n);
  const Metrics at_origin = run_tree_pipeline(t, x, {0, 0});
  const Metrics shifted = run_tree_pipeline(t, x, {-23, 41});
  EXPECT_EQ(at_origin, shifted);
}

// ---- scalar / bulk / parallel charging identity ----------------------------

void expect_abc_identical(const std::function<void(Machine&)>& algorithm) {
  const AbcResult wide = run_abc(algorithm);
  EXPECT_TRUE(wide.ok()) << wide.diff();
  EXPECT_GT(wide.bulk.totals.messages, 0);
  // A second, deliberately tiny engine shape: 3 workers over 4 x 4 tiles
  // maximizes tile crossings and shard churn.
  parallel::Config tiny;
  tiny.threads = 3;
  tiny.tile_rows = 4;
  tiny.tile_cols = 4;
  tiny.min_parallel_batch = 1;
  const AbcResult narrow = run_abc(algorithm, tiny);
  EXPECT_TRUE(narrow.ok()) << narrow.diff();
  EXPECT_EQ(wide.bulk.totals, narrow.bulk.totals);
}

TEST(TreeAbc, EulerTourChargesIdentically) {
  const Tree t = make_tree(0xAB1, 19, TreeShape::kCaterpillar);
  const DenseTree dt = tree::normalize(t);
  expect_abc_identical(
      [&](Machine& m) { (void)tree::euler_tour(m, dt, {0, 0}); });
}

TEST(TreeAbc, ReductionsChargeIdentically) {
  const Tree t = make_tree(0xAB2, 17, TreeShape::kBalancedBinary);
  const DenseTree dt = tree::normalize(t);
  const std::vector<std::int64_t> x = make_values(0xAB2, 17);
  expect_abc_identical([&](Machine& m) {
    const tree::EulerTour tour = tree::euler_tour(m, dt, {0, 0});
    const auto neg = [](std::int64_t v) { return -v; };
    (void)tree::rootfix(m, tour, dense_values(dt, x), Plus{}, neg);
    (void)tree::leaffix(m, tour, dense_values(dt, x), Plus{}, neg,
                        std::int64_t{0});
  });
}

TEST(TreeAbc, ContractionChargesIdentically) {
  const Tree t = make_tree(0xAB3, 15, TreeShape::kRandomPrufer);
  const DenseTree dt = tree::normalize(t);
  const std::vector<std::int64_t> x = make_values(0xAB3, 15);
  expect_abc_identical([&](Machine& m) {
    (void)tree::tree_contract(m, dt, dense_values(dt, x), Plus{}, 7, {0, 0});
  });
}

TEST(TreeAbc, LcaChargesIdentically) {
  const Tree t = make_tree(0xAB4, 13, TreeShape::kPath);
  const DenseTree dt = tree::normalize(t);
  std::vector<std::pair<index_t, index_t>> qs;
  Rng rng(0xAB4);
  for (int i = 0; i < 9; ++i) {
    qs.emplace_back(rng.uniform(0, 12), rng.uniform(0, 12));
  }
  for (auto& [a, b] : qs) {
    a = dt.to_dense[static_cast<size_t>(a)];
    b = dt.to_dense[static_cast<size_t>(b)];
  }
  expect_abc_identical([&](Machine& m) {
    const tree::EulerTour tour = tree::euler_tour(m, dt, {0, 0});
    (void)tree::lca(m, dt, tour, qs, {0, 0});
  });
}

}  // namespace
}  // namespace scm
