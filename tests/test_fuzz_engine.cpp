// Unit tests of the property-fuzzing engine itself: certificate
// round-trips and check semantics, replay-token parsing, deterministic
// case generation, shrinker minimization, and an injected cost regression
// caught by an exact certificate.
#include "testing/bounds.hpp"
#include "testing/gen.hpp"
#include "testing/property.hpp"
#include "testing/runner.hpp"
#include "testing/shrink.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

namespace scm::testing {
namespace {

TEST(FuzzBounds, SerializeParseRoundTrip) {
  BoundSet set;
  set.set_slack(1.5);
  set.record_ratio("bitonic_sort", "energy", 1.0, 2);
  set.record_ratio("mergesort2d", "energy", 20.25, 2);
  set.record_ratio("mergesort2d", "depth", 0.75, 2);
  const std::string text = set.serialize();
  const std::optional<BoundSet> parsed = BoundSet::parse(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->slack(), 1.5);
  ASSERT_EQ(parsed->certificates().size(), 3u);
  EXPECT_EQ(parsed->certificates(), set.certificates());
  // Serialization is stable: a second round-trip is byte-identical.
  EXPECT_EQ(parsed->serialize(), text);
}

TEST(FuzzBounds, RejectsWrongVersionAndGarbage) {
  EXPECT_FALSE(BoundSet::parse("{\"version\": 999, \"slack\": 1.25, "
                               "\"certificates\": []}")
                   .has_value());
  EXPECT_FALSE(BoundSet::parse("not json").has_value());
  EXPECT_FALSE(BoundSet::parse("{}").has_value());
}

TEST(FuzzBounds, CheckSemantics) {
  BoundSet set;  // slack 1.25
  set.record_ratio("p", "energy", 2.0, 4);
  // Within certificate * slack.
  EXPECT_TRUE(set.check("p", "energy", 200.0, 100.0, 8));
  EXPECT_TRUE(set.check("p", "energy", 250.0, 100.0, 8));
  // Beyond it (headroom is negligible at this scale).
  EXPECT_FALSE(set.check("p", "energy", 260.0, 100.0, 8));
  // Instances below min_n are exempt.
  EXPECT_TRUE(set.check("p", "energy", 9999.0, 100.0, 3));
  // Unknown (property, metric) pairs are not checked.
  EXPECT_TRUE(set.check("q", "energy", 9999.0, 100.0, 8));
  // A zero budget demands exactly zero cost, headroom or not.
  EXPECT_TRUE(set.check("p", "energy", 0.0, 0.0, 8));
  EXPECT_FALSE(set.check("p", "energy", 1.0, 0.0, 8));
  // The absolute headroom absorbs whole-step jitter on tiny budgets.
  EXPECT_TRUE(set.check("p", "energy", 2.5 + BoundSet::kCheckHeadroom - 0.5,
                        1.0, 8));
}

TEST(FuzzBounds, InjectedCostRegressionIsCaught) {
  // bitonic_sort's energy certificate is exact (constant 1 against the
  // host replay of the network), so a simulated doubling of routing cost
  // must violate it while the true cost passes.
  const Property* prop = find_property("bitonic_sort");
  ASSERT_NE(prop, nullptr);
  Rng rng(derive_case_seed(11, 0));
  const CaseInput in = prop->generate(rng, 32);
  Machine m;
  const CaseOutcome outcome = prop->run(m, in);
  ASSERT_TRUE(outcome.ok);
  const double budget = outcome.budget("energy");
  ASSERT_GT(budget, 0.0);
  const auto measured = static_cast<double>(m.metrics().energy);
  EXPECT_LE(measured, budget);

  BoundSet set;
  set.record_ratio("bitonic_sort", "energy", 1.0, 2);
  EXPECT_TRUE(
      set.check("bitonic_sort", "energy", measured, budget, outcome.size));
  EXPECT_FALSE(set.check("bitonic_sort", "energy", 2.0 * measured, budget,
                         outcome.size));
}

TEST(FuzzRunnerTokens, ParseTokenAcceptsSeedColonCase) {
  const auto parsed = FuzzRunner::parse_token("2026:17");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->first, 2026u);
  EXPECT_EQ(parsed->second, 17);
}

TEST(FuzzRunnerTokens, ParseTokenRejectsMalformedInput) {
  for (const char* bad : {"", ":", "5:", ":3", "abc", "5:x", "x:5", "5:3:7",
                          "5:-3", "5: 3"}) {
    EXPECT_FALSE(FuzzRunner::parse_token(bad).has_value()) << bad;
  }
}

TEST(FuzzRunnerTokens, ReplayTokenBackwardCompatibleTwoFieldForm) {
  const auto parsed = FuzzRunner::parse_replay_token("2026:17");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->seed, 2026u);
  EXPECT_EQ(parsed->case_index, 17);
  EXPECT_FALSE(parsed->parallel.has_value());
}

TEST(FuzzRunnerTokens, ReplayTokenCarriesParallelEngineShape) {
  const auto parsed = FuzzRunner::parse_replay_token("2026:17:t4x32x64");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->seed, 2026u);
  EXPECT_EQ(parsed->case_index, 17);
  ASSERT_TRUE(parsed->parallel.has_value());
  EXPECT_EQ(parsed->parallel->threads, 4);
  EXPECT_EQ(parsed->parallel->tile_rows, 32);
  EXPECT_EQ(parsed->parallel->tile_cols, 64);
  // The replay must drive every batch through the engine.
  EXPECT_EQ(parsed->parallel->min_parallel_batch, 1);
}

TEST(FuzzRunnerTokens, ReplayTokenRejectsMalformedSuffixes) {
  for (const char* bad :
       {"5:3:", "5:3:t", "5:3:t4", "5:3:t4x8", "5:3:t4x8x", "5:3:tx8x8",
        "5:3:t0x8x8", "5:3:t4x-8x8", "5:3:t4x8x8x2", "5:3:u4x8x8",
        "5:3:t4x8x8 "}) {
    EXPECT_FALSE(FuzzRunner::parse_replay_token(bad).has_value()) << bad;
  }
}

TEST(FuzzGenerate, CaseGenerationIsDeterministic) {
  // The replay contract: (master seed, case index) fully determines the
  // instance, independent of prior generator use.
  for (const Property& prop : all_properties()) {
    Rng rng_a(derive_case_seed(2026, 7));
    Rng rng_b(derive_case_seed(2026, 7));
    const CaseInput a = prop.generate(rng_a, prop.min_n + 5);
    const CaseInput b = prop.generate(rng_b, prop.min_n + 5);
    EXPECT_EQ(a, b) << prop.name;
    // A different case index yields a different stream.
    Rng rng_c(derive_case_seed(2026, 8));
    (void)prop.generate(rng_c, prop.min_n + 5);
  }
}

TEST(FuzzReplay, ReplayIsRepeatable) {
  RunnerConfig config;
  config.shrink_attempts = 0;
  std::ostringstream log_a;
  std::ostringstream log_b;
  FuzzRunner runner_a(config, BoundSet{});
  FuzzRunner runner_b(config, BoundSet{});
  const auto a = runner_a.replay("2026:3", log_a);
  const auto b = runner_b.replay("2026:3", log_b);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->cases_run, 1);
  EXPECT_EQ(log_a.str(), log_b.str());
}

TEST(FuzzShrink, MinimizesAnInjectedComparatorBug) {
  // Simulate a functional bug that fires whenever the input mixes negative
  // and positive keys. The shrinker must reduce a large failing instance
  // to a near-minimal reproducer (the acceptance bar is n <= 8; the
  // two-element witness {negative, positive} is the true minimum).
  const Property* prop = find_property("mergesort2d");
  ASSERT_NE(prop, nullptr);
  CaseInput failing;
  failing.n = 40;
  failing.keys.resize(40);
  for (size_t i = 0; i < failing.keys.size(); ++i) {
    failing.keys[i] = static_cast<std::int64_t>(i) * 13 - 260;
  }
  failing.geom = canonical_geometry(GeomKind::kSquareZ, failing.n);
  ASSERT_TRUE(!prop->valid || prop->valid(failing));

  const auto has_mixed_signs = [](const CaseInput& in) {
    const bool neg = std::any_of(in.keys.begin(), in.keys.end(),
                                 [](std::int64_t k) { return k < 0; });
    const bool pos = std::any_of(in.keys.begin(), in.keys.end(),
                                 [](std::int64_t k) { return k > 0; });
    return neg && pos;
  };
  ASSERT_TRUE(has_mixed_signs(failing));

  ShrinkStats stats;
  const CaseInput shrunk =
      shrink_case(*prop, failing, has_mixed_signs, 400, &stats);
  EXPECT_TRUE(has_mixed_signs(shrunk));  // still failing
  EXPECT_LE(shrunk.n, 8);
  EXPECT_EQ(shrunk.n, 2);  // greedy halving + ddmin reach the minimum here
  EXPECT_GT(stats.attempts, 0);
}

TEST(FuzzSmokeSlice, MetamorphicAndAbCadencesPass) {
  // A miniature of the ctest smoke tier with the metamorphic and bulk-A/B
  // oracles on EVERY case (the full tier runs them on a cadence). No
  // certificates: functional, conformance, metamorphic, and A/B checks.
  RunnerConfig config;
  config.seed = 424242;
  config.cases = 32;
  config.max_n = 24;
  config.metamorphic_every = 1;
  config.ab_every = 1;
  std::ostringstream log;
  FuzzRunner runner(config, BoundSet{});
  const FuzzReport report = runner.run(log);
  EXPECT_TRUE(report.ok()) << log.str();
  EXPECT_EQ(report.cases_run, 32);
  EXPECT_EQ(report.cases_skipped, 0);
}

}  // namespace
}  // namespace scm::testing
