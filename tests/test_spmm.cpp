// Tests of the multi-vector SpMV (shared-sort SpMM extension).
#include "spmv/spmm.hpp"

#include "spmv/generators.hpp"
#include "spmv/spmv.hpp"
#include "spatial/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace scm {
namespace {

TEST(SpmvMulti, MatchesReferencePerVector) {
  const index_t n = 64;
  const CooMatrix a = random_uniform_matrix(n, 3 * n, 1);
  std::vector<std::vector<double>> xs;
  for (std::uint64_t s = 0; s < 4; ++s) {
    xs.push_back(random_doubles(10 + s, static_cast<size_t>(n)));
  }
  Machine m;
  const auto ys = spmv_multi(m, a, xs);
  ASSERT_EQ(ys.size(), xs.size());
  for (size_t v = 0; v < xs.size(); ++v) {
    const auto ref = a.multiply_reference(xs[v]);
    for (size_t i = 0; i < ref.size(); ++i) {
      EXPECT_NEAR(ys[v][i], ref[i], 1e-9 * (1.0 + std::abs(ref[i])))
          << "v=" << v << " i=" << i;
    }
  }
}

TEST(SpmvMulti, AgreesWithSingleVectorSpmv) {
  const CooMatrix a = banded_matrix(40, 2, 3);
  const auto x = random_doubles(4, 40);
  Machine m1;
  const auto multi = spmv_multi(m1, a, {x});
  Machine m2;
  const auto single = spmv(m2, a, x).y;
  for (size_t i = 0; i < single.size(); ++i) {
    EXPECT_NEAR(multi[0][i], single[i], 1e-12);
  }
}

TEST(SpmvMulti, EdgeCases) {
  Machine m;
  CooMatrix empty(4, 4);
  const auto ys = spmv_multi(m, empty, {std::vector<double>(4, 1.0)});
  EXPECT_EQ(ys[0], std::vector<double>(4, 0.0));

  const CooMatrix a = diagonal_matrix({1.0, 2.0});
  EXPECT_TRUE(spmv_multi(m, a, {}).empty());
  EXPECT_THROW((void)spmv_multi(m, a, {std::vector<double>(3, 0.0)}),
               std::invalid_argument);
}

TEST(SpmvMulti, AmortizesTheSortsAcrossVectors) {
  // k vectors through spmv_multi must cost much less than k independent
  // spmv() calls: the structure sorts are shared.
  const index_t n = 256;
  const index_t k = 8;
  const CooMatrix a = random_uniform_matrix(n, 2 * n, 5);
  std::vector<std::vector<double>> xs;
  for (index_t v = 0; v < k; ++v) {
    xs.push_back(random_doubles(20 + v, static_cast<size_t>(n)));
  }
  Machine multi;
  (void)spmv_multi(multi, a, xs);
  Machine separate;
  for (const auto& x : xs) (void)spmv(separate, a, x);
  EXPECT_LT(static_cast<double>(multi.metrics().energy),
            0.45 * static_cast<double>(separate.metrics().energy));
}

TEST(SpmvMulti, PerVectorCostIsFarBelowASort) {
  // Marginal cost per extra vector: route + scans, not a mergesort.
  const index_t n = 256;
  const CooMatrix a = random_uniform_matrix(n, 2 * n, 6);
  std::vector<std::vector<double>> one{random_doubles(7, 256)};
  std::vector<std::vector<double>> two = one;
  two.push_back(random_doubles(8, 256));
  Machine m1;
  (void)spmv_multi(m1, a, one);
  Machine m2;
  (void)spmv_multi(m2, a, two);
  const double marginal = static_cast<double>(m2.metrics().energy) -
                          static_cast<double>(m1.metrics().energy);
  EXPECT_LT(marginal, 0.2 * static_cast<double>(m1.metrics().energy));
}

}  // namespace
}  // namespace scm
