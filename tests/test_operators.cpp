// Property tests of the operator library — in particular associativity of
// the segmented wrapper (Section IV-C relies on SegOp<Op> being
// associative whenever Op is).
#include "collectives/operators.hpp"

#include <gtest/gtest.h>

#include <random>

namespace scm {
namespace {

TEST(Operators, BasicSemantics) {
  EXPECT_EQ(Plus{}(3, 4), 7);
  EXPECT_EQ(Min{}(3, 4), 3);
  EXPECT_EQ(Max{}(3, 4), 4);
  EXPECT_EQ(First{}(3, 4), 3);
}

TEST(SegOp, HeadResetsTheAccumulation) {
  const SegOp<Plus> op{};
  const Seg<int> a{5, true};
  const Seg<int> b{3, false};
  EXPECT_EQ(op(a, b), (Seg<int>{8, true}));
  const Seg<int> c{7, true};
  EXPECT_EQ(op(a, c), (Seg<int>{7, true}));
  const Seg<int> d{1, false};
  EXPECT_EQ(op(d, b), (Seg<int>{4, false}));
}

TEST(SegOp, AssociativityPropertySweep) {
  // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c) over random triples — the property that
  // lets the same scan algorithm run segmented scans.
  std::mt19937_64 rng(1);
  const SegOp<Plus> op{};
  for (int trial = 0; trial < 2000; ++trial) {
    const Seg<long long> a{static_cast<long long>(rng() % 100),
                           (rng() & 1) != 0};
    const Seg<long long> b{static_cast<long long>(rng() % 100),
                           (rng() & 1) != 0};
    const Seg<long long> c{static_cast<long long>(rng() % 100),
                           (rng() & 1) != 0};
    ASSERT_EQ(op(op(a, b), c), op(a, op(b, c)))
        << "trial " << trial;
  }
}

TEST(SegOp, AssociativityHoldsForMaxToo) {
  std::mt19937_64 rng(2);
  const SegOp<Max> op{};
  for (int trial = 0; trial < 2000; ++trial) {
    const Seg<long long> a{static_cast<long long>(rng() % 100) - 50,
                           (rng() & 1) != 0};
    const Seg<long long> b{static_cast<long long>(rng() % 100) - 50,
                           (rng() & 1) != 0};
    const Seg<long long> c{static_cast<long long>(rng() % 100) - 50,
                           (rng() & 1) != 0};
    ASSERT_EQ(op(op(a, b), c), op(a, op(b, c)));
  }
}

TEST(SegOp, FirstGivesSegmentedBroadcastSemantics) {
  const SegOp<First> op{};
  const Seg<int> head{42, true};
  const Seg<int> tail{-1, false};
  EXPECT_EQ(op(head, tail).value, 42);
  EXPECT_EQ(op(op(head, tail), tail).value, 42);
}

}  // namespace
}  // namespace scm
