// Tests of the cost-accounting Machine: message charging, critical-path
// clocks, phase attribution.
#include "spatial/machine.hpp"

#include <gtest/gtest.h>

namespace scm {
namespace {

TEST(Machine, SendChargesManhattanDistance) {
  Machine m;
  const Clock arrival = m.send({0, 0}, {3, 4}, Clock{});
  EXPECT_EQ(m.metrics().energy, 7);
  EXPECT_EQ(m.metrics().messages, 1);
  EXPECT_EQ(arrival.depth, 1);
  EXPECT_EQ(arrival.distance, 7);
}

TEST(Machine, ZeroLengthSendIsFree) {
  Machine m;
  const Clock c{5, 9};
  const Clock arrival = m.send({2, 2}, {2, 2}, c);
  EXPECT_EQ(arrival, c);
  EXPECT_EQ(m.metrics().energy, 0);
  EXPECT_EQ(m.metrics().messages, 0);
}

TEST(Machine, ClocksChainAlongDependentMessages) {
  Machine m;
  Clock c = m.send({0, 0}, {0, 5}, Clock{});
  c = m.send({0, 5}, {5, 5}, c);
  EXPECT_EQ(c.depth, 2);
  EXPECT_EQ(c.distance, 10);
  EXPECT_EQ(m.metrics().depth(), 2);
  EXPECT_EQ(m.metrics().distance(), 10);
}

TEST(Machine, IndependentMessagesDoNotStackDepth) {
  Machine m;
  for (int i = 0; i < 10; ++i) {
    m.send({0, 0}, {0, 1}, Clock{});
  }
  EXPECT_EQ(m.metrics().depth(), 1);
  EXPECT_EQ(m.metrics().energy, 10);
}

TEST(Clock, JoinTakesComponentwiseMax) {
  const Clock a{3, 100};
  const Clock b{7, 20};
  const Clock j = Clock::join(a, b);
  EXPECT_EQ(j.depth, 7);
  EXPECT_EQ(j.distance, 100);
  EXPECT_EQ(Clock::join({a, b, Clock{9, 5}}).depth, 9);
}

TEST(Machine, ObserveUpdatesMaxClock) {
  Machine m;
  m.observe(Clock{4, 40});
  m.observe(Clock{2, 90});
  EXPECT_EQ(m.metrics().depth(), 4);
  EXPECT_EQ(m.metrics().distance(), 90);
}

TEST(Machine, ResetClearsCounters) {
  Machine m;
  m.send({0, 0}, {1, 1}, Clock{});
  m.op(3);
  m.reset();
  EXPECT_EQ(m.metrics().energy, 0);
  EXPECT_EQ(m.metrics().messages, 0);
  EXPECT_EQ(m.metrics().local_ops, 0);
  EXPECT_EQ(m.metrics().depth(), 0);
  EXPECT_TRUE(m.phases().empty());
}

TEST(Machine, PhasesAttributeCosts) {
  Machine m;
  {
    Machine::PhaseScope outer(m, "outer");
    m.send({0, 0}, {0, 2}, Clock{});
    {
      Machine::PhaseScope inner(m, "inner");
      m.send({0, 0}, {0, 3}, Clock{});
    }
  }
  m.send({0, 0}, {0, 4}, Clock{});
  EXPECT_EQ(m.phase("outer").energy, 5);
  EXPECT_EQ(m.phase("inner").energy, 3);
  EXPECT_EQ(m.metrics().energy, 9);
  EXPECT_EQ(m.phase("nonexistent").energy, 0);
}

TEST(Machine, RecursivePhaseNamesCountOnce) {
  Machine m;
  {
    Machine::PhaseScope a(m, "rec");
    {
      Machine::PhaseScope b(m, "rec");
      m.send({0, 0}, {0, 2}, Clock{});
    }
  }
  EXPECT_EQ(m.phase("rec").energy, 2);
}

TEST(Metrics, SinceSubtractsAdditiveCounters) {
  Machine m;
  m.send({0, 0}, {0, 2}, Clock{});
  const Metrics before = m.metrics();
  m.send({0, 0}, {0, 5}, Clock{});
  m.op(2);
  const Metrics delta = m.metrics().since(before);
  EXPECT_EQ(delta.energy, 5);
  EXPECT_EQ(delta.messages, 1);
  EXPECT_EQ(delta.local_ops, 2);
}

}  // namespace
}  // namespace scm
