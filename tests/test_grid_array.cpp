// Tests of GridArray layouts, offsets, and element routing.
#include "spatial/grid_array.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <span>
#include <vector>

namespace scm {
namespace {

TEST(GridArray, RowMajorCoordinates) {
  GridArray<int> a(Rect{2, 3, 4, 8}, Layout::kRowMajor, 20);
  EXPECT_EQ(a.coord(0), (Coord{2, 3}));
  EXPECT_EQ(a.coord(7), (Coord{2, 10}));
  EXPECT_EQ(a.coord(8), (Coord{3, 3}));
  EXPECT_EQ(a.coord(19), (Coord{4, 6}));
}

TEST(GridArray, ZOrderCoordinates) {
  GridArray<int> a(Rect{0, 0, 4, 4}, Layout::kZOrder, 16);
  EXPECT_EQ(a.coord(0), (Coord{0, 0}));
  EXPECT_EQ(a.coord(1), (Coord{0, 1}));
  EXPECT_EQ(a.coord(2), (Coord{1, 0}));
  EXPECT_EQ(a.coord(3), (Coord{1, 1}));
  EXPECT_EQ(a.coord(4), (Coord{0, 2}));
  EXPECT_EQ(a.coord(15), (Coord{3, 3}));
}

TEST(GridArray, OffsetRangesAddressTheParentOrder) {
  GridArray<int> whole(Rect{0, 0, 4, 4}, Layout::kZOrder, 16);
  GridArray<int> part(Rect{0, 0, 4, 4}, Layout::kZOrder, 4, 8);
  for (index_t i = 0; i < 4; ++i) {
    EXPECT_EQ(part.coord(i), whole.coord(8 + i));
  }
  EXPECT_EQ(part.offset(), 8);
}

TEST(GridArray, FromValuesAndValuesRoundTrip) {
  std::vector<double> v(10);
  std::iota(v.begin(), v.end(), 0.0);
  auto a = GridArray<double>::from_values_square({0, 0}, v);
  EXPECT_EQ(a.size(), 10);
  EXPECT_EQ(a.values(), v);
  EXPECT_EQ(a.region().rows, 4);  // 4x4 canonical square covers 10
}

TEST(GridArray, CoordinatesAreDistinctPerLayout) {
  for (Layout layout : {Layout::kRowMajor, Layout::kZOrder}) {
    GridArray<int> a(Rect{0, 0, 8, 8}, layout, 64);
    std::set<std::pair<index_t, index_t>> seen;
    for (index_t i = 0; i < a.size(); ++i) {
      EXPECT_TRUE(seen.insert({a.coord(i).row, a.coord(i).col}).second);
    }
  }
}

TEST(GridArray, SendElementChargesAndMoves) {
  Machine m;
  auto src = GridArray<int>::from_values_square({0, 0}, {1, 2, 3, 4});
  GridArray<int> dst(Rect{0, 10, 2, 2}, Layout::kRowMajor, 4);
  send_element(m, src, 0, dst, 3);
  EXPECT_EQ(dst[3].value, 1);
  EXPECT_EQ(m.metrics().energy, manhattan(src.coord(0), dst.coord(3)));
  EXPECT_EQ(dst[3].clock.depth, 1);
}

TEST(GridArray, RoutePermutationAppliesMapping) {
  Machine m;
  auto src = GridArray<int>::from_values_square({0, 0}, {10, 20, 30, 40});
  const std::vector<index_t> perm{3, 2, 1, 0};
  auto dst = route_permutation(m, src, src.region(), src.layout(), perm);
  EXPECT_EQ(dst.values(), (std::vector<int>{40, 30, 20, 10}));
}

TEST(GridArray, RoutePermutationIdentityIntoNewLayout) {
  Machine m;
  auto src = GridArray<int>::from_values_square({0, 0}, {1, 2, 3, 4, 5, 6},
                                                Layout::kRowMajor);
  auto dst = route_permutation(m, src, src.region(), Layout::kZOrder);
  EXPECT_EQ(dst.values(), src.values());
  EXPECT_EQ(dst.layout(), Layout::kZOrder);
}

TEST(GridArray, CoordCacheMatchesComputedCoords) {
  // coords() must agree with per-element coord() for every layout and for
  // offset sub-ranges, and coord() must return the same answers before and
  // after the cache is built.
  const GridArray<int> zorder(Rect{3, 5, 8, 8}, Layout::kZOrder, 30, 7);
  const GridArray<int> row_major(Rect{-2, 4, 4, 6}, Layout::kRowMajor, 20, 3);
  for (const auto* a : {&zorder, &row_major}) {
    std::vector<Coord> before;
    for (index_t i = 0; i < a->size(); ++i) before.push_back(a->coord(i));
    const std::span<const Coord> cached = a->coords();
    ASSERT_EQ(static_cast<index_t>(cached.size()), a->size());
    for (index_t i = 0; i < a->size(); ++i) {
      EXPECT_EQ(cached[static_cast<size_t>(i)], before[static_cast<size_t>(i)])
          << "i=" << i;
      EXPECT_EQ(a->coord(i), before[static_cast<size_t>(i)]) << "i=" << i;
    }
  }
}

TEST(GridArray, EmptyArrayOnAnyRegion) {
  // n == 0 never decodes a layout position, so even degenerate and
  // non-power-of-two regions are legal in every layout.
  const GridArray<int> degenerate(Rect{0, 0, 0, 0}, Layout::kZOrder, 0);
  EXPECT_TRUE(degenerate.empty());
  EXPECT_EQ(degenerate.size(), 0);
  EXPECT_TRUE(degenerate.coords().empty());

  const GridArray<int> rect(Rect{5, -3, 3, 7}, Layout::kZOrder, 0);
  EXPECT_TRUE(rect.coords().empty());

  const GridArray<int> canonical = GridArray<int>::on_square({4, 4}, 0);
  EXPECT_TRUE(canonical.empty());
  EXPECT_EQ(canonical.region(), (Rect{4, 4, 1, 1}));
  EXPECT_EQ(canonical.max_clock(), Clock{});
}

TEST(GridArray, SingleElementArray) {
  const GridArray<int> z = GridArray<int>::from_values_square({2, 3}, {41});
  EXPECT_EQ(z.size(), 1);
  EXPECT_EQ(z.region(), (Rect{2, 3, 1, 1}));
  EXPECT_EQ(z.coord(0), (Coord{2, 3}));
  ASSERT_EQ(z.coords().size(), 1u);
  EXPECT_EQ(z.coords()[0], (Coord{2, 3}));
  EXPECT_EQ(z.values(), std::vector<int>{41});

  // A 1 x n row-major line holding one element at a non-zero offset.
  const GridArray<int> line(Rect{0, 0, 1, 8}, Layout::kRowMajor, 1, 5);
  EXPECT_EQ(line.coord(0), (Coord{0, 5}));
}

TEST(GridArray, RoutePermutationOfEmptyAndSingleton) {
  Machine m;
  const GridArray<int> none(Rect{0, 0, 2, 2}, Layout::kZOrder, 0);
  const GridArray<int> routed_none =
      route_permutation(m, none, Rect{1, 1, 4, 4}, Layout::kRowMajor);
  EXPECT_TRUE(routed_none.empty());
  EXPECT_EQ(m.metrics().messages, 0);
  EXPECT_EQ(m.metrics().energy, 0);

  const GridArray<int> one = GridArray<int>::from_values_square({0, 0}, {9});
  const GridArray<int> routed_one =
      route_permutation(m, one, Rect{0, 3, 1, 1}, Layout::kRowMajor);
  EXPECT_EQ(routed_one.values(), std::vector<int>{9});
  EXPECT_EQ(routed_one.coord(0), (Coord{0, 3}));
  EXPECT_EQ(m.metrics().messages, 1);
  EXPECT_EQ(m.metrics().energy, 3);  // Manhattan distance (0,0) -> (0,3)
}

TEST(GridArray, SendElementsEmptyBatchIsFree) {
  Machine m;
  const GridArray<int> src = GridArray<int>::from_values_square({0, 0}, {1});
  GridArray<int> dst(Rect{0, 2, 1, 1}, Layout::kRowMajor, 1);
  const std::vector<std::pair<index_t, index_t>> no_moves;
  send_elements(m, src, dst, std::span(no_moves));
  EXPECT_EQ(m.metrics(), Metrics{});
}

TEST(GridArray, SendElementsSingleMove) {
  Machine m;
  const GridArray<int> src = GridArray<int>::from_values_square({0, 0}, {7});
  GridArray<int> dst(Rect{2, 0, 1, 1}, Layout::kRowMajor, 1);
  const std::vector<std::pair<index_t, index_t>> moves = {{0, 0}};
  send_elements(m, src, dst, std::span(moves));
  EXPECT_EQ(dst[0].value, 7);
  EXPECT_EQ(m.metrics().messages, 1);
  EXPECT_EQ(m.metrics().energy, 2);
}

TEST(GridArray, MaxClockJoinsAllElements) {
  GridArray<int> a(Rect{0, 0, 2, 2}, Layout::kRowMajor, 4);
  a[2].clock = Clock{5, 17};
  a[3].clock = Clock{2, 99};
  EXPECT_EQ(a.max_clock().depth, 5);
  EXPECT_EQ(a.max_clock().distance, 99);
}

}  // namespace
}  // namespace scm
