// Tests of the iterative solvers running end-to-end on the spatial SpMV
// and reduce collectives.
#include "solvers/solvers.hpp"

#include "solvers/blas1.hpp"
#include "spmv/generators.hpp"
#include "spatial/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace scm {
namespace {

using solvers::SolveOptions;
using solvers::SolveResult;

double residual_norm(const CooMatrix& a, const std::vector<double>& x,
                     const std::vector<double>& b) {
  const auto ax = a.multiply_reference(x);
  double r2 = 0.0;
  for (size_t i = 0; i < b.size(); ++i) {
    r2 += (ax[i] - b[i]) * (ax[i] - b[i]);
  }
  return std::sqrt(r2);
}

TEST(Blas1, DotAndNorm) {
  Machine m;
  const std::vector<double> a{1, 2, 3};
  const std::vector<double> b{4, -5, 6};
  EXPECT_NEAR(solvers::dot(m, a, b), 4 - 10 + 18, 1e-12);
  EXPECT_NEAR(solvers::norm2(m, a), 14.0, 1e-12);
  EXPECT_GT(m.metrics().messages, 0);  // the reduce really ran on the grid
}

TEST(Blas1, AxpyAndScale) {
  Machine m;
  std::vector<double> y{1, 1, 1};
  solvers::axpy(m, 2.0, {1, 2, 3}, y);
  EXPECT_EQ(y, (std::vector<double>{3, 5, 7}));
  solvers::scale(m, 0.5, y);
  EXPECT_EQ(y, (std::vector<double>{1.5, 2.5, 3.5}));
}

TEST(ConjugateGradient, SolvesPoisson) {
  Machine m;
  const CooMatrix a = poisson2d_matrix(8);  // SPD, 64 unknowns
  std::vector<double> b(64, 0.0);
  b[27] = 1.0;
  b[5] = -0.5;
  const SolveResult r = solvers::conjugate_gradient(m, a, b,
                                                    {200, 1e-12});
  EXPECT_TRUE(r.converged);
  EXPECT_LT(residual_norm(a, r.x, b), 1e-8);
  EXPECT_LE(r.iterations, 64 + 5);  // CG converges in <= n steps
}

TEST(ConjugateGradient, DiagonalSystemConvergesInOneStep) {
  Machine m;
  const CooMatrix a = diagonal_matrix({2.0, 4.0, 8.0, 16.0});
  const std::vector<double> b{2.0, 8.0, 8.0, 32.0};
  const SolveResult r = solvers::conjugate_gradient(m, a, b);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 1.0, 1e-9);
  EXPECT_NEAR(r.x[1], 2.0, 1e-9);
  EXPECT_NEAR(r.x[3], 2.0, 1e-9);
}

TEST(ConjugateGradient, RejectsNonSquare) {
  Machine m;
  CooMatrix a(3, 4);
  EXPECT_THROW(
      (void)solvers::conjugate_gradient(m, a, std::vector<double>(3, 1.0)),
      std::invalid_argument);
}

TEST(Jacobi, SolvesDiagonallyDominantSystem) {
  Machine m;
  const index_t n = 32;
  CooMatrix a(n, n);
  std::mt19937_64 rng(4);
  std::uniform_real_distribution<double> off(-0.2, 0.2);
  for (index_t i = 0; i < n; ++i) {
    a.add(i, i, 4.0);
    a.add(i, (i + 1) % n, off(rng));
    a.add(i, (i + 5) % n, off(rng));
  }
  const auto b = random_doubles(5, static_cast<size_t>(n));
  const SolveResult r = solvers::jacobi(m, a, b, {300, 1e-10});
  EXPECT_TRUE(r.converged);
  EXPECT_LT(residual_norm(a, r.x, b), 1e-7);
}

TEST(Jacobi, RejectsZeroDiagonal) {
  Machine m;
  CooMatrix a(2, 2);
  a.add(0, 0, 1.0);
  a.add(0, 1, 1.0);  // row 1 has no diagonal
  EXPECT_THROW((void)solvers::jacobi(m, a, std::vector<double>(2, 1.0)),
               std::invalid_argument);
}

TEST(PowerIteration, FindsDominantEigenpairOfDiagonal) {
  Machine m;
  const CooMatrix a = diagonal_matrix({1.0, 5.0, 3.0, 2.0});
  const SolveResult r = solvers::power_iteration(
      m, a, {1.0, 1.0, 1.0, 1.0}, {500, 1e-12});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.residual, 5.0, 1e-6);  // dominant eigenvalue
  EXPECT_NEAR(std::abs(r.x[1]), 1.0, 1e-4);
}

TEST(PowerIteration, SymmetricStencil) {
  Machine m;
  const CooMatrix a = poisson2d_matrix(5);
  const auto x0 = random_doubles(6, 25);
  const SolveResult r = solvers::power_iteration(m, a, x0, {800, 1e-10});
  EXPECT_TRUE(r.converged);
  // The 2-D Poisson dominant eigenvalue is 4 + 4 sin^2(pi*s/(2(s+1)))
  // -ish; just check the Rayleigh quotient matches A x = lambda x.
  const auto ax = a.multiply_reference(r.x);
  for (size_t i = 0; i < ax.size(); ++i) {
    EXPECT_NEAR(ax[i], r.residual * r.x[i], 5e-4);
  }
}

TEST(Solvers, CostsAreAccountedPerPhase) {
  Machine m;
  const CooMatrix a = poisson2d_matrix(4);
  std::vector<double> b(16, 1.0);
  (void)solvers::conjugate_gradient(m, a, b, {50, 1e-10});
  EXPECT_GT(m.phase("solver_cg").energy, 0);
  EXPECT_GT(m.phase("spmv").energy, 0);
  EXPECT_LE(m.phase("spmv").energy, m.phase("solver_cg").energy);
}

}  // namespace
}  // namespace scm
