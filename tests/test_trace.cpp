// Tests of the network-load tracing module.
#include "spatial/trace.hpp"

#include "collectives/baselines.hpp"
#include "collectives/scan.hpp"
#include "spatial/machine.hpp"
#include "spatial/rng.hpp"

#include <gtest/gtest.h>

namespace scm {
namespace {

TEST(LoadMap, SingleMessageRoutesDimensionOrdered) {
  Machine m;
  LoadMap map;
  m.set_trace(&map);
  m.send({0, 0}, {2, 3}, Clock{});
  EXPECT_EQ(map.messages(), 1);
  // Row-first path: (0,0) (1,0) (2,0) (2,1) (2,2) (2,3).
  EXPECT_EQ(map.load_at({0, 0}), 1);
  EXPECT_EQ(map.load_at({1, 0}), 1);
  EXPECT_EQ(map.load_at({2, 0}), 1);
  EXPECT_EQ(map.load_at({2, 2}), 1);
  EXPECT_EQ(map.load_at({2, 3}), 1);
  EXPECT_EQ(map.load_at({0, 3}), 0);
  EXPECT_EQ(map.total_load(), 6);
}

TEST(LoadMap, ZeroLengthSendsAreNotTraced) {
  Machine m;
  LoadMap map;
  m.set_trace(&map);
  m.send({1, 1}, {1, 1}, Clock{});
  EXPECT_EQ(map.messages(), 0);
  EXPECT_EQ(map.total_load(), 0);
}

TEST(LoadMap, TotalLoadTracksEnergyPlusEndpoints) {
  // Each message of distance d touches d + 1 processors.
  Machine m;
  LoadMap map;
  m.set_trace(&map);
  m.send({0, 0}, {0, 5}, Clock{});
  m.send({3, 0}, {0, 0}, Clock{});
  EXPECT_EQ(map.total_load(), (5 + 1) + (3 + 1));
  EXPECT_EQ(map.total_load(), m.metrics().energy + map.messages());
}

TEST(LoadMap, HotspotsAreSortedDescending) {
  Machine m;
  LoadMap map;
  m.set_trace(&map);
  for (int i = 0; i < 5; ++i) m.send({0, 0}, {0, 1}, Clock{});
  m.send({0, 1}, {0, 2}, Clock{});
  const auto spots = map.hotspots(2);
  ASSERT_EQ(spots.size(), 2u);
  EXPECT_EQ(spots[0].second, 6);  // (0,1): 5 arrivals + 1 departure
  EXPECT_EQ(spots[0].first, (Coord{0, 1}));
  EXPECT_GE(spots[0].second, spots[1].second);
}

TEST(LoadMap, DetachStopsRecording) {
  Machine m;
  LoadMap map;
  m.set_trace(&map);
  m.send({0, 0}, {0, 1}, Clock{});
  m.set_trace(nullptr);
  m.send({0, 0}, {0, 9}, Clock{});
  EXPECT_EQ(map.messages(), 1);
}

TEST(LoadMap, ClearResetsEverything) {
  Machine m;
  LoadMap map;
  m.set_trace(&map);
  m.send({0, 0}, {4, 4}, Clock{});
  map.clear();
  EXPECT_EQ(map.messages(), 0);
  EXPECT_EQ(map.total_load(), 0);
  EXPECT_EQ(map.max_load(), 0);
  EXPECT_EQ(map.heatmap(), "(no traffic)\n");
}

TEST(LoadMap, HeatmapCoversTheBoundingBox) {
  Machine m;
  LoadMap map;
  m.set_trace(&map);
  m.send({0, 0}, {7, 7}, Clock{});
  const std::string art = map.heatmap(8);
  EXPECT_NE(art.find("8x8"), std::string::npos);
  EXPECT_NE(art.find('@'), std::string::npos);  // the peak bucket
}

TEST(LoadMap, ZOrderScanHasLowerPeakLoadThanTreeScan) {
  // The motivation for the module: the 1-D binary tree funnels traffic
  // through hub processors, so its peak (bottleneck) load exceeds the 2-D
  // scan's. (The coefficient of variation is not a discriminator here:
  // the tree scan loads fewer processors, evenly among those.)
  const index_t n = 4096;
  auto vals = random_ints(1, static_cast<size_t>(n), 0, 9);
  std::vector<long long> v(vals.begin(), vals.end());

  Machine m1;
  LoadMap scan_map;
  m1.set_trace(&scan_map);
  auto a1 = GridArray<long long>::from_values_square({0, 0}, v);
  (void)scan(m1, a1, Plus{});

  Machine m2;
  LoadMap tree_map;
  m2.set_trace(&tree_map);
  auto a2 = GridArray<long long>::from_values_square({0, 0}, v,
                                                     Layout::kRowMajor);
  (void)tree_scan_1d(m2, a2, Plus{});

  EXPECT_LT(scan_map.max_load(), tree_map.max_load());
  EXPECT_GE(scan_map.imbalance(), 0.0);
  EXPECT_GE(tree_map.imbalance(), 0.0);
}

}  // namespace
}  // namespace scm
