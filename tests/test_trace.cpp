// Tests of the network-load tracing module.
#include "spatial/trace.hpp"

#include "collectives/baselines.hpp"
#include "collectives/scan.hpp"
#include "spatial/machine.hpp"
#include "spatial/rng.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

namespace scm {
namespace {

TEST(LoadMap, SingleMessageRoutesDimensionOrdered) {
  Machine m;
  LoadMap map;
  m.set_trace(&map);
  m.send({0, 0}, {2, 3}, Clock{});
  EXPECT_EQ(map.messages(), 1);
  // Row-first path: (0,0) (1,0) (2,0) (2,1) (2,2) (2,3).
  EXPECT_EQ(map.load_at({0, 0}), 1);
  EXPECT_EQ(map.load_at({1, 0}), 1);
  EXPECT_EQ(map.load_at({2, 0}), 1);
  EXPECT_EQ(map.load_at({2, 2}), 1);
  EXPECT_EQ(map.load_at({2, 3}), 1);
  EXPECT_EQ(map.load_at({0, 3}), 0);
  EXPECT_EQ(map.total_load(), 6);
}

TEST(LoadMap, ZeroLengthSendsAreNotTraced) {
  Machine m;
  LoadMap map;
  m.set_trace(&map);
  m.send({1, 1}, {1, 1}, Clock{});
  EXPECT_EQ(map.messages(), 0);
  EXPECT_EQ(map.total_load(), 0);
}

TEST(LoadMap, TotalLoadTracksEnergyPlusEndpoints) {
  // Each message of distance d touches d + 1 processors.
  Machine m;
  LoadMap map;
  m.set_trace(&map);
  m.send({0, 0}, {0, 5}, Clock{});
  m.send({3, 0}, {0, 0}, Clock{});
  EXPECT_EQ(map.total_load(), (5 + 1) + (3 + 1));
  EXPECT_EQ(map.total_load(), m.metrics().energy + map.messages());
}

TEST(LoadMap, HotspotsAreSortedDescending) {
  Machine m;
  LoadMap map;
  m.set_trace(&map);
  for (int i = 0; i < 5; ++i) m.send({0, 0}, {0, 1}, Clock{});
  m.send({0, 1}, {0, 2}, Clock{});
  const auto spots = map.hotspots(2);
  ASSERT_EQ(spots.size(), 2u);
  EXPECT_EQ(spots[0].second, 6);  // (0,1): 5 arrivals + 1 departure
  EXPECT_EQ(spots[0].first, (Coord{0, 1}));
  EXPECT_GE(spots[0].second, spots[1].second);
}

TEST(LoadMap, DetachStopsRecording) {
  Machine m;
  LoadMap map;
  m.set_trace(&map);
  m.send({0, 0}, {0, 1}, Clock{});
  m.set_trace(nullptr);
  m.send({0, 0}, {0, 9}, Clock{});
  EXPECT_EQ(map.messages(), 1);
}

TEST(LoadMap, ClearResetsEverything) {
  Machine m;
  LoadMap map;
  m.set_trace(&map);
  m.send({0, 0}, {4, 4}, Clock{});
  map.clear();
  EXPECT_EQ(map.messages(), 0);
  EXPECT_EQ(map.total_load(), 0);
  EXPECT_EQ(map.max_load(), 0);
  EXPECT_EQ(map.heatmap(), "(no traffic)\n");
}

TEST(LoadMap, HeatmapCoversTheBoundingBox) {
  Machine m;
  LoadMap map;
  m.set_trace(&map);
  m.send({0, 0}, {7, 7}, Clock{});
  const std::string art = map.heatmap(8);
  EXPECT_NE(art.find("8x8"), std::string::npos);
  EXPECT_NE(art.find('@'), std::string::npos);  // the peak bucket
}

TEST(LoadMap, EmptyMapIsSafeEverywhere) {
  const LoadMap map;
  EXPECT_EQ(map.messages(), 0);
  EXPECT_EQ(map.total_load(), 0);
  EXPECT_EQ(map.max_load(), 0);
  EXPECT_TRUE(map.hotspots(5).empty());
  EXPECT_EQ(map.percentile(50.0), 0);
  EXPECT_EQ(map.percentile(100.0), 0);
  EXPECT_EQ(map.imbalance(), 0.0);
  EXPECT_EQ(map.heatmap(), "(no traffic)\n");
  EXPECT_EQ(map.load_at({0, 0}), 0);
}

TEST(LoadMap, NegativeCoordinatesAreRoutedAndRendered) {
  // The grid is unbounded in all directions; traffic in the negative
  // quadrant must count and render like any other.
  Machine m;
  LoadMap map;
  m.set_trace(&map);
  m.send({-2, -3}, {1, 1}, Clock{});
  EXPECT_EQ(map.messages(), 1);
  EXPECT_EQ(map.load_at({-2, -3}), 1);
  EXPECT_EQ(map.load_at({0, -3}), 1);  // row-first transit
  EXPECT_EQ(map.load_at({1, 0}), 1);
  EXPECT_EQ(map.load_at({1, 1}), 1);
  EXPECT_EQ(map.total_load(), 3 + 4 + 1);  // distance + endpoints
  // The bounding box spans rows [-2, 1] x cols [-3, 1]: 4x5 cells.
  const std::string art = map.heatmap(8);
  EXPECT_NE(art.find("4x5 cells"), std::string::npos);
}

TEST(LoadMap, SingleCellTrafficViaDirectEvent) {
  // A from == to event never comes from the Machine (zero-length sends
  // are free), but the sink must handle the direct call: one unit of
  // load on exactly that cell.
  LoadMap map;
  map.on_message({3, -4}, {3, -4}, 0);
  EXPECT_EQ(map.messages(), 1);
  EXPECT_EQ(map.total_load(), 1);
  EXPECT_EQ(map.max_load(), 1);
  EXPECT_EQ(map.load_at({3, -4}), 1);
  const auto spots = map.hotspots(3);
  ASSERT_EQ(spots.size(), 1u);
  EXPECT_EQ(spots[0].first, (Coord{3, -4}));
  EXPECT_EQ(map.percentile(50.0), 1);
}

TEST(LoadMap, BucketedHeatmapMarksThePeakBucket) {
  // Downsampling a 16x16 box to 4 characters per side buckets 4x4 cells;
  // the bucket holding the hammered cell must render as '@' (the top
  // level) exactly once, and quiet buckets must not. Events are fed to
  // the sink directly: this traffic pattern (50 words parked on one cell)
  // is exactly what the conformance checker rejects from a real Machine.
  LoadMap map;
  for (int i = 0; i < 50; ++i) map.on_message({14, 14}, {15, 15}, 2);
  map.on_message({0, 0}, {15, 0}, 15);
  map.on_message({0, 0}, {0, 15}, 15);
  const std::string art = map.heatmap(4);
  EXPECT_NE(art.find("4x4"), std::string::npos);
  const auto first_at = art.find('@');
  ASSERT_NE(first_at, std::string::npos);
  EXPECT_EQ(art.find('@', first_at + 1), std::string::npos)
      << "only the hot corner bucket may saturate:\n"
      << art;
}

TEST(LoadMap, HotspotsPartialSortMatchesFullOrdering) {
  // hotspots(k) is a partial sort; its prefix must agree with the full
  // descending ordering, and k > touched-cells must return everything.
  Machine m;
  LoadMap map;
  m.set_trace(&map);
  auto vals = random_ints(3, 512, 0, 9);
  std::vector<long long> v(vals.begin(), vals.end());
  auto a = GridArray<long long>::from_values_square({0, 0}, v);
  (void)scan(m, a, Plus{});

  const auto all = map.hotspots(std::numeric_limits<std::size_t>::max());
  const auto top = map.hotspots(5);
  ASSERT_GE(all.size(), 5u);
  ASSERT_EQ(top.size(), 5u);
  for (std::size_t i = 0; i < top.size(); ++i) {
    EXPECT_EQ(top[i], all[i]);
  }
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_GE(all[i - 1].second, all[i].second);
  }
  EXPECT_EQ(all[0].second, map.max_load());
}

TEST(LoadMap, PercentileUsesNearestRank) {
  // Two cells with load 1 (endpoints of a short hop each) and two with
  // load 2: percentile must follow nearest-rank semantics on the load
  // multiset {1, 1, 2, 2}.
  LoadMap map;
  map.on_message({0, 0}, {0, 0}, 0);  // load 1 at (0,0)
  map.on_message({9, 9}, {9, 9}, 0);  // load 1 at (9,9)
  for (int i = 0; i < 2; ++i) {
    map.on_message({5, 5}, {5, 5}, 0);  // load 2 at (5,5)
    map.on_message({7, 7}, {7, 7}, 0);  // load 2 at (7,7)
  }
  EXPECT_EQ(map.percentile(0.0), 1);    // rank 1
  EXPECT_EQ(map.percentile(50.0), 1);   // rank 2
  EXPECT_EQ(map.percentile(75.0), 2);   // rank 3
  EXPECT_EQ(map.percentile(100.0), 2);  // rank 4 == max
  EXPECT_EQ(map.percentile(100.0), map.max_load());
}

TEST(LoadMap, ZOrderScanHasLowerPeakLoadThanTreeScan) {
  // The motivation for the module: the 1-D binary tree funnels traffic
  // through hub processors, so its peak (bottleneck) load exceeds the 2-D
  // scan's. (The coefficient of variation is not a discriminator here:
  // the tree scan loads fewer processors, evenly among those.)
  const index_t n = 4096;
  auto vals = random_ints(1, static_cast<size_t>(n), 0, 9);
  std::vector<long long> v(vals.begin(), vals.end());

  Machine m1;
  LoadMap scan_map;
  m1.set_trace(&scan_map);
  auto a1 = GridArray<long long>::from_values_square({0, 0}, v);
  (void)scan(m1, a1, Plus{});

  Machine m2;
  LoadMap tree_map;
  m2.set_trace(&tree_map);
  auto a2 = GridArray<long long>::from_values_square({0, 0}, v,
                                                     Layout::kRowMajor);
  (void)tree_scan_1d(m2, a2, Plus{});

  EXPECT_LT(scan_map.max_load(), tree_map.max_load());
  EXPECT_GE(scan_map.imbalance(), 0.0);
  EXPECT_GE(tree_map.imbalance(), 0.0);
}

}  // namespace
}  // namespace scm
