// The bulk-charging engine's metrics-identity contract (spatial/bulk_ab):
//   * every Table-1 algorithm produces byte-identical Metrics totals and
//     per-phase records through the scalar and bulk charging paths, with a
//     conformance checker attached and clean;
//   * the A/B harness itself catches deliberately divergent fake bulk
//     paths (wrong totals, wrong phase attribution across a phase
//     boundary) — a harness that cannot fail proves nothing;
//   * Machine::send_bulk edge cases: empty batch, all-zero-length batch
//     (free, unreported), call-time phase-set attribution, arrival-clock
//     filling;
//   * GridArray announce/retire (birth_bulk/death_bulk) replay identically.
#include "spatial/bulk_ab.hpp"

#include "collectives/baselines.hpp"
#include "collectives/scan.hpp"
#include "select/select.hpp"
#include "sort/sort.hpp"
#include "spatial/rng.hpp"
#include "spmv/generators.hpp"
#include "spmv/spmv.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <vector>

namespace scm {
namespace {

// ---- Table-1 algorithm equivalence ----------------------------------------

void expect_ab_ok(const std::function<void(Machine&)>& algorithm) {
  const AbResult r = run_ab(algorithm);
  EXPECT_TRUE(r.ok()) << r.diff();
  // A run that charged nothing would make the comparison vacuous.
  EXPECT_GT(r.bulk.totals.messages, 0);
  EXPECT_EQ(r.scalar.totals, r.bulk.totals);
  EXPECT_EQ(r.scalar.phases, r.bulk.phases);
  // Per-link occupancy (batched vs replayed congestion sink) must also be
  // byte-identical, and a real algorithm touches at least one link.
  EXPECT_TRUE(r.links_equal);
  EXPECT_EQ(r.scalar.links, r.bulk.links);
  EXPECT_GT(r.bulk.links.size(), 0u);
  EXPECT_EQ(r.scalar.congested_clock, r.bulk.congested_clock);

  // Three-way: the same algorithm under the sharded parallel engine
  // (4 workers, min_parallel_batch 1 so every batch engages it, links
  // through a ShardedCongestionMap) must reproduce every exported number
  // bit-for-bit. Run twice with different tile sizes so both the
  // few-crossings and many-crossings segment decompositions are proven.
  const AbcResult abc = run_abc(algorithm);
  EXPECT_TRUE(abc.ok()) << abc.diff();
  EXPECT_EQ(abc.scalar.totals, abc.parallel.totals);
  EXPECT_EQ(abc.scalar.phases, abc.parallel.phases);
  EXPECT_EQ(abc.scalar.links, abc.parallel.links);
  EXPECT_EQ(abc.scalar.congested_clock, abc.parallel.congested_clock);
  parallel::Config tiny = abc_default_config();
  tiny.threads = 3;
  tiny.tile_rows = 4;
  tiny.tile_cols = 4;
  const AbcResult abc_tiny = run_abc(algorithm, tiny);
  EXPECT_TRUE(abc_tiny.ok()) << abc_tiny.diff();
}

TEST(BulkEquivalence, Scan) {
  const auto v = random_doubles(1, 256);
  expect_ab_ok([&](Machine& m) {
    auto a = GridArray<double>::from_values_square({0, 0}, v);
    a.announce(m);
    (void)scan(m, a, Plus{});
  });
}

TEST(BulkEquivalence, ExclusiveScan) {
  const auto v = random_doubles(2, 255);  // non-power-of-4 fill
  expect_ab_ok([&](Machine& m) {
    auto a = GridArray<double>::from_values_square({0, 0}, v);
    (void)exclusive_scan(m, a, Plus{}, 0.0);
  });
}

TEST(BulkEquivalence, Mergesort2d) {
  const auto v = random_doubles(3, 256);
  expect_ab_ok([&](Machine& m) {
    auto a =
        GridArray<double>::from_values_square({0, 0}, v, Layout::kRowMajor);
    (void)mergesort2d(m, a);
  });
}

TEST(BulkEquivalence, BitonicSort) {
  const auto v = random_doubles(4, 256);
  expect_ab_ok([&](Machine& m) {
    auto a =
        GridArray<double>::from_values_square({0, 0}, v, Layout::kRowMajor);
    bitonic_sort(m, a, std::less<double>{});
  });
}

TEST(BulkEquivalence, SelectRank) {
  const auto v = random_doubles(5, 256);
  expect_ab_ok([&](Machine& m) {
    auto a =
        GridArray<double>::from_values_square({0, 0}, v, Layout::kRowMajor);
    (void)select_rank(m, a, 128, 9);
  });
}

TEST(BulkEquivalence, Spmv) {
  const CooMatrix mat = random_uniform_matrix(64, 128, 2);
  const auto x = random_doubles(6, 64);
  expect_ab_ok([&](Machine& m) { (void)spmv(m, mat, x); });
}

TEST(BulkEquivalence, BinomialBaselines) {
  expect_ab_ok([](Machine& m) {
    const Rect rect = square_at({0, 0}, 8);
    auto bc = binomial_broadcast(m, rect, Cell<double>{1.0, Clock{}});
    (void)binomial_reduce(m, bc, Plus{});
  });
}

TEST(BulkEquivalence, AnnounceRetire) {
  const auto v = random_doubles(8, 100);
  expect_ab_ok([&](Machine& m) {
    auto a = GridArray<double>::from_values_square({0, 0}, v);
    a.announce(m);
    auto b = route_permutation(m, a, a.region(), Layout::kRowMajor);
    a.retire(m);
    b.retire(m);
  });
}

// ---- The harness catches divergent fakes ----------------------------------

TEST(BulkAbHarness, CatchesDivergentTotals) {
  // A fake "bulk path" that charges one extra message when bulk charging
  // is on must be flagged, not silently averaged away.
  const AbResult r = run_ab([](Machine& m) {
    Clock c = m.send({0, 0}, {0, 1}, Clock{});
    if (Machine::bulk_charging()) c = m.send({0, 1}, {0, 2}, c);
  });
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.totals_equal);
  EXPECT_NE(r.diff().find("totals"), std::string::npos) << r.diff();
}

TEST(BulkAbHarness, CatchesPhaseBoundaryDivergence) {
  // Same totals, different attribution: a fake bulk path that charges a
  // "batch" spanning a phase boundary entirely inside the first phase.
  // Real send_bulk may never do this (the whole batch belongs to the
  // call-time phase set); the harness must catch an engine that got it
  // wrong even though the grand totals agree.
  const AbResult r = run_ab([](Machine& m) {
    if (Machine::bulk_charging()) {
      Machine::PhaseScope a(m, "phase_a");
      (void)m.send({0, 0}, {0, 1}, Clock{});
      (void)m.send({0, 1}, {0, 2}, Clock{});
    } else {
      {
        Machine::PhaseScope a(m, "phase_a");
        (void)m.send({0, 0}, {0, 1}, Clock{});
      }
      {
        Machine::PhaseScope b(m, "phase_b");
        (void)m.send({0, 1}, {0, 2}, Clock{});
      }
    }
  });
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.totals_equal);
  EXPECT_FALSE(r.phases_equal);
  EXPECT_NE(r.diff().find("phase_b"), std::string::npos) << r.diff();
}

TEST(BulkAbHarness, CatchesParallelOnlyDivergence) {
  // A fake that charges one extra message only when the parallel engine
  // is installed: the scalar and bulk legs agree, so only the three-way
  // harness can flag it. An ambient engine (e.g. ctest under
  // SCM_THREADS=4) would make all three legs take the extra send, so
  // pin the baseline to scalar; run_abc's parallel leg re-enables it.
  const parallel::ScopedParallelEngine ambient_off{parallel::Config{}};
  const AbcResult r = run_abc([](Machine& m) {
    Clock c = m.send({0, 0}, {0, 1}, Clock{});
    if (parallel::engine() != nullptr) c = m.send({0, 1}, {0, 2}, c);
  });
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.totals_equal);
  EXPECT_EQ(r.scalar.totals, r.bulk.totals);
  EXPECT_NE(r.diff().find("parallel"), std::string::npos) << r.diff();
}

// ---- send_bulk edge cases --------------------------------------------------

/// Counts bulk events and replayed per-message events.
class CountingSink final : public TraceSink {
 public:
  void on_message(Coord, Coord, index_t) override { ++messages; }
  void on_send_bulk(std::span<const MessageEvent> batch) override {
    ++bulk_events;
    last_batch_size = static_cast<index_t>(batch.size());
    TraceSink::on_send_bulk(batch);  // default replay feeds on_message
  }
  void on_birth(Coord, Clock) override { ++births; }
  void on_death(Coord) override { ++deaths; }

  index_t messages{0};
  index_t bulk_events{0};
  index_t last_batch_size{0};
  index_t births{0};
  index_t deaths{0};
};

TEST(SendBulk, EmptyBatchIsANoOp) {
  CountingSink sink;
  Machine m;
  m.set_trace(&sink);
  m.send_bulk({});
  EXPECT_EQ(m.metrics(), Metrics{});
  EXPECT_EQ(sink.bulk_events, 0);
  EXPECT_EQ(sink.messages, 0);
  m.set_trace(nullptr);
}

TEST(SendBulk, AllZeroLengthBatchIsFreeAndUnreported) {
  CountingSink sink;
  Machine m;
  m.set_trace(&sink);
  std::vector<MessageEvent> batch(3);
  for (int i = 0; i < 3; ++i) {
    batch[static_cast<size_t>(i)] =
        MessageEvent{{i, i}, {i, i}, 0, Clock{2, 5}, Clock{}};
  }
  m.send_bulk(batch);
  EXPECT_EQ(m.metrics(), Metrics{});
  EXPECT_EQ(sink.bulk_events, 0);
  EXPECT_EQ(sink.messages, 0);
  // Zero-length entries still get their arrival clocks (= payload).
  for (const MessageEvent& e : batch) {
    EXPECT_EQ(e.distance, 0);
    EXPECT_EQ(e.arrival, (Clock{2, 5}));
  }
  m.set_trace(nullptr);
}

TEST(SendBulk, FillsDistancesAndArrivalClocks) {
  Machine m;
  std::vector<MessageEvent> batch(2);
  batch[0] = MessageEvent{{0, 0}, {2, 3}, 0, Clock{1, 4}, Clock{}};
  batch[1] = MessageEvent{{1, 1}, {1, 1}, 0, Clock{7, 9}, Clock{}};
  m.send_bulk(batch);
  EXPECT_EQ(batch[0].distance, 5);
  EXPECT_EQ(batch[0].arrival, (Clock{1, 4}.after_hop(5)));
  EXPECT_EQ(batch[1].distance, 0);
  EXPECT_EQ(batch[1].arrival, (Clock{7, 9}));
  EXPECT_EQ(m.metrics().energy, 5);
  EXPECT_EQ(m.metrics().messages, 1);
  EXPECT_EQ(m.metrics().max_clock, (Clock{1, 4}.after_hop(5)));
}

TEST(SendBulk, BatchAttributesToCallTimePhaseSet) {
  // The whole batch belongs to the phase set active at the call — in both
  // charging modes — and a batch issued between phases belongs to none.
  for (const bool bulk : {false, true}) {
    ScopedBulkCharging mode(bulk);
    Machine m;
    std::vector<MessageEvent> batch(2);
    auto fill = [&] {
      batch[0] = MessageEvent{{0, 0}, {0, 1}, 0, Clock{}, Clock{}};
      batch[1] = MessageEvent{{0, 1}, {0, 3}, 0, Clock{}, Clock{}};
    };
    {
      Machine::PhaseScope inside(m, "inside");
      fill();
      m.send_bulk(batch);
    }
    fill();
    m.send_bulk(batch);  // outside any phase
    EXPECT_EQ(m.phase("inside").energy, 3) << "bulk=" << bulk;
    EXPECT_EQ(m.phase("inside").messages, 2) << "bulk=" << bulk;
    EXPECT_EQ(m.metrics().energy, 6) << "bulk=" << bulk;
    EXPECT_EQ(m.metrics().messages, 4) << "bulk=" << bulk;
  }
}

TEST(BirthDeathBulk, ReplayMatchesScalar) {
  for (const bool bulk : {false, true}) {
    ScopedBulkCharging mode(bulk);
    CountingSink sink;
    Machine m;
    m.set_trace(&sink);
    const std::vector<BirthEvent> births = {
        {{0, 0}, Clock{1, 2}}, {{0, 1}, Clock{3, 4}}, {{1, 0}, Clock{}}};
    m.birth_bulk(births);
    const std::vector<Coord> deaths = {{0, 0}, {0, 1}, {1, 0}};
    m.death_bulk(deaths);
    EXPECT_EQ(sink.births, 3) << "bulk=" << bulk;
    EXPECT_EQ(sink.deaths, 3) << "bulk=" << bulk;
    EXPECT_EQ(m.metrics().max_clock, (Clock{3, 4})) << "bulk=" << bulk;
    EXPECT_EQ(m.metrics().messages, 0) << "bulk=" << bulk;
    m.set_trace(nullptr);
  }
}

TEST(BirthDeathBulk, EmptyBatchesAreNoOps) {
  CountingSink sink;
  Machine m;
  m.set_trace(&sink);
  m.birth_bulk({});
  m.death_bulk({});
  EXPECT_EQ(sink.births, 0);
  EXPECT_EQ(sink.deaths, 0);
  EXPECT_EQ(m.metrics(), Metrics{});
  m.set_trace(nullptr);
}

}  // namespace
}  // namespace scm
