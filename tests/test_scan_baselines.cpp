// Tests of the baseline collectives (Sections II-A and IV-C): correctness,
// and the cost separations the paper claims — sequential scan is linear
// depth, the 1-D binary-tree scan pays Theta(n log n) energy, and the
// binomial collectives pay a Theta(log n) energy factor over the quadrant
// collectives.
#include "collectives/baselines.hpp"
#include "collectives/broadcast.hpp"
#include "collectives/reduce.hpp"
#include "collectives/scan.hpp"

#include "spatial/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace scm {
namespace {

std::vector<long long> ref_scan(const std::vector<long long>& v) {
  std::vector<long long> ref(v.size());
  std::inclusive_scan(v.begin(), v.end(), ref.begin());
  return ref;
}

TEST(SequentialScan, MatchesReference) {
  for (index_t n : {1, 2, 10, 64, 100, 256}) {
    Machine m;
    auto vals = random_ints(n, static_cast<size_t>(n), -9, 9);
    std::vector<long long> v(vals.begin(), vals.end());
    auto a = GridArray<long long>::from_values_square({0, 0}, v);
    EXPECT_EQ(sequential_scan(m, a, Plus{}).values(), ref_scan(v)) << n;
  }
}

TEST(SequentialScan, LinearDepthLinearEnergy) {
  Machine m;
  auto vals = random_ints(1, 1024, 0, 9);
  std::vector<long long> v(vals.begin(), vals.end());
  auto a = GridArray<long long>::from_values_square({0, 0}, v);
  (void)sequential_scan(m, a, Plus{});
  EXPECT_EQ(m.metrics().depth(), 1023);  // Omega(n) depth: one long chain
  EXPECT_LE(m.metrics().energy, 3 * 1024);  // O(n) energy on the Z curve
}

TEST(TreeScan1D, MatchesReference) {
  for (index_t n : {2, 4, 64, 256, 1024}) {
    Machine m;
    auto vals = random_ints(n + 5, static_cast<size_t>(n), -9, 9);
    std::vector<long long> v(vals.begin(), vals.end());
    auto a = GridArray<long long>::from_values_square({0, 0}, v,
                                                      Layout::kRowMajor);
    EXPECT_EQ(tree_scan_1d(m, a, Plus{}).values(), ref_scan(v)) << n;
  }
}

TEST(TreeScan1D, PaysLogFactorOverZOrderScan) {
  // Section IV-C: the naive binary-tree scan costs Omega(n log n) energy;
  // the 2-D scan costs O(n). The ratio must grow with n.
  auto ratio = [](index_t n) {
    auto vals = random_ints(9, static_cast<size_t>(n), 0, 9);
    std::vector<long long> v(vals.begin(), vals.end());
    Machine m1;
    auto a1 = GridArray<long long>::from_values_square({0, 0}, v,
                                                       Layout::kRowMajor);
    (void)tree_scan_1d(m1, a1, Plus{});
    Machine m2;
    auto a2 = GridArray<long long>::from_values_square({0, 0}, v);
    (void)scan(m2, a2, Plus{});
    return static_cast<double>(m1.metrics().energy) /
           static_cast<double>(m2.metrics().energy);
  };
  const double r_small = ratio(256);
  const double r_large = ratio(16384);
  EXPECT_GT(r_large, r_small * 1.3);
}

TEST(BinomialBroadcast, DeliversEverywhere) {
  for (const Rect rect : {Rect{0, 0, 8, 8}, Rect{0, 0, 5, 7},
                          Rect{0, 0, 1, 16}}) {
    Machine m;
    GridArray<int> out = binomial_broadcast(m, rect, Cell<int>{5, Clock{}});
    for (index_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i].value, 5) << rect.str() << " cell " << i;
    }
  }
}

TEST(BinomialReduce, SumsCorrectly) {
  Machine m;
  auto vals = random_ints(2, 200, -5, 5);
  std::vector<long long> v(vals.begin(), vals.end());
  auto a = GridArray<long long>::from_values_square({0, 0}, v,
                                                    Layout::kRowMajor);
  EXPECT_EQ(binomial_reduce(m, a, Plus{}).value,
            std::accumulate(v.begin(), v.end(), 0LL));
}

TEST(BinomialCollectives, PayLogFactorOverQuadrantCollectives) {
  // Section II-A: previous O(log n)-depth reduce took Omega(n log n)
  // energy; the quadrant reduce is O(n). The ratio grows with n.
  auto ratio = [](index_t side) {
    const Rect rect{0, 0, side, side};
    Machine m1;
    (void)binomial_broadcast(m1, rect, Cell<int>{1, Clock{}});
    Machine m2;
    (void)broadcast(m2, rect, Cell<int>{1, Clock{}});
    return static_cast<double>(m1.metrics().energy) /
           static_cast<double>(m2.metrics().energy);
  };
  EXPECT_GT(ratio(128), ratio(16) * 1.3);
}

TEST(BinomialCollectives, StillLogDepth) {
  Machine m;
  const Rect rect{0, 0, 64, 64};
  (void)binomial_broadcast(m, rect, Cell<int>{1, Clock{}});
  EXPECT_LE(m.metrics().depth(), 13);  // ceil(log2(4096)) + 1
}

}  // namespace
}  // namespace scm
