// Tests of All-Pairs Sort (Section V-C-a, Lemma V.5).
#include "sort/allpairs.hpp"

#include "spatial/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace scm {
namespace {

class AllPairsSweep
    : public ::testing::TestWithParam<std::tuple<index_t, std::uint64_t>> {};

TEST_P(AllPairsSweep, SortsDistinctDoubles) {
  const auto [n, seed] = GetParam();
  Machine m;
  auto v = random_doubles(seed, static_cast<size_t>(n));
  auto a = GridArray<double>::from_values_square({0, 0}, v);
  GridArray<double> s = allpairs_sort(m, a, std::less<double>{});
  auto ref = v;
  std::sort(ref.begin(), ref.end());
  EXPECT_EQ(s.values(), ref) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, AllPairsSweep,
    ::testing::Combine(::testing::Values<index_t>(1, 2, 3, 4, 5, 8, 16, 17,
                                                  64, 100, 128),
                       ::testing::Values<std::uint64_t>(1, 2)));

TEST(AllPairsStable, DuplicateKeysKeepInputOrder) {
  Machine m;
  std::vector<std::pair<int, int>> v;
  std::mt19937_64 rng(3);
  for (int i = 0; i < 100; ++i) v.emplace_back(static_cast<int>(rng() % 4), i);
  auto a = GridArray<std::pair<int, int>>::from_values_square({0, 0}, v);
  auto s = allpairs_sort_stable(
      m, a, [](const auto& x, const auto& y) { return x.first < y.first; });
  auto ref = v;
  std::stable_sort(ref.begin(), ref.end(), [](const auto& x, const auto& y) {
    return x.first < y.first;
  });
  EXPECT_EQ(s.values(), ref);
}

TEST(AllPairsStable, AllEqual) {
  Machine m;
  std::vector<int> v(37, 9);
  auto a = GridArray<int>::from_values_square({0, 0}, v);
  auto s = allpairs_sort_stable(m, a, std::less<int>{});
  EXPECT_EQ(s.values(), v);
}

TEST(AllPairs, InputLayoutAndOriginDoNotMatter) {
  Machine m;
  auto v = random_doubles(4, 60);
  auto a = GridArray<double>::from_values_square({10, 20}, v,
                                                 Layout::kRowMajor);
  GridArray<double> s = allpairs_sort(m, a, std::less<double>{});
  auto ref = v;
  std::sort(ref.begin(), ref.end());
  EXPECT_EQ(s.values(), ref);
  EXPECT_EQ(s.region().origin(), (Coord{10, 20}));
}

TEST(AllPairs, LowDepth) {
  // Lemma V.5: O(log n) depth. At n = 256 the depth must stay well below
  // the Theta(log^2) of bitonic or Theta(sqrt n) of mesh sorts.
  Machine m;
  auto v = random_doubles(5, 256);
  auto a = GridArray<double>::from_values_square({0, 0}, v);
  (void)allpairs_sort(m, a, std::less<double>{});
  EXPECT_LE(static_cast<double>(m.metrics().depth()),
            4.0 * std::log2(256.0));
}

TEST(AllPairs, EnergyShapeIsN52) {
  // Lemma V.5: O(n^{5/2}) energy; the normalized ratio stays bounded.
  auto normalized = [](index_t n) {
    Machine m;
    auto v = random_doubles(6, static_cast<size_t>(n));
    auto a = GridArray<double>::from_values_square({0, 0}, v);
    (void)allpairs_sort(m, a, std::less<double>{});
    return static_cast<double>(m.metrics().energy) /
           std::pow(static_cast<double>(n), 2.5);
  };
  const double r1 = normalized(64);
  const double r2 = normalized(256);
  EXPECT_LT(r2, 2.0 * r1 + 1.0);
  EXPECT_LT(r2, 8.0);
}

}  // namespace
}  // namespace scm
