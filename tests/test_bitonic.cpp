// Tests of the bitonic sorting network (Section V-B): the 0-1 principle
// over all binary inputs, random sweeps, arbitrary-n padding, stability of
// the stable wrapper, and the Lemma V.4 cost shape.
#include "sort/bitonic.hpp"
#include "sort/sort.hpp"

#include "spatial/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace scm {
namespace {

TEST(Bitonic, ZeroOnePrincipleExhaustiveN16) {
  // A data-oblivious network sorts every input iff it sorts every 0-1
  // input (Knuth's 0-1 principle). n = 16 has 65536 binary inputs.
  const index_t n = 16;
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    Machine m;
    std::vector<int> v(n);
    int ones = 0;
    for (index_t i = 0; i < n; ++i) {
      v[static_cast<size_t>(i)] = (mask >> i) & 1;
      ones += v[static_cast<size_t>(i)];
    }
    auto a = GridArray<int>::from_values_square({0, 0}, v,
                                                Layout::kRowMajor);
    bitonic_sort(m, a, std::less<int>{});
    const std::vector<int> got = a.values();
    for (index_t i = 0; i < n; ++i) {
      ASSERT_EQ(got[static_cast<size_t>(i)], i >= n - ones ? 1 : 0)
          << "mask=" << mask;
    }
  }
}

class BitonicSweep
    : public ::testing::TestWithParam<std::tuple<index_t, std::uint64_t>> {};

TEST_P(BitonicSweep, SortsRandomDoubles) {
  const auto [n, seed] = GetParam();
  Machine m;
  auto v = random_doubles(seed, static_cast<size_t>(n));
  auto a = GridArray<double>::from_values_square({0, 0}, v,
                                                 Layout::kRowMajor);
  bitonic_sort(m, a, std::less<double>{});
  auto ref = v;
  std::sort(ref.begin(), ref.end());
  EXPECT_EQ(a.values(), ref);
}

TEST_P(BitonicSweep, SortsOnZOrderLayoutToo) {
  const auto [n, seed] = GetParam();
  Machine m;
  auto v = random_doubles(seed + 99, static_cast<size_t>(n));
  auto a = GridArray<double>::from_values_square({0, 0}, v, Layout::kZOrder);
  bitonic_sort(m, a, std::less<double>{});
  auto ref = v;
  std::sort(ref.begin(), ref.end());
  EXPECT_EQ(a.values(), ref);
}

INSTANTIATE_TEST_SUITE_P(
    PowersOfTwo, BitonicSweep,
    ::testing::Combine(::testing::Values<index_t>(2, 4, 16, 64, 256, 1024),
                       ::testing::Values<std::uint64_t>(10, 20)));

TEST(BitonicAnyN, PadsAndSorts) {
  for (index_t n : {1, 3, 5, 7, 17, 100, 1000}) {
    Machine m;
    auto v = random_doubles(static_cast<std::uint64_t>(n),
                            static_cast<size_t>(n));
    auto a = GridArray<double>::from_values_square({0, 0}, v,
                                                   Layout::kRowMajor);
    GridArray<double> s = bitonic_sort_any(m, a, std::less<double>{});
    auto ref = v;
    std::sort(ref.begin(), ref.end());
    EXPECT_EQ(s.values(), ref) << n;
  }
}

TEST(BitonicStable, PreservesInputOrderOfEqualKeys) {
  Machine m;
  // Keys with many duplicates; stability observable through pairs.
  std::vector<std::pair<int, int>> v;
  std::mt19937_64 rng(5);
  for (int i = 0; i < 200; ++i) {
    v.emplace_back(static_cast<int>(rng() % 7), i);
  }
  auto a = GridArray<std::pair<int, int>>::from_values_square(
      {0, 0}, v, Layout::kRowMajor);
  auto s = bitonic_sort_stable(
      m, a, [](const auto& x, const auto& y) { return x.first < y.first; });
  auto ref = v;
  std::stable_sort(ref.begin(), ref.end(), [](const auto& x, const auto& y) {
    return x.first < y.first;
  });
  EXPECT_EQ(s.values(), ref);
}

TEST(Bitonic, AllEqualKeysAreUntouchedOrder) {
  Machine m;
  std::vector<int> v(64, 5);
  auto a = GridArray<int>::from_values_square({0, 0}, v, Layout::kRowMajor);
  bitonic_sort(m, a, std::less<int>{});
  EXPECT_EQ(a.values(), v);
}

TEST(Bitonic, AdversarialInputs) {
  for (auto maker : {+[](index_t n) {
                       std::vector<double> v;
                       for (index_t i = 0; i < n; ++i) {
                         v.push_back(static_cast<double>(n - i));
                       }
                       return v;  // reversed
                     },
                     +[](index_t n) {
                       std::vector<double> v;
                       for (index_t i = 0; i < n; ++i) {
                         v.push_back(static_cast<double>(i % 7));
                       }
                       return v;  // sawtooth
                     }}) {
    Machine m;
    auto v = maker(256);
    auto a = GridArray<double>::from_values_square({0, 0}, v,
                                                   Layout::kRowMajor);
    bitonic_sort(m, a, std::less<double>{});
    auto ref = v;
    std::sort(ref.begin(), ref.end());
    EXPECT_EQ(a.values(), ref);
  }
}

TEST(BitonicMerge, MergesBitonicSequences) {
  // An ascending run followed by a descending run is bitonic; the merge
  // network must sort it (Lemma V.3).
  for (index_t n : {4, 16, 64, 256}) {
    Machine m;
    auto up = random_doubles(static_cast<std::uint64_t>(n),
                             static_cast<size_t>(n / 2));
    auto down = random_doubles(static_cast<std::uint64_t>(n + 1),
                               static_cast<size_t>(n / 2));
    std::sort(up.begin(), up.end());
    std::sort(down.begin(), down.end(), std::greater<double>{});
    std::vector<double> v = up;
    v.insert(v.end(), down.begin(), down.end());
    auto a = GridArray<double>::from_values_square({0, 0}, v,
                                                   Layout::kRowMajor);
    bitonic_merge(m, a, std::less<double>{});
    auto ref = v;
    std::sort(ref.begin(), ref.end());
    EXPECT_EQ(a.values(), ref) << n;
  }
}

TEST(BitonicMerge, ZeroOnePrincipleExhaustiveBitonicInputs) {
  // All 0-1 bitonic sequences of length 16 (0^a 1^b 0^c patterns and
  // rotations thereof that remain bitonic: 1^a 0^b 1^c too).
  const index_t n = 16;
  auto check = [&](const std::vector<int>& v) {
    Machine m;
    auto a = GridArray<int>::from_values_square({0, 0}, v,
                                                Layout::kRowMajor);
    bitonic_merge(m, a, std::less<int>{});
    auto ref = v;
    std::sort(ref.begin(), ref.end());
    ASSERT_EQ(a.values(), ref);
  };
  for (index_t i = 0; i <= n; ++i) {
    for (index_t j = i; j <= n; ++j) {
      std::vector<int> updown(static_cast<size_t>(n), 0);
      std::vector<int> downup(static_cast<size_t>(n), 1);
      for (index_t k = i; k < j; ++k) {
        updown[static_cast<size_t>(k)] = 1;
        downup[static_cast<size_t>(k)] = 0;
      }
      check(updown);
      check(downup);
    }
  }
}

TEST(BitonicMerge, LogDepthLinearStages) {
  Machine m;
  auto v = random_doubles(3, 512);
  std::sort(v.begin(), v.begin() + 256);
  std::sort(v.begin() + 256, v.end(), std::greater<double>{});
  auto a = GridArray<double>::from_values_square({0, 0}, v,
                                                 Layout::kRowMajor);
  bitonic_merge(m, a, std::less<double>{});
  EXPECT_LE(m.metrics().depth(), 10);  // log2(512) + 1 stages
}

TEST(Bitonic, DepthIsLogSquared) {
  // The network has exactly log2(n)*(log2(n)+1)/2 compare stages, and each
  // stage is one message step.
  Machine m;
  auto v = random_doubles(1, 1024);
  auto a = GridArray<double>::from_values_square({0, 0}, v,
                                                 Layout::kRowMajor);
  bitonic_sort(m, a, std::less<double>{});
  const double stages = 10.0 * 11.0 / 2.0;
  EXPECT_LE(static_cast<double>(m.metrics().depth()), stages + 1);
  EXPECT_GE(static_cast<double>(m.metrics().depth()), stages - 1);
}

TEST(Bitonic, EnergyPaysLogFactorOverN32) {
  // Lemma V.4: Theta(n^{3/2} log n) on a square grid. The normalized
  // energy e / n^{3/2} must grow roughly linearly in log n.
  auto normalized = [](index_t n) {
    Machine m;
    auto v = random_doubles(2, static_cast<size_t>(n));
    auto a = GridArray<double>::from_values_square({0, 0}, v,
                                                   Layout::kRowMajor);
    bitonic_sort(m, a, std::less<double>{});
    return static_cast<double>(m.metrics().energy) /
           std::pow(static_cast<double>(n), 1.5);
  };
  const double r1 = normalized(256);
  const double r2 = normalized(4096);
  EXPECT_GT(r2, r1 * 1.2);  // grows with log n
  EXPECT_LT(r2, r1 * 3.0);  // ... but only logarithmically
}

}  // namespace
}  // namespace scm
