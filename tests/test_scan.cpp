// Tests of the energy-optimal Z-order scan (Section IV-C, Lemma IV.3):
// correctness against std::inclusive_scan across sizes, operators, and
// seeds; segmented scans; and the Theta(n) / O(log n) / Theta(sqrt n)
// cost shape.
#include "collectives/scan.hpp"

#include "spatial/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <tuple>

namespace scm {
namespace {

class ScanSweep
    : public ::testing::TestWithParam<std::tuple<index_t, std::uint64_t>> {};

TEST_P(ScanSweep, MatchesInclusiveScan) {
  const auto [n, seed] = GetParam();
  Machine m;
  auto vals = random_ints(seed, static_cast<size_t>(n), -50, 50);
  std::vector<long long> v(vals.begin(), vals.end());
  auto a = GridArray<long long>::from_values_square({0, 0}, v);
  GridArray<long long> out = scan(m, a, Plus{});
  std::vector<long long> ref(v.size());
  std::inclusive_scan(v.begin(), v.end(), ref.begin());
  EXPECT_EQ(out.values(), ref) << "n=" << n << " seed=" << seed;
}

TEST_P(ScanSweep, MaxOperator) {
  const auto [n, seed] = GetParam();
  Machine m;
  auto vals = random_ints(seed + 1000, static_cast<size_t>(n), -50, 50);
  std::vector<long long> v(vals.begin(), vals.end());
  auto a = GridArray<long long>::from_values_square({0, 0}, v);
  GridArray<long long> out = scan(m, a, Max{});
  std::vector<long long> ref(v.size());
  std::inclusive_scan(v.begin(), v.end(), ref.begin(),
                      [](long long x, long long y) { return std::max(x, y); });
  EXPECT_EQ(out.values(), ref);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, ScanSweep,
    ::testing::Combine(::testing::Values<index_t>(1, 2, 3, 4, 5, 15, 16, 17,
                                                  63, 64, 100, 256, 1000,
                                                  1024, 4096),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

// Order-sensitive value for the non-commutativity test below.
struct Interval {
  long long lo;
  long long hi;
  friend bool operator==(const Interval&, const Interval&) = default;
};

struct Compose {
  Interval operator()(const Interval& a, const Interval& b) const {
    return Interval{a.lo, b.hi};  // non-commutative
  }
};

TEST(Scan, NonCommutativeOperatorRespectsOrder) {
  // Interval composition is order-sensitive: scan must combine strictly
  // left to right.
  Machine m;
  std::vector<Interval> v;
  for (long long i = 0; i < 64; ++i) v.push_back({i, i});
  auto a = GridArray<Interval>::from_values_square({0, 0}, v);
  GridArray<Interval> out = scan(m, a, Compose{});
  for (index_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].value, (Interval{0, i}));
  }
}

TEST(Scan, SegmentedScanMatchesPerSegmentScan) {
  for (std::uint64_t seed : {7u, 8u, 9u}) {
    Machine m;
    auto vals = random_ints(seed, 256, -10, 10);
    std::mt19937_64 rng(seed * 17);
    std::vector<Seg<long long>> sv;
    for (size_t i = 0; i < vals.size(); ++i) {
      sv.push_back({vals[i], i == 0 || rng() % 5 == 0});
    }
    auto a = GridArray<Seg<long long>>::from_values_square({0, 0}, sv);
    GridArray<Seg<long long>> out = segmented_scan(m, a, Plus{});
    long long run = 0;
    for (size_t i = 0; i < sv.size(); ++i) {
      if (sv[i].head) run = 0;
      run += sv[i].value;
      EXPECT_EQ(out[static_cast<index_t>(i)].value.value, run) << i;
    }
  }
}

TEST(Scan, SegmentedScanSingleSegmentEqualsPlainScan) {
  Machine m;
  auto vals = random_ints(11, 64, 0, 9);
  std::vector<Seg<long long>> sv;
  for (size_t i = 0; i < vals.size(); ++i) sv.push_back({vals[i], i == 0});
  auto a = GridArray<Seg<long long>>::from_values_square({0, 0}, sv);
  GridArray<Seg<long long>> out = segmented_scan(m, a, Plus{});
  std::vector<long long> ref(vals.size());
  std::inclusive_scan(vals.begin(), vals.end(), ref.begin());
  for (size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(out[static_cast<index_t>(i)].value.value, ref[i]);
  }
}

TEST(Scan, SegmentedMinScanForLabelPropagation) {
  // The graph-components round uses a segmented MIN scan; verify the
  // per-segment running minimum semantics directly.
  Machine m;
  std::vector<Seg<long long>> sv;
  std::mt19937_64 rng(21);
  for (int i = 0; i < 128; ++i) {
    sv.push_back({static_cast<long long>(rng() % 100), i % 9 == 0});
  }
  auto a = GridArray<Seg<long long>>::from_values_square({0, 0}, sv);
  GridArray<Seg<long long>> out = segmented_scan(m, a, Min{});
  long long run = 0;
  for (size_t i = 0; i < sv.size(); ++i) {
    run = sv[i].head ? sv[i].value : std::min(run, sv[i].value);
    EXPECT_EQ(out[static_cast<index_t>(i)].value.value, run) << i;
  }
}

TEST(Scan, SegmentedScanAllHeadsIsIdentity) {
  Machine m;
  std::vector<Seg<long long>> sv;
  for (long long i = 0; i < 32; ++i) sv.push_back({i * 3, true});
  auto a = GridArray<Seg<long long>>::from_values_square({0, 0}, sv);
  GridArray<Seg<long long>> out = segmented_scan(m, a, Plus{});
  for (index_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].value.value, i * 3);
  }
}

TEST(Scan, ExclusiveScanShiftsTheInclusiveResult) {
  for (index_t n : {1, 2, 5, 64, 100, 256}) {
    Machine m;
    auto vals = random_ints(static_cast<std::uint64_t>(n),
                            static_cast<size_t>(n), -9, 9);
    std::vector<long long> v(vals.begin(), vals.end());
    auto a = GridArray<long long>::from_values_square({0, 0}, v);
    GridArray<long long> out = exclusive_scan(m, a, Plus{}, 0LL);
    std::vector<long long> ref(v.size());
    std::exclusive_scan(v.begin(), v.end(), ref.begin(), 0LL);
    EXPECT_EQ(out.values(), ref) << n;
  }
}

TEST(Scan, ExclusiveScanKeepsLinearEnergyLogDepth) {
  Machine m;
  auto vals = random_ints(3, 4096, 0, 9);
  std::vector<long long> v(vals.begin(), vals.end());
  auto a = GridArray<long long>::from_values_square({0, 0}, v);
  (void)exclusive_scan(m, a, Plus{}, 0LL);
  EXPECT_LE(m.metrics().energy, 10 * 4096);
  EXPECT_LE(static_cast<double>(m.metrics().depth()),
            3.0 * std::log2(4096.0) + 2);
}

TEST(Scan, EnergyIsLinear) {
  auto energy_per_element = [](index_t n) {
    Machine m;
    auto vals = random_ints(1, static_cast<size_t>(n), 0, 9);
    std::vector<long long> v(vals.begin(), vals.end());
    auto a = GridArray<long long>::from_values_square({0, 0}, v);
    (void)scan(m, a, Plus{});
    return static_cast<double>(m.metrics().energy) / static_cast<double>(n);
  };
  // Lemma IV.3: energy per element converges to a constant.
  const double e1 = energy_per_element(1024);
  const double e2 = energy_per_element(4096);
  const double e3 = energy_per_element(16384);
  EXPECT_NEAR(e2, e3, 0.4);
  EXPECT_LT(std::abs(e3 - e2), std::abs(e2 - e1) + 0.3);
  EXPECT_LT(e3, 8.0);  // small absolute constant
}

TEST(Scan, DepthIsLogarithmic) {
  for (index_t n : {256, 1024, 4096, 16384}) {
    Machine m;
    auto vals = random_ints(2, static_cast<size_t>(n), 0, 9);
    std::vector<long long> v(vals.begin(), vals.end());
    auto a = GridArray<long long>::from_values_square({0, 0}, v);
    (void)scan(m, a, Plus{});
    EXPECT_LE(static_cast<double>(m.metrics().depth()),
              3.0 * std::log2(static_cast<double>(n)))
        << n;
  }
}

TEST(Scan, DistanceIsOrderSqrtN) {
  for (index_t n : {1024, 4096, 16384}) {
    Machine m;
    auto vals = random_ints(3, static_cast<size_t>(n), 0, 9);
    std::vector<long long> v(vals.begin(), vals.end());
    auto a = GridArray<long long>::from_values_square({0, 0}, v);
    (void)scan(m, a, Plus{});
    EXPECT_LE(static_cast<double>(m.metrics().distance()),
              8.0 * std::sqrt(static_cast<double>(n)))
        << n;
  }
}

}  // namespace
}  // namespace scm
