// Tests of the Z-order (Morton) curve utilities, including the locality
// property behind Observation 1.
#include "spatial/zorder.hpp"

#include <gtest/gtest.h>

#include <set>

namespace scm {
namespace {

TEST(ZOrder, FirstFourFollowPaperOrder) {
  // Top two quadrant cells left to right, then the bottom two.
  EXPECT_EQ(zorder_decode(0), (Offset2D{0, 0}));
  EXPECT_EQ(zorder_decode(1), (Offset2D{0, 1}));
  EXPECT_EQ(zorder_decode(2), (Offset2D{1, 0}));
  EXPECT_EQ(zorder_decode(3), (Offset2D{1, 1}));
}

TEST(ZOrder, EncodeDecodeRoundTrip) {
  for (index_t z = 0; z < 4096; ++z) {
    const Offset2D off = zorder_decode(z);
    EXPECT_EQ(zorder_encode(off.row, off.col), z);
  }
  for (index_t r = 0; r < 64; ++r) {
    for (index_t c = 0; c < 64; ++c) {
      const Offset2D off = zorder_decode(zorder_encode(r, c));
      EXPECT_EQ(off.row, r);
      EXPECT_EQ(off.col, c);
    }
  }
}

TEST(ZOrder, LargeCoordinatesRoundTrip) {
  const index_t big = (index_t{1} << 30) + 12345;
  const index_t z = zorder_encode(big, big - 77);
  const Offset2D off = zorder_decode(z);
  EXPECT_EQ(off.row, big);
  EXPECT_EQ(off.col, big - 77);
}

// Bit-at-a-time reference implementations, cross-checked against the
// byte-LUT production encode/decode.
index_t reference_encode(index_t row, index_t col) {
  index_t z = 0;
  for (int bit = 0; bit < 31; ++bit) {
    z |= ((col >> bit) & 1) << (2 * bit);
    z |= ((row >> bit) & 1) << (2 * bit + 1);
  }
  return z;
}

Offset2D reference_decode(index_t z) {
  Offset2D off{};
  for (int bit = 0; bit < 31; ++bit) {
    off.col |= ((z >> (2 * bit)) & 1) << bit;
    off.row |= ((z >> (2 * bit + 1)) & 1) << bit;
  }
  return off;
}

TEST(ZOrder, ByteLutMatchesBitReference) {
  // Dense small range plus sparse strides reaching every LUT byte lane.
  for (index_t z = 0; z < 1 << 16; ++z) {
    EXPECT_EQ(zorder_decode(z), reference_decode(z)) << "z=" << z;
  }
  for (index_t r = 0; r < 256; ++r) {
    for (index_t c = 0; c < 256; ++c) {
      EXPECT_EQ(zorder_encode(r, c), reference_encode(r, c));
    }
  }
  const index_t big = index_t{1} << 60;  // stay clear of signed overflow
  for (index_t z = 0; z < big; z = z * 3 + 12345) {
    const Offset2D off = reference_decode(z);
    EXPECT_EQ(zorder_decode(z), off) << "z=" << z;
    EXPECT_EQ(zorder_encode(off.row, off.col), reference_encode(off.row, off.col))
        << "z=" << z;
  }
}

TEST(ZOrder, CurveIsABijectionOverTheGrid) {
  const Rect r{3, 5, 16, 16};
  std::set<std::pair<index_t, index_t>> seen;
  for (index_t i = 0; i < r.size(); ++i) {
    const Coord c = zorder_coord(r, i);
    EXPECT_TRUE(r.contains(c));
    EXPECT_TRUE(seen.insert({c.row, c.col}).second);
    EXPECT_EQ(zorder_index(r, c), i);
  }
  EXPECT_EQ(static_cast<index_t>(seen.size()), r.size());
}

TEST(ZOrder, AlignedRangesAreSquares) {
  // An aligned range [j * 4^h, (j+1) * 4^h) covers exactly a square
  // subgrid — the property the merge recursion relies on.
  const Rect r{0, 0, 16, 16};
  for (index_t h = 0; h <= 3; ++h) {
    const index_t len = index_t{1} << (2 * h);
    for (index_t j = 0; j < r.size() / len; ++j) {
      index_t min_r = 1000, max_r = -1, min_c = 1000, max_c = -1;
      for (index_t i = j * len; i < (j + 1) * len; ++i) {
        const Coord c = zorder_coord(r, i);
        min_r = std::min(min_r, c.row);
        max_r = std::max(max_r, c.row);
        min_c = std::min(min_c, c.col);
        max_c = std::max(max_c, c.col);
      }
      const index_t side = isqrt(len);
      EXPECT_EQ(max_r - min_r + 1, side);
      EXPECT_EQ(max_c - min_c + 1, side);
    }
  }
}

TEST(ZOrder, CurveLengthIsLinear) {
  // Observation 1: one message per curve edge costs O(n) total energy.
  for (index_t side : {2, 4, 8, 16, 32, 64}) {
    const index_t n = side * side;
    const index_t len = zorder_curve_length(side);
    EXPECT_GE(len, n - 1);  // at least one unit per edge
    EXPECT_LE(len, 3 * n);  // linear with a small constant
  }
}

TEST(ZOrder, CurveLengthGrowsLinearly) {
  const double r1 =
      static_cast<double>(zorder_curve_length(32)) / (32.0 * 32.0);
  const double r2 =
      static_cast<double>(zorder_curve_length(64)) / (64.0 * 64.0);
  EXPECT_NEAR(r1, r2, 0.2);  // energy per element converges
}

}  // namespace
}  // namespace scm
