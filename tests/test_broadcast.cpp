// Tests of the broadcast collective (Section IV-A, Lemma IV.1):
// correctness across subgrid shapes and the energy/depth/distance bounds.
#include "collectives/broadcast.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

namespace scm {
namespace {

class BroadcastShape
    : public ::testing::TestWithParam<std::tuple<index_t, index_t>> {};

TEST_P(BroadcastShape, DeliversToEveryProcessorExactlyOnce) {
  const auto [h, w] = GetParam();
  Machine m;
  const Rect rect{1, 2, h, w};
  GridArray<int> out = broadcast(m, rect, Cell<int>{42, Clock{}});
  ASSERT_EQ(out.size(), h * w);
  for (index_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].value, 42) << "cell " << i;
  }
}

TEST_P(BroadcastShape, MeetsLemmaIV1Bounds) {
  const auto [h, w] = GetParam();
  Machine m;
  const Rect rect{0, 0, h, w};
  (void)broadcast(m, rect, Cell<int>{1, Clock{}});
  const double n = static_cast<double>(h * w);
  const double tall = static_cast<double>(std::max(h, w));
  // Energy O(hw + h log h); generous constant.
  const double bound = 4.0 * (n + tall * (std::log2(tall) + 1));
  EXPECT_LE(static_cast<double>(m.metrics().energy), bound)
      << h << "x" << w;
  // Depth O(log n).
  EXPECT_LE(static_cast<double>(m.metrics().depth()),
            3.0 * (std::log2(n) + 1));
  // Distance O(w + h).
  EXPECT_LE(static_cast<double>(m.metrics().distance()),
            4.0 * static_cast<double>(h + w));
}

const std::vector<std::tuple<index_t, index_t>> kShapes{
    {1, 1},  {1, 2},   {2, 1},   {2, 2},   {3, 3},  {4, 4},
    {16, 16}, {32, 32}, {64, 64}, {64, 1},  {1, 64}, {128, 4},
    {4, 128}, {96, 32}, {7, 5},   {33, 17}, {256, 2}};

INSTANTIATE_TEST_SUITE_P(Shapes, BroadcastShape,
                         ::testing::ValuesIn(kShapes));

TEST(Broadcast, ClockStartsFromSourceValue) {
  Machine m;
  GridArray<int> out = broadcast(m, Rect{0, 0, 4, 4}, Cell<int>{7,
                                                                Clock{3, 10}});
  for (index_t i = 0; i < out.size(); ++i) {
    EXPECT_GE(out[i].clock.depth, 3);
    EXPECT_GE(out[i].clock.distance, 10);
  }
}

TEST(Broadcast, SquareEnergyIsLinear) {
  // On square subgrids the quadrant broadcast is O(n) energy — the log n
  // improvement over the binomial-tree baseline (Section II-A). Check the
  // per-element energy stays bounded as n grows 16x.
  Machine m;
  (void)broadcast(m, Rect{0, 0, 16, 16}, Cell<int>{1, Clock{}});
  const double small = static_cast<double>(m.metrics().energy) / 256.0;
  m.reset();
  (void)broadcast(m, Rect{0, 0, 64, 64}, Cell<int>{1, Clock{}});
  const double large = static_cast<double>(m.metrics().energy) / 4096.0;
  EXPECT_NEAR(small, large, 0.5);
}

TEST(Broadcast, DepthGrowsLogarithmically) {
  Machine m;
  (void)broadcast(m, Rect{0, 0, 64, 64}, Cell<int>{1, Clock{}});
  const index_t d64 = m.metrics().depth();
  m.reset();
  (void)broadcast(m, Rect{0, 0, 128, 128}, Cell<int>{1, Clock{}});
  const index_t d128 = m.metrics().depth();
  EXPECT_LE(d128 - d64, 4);  // doubling the side adds O(1) levels
}

}  // namespace
}  // namespace scm
