// Tests of the SpMV implementations (Section VIII): the direct
// sort-and-scan algorithm (Theorem VIII.2) and the PRAM-simulation
// baseline, against a dense host reference over varied matrix families.
#include "spmv/spmv.hpp"

#include "spmv/generators.hpp"
#include "spmv/pram_spmv.hpp"
#include "spatial/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace scm {
namespace {

void expect_close(const std::vector<double>& got,
                  const std::vector<double>& want, const char* label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], 1e-9 * (1.0 + std::abs(want[i])))
        << label << " row " << i;
  }
}

class SpmvMatrixFamilies : public ::testing::TestWithParam<int> {};

CooMatrix make_matrix(int family, index_t n, std::uint64_t seed) {
  switch (family) {
    case 0:
      return random_uniform_matrix(n, 2 * n, seed);
    case 1:
      return banded_matrix(n, 2, seed);
    case 2:
      return diagonal_matrix(random_doubles(seed, static_cast<size_t>(n)));
    case 3:
      return power_law_matrix(n, n / 4 + 2, 1.0, seed);
    default:
      return poisson2d_matrix(isqrt(n));
  }
}

TEST_P(SpmvMatrixFamilies, DirectMatchesReference) {
  const int family = GetParam();
  for (index_t n : {16, 49, 100}) {
    Machine m;
    const CooMatrix a = make_matrix(family, n, 17 + n);
    const auto x = random_doubles(23 + n, static_cast<size_t>(a.n_cols()));
    const SpmvResult r = spmv(m, a, x);
    expect_close(r.y, a.multiply_reference(x), "direct");
  }
}

TEST_P(SpmvMatrixFamilies, PramBaselineMatchesReference) {
  const int family = GetParam();
  for (index_t n : {16, 49}) {
    Machine m;
    const CooMatrix a = make_matrix(family, n, 31 + n);
    const auto x = random_doubles(37 + n, static_cast<size_t>(a.n_cols()));
    expect_close(spmv_pram(m, a, x), a.multiply_reference(x), "pram");
  }
}

INSTANTIATE_TEST_SUITE_P(Families, SpmvMatrixFamilies,
                         ::testing::Values(0, 1, 2, 3, 4));

TEST(Spmv, EmptyRowsAndColumns) {
  CooMatrix a(12, 12);
  a.add(3, 4, 2.0);
  a.add(3, 7, 1.0);
  a.add(9, 0, -1.5);
  const auto x = random_doubles(1, 12);
  Machine m;
  const SpmvResult r = spmv(m, a, x);
  expect_close(r.y, a.multiply_reference(x), "sparse rows");
  EXPECT_EQ(r.y[0], 0.0);
  EXPECT_EQ(r.y[11], 0.0);
}

TEST(Spmv, EmptyMatrixGivesZeroVector) {
  CooMatrix a(8, 8);
  Machine m;
  const SpmvResult r = spmv(m, a, std::vector<double>(8, 1.0));
  EXPECT_EQ(r.y, std::vector<double>(8, 0.0));
  EXPECT_EQ(m.metrics().energy, 0);
}

TEST(Spmv, SingleEntry) {
  CooMatrix a(4, 4);
  a.add(2, 1, 3.0);
  Machine m;
  const SpmvResult r = spmv(m, a, {1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(r.y, (std::vector<double>{0.0, 0.0, 6.0, 0.0}));
}

TEST(Spmv, DuplicateCoordinatesActAdditively) {
  CooMatrix a(4, 4);
  a.add(1, 1, 2.0);
  a.add(1, 1, 3.0);
  Machine m;
  const SpmvResult r = spmv(m, a, {0.0, 10.0, 0.0, 0.0});
  EXPECT_EQ(r.y[1], 50.0);
}

TEST(Spmv, RectangularMatrix) {
  CooMatrix a(3, 6);
  a.add(0, 5, 1.0);
  a.add(2, 0, 2.0);
  a.add(2, 5, -1.0);
  const std::vector<double> x{1, 2, 3, 4, 5, 6};
  Machine m;
  const SpmvResult r = spmv(m, a, x);
  expect_close(r.y, a.multiply_reference(x), "rectangular");
}

TEST(Spmv, RejectsBadInputs) {
  CooMatrix a(4, 4);
  a.add(0, 0, 1.0);
  Machine m;
  EXPECT_THROW((void)spmv(m, a, std::vector<double>(3, 0.0)),
               std::invalid_argument);
}

TEST(Spmv, PermutationMatrixAppliesThePermutation) {
  // Lemma VIII.1's reduction: SpMV with a permutation matrix permutes x.
  const std::vector<index_t> perm{3, 0, 2, 1, 5, 4, 7, 6};
  const CooMatrix p = permutation_matrix(perm);
  const auto x = random_doubles(2, 8);
  Machine m;
  const SpmvResult r = spmv(m, p, x);
  for (size_t i = 0; i < perm.size(); ++i) {
    EXPECT_EQ(r.y[i], x[static_cast<size_t>(perm[i])]);
  }
}

TEST(Spmv, YGridHoldsTheResultWithClocks) {
  const CooMatrix a = banded_matrix(9, 1, 3);
  const auto x = random_doubles(4, 9);
  Machine m;
  const SpmvResult r = spmv(m, a, x);
  for (index_t i = 0; i < 9; ++i) {
    EXPECT_EQ(r.y_grid[i].value, r.y[static_cast<size_t>(i)]);
    EXPECT_GT(r.y_grid[i].clock.depth, 0);  // every row has entries here
  }
}

TEST(Spmv, CostShapeTheoremVIII2) {
  const index_t n = 1024;
  const CooMatrix a = random_uniform_matrix(n, n, 5);
  const auto x = random_doubles(6, static_cast<size_t>(n));
  Machine m;
  (void)spmv(m, a, x);
  const double md = static_cast<double>(a.nnz());
  EXPECT_LE(static_cast<double>(m.metrics().energy),
            1500.0 * std::pow(md, 1.5));
  EXPECT_LE(static_cast<double>(m.metrics().depth()),
            3.0 * std::pow(std::log2(md), 3));
  EXPECT_LE(static_cast<double>(m.metrics().distance()),
            600.0 * std::sqrt(md));
}

TEST(SpmvPram, DepthIsLogFactorWorseThanDirect) {
  // Section VIII: the PRAM simulation has O(log^4) depth vs the direct
  // algorithm's O(log^3) — the direct algorithm must win on depth.
  const index_t n = 256;
  const CooMatrix a = random_uniform_matrix(n, 2 * n, 9);
  const auto x = random_doubles(10, static_cast<size_t>(n));
  Machine md;
  (void)spmv(md, a, x);
  Machine mp;
  (void)spmv_pram(mp, a, x);
  EXPECT_LT(md.metrics().depth(), mp.metrics().depth());
  EXPECT_LT(md.metrics().distance(), mp.metrics().distance());
}

TEST(CooMatrix, SortedByRowAndValidity) {
  CooMatrix a(4, 4);
  a.add(3, 1, 1.0);
  a.add(0, 2, 2.0);
  a.add(3, 0, 3.0);
  const CooMatrix s = a.sorted_by_row();
  EXPECT_EQ(s.entries()[0].row, 0);
  EXPECT_EQ(s.entries()[1].row, 3);
  EXPECT_EQ(s.entries()[1].col, 0);
  EXPECT_TRUE(s.valid());
}

}  // namespace
}  // namespace scm
