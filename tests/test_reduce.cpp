// Tests of reduce / all-reduce (Section IV-B, Corollary IV.2).
#include "collectives/reduce.hpp"

#include "spatial/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace scm {
namespace {

TEST(Reduce, SumsAllElements) {
  Machine m;
  auto vals = random_ints(3, 256, -100, 100);
  std::vector<long long> v(vals.begin(), vals.end());
  auto a = GridArray<long long>::from_values_square({0, 0}, v);
  const Cell<long long> out = reduce(m, a, Plus{});
  EXPECT_EQ(out.value, std::accumulate(v.begin(), v.end(), 0LL));
}

TEST(Reduce, WorksWithMinMaxOperators) {
  Machine m;
  auto vals = random_ints(4, 100, -1000, 1000);
  std::vector<long long> v(vals.begin(), vals.end());
  auto a = GridArray<long long>::from_values_square({0, 0}, v,
                                                    Layout::kRowMajor);
  EXPECT_EQ(reduce(m, a, Min{}).value, *std::min_element(v.begin(), v.end()));
  EXPECT_EQ(reduce(m, a, Max{}).value, *std::max_element(v.begin(), v.end()));
}

TEST(Reduce, SingleElement) {
  Machine m;
  auto a = GridArray<int>::from_values_square({5, 5}, {99});
  EXPECT_EQ(reduce(m, a, Plus{}).value, 99);
  EXPECT_EQ(m.metrics().energy, 0);
}

TEST(Reduce, UnderfilledArray) {
  // 10 elements on a 4x4 region: element-free processors act as relays.
  Machine m;
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto a = GridArray<int>::from_values_square({0, 0}, v);
  EXPECT_EQ(reduce(m, a, Plus{}).value, 55);
}

TEST(Reduce, OffsetSubrange) {
  // A Z-order range [4, 8) of a 4x4 parent: reduce sees only that range.
  GridArray<int> part(Rect{0, 0, 4, 4}, Layout::kZOrder, 4, 4);
  for (index_t i = 0; i < 4; ++i) part[i].value = static_cast<int>(i + 1);
  Machine m;
  EXPECT_EQ(reduce(m, part, Plus{}).value, 10);
}

TEST(Reduce, SkewedShapes) {
  for (const Rect rect : {Rect{0, 0, 64, 2}, Rect{0, 0, 2, 64},
                          Rect{0, 0, 1, 100}, Rect{0, 0, 100, 1}}) {
    Machine m;
    GridArray<int> a(rect, Layout::kRowMajor, rect.size());
    for (index_t i = 0; i < a.size(); ++i) a[i].value = 1;
    EXPECT_EQ(reduce(m, a, Plus{}).value, rect.size()) << rect.str();
  }
}

TEST(Reduce, EnergyLinearOnSquares) {
  auto energy_per_element = [](index_t side) {
    Machine m;
    GridArray<int> a(Rect{0, 0, side, side}, Layout::kRowMajor, side * side);
    (void)reduce(m, a, Plus{});
    return static_cast<double>(m.metrics().energy) /
           static_cast<double>(side * side);
  };
  EXPECT_NEAR(energy_per_element(16), energy_per_element(64), 0.5);
}

TEST(Reduce, DepthLogarithmic) {
  Machine m;
  GridArray<int> a(Rect{0, 0, 64, 64}, Layout::kRowMajor, 4096);
  (void)reduce(m, a, Plus{});
  EXPECT_LE(m.metrics().depth(), 3 * 12 + 3);
}

TEST(AllReduce, EveryProcessorGetsTheTotal) {
  Machine m;
  auto vals = random_ints(5, 64, 0, 9);
  std::vector<long long> v(vals.begin(), vals.end());
  auto a = GridArray<long long>::from_values_square({0, 0}, v);
  GridArray<long long> out = all_reduce(m, a, Plus{});
  const long long want = std::accumulate(v.begin(), v.end(), 0LL);
  ASSERT_EQ(out.size(), a.region().size());
  for (index_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i].value, want);
}

TEST(AllReduce, DepthIsTwiceTreeHeightPlusConstant) {
  Machine m;
  GridArray<int> a(Rect{0, 0, 32, 32}, Layout::kRowMajor, 1024);
  (void)all_reduce(m, a, Plus{});
  EXPECT_LE(m.metrics().depth(), 2 * (3 * 10 + 3));
}

}  // namespace
}  // namespace scm
