// Tests of the phase-tree profiler and critical-path witness tracer.
//
// Two oracle strategies:
//   * hand-built fixtures whose every message is scripted, so tree shape,
//     self counters, histograms, and witness chains are checked against
//     values computed by hand;
//   * reference recomputation on real algorithm runs (Z-order scan,
//     bitonic sort): the profiler's totals and rolled-up tree must agree
//     with the Machine's own Metrics, and the witness chains must realize
//     the depth / distance identities hop-for-hop.
#include "spatial/profile.hpp"

#include "collectives/scan.hpp"
#include "sort/bitonic.hpp"
#include "spatial/machine.hpp"
#include "spatial/rng.hpp"
#include "util/json.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <numeric>
#include <string>
#include <vector>

namespace scm {
namespace {

/// Finds the child of `parent` whose phase name is `name`; fails the test
/// and returns nullptr when absent.
const Profiler::PhaseNode* child_named(const Profiler& p,
                                       const Profiler::PhaseNode& parent,
                                       const std::string& name) {
  for (const std::uint32_t c : parent.children) {
    const Profiler::PhaseNode& node = p.nodes()[c];
    if (PhaseRegistry::instance().name(node.phase) == name) return &node;
  }
  ADD_FAILURE() << "no child named " << name;
  return nullptr;
}

/// Every hop's arrival must equal payload.after_hop(distance), and along
/// the chain each hop's payload component must carry the previous hop's
/// arrival component — the definition of a dependent chain.
void expect_valid_chain(const Profiler::WitnessChain& chain,
                        bool by_depth) {
  for (std::size_t i = 0; i < chain.hops.size(); ++i) {
    const Profiler::WitnessHop& h = chain.hops[i];
    EXPECT_EQ(h.arrival, h.payload.after_hop(h.distance));
    EXPECT_EQ(h.distance, manhattan(h.from, h.to));
    const index_t carried =
        by_depth ? h.payload.depth : h.payload.distance;
    if (i == 0) {
      EXPECT_EQ(carried, by_depth ? chain.start_clock.depth
                                  : chain.start_clock.distance);
    } else {
      const Profiler::WitnessHop& prev = chain.hops[i - 1];
      EXPECT_EQ(carried,
                by_depth ? prev.arrival.depth : prev.arrival.distance);
    }
  }
}

TEST(ProfilerTree, HandBuiltFixtureReproducedMessageByMessage) {
  Machine m;
  Profiler p(Profiler::Options{.witness = true, .load_map = true});
  m.set_trace(&p);

  Clock c{};
  {
    Machine::PhaseScope a(m, "a");
    c = m.send({0, 0}, {0, 2}, c);  // distance 2
    m.op(3);
    {
      Machine::PhaseScope b(m, "b");
      c = m.send({0, 2}, {1, 2}, c);  // distance 1
    }
  }
  {
    Machine::PhaseScope cphase(m, "c");
    c = m.send({1, 2}, {1, 5}, c);  // distance 3
  }

  // Totals re-derived from the event stream match the machine.
  EXPECT_EQ(p.totals(), m.metrics());
  EXPECT_EQ(p.totals().energy, 6);
  EXPECT_EQ(p.totals().messages, 3);
  EXPECT_EQ(p.totals().local_ops, 3);
  EXPECT_EQ(p.totals().depth(), 3);
  EXPECT_EQ(p.totals().distance(), 6);

  // Tree shape: root -> {a -> {b}, c}, four nodes in all.
  ASSERT_EQ(p.nodes().size(), 4u);
  const Profiler::PhaseNode& root = p.nodes()[0];
  ASSERT_EQ(root.children.size(), 2u);
  const Profiler::PhaseNode* a = child_named(p, root, "a");
  const Profiler::PhaseNode* cn = child_named(p, root, "c");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(cn, nullptr);
  ASSERT_EQ(a->children.size(), 1u);
  const Profiler::PhaseNode* b = child_named(p, *a, "b");
  ASSERT_NE(b, nullptr);

  // Self counters exclude descendants.
  EXPECT_EQ(a->self_energy, 2);
  EXPECT_EQ(a->self_messages, 1);
  EXPECT_EQ(a->self_ops, 3);
  EXPECT_EQ(b->self_energy, 1);
  EXPECT_EQ(b->self_messages, 1);
  EXPECT_EQ(cn->self_energy, 3);
  EXPECT_EQ(root.self_messages, 0);

  // Distance histograms: a saw d=2 (bucket 1), b d=1 (bucket 0),
  // c d=3 (bucket 1).
  ASSERT_EQ(a->hist.buckets.size(), 2u);
  EXPECT_EQ(a->hist.buckets[1], 1);
  EXPECT_EQ(a->hist.max_distance, 2);
  ASSERT_EQ(b->hist.buckets.size(), 1u);
  EXPECT_EQ(b->hist.buckets[0], 1);
  EXPECT_EQ(cn->hist.max_distance, 3);

  // The witness reconstructs the scripted chain exactly: all three sends
  // are on both critical paths.
  const auto path = p.critical_path();
  ASSERT_TRUE(path.enabled);
  ASSERT_TRUE(path.depth_chain.complete);
  ASSERT_EQ(path.depth_chain.hop_count(), 3);
  EXPECT_EQ(path.depth_chain.hops[0].from, (Coord{0, 0}));
  EXPECT_EQ(path.depth_chain.hops[1].to, (Coord{1, 2}));
  EXPECT_EQ(path.depth_chain.hops[2].to, (Coord{1, 5}));
  ASSERT_EQ(path.depth_chain.hops[0].phases.size(), 1u);
  EXPECT_EQ(path.depth_chain.hops[0].phases[0], "a");
  ASSERT_EQ(path.depth_chain.hops[1].phases.size(), 2u);
  EXPECT_EQ(path.depth_chain.hops[1].phases[1], "b");
  EXPECT_EQ(path.depth_chain.hops[2].phases[0], "c");
  EXPECT_EQ(path.distance_chain.total_distance(), 6);
  expect_valid_chain(path.depth_chain, /*by_depth=*/true);
  expect_valid_chain(path.distance_chain, /*by_depth=*/false);

  // The internal congestion map saw every message.
  ASSERT_NE(p.load_map(), nullptr);
  EXPECT_EQ(p.load_map()->messages(), 3);

  m.set_trace(nullptr);
}

TEST(ProfilerTree, CallPathsAreKeptApartUnlikeFlatPhaseTotals) {
  // Machine::phases() folds every "merge" into one entry; the tree keeps
  // "sort/merge" and a top-level "merge" as distinct nodes.
  Machine m;
  Profiler p;
  m.set_trace(&p);
  {
    Machine::PhaseScope sort(m, "sort");
    Machine::PhaseScope merge(m, "merge");
    m.send({0, 0}, {0, 1}, Clock{});
  }
  {
    Machine::PhaseScope merge(m, "merge");
    m.send({0, 0}, {0, 4}, Clock{});
  }
  const Profiler::PhaseNode& root = p.nodes()[0];
  ASSERT_EQ(root.children.size(), 2u);
  const Profiler::PhaseNode* sort = child_named(p, root, "sort");
  const Profiler::PhaseNode* top_merge = child_named(p, root, "merge");
  ASSERT_NE(sort, nullptr);
  ASSERT_NE(top_merge, nullptr);
  const Profiler::PhaseNode* nested = child_named(p, *sort, "merge");
  ASSERT_NE(nested, nullptr);
  EXPECT_EQ(nested->self_energy, 1);
  EXPECT_EQ(top_merge->self_energy, 4);
  m.set_trace(nullptr);
}

TEST(ProfilerTree, ReferenceOracleOnZOrderScan) {
  Machine m;
  Profiler p;
  m.set_trace(&p);
  const auto vals = random_ints(/*seed=*/5, 256, 0, 99);
  const std::vector<long long> v(vals.begin(), vals.end());
  auto a = GridArray<long long>::from_values_square({0, 0}, v);
  (void)scan(m, a, Plus{});

  // The profiler re-derives the machine's Metrics from the event stream.
  EXPECT_EQ(p.totals(), m.metrics());

  // The tree's self counters partition the totals exactly.
  index_t energy = 0;
  index_t messages = 0;
  index_t ops = 0;
  for (const Profiler::PhaseNode& node : p.nodes()) {
    energy += node.self_energy;
    messages += node.self_messages;
    ops += node.self_ops;
    EXPECT_EQ(node.hist.count, node.self_messages);
  }
  EXPECT_EQ(energy, m.metrics().energy);
  EXPECT_EQ(messages, m.metrics().messages);
  EXPECT_EQ(ops, m.metrics().local_ops);
  m.set_trace(nullptr);
}

TEST(ProfilerTree, ResetClearsDataButKeepsOpenScopes) {
  Machine m;
  Profiler p(Profiler::Options{.witness = true});
  m.set_trace(&p);
  m.begin_phase("outer");
  m.send({0, 0}, {0, 7}, Clock{});
  m.reset();
  EXPECT_EQ(p.totals().energy, 0);
  EXPECT_EQ(p.ticks(), 0u);
  EXPECT_EQ(p.critical_path().depth_chain.hop_count(), 0);

  // The surviving "outer" scope keeps attributing after the reset.
  m.send({0, 0}, {0, 2}, Clock{});
  const Profiler::PhaseNode* outer =
      child_named(p, p.nodes()[0], "outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->self_energy, 2);
  m.end_phase();
  m.set_trace(nullptr);
}

TEST(Witness, DisabledByDefault) {
  Profiler p;
  EXPECT_FALSE(p.critical_path().enabled);
}

TEST(Witness, RealizesDepthAndDistanceOnZOrderScan) {
  Machine m;
  Profiler p(Profiler::Options{.witness = true});
  m.set_trace(&p);
  const auto vals = random_ints(/*seed=*/7, 1024, 0, 99);
  const std::vector<long long> v(vals.begin(), vals.end());
  auto a = GridArray<long long>::from_values_square({0, 0}, v);
  (void)scan(m, a, Plus{});

  const auto path = p.critical_path();
  ASSERT_TRUE(path.enabled);
  ASSERT_TRUE(path.depth_chain.complete);
  ASSERT_TRUE(path.distance_chain.complete);
  EXPECT_EQ(path.depth_chain.hop_count() + path.depth_chain.start_clock.depth,
            m.metrics().depth());
  EXPECT_EQ(path.distance_chain.total_distance() +
                path.distance_chain.start_clock.distance,
            m.metrics().distance());
  expect_valid_chain(path.depth_chain, /*by_depth=*/true);
  expect_valid_chain(path.distance_chain, /*by_depth=*/false);
  m.set_trace(nullptr);
}

TEST(Witness, RealizesDepthAndDistanceOnBitonicSort) {
  Machine m;
  Profiler p(Profiler::Options{.witness = true});
  m.set_trace(&p);
  const auto v = random_doubles(/*seed=*/11, 256);
  auto a = GridArray<double>::from_values_square({0, 0}, v,
                                                 Layout::kRowMajor);
  bitonic_sort(m, a, std::less<double>{});

  const auto path = p.critical_path();
  ASSERT_TRUE(path.enabled);
  ASSERT_TRUE(path.depth_chain.complete);
  ASSERT_TRUE(path.distance_chain.complete);
  EXPECT_EQ(path.depth_chain.hop_count() + path.depth_chain.start_clock.depth,
            m.metrics().depth());
  EXPECT_EQ(path.distance_chain.total_distance() +
                path.distance_chain.start_clock.distance,
            m.metrics().distance());
  expect_valid_chain(path.depth_chain, /*by_depth=*/true);
  expect_valid_chain(path.distance_chain, /*by_depth=*/false);
  // Every hop is attributed to at least one phase: bitonic_sort wraps all
  // of its traffic in scopes.
  for (const auto& hop : path.depth_chain.hops) {
    EXPECT_FALSE(hop.phases.empty());
  }
  m.set_trace(nullptr);
}

TEST(Witness, BirthClockStartsTheChain) {
  // An input born with non-zero history anchors the chain: the identities
  // hold relative to the recorded start clock.
  Machine m;
  Profiler p(Profiler::Options{.witness = true});
  m.set_trace(&p);
  m.birth({0, 0}, Clock{2, 4});
  m.send({0, 0}, {0, 1}, Clock{2, 4});
  const auto path = p.critical_path();
  ASSERT_TRUE(path.depth_chain.complete);
  EXPECT_EQ(path.depth_chain.start_clock, (Clock{2, 4}));
  EXPECT_EQ(path.depth_chain.hop_count(), 1);
  EXPECT_EQ(path.depth_chain.hop_count() + path.depth_chain.start_clock.depth,
            m.metrics().depth());
  ASSERT_TRUE(path.distance_chain.complete);
  EXPECT_EQ(path.distance_chain.total_distance() +
                path.distance_chain.start_clock.distance,
            m.metrics().distance());
  m.set_trace(nullptr);
}

TEST(Witness, UnwitnessedHistoryIsReportedIncomplete) {
  // A payload clock with no recorded origin (profiler attached mid-run)
  // must yield complete == false, never a silently wrong chain.
  Machine m;
  Profiler p(Profiler::Options{.witness = true});
  m.set_trace(&p);
  m.send({0, 0}, {0, 3}, Clock{3, 5});
  const auto path = p.critical_path();
  ASSERT_TRUE(path.enabled);
  EXPECT_FALSE(path.depth_chain.complete);
  EXPECT_FALSE(path.distance_chain.complete);
  EXPECT_EQ(path.depth_chain.hop_count(), 1);  // the observed suffix
  m.set_trace(nullptr);
}

TEST(Histogram, Log2BucketsAndPercentile) {
  DistanceHistogram h;
  EXPECT_EQ(h.percentile_lower_bound(50.0), 0);  // empty
  h.add(1);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(8);
  ASSERT_EQ(h.buckets.size(), 4u);
  EXPECT_EQ(h.buckets[0], 2);  // d = 1
  EXPECT_EQ(h.buckets[1], 2);  // d in [2, 3]
  EXPECT_EQ(h.buckets[2], 0);
  EXPECT_EQ(h.buckets[3], 1);  // d = 8
  EXPECT_EQ(h.count, 5);
  EXPECT_EQ(h.max_distance, 8);
  EXPECT_EQ(h.percentile_lower_bound(40.0), 1);   // rank 2 -> bucket 0
  EXPECT_EQ(h.percentile_lower_bound(50.0), 2);   // rank 3 -> bucket 1
  EXPECT_EQ(h.percentile_lower_bound(100.0), 8);  // rank 5 -> bucket 3
}

TEST(Export, ChromeTraceParsesAndScopesBalance) {
  Machine m;
  Profiler p;
  m.set_trace(&p);
  {
    Machine::PhaseScope sort(m, "sort");
    m.send({0, 0}, {0, 1}, Clock{});
    Machine::PhaseScope merge(m, "merge");
    m.send({0, 1}, {0, 2}, Clock{});
  }
  {
    // Left open on purpose: the exporter must close it itself.
    m.begin_phase("tail");
    m.send({0, 0}, {2, 0}, Clock{});
  }
  const auto doc = util::json::parse(p.chrome_trace_json());
  ASSERT_TRUE(doc.has_value());
  const util::json::Value* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  int begins = 0;
  int ends = 0;
  std::uint64_t last_ts = 0;
  for (const util::json::Value& e : events->array) {
    const util::json::Value* ph = e.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->string == "M") continue;  // metadata
    ASSERT_NE(e.find("name"), nullptr);
    const util::json::Value* ts = e.find("ts");
    ASSERT_NE(ts, nullptr);
    EXPECT_GE(static_cast<std::uint64_t>(ts->number), last_ts);
    last_ts = static_cast<std::uint64_t>(ts->number);
    if (ph->string == "B") ++begins;
    if (ph->string == "E") ++ends;
  }
  EXPECT_EQ(begins, 3);  // sort, merge, tail
  EXPECT_EQ(begins, ends);
  m.end_phase();
  m.set_trace(nullptr);
}

TEST(Export, JsonReportHasSchemaTotalsTreeWitnessAndLoad) {
  Machine m;
  Profiler p(Profiler::Options{.witness = true, .load_map = true});
  m.set_trace(&p);
  const auto vals = random_ints(/*seed=*/13, 64, 0, 9);
  const std::vector<long long> v(vals.begin(), vals.end());
  auto a = GridArray<long long>::from_values_square({0, 0}, v);
  (void)scan(m, a, Plus{});

  const auto doc = util::json::parse(p.json_report());
  ASSERT_TRUE(doc.has_value()) << "report is not valid JSON";
  EXPECT_EQ(doc->find("schema")->string, "scm-run-report");
  EXPECT_EQ(static_cast<int>(doc->find("schema_version")->number),
            Profiler::kSchemaVersion);

  const util::json::Value* totals = doc->find("totals");
  ASSERT_NE(totals, nullptr);
  EXPECT_EQ(static_cast<index_t>(totals->find("energy")->number),
            m.metrics().energy);
  EXPECT_EQ(static_cast<index_t>(totals->find("depth")->number),
            m.metrics().depth());

  const util::json::Value* tree = doc->find("phase_tree");
  ASSERT_NE(tree, nullptr);
  EXPECT_EQ(tree->find("name")->string, "<top>");
  ASSERT_NE(tree->find("children"), nullptr);
  EXPECT_FALSE(tree->find("children")->array.empty());
  // Root total == machine energy (the rollup invariant, via the report).
  EXPECT_EQ(
      static_cast<index_t>(tree->find("total")->find("energy")->number),
      m.metrics().energy);

  const util::json::Value* cp = doc->find("critical_path");
  ASSERT_NE(cp, nullptr);
  EXPECT_TRUE(cp->find("enabled")->boolean);
  const util::json::Value* dc = cp->find("depth_chain");
  ASSERT_NE(dc, nullptr);
  EXPECT_EQ(static_cast<index_t>(dc->find("hops")->number),
            m.metrics().depth());
  EXPECT_EQ(dc->find("messages")->array.size(),
            static_cast<std::size_t>(m.metrics().depth()));
  const util::json::Value* xc = cp->find("distance_chain");
  ASSERT_NE(xc, nullptr);
  EXPECT_EQ(static_cast<index_t>(xc->find("total_distance")->number),
            m.metrics().distance());

  const util::json::Value* load = doc->find("load");
  ASSERT_NE(load, nullptr);
  EXPECT_TRUE(load->find("enabled")->boolean);
  EXPECT_LE(load->find("p50")->number, load->find("p95")->number);
  EXPECT_LE(load->find("p95")->number, load->find("p99")->number);
  EXPECT_LE(load->find("p99")->number, load->find("max_load")->number);
  m.set_trace(nullptr);
}

TEST(Export, AsciiReportShowsTreeAndTotals) {
  Machine m;
  Profiler p;
  m.set_trace(&p);
  {
    Machine::PhaseScope outer(m, "outer");
    Machine::PhaseScope inner(m, "inner");
    m.send({0, 0}, {0, 5}, Clock{});
  }
  const std::string report = p.ascii_report();
  EXPECT_NE(report.find("<top>"), std::string::npos);
  EXPECT_NE(report.find("outer"), std::string::npos);
  EXPECT_NE(report.find("inner"), std::string::npos);
  EXPECT_NE(report.find("energy=5"), std::string::npos);
  // inner is indented deeper than outer.
  EXPECT_LT(report.find("outer"), report.find("inner"));
  m.set_trace(nullptr);
}

}  // namespace
}  // namespace scm
