// Test entry point: every test runs with a ConformanceChecker AND an
// IndependenceChecker attached (through a FanoutSink) as the process-global
// trace sink, so all algorithm modules are exercised under model
// enforcement and every bulk round loop is mechanically proven race-free.
// A test that produces any conformance or batch-independence violation
// fails with the full report; setting the SCM_STRICT_MODEL environment
// variable (no rebuild needed) upgrades that to an abort at the offending
// send, with the message backtrace on stderr — the one-env-var local
// reproduction of the CI strict-model jobs. Adversarial fixtures that
// violate the model on purpose opt out with ScopedGlobalTraceSuspension.
#include "spatial/independence.hpp"
#include "spatial/machine.hpp"
#include "spatial/validate.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>

namespace {

class ConformanceListener : public ::testing::EmptyTestEventListener {
  void OnTestStart(const ::testing::TestInfo& /*info*/) override {
    checker_ = std::make_unique<scm::ConformanceChecker>();
    independence_ = std::make_unique<scm::IndependenceChecker>();
    fanout_ = std::make_unique<scm::FanoutSink>(
        std::vector<scm::TraceSink*>{checker_.get(), independence_.get()});
    scm::Machine::set_global_trace(fanout_.get());
  }

  void OnTestEnd(const ::testing::TestInfo& info) override {
    scm::Machine::set_global_trace(nullptr);
    if (checker_ == nullptr) return;
    checker_->finish();
    const scm::ConformanceReport& report = checker_->report();
    if (!report.ok()) {
      ADD_FAILURE() << "Spatial Computer Model conformance violations:\n"
                    << report.str();
    }
    const scm::IndependenceReport& indep = independence_->report();
    if (!indep.ok()) {
      ADD_FAILURE() << "Batch independence violations:\n" << indep.str();
    }
    // SCM_CONFORMANCE_REPORT=1 prints one summary line per test (used to
    // calibrate the default live-word cap against the observed peak, and
    // to eyeball per-test batch footprints).
    if (std::getenv("SCM_CONFORMANCE_REPORT") != nullptr) {
      std::fprintf(stderr, "[conformance] %s.%s: %s", info.test_suite_name(),
                   info.name(), report.str().c_str());
      std::fprintf(stderr, "[independence] %s.%s: %s",
                   info.test_suite_name(), info.name(), indep.str().c_str());
    }
    fanout_.reset();
    independence_.reset();
    checker_.reset();
  }

  std::unique_ptr<scm::ConformanceChecker> checker_;
  std::unique_ptr<scm::IndependenceChecker> independence_;
  std::unique_ptr<scm::FanoutSink> fanout_;
};

}  // namespace

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  ::testing::UnitTest::GetInstance()->listeners().Append(
      new ConformanceListener);
  return RUN_ALL_TESTS();
}
