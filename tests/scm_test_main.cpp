// Test entry point: every test runs with a ConformanceChecker attached as
// the process-global trace sink, so all algorithm modules are exercised
// under model enforcement. A test that produces any conformance violation
// fails with the full report; setting the SCM_STRICT_MODEL environment
// variable (no rebuild needed) upgrades that to an abort at the offending
// send, with the message backtrace on stderr — the one-env-var local
// reproduction of the CI strict-model job. Adversarial fixtures that
// violate the model on purpose opt out with ScopedGlobalTraceSuspension.
#include "spatial/machine.hpp"
#include "spatial/validate.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>

namespace {

class ConformanceListener : public ::testing::EmptyTestEventListener {
  void OnTestStart(const ::testing::TestInfo& /*info*/) override {
    checker_ = std::make_unique<scm::ConformanceChecker>();
    scm::Machine::set_global_trace(checker_.get());
  }

  void OnTestEnd(const ::testing::TestInfo& info) override {
    scm::Machine::set_global_trace(nullptr);
    if (checker_ == nullptr) return;
    checker_->finish();
    const scm::ConformanceReport& report = checker_->report();
    if (!report.ok()) {
      ADD_FAILURE() << "Spatial Computer Model conformance violations:\n"
                    << report.str();
    }
    // SCM_CONFORMANCE_REPORT=1 prints one summary line per test (used to
    // calibrate the default live-word cap against the observed peak).
    if (std::getenv("SCM_CONFORMANCE_REPORT") != nullptr) {
      std::fprintf(stderr, "[conformance] %s.%s: %s", info.test_suite_name(),
                   info.name(), report.str().c_str());
    }
    checker_.reset();
  }

  std::unique_ptr<scm::ConformanceChecker> checker_;
};

}  // namespace

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  ::testing::UnitTest::GetInstance()->listeners().Append(
      new ConformanceListener);
  return RUN_ALL_TESTS();
}
