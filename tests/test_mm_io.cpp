// Tests of Matrix Market I/O.
#include "spmv/mm_io.hpp"

#include "spmv/generators.hpp"
#include "spatial/rng.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace scm {
namespace {

TEST(MatrixMarket, RoundTripsThroughStreams) {
  const CooMatrix a = random_uniform_matrix(20, 60, 1);
  std::stringstream ss;
  write_matrix_market(ss, a);
  const CooMatrix b = read_matrix_market(ss);
  EXPECT_EQ(b.n_rows(), a.n_rows());
  EXPECT_EQ(b.n_cols(), a.n_cols());
  ASSERT_EQ(b.nnz(), a.nnz());
  EXPECT_EQ(b.entries(), a.entries());
}

TEST(MatrixMarket, ParsesGeneralRealCoordinate) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment line\n"
      "3 4 2\n"
      "1 1 2.5\n"
      "3 4 -1\n");
  const CooMatrix a = read_matrix_market(in);
  EXPECT_EQ(a.n_rows(), 3);
  EXPECT_EQ(a.n_cols(), 4);
  ASSERT_EQ(a.nnz(), 2);
  EXPECT_EQ(a.entries()[0], (Triple{0, 0, 2.5}));
  EXPECT_EQ(a.entries()[1], (Triple{2, 3, -1.0}));
}

TEST(MatrixMarket, ExpandsSymmetricMatrices) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 2\n"
      "2 1 5\n"
      "3 3 7\n");
  const CooMatrix a = read_matrix_market(in);
  ASSERT_EQ(a.nnz(), 3);  // (1,0), (0,1) mirrored, (2,2) diagonal once
  EXPECT_EQ(a.entries()[0], (Triple{1, 0, 5.0}));
  EXPECT_EQ(a.entries()[1], (Triple{0, 1, 5.0}));
  EXPECT_EQ(a.entries()[2], (Triple{2, 2, 7.0}));
}

TEST(MatrixMarket, PatternEntriesDefaultToOne) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 2\n"
      "2 1\n");
  const CooMatrix a = read_matrix_market(in);
  ASSERT_EQ(a.nnz(), 2);
  EXPECT_EQ(a.entries()[0].value, 1.0);
}

TEST(MatrixMarket, RejectsMalformedInputs) {
  {
    std::istringstream in("not a banner\n1 1 0\n");
    EXPECT_THROW((void)read_matrix_market(in), std::runtime_error);
  }
  {
    std::istringstream in("%%MatrixMarket matrix array real general\n");
    EXPECT_THROW((void)read_matrix_market(in), std::runtime_error);
  }
  {
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 1\n"
        "3 1 1.0\n");  // out of range
    EXPECT_THROW((void)read_matrix_market(in), std::runtime_error);
  }
  {
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 2\n"
        "1 1 1.0\n");  // truncated
    EXPECT_THROW((void)read_matrix_market(in), std::runtime_error);
  }
}

TEST(MatrixMarket, FileRoundTrip) {
  const CooMatrix a = banded_matrix(10, 1, 2);
  const std::string path = ::testing::TempDir() + "/scm_roundtrip.mtx";
  write_matrix_market_file(path, a);
  const CooMatrix b = read_matrix_market_file(path);
  EXPECT_EQ(b.entries(), a.entries());
  EXPECT_THROW((void)read_matrix_market_file("/nonexistent/x.mtx"),
               std::runtime_error);
}

TEST(MatrixMarket, ReadMatrixMultipliesLikeTheOriginal) {
  const CooMatrix a = power_law_matrix(16, 8, 1.0, 3);
  std::stringstream ss;
  write_matrix_market(ss, a);
  const CooMatrix b = read_matrix_market(ss);
  const auto x = random_doubles(4, 16);
  EXPECT_EQ(a.multiply_reference(x), b.multiply_reference(x));
}

}  // namespace
}  // namespace scm
