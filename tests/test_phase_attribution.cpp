// Equivalence tests for the interned-PhaseId cost-attribution engine.
//
// The Machine attributes every charged event to each *distinct* active
// phase name exactly once (a phase stacked at every recursion level is not
// double-counted). The engine maintains that set incrementally at phase
// transitions; these tests pin its semantics against an executable
// reference: the original per-event formulation that rescans the name
// stack for first occurrences. Both are driven through identical event
// sequences — nested, repeated, reset-spanning, and randomized — and must
// produce identical per-phase Metrics.
#include "spatial/machine.hpp"
#include "spatial/phase.hpp"

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <string>
#include <vector>

namespace scm {
namespace {

// The pre-interning attribution semantics, restated directly from the
// model: an event is charged to phase_stack[i] iff no earlier stack entry
// carries the same name. O(depth^2) per event — fine as a test oracle.
class ReferenceAttribution {
 public:
  void begin(const std::string& name) { stack_.push_back(name); }

  void end() {
    if (!stack_.empty()) stack_.pop_back();
  }

  void charge(index_t energy, index_t messages) {
    for (std::size_t i = 0; i < stack_.size(); ++i) {
      if (first_occurrence(i)) {
        Metrics& pm = totals_[stack_[i]];
        pm.energy += energy;
        pm.messages += messages;
      }
    }
  }

  void op(index_t n) {
    for (std::size_t i = 0; i < stack_.size(); ++i) {
      if (first_occurrence(i)) totals_[stack_[i]].local_ops += n;
    }
  }

  void observe(Clock c) {
    for (std::size_t i = 0; i < stack_.size(); ++i) {
      if (first_occurrence(i)) {
        Metrics& pm = totals_[stack_[i]];
        pm.max_clock = Clock::join(pm.max_clock, c);
      }
    }
  }

  // Mirrors Machine::reset: records clear, the stack survives.
  void reset() { totals_.clear(); }

  [[nodiscard]] const std::map<std::string, Metrics>& phases() const {
    return totals_;
  }

 private:
  [[nodiscard]] bool first_occurrence(std::size_t i) const {
    for (std::size_t j = 0; j < i; ++j) {
      if (stack_[j] == stack_[i]) return false;
    }
    return true;
  }

  std::vector<std::string> stack_;
  std::map<std::string, Metrics> totals_;
};

// Drives a Machine and the reference through the same event stream. Sends
// use fresh unit-distance processor pairs so the harness-attached
// conformance checker sees a model-clean trace (one arrival per cell).
class Harness {
 public:
  void begin(const std::string& name) {
    machine.begin_phase(name);
    ref.begin(name);
  }

  void end() {
    machine.end_phase();
    ref.end();
  }

  void send() {
    const Clock arrival =
        machine.send({0, next_col_}, {1, next_col_}, Clock{});
    ++next_col_;
    // Machine::send = charge(distance, 1) + observe(arrival).
    ref.charge(1, 1);
    ref.observe(arrival);
  }

  void op(index_t n) {
    machine.op(n);
    ref.op(n);
  }

  void observe(Clock c) {
    machine.observe(c);
    ref.observe(c);
  }

  void reset() {
    machine.reset();
    ref.reset();
  }

  void expect_equivalent(const std::string& label) const {
    EXPECT_EQ(machine.phases(), ref.phases()) << label;
  }

  Machine machine;
  ReferenceAttribution ref;

 private:
  index_t next_col_{0};
};

TEST(PhaseAttribution, NestedScopesMatchReference) {
  Harness h;
  h.begin("sort");
  h.send();
  h.begin("merge");
  h.send();
  h.op(3);
  h.begin("merge/base");
  h.send();
  h.end();
  h.send();
  h.end();
  h.send();
  h.end();
  h.expect_equivalent("nested");
  EXPECT_EQ(h.machine.phase("sort").energy, 5);
  EXPECT_EQ(h.machine.phase("merge").energy, 3);
  EXPECT_EQ(h.machine.phase("merge/base").energy, 1);
}

TEST(PhaseAttribution, RepeatedRecursiveNamesCountOnce) {
  Harness h;
  // mergesort2d-style recursion: the same name at every level, with a
  // distinct step name interleaved, 16 levels deep.
  const int depth = 16;
  for (int d = 0; d < depth; ++d) {
    h.begin("mergesort2d");
    h.send();
    h.begin("merge/step");
    h.send();
  }
  h.op(7);
  for (int d = 0; d < depth; ++d) {
    h.end();
    h.end();
  }
  h.expect_equivalent("repeated");
  // Every one of the 2*depth sends lies inside both distinct names.
  EXPECT_EQ(h.machine.phase("mergesort2d").energy, 2 * depth);
  EXPECT_EQ(h.machine.phase("merge/step").energy, 2 * depth - 1);
  EXPECT_EQ(h.machine.phase("mergesort2d").local_ops, 7);
}

TEST(PhaseAttribution, ResetSpanningScopeKeepsAttributing) {
  Harness h;
  h.begin("outer");
  h.send();
  h.send();
  h.reset();
  EXPECT_TRUE(h.machine.phases().empty());
  // The scope survived the reset: post-reset charges attribute to it.
  h.send();
  h.expect_equivalent("post-reset");
  EXPECT_EQ(h.machine.phase("outer").energy, 1);
  EXPECT_EQ(h.machine.phase("outer").messages, 1);
  h.end();
  h.expect_equivalent("after-close");
}

TEST(PhaseAttribution, RandomizedSequencesMatchReference) {
  const std::vector<std::string> names = {"sort", "merge", "merge/step",
                                          "scan", "base"};
  for (std::uint64_t seed : {1u, 7u, 42u}) {
    Harness h;
    std::mt19937_64 rng(seed);
    int depth = 0;
    for (int step = 0; step < 2000; ++step) {
      switch (rng() % 10) {
        case 0:
        case 1:
        case 2:
          if (depth < 40) {
            h.begin(names[rng() % names.size()]);
            ++depth;
          }
          break;
        case 3:
        case 4:
          if (depth > 0) {
            h.end();
            --depth;
          }
          break;
        case 5:
        case 6:
        case 7:
          h.send();
          break;
        case 8:
          h.op(static_cast<index_t>(rng() % 5));
          break;
        default:
          h.observe(Clock{static_cast<index_t>(rng() % 8),
                          static_cast<index_t>(rng() % 64)});
          break;
      }
      if (step % 500 == 499) h.expect_equivalent("mid-run");
    }
    while (depth > 0) {
      h.end();
      --depth;
    }
    h.expect_equivalent("seed " + std::to_string(seed));
  }
}

TEST(PhaseAttribution, PhaseReferenceIsStableAcrossGrowth) {
  Machine m;
  {
    Machine::PhaseScope scope(m, "stable");
    m.send({0, 0}, {0, 1}, Clock{});
  }
  const Metrics& record = m.phase("stable");
  EXPECT_EQ(record.energy, 1);
  // Interning many new names grows the id-indexed tables; the reference
  // must stay valid (per-phase records never move) and keep tracking.
  for (int i = 0; i < 200; ++i) {
    Machine::PhaseScope scope(m, "growth" + std::to_string(i));
    m.send({1, i}, {2, i}, Clock{});
  }
  {
    Machine::PhaseScope scope(m, "stable");
    m.send({0, 2}, {0, 3}, Clock{});
  }
  EXPECT_EQ(record.energy, 2);
}

TEST(PhaseAttribution, InternedIdsRoundTripAndMatchNameForm) {
  PhaseRegistry& registry = PhaseRegistry::instance();
  const PhaseId id = registry.intern("interned_phase_test");
  EXPECT_EQ(registry.intern("interned_phase_test"), id);
  EXPECT_EQ(registry.find("interned_phase_test"), id);
  EXPECT_EQ(registry.name(id), "interned_phase_test");
  EXPECT_EQ(registry.find("never_interned_phase_name"), kNoPhase);

  // The PhaseId scope form attributes identically to the name form.
  Machine by_name;
  Machine by_id;
  {
    Machine::PhaseScope scope(by_name, "interned_phase_test");
    by_name.send({0, 0}, {0, 2}, Clock{});
  }
  {
    Machine::PhaseScope scope(by_id, id);
    by_id.send({0, 0}, {0, 2}, Clock{});
  }
  EXPECT_EQ(by_name.phases(), by_id.phases());
  EXPECT_EQ(by_id.phase("interned_phase_test").energy, 2);
}

TEST(PhaseAttribution, MachinesAttributeIndependently) {
  // The registry is process-global but records are per-machine.
  Machine a;
  Machine b;
  {
    Machine::PhaseScope sa(a, "shared_name");
    a.send({0, 0}, {0, 1}, Clock{});
    Machine::PhaseScope sb(b, "shared_name");
    b.send({0, 0}, {0, 3}, Clock{});
  }
  EXPECT_EQ(a.phase("shared_name").energy, 1);
  EXPECT_EQ(b.phase("shared_name").energy, 3);
}

}  // namespace
}  // namespace scm
