// Model-level invariants that must hold for every algorithm in the
// library:
//   * energy >= messages        (every charged message travels >= 1),
//   * energy >= distance        (the critical chain is a subset of all
//                                traffic),
//   * depth <= messages         (a chain cannot be longer than the total
//                                message count),
//   * depth <= distance         (every hop adds >= 1 distance),
//   * determinism               (same seed => identical metrics).
#include "collectives/scan.hpp"
#include "select/select.hpp"
#include "sort/sort.hpp"
#include "spmv/generators.hpp"
#include "spmv/spmv.hpp"
#include "spatial/rng.hpp"
#include "util/fit.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <string>
#include <vector>

namespace scm {
namespace {

void check_invariants(const Machine& m, const std::string& label) {
  const Metrics& mt = m.metrics();
  EXPECT_GE(mt.energy, mt.messages) << label;
  EXPECT_GE(mt.energy, mt.distance()) << label;
  EXPECT_LE(mt.depth(), mt.messages) << label;
  EXPECT_LE(mt.depth(), mt.distance()) << label;
  EXPECT_GE(mt.energy, 0) << label;
  // Per-phase metrics are each bounded by the totals.
  for (const auto& [name, pm] : m.phases()) {
    EXPECT_LE(pm.energy, mt.energy) << label << "/" << name;
    EXPECT_LE(pm.messages, mt.messages) << label << "/" << name;
    EXPECT_LE(pm.depth(), mt.depth()) << label << "/" << name;
  }
}

TEST(ModelInvariants, HoldForEveryAlgorithm) {
  const index_t n = 256;
  auto v = random_doubles(1, static_cast<size_t>(n));

  {
    Machine m;
    auto a = GridArray<double>::from_values_square({0, 0}, v);
    (void)scan(m, a, Plus{});
    check_invariants(m, "scan");
  }
  {
    Machine m;
    auto a = GridArray<double>::from_values_square({0, 0}, v,
                                                   Layout::kRowMajor);
    (void)mergesort2d(m, a);
    check_invariants(m, "mergesort2d");
  }
  {
    Machine m;
    auto a = GridArray<double>::from_values_square({0, 0}, v,
                                                   Layout::kRowMajor);
    bitonic_sort(m, a, std::less<double>{});
    check_invariants(m, "bitonic");
  }
  {
    Machine m;
    auto a = GridArray<double>::from_values_square({0, 0}, v);
    (void)allpairs_sort(m, a, std::less<double>{});
    check_invariants(m, "allpairs");
  }
  {
    Machine m;
    auto a = GridArray<double>::from_values_square({0, 0}, v,
                                                   Layout::kRowMajor);
    (void)select_rank(m, a, n / 2, 9);
    check_invariants(m, "select");
  }
  {
    Machine m;
    const CooMatrix mat = random_uniform_matrix(64, 128, 2);
    (void)spmv(m, mat, random_doubles(3, 64));
    check_invariants(m, "spmv");
  }
}

TEST(ModelInvariants, MergesortEnergyStaysOnTheoremV8Shape) {
  // Theorem V.8: Theta(n^{3/2}) energy. Guard the shape two ways so a
  // regression back toward the old quadratic merge (three independent
  // rank selections per node, each window All-Pairs-Sorted) fails loudly:
  //   * pointwise, energy <= 16 n^{3/2} at every probed size (measured
  //     e/n^{3/2} is 7.8-10.9, a power-of-4 quantization sawtooth);
  //   * globally, the fitted log-log exponent stays <= 1.6 (measured
  //     ~1.54 over this range; the quadratic merge fitted ~1.94).
  std::vector<double> ns;
  std::vector<double> es;
  for (index_t n : {48, 64, 96, 128, 192, 256, 384, 512}) {
    Machine m;
    auto v = random_doubles(17, static_cast<size_t>(n));
    auto a = GridArray<double>::from_values_square({0, 0}, v,
                                                   Layout::kRowMajor);
    (void)mergesort2d(m, a);
    const auto e = static_cast<double>(m.metrics().energy);
    EXPECT_LE(e, 16.0 * std::pow(static_cast<double>(n), 1.5)) << "n=" << n;
    ns.push_back(static_cast<double>(n));
    es.push_back(e);
  }
  const util::PowerFit fit = util::fit_power_law(ns, es);
  ASSERT_TRUE(fit.valid);
  EXPECT_LE(fit.exponent, 1.6);
  EXPECT_GE(fit.r2, 0.98);
}

TEST(ModelInvariants, OutputClocksAreBoundedByMachineMax) {
  Machine m;
  auto v = random_doubles(4, 256);
  auto a = GridArray<double>::from_values_square({0, 0}, v);
  GridArray<double> out = scan(m, a, Plus{});
  const Clock mc = m.metrics().max_clock;
  for (index_t i = 0; i < out.size(); ++i) {
    EXPECT_LE(out[i].clock.depth, mc.depth);
    EXPECT_LE(out[i].clock.distance, mc.distance);
  }
}

TEST(ModelInvariants, DeterministicMetricsAcrossRuns) {
  auto run_once = [] {
    Machine m;
    auto v = random_doubles(7, 400);
    auto a = GridArray<double>::from_values_square({0, 0}, v,
                                                   Layout::kRowMajor);
    (void)mergesort2d(m, a);
    return m.metrics();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(ModelInvariants, SortedOutputDepthsAreAchievable) {
  // Every output element's clock must be reachable: depth >= 1 for any
  // element that moved, and the first element of a scan (which never
  // waits) keeps depth 0.
  Machine m;
  auto v = random_doubles(8, 64);
  auto a = GridArray<double>::from_values_square({0, 0}, v);
  GridArray<double> out = scan(m, a, Plus{});
  EXPECT_EQ(out[0].clock.depth, 0);  // A_0's prefix is itself, in place
  EXPECT_GT(out[out.size() - 1].clock.depth, 0);
}

}  // namespace
}  // namespace scm
