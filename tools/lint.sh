#!/usr/bin/env bash
# Static-analysis runner: clang-tidy (repo .clang-tidy profile) plus
# clang-format --dry-run over src tests bench examples.
#
# Usage:
#   tools/lint.sh [build-dir]
#
# The build dir must contain compile_commands.json (the top-level
# CMakeLists.txt sets CMAKE_EXPORT_COMPILE_COMMANDS, so any configured
# build dir works). Missing tools are reported and skipped rather than
# failing the run, so the script degrades gracefully on machines without
# LLVM; CI installs both and treats any diagnostic as a failure.
set -u -o pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
status=0

find_tool() {
  # Accept plain and versioned binary names (clang-tidy-18, ...).
  local base=$1
  if command -v "$base" > /dev/null 2>&1; then
    echo "$base"
    return 0
  fi
  local versioned
  versioned=$(compgen -c "$base-" 2> /dev/null | grep -E "^$base-[0-9]+$" |
    sort -t- -k3 -n | tail -1)
  if [ -n "$versioned" ]; then
    echo "$versioned"
    return 0
  fi
  return 1
}

sources() {
  find "$repo_root/src" "$repo_root/tests" "$repo_root/bench" \
    "$repo_root/examples" -name '*.cpp' -o -name '*.hpp' | sort
}

cpp_sources() {
  sources | grep '\.cpp$'
}

# --- clang-format ---------------------------------------------------------
if fmt=$(find_tool clang-format); then
  echo "== $fmt --dry-run (style: .clang-format)"
  if ! sources | xargs "$fmt" --dry-run --Werror; then
    echo "clang-format: style violations found (run $fmt -i to fix)" >&2
    status=1
  fi
else
  echo "clang-format not found; skipping format check" >&2
fi

# --- bulk-discipline lint -------------------------------------------------
if command -v python3 > /dev/null 2>&1; then
  echo "== check_bulk_discipline.py (src)"
  if ! python3 "$repo_root/tools/check_bulk_discipline.py" --self-test; then
    echo "check_bulk_discipline: self-test failed" >&2
    status=1
  elif ! python3 "$repo_root/tools/check_bulk_discipline.py" src; then
    echo "check_bulk_discipline: findings (see above; suppress a known-safe" \
      "site with '// bulk-ok: <reason>')" >&2
    status=1
  fi
else
  echo "python3 not found; skipping bulk-discipline lint" >&2
fi

# --- clang-tidy -----------------------------------------------------------
if tidy=$(find_tool clang-tidy); then
  if [ ! -f "$build_dir/compile_commands.json" ]; then
    echo "no compile_commands.json in $build_dir — configure first:" >&2
    echo "  cmake -B $build_dir -S $repo_root" >&2
    exit 1
  fi
  echo "== $tidy (profile: .clang-tidy, build dir: $build_dir)"
  if ! cpp_sources | xargs "$tidy" -p "$build_dir" --quiet; then
    echo "clang-tidy: diagnostics found" >&2
    status=1
  fi
else
  echo "clang-tidy not found; skipping tidy check" >&2
fi

exit $status
