#!/usr/bin/env python3
"""Bulk-discipline lint for the SCM simulator sources.

The sharded bulk engine (Machine::send_bulk / op_bulk / send_elements)
assumes every round is issued as one batch, under a named phase, over
storage that outlives the call. This lint enforces the source-level half
of that contract; the runtime half (batch independence) is checked by
src/spatial/independence.*. Three rules:

  scalar-send-in-bulk-round
      A scalar Machine::send() inside a loop that also builds or flushes
      a bulk batch. Scalar sends inside a bulk round loop are charged one
      virtual dispatch each, dodge the batch-independence footprint of
      the round, and usually indicate a half-converted loop. Either batch
      the message or hoist it out of the round loop.

  bulk-call-outside-phase
      A *_bulk / send_elements call with no PhaseScope declared in any
      enclosing block of the same function. Phase scopes are how bulk
      rounds are attributed (profiler phase tree, conformance imbalance,
      per-phase independence footprints); an unphased bulk call files its
      cost and its conflicts under the root. Helpers that deliberately
      rely on the *caller's* scope must say so with a suppression.

  span-of-temporary
      A named std::span variable initialized from a function call's
      return value. The temporary dies at the end of the declaration and
      the span dangles before the first use. Bind the owning container to
      a named variable first.

Suppression: append `// bulk-ok: <reason>` to the flagged line (or the
line directly above it). The reason is mandatory — a bare `bulk-ok` is
itself a finding.

Exit status: 0 when clean, 1 when findings (or bad suppressions) exist,
2 on usage errors. `--self-test` runs the embedded fixtures and exits
0/1; CI runs it before the real scan so rule regressions fail loudly.

This is a lexical, brace-tracking heuristic, not a parser: it is tuned
to this repository's style (Allman-free, clang-format'd) and errs toward
silence on constructs it cannot classify.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

# Implementation of the charging/observability machinery itself: these
# files *define* the bulk engine and its oracles, so "bulk call without a
# phase" is their job description, not a finding.
DEFAULT_EXCLUDE = (
    "src/spatial/machine.hpp",
    "src/spatial/machine.cpp",
    "src/spatial/trace.hpp",
    "src/spatial/trace.cpp",
    "src/spatial/bulk_ab.hpp",
    "src/spatial/profile.hpp",
    "src/spatial/profile.cpp",
    "src/spatial/independence.hpp",
    "src/spatial/independence.cpp",
)

BULK_CALL = re.compile(
    r"\b(?:send_bulk|op_bulk|birth_bulk|death_bulk|send_elements)\s*\(")
SCALAR_SEND = re.compile(r"\.\s*send\s*\(")
PHASE_SCOPE = re.compile(r"\bPhaseScope\b")
LOOP_HEADER = re.compile(r"^\s*(?:for|while)\s*\(")
# `std::span<...> name = make_something(...)` — a free call's return value
# dies at the `;`. Method calls on a named object (`a.coords()`) are the
# repo's standard safe idiom (a span over the object's own storage) and
# are not matched, nor are plain `= variable` copies or the direct
# constructor form `std::span<...> name(container)`.
SPAN_OF_TEMPORARY = re.compile(
    r"\bstd::span<[^;{}=]*>\s+\w+\s*=\s*(?!std::span\s*\()"
    r"[A-Za-z_][\w:]*\s*\(")
SUPPRESS = re.compile(r"//\s*bulk-ok\b:?\s*(.*)$")
CONTROL_HEADER = re.compile(
    r"^\s*(?:if|else|for|while|switch|do|namespace|struct|class|enum|union"
    r"|try|catch)\b")


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(line: str) -> str:
    """Blanks string/char literals and drops the trailing // comment so
    the matchers never fire inside documentation or log text."""
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == '/' and i + 1 < n and line[i + 1] == '/':
            break
        if c in ('"', "'"):
            quote = c
            out.append(' ')
            i += 1
            while i < n:
                if line[i] == '\\':
                    i += 2
                    continue
                if line[i] == quote:
                    i += 1
                    break
                i += 1
            continue
        out.append(c)
        i += 1
    return ''.join(out)


class Block:
    """One open `{` scope: what it is and what it has seen so far."""

    def __init__(self, is_loop: bool, is_function: bool):
        self.is_loop = is_loop
        self.is_function = is_function
        self.has_phase_scope = False
        # Function blocks: whether any bulk call appeared, and the lines
        # of scalar sends seen inside loops of this function. Flagged at
        # block close only when both are present — a scalar send chain in
        # a function with no bulk traffic is legitimate (dependent-chain
        # algorithms), and a lambda is its own function for this rule.
        self.saw_bulk_call = False
        self.loop_sends: list[int] = []


def check_file(path: pathlib.Path, rel: str) -> list[Finding]:
    findings: list[Finding] = []
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as err:
        return [Finding(rel, 0, "io", str(err))]

    stack: list[Block] = []
    # Header text accumulated since the last `{`/`}`/`;` — classifies the
    # next opened block as loop / function / other.
    pending_header = ""
    paren_depth = 0
    prev_suppressed: tuple[bool, str] = (False, "")

    for lineno, raw in enumerate(text.splitlines(), start=1):
        sup = SUPPRESS.search(raw)
        suppressed = sup is not None or prev_suppressed[0]
        if sup is not None and not sup.group(1).strip():
            findings.append(Finding(
                rel, lineno, "bad-suppression",
                "bulk-ok needs a reason: `// bulk-ok: <why this is safe>`"))
        code = strip_comments_and_strings(raw)
        # A suppression on its own comment line covers the next code line.
        prev_suppressed = (sup is not None and not code.strip(), rel)

        if PHASE_SCOPE.search(code) and stack:
            stack[-1].has_phase_scope = True

        # Index of the innermost enclosing function block, if any.
        func_idx = next((i for i in range(len(stack) - 1, -1, -1)
                         if stack[i].is_function), None)

        bulk_match = BULK_CALL.search(code)
        if bulk_match is not None:
            # `void send_elements(...)` is a declaration, not a call: skip
            # when the name is preceded by a type-ish token (identifier,
            # `>`, `&`, `*`) other than `return`.
            prefix = code[:bulk_match.start()]
            if re.search(r"[\w>\]&*]\s+$", prefix) and \
                    not prefix.rstrip().endswith("return"):
                bulk_match = None
        if bulk_match is not None:
            if func_idx is not None:
                stack[func_idx].saw_bulk_call = True
            if not suppressed and \
                    not any(b.has_phase_scope for b in stack):
                findings.append(Finding(
                    rel, lineno, "bulk-call-outside-phase",
                    "bulk call with no enclosing PhaseScope; open one, or "
                    "suppress with `// bulk-ok: caller holds the phase "
                    "scope` if this is a helper"))

        if SCALAR_SEND.search(code) and not BULK_CALL.search(code) \
                and not suppressed and func_idx is not None:
            # `.send(` that is not `.send_bulk(` etc. (BULK_CALL would
            # have matched those names instead), inside a loop of the
            # innermost function.
            if any(b.is_loop for b in stack[func_idx + 1:]):
                stack[func_idx].loop_sends.append(lineno)

        if SPAN_OF_TEMPORARY.search(code) and not suppressed:
            findings.append(Finding(
                rel, lineno, "span-of-temporary",
                "std::span bound to a temporary return value dangles "
                "immediately; name the owning container first"))

        # Brace tracking. clang-format keeps `{` on the statement line,
        # so the pending header at each `{` classifies the block. `;` only
        # ends a header at paren depth 0 (a for-header's semicolons must
        # not split it).
        for ch in code:
            if ch == '(':
                paren_depth += 1
            elif ch == ')':
                paren_depth = max(0, paren_depth - 1)
            if ch == '{':
                header = pending_header
                is_loop = LOOP_HEADER.match(header) is not None
                is_function = (
                    not is_loop
                    and CONTROL_HEADER.match(header) is None
                    and '(' in header)
                stack.append(Block(is_loop, is_function))
                pending_header = ""
            elif ch == '}':
                if stack:
                    closed = stack.pop()
                    if closed.is_function and closed.saw_bulk_call:
                        for send_line in closed.loop_sends:
                            findings.append(Finding(
                                rel, send_line, "scalar-send-in-bulk-round",
                                "scalar Machine::send() in a round loop of "
                                "a function that issues bulk batches; "
                                "batch the message or hoist it out of the "
                                "round"))
                pending_header = ""
            elif ch == ';' and paren_depth == 0:
                pending_header = ""
            else:
                pending_header += ch
        if pending_header:
            pending_header += "\n"

    return findings


def gather_sources(roots: list[str], repo: pathlib.Path) -> list[pathlib.Path]:
    files: list[pathlib.Path] = []
    for root in roots:
        p = (repo / root) if not pathlib.Path(root).is_absolute() \
            else pathlib.Path(root)
        if p.is_file():
            files.append(p)
            continue
        files.extend(sorted(p.rglob("*.hpp")))
        files.extend(sorted(p.rglob("*.cpp")))
    excluded = {repo / e for e in DEFAULT_EXCLUDE}
    return [f for f in sorted(set(files)) if f not in excluded]


# --- self test -------------------------------------------------------------

SELF_TEST_CASES = [
    # (name, source, expected rule names in line order)
    ("scalar send mixed into a batch loop", """
void round(Machine& m, GridArray<int>& a) {
  Machine::PhaseScope scope(m, "round");
  std::vector<MessageEvent> batch;
  for (index_t i = 0; i < a.size(); ++i) {
    batch.push_back(make_event(a, i));
    m.send(a.coord(i), a.coord(0), a[i].clock);
  }
  m.send_bulk(batch);
}
""", ["scalar-send-in-bulk-round"]),
    ("scalar send loop with no batch is fine", """
void chain(Machine& m, GridArray<int>& a) {
  Machine::PhaseScope scope(m, "chain");
  for (index_t i = 1; i < a.size(); ++i) {
    m.send(a.coord(i - 1), a.coord(i), a[i].clock);
  }
}
""", []),
    ("bulk call without a phase scope", """
void flush(Machine& m, std::vector<MessageEvent>& batch) {
  m.send_bulk(batch);
}
""", ["bulk-call-outside-phase"]),
    ("suppressed helper is fine", """
void flush(Machine& m, std::vector<MessageEvent>& batch) {
  m.send_bulk(batch);  // bulk-ok: caller holds the phase scope
}
""", []),
    ("suppression on the previous line also works", """
void flush(Machine& m, std::vector<MessageEvent>& batch) {
  // bulk-ok: caller holds the phase scope
  m.send_bulk(batch);
}
""", []),
    ("reason-less suppression is itself a finding", """
void flush(Machine& m, std::vector<MessageEvent>& batch) {
  m.send_bulk(batch);  // bulk-ok
}
""", ["bad-suppression"]),
    ("phase scope in an enclosing block exempts the call", """
void round(Machine& m, std::vector<MessageEvent>& batch) {
  Machine::PhaseScope scope(m, "round");
  for (int step = 0; step < 3; ++step) {
    m.send_bulk(batch);
  }
}
""", []),
    ("span bound to a temporary", """
void use(Machine& m) {
  std::span<const MessageEvent> s = make_batch();
  m.send_bulk(s);  // bulk-ok: fixture
}
""", ["span-of-temporary"]),
    ("span over a named container is fine", """
void use(Machine& m, const std::vector<MessageEvent>& batch) {
  Machine::PhaseScope scope(m, "use");
  std::span<const MessageEvent> s = batch;
  m.send_bulk(s);
}
""", []),
    ("a bulk-named function definition is not a call", """
template <class T>
void send_elements(Machine& m, const GridArray<T>& src, GridArray<T>& dst,
                   std::span<const std::pair<index_t, index_t>> moves) {
  std::vector<MessageEvent> batch(moves.size());
  m.send_bulk(batch);  // bulk-ok: caller holds the phase scope
}
""", []),
    ("bulk names inside strings and comments never match", """
void doc(Machine& m) {
  Machine::PhaseScope scope(m, "doc");
  log("call send_bulk(batch) under a phase");
  // send_bulk(batch) outside a phase would be flagged
}
""", []),
]


def self_test() -> int:
    import tempfile
    failures = 0
    with tempfile.TemporaryDirectory() as tmp:
        for i, (name, source, expected) in enumerate(SELF_TEST_CASES):
            p = pathlib.Path(tmp) / f"case_{i}.hpp"
            p.write_text(source, encoding="utf-8")
            got = [f.rule for f in check_file(p, p.name)]
            if got != expected:
                failures += 1
                print(f"self-test FAIL: {name}\n  expected {expected}\n"
                      f"  got      {got}", file=sys.stderr)
    if failures:
        print(f"self-test: {failures} case(s) failed", file=sys.stderr)
        return 1
    print(f"self-test: {len(SELF_TEST_CASES)} cases ok")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description="Bulk-discipline lint (see module docstring).")
    parser.add_argument("roots", nargs="*", default=["src"],
                        help="files or directories to scan (default: src)")
    parser.add_argument("--repo", default=None,
                        help="repository root (default: parent of tools/)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the embedded rule fixtures and exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    repo = pathlib.Path(args.repo) if args.repo else \
        pathlib.Path(__file__).resolve().parent.parent
    roots = args.roots if args.roots else ["src"]
    files = gather_sources(roots, repo)
    if not files:
        print(f"check_bulk_discipline: no sources under {roots}",
              file=sys.stderr)
        return 2

    findings: list[Finding] = []
    for f in files:
        try:
            rel = str(f.relative_to(repo))
        except ValueError:
            rel = str(f)
        findings.extend(check_file(f, rel))

    for finding in findings:
        print(finding)
    if findings:
        print(f"check_bulk_discipline: {len(findings)} finding(s) in "
              f"{len(files)} files", file=sys.stderr)
        return 1
    print(f"check_bulk_discipline: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
