// Lemma V.1 / Corollary V.2: the reversal permutation costs
// Omega(max(w,h)^2 min(w,h)) energy — Omega(n^{3/2}) on a square — and
// the 2-D Mergesort matches the bound within a constant factor, making it
// energy-optimal.
#include "bench_common.hpp"

#include "sort/mergesort2d.hpp"
#include "sort/permute.hpp"
#include "spatial/rng.hpp"

#include <benchmark/benchmark.h>

#include <numeric>
#include <random>

namespace {

using namespace scm;

void BM_ReversalPermutation(benchmark::State& state) {
  const index_t side = state.range(0);
  if (bench::skip_outside_sweep(state, side)) return;
  const index_t n = side * side;
  for (auto _ : state) {
    Machine m;
    GridArray<int> a(Rect{0, 0, side, side}, Layout::kRowMajor, n);
    benchmark::DoNotOptimize(permute(m, a, reversal_permutation(n)));
    bench::report(state, "reversal", static_cast<double>(n), m.metrics());
  }
}
BENCHMARK(BM_ReversalPermutation)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_RandomPermutation(benchmark::State& state) {
  const index_t side = state.range(0);
  if (bench::skip_outside_sweep(state, side)) return;
  const index_t n = side * side;
  std::vector<index_t> perm(static_cast<size_t>(n));
  std::iota(perm.begin(), perm.end(), index_t{0});
  std::mt19937_64 rng(7);
  std::shuffle(perm.begin(), perm.end(), rng);
  for (auto _ : state) {
    Machine m;
    GridArray<int> a(Rect{0, 0, side, side}, Layout::kRowMajor, n);
    benchmark::DoNotOptimize(permute(m, a, perm));
    bench::report(state, "random-perm", static_cast<double>(n), m.metrics());
  }
}
BENCHMARK(BM_RandomPermutation)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_SortReversedInput(benchmark::State& state) {
  const index_t side = state.range(0);
  if (bench::skip_outside_sweep(state, side)) return;
  const index_t n = side * side;
  std::vector<double> reversed;
  for (index_t i = 0; i < n; ++i) {
    reversed.push_back(static_cast<double>(n - i));
  }
  for (auto _ : state) {
    Machine m;
    auto a = GridArray<double>::from_values_square({0, 0}, reversed,
                                                   Layout::kRowMajor);
    benchmark::DoNotOptimize(mergesort2d(m, a));
    bench::report(state, "sort-reversed", static_cast<double>(n),
                  m.metrics());
  }
}
BENCHMARK(BM_SortReversedInput)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  const scm::util::Cli cli(argc, argv);
  scm::bench::configure_sweep(cli);
  cli.warn_unknown();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  scm::bench::print_series(
      "Reversal permutation, direct routing (the Lemma V.1 witness)",
      "reversal",
      {{"energy", false, 1.5, 0.05, "Theta(n^{3/2})"}});
  scm::bench::print_series(
      "Random permutation, direct routing", "random-perm",
      {{"energy", false, 1.5, 0.1, "Theta(n^{3/2})"}});
  scm::bench::print_series(
      "2-D Mergesort on the reversal input (matches the lower bound up to "
      "constants)",
      "sort-reversed", {{"energy", false, 1.5, 0.2, "Theta(n^{3/2})"}});
  scm::bench::print_ratio(
      "Mergesort energy over the bare reversal routing (constant-factor "
      "optimality gap)",
      "sort-reversed", "reversal", "energy");
  return 0;
}
