// Table I, row "Rank Selection" (Section VI, Theorem VI.3):
//   energy Theta(n), depth O(log^2 n), distance Theta(sqrt n), w.h.p.,
//   with O(1) sampling iterations.
//
// Sweeps the randomized selection over sizes, ranks, and seeds; reports
// iteration counts and fallback frequency alongside the cost shapes.
#include "bench_common.hpp"

#include "select/select.hpp"
#include "spatial/rng.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace scm;

index_t g_max_iterations = 0;
index_t g_fallbacks = 0;
index_t g_runs = 0;

void BM_SelectMedian(benchmark::State& state) {
  const index_t n = state.range(0);
  if (bench::skip_outside_sweep(state, n)) return;
  const auto v = random_doubles(5, static_cast<size_t>(n));
  for (auto _ : state) {
    Machine m;
    auto a = GridArray<double>::from_values_square({0, 0}, v,
                                                   Layout::kRowMajor);
    const auto r = select_rank(m, a, (n + 1) / 2, 42);
    benchmark::DoNotOptimize(r.value);
    g_max_iterations = std::max(g_max_iterations, r.iterations);
    g_fallbacks += r.fell_back ? 1 : 0;
    ++g_runs;
    state.counters["iterations"] = static_cast<double>(r.iterations);
    bench::report(state, "select", static_cast<double>(n), m.metrics());
  }
}
BENCHMARK(BM_SelectMedian)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Arg(65536)
    ->Arg(262144)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_SelectRankSweep(benchmark::State& state) {
  const index_t n = 16384;
  const index_t k = state.range(0);
  const auto v = random_doubles(6, static_cast<size_t>(n));
  for (auto _ : state) {
    Machine m;
    auto a = GridArray<double>::from_values_square({0, 0}, v,
                                                   Layout::kRowMajor);
    const auto r = select_rank(m, a, k, 43 + k);
    benchmark::DoNotOptimize(r.value);
    g_max_iterations = std::max(g_max_iterations, r.iterations);
    g_fallbacks += r.fell_back ? 1 : 0;
    ++g_runs;
    bench::report(state, "select/rank-sweep", static_cast<double>(k),
                  m.metrics());
  }
}
BENCHMARK(BM_SelectRankSweep)
    ->Arg(1)
    ->Arg(4096)
    ->Arg(8192)
    ->Arg(12288)
    ->Arg(16384)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  scm::util::Cli cli(argc, argv);
  scm::bench::configure_sweep(cli);
  scm::util::ProfileSession profile(cli);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  profile.finish();

  scm::bench::print_series(
      "Table I / Rank Selection (Theorem VI.3), median", "select",
      {{"energy", false, 1.0, 0.15, "Theta(n) w.h.p."},
       {"depth", true, 2.0, 0.5, "O(log^2 n)"},
       {"distance", false, 0.5, 0.2, "Theta(sqrt n)"}});
  scm::bench::print_series(
      "Rank sensitivity at n=16384 (k on the x axis)", "select/rank-sweep",
      {});
  std::printf(
      "\nsampling iterations: max %lld over %lld runs, fallbacks %lld "
      "(paper: O(1) iterations, fallback probability <= 2 n^{-c/6})\n",
      static_cast<long long>(g_max_iterations),
      static_cast<long long>(g_runs), static_cast<long long>(g_fallbacks));
  return 0;
}
