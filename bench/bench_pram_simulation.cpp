// Lemmas VII.1 and VII.2: PRAM simulation costs. The EREW simulation pays
// O(p (sqrt p + sqrt m)) energy and O(1) message depth per step; the CRCW
// simulation resolves concurrency by sorting and pays an O(log^3 p) depth
// factor per step.
#include "bench_common.hpp"

#include "pram/crcw.hpp"
#include "pram/erew.hpp"
#include "pram/programs.hpp"
#include "spatial/rng.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace scm;

pram::Word add(pram::Word a, pram::Word b) { return a + b; }

void BM_ErewTreeReduce(benchmark::State& state) {
  const index_t n = state.range(0);
  if (bench::skip_outside_sweep(state, n)) return;
  const auto v = random_doubles(51, static_cast<size_t>(n));
  pram::TreeReduceProgram prog(n, add);
  for (auto _ : state) {
    Machine m;
    benchmark::DoNotOptimize(pram::simulate_erew(m, prog, v));
    bench::report(state, "erew/tree-reduce", static_cast<double>(n),
                  m.metrics());
  }
}
BENCHMARK(BM_ErewTreeReduce)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_ErewScan(benchmark::State& state) {
  const index_t n = state.range(0);
  if (bench::skip_outside_sweep(state, n)) return;
  const auto v = random_doubles(52, static_cast<size_t>(n));
  pram::HillisSteeleScanProgram prog(n);
  for (auto _ : state) {
    Machine m;
    benchmark::DoNotOptimize(pram::simulate_erew(m, prog, v));
    bench::report(state, "erew/hillis-steele", static_cast<double>(n),
                  m.metrics());
  }
}
BENCHMARK(BM_ErewScan)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_CrcwBroadcastRead(benchmark::State& state) {
  const index_t p = state.range(0);
  if (bench::skip_outside_sweep(state, p)) return;
  pram::BroadcastReadProgram prog(p);
  std::vector<pram::Word> mem(static_cast<size_t>(p + 1), 1.0);
  for (auto _ : state) {
    Machine m;
    benchmark::DoNotOptimize(pram::simulate_crcw(m, prog, mem));
    bench::report(state, "crcw/broadcast-read", static_cast<double>(p),
                  m.metrics());
  }
}
BENCHMARK(BM_CrcwBroadcastRead)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_CrcwScan(benchmark::State& state) {
  const index_t n = state.range(0);
  if (bench::skip_outside_sweep(state, n)) return;
  const auto v = random_doubles(53, static_cast<size_t>(n));
  pram::HillisSteeleScanProgram prog(n);
  for (auto _ : state) {
    Machine m;
    benchmark::DoNotOptimize(pram::simulate_crcw(m, prog, v));
    bench::report(state, "crcw/hillis-steele", static_cast<double>(n),
                  m.metrics());
  }
}
BENCHMARK(BM_CrcwScan)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  const scm::util::Cli cli(argc, argv);
  scm::bench::configure_sweep(cli);
  cli.warn_unknown();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  scm::bench::print_series(
      "EREW simulation, tree reduce (Lemma VII.1): p = n/2, T = 2 log n",
      "erew/tree-reduce",
      {{"energy", false, 1.5, 0.25, "O(p sqrt(p) T) ~ n^{1.5}"}});
  scm::bench::print_series(
      "EREW simulation, Hillis-Steele scan: p = n, T = log n + 1",
      "erew/hillis-steele",
      {{"energy", false, 1.5, 0.25, "O(p sqrt(p) T) ~ n^{1.5} log n"}});
  scm::bench::print_series(
      "CRCW simulation, one concurrent-read step (Lemma VII.2)",
      "crcw/broadcast-read",
      {{"energy", false, 1.5, 0.25, "O(p^{3/2})"},
       {"depth", true, 3.0, 0.8, "O(log^3 p)"}});
  scm::bench::print_series(
      "CRCW simulation, Hillis-Steele scan (depth O(T log^3 p))",
      "crcw/hillis-steele",
      {{"depth", true, 4.0, 1.0, "O(log^4 n)"}});
  scm::bench::print_ratio(
      "Depth ratio CRCW / EREW on the same scan program (the sorting "
      "overhead of concurrency resolution)",
      "crcw/hillis-steele", "erew/hillis-steele", "depth");
  return 0;
}
