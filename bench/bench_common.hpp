// Shared infrastructure for the paper-reproduction benchmark harness.
//
// Every bench binary follows the same pattern:
//   * register google-benchmark cases (one per algorithm x input size)
//     that run the simulator once and expose energy / depth / distance as
//     counters;
//   * record each measurement in a process-wide registry;
//   * after benchmark::RunSpecifiedBenchmarks, print the paper-style
//     series table and fit the growth shapes against the claimed bounds,
//     emitting PASS/FAIL per claim (INCONCLUSIVE when a series is too
//     degenerate to fit).
//
// The registry, claim checking, and table printing live in
// src/util/series.{hpp,cpp} (unit-tested, no google-benchmark
// dependency); this header only adds the google-benchmark glue.
// Observability: every bench main constructs a util::Cli (after
// benchmark::Initialize, which consumes its own flags) and a
// util::ProfileSession, so `--profile=<path>` / `--trace-json=<path>` /
// `--profile-ascii` work on every table/figure binary and the emitted
// artifact explains the numbers of the last (largest) benchmark run. See
// docs/OBSERVABILITY.md.
#pragma once

#include "spatial/metrics.hpp"
#include "util/profile_session.hpp"
#include "util/series.hpp"

#include <benchmark/benchmark.h>

#include <string>

namespace scm::bench {

// The series store, Claim type, and print_series/print_ratio/metric_value
// helpers live in scm::util; benches keep addressing them as scm::bench::.
using namespace scm::util;  // NOLINT(google-build-using-namespace)

/// The process-wide measurement store (bench-side alias of the
/// unit-tested util::SeriesRegistry).
using Registry = util::SeriesRegistry;

/// Publishes a measurement both as google-benchmark counters and into the
/// registry for the post-run analysis table.
inline void report(benchmark::State& state, const std::string& series,
                   double n, const Metrics& m) {
  state.counters["energy"] = static_cast<double>(m.energy);
  state.counters["depth"] = static_cast<double>(m.depth());
  state.counters["distance"] = static_cast<double>(m.distance());
  state.counters["messages"] = static_cast<double>(m.messages);
  Registry::instance().add(series, n, m);
}

}  // namespace scm::bench
