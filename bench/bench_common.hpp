// Shared infrastructure for the paper-reproduction benchmark harness.
//
// Every bench binary follows the same pattern:
//   * register google-benchmark cases (one per algorithm x input size)
//     that run the simulator once and expose energy / depth / distance as
//     counters;
//   * record each measurement in a process-wide registry;
//   * after benchmark::RunSpecifiedBenchmarks, print the paper-style
//     series table and fit the growth shapes against the claimed bounds,
//     emitting PASS/FAIL per claim (INCONCLUSIVE when a series is too
//     degenerate to fit).
//
// The registry, claim checking, and table printing live in
// src/util/series.{hpp,cpp} (unit-tested, no google-benchmark
// dependency); this header only adds the google-benchmark glue.
// Observability: every bench main constructs a util::Cli (after
// benchmark::Initialize, which consumes its own flags) and a
// util::ProfileSession, so `--profile=<path>` / `--trace-json=<path>` /
// `--profile-ascii` work on every table/figure binary and the emitted
// artifact explains the numbers of the last (largest) benchmark run. See
// docs/OBSERVABILITY.md.
#pragma once

#include "spatial/congestion.hpp"
#include "spatial/metrics.hpp"
#include "util/cli.hpp"
#include "util/profile_session.hpp"
#include "util/series.hpp"
#include "util/table.hpp"

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

namespace scm::bench {

// The series store, Claim type, and print_series/print_ratio/metric_value
// helpers live in scm::util; benches keep addressing them as scm::bench::.
using namespace scm::util;  // NOLINT(google-build-using-namespace)

/// The process-wide measurement store (bench-side alias of the
/// unit-tested util::SeriesRegistry).
using Registry = util::SeriesRegistry;

/// Problem-size window from the standard --min-n / --max-n sweep flags.
/// Lets CI smoke runs (and impatient humans) cap a sweep's sizes without
/// editing the hardcoded Arg lists. Defaults to unbounded.
struct SweepRange {
  std::int64_t min_n{std::numeric_limits<std::int64_t>::min()};
  std::int64_t max_n{std::numeric_limits<std::int64_t>::max()};

  [[nodiscard]] bool contains(std::int64_t n) const {
    return n >= min_n && n <= max_n;
  }
};

/// The process-wide sweep window read by skip_outside_sweep.
inline SweepRange& sweep_range() {
  static SweepRange range;
  return range;
}

/// Standard per-main setup: fully buffer stdout (util::buffer_stdio) and
/// read --min-n / --max-n into the sweep window. Call right after
/// constructing the Cli (benchmark cases run later, from
/// RunSpecifiedBenchmarks).
inline void configure_sweep(const util::Cli& cli) {
  util::buffer_stdio();
  sweep_range().min_n = cli.get_int("min-n", sweep_range().min_n);
  sweep_range().max_n = cli.get_int("max-n", sweep_range().max_n);
}

/// True (after burning the mandatory iteration loop and labeling the row
/// "skipped") when the sweep point `n` falls outside --min-n / --max-n.
/// Call first thing in a sweeping benchmark body and return immediately
/// on true: the skipped size then never reaches report(), so series fits
/// see only the sizes that actually ran. (google-benchmark 1.7 has no
/// SkipWithMessage, and SkipWithError would fail the run — an empty
/// labeled iteration is the supported way to no-op a registered case.)
inline bool skip_outside_sweep(benchmark::State& state, std::int64_t n) {
  if (sweep_range().contains(n)) return false;
  state.SetLabel("skipped (outside --min-n/--max-n)");
  for (auto _ : state) {
  }
  return true;
}

/// Publishes a measurement both as google-benchmark counters and into the
/// registry for the post-run analysis table.
inline void report(benchmark::State& state, const std::string& series,
                   double n, const Metrics& m) {
  state.counters["energy"] = static_cast<double>(m.energy);
  state.counters["depth"] = static_cast<double>(m.depth());
  state.counters["distance"] = static_cast<double>(m.distance());
  state.counters["messages"] = static_cast<double>(m.messages);
  Registry::instance().add(series, n, m);
}

/// Publishes a per-iteration congestion-sink measurement (diagnostic
/// metrics, strictly outside the paper's three) as counters and custom
/// series values, so ratio tables and power-law fits can compare
/// algorithms on congestion robustness.
inline void report_congestion(benchmark::State& state,
                              const std::string& series, double n,
                              const CongestionMap& cm) {
  state.counters["peak_link_load"] =
      static_cast<double>(cm.max_link_load());
  state.counters["congested_clock"] =
      static_cast<double>(cm.congested_clock());
  Registry::instance().add_value(series, n, "peak_link_load",
                                 static_cast<double>(cm.max_link_load()));
  Registry::instance().add_value(
      series, n, "congested_clock",
      static_cast<double>(cm.congested_clock()));
}

/// Fits and prints the power-law shape of a custom congestion metric of
/// one series (no claim attached: the paper makes no statement about
/// congestion, so the fitted exponent is reported, not judged).
inline void print_congestion_fit(const std::string& series,
                                 const std::string& metric) {
  const auto& samples = Registry::instance().series(series);
  if (!series_has_extra(samples, metric)) return;
  std::vector<double> ns;
  std::vector<double> ys;
  for (const Sample& s : samples) {
    ns.push_back(s.n);
    ys.push_back(sample_value(s, metric));
  }
  const util::PowerFit fit = util::fit_power_law(ns, ys);
  std::printf("  %s %s fitted %s\n", series.c_str(), metric.c_str(),
              util::describe_power(fit).c_str());
}

}  // namespace scm::bench
