// Shared infrastructure for the paper-reproduction benchmark harness.
//
// Every bench binary follows the same pattern:
//   * register google-benchmark cases (one per algorithm x input size)
//     that run the simulator once and expose energy / depth / distance as
//     counters;
//   * record each measurement in a process-wide registry;
//   * after benchmark::RunSpecifiedBenchmarks, print the paper-style
//     series table and fit the growth shapes against the claimed bounds,
//     emitting PASS/FAIL per claim.
#pragma once

#include "spatial/metrics.hpp"
#include "util/fit.hpp"
#include "util/table.hpp"

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

namespace scm::bench {

/// One measured point of a series.
struct Sample {
  double n{0};
  Metrics metrics;
};

/// Process-wide store of measurements, keyed by series name, with points
/// ordered (and deduplicated) by n.
class Registry {
 public:
  static Registry& instance() {
    static Registry r;
    return r;
  }

  void add(const std::string& series, double n, const Metrics& m) {
    auto& samples = series_[series];
    for (Sample& s : samples) {
      if (s.n == n) {
        s.metrics = m;
        return;
      }
    }
    samples.push_back(Sample{n, m});
  }

  [[nodiscard]] const std::vector<Sample>& series(
      const std::string& name) const {
    static const std::vector<Sample> empty;
    const auto it = series_.find(name);
    return it == series_.end() ? empty : it->second;
  }

 private:
  std::map<std::string, std::vector<Sample>> series_;
};

/// Publishes a measurement both as google-benchmark counters and into the
/// registry for the post-run analysis table.
inline void report(benchmark::State& state, const std::string& series,
                   double n, const Metrics& m) {
  state.counters["energy"] = static_cast<double>(m.energy);
  state.counters["depth"] = static_cast<double>(m.depth());
  state.counters["distance"] = static_cast<double>(m.distance());
  state.counters["messages"] = static_cast<double>(m.messages);
  Registry::instance().add(series, n, m);
}

[[nodiscard]] inline double metric_value(const Metrics& m,
                                         const std::string& metric) {
  if (metric == "energy") return static_cast<double>(m.energy);
  if (metric == "depth") return static_cast<double>(m.depth());
  if (metric == "distance") return static_cast<double>(m.distance());
  return static_cast<double>(m.messages);
}

/// A claimed growth shape to validate against a measured series.
struct Claim {
  std::string metric;    ///< "energy" | "depth" | "distance"
  bool polylog{false};   ///< power law in n (false) or in log2 n (true)
  double expected{1.0};  ///< claimed exponent
  double tol{0.25};      ///< accepted deviation of the fitted exponent
  std::string paper;     ///< the paper's statement, e.g. "Theta(n)"
};

/// Prints the series' measured rows plus one fitted PASS/FAIL line per
/// claim. Upper-bound claims (depth O(...)) accept fitted exponents BELOW
/// expected - tol as well, which `upper_bound_ok` enables.
inline void print_series(const std::string& title, const std::string& series,
                         const std::vector<Claim>& claims,
                         bool upper_bound_ok_below = true) {
  const std::vector<Sample>& samples = Registry::instance().series(series);
  if (samples.empty()) return;

  util::Table table({"n", "energy", "depth", "distance", "energy/n",
                     "energy/n^1.5", "dist/sqrt(n)"});
  table.set_caption("\n== " + title + " ==");
  for (const Sample& s : samples) {
    table.add_row({util::fmt_count(static_cast<long long>(s.n)),
                   util::fmt_count(s.metrics.energy),
                   util::fmt_count(s.metrics.depth()),
                   util::fmt_count(s.metrics.distance()),
                   util::fmt_double(static_cast<double>(s.metrics.energy) /
                                    s.n),
                   util::fmt_double(static_cast<double>(s.metrics.energy) /
                                    std::pow(s.n, 1.5)),
                   util::fmt_double(
                       static_cast<double>(s.metrics.distance()) /
                       std::sqrt(s.n))});
  }
  table.print();

  std::vector<double> ns;
  for (const Sample& s : samples) ns.push_back(s.n);
  for (const Claim& c : claims) {
    std::vector<double> ys;
    for (const Sample& s : samples) {
      ys.push_back(metric_value(s.metrics, c.metric));
    }
    const util::PowerFit fit =
        c.polylog ? util::fit_polylog(ns, ys) : util::fit_power_law(ns, ys);
    const bool within = util::exponent_matches(fit, c.expected, c.tol);
    const bool below = upper_bound_ok_below && fit.exponent < c.expected;
    const bool pass = within || below;
    std::printf("  claim %-8s ~ %s: fitted %s -> %s\n", c.metric.c_str(),
                c.paper.c_str(),
                (c.polylog ? util::describe_polylog(fit)
                           : util::describe_power(fit))
                    .c_str(),
                pass ? "PASS" : "FAIL");
  }
}

/// Ratio table between two series at matching n (who wins, by what
/// factor) — used by the comparison benches (Fig. 2, baselines, PRAM).
inline void print_ratio(const std::string& title, const std::string& a,
                        const std::string& b, const std::string& metric) {
  const auto& sa = Registry::instance().series(a);
  const auto& sb = Registry::instance().series(b);
  if (sa.empty() || sb.empty()) return;
  util::Table table({"n", a + " " + metric, b + " " + metric,
                     "ratio " + a + "/" + b});
  table.set_caption("\n== " + title + " ==");
  for (const Sample& x : sa) {
    for (const Sample& y : sb) {
      if (x.n != y.n) continue;
      const double va = metric_value(x.metrics, metric);
      const double vb = metric_value(y.metrics, metric);
      table.add_row({util::fmt_count(static_cast<long long>(x.n)),
                     util::fmt_count(static_cast<long long>(va)),
                     util::fmt_count(static_cast<long long>(vb)),
                     util::fmt_double(vb == 0 ? 0.0 : va / vb)});
    }
  }
  table.print();
}

}  // namespace scm::bench
