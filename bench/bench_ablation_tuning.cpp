// Ablations over the design choices DESIGN.md calls out:
//   * the merge recursion's base-case size (gather-sort-scatter cutoff):
//     larger bases cut recursion/rank-selection overhead but pay
//     O(k * diameter) base energy and O(1)-but-larger depth constants;
//   * the selection sampling constant c (Lemma VI.1's failure probability
//     is 2 n^{-c/6}): larger c means bigger samples per iteration but
//     fewer/safer iterations.
#include "bench_common.hpp"

#include "select/select.hpp"
#include "sort/mergesort2d.hpp"
#include "spatial/rng.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace scm;

void BM_MergeBaseSize(benchmark::State& state) {
  const index_t base = state.range(0);
  const index_t n = 4096;
  const auto v = random_doubles(71, static_cast<size_t>(n));
  for (auto _ : state) {
    Machine m;
    auto a = GridArray<double>::from_values_square({0, 0}, v,
                                                   Layout::kRowMajor);
    benchmark::DoNotOptimize(
        mergesort2d(m, a, std::less<double>{}, MergeConfig{base}));
    bench::report(state, "mergesort/base-size", static_cast<double>(base),
                  m.metrics());
  }
}
BENCHMARK(BM_MergeBaseSize)
    ->Arg(4)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_SelectSamplingConstant(benchmark::State& state) {
  const double c = static_cast<double>(state.range(0));
  const index_t n = 65536;
  const auto v = random_doubles(72, static_cast<size_t>(n));
  index_t iterations = 0;
  for (auto _ : state) {
    Machine m;
    auto a = GridArray<double>::from_values_square({0, 0}, v,
                                                   Layout::kRowMajor);
    const auto r = select_rank(m, a, n / 2, 73, std::less<double>{},
                               SelectConfig{c});
    benchmark::DoNotOptimize(r.value);
    iterations = r.iterations;
    bench::report(state, "select/sampling-c", c, m.metrics());
  }
  state.counters["iterations"] = static_cast<double>(iterations);
}
BENCHMARK(BM_SelectSamplingConstant)
    ->Arg(3)
    ->Arg(6)
    ->Arg(12)
    ->Arg(24)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  const scm::util::Cli cli(argc, argv);
  scm::bench::configure_sweep(cli);
  cli.warn_unknown();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  scm::bench::print_series(
      "Ablation: mergesort base-case size at n=4096 (x axis = base size)",
      "mergesort/base-size", {});
  scm::bench::print_series(
      "Ablation: selection sampling constant c at n=65536 (x axis = c)",
      "select/sampling-c", {});
  std::printf(
      "\n(reading: at these sizes larger bases monotonically cut energy "
      "and depth, because the\n gather-sort-scatter base is "
      "Theta(k^{3/2})-energy with tiny constants while the recursion\n "
      "pays rank-selection overhead per level — but a base of k gathers k "
      "words into ONE\n processor, so the O(1)-memory model bounds the "
      "base to a constant; the recursion exists\n to keep memory constant, "
      "not to save energy. For c: fewer, safer iterations at larger\n "
      "per-iteration samples; energy stays O(n) and is minimized near the "
      "paper's c = 3..6.)\n");
  return 0;
}
