// Section VIII head-to-head: the direct sort-and-scan SpMV
// (Theorem VIII.2) against the CRCW PRAM-simulation upper bound. The paper
// predicts the direct algorithm improves depth (log^3 vs log^4) and
// distance (sqrt m vs sqrt(m) log m) by a logarithmic factor, with both
// at Theta(m^{3/2})-shaped energy.
#include "bench_common.hpp"

#include "spmv/generators.hpp"
#include "spmv/pram_spmv.hpp"
#include "spmv/spmv.hpp"
#include "spatial/rng.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace scm;

void BM_SpmvDirect(benchmark::State& state) {
  const index_t n = state.range(0);
  if (bench::skip_outside_sweep(state, n)) return;
  const CooMatrix a = random_uniform_matrix(n, 2 * n, 61);
  const auto x = random_doubles(62, static_cast<size_t>(n));
  for (auto _ : state) {
    Machine m;
    benchmark::DoNotOptimize(spmv(m, a, x));
    bench::report(state, "spmv-direct", static_cast<double>(a.nnz()),
                  m.metrics());
  }
}
BENCHMARK(BM_SpmvDirect)
    ->Arg(128)
    ->Arg(512)
    ->Arg(2048)
    ->Arg(8192)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_SpmvPram(benchmark::State& state) {
  const index_t n = state.range(0);
  if (bench::skip_outside_sweep(state, n)) return;
  const CooMatrix a = random_uniform_matrix(n, 2 * n, 61);
  const auto x = random_doubles(62, static_cast<size_t>(n));
  for (auto _ : state) {
    Machine m;
    benchmark::DoNotOptimize(spmv_pram(m, a, x));
    bench::report(state, "spmv-pram", static_cast<double>(a.nnz()),
                  m.metrics());
  }
}
BENCHMARK(BM_SpmvPram)
    ->Arg(128)
    ->Arg(512)
    ->Arg(2048)
    ->Arg(8192)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  const scm::util::Cli cli(argc, argv);
  scm::bench::configure_sweep(cli);
  cli.warn_unknown();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  scm::bench::print_series(
      "Direct SpMV (Theorem VIII.2)", "spmv-direct",
      {{"energy", false, 1.5, 0.15, "Theta(m^{3/2})"},
       {"depth", true, 3.0, 0.7, "O(log^3 n)"},
       {"distance", false, 0.5, 0.25, "Theta(sqrt m)"}});
  scm::bench::print_series(
      "PRAM-simulated SpMV (Section VIII upper bound)", "spmv-pram", {});
  std::printf(
      "  depth claim O(T log^3 p) = O(log^4 m): the measured depth equals "
      "T x (3 sorts per\n  CRCW step) exactly; since the mergesort's own "
      "depth runs pre-asymptotically at\n  ~(log p)^3.4 on these grids, "
      "the composite fits above 4 here. The *ratio* table\n  below is the "
      "paper's actual claim: the direct algorithm wins by a growing "
      "factor.\n");
  scm::bench::print_ratio(
      "Depth ratio PRAM-sim / direct (paper: direct wins by ~ log n)",
      "spmv-pram", "spmv-direct", "depth");
  scm::bench::print_ratio(
      "Distance ratio PRAM-sim / direct (paper: direct wins by ~ log n)",
      "spmv-pram", "spmv-direct", "distance");
  scm::bench::print_ratio("Energy ratio PRAM-sim / direct", "spmv-pram",
                          "spmv-direct", "energy");
  return 0;
}
