// Tree-algorithm workload tier (Sections V-VI primitives composed over
// Euler tours): tour construction, rootfix/leaffix reductions, rake-and-
// compress contraction, and batched LCA.
//
// Energy is sort-dominated at Theta(m^{3/2}) per round (m = 2(n-1) arcs);
// the Wyllie ranking and contraction loops add an O(log n) round factor,
// so the swept log-log energy slopes sit slightly above 1.5. Depth stays
// polylogarithmic and distance Theta(sqrt m) per round. The fitted
// exponents are recorded in BENCH_simulator.json and guarded by CI.
#include "bench_common.hpp"

#include "collectives/operators.hpp"
#include "testing/gen.hpp"
#include "tree/contraction.hpp"
#include "tree/euler.hpp"
#include "tree/lca.hpp"
#include "tree/reductions.hpp"
#include "tree/tree.hpp"

#include <benchmark/benchmark.h>

#include <cstdint>
#include <utility>
#include <vector>

namespace {

using namespace scm;

/// A seeded tree of the given shape, rooted at a seeded vertex.
tree::DenseTree bench_tree(index_t n, testing::TreeShape shape,
                           std::uint64_t seed) {
  testing::Rng rng(seed);
  tree::Tree t;
  t.n = n;
  t.edges = testing::gen_tree(rng, n, shape);
  t.root = rng.uniform(0, n - 1);
  return tree::normalize(t);
}

/// Dense-indexed signed vertex values.
std::vector<std::int64_t> bench_values(index_t n, std::uint64_t seed) {
  testing::Rng rng(seed);
  std::vector<std::int64_t> v(static_cast<size_t>(n));
  for (auto& x : v) x = static_cast<std::int64_t>(rng.uniform(0, 100)) - 50;
  return v;
}

void BM_EulerTour(benchmark::State& state) {
  const index_t n = state.range(0);
  if (bench::skip_outside_sweep(state, n)) return;
  const tree::DenseTree t =
      bench_tree(n, testing::TreeShape::kRandomPrufer, 41);
  for (auto _ : state) {
    Machine m;
    benchmark::DoNotOptimize(tree::euler_tour(m, t, {0, 0}));
    bench::report(state, "tree/euler", static_cast<double>(2 * (n - 1)),
                  m.metrics());
  }
}
BENCHMARK(BM_EulerTour)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_TreeReduce(benchmark::State& state) {
  const index_t n = state.range(0);
  if (bench::skip_outside_sweep(state, n)) return;
  const tree::DenseTree t =
      bench_tree(n, testing::TreeShape::kRandomPrufer, 43);
  const auto vals = bench_values(n, 44);
  const auto neg = [](std::int64_t x) { return -x; };
  for (auto _ : state) {
    Machine m;
    const tree::EulerTour tour = tree::euler_tour(m, t, {0, 0});
    benchmark::DoNotOptimize(
        tree::rootfix(m, tour, vals, Plus{}, neg));
    benchmark::DoNotOptimize(tree::leaffix(m, tour, vals,
                                           Plus{}, neg,
                                           std::int64_t{0}));
    bench::report(state, "tree/reduce", static_cast<double>(2 * (n - 1)),
                  m.metrics());
  }
}
BENCHMARK(BM_TreeReduce)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_TreeContract(benchmark::State& state) {
  const index_t n = state.range(0);
  if (bench::skip_outside_sweep(state, n)) return;
  const tree::DenseTree t =
      bench_tree(n, testing::TreeShape::kRandomPrufer, 47);
  const auto vals = bench_values(n, 48);
  for (auto _ : state) {
    Machine m;
    benchmark::DoNotOptimize(tree::tree_contract(
        m, t, vals, Plus{}, /*salt=*/0xb5, {0, 0}));
    bench::report(state, "tree/contract", static_cast<double>(2 * (n - 1)),
                  m.metrics());
  }
}
BENCHMARK(BM_TreeContract)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_Lca(benchmark::State& state) {
  const index_t n = state.range(0);
  if (bench::skip_outside_sweep(state, n)) return;
  const tree::DenseTree t =
      bench_tree(n, testing::TreeShape::kRandomPrufer, 53);
  testing::Rng rng(54);
  const index_t q = n / 4;
  std::vector<std::pair<index_t, index_t>> queries(
      static_cast<size_t>(q));
  for (auto& [a, b] : queries) {
    a = rng.uniform(0, n - 1);
    b = rng.uniform(0, n - 1);
  }
  for (auto _ : state) {
    Machine m;
    const tree::EulerTour tour = tree::euler_tour(m, t, {0, 0});
    benchmark::DoNotOptimize(tree::lca(m, t, tour, queries, {0, 0}));
    bench::report(state, "tree/lca", static_cast<double>(2 * (n - 1)),
                  m.metrics());
  }
}
BENCHMARK(BM_Lca)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

/// Fixed-size shape sweep: the adversarial generator families from the
/// fuzzer, benchmarked head-to-head at n = 512.
void BM_EulerTourShape(benchmark::State& state) {
  const index_t n = 512;
  testing::TreeShape shape = testing::TreeShape::kPath;
  switch (state.range(0)) {
    case 0: shape = testing::TreeShape::kPath; break;
    case 1: shape = testing::TreeShape::kStar; break;
    case 2: shape = testing::TreeShape::kCaterpillar; break;
    case 3: shape = testing::TreeShape::kBalancedBinary; break;
    default: shape = testing::TreeShape::kRandomPrufer; break;
  }
  const std::string name =
      std::string("tree/euler/") + testing::to_string(shape);
  const tree::DenseTree t = bench_tree(n, shape, 59);
  for (auto _ : state) {
    Machine m;
    benchmark::DoNotOptimize(tree::euler_tour(m, t, {0, 0}));
    bench::report(state, name, static_cast<double>(2 * (n - 1)),
                  m.metrics());
  }
}
BENCHMARK(BM_EulerTourShape)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Arg(4)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  scm::util::Cli cli(argc, argv);
  scm::bench::configure_sweep(cli);
  scm::util::ProfileSession profile(cli);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  profile.finish();

  scm::bench::print_series(
      "Tree tier / Euler tour (sort + Wyllie ranking)", "tree/euler",
      {{"energy", false, 1.5, 0.35, "Theta(m^1.5 log m) worst case"},
       {"depth", true, 3.0, 0.7, "O(log^3 n)"},
       {"distance", false, 0.5, 0.35, "O(sqrt m log m)"}});
  scm::bench::print_series(
      "Tree tier / rootfix + leaffix (segmented scans on the tour)",
      "tree/reduce",
      {{"energy", false, 1.5, 0.35, "Theta(m^1.5 log m) worst case"},
       {"depth", true, 3.0, 0.7, "O(log^3 n)"},
       {"distance", false, 0.5, 0.35, "O(sqrt m log m)"}});
  scm::bench::print_series(
      "Tree tier / rake-and-compress contraction", "tree/contract",
      {{"energy", false, 1.5, 0.35, "O(m^1.5 log n)"},
       {"depth", true, 3.0, 0.9, "O(log^2 n) rounds x O(log n)"},
       {"distance", false, 0.5, 0.35, "O(sqrt m log n)"}});
  scm::bench::print_series(
      "Tree tier / batched LCA (tour + RMQ), q = n/4", "tree/lca",
      {{"energy", false, 1.5, 0.35, "Theta(m^1.5 log m) worst case"},
       {"depth", true, 3.0, 0.9, "O(log^3 n)"},
       {"distance", false, 0.5, 0.45, "O(sqrt m log m)"}});
  for (const char* shape :
       {"tree/euler/path", "tree/euler/star", "tree/euler/caterpillar",
        "tree/euler/balanced-binary", "tree/euler/random-prufer"}) {
    scm::bench::print_series(std::string("tree shape: ") + shape, shape,
                             {});
  }
  return 0;
}
