// Section IV-C scan design-space ablation: the naive 1-D binary-tree scan
// pays Omega(n log n) energy, the sequential scan pays Omega(n) depth, and
// the paper's 2-D Z-order scan achieves Theta(n) energy AND O(log n)
// depth simultaneously.
#include "bench_common.hpp"

#include "collectives/baselines.hpp"
#include "collectives/scan.hpp"
#include "spatial/rng.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace scm;

std::vector<long long> input(index_t n) {
  const auto vals = random_ints(3, static_cast<size_t>(n), -100, 100);
  return {vals.begin(), vals.end()};
}

void BM_ZOrderScan(benchmark::State& state) {
  const index_t n = state.range(0);
  if (bench::skip_outside_sweep(state, n)) return;
  const auto v = input(n);
  for (auto _ : state) {
    Machine m;
    auto a = GridArray<long long>::from_values_square({0, 0}, v);
    benchmark::DoNotOptimize(scan(m, a, Plus{}));
    bench::report(state, "scan2d", static_cast<double>(n), m.metrics());
  }
}
BENCHMARK(BM_ZOrderScan)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Arg(65536)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_TreeScan1D(benchmark::State& state) {
  const index_t n = state.range(0);
  if (bench::skip_outside_sweep(state, n)) return;
  const auto v = input(n);
  for (auto _ : state) {
    Machine m;
    auto a = GridArray<long long>::from_values_square({0, 0}, v,
                                                      Layout::kRowMajor);
    benchmark::DoNotOptimize(tree_scan_1d(m, a, Plus{}));
    bench::report(state, "tree_scan_1d", static_cast<double>(n),
                  m.metrics());
  }
}
BENCHMARK(BM_TreeScan1D)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Arg(65536)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_TreeScanZOrder(benchmark::State& state) {
  // Ablation: the same binary tree on a Z-order layout — linear energy
  // again, isolating the layout as the source of the energy win.
  const index_t n = state.range(0);
  if (bench::skip_outside_sweep(state, n)) return;
  const auto v = input(n);
  for (auto _ : state) {
    Machine m;
    auto a = GridArray<long long>::from_values_square({0, 0}, v,
                                                      Layout::kZOrder);
    benchmark::DoNotOptimize(tree_scan_1d(m, a, Plus{}));
    bench::report(state, "tree_scan_zorder", static_cast<double>(n),
                  m.metrics());
  }
}
BENCHMARK(BM_TreeScanZOrder)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Arg(65536)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_SequentialScan(benchmark::State& state) {
  const index_t n = state.range(0);
  if (bench::skip_outside_sweep(state, n)) return;
  const auto v = input(n);
  for (auto _ : state) {
    Machine m;
    auto a = GridArray<long long>::from_values_square({0, 0}, v);
    benchmark::DoNotOptimize(sequential_scan(m, a, Plus{}));
    bench::report(state, "sequential_scan", static_cast<double>(n),
                  m.metrics());
  }
}
BENCHMARK(BM_SequentialScan)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Arg(65536)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  scm::util::Cli cli(argc, argv);
  scm::bench::configure_sweep(cli);
  scm::util::ProfileSession profile(cli);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  profile.finish();

  scm::bench::print_series(
      "2-D Z-order scan (Lemma IV.3): optimal on both axes", "scan2d",
      {{"energy", false, 1.0, 0.1, "Theta(n)"},
       {"depth", true, 1.0, 0.25, "O(log n)"}});
  scm::bench::print_series(
      "1-D binary-tree scan baseline: low depth, log-factor energy",
      "tree_scan_1d",
      {{"energy", false, 1.0, 0.25, "Theta(n log n)"},
       {"depth", true, 1.0, 0.4, "O(log n)"}});
  scm::bench::print_series(
      "Ablation: binary tree on a Z-order layout (layout, not arity, "
      "drives the energy)",
      "tree_scan_zorder",
      {{"energy", false, 1.0, 0.1, "Theta(n)"},
       {"depth", true, 1.0, 0.4, "O(log n)"}});
  scm::bench::print_series(
      "Sequential scan baseline: optimal energy, linear depth",
      "sequential_scan",
      {{"energy", false, 1.0, 0.05, "Theta(n)"},
       {"depth", false, 1.0, 0.05, "Theta(n)"}});
  scm::bench::print_ratio(
      "Energy ratio tree-scan / 2-D scan (paper: grows ~ log n)",
      "tree_scan_1d", "scan2d", "energy");
  scm::bench::print_ratio(
      "Depth ratio sequential / 2-D scan (paper: Theta(n / log n))",
      "sequential_scan", "scan2d", "depth");
  return 0;
}
