// Observation 1 (Section III): sending one message along each edge of the
// Z-order traversal of a sqrt(n) x sqrt(n) subgrid costs O(n) energy —
// the locality fact underlying the scan, the merge recursion, and the
// Z-order processor indexing throughout the paper.
#include "bench_common.hpp"

#include "spatial/machine.hpp"
#include "spatial/zorder.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace scm;

void BM_ZOrderWalk(benchmark::State& state) {
  const index_t side = state.range(0);
  if (bench::skip_outside_sweep(state, side)) return;
  for (auto _ : state) {
    Machine m;
    const Rect r{0, 0, side, side};
    Clock c{};
    for (index_t i = 1; i < r.size(); ++i) {
      c = m.send(zorder_coord(r, i - 1), zorder_coord(r, i), c);
    }
    benchmark::DoNotOptimize(c);
    bench::report(state, "zorder-walk", static_cast<double>(side * side),
                  m.metrics());
  }
}
BENCHMARK(BM_ZOrderWalk)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Arg(512)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_RowMajorWalk(benchmark::State& state) {
  // Comparison walk in row-major order (also linear, with a smaller
  // constant, but without the recursive-block locality the algorithms
  // exploit).
  const index_t side = state.range(0);
  if (bench::skip_outside_sweep(state, side)) return;
  for (auto _ : state) {
    Machine m;
    const Rect r{0, 0, side, side};
    Clock c{};
    for (index_t i = 1; i < r.size(); ++i) {
      c = m.send(r.at((i - 1) / side, (i - 1) % side),
                 r.at(i / side, i % side), c);
    }
    benchmark::DoNotOptimize(c);
    bench::report(state, "rowmajor-walk", static_cast<double>(side * side),
                  m.metrics());
  }
}
BENCHMARK(BM_RowMajorWalk)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  scm::util::Cli cli(argc, argv);
  scm::bench::configure_sweep(cli);
  scm::util::ProfileSession profile(cli);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  profile.finish();

  scm::bench::print_series(
      "Z-order curve walk (Observation 1)", "zorder-walk",
      {{"energy", false, 1.0, 0.05, "O(n)"}});
  scm::bench::print_series("Row-major walk (comparison)", "rowmajor-walk",
                           {{"energy", false, 1.0, 0.05, "O(n)"}});
  return 0;
}
