// Table I, row "Parallel Scan" (Section IV, Lemma IV.3):
//   energy Theta(n), depth O(log n), distance Theta(sqrt n).
//
// Sweeps the energy-optimal Z-order scan over power-of-four input sizes
// and fits the measured growth shapes against the claims.
#include "bench_common.hpp"

#include "collectives/scan.hpp"
#include "spatial/rng.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace scm;

void BM_Scan(benchmark::State& state) {
  const index_t n = state.range(0);
  if (bench::skip_outside_sweep(state, n)) return;
  const auto vals = random_ints(1, static_cast<size_t>(n), -100, 100);
  const std::vector<long long> v(vals.begin(), vals.end());
  for (auto _ : state) {
    Machine m;
    auto a = GridArray<long long>::from_values_square({0, 0}, v);
    benchmark::DoNotOptimize(scan(m, a, Plus{}));
    bench::report(state, "scan", static_cast<double>(n), m.metrics());
  }
}
BENCHMARK(BM_Scan)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Arg(65536)
    ->Arg(262144)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_SegmentedScan(benchmark::State& state) {
  const index_t n = state.range(0);
  if (bench::skip_outside_sweep(state, n)) return;
  const auto vals = random_ints(2, static_cast<size_t>(n), -100, 100);
  std::vector<Seg<long long>> sv;
  std::mt19937_64 rng(7);
  for (size_t i = 0; i < vals.size(); ++i) {
    sv.push_back({vals[i], i == 0 || rng() % 16 == 0});
  }
  for (auto _ : state) {
    Machine m;
    auto a = GridArray<Seg<long long>>::from_values_square({0, 0}, sv);
    benchmark::DoNotOptimize(segmented_scan(m, a, Plus{}));
    bench::report(state, "segmented_scan", static_cast<double>(n),
                  m.metrics());
  }
}
BENCHMARK(BM_SegmentedScan)
    ->Arg(1024)
    ->Arg(16384)
    ->Arg(262144)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  scm::util::Cli cli(argc, argv);
  scm::bench::configure_sweep(cli);
  scm::util::ProfileSession profile(cli);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  profile.finish();

  scm::bench::print_series(
      "Table I / Parallel Scan (Lemma IV.3)", "scan",
      {{"energy", false, 1.0, 0.1, "Theta(n)"},
       {"depth", true, 1.0, 0.25, "O(log n)"},
       {"distance", false, 0.5, 0.15, "Theta(sqrt n)"}});
  scm::bench::print_series(
      "Segmented scan (same algorithm, segmented operator)",
      "segmented_scan",
      {{"energy", false, 1.0, 0.1, "Theta(n)"},
       {"depth", true, 1.0, 0.25, "O(log n)"}});
  return 0;
}
