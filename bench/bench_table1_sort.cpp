// Table I, row "Sorting" (Section V, Theorem V.8):
//   energy Theta(n^{3/2}), depth O(log^3 n), distance Theta(sqrt n).
//
// Sweeps the energy-optimal 2-D Mergesort over input sizes and key
// distributions and fits the measured growth shapes against the claims.
#include "bench_common.hpp"

#include "sort/mergesort2d.hpp"
#include "spatial/rng.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace scm;

std::vector<double> make_input(index_t n, int distribution) {
  switch (distribution) {
    case 1: {  // already sorted
      std::vector<double> v;
      for (index_t i = 0; i < n; ++i) v.push_back(static_cast<double>(i));
      return v;
    }
    case 2: {  // reversed
      std::vector<double> v;
      for (index_t i = 0; i < n; ++i) v.push_back(static_cast<double>(n - i));
      return v;
    }
    default:
      return random_doubles(9, static_cast<size_t>(n));
  }
}

void BM_Mergesort2D(benchmark::State& state) {
  const index_t n = state.range(0);
  if (bench::skip_outside_sweep(state, n)) return;
  const auto v = make_input(n, 0);
  for (auto _ : state) {
    Machine m;
    auto a = GridArray<double>::from_values_square({0, 0}, v,
                                                   Layout::kRowMajor);
    benchmark::DoNotOptimize(mergesort2d(m, a));
    bench::report(state, "mergesort2d", static_cast<double>(n), m.metrics());
  }
}
// Sizes start at 256: below that the constant-size gather-sort-scatter
// base case dominates and the fitted exponent is pre-asymptotic.
BENCHMARK(BM_Mergesort2D)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_Mergesort2D_Distribution(benchmark::State& state) {
  const index_t n = 4096;
  const auto v = make_input(n, static_cast<int>(state.range(0)));
  const char* names[] = {"random", "sorted", "reversed"};
  for (auto _ : state) {
    Machine m;
    auto a = GridArray<double>::from_values_square({0, 0}, v,
                                                   Layout::kRowMajor);
    benchmark::DoNotOptimize(mergesort2d(m, a));
    bench::report(state,
                  std::string("mergesort2d/") + names[state.range(0)],
                  static_cast<double>(n), m.metrics());
  }
}
BENCHMARK(BM_Mergesort2D_Distribution)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  scm::util::Cli cli(argc, argv);
  scm::bench::configure_sweep(cli);
  scm::util::ProfileSession profile(cli);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  profile.finish();

  scm::bench::print_series(
      "Table I / Sorting = 2-D Mergesort (Theorem V.8)", "mergesort2d",
      {{"energy", false, 1.5, 0.15, "Theta(n^1.5)"},
       {"depth", true, 3.0, 0.8, "O(log^3 n)"},
       {"distance", false, 0.5, 0.25, "Theta(sqrt n)"}});
  std::printf(
      "\n(input-distribution sensitivity at n=4096: sorted/reversed inputs "
      "appear as\n separate one-row series in the counters above; the "
      "algorithm is data-oblivious\n up to tie-breaking, so their costs "
      "differ only by routing constants)\n");
  return 0;
}
