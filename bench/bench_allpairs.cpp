// Lemma V.5: All-Pairs Sort costs O(n^{5/2}) energy, O(log n) depth, and
// O(n) distance — the exploded-grid auxiliary sorter whose low depth the
// merge machinery buys with super-quadratic energy on sqrt(n)-sized
// samples.
#include "bench_common.hpp"

#include "sort/allpairs.hpp"
#include "spatial/rng.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace scm;

void BM_AllPairs(benchmark::State& state) {
  const index_t n = state.range(0);
  if (bench::skip_outside_sweep(state, n)) return;
  const auto v = random_doubles(23, static_cast<size_t>(n));
  for (auto _ : state) {
    Machine m;
    auto a = GridArray<double>::from_values_square({0, 0}, v);
    benchmark::DoNotOptimize(allpairs_sort(m, a, std::less<double>{}));
    bench::report(state, "allpairs", static_cast<double>(n), m.metrics());
  }
}
BENCHMARK(BM_AllPairs)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  const scm::util::Cli cli(argc, argv);
  scm::bench::configure_sweep(cli);
  cli.warn_unknown();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  scm::bench::print_series(
      "All-Pairs Sort (Lemma V.5)", "allpairs",
      {{"energy", false, 2.5, 0.2, "O(n^{5/2})"},
       {"depth", true, 1.0, 0.35, "O(log n)"},
       {"distance", false, 1.0, 0.2, "O(n)"}});
  return 0;
}
