// Figure 2 discussion + Lemmas V.3/V.4 vs Theorem V.8: Bitonic Sort on the
// row-major 2-D grid layout pays Theta(n^{3/2} log n) energy and
// Theta(sqrt(n) log n) distance — a log factor worse than the 2-D
// Mergesort — while winning on depth (Theta(log^2 n) vs O(log^3 n)).
//
// This bench runs both sorters on identical inputs and prints the ratio
// series: who wins on each metric, by what factor, and how the factor
// trends with n (the energy ratio must grow ~ log n; the depth ratio must
// favour bitonic).
//
// Congestion robustness rides along: the head-to-head pair (BM_Bitonic /
// BM_Mergesort) runs with a per-iteration CongestionMap attached, so the
// peak-link-load and congested-clock series compare how the two sorters
// concentrate traffic on single links — the placement-quality signal the
// SCM's distance-only pricing cannot see. Fitted series are recorded in
// BENCH_simulator.json.
#include "bench_common.hpp"

#include "sort/bitonic.hpp"
#include "sort/mergesort2d.hpp"
#include "spatial/congestion.hpp"
#include "spatial/rng.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace scm;

void BM_Bitonic(benchmark::State& state) {
  const index_t n = state.range(0);
  if (bench::skip_outside_sweep(state, n)) return;
  const auto v = random_doubles(17, static_cast<size_t>(n));
  for (auto _ : state) {
    Machine m;
    CongestionMap congestion;
    m.set_trace(&congestion);
    auto a = GridArray<double>::from_values_square({0, 0}, v,
                                                   Layout::kRowMajor);
    bitonic_sort(m, a, std::less<double>{});
    m.set_trace(nullptr);
    benchmark::DoNotOptimize(a);
    bench::report(state, "bitonic", static_cast<double>(n), m.metrics());
    bench::report_congestion(state, "bitonic", static_cast<double>(n),
                             congestion);
  }
}
BENCHMARK(BM_Bitonic)
    ->Arg(64)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_BitonicSkewed(benchmark::State& state) {
  // Lemma V.4 on h x w subgrids with h = 16 w: energy
  // Theta(h^2 w + w^2 h log h) — the shape-dependence of the network's
  // cost on the grid mapping.
  const index_t w = state.range(0);
  if (bench::skip_outside_sweep(state, w)) return;
  const index_t h = 16 * w;
  const index_t n = h * w;
  const auto v = random_doubles(19, static_cast<size_t>(n));
  for (auto _ : state) {
    Machine m;
    GridArray<double> a(Rect{0, 0, h, w}, Layout::kRowMajor, n);
    for (index_t i = 0; i < n; ++i) a[i].value = v[static_cast<size_t>(i)];
    bitonic_sort(m, a, std::less<double>{});
    benchmark::DoNotOptimize(a);
    bench::report(state, "bitonic/skewed-16:1", static_cast<double>(n),
                  m.metrics());
  }
}
BENCHMARK(BM_BitonicSkewed)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_BitonicMerge(benchmark::State& state) {
  // Lemma V.3 in isolation: the merge network on a square subgrid is
  // Theta(n^{3/2}) energy (h^2 w + w^2 h with h = w = sqrt n) and
  // Theta(log n) depth — Fig. 2's 2-D layout.
  const index_t n = state.range(0);
  if (bench::skip_outside_sweep(state, n)) return;
  auto v = random_doubles(18, static_cast<size_t>(n));
  std::sort(v.begin(), v.begin() + n / 2);
  std::sort(v.begin() + n / 2, v.end(), std::greater<double>{});
  for (auto _ : state) {
    Machine m;
    auto a = GridArray<double>::from_values_square({0, 0}, v,
                                                   Layout::kRowMajor);
    bitonic_merge(m, a, std::less<double>{});
    benchmark::DoNotOptimize(a);
    bench::report(state, "bitonic_merge", static_cast<double>(n),
                  m.metrics());
  }
}
BENCHMARK(BM_BitonicMerge)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_Mergesort(benchmark::State& state) {
  const index_t n = state.range(0);
  if (bench::skip_outside_sweep(state, n)) return;
  const auto v = random_doubles(17, static_cast<size_t>(n));
  for (auto _ : state) {
    Machine m;
    CongestionMap congestion;
    m.set_trace(&congestion);
    auto a = GridArray<double>::from_values_square({0, 0}, v,
                                                   Layout::kRowMajor);
    benchmark::DoNotOptimize(mergesort2d(m, a));
    m.set_trace(nullptr);
    bench::report(state, "mergesort", static_cast<double>(n), m.metrics());
    bench::report_congestion(state, "mergesort", static_cast<double>(n),
                             congestion);
  }
}
// The low end (64-512) covers the log-log fit range the cost
// certificates and CI exponent check use; the high end pins the
// asymptotic trend of the bitonic/mergesort ratios.
BENCHMARK(BM_Mergesort)
    ->Arg(64)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  scm::util::Cli cli(argc, argv);
  scm::bench::configure_sweep(cli);
  scm::util::ProfileSession profile(cli);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  profile.finish();

  scm::bench::print_series(
      "Bitonic Sort, row-major 2-D layout (Lemma V.4)", "bitonic",
      {{"energy", false, 1.5, 0.2, "Theta(n^1.5 log n)"},
       {"depth", true, 2.0, 0.3, "Theta(log^2 n)"}});
  scm::bench::print_series(
      "Bitonic Sort on 16:1 skewed subgrids (Lemma V.4, h^2 w + w^2 h "
      "log h)",
      "bitonic/skewed-16:1",
      {{"energy", false, 1.5, 0.25, "dominated by h^2 w ~ n^1.5 here"}});
  scm::bench::print_series(
      "Bitonic Merge network, square subgrid (Lemma V.3)", "bitonic_merge",
      {{"energy", false, 1.5, 0.1, "Theta(h^2 w + w^2 h) = Theta(n^1.5)"},
       {"depth", true, 1.0, 0.3, "Theta(log n)"},
       {"distance", false, 0.5, 0.15, "Theta(w + h)"}});
  scm::bench::print_series(
      "2-D Mergesort (Theorem V.8)", "mergesort",
      {{"energy", false, 1.5, 0.15, "Theta(n^1.5)"},
       {"depth", true, 3.0, 0.8, "O(log^3 n)"}});
  scm::bench::print_ratio(
      "Energy ratio bitonic / mergesort (paper: grows ~ log n; bitonic is "
      "energy-suboptimal)",
      "bitonic", "mergesort", "energy");
  scm::bench::print_ratio(
      "Depth ratio bitonic / mergesort (paper: bitonic wins depth, "
      "log^2 vs log^3)",
      "bitonic", "mergesort", "depth");
  scm::bench::print_ratio(
      "Distance ratio bitonic / mergesort (paper: bitonic is "
      "distance-suboptimal by ~ log n)",
      "bitonic", "mergesort", "distance");
  scm::bench::print_ratio(
      "Peak link load ratio bitonic / mergesort (congestion robustness — "
      "diagnostic, outside the paper's three metrics)",
      "bitonic", "mergesort", "peak_link_load");
  scm::bench::print_ratio(
      "Congested clock ratio bitonic / mergesort (sum of per-phase peak "
      "link loads — diagnostic)",
      "bitonic", "mergesort", "congested_clock");
  std::printf("\n== Congestion growth fits (recorded in "
              "BENCH_simulator.json) ==\n");
  scm::bench::print_congestion_fit("bitonic", "peak_link_load");
  scm::bench::print_congestion_fit("mergesort", "peak_link_load");
  scm::bench::print_congestion_fit("bitonic", "congested_clock");
  scm::bench::print_congestion_fit("mergesort", "congested_clock");
  return 0;
}
