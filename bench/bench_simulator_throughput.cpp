// Microbenchmark of the simulator's cost-attribution hot path.
//
// Every simulated message pays Machine::charge + Machine::observe, so the
// events/sec of those paths bounds the input sizes every paper-claim bench
// can reach. The shapes cover the attribution regimes the algorithms
// produce:
//   * flat            — no phase scopes (pure counter adds);
//   * single_phase    — one active scope (the common leaf case);
//   * deep_recursive  — D nested scopes with distinct names, the worst
//                       case for per-event name deduplication (bitonic's
//                       per-step scopes under sort/merge/step nesting);
//   * repeated_name   — D nested scopes of one name (mergesort2d stacking
//                       "mergesort2d" at every recursion level), where
//                       costs must be attributed to the name exactly once;
//   * mixed_recursion — alternating sort/merge/step names, the realistic
//                       recursive profile.
//
// The *_profiled / *_witness shapes re-run the common cases with a
// Profiler TraceSink attached (tree only, then tree + critical-path
// witness), bounding the observability tax: the tree profiler must stay
// within 2x of the bare attribution path, per the acceptance bar recorded
// in BENCH_simulator.json.
//
// Results are tracked in BENCH_simulator.json (events/sec before and
// after the interned-PhaseId attribution engine); CI runs this bench with
// --benchmark_min_time=0.01 as a smoke test so regressions on the
// attribution path show up per PR.
#include "bench_common.hpp"

#include "spatial/bulk_ab.hpp"
#include "spatial/grid_array.hpp"
#include "spatial/machine.hpp"
#include "spatial/profile.hpp"

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

namespace {

using namespace scm;

constexpr int kEventsPerBatch = 4096;

// One batch of charged messages under whatever phase stack is active.
// Alternating unit-distance hops: every send is charged (distance 1) and
// runs the full charge + observe attribution path.
void run_event_batch(Machine& m) {
  Clock c{};
  for (int i = 0; i < kEventsPerBatch; ++i) {
    c = m.send({0, i & 1}, {0, (i & 1) ^ 1}, c);
    m.op();
  }
}

void measure(benchmark::State& state, Machine& m) {
  for (auto _ : state) {
    run_event_batch(m);
    benchmark::DoNotOptimize(m.metrics().energy);
  }
  state.SetItemsProcessed(state.iterations() * kEventsPerBatch);
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * kEventsPerBatch),
      benchmark::Counter::kIsRate);
}

void BM_Flat(benchmark::State& state) {
  Machine m;
  measure(state, m);
}
BENCHMARK(BM_Flat);

void BM_SinglePhase(benchmark::State& state) {
  Machine m;
  m.begin_phase("leaf");
  measure(state, m);
  m.end_phase();
}
BENCHMARK(BM_SinglePhase);

void BM_DeepRecursive(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  Machine m;
  for (int d = 0; d < depth; ++d) {
    m.begin_phase("level" + std::to_string(d));
  }
  measure(state, m);
  for (int d = 0; d < depth; ++d) m.end_phase();
}
BENCHMARK(BM_DeepRecursive)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_RepeatedName(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  Machine m;
  for (int d = 0; d < depth; ++d) m.begin_phase("mergesort2d");
  measure(state, m);
  for (int d = 0; d < depth; ++d) m.end_phase();
}
BENCHMARK(BM_RepeatedName)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_MixedRecursion(benchmark::State& state) {
  // The profile a recursive sort produces: a handful of distinct names,
  // each stacked many times.
  const int depth = static_cast<int>(state.range(0));
  static const std::vector<std::string> names = {
      "mergesort2d", "merge2d", "merge2d/step", "merge2d/base"};
  Machine m;
  for (int d = 0; d < depth; ++d) {
    m.begin_phase(names[static_cast<std::size_t>(d) % names.size()]);
  }
  measure(state, m);
  for (int d = 0; d < depth; ++d) m.end_phase();
}
BENCHMARK(BM_MixedRecursion)->Arg(16)->Arg(64);

// The tree-profiler tax on the common single-scope shape: same event
// batch, with the phase-tree Profiler (witness off) receiving every
// event. Acceptance: <= 2x slower than BM_SinglePhase.
void BM_SinglePhaseProfiled(benchmark::State& state) {
  Machine m;
  Profiler profiler;
  m.set_trace(&profiler);
  m.begin_phase("leaf");
  measure(state, m);
  m.end_phase();
  m.set_trace(nullptr);
}
BENCHMARK(BM_SinglePhaseProfiled);

// Deep distinct-name recursion with the profiler attached: the tree walk
// is O(1) per event (self counters only), so depth must not matter.
void BM_DeepRecursiveProfiled(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  Machine m;
  Profiler profiler;
  m.set_trace(&profiler);
  for (int d = 0; d < depth; ++d) {
    m.begin_phase("level" + std::to_string(d));
  }
  measure(state, m);
  for (int d = 0; d < depth; ++d) m.end_phase();
  m.set_trace(nullptr);
}
BENCHMARK(BM_DeepRecursiveProfiled)->Arg(16)->Arg(64);

// The congestion-sink tax on the common single-scope shape: the
// standalone CongestionMap routes every message (O(distance) per event —
// distance 1 here, so this measures its fixed per-message cost).
// Acceptance: <= 2x slower than BM_SinglePhase, matching the profiler's
// bar in BENCH_simulator.json.
void BM_SinglePhaseCongestion(benchmark::State& state) {
  Machine m;
  CongestionMap congestion;
  m.set_trace(&congestion);
  m.begin_phase("leaf");
  measure(state, m);
  m.end_phase();
  m.set_trace(nullptr);
}
BENCHMARK(BM_SinglePhaseCongestion);

// Tree profiler + critical-path witness recorder: adds the per-event
// witness append + two hash try_emplaces. This is the opt-in worst case
// (--profile with witness on).
void BM_SinglePhaseWitness(benchmark::State& state) {
  Machine m;
  Profiler profiler(Profiler::Options{.witness = true, .load_map = false});
  m.set_trace(&profiler);
  m.begin_phase("leaf");
  // Reset per batch so the witness record stays bounded over the
  // benchmark's many iterations (a real profiled run records one
  // execution); amortized over 4096 events the reset is noise.
  for (auto _ : state) {
    run_event_batch(m);
    benchmark::DoNotOptimize(m.metrics().energy);
    m.reset();
  }
  state.SetItemsProcessed(state.iterations() * kEventsPerBatch);
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * kEventsPerBatch),
      benchmark::Counter::kIsRate);
  m.end_phase();
  m.set_trace(nullptr);
}
BENCHMARK(BM_SinglePhaseWitness);

// ---- Bulk-charging shapes -------------------------------------------------
//
// The same alternating unit-hop event stream, charged through one
// Machine::send_bulk + op_bulk call per batch instead of 4096 send/op
// pairs. The BM_Bulk* / scalar-shape ratios are the bulk engine's
// amortization win; acceptance (BENCH_simulator.json): >= 3x events/sec
// on the bulk shapes versus their scalar counterparts.

void run_bulk_event_batch(Machine& m, std::vector<MessageEvent>& batch) {
  batch.resize(kEventsPerBatch);
  for (int i = 0; i < kEventsPerBatch; ++i) {
    batch[static_cast<std::size_t>(i)] =
        MessageEvent{{0, i & 1}, {0, (i & 1) ^ 1}, 0, Clock{}, Clock{}};
  }
  m.send_bulk(batch);
  m.op_bulk(kEventsPerBatch);
}

void measure_bulk(benchmark::State& state, Machine& m) {
  std::vector<MessageEvent> batch;
  for (auto _ : state) {
    run_bulk_event_batch(m, batch);
    benchmark::DoNotOptimize(m.metrics().energy);
  }
  state.SetItemsProcessed(state.iterations() * kEventsPerBatch);
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * kEventsPerBatch),
      benchmark::Counter::kIsRate);
}

void BM_BulkFlat(benchmark::State& state) {
  Machine m;
  measure_bulk(state, m);
}
BENCHMARK(BM_BulkFlat);

void BM_BulkSinglePhase(benchmark::State& state) {
  Machine m;
  m.begin_phase("leaf");
  measure_bulk(state, m);
  m.end_phase();
}
BENCHMARK(BM_BulkSinglePhase);

void BM_BulkDeepRecursive(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  Machine m;
  for (int d = 0; d < depth; ++d) {
    m.begin_phase("level" + std::to_string(d));
  }
  measure_bulk(state, m);
  for (int d = 0; d < depth; ++d) m.end_phase();
}
BENCHMARK(BM_BulkDeepRecursive)->Arg(16)->Arg(64);

void BM_BulkSinglePhaseProfiled(benchmark::State& state) {
  Machine m;
  Profiler profiler;
  m.set_trace(&profiler);
  m.begin_phase("leaf");
  measure_bulk(state, m);
  m.end_phase();
  m.set_trace(nullptr);
}
BENCHMARK(BM_BulkSinglePhaseProfiled);

// Congestion sink on the bulk path: one on_send_bulk dispatch per 4096
// messages, each still routed link-by-link.
void BM_BulkSinglePhaseCongestion(benchmark::State& state) {
  Machine m;
  CongestionMap congestion;
  m.set_trace(&congestion);
  m.begin_phase("leaf");
  measure_bulk(state, m);
  m.end_phase();
  m.set_trace(nullptr);
}
BENCHMARK(BM_BulkSinglePhaseCongestion);

// End-to-end routing through the whole stack (GridArray coordinate cache,
// send_bulk, per-phase attribution): one Z-order -> row-major
// route_permutation of a 64x64 grid per iteration, under the scalar
// reference path and the bulk fast path. Identical algorithm code — only
// the process-wide charging mode differs.
constexpr index_t kRoutingSide = 64;

void run_routing(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(kRoutingSide * kRoutingSide);
  std::vector<int> values(n);
  for (std::size_t i = 0; i < n; ++i) values[i] = static_cast<int>(i);
  const Rect region = square_at({0, 0}, kRoutingSide);
  for (auto _ : state) {
    Machine m;
    const auto src =
        GridArray<int>::from_values(region, Layout::kZOrder, values);
    benchmark::DoNotOptimize(
        route_permutation(m, src, region, Layout::kRowMajor));
    benchmark::DoNotOptimize(m.metrics().energy);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(n),
      benchmark::Counter::kIsRate);
}

void BM_RoutingScalar(benchmark::State& state) {
  ScopedBulkCharging mode(false);
  run_routing(state);
}
BENCHMARK(BM_RoutingScalar);

void BM_RoutingBulk(benchmark::State& state) {
  ScopedBulkCharging mode(true);
  run_routing(state);
}
BENCHMARK(BM_RoutingBulk);

// ---- Sharded parallel-engine shapes ---------------------------------------
//
// One send_bulk of a whole-grid permutation per iteration, charged
// through the sharded parallel engine (spatial/parallel.*). Arg(1) runs
// with the engine off — the serial bulk loop — so the BM_ParallelSinglePhase
// series is the thread-scaling curve of the same work. The batch is built
// once and reused: send_bulk only rewrites distance/arrival, so every
// iteration charges identical work. Results and the acceptance bar (>= 3x
// events/sec at 8 threads on the 512x512 grid, on hosts with >= 8 cores)
// are recorded under "parallel_engine" in BENCH_simulator.json.

std::vector<MessageEvent> make_grid_batch(index_t rows, index_t cols) {
  std::vector<MessageEvent> batch;
  batch.reserve(static_cast<std::size_t>(rows * cols));
  for (index_t r = 0; r < rows; ++r) {
    for (index_t c = 0; c < cols; ++c) {
      // A fixed translation torus permutation: distinct sources, distinct
      // destinations (the independence discipline), multi-tile distances.
      batch.push_back(MessageEvent{
          {r, c}, {(r + 17) % rows, (c + 31) % cols}, 0, Clock{}, Clock{}});
    }
  }
  return batch;
}

void measure_parallel(benchmark::State& state, const parallel::Config& cfg,
                      index_t rows, index_t cols) {
  ScopedBulkCharging bulk(true);
  parallel::ScopedParallelEngine engine(cfg);
  std::vector<MessageEvent> batch = make_grid_batch(rows, cols);
  Machine m;
  m.begin_phase("leaf");
  for (auto _ : state) {
    m.send_bulk(batch);  // bulk-ok: begin_phase("leaf") above holds the phase
    benchmark::DoNotOptimize(m.metrics().energy);
  }
  m.end_phase();
  const auto n = static_cast<std::int64_t>(batch.size());
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * n),
      benchmark::Counter::kIsRate);
}

// Thread-scaling sweep on a 512x512 grid (262,144 messages per round).
void BM_ParallelSinglePhase(benchmark::State& state) {
  parallel::Config cfg;
  cfg.threads = static_cast<int>(state.range(0));  // 1 = engine off
  cfg.tile_rows = 64;
  cfg.tile_cols = 64;
  cfg.min_parallel_batch = 1;
  measure_parallel(state, cfg, 512, 512);
}
// UseRealTime on every parallel shape: the engine spends CPU on worker
// threads the main-thread CPU clock never sees, so wall clock is the only
// honest throughput basis (and the one the speedup ratios are quoted on).
BENCHMARK(BM_ParallelSinglePhase)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// Tile-size sweep at a fixed worker count on the same 512x512 grid.
void BM_ParallelTile(benchmark::State& state) {
  parallel::Config cfg;
  cfg.threads = 8;
  cfg.tile_rows = state.range(0);
  cfg.tile_cols = state.range(0);
  cfg.min_parallel_batch = 1;
  measure_parallel(state, cfg, 512, 512);
}
BENCHMARK(BM_ParallelTile)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->UseRealTime();

// WSE-2-scale round: 1024x832 = 851,968 processors, one message each —
// the full-wafer bulk step the events/sec figure in BENCH_simulator.json
// is quoted on.
void BM_ParallelWse2(benchmark::State& state) {
  parallel::Config cfg;
  cfg.threads = static_cast<int>(state.range(0));
  cfg.tile_rows = 64;
  cfg.tile_cols = 64;
  cfg.min_parallel_batch = 1;
  measure_parallel(state, cfg, 1024, 832);
}
BENCHMARK(BM_ParallelWse2)->Arg(1)->Arg(8)->UseRealTime();

// Phase-transition throughput: scope enter/exit pairs per second. The
// interned engine moves the dedup work here (per transition), so this
// guards the other side of the trade.
void BM_PhaseTransitions(benchmark::State& state) {
  Machine m;
  std::int64_t scopes = 0;
  for (auto _ : state) {
    for (int i = 0; i < 256; ++i) {
      Machine::PhaseScope outer(m, "outer");
      Machine::PhaseScope inner(m, "inner");
      benchmark::DoNotOptimize(&inner);
    }
    scopes += 512;
  }
  state.SetItemsProcessed(scopes);
}
BENCHMARK(BM_PhaseTransitions);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  const scm::util::Cli cli(argc, argv);
  scm::bench::configure_sweep(cli);
  cli.warn_unknown();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
