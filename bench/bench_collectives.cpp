// Lemma IV.1 / Corollary IV.2 and the Section II-A comparison: the
// quadrant broadcast/reduce cost O(hw + h log h) energy with O(log n)
// depth, while the binomial-tree collectives of prior work pay
// Theta(n log n) energy on square subgrids — a Theta(log n) separation.
#include "bench_common.hpp"

#include "collectives/baselines.hpp"
#include "collectives/broadcast.hpp"
#include "collectives/reduce.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace scm;

void BM_BroadcastSquare(benchmark::State& state) {
  const index_t side = state.range(0);
  if (bench::skip_outside_sweep(state, side)) return;
  for (auto _ : state) {
    Machine m;
    benchmark::DoNotOptimize(
        broadcast(m, Rect{0, 0, side, side}, Cell<int>{1, Clock{}}));
    bench::report(state, "broadcast", static_cast<double>(side * side),
                  m.metrics());
  }
}
BENCHMARK(BM_BroadcastSquare)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_BinomialBroadcastSquare(benchmark::State& state) {
  const index_t side = state.range(0);
  if (bench::skip_outside_sweep(state, side)) return;
  for (auto _ : state) {
    Machine m;
    benchmark::DoNotOptimize(
        binomial_broadcast(m, Rect{0, 0, side, side}, Cell<int>{1, Clock{}}));
    bench::report(state, "binomial_broadcast",
                  static_cast<double>(side * side), m.metrics());
  }
}
BENCHMARK(BM_BinomialBroadcastSquare)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_ReduceSquare(benchmark::State& state) {
  const index_t side = state.range(0);
  if (bench::skip_outside_sweep(state, side)) return;
  for (auto _ : state) {
    Machine m;
    GridArray<long long> a(Rect{0, 0, side, side}, Layout::kRowMajor,
                           side * side);
    for (index_t i = 0; i < a.size(); ++i) a[i].value = i;
    benchmark::DoNotOptimize(reduce(m, a, Plus{}));
    bench::report(state, "reduce", static_cast<double>(side * side),
                  m.metrics());
  }
}
BENCHMARK(BM_ReduceSquare)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_BroadcastSkewed(benchmark::State& state) {
  // h = 16 w subgrids: the h log h term of Lemma IV.1 becomes visible.
  const index_t w = state.range(0);
  if (bench::skip_outside_sweep(state, w)) return;
  const index_t h = 16 * w;
  for (auto _ : state) {
    Machine m;
    benchmark::DoNotOptimize(
        broadcast(m, Rect{0, 0, h, w}, Cell<int>{1, Clock{}}));
    bench::report(state, "broadcast/skewed-16:1",
                  static_cast<double>(h * w), m.metrics());
  }
}
BENCHMARK(BM_BroadcastSkewed)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  scm::util::Cli cli(argc, argv);
  scm::bench::configure_sweep(cli);
  scm::util::ProfileSession profile(cli);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  profile.finish();

  scm::bench::print_series(
      "Quadrant broadcast on square subgrids (Lemma IV.1)", "broadcast",
      {{"energy", false, 1.0, 0.1, "Theta(n)"},
       {"depth", true, 1.0, 0.3, "O(log n)"},
       {"distance", false, 0.5, 0.15, "O(sqrt n)"}});
  scm::bench::print_series(
      "Quadrant reduce on square subgrids (Corollary IV.2)", "reduce",
      {{"energy", false, 1.0, 0.1, "Theta(n)"},
       {"depth", true, 1.0, 0.3, "O(log n)"}});
  scm::bench::print_series(
      "Broadcast on 16:1 skewed subgrids (Lemma IV.1, hw + h log h)",
      "broadcast/skewed-16:1",
      {{"energy", false, 1.0, 0.2, "O(hw + h log h)"},
       {"depth", true, 1.0, 0.4, "O(log n)"}});
  scm::bench::print_series(
      "Binomial-tree broadcast baseline (Section II-A)",
      "binomial_broadcast",
      {{"energy", false, 1.0, 0.25, "Theta(n log n)"}});
  scm::bench::print_ratio(
      "Energy ratio binomial / quadrant broadcast (paper: grows ~ log n)",
      "binomial_broadcast", "broadcast", "energy");
  return 0;
}
