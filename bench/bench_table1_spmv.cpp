// Table I, row "SpMV" (Section VIII, Theorem VIII.2):
//   energy Theta(m^{3/2}), depth O(log^3 n), distance Theta(sqrt m),
//   for matrices with m = Theta(n) non-zeros.
//
// Sweeps the direct sort-and-scan SpMV over sizes and matrix families.
#include "bench_common.hpp"

#include "spmv/generators.hpp"
#include "spmv/spmv.hpp"
#include "spatial/rng.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace scm;

void BM_SpmvUniform(benchmark::State& state) {
  const index_t n = state.range(0);
  if (bench::skip_outside_sweep(state, n)) return;
  const CooMatrix a = random_uniform_matrix(n, 2 * n, 31);
  const auto x = random_doubles(32, static_cast<size_t>(n));
  for (auto _ : state) {
    Machine m;
    benchmark::DoNotOptimize(spmv(m, a, x));
    bench::report(state, "spmv", static_cast<double>(a.nnz()), m.metrics());
  }
}
BENCHMARK(BM_SpmvUniform)
    ->Arg(128)
    ->Arg(512)
    ->Arg(2048)
    ->Arg(8192)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_SpmvFamily(benchmark::State& state) {
  const index_t n = 1024;
  CooMatrix a(1, 1);
  const char* name = "";
  switch (state.range(0)) {
    case 0:
      a = random_uniform_matrix(n, 2 * n, 33);
      name = "spmv/uniform";
      break;
    case 1:
      a = banded_matrix(n, 1, 34);
      name = "spmv/banded";
      break;
    case 2:
      a = power_law_matrix(n, 64, 1.0, 35);
      name = "spmv/power-law";
      break;
    default:
      a = diagonal_matrix(random_doubles(36, static_cast<size_t>(n)));
      name = "spmv/diagonal";
      break;
  }
  const auto x = random_doubles(37, static_cast<size_t>(n));
  for (auto _ : state) {
    Machine m;
    benchmark::DoNotOptimize(spmv(m, a, x));
    bench::report(state, name, static_cast<double>(a.nnz()), m.metrics());
  }
}
BENCHMARK(BM_SpmvFamily)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  scm::util::Cli cli(argc, argv);
  scm::bench::configure_sweep(cli);
  scm::util::ProfileSession profile(cli);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  profile.finish();

  scm::bench::print_series(
      "Table I / SpMV (Theorem VIII.2), m = 2n uniform", "spmv",
      {{"energy", false, 1.5, 0.15, "Theta(m^1.5)"},
       {"depth", true, 3.0, 0.7, "O(log^3 n)"},
       {"distance", false, 0.5, 0.25, "Theta(sqrt m)"}});
  for (const char* family :
       {"spmv/uniform", "spmv/banded", "spmv/power-law", "spmv/diagonal"}) {
    scm::bench::print_series(std::string("matrix family: ") + family, family,
                             {});
  }
  return 0;
}
