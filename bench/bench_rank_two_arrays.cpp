// Lemma V.6: rank selection in two sorted arrays costs O(n^{5/4}) energy,
// O(log n) depth, and O(sqrt n) distance — dominated by the All-Pairs
// Sort of the sqrt(n)-sized sample.
#include "bench_common.hpp"

#include "sort/rank_select_sorted.hpp"
#include "spatial/rng.hpp"

#include <benchmark/benchmark.h>

#include <algorithm>

namespace {

using namespace scm;

struct Input {
  Rect parent;
  GridArray<double> a;
  GridArray<double> b;
};

Input make_input(index_t half) {
  auto va = random_doubles(41, static_cast<size_t>(half));
  auto vb = random_doubles(42, static_cast<size_t>(half));
  std::sort(va.begin(), va.end());
  std::sort(vb.begin(), vb.end());
  const Rect parent = square_at({0, 0}, square_side_for(2 * half));
  GridArray<double> a(parent, Layout::kZOrder, half, 0);
  GridArray<double> b(parent, Layout::kZOrder, half, half);
  for (index_t i = 0; i < half; ++i) {
    a[i].value = va[static_cast<size_t>(i)];
    b[i].value = vb[static_cast<size_t>(i)];
  }
  return Input{parent, std::move(a), std::move(b)};
}

void BM_RankTwoSorted(benchmark::State& state) {
  const index_t n = state.range(0);
  if (bench::skip_outside_sweep(state, n)) return;
  const Input in = make_input(n / 2);
  for (auto _ : state) {
    Machine m;
    benchmark::DoNotOptimize(rank_select_two_sorted(
        m, in.a, in.b, n / 2, in.parent.origin(), std::less<double>{}));
    bench::report(state, "rank2sorted", static_cast<double>(n), m.metrics());
  }
}
BENCHMARK(BM_RankTwoSorted)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Arg(65536)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_RankTwoSortedKSweep(benchmark::State& state) {
  const index_t n = 16384;
  const Input in = make_input(n / 2);
  const index_t k = state.range(0);
  for (auto _ : state) {
    Machine m;
    benchmark::DoNotOptimize(rank_select_two_sorted(
        m, in.a, in.b, k, in.parent.origin(), std::less<double>{}));
    bench::report(state, "rank2sorted/k-sweep", static_cast<double>(k),
                  m.metrics());
  }
}
BENCHMARK(BM_RankTwoSortedKSweep)
    ->Arg(1)
    ->Arg(4096)
    ->Arg(8192)
    ->Arg(16383)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  const scm::util::Cli cli(argc, argv);
  scm::bench::configure_sweep(cli);
  cli.warn_unknown();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  scm::bench::print_series(
      "Rank selection in two sorted arrays (Lemma V.6)", "rank2sorted",
      {{"energy", false, 1.25, 0.2, "O(n^{5/4})"},
       {"depth", true, 1.0, 0.5, "O(log n)"},
       {"distance", false, 0.5, 0.2, "O(sqrt n)"}});
  scm::bench::print_series("k sensitivity at n=16384",
                           "rank2sorted/k-sweep", {});
  return 0;
}
