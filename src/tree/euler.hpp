// Euler-tour construction on the Spatial Computer Model.
//
// Roots an unrooted tree and linearizes it: the 2(n-1) directed arcs of
// the doubled edge list are arranged in Euler-circuit order starting at
// the root's first arc, giving every vertex its parent, depth, and the
// first/last tour occurrence — the substrate rootfix/leaffix reductions
// (tree/reductions.hpp) and LCA (tree/lca.hpp) build on.
//
// Pipeline (all placement derived from `origin`, so the whole run is
// translation-invariant):
//   1. sort      — one mergesort2d of the arcs by (head vertex, arc id):
//                  arcs of a vertex become one contiguous segment.
//   2. segments  — neighbour hand-offs + a segmented First-broadcast give
//                  every arc its segment start position.
//   3. succ      — each arc computes the circuit successor OF ITS TWIN
//                  (the arc after itself, cyclically, in its own segment)
//                  and sends it across the twin bijection.
//   4. jump      — Wyllie pointer jumping over the successor list:
//                  O(log n) rounds of one request + one reply batch,
//                  each round in its own phase so the conformance
//                  checker's O(1)-residency window sees two arrivals per
//                  cell per epoch.
//   5. orient    — twin-rank exchange; an arc is a *down* arc iff its
//                  rank precedes its twin's.
//   6. route     — one permutation routing by rank into the tour square.
//   7. depth     — a +-1 prefix scan over the tour gives the depth of
//                  every arc's head.
//   8. deliver   — each down arc sends {parent, depth, first, last} to
//                  its head vertex's cell.
//
// Costs: the sort dominates energy at Theta(m^{3/2}); the jump rounds add
// O(m^{3/2} log m) worst-case energy and O(log m) depth; everything else
// is O(m) energy, O(log m) depth.
#pragma once

#include "spatial/grid_array.hpp"
#include "spatial/machine.hpp"
#include "tree/tree.hpp"

#include <vector>

namespace scm::tree {

/// Per-vertex output of the tour, resident at the vertex square.
struct VertexInfo {
  index_t parent{-1};  ///< dense parent id; -1 at the root
  index_t depth{0};
  index_t first{-1};  ///< tour rank of the arc entering the vertex
  index_t last{0};    ///< tour rank of the arc leaving it upward
};

/// One arc cell of the tour array (tour order, Z-order square).
struct TourArc {
  index_t from{0};
  index_t to{0};
  index_t twin_rank{0};
  bool down{false};
  index_t depth_to{0};  ///< depth of `to`, filled by the prefix scan
};

/// The tour: arc array in tour order, per-vertex info, and dense host
/// mirrors of the per-vertex fields (routing bookkeeping for the
/// downstream algorithms, in the spirit of graph/components.cpp).
struct EulerTour {
  index_t n{0};
  index_t m_arcs{0};
  index_t rank_rounds{0};  ///< Wyllie rounds taken by list ranking
  GridArray<TourArc> tour;
  GridArray<VertexInfo> verts;
  std::vector<index_t> parent;
  std::vector<index_t> depth;
  std::vector<index_t> first;
  std::vector<index_t> last;
};

/// Builds the tour of `t` rooted at dense vertex 0. The arc sort square
/// sits at `origin`; the vertex square to its right; the tour square
/// below it.
[[nodiscard]] EulerTour euler_tour(Machine& m, const DenseTree& t,
                                   Coord origin);

}  // namespace scm::tree
