#include "tree/lca.hpp"

#include "collectives/operators.hpp"
#include "collectives/scan.hpp"
#include "sort/mergesort2d.hpp"
#include "spatial/zorder.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <map>
#include <utility>

namespace scm::tree {

namespace {

/// One occurrence of a vertex on the tour, ordered by (depth, vertex); the
/// range minimum of a query's occurrence interval is its LCA.
struct Ent {
  index_t depth{std::numeric_limits<index_t>::max()};
  index_t vertex{std::numeric_limits<index_t>::max()};
};

[[nodiscard]] Ent min_ent(const Ent& a, const Ent& b) {
  if (a.depth != b.depth) return a.depth < b.depth ? a : b;
  return a.vertex <= b.vertex ? a : b;
}

struct Query {
  index_t a{0};
  index_t b{0};
  index_t seq{0};
  index_t i1{0};  ///< occurrence index of `a`'s first appearance
  index_t i2{0};  ///< occurrence index of `b`'s first appearance
};

struct ByA {
  bool operator()(const Query& x, const Query& y) const {
    if (x.a != y.a) return x.a < y.a;
    return x.seq < y.seq;
  }
};

struct ByB {
  bool operator()(const Query& x, const Query& y) const {
    if (x.b != y.b) return x.b < y.b;
    return x.seq < y.seq;
  }
};

/// Canonical 4-ary cover of [lo, hi] (inclusive): maximal aligned blocks,
/// left to right — the nodes the walk phase fetches. O(log) blocks.
[[nodiscard]] std::vector<std::pair<index_t, index_t>> rmq_cover(
    index_t lo, index_t hi) {
  std::vector<std::pair<index_t, index_t>> out;
  index_t pos = lo;
  while (pos <= hi) {
    index_t h = 0;
    index_t span = 1;
    while (pos % (span * 4) == 0 && pos + span * 4 - 1 <= hi) {
      span *= 4;
      ++h;
    }
    out.emplace_back(pos, h);
    pos += span;
  }
  return out;
}

constexpr index_t kGroup = 16;  ///< queries walked per conformance epoch

}  // namespace

LcaResult lca(Machine& m, const DenseTree& t, const EulerTour& tour,
              const std::vector<std::pair<index_t, index_t>>& queries,
              Coord origin) {
  (void)origin;  // placement is derived from the tour's own squares
  Machine::PhaseScope scope(m, "tree_lca");
  const index_t n = t.n;
  const index_t q = static_cast<index_t>(queries.size());
  LcaResult out;
  out.answers.assign(static_cast<size_t>(q), 0);
  if (q == 0) return out;
  for (const auto& [a, b] : queries) {
    assert(a >= 0 && a < n && b >= 0 && b < n);
    (void)a;
    (void)b;
  }
  if (n == 1) {
    m.op_bulk(q);  // every answer is the root, decided at the query cells
    return out;
  }

  const index_t m_arcs = tour.m_arcs;
  const index_t N = m_arcs + 1;  // occurrence sequence length
  const Rect tr = tour.tour.region();

  // ---- occ: materialize the occurrence array right of the tour square.
  const Coord occ_origin{tr.row0, tr.col0 + tr.rows};
  GridArray<Ent> occ =
      GridArray<Ent>::on_square(occ_origin, N, Layout::kZOrder);
  {
    Machine::PhaseScope op(m, "tree_lca/occ");
    occ[0] = Cell<Ent>{Ent{0, 0}, Clock{}};  // the root opens the tour
    std::vector<MessageEvent> batch(static_cast<size_t>(m_arcs));
    for (index_t r = 0; r < m_arcs; ++r) {
      batch[static_cast<size_t>(r)] =
          MessageEvent{tour.tour.coord(r), occ.coord(r + 1), 0,
                       tour.tour[r].clock, Clock{}};
    }
    m.send_bulk(batch);  // bulk-ok: occurrence slots are distinct
    for (index_t r = 0; r < m_arcs; ++r) {
      const TourArc& arc = tour.tour[r].value;
      occ[r + 1] = Cell<Ent>{Ent{arc.depth_to, arc.to},
                             batch[static_cast<size_t>(r)].arrival};
    }
    m.op_bulk(m_arcs);
  }

  // ---- rmq: 4-ary min upsweep. Node (lo, h) covers [lo, lo + 4^h) and
  // lives at Z-order position lo + h of the occurrence square (the scan
  // tree's placement: at most two values per cell). Children arrive in
  // four distinct-destination batches per level.
  struct NodeRec {
    Ent value;
    Clock clock;
  };
  std::map<std::pair<index_t, index_t>, NodeRec> nodes;
  const index_t capacity = occ.region().size();
  auto node_coord = [&](index_t lo, index_t h) {
    return h == 0 ? occ.coord(lo) : zorder_coord(occ.region(), lo + h);
  };
  {
    Machine::PhaseScope rp(m, "tree_lca/rmq");
    index_t span = 4;
    for (index_t h = 1; span <= capacity; span *= 4, ++h) {
      std::vector<std::pair<index_t, index_t>> level;  // (lo, child count)
      for (index_t lo = 0; lo < N; lo += span) level.emplace_back(lo, 0);
      for (int j = 0; j < 4; ++j) {
        std::vector<MessageEvent> batch;
        std::vector<index_t> batch_lo;
        for (auto& [lo, cnt] : level) {
          const index_t child_lo = lo + j * (span / 4);
          if (child_lo >= N) continue;
          const Clock c = (h == 1)
                              ? occ[child_lo].clock
                              : nodes.at({child_lo, h - 1}).clock;
          batch.push_back(MessageEvent{node_coord(child_lo, h - 1),
                                       node_coord(lo, h), 0, c, Clock{}});
          batch_lo.push_back(lo);
          ++cnt;
        }
        if (batch.empty()) continue;
        m.send_bulk(batch);  // bulk-ok: one child index per parent
        for (size_t k = 0; k < batch.size(); ++k) {
          const index_t lo = batch_lo[k];
          const index_t child_lo = lo + j * (span / 4);
          const Ent child = (h == 1)
                                ? occ[child_lo].value
                                : nodes.at({child_lo, h - 1}).value;
          auto [it, fresh] = nodes.try_emplace(
              {lo, h}, NodeRec{child, batch[k].arrival});
          if (!fresh) {
            it->second.value = min_ent(it->second.value, child);
            it->second.clock =
                Clock::join(it->second.clock, batch[k].arrival);
          }
        }
      }
      m.op_bulk(static_cast<index_t>(level.size()));
    }
  }

  // ---- endpoints: sort queries by each endpoint; segment leaders fetch
  // first[] from the vertex square, a segmented First-broadcast fans it
  // along the segment.
  const index_t q_side = square_side_for(q);
  const Coord q_origin{tr.row0, occ_origin.col + occ.region().cols};
  std::vector<Query> qs(static_cast<size_t>(q));
  for (index_t k = 0; k < q; ++k) {
    qs[static_cast<size_t>(k)] =
        Query{queries[static_cast<size_t>(k)].first,
              queries[static_cast<size_t>(k)].second, k, 0, 0};
  }
  GridArray<Query> sorted =
      GridArray<Query>::from_values_square(q_origin, qs, Layout::kZOrder);

  // Fetches first[key(cell)] + 1 for every cell of `arr` (sorted by key)
  // and stores it via `slot`. One request/reply pair per distinct key.
  auto fetch_occurrence = [&](GridArray<Query>& arr, auto key, auto slot) {
    Machine::PhaseScope ep(m, "tree_lca/endpoints");
    std::vector<char> leader(static_cast<size_t>(q), 0);
    leader[0] = 1;
    if (q > 1) {
      std::vector<MessageEvent> fwd(static_cast<size_t>(q - 1));
      for (index_t i = 1; i < q; ++i) {
        fwd[static_cast<size_t>(i - 1)] = MessageEvent{
            arr.coord(i - 1), arr.coord(i), 0, arr[i - 1].clock, Clock{}};
      }
      m.send_bulk(fwd);  // bulk-ok: a shift by one
      for (index_t i = 1; i < q; ++i) {
        arr[i].clock =
            Clock::join(arr[i].clock, fwd[static_cast<size_t>(i - 1)].arrival);
        leader[static_cast<size_t>(i)] =
            key(arr[i].value) != key(arr[i - 1].value) ? 1 : 0;
      }
    }
    // Request/reply across the vertex square (distinct keys => distinct
    // vertex cells in each batch).
    std::vector<MessageEvent> req;
    std::vector<index_t> req_i;
    for (index_t i = 0; i < q; ++i) {
      if (!leader[static_cast<size_t>(i)]) continue;
      req.push_back(MessageEvent{arr.coord(i),
                                 tour.verts.coord(key(arr[i].value)), 0,
                                 arr[i].clock, Clock{}});
      req_i.push_back(i);
    }
    m.send_bulk(req);  // bulk-ok: one distinct vertex per leader
    std::vector<MessageEvent> rep(req.size());
    for (size_t k = 0; k < req.size(); ++k) {
      const index_t v = key(arr[req_i[k]].value);
      rep[k] = MessageEvent{
          tour.verts.coord(v), req[k].from, 0,
          Clock::join(req[k].arrival, tour.verts[v].clock), Clock{}};
    }
    m.send_bulk(rep);  // bulk-ok: back to distinct leader cells
    // Broadcast within segments: occurrence index = first[v] + 1 (the
    // root's first is -1, so the formula is uniform).
    GridArray<Seg<index_t>> fan(arr.region(), Layout::kZOrder, q);
    for (index_t i = 0; i < q; ++i) {
      fan[i] = Cell<Seg<index_t>>{
          Seg<index_t>{0, leader[static_cast<size_t>(i)] != 0},
          arr[i].clock};
    }
    for (size_t k = 0; k < req.size(); ++k) {
      const index_t i = req_i[k];
      const index_t v = key(arr[i].value);
      fan[i].value.value = tour.first[static_cast<size_t>(v)] + 1;
      fan[i].clock = Clock::join(fan[i].clock, rep[k].arrival);
    }
    GridArray<Seg<index_t>> bc = segmented_scan(m, fan, First{});
    for (index_t i = 0; i < q; ++i) {
      slot(arr[i].value) = bc[i].value.value;
      arr[i].clock = Clock::join(arr[i].clock, bc[i].clock);
    }
    m.op_bulk(q);
  };

  sorted = mergesort2d(m, sorted, ByA{});
  fetch_occurrence(
      sorted, [](const Query& x) { return x.a; },
      [](Query& x) -> index_t& { return x.i1; });
  sorted = mergesort2d(m, sorted, ByB{});
  fetch_occurrence(
      sorted, [](const Query& x) { return x.b; },
      [](Query& x) -> index_t& { return x.i2; });

  // Back to query order, on a walk square below the sort square.
  std::vector<index_t> perm(static_cast<size_t>(q));
  for (index_t i = 0; i < q; ++i) {
    perm[static_cast<size_t>(i)] = sorted[i].value.seq;
  }
  const Coord walk_origin{q_origin.row + q_side, q_origin.col};
  GridArray<Query> walk = route_permutation(
      m, sorted, square_at(walk_origin, q_side), Layout::kZOrder, perm);

  // ---- walk: each query min-combines its canonical cover, in groups of
  // kGroup queries with one phase per step, so any single tree node cell
  // serves at most kGroup request/reply pairs per conformance epoch.
  std::vector<std::vector<std::pair<index_t, index_t>>> covers(
      static_cast<size_t>(q));
  for (index_t k = 0; k < q; ++k) {
    const Query& qu = walk[k].value;
    const index_t lo = std::min(qu.i1, qu.i2);
    const index_t hi = std::max(qu.i1, qu.i2);
    covers[static_cast<size_t>(k)] = rmq_cover(lo, hi);
    out.max_len = std::max(
        out.max_len,
        static_cast<index_t>(covers[static_cast<size_t>(k)].size()));
  }
  for (index_t g = 0; g < q; g += kGroup) {
    const index_t g_end = std::min(q, g + kGroup);
    ++out.groups;
    size_t max_steps = 0;
    for (index_t k = g; k < g_end; ++k) {
      max_steps = std::max(max_steps, covers[static_cast<size_t>(k)].size());
    }
    std::vector<Ent> best(static_cast<size_t>(g_end - g));
    std::vector<Clock> qc(static_cast<size_t>(g_end - g));
    for (index_t k = g; k < g_end; ++k) {
      qc[static_cast<size_t>(k - g)] = walk[k].clock;
    }
    for (size_t s = 0; s < max_steps; ++s) {
      Machine::PhaseScope wp(m, "tree_lca/walk");
      index_t active = 0;
      for (index_t k = g; k < g_end; ++k) {
        const auto& cov = covers[static_cast<size_t>(k)];
        if (s >= cov.size()) continue;
        const auto [lo, h] = cov[s];
        const Coord c = node_coord(lo, h);
        const Ent val =
            h == 0 ? occ[lo].value : nodes.at({lo, h}).value;
        const Clock nc =
            h == 0 ? occ[lo].clock : nodes.at({lo, h}).clock;
        Clock& mine = qc[static_cast<size_t>(k - g)];
        // Scalar sends: several queries of the group may hit the same
        // node, which a bulk batch's independence rule would reject.
        // bulk-ok: fan-in on shared RMQ nodes is inherent to the walk
        const Clock req = m.send(walk.coord(k), c, mine);
        const Clock rep =
            // bulk-ok: reply pairs with the request, same shared node
            m.send(c, walk.coord(k), Clock::join(req, nc));
        mine = Clock::join(mine, rep);
        best[static_cast<size_t>(k - g)] =
            min_ent(best[static_cast<size_t>(k - g)], val);
        ++out.walk_nodes;
        ++active;
      }
      m.op_bulk(active);
    }
    for (index_t k = g; k < g_end; ++k) {
      out.answers[static_cast<size_t>(k)] =
          best[static_cast<size_t>(k - g)].vertex;
      m.observe(qc[static_cast<size_t>(k - g)]);
    }
  }
  return out;
}

}  // namespace scm::tree
