#include "tree/euler.hpp"

#include "collectives/operators.hpp"
#include "collectives/scan.hpp"
#include "sort/mergesort2d.hpp"
#include "spatial/zorder.hpp"

#include <cassert>
#include <cstdint>
#include <utility>

namespace scm::tree {

namespace {

/// One directed arc of the doubled edge list, before ranking.
struct SortArc {
  index_t from{0};
  index_t to{0};
  index_t seq{0};  ///< arc id: 2e for (u,v), 2e+1 for (v,u)
};

struct ByFromSeq {
  bool operator()(const SortArc& a, const SortArc& b) const {
    if (a.from != b.from) return a.from < b.from;
    return a.seq < b.seq;
  }
};

constexpr index_t kNil = -1;

}  // namespace

EulerTour euler_tour(Machine& m, const DenseTree& t, Coord origin) {
  Machine::PhaseScope scope(m, "euler_tour");
  const index_t n = t.n;
  const index_t m_arcs = 2 * (n - 1);
  const index_t arc_side = square_side_for(std::max<index_t>(m_arcs, 1));
  const index_t vert_side = square_side_for(n);
  const Coord vert_origin{origin.row, origin.col + arc_side};
  const Coord tour_origin{origin.row + arc_side, origin.col};

  GridArray<VertexInfo> verts(square_at(vert_origin, vert_side),
                              Layout::kRowMajor, n);
  verts[0].value = VertexInfo{-1, 0, -1, m_arcs};  // root facts are constants
  EulerTour out{n,
                m_arcs,
                0,
                GridArray<TourArc>(square_at(tour_origin, arc_side),
                                   Layout::kZOrder, m_arcs),
                std::move(verts),
                std::vector<index_t>(static_cast<size_t>(n), -1),
                std::vector<index_t>(static_cast<size_t>(n), 0),
                std::vector<index_t>(static_cast<size_t>(n), -1),
                std::vector<index_t>(static_cast<size_t>(n), 0)};
  out.last[0] = m_arcs;
  if (n == 1) return out;

  // ---- 1. sort: arcs by (head, arc id) on the square at `origin`.
  std::vector<SortArc> arcs;
  arcs.reserve(static_cast<size_t>(m_arcs));
  for (size_t e = 0; e < t.edges.size(); ++e) {
    const auto& [u, v] = t.edges[e];
    arcs.push_back(SortArc{u, v, static_cast<index_t>(2 * e)});
    arcs.push_back(SortArc{v, u, static_cast<index_t>(2 * e + 1)});
  }
  GridArray<SortArc> grid =
      GridArray<SortArc>::from_values_square(origin, arcs, Layout::kZOrder);
  GridArray<SortArc> by = mergesort2d(m, grid, ByFromSeq{});

  // Host-side routing bookkeeping: the sorted order is fixed by the sort;
  // re-deriving positions from it is local (graph/components.cpp idiom).
  std::vector<index_t> pos_of_seq(static_cast<size_t>(m_arcs));
  for (index_t i = 0; i < m_arcs; ++i) {
    pos_of_seq[static_cast<size_t>(by[i].value.seq)] = i;
  }
  std::vector<index_t> twin_pos(static_cast<size_t>(m_arcs));
  for (index_t i = 0; i < m_arcs; ++i) {
    twin_pos[static_cast<size_t>(i)] =
        pos_of_seq[static_cast<size_t>(by[i].value.seq ^ 1)];
  }

  // ---- 2. segments: leader flags by simultaneous forward hand-offs,
  // next-in-segment flags by the backward hand-offs, segment start
  // positions by a segmented First broadcast of the leader's position.
  std::vector<char> leader(static_cast<size_t>(m_arcs), 0);
  std::vector<char> next_same(static_cast<size_t>(m_arcs), 0);
  std::vector<index_t> seg_lo(static_cast<size_t>(m_arcs), 0);
  {
    Machine::PhaseScope seg(m, "euler_tour/segments");
    std::vector<Clock> before(static_cast<size_t>(m_arcs));
    for (index_t i = 0; i < m_arcs; ++i) before[static_cast<size_t>(i)] = by[i].clock;
    // Forward: cell i learns whether it starts a segment.
    {
      std::vector<MessageEvent> fwd(static_cast<size_t>(m_arcs - 1));
      for (index_t i = 1; i < m_arcs; ++i) {
        fwd[static_cast<size_t>(i - 1)] =
            MessageEvent{by.coord(i - 1), by.coord(i), 0,
                         before[static_cast<size_t>(i - 1)], Clock{}};
      }
      m.send_bulk(fwd);  // bulk-ok: distinct destinations (a shift by one)
      leader[0] = 1;
      for (index_t i = 1; i < m_arcs; ++i) {
        by[i].clock = Clock::join(by[i].clock,
                                  fwd[static_cast<size_t>(i - 1)].arrival);
        leader[static_cast<size_t>(i)] =
            by[i].value.from != by[i - 1].value.from ? 1 : 0;
      }
      m.op_bulk(m_arcs);
    }
    // Backward: cell i learns whether i + 1 continues its segment.
    {
      std::vector<MessageEvent> bwd(static_cast<size_t>(m_arcs - 1));
      for (index_t i = 0; i + 1 < m_arcs; ++i) {
        bwd[static_cast<size_t>(i)] = MessageEvent{
            by.coord(i + 1), by.coord(i), 0, by[i + 1].clock, Clock{}};
      }
      m.send_bulk(bwd);  // bulk-ok: distinct destinations (a shift by one)
      for (index_t i = 0; i + 1 < m_arcs; ++i) {
        by[i].clock =
            Clock::join(by[i].clock, bwd[static_cast<size_t>(i)].arrival);
        next_same[static_cast<size_t>(i)] =
            leader[static_cast<size_t>(i + 1)] == 0 ? 1 : 0;
      }
      m.op_bulk(m_arcs);
    }
    // Segmented broadcast of the leader position (a position is local
    // identity — free — at the leader itself).
    GridArray<Seg<index_t>> fan(by.region(), Layout::kZOrder, m_arcs);
    for (index_t i = 0; i < m_arcs; ++i) {
      fan[i] = Cell<Seg<index_t>>{
          Seg<index_t>{i, leader[static_cast<size_t>(i)] != 0}, by[i].clock};
    }
    GridArray<Seg<index_t>> fanned = segmented_scan(m, fan, First{});
    for (index_t i = 0; i < m_arcs; ++i) {
      seg_lo[static_cast<size_t>(i)] = fanned[i].value.value;
      by[i].clock = Clock::join(by[i].clock, fanned[i].clock);
    }
  }

  // ---- 3. succ: each arc knows the circuit successor of its twin (the
  // arc after itself in its own segment, cyclic) and ships it across the
  // twin bijection. The start arc is sorted position 0 (the root is dense
  // id 0, so its segment leads the order); the arc whose successor would
  // be the start closes the circuit and gets nil.
  std::vector<index_t> succ(static_cast<size_t>(m_arcs), kNil);
  std::vector<index_t> dist(static_cast<size_t>(m_arcs), 0);
  {
    Machine::PhaseScope sp(m, "euler_tour/succ");
    std::vector<MessageEvent> batch(static_cast<size_t>(m_arcs));
    std::vector<index_t> carried(static_cast<size_t>(m_arcs));
    for (index_t i = 0; i < m_arcs; ++i) {
      const index_t succ_of_twin = next_same[static_cast<size_t>(i)] != 0
                                       ? i + 1
                                       : seg_lo[static_cast<size_t>(i)];
      const index_t dst = twin_pos[static_cast<size_t>(i)];
      batch[static_cast<size_t>(i)] =
          MessageEvent{by.coord(i), by.coord(dst), 0, by[i].clock, Clock{}};
      carried[static_cast<size_t>(i)] = succ_of_twin;
    }
    m.send_bulk(batch);  // bulk-ok: the twin map is a bijection
    for (index_t i = 0; i < m_arcs; ++i) {
      const index_t dst = twin_pos[static_cast<size_t>(i)];
      by[dst].clock = Clock::join(by[dst].clock,
                                  batch[static_cast<size_t>(i)].arrival);
      const index_t s = carried[static_cast<size_t>(i)];
      succ[static_cast<size_t>(dst)] = s == 0 ? kNil : s;
      dist[static_cast<size_t>(dst)] = s == 0 ? 0 : 1;
    }
    m.op_bulk(m_arcs);
  }

  // ---- 4. jump: Wyllie pointer jumping. Invariant: dist[i] counts the
  // arcs in (i, succ[i]]; at convergence (succ nil) it is the distance to
  // the circuit's final arc. Each round reads a snapshot, then one
  // request batch (i -> succ[i], injective) and one reply batch carry the
  // successor's (succ, dist) back.
  index_t active = 0;
  for (index_t i = 0; i < m_arcs; ++i) {
    if (succ[static_cast<size_t>(i)] != kNil) ++active;
  }
  while (active > 0) {
    Machine::PhaseScope round(m, "euler_tour/jump");
    ++out.rank_rounds;
    const std::vector<index_t> succ_snap = succ;
    const std::vector<index_t> dist_snap = dist;
    std::vector<index_t> movers;
    movers.reserve(static_cast<size_t>(active));
    for (index_t i = 0; i < m_arcs; ++i) {
      if (succ_snap[static_cast<size_t>(i)] != kNil) movers.push_back(i);
    }
    std::vector<MessageEvent> req(movers.size());
    for (size_t k = 0; k < movers.size(); ++k) {
      const index_t i = movers[k];
      const index_t s = succ_snap[static_cast<size_t>(i)];
      req[k] = MessageEvent{by.coord(i), by.coord(s), 0, by[i].clock, Clock{}};
    }
    m.send_bulk(req);  // bulk-ok: succ is injective on the circuit
    std::vector<MessageEvent> rep(movers.size());
    for (size_t k = 0; k < movers.size(); ++k) {
      const index_t i = movers[k];
      const index_t s = succ_snap[static_cast<size_t>(i)];
      rep[k] = MessageEvent{by.coord(s), by.coord(i), 0,
                            Clock::join(req[k].arrival, by[s].clock), Clock{}};
    }
    m.send_bulk(rep);  // bulk-ok: replies return to distinct requesters
    active = 0;
    for (size_t k = 0; k < movers.size(); ++k) {
      const index_t i = movers[k];
      const index_t s = succ_snap[static_cast<size_t>(i)];
      by[i].clock = Clock::join(by[i].clock, rep[k].arrival);
      dist[static_cast<size_t>(i)] += dist_snap[static_cast<size_t>(s)];
      succ[static_cast<size_t>(i)] = succ_snap[static_cast<size_t>(s)];
      if (succ[static_cast<size_t>(i)] != kNil) ++active;
    }
    m.op_bulk(static_cast<index_t>(movers.size()));
  }
  std::vector<index_t> rank(static_cast<size_t>(m_arcs));
  for (index_t i = 0; i < m_arcs; ++i) {
    rank[static_cast<size_t>(i)] =
        (m_arcs - 1) - dist[static_cast<size_t>(i)];
  }

  // ---- 5. orient: twin-rank exchange; down iff rank < twin's rank.
  std::vector<index_t> twin_rank(static_cast<size_t>(m_arcs));
  {
    Machine::PhaseScope op(m, "euler_tour/orient");
    std::vector<MessageEvent> batch(static_cast<size_t>(m_arcs));
    for (index_t i = 0; i < m_arcs; ++i) {
      batch[static_cast<size_t>(i)] =
          MessageEvent{by.coord(i), by.coord(twin_pos[static_cast<size_t>(i)]),
                       0, by[i].clock, Clock{}};
    }
    m.send_bulk(batch);  // bulk-ok: the twin map is a bijection
    for (index_t i = 0; i < m_arcs; ++i) {
      const index_t dst = twin_pos[static_cast<size_t>(i)];
      by[dst].clock = Clock::join(by[dst].clock,
                                  batch[static_cast<size_t>(i)].arrival);
      twin_rank[static_cast<size_t>(dst)] = rank[static_cast<size_t>(i)];
    }
    m.op_bulk(m_arcs);
  }

  // ---- 6. route: by rank into the tour square.
  {
    Machine::PhaseScope rp(m, "euler_tour/route");
    GridArray<TourArc> staged(by.region(), Layout::kZOrder, m_arcs);
    for (index_t i = 0; i < m_arcs; ++i) {
      staged[i] = Cell<TourArc>{
          TourArc{by[i].value.from, by[i].value.to,
                  twin_rank[static_cast<size_t>(i)],
                  rank[static_cast<size_t>(i)] <
                      twin_rank[static_cast<size_t>(i)],
                  0},
          by[i].clock};
    }
    m.op_bulk(m_arcs);
    out.tour = route_permutation(m, staged, out.tour.region(),
                                 Layout::kZOrder, rank);
  }

  // ---- 7. depth: inclusive +-1 prefix over the tour; entry r of the
  // result is the depth of arc r's head (down arcs descend one level, up
  // arcs return to the parent's level).
  {
    Machine::PhaseScope dp(m, "euler_tour/depth");
    GridArray<std::int64_t> delta(out.tour.region(), Layout::kZOrder, m_arcs);
    for (index_t r = 0; r < m_arcs; ++r) {
      delta[r] = Cell<std::int64_t>{out.tour[r].value.down ? 1 : -1,
                                    out.tour[r].clock};
    }
    m.op_bulk(m_arcs);
    GridArray<std::int64_t> prefix = scan(m, delta, Plus{});
    for (index_t r = 0; r < m_arcs; ++r) {
      out.tour[r].value.depth_to =
          static_cast<index_t>(prefix[r].value);
      out.tour[r].clock = Clock::join(out.tour[r].clock, prefix[r].clock);
    }
    m.op_bulk(m_arcs);
  }

  // ---- 8. deliver: each down arc ships {parent, depth, first, last} to
  // its head vertex's cell (one down arc per non-root vertex: distinct
  // destinations).
  {
    Machine::PhaseScope dl(m, "euler_tour/deliver");
    std::vector<index_t> down_ranks;
    down_ranks.reserve(static_cast<size_t>(n - 1));
    for (index_t r = 0; r < m_arcs; ++r) {
      if (out.tour[r].value.down) down_ranks.push_back(r);
    }
    assert(static_cast<index_t>(down_ranks.size()) == n - 1);
    std::vector<MessageEvent> batch(down_ranks.size());
    for (size_t k = 0; k < down_ranks.size(); ++k) {
      const index_t r = down_ranks[k];
      batch[k] = MessageEvent{out.tour.coord(r),
                              out.verts.coord(out.tour[r].value.to), 0,
                              out.tour[r].clock, Clock{}};
    }
    m.send_bulk(batch);  // bulk-ok: one down arc per vertex
    for (size_t k = 0; k < down_ranks.size(); ++k) {
      const index_t r = down_ranks[k];
      const TourArc& a = out.tour[r].value;
      out.verts[a.to] =
          Cell<VertexInfo>{VertexInfo{a.from, a.depth_to, r, a.twin_rank},
                           batch[k].arrival};
    }
    m.op_bulk(n - 1);
  }

  // Dense host mirrors for downstream routing decisions.
  for (index_t v = 0; v < n; ++v) {
    const VertexInfo& info = out.verts[v].value;
    out.parent[static_cast<size_t>(v)] = info.parent;
    out.depth[static_cast<size_t>(v)] = info.depth;
    out.first[static_cast<size_t>(v)] = info.first;
    out.last[static_cast<size_t>(v)] = info.last;
  }
  return out;
}

}  // namespace scm::tree
