// Rootfix and leaffix tree reductions over an Euler tour.
//
// Given per-vertex values x_v and a *group* operator (associative op with
// an inverse), both reductions become one prefix scan over the tour
// (Tarjan–Vishkin):
//
//   rootfix(v)  = op over the root-to-v path (inclusive). Each down arc
//                 contributes the entered vertex's value, each up arc the
//                 inverse of the departed vertex's value; adjacent
//                 cancellation makes the inclusive prefix at v's entering
//                 arc exactly the path product. The root's value is folded
//                 into the first arc's contribution.
//
//   leaffix(v)  = op over v's subtree in tour (pre)order. Down arcs
//                 contribute the entered value, up arcs the identity; the
//                 subtree product is inv(prefix[first(v) - 1]) o
//                 prefix[last(v)].
//
// Costs past the tour itself: O(m) energy and O(log m) depth per
// reduction (one fan-out batch, one scan, one delivery batch).
//
// Operators without an inverse (Min/Max) go through tree_contract
// (tree/contraction.hpp) instead, which needs commutativity but no
// inverse — the classic trade of the two primitives.
#pragma once

#include "collectives/operators.hpp"
#include "collectives/scan.hpp"
#include "spatial/grid_array.hpp"
#include "spatial/machine.hpp"
#include "tree/euler.hpp"

#include <vector>

namespace scm::tree {

/// rootfix over the tour: out[v] (dense ids) = op along root -> v,
/// inclusive. `inv` must invert `op` (a group); `values` is dense-indexed.
template <class T, class Op, class Inv>
[[nodiscard]] std::vector<T> rootfix(Machine& m, const EulerTour& tour,
                                     const std::vector<T>& values, Op op,
                                     Inv inv) {
  static_assert(is_associative_v<Op>,
                "rootfix scans require an associative operator");
  Machine::PhaseScope scope(m, "rootfix");
  const index_t n = tour.n;
  const index_t m_arcs = tour.m_arcs;
  GridArray<T> vals = GridArray<T>::from_values(
      tour.verts.region(), Layout::kRowMajor, values);
  std::vector<T> out(static_cast<size_t>(n));
  out[0] = values[0];
  if (m_arcs == 0) return out;

  // Fan the values onto the tour: v's entering (down) arc and departing
  // (up) arc each get x_v; the root's value rides a separate scalar send
  // to arc 0 so no destination repeats within a batch.
  GridArray<T> contrib(tour.tour.region(), Layout::kZOrder, m_arcs);
  {
    Machine::PhaseScope fan(m, "rootfix/fan");
    std::vector<MessageEvent> batch(static_cast<size_t>(2 * (n - 1)));
    for (index_t v = 1; v < n; ++v) {
      const Clock c = Clock::join(vals[v].clock, tour.verts[v].clock);
      const index_t f = tour.first[static_cast<size_t>(v)];
      const index_t l = tour.last[static_cast<size_t>(v)];
      batch[static_cast<size_t>(2 * (v - 1))] =
          MessageEvent{vals.coord(v), tour.tour.coord(f), 0, c, Clock{}};
      batch[static_cast<size_t>(2 * (v - 1) + 1)] =
          MessageEvent{vals.coord(v), tour.tour.coord(l), 0, c, Clock{}};
    }
    m.send_bulk(batch);  // bulk-ok: first/last ranks are all distinct
    for (index_t v = 1; v < n; ++v) {
      const index_t f = tour.first[static_cast<size_t>(v)];
      const index_t l = tour.last[static_cast<size_t>(v)];
      const T& x = values[static_cast<size_t>(v)];
      contrib[f] = Cell<T>{x, batch[static_cast<size_t>(2 * (v - 1))].arrival};
      contrib[l] = Cell<T>{inv(x),
                           batch[static_cast<size_t>(2 * (v - 1) + 1)].arrival};
    }
    const Clock root_arrived =
        m.send(vals.coord(0), tour.tour.coord(0), vals[0].clock);
    contrib[0] = Cell<T>{op(values[0], contrib[0].value),
                         Clock::join(contrib[0].clock, root_arrived)};
    m.op_bulk(m_arcs);
  }
  GridArray<T> prefix = scan(m, contrib, op);

  // Deliver: v's entering arc holds the inclusive path product.
  {
    Machine::PhaseScope dl(m, "rootfix/deliver");
    GridArray<T> res(tour.verts.region(), Layout::kRowMajor, n);
    std::vector<MessageEvent> batch(static_cast<size_t>(n - 1));
    for (index_t v = 1; v < n; ++v) {
      const index_t f = tour.first[static_cast<size_t>(v)];
      batch[static_cast<size_t>(v - 1)] = MessageEvent{
          prefix.coord(f), res.coord(v), 0, prefix[f].clock, Clock{}};
    }
    m.send_bulk(batch);  // bulk-ok: one entering arc per vertex
    for (index_t v = 1; v < n; ++v) {
      const index_t f = tour.first[static_cast<size_t>(v)];
      res[v] = Cell<T>{prefix[f].value,
                       batch[static_cast<size_t>(v - 1)].arrival};
      out[static_cast<size_t>(v)] = prefix[f].value;
      m.observe(res[v].clock);
    }
  }
  return out;
}

/// leaffix over the tour: out[v] (dense ids) = op over v's subtree in
/// tour preorder. Needs the group structure plus an explicit identity
/// (up arcs contribute it).
template <class T, class Op, class Inv>
[[nodiscard]] std::vector<T> leaffix(Machine& m, const EulerTour& tour,
                                     const std::vector<T>& values, Op op,
                                     Inv inv, T identity) {
  static_assert(is_associative_v<Op>,
                "leaffix scans require an associative operator");
  Machine::PhaseScope scope(m, "leaffix");
  const index_t n = tour.n;
  const index_t m_arcs = tour.m_arcs;
  GridArray<T> vals = GridArray<T>::from_values(
      tour.verts.region(), Layout::kRowMajor, values);
  std::vector<T> out(static_cast<size_t>(n));
  out[0] = values[0];
  if (m_arcs == 0) return out;

  GridArray<T> contrib(tour.tour.region(), Layout::kZOrder, m_arcs);
  {
    Machine::PhaseScope fan(m, "leaffix/fan");
    for (index_t r = 0; r < m_arcs; ++r) {
      contrib[r] = Cell<T>{identity, tour.tour[r].clock};
    }
    std::vector<MessageEvent> batch(static_cast<size_t>(n - 1));
    for (index_t v = 1; v < n; ++v) {
      const index_t f = tour.first[static_cast<size_t>(v)];
      batch[static_cast<size_t>(v - 1)] = MessageEvent{
          vals.coord(v), tour.tour.coord(f), 0,
          Clock::join(vals[v].clock, tour.verts[v].clock), Clock{}};
    }
    m.send_bulk(batch);  // bulk-ok: one entering arc per vertex
    for (index_t v = 1; v < n; ++v) {
      const index_t f = tour.first[static_cast<size_t>(v)];
      contrib[f] = Cell<T>{
          values[static_cast<size_t>(v)],
          Clock::join(contrib[f].clock,
                      batch[static_cast<size_t>(v - 1)].arrival)};
    }
    m.op_bulk(m_arcs);
  }
  GridArray<T> prefix = scan(m, contrib, op);

  // Deliver: two batches (the prefix *before* v's subtree, the prefix at
  // its end), combined at v's cell. The before-term is the identity — a
  // host constant, no message — when v's subtree opens the tour.
  {
    Machine::PhaseScope dl(m, "leaffix/deliver");
    GridArray<T> res(tour.verts.region(), Layout::kRowMajor, n);
    std::vector<T> before(static_cast<size_t>(n), identity);
    std::vector<Clock> before_clock(static_cast<size_t>(n));
    std::vector<MessageEvent> pre;
    std::vector<index_t> pre_v;
    pre.reserve(static_cast<size_t>(n - 1));
    pre_v.reserve(static_cast<size_t>(n - 1));
    for (index_t v = 1; v < n; ++v) {
      const index_t f = tour.first[static_cast<size_t>(v)];
      if (f == 0) continue;
      pre.push_back(MessageEvent{prefix.coord(f - 1), res.coord(v), 0,
                                 prefix[f - 1].clock, Clock{}});
      pre_v.push_back(v);
    }
    if (!pre.empty()) {
      m.send_bulk(pre);  // bulk-ok: one recipient vertex per entry
    }
    for (size_t k = 0; k < pre.size(); ++k) {
      const index_t v = pre_v[k];
      const index_t f = tour.first[static_cast<size_t>(v)];
      before[static_cast<size_t>(v)] = prefix[f - 1].value;
      before_clock[static_cast<size_t>(v)] = pre[k].arrival;
    }
    // Close-of-subtree terms: last(v) for v != root, and the full tour
    // total for the root — all distinct ranks, all distinct recipients.
    std::vector<MessageEvent> post(static_cast<size_t>(n));
    for (index_t v = 1; v < n; ++v) {
      const index_t l = tour.last[static_cast<size_t>(v)];
      post[static_cast<size_t>(v)] = MessageEvent{
          prefix.coord(l), res.coord(v), 0, prefix[l].clock, Clock{}};
    }
    post[0] = MessageEvent{prefix.coord(m_arcs - 1), res.coord(0), 0,
                           prefix[m_arcs - 1].clock, Clock{}};
    m.send_bulk(post);  // bulk-ok: one recipient vertex per entry
    for (index_t v = 1; v < n; ++v) {
      const index_t l = tour.last[static_cast<size_t>(v)];
      res[v] = Cell<T>{
          op(inv(before[static_cast<size_t>(v)]), prefix[l].value),
          Clock::join(before_clock[static_cast<size_t>(v)],
                      post[static_cast<size_t>(v)].arrival)};
      out[static_cast<size_t>(v)] = res[v].value;
    }
    res[0] = Cell<T>{op(values[0], prefix[m_arcs - 1].value),
                     Clock::join(vals[0].clock, post[0].arrival)};
    out[0] = res[0].value;
    m.op_bulk(n);
    m.observe(res.max_clock());
  }
  return out;
}

}  // namespace scm::tree
