// Tree-workload input representation and host-reference oracles.
//
// The spatial tree algorithms (Euler tour, rootfix/leaffix, contraction,
// LCA — the companion paper "Low-Depth Spatial Tree Algorithms", Baumann
// et al.) consume an unrooted tree as an edge list with a designated root.
// Vertex labels are arbitrary; before anything touches the Machine the
// tree is *normalized* to dense first-appearance ids (root becomes 0,
// then endpoints in edge-scan order). Every message the algorithms send
// is addressed through dense ids only, which makes all three metrics —
// and the per-link occupancy multiset — bit-identical under any vertex
// relabeling: the metamorphic oracle the fuzzer checks.
//
// The host references here are deliberately simple (adjacency walks,
// union-find, parent-chasing) and independent of the spatial pipeline;
// they are the functional oracles of the fuzzer properties and the unit
// tests.
#pragma once

#include "spatial/geometry.hpp"

#include <cassert>
#include <cstdint>
#include <numeric>
#include <utility>
#include <vector>

namespace scm::tree {

/// An unrooted tree on labeled vertices plus a designated root. Labels are
/// arbitrary ids in [0, n); edge order is meaningful (it fixes the Euler
/// tour's traversal order) and both orientations of an edge are legal.
struct Tree {
  index_t n{0};
  std::vector<std::pair<index_t, index_t>> edges;  ///< n - 1 edges
  index_t root{0};
};

/// Structural validity: n >= 1, exactly n - 1 edges with in-range distinct
/// endpoints, acyclic and connected (union-find), root in range.
[[nodiscard]] inline bool is_tree(const Tree& t) {
  if (t.n < 1) return false;
  if (t.root < 0 || t.root >= t.n) return false;
  if (static_cast<index_t>(t.edges.size()) != t.n - 1) return false;
  std::vector<index_t> parent(static_cast<size_t>(t.n));
  std::iota(parent.begin(), parent.end(), index_t{0});
  auto find = [&](index_t v) {
    while (parent[static_cast<size_t>(v)] != v) {
      parent[static_cast<size_t>(v)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(v)])];
      v = parent[static_cast<size_t>(v)];
    }
    return v;
  };
  for (const auto& [u, v] : t.edges) {
    if (u < 0 || u >= t.n || v < 0 || v >= t.n || u == v) return false;
    const index_t ru = find(u);
    const index_t rv = find(v);
    if (ru == rv) return false;  // cycle
    parent[static_cast<size_t>(ru)] = rv;
  }
  return true;  // n - 1 acyclic edges on n vertices => connected
}

/// The dense-id form of a tree: the root maps to 0, remaining vertices get
/// first-appearance ids in edge-scan order. Edge order and orientation are
/// preserved. `to_label` / `to_dense` convert between the two id spaces.
struct DenseTree {
  index_t n{0};
  std::vector<std::pair<index_t, index_t>> edges;  ///< dense endpoints
  std::vector<index_t> to_label;                   ///< dense -> original
  std::vector<index_t> to_dense;                   ///< original -> dense
};

/// First-appearance normalization. Precondition: is_tree(t).
[[nodiscard]] inline DenseTree normalize(const Tree& t) {
  assert(is_tree(t));
  DenseTree out;
  out.n = t.n;
  out.to_dense.assign(static_cast<size_t>(t.n), -1);
  out.to_label.reserve(static_cast<size_t>(t.n));
  auto dense_of = [&](index_t label) {
    index_t& d = out.to_dense[static_cast<size_t>(label)];
    if (d < 0) {
      d = static_cast<index_t>(out.to_label.size());
      out.to_label.push_back(label);
    }
    return d;
  };
  (void)dense_of(t.root);  // the root is dense id 0
  out.edges.reserve(t.edges.size());
  for (const auto& [u, v] : t.edges) {
    out.edges.emplace_back(dense_of(u), dense_of(v));
  }
  // A connected tree mentions every vertex in its edges (or n == 1).
  assert(static_cast<index_t>(out.to_label.size()) == t.n);
  return out;
}

/// Host reference of the Euler tour over a dense tree: per-vertex parent /
/// depth / first and last tour rank, derived by walking the circuit with
/// the same successor rule the spatial pipeline realizes (next arc after
/// the twin, cyclically, within the head vertex's arc list in edge-scan
/// order). first[root] == -1 and last[root] == 2 * (n - 1) by convention.
struct HostTour {
  std::vector<index_t> parent;  ///< dense parent; -1 at the root
  std::vector<index_t> depth;
  std::vector<index_t> first;  ///< tour rank of the arc entering v
  std::vector<index_t> last;   ///< tour rank of the arc leaving v upward
  std::vector<index_t> rank;   ///< arc id (2e / 2e+1) -> tour rank
};

[[nodiscard]] inline HostTour host_euler_tour(const DenseTree& t) {
  const index_t n = t.n;
  HostTour out;
  out.parent.assign(static_cast<size_t>(n), -1);
  out.depth.assign(static_cast<size_t>(n), 0);
  out.first.assign(static_cast<size_t>(n), -1);
  out.last.assign(static_cast<size_t>(n), 0);
  const index_t m = 2 * (n - 1);
  out.rank.assign(static_cast<size_t>(m), -1);
  out.last[0] = m;
  if (n == 1) return out;
  // Arc 2e = (u, v), arc 2e+1 = (v, u); adjacency lists in arc-id order.
  std::vector<std::vector<index_t>> adj(static_cast<size_t>(n));
  std::vector<index_t> local(static_cast<size_t>(m));
  auto arc_from = [&](index_t a) {
    const auto& e = t.edges[static_cast<size_t>(a / 2)];
    return (a % 2 == 0) ? e.first : e.second;
  };
  auto arc_to = [&](index_t a) {
    const auto& e = t.edges[static_cast<size_t>(a / 2)];
    return (a % 2 == 0) ? e.second : e.first;
  };
  for (index_t a = 0; a < m; ++a) {
    auto& list = adj[static_cast<size_t>(arc_from(a))];
    local[static_cast<size_t>(a)] = static_cast<index_t>(list.size());
    list.push_back(a);
  }
  index_t cur = adj[0][0];
  for (index_t r = 0; r < m; ++r) {
    out.rank[static_cast<size_t>(cur)] = r;
    const index_t u = arc_from(cur);
    const index_t v = arc_to(cur);
    if (out.first[static_cast<size_t>(v)] < 0 && v != 0) {
      out.first[static_cast<size_t>(v)] = r;
      out.parent[static_cast<size_t>(v)] = u;
      out.depth[static_cast<size_t>(v)] =
          out.depth[static_cast<size_t>(u)] + 1;
    } else {
      out.last[static_cast<size_t>(u)] = r;  // the upward arc out of u
    }
    // Successor: the arc after the twin, cyclically, in v's list.
    const auto& list = adj[static_cast<size_t>(v)];
    const index_t j = local[static_cast<size_t>(cur ^ 1)];
    cur = list[static_cast<size_t>((j + 1) % static_cast<index_t>(
                                                 list.size()))];
  }
  assert(cur == adj[0][0]);  // the circuit closes at the start arc
  return out;
}

/// Host rootfix: out[v] = op over the root-to-v path, inclusive of both
/// endpoints (out[root] = x[root]). Label-indexed, adjacency BFS —
/// independent of the Euler machinery.
template <class T, class Op>
[[nodiscard]] std::vector<T> host_rootfix(const Tree& t,
                                          const std::vector<T>& x, Op op) {
  std::vector<std::vector<index_t>> adj(static_cast<size_t>(t.n));
  for (const auto& [u, v] : t.edges) {
    adj[static_cast<size_t>(u)].push_back(v);
    adj[static_cast<size_t>(v)].push_back(u);
  }
  std::vector<T> out(static_cast<size_t>(t.n));
  std::vector<char> seen(static_cast<size_t>(t.n), 0);
  std::vector<index_t> queue{t.root};
  seen[static_cast<size_t>(t.root)] = 1;
  out[static_cast<size_t>(t.root)] = x[static_cast<size_t>(t.root)];
  for (size_t head = 0; head < queue.size(); ++head) {
    const index_t v = queue[head];
    for (const index_t w : adj[static_cast<size_t>(v)]) {
      if (seen[static_cast<size_t>(w)]) continue;
      seen[static_cast<size_t>(w)] = 1;
      out[static_cast<size_t>(w)] =
          op(out[static_cast<size_t>(v)], x[static_cast<size_t>(w)]);
      queue.push_back(w);
    }
  }
  return out;
}

/// Host leaffix: out[v] = op over v's subtree (v first, then descendants).
/// Children are combined in discovery order, so for non-commutative
/// operators callers should treat the combination order as unspecified;
/// the certified properties use commutative operators.
template <class T, class Op>
[[nodiscard]] std::vector<T> host_leaffix(const Tree& t,
                                          const std::vector<T>& x, Op op) {
  std::vector<std::vector<index_t>> adj(static_cast<size_t>(t.n));
  for (const auto& [u, v] : t.edges) {
    adj[static_cast<size_t>(u)].push_back(v);
    adj[static_cast<size_t>(v)].push_back(u);
  }
  // BFS order, then accumulate children into parents in reverse.
  std::vector<index_t> order{t.root};
  std::vector<index_t> parent(static_cast<size_t>(t.n), -1);
  std::vector<char> seen(static_cast<size_t>(t.n), 0);
  seen[static_cast<size_t>(t.root)] = 1;
  for (size_t head = 0; head < order.size(); ++head) {
    const index_t v = order[head];
    for (const index_t w : adj[static_cast<size_t>(v)]) {
      if (seen[static_cast<size_t>(w)]) continue;
      seen[static_cast<size_t>(w)] = 1;
      parent[static_cast<size_t>(w)] = v;
      order.push_back(w);
    }
  }
  std::vector<T> out = x;
  for (size_t i = order.size(); i-- > 1;) {
    const index_t v = order[i];
    const index_t p = parent[static_cast<size_t>(v)];
    out[static_cast<size_t>(p)] =
        op(out[static_cast<size_t>(p)], out[static_cast<size_t>(v)]);
  }
  return out;
}

/// Host LCA by depth-equalizing parent walks. Label-indexed queries.
[[nodiscard]] inline std::vector<index_t> host_lca(
    const Tree& t, const std::vector<std::pair<index_t, index_t>>& queries) {
  std::vector<std::vector<index_t>> adj(static_cast<size_t>(t.n));
  for (const auto& [u, v] : t.edges) {
    adj[static_cast<size_t>(u)].push_back(v);
    adj[static_cast<size_t>(v)].push_back(u);
  }
  std::vector<index_t> parent(static_cast<size_t>(t.n), -1);
  std::vector<index_t> depth(static_cast<size_t>(t.n), 0);
  std::vector<char> seen(static_cast<size_t>(t.n), 0);
  std::vector<index_t> queue{t.root};
  seen[static_cast<size_t>(t.root)] = 1;
  for (size_t head = 0; head < queue.size(); ++head) {
    const index_t v = queue[head];
    for (const index_t w : adj[static_cast<size_t>(v)]) {
      if (seen[static_cast<size_t>(w)]) continue;
      seen[static_cast<size_t>(w)] = 1;
      parent[static_cast<size_t>(w)] = v;
      depth[static_cast<size_t>(w)] = depth[static_cast<size_t>(v)] + 1;
      queue.push_back(w);
    }
  }
  std::vector<index_t> out;
  out.reserve(queries.size());
  for (auto [a, b] : queries) {
    while (depth[static_cast<size_t>(a)] > depth[static_cast<size_t>(b)]) {
      a = parent[static_cast<size_t>(a)];
    }
    while (depth[static_cast<size_t>(b)] > depth[static_cast<size_t>(a)]) {
      b = parent[static_cast<size_t>(b)];
    }
    while (a != b) {
      a = parent[static_cast<size_t>(a)];
      b = parent[static_cast<size_t>(b)];
    }
    out.push_back(a);
  }
  return out;
}

}  // namespace scm::tree
