// List-ranking-style tree contraction (rake-and-compress) on the SCM.
//
// Contracts an unrooted tree to a single survivor vertex while folding
// per-vertex values under a *commutative* associative operator — the
// total-reduction primitive for operators without an inverse (Min/Max),
// complementing the group-operator scans of tree/reductions.hpp.
//
// Round structure (all decisions from start-of-round state, all data
// movement charged):
//   bcast    — every live vertex ships its degree to its arc segment's
//              head; a segmented First-broadcast fans it to the arcs.
//   exchange — live arcs swap degrees across the twin bijection, so each
//              arc knows its neighbour endpoint's degree.
//   digest   — a segmented scan aggregates, per vertex: the minimum
//              neighbour degree, the maximum priority among degree-2
//              neighbours, and the first live neighbour; the segment's
//              last arc hands the digest to the vertex cell.
//   decide   — locally: a leaf *rakes* into its neighbour unless that
//              neighbour is a lower-priority leaf; a degree-2 vertex
//              *splices* (compress) iff no neighbour is a leaf and its
//              priority beats every degree-2 neighbour — so adjacent
//              splices never race.
//   fold     — an eliminated vertex sends its value (and, for splices,
//              relink data) to the twin arcs of its live arcs; raked
//              twin arcs die, spliced ones repoint to each other.
//   collect  — a segmented scan folds all values arriving at one
//              vertex's segment into a single message to the vertex.
//
// Priorities are a salted hash of the dense id (a pure function of
// identity, like a coordinate — free to evaluate anywhere). Every round
// eliminates at least one leaf, and compress makes the expected round
// count O(log n) on paths; energy is dominated by the one arc sort plus
// O(m) scan work per round.
#pragma once

#include "collectives/operators.hpp"
#include "collectives/scan.hpp"
#include "sort/mergesort2d.hpp"
#include "spatial/grid_array.hpp"
#include "spatial/machine.hpp"
#include "spatial/zorder.hpp"
#include "tree/tree.hpp"

#include <cassert>
#include <cstdint>
#include <limits>
#include <vector>

namespace scm::tree {

namespace detail {

/// Per-segment neighbourhood aggregate of the digest scan.
struct Digest {
  bool any{false};
  index_t min_deg{std::numeric_limits<index_t>::max()};
  std::uint64_t max_prio2{0};  ///< max priority among degree-2 neighbours
  index_t nbr{-1};             ///< first live neighbour (leftmost arc)
  index_t nbr_deg{0};

  friend bool operator==(const Digest&, const Digest&) = default;
};

struct DigestOp {
  Digest operator()(const Digest& a, const Digest& b) const {
    if (!a.any) return b;
    if (!b.any) return a;
    Digest o = a;  // keeps the leftmost nbr / nbr_deg
    o.min_deg = a.min_deg < b.min_deg ? a.min_deg : b.min_deg;
    o.max_prio2 = a.max_prio2 > b.max_prio2 ? a.max_prio2 : b.max_prio2;
    return o;
  }
};

/// Accumulated folds arriving at one vertex's arc segment.
template <class T>
struct FoldAcc {
  bool any{false};
  T value{};
  index_t raked{0};  ///< how many incident edges disappeared (rakes only)

  friend bool operator==(const FoldAcc&, const FoldAcc&) = default;
};

template <class T, class Op>
struct FoldOp {
  Op op{};
  FoldAcc<T> operator()(const FoldAcc<T>& a, const FoldAcc<T>& b) const {
    if (!a.any) return b;
    if (!b.any) return a;
    return FoldAcc<T>{true, op(a.value, b.value), a.raked + b.raked};
  }
};

[[nodiscard]] inline std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Distinct nonzero per-vertex priority: salted hash high, dense id low.
[[nodiscard]] inline std::uint64_t contract_priority(std::uint64_t salt,
                                                     index_t v) {
  return ((mix64(salt ^ static_cast<std::uint64_t>(v + 1)) | 1ULL) << 20) |
         static_cast<std::uint64_t>(v);
}

}  // namespace detail

}  // namespace scm::tree

namespace scm {

template <>
struct OpTraits<tree::detail::DigestOp> {
  static constexpr bool associative = true;  // componentwise min/max/first
  static constexpr bool commutative = false;  // keeps the left neighbour
};

template <class T, class Op>
struct OpTraits<tree::detail::FoldOp<T, Op>> {
  static constexpr bool associative = OpTraits<Op>::associative;
  static constexpr bool commutative = OpTraits<Op>::commutative;
};

}  // namespace scm

namespace scm::tree {

template <class T>
struct ContractResult {
  index_t survivor{0};
  T value{};                        ///< op-fold of every vertex value
  index_t rounds{0};
  index_t arc_work{0};              ///< sum over rounds of live arcs
  std::vector<index_t> elim_round;  ///< dense; 0 for the survivor
};

/// Contracts `t`, folding dense-indexed `values` under the commutative
/// associative `op`. `salt` seeds the rake/compress priorities; `origin`
/// anchors the arc sort square (vertex square to its right).
template <class T, class Op>
[[nodiscard]] ContractResult<T> tree_contract(Machine& m, const DenseTree& t,
                                              const std::vector<T>& values,
                                              Op op, std::uint64_t salt,
                                              Coord origin) {
  static_assert(is_associative_v<Op> && is_commutative_v<Op>,
                "tree_contract folds concurrent rakes in arbitrary order; "
                "the operator must be commutative (use rootfix/leaffix for "
                "group operators)");
  Machine::PhaseScope scope(m, "tree_contract");
  const index_t n = t.n;
  const index_t m_arcs = 2 * (n - 1);
  ContractResult<T> out{0, values[0], 0, 0,
                        std::vector<index_t>(static_cast<size_t>(n), 0)};
  if (n == 1) return out;

  struct SortArc {
    index_t from{0};
    index_t to{0};
    index_t seq{0};
  };
  struct ByFromSeq {
    bool operator()(const SortArc& a, const SortArc& b) const {
      if (a.from != b.from) return a.from < b.from;
      return a.seq < b.seq;
    }
  };

  // ---- setup: one arc sort fixes the segment structure for all rounds.
  std::vector<SortArc> arcs;
  arcs.reserve(static_cast<size_t>(m_arcs));
  for (size_t e = 0; e < t.edges.size(); ++e) {
    const auto& [u, v] = t.edges[e];
    arcs.push_back(SortArc{u, v, static_cast<index_t>(2 * e)});
    arcs.push_back(SortArc{v, u, static_cast<index_t>(2 * e + 1)});
  }
  GridArray<SortArc> grid =
      GridArray<SortArc>::from_values_square(origin, arcs, Layout::kZOrder);
  GridArray<SortArc> by = mergesort2d(m, grid, ByFromSeq{});

  const index_t arc_side = by.region().rows;
  const Coord vert_origin{origin.row, origin.col + arc_side};
  GridArray<T> vals = GridArray<T>::from_values(
      square_at(vert_origin, square_side_for(n)), Layout::kRowMajor, values);

  // Host routing bookkeeping over the sorted order (components.cpp idiom).
  std::vector<index_t> pos_of_seq(static_cast<size_t>(m_arcs));
  for (index_t i = 0; i < m_arcs; ++i) {
    pos_of_seq[static_cast<size_t>(by[i].value.seq)] = i;
  }
  std::vector<index_t> twin_pos(static_cast<size_t>(m_arcs));
  for (index_t i = 0; i < m_arcs; ++i) {
    twin_pos[static_cast<size_t>(i)] =
        pos_of_seq[static_cast<size_t>(by[i].value.seq ^ 1)];
  }
  std::vector<index_t> seg_lo(static_cast<size_t>(n), -1);
  std::vector<index_t> seg_hi(static_cast<size_t>(n), -1);
  for (index_t i = 0; i < m_arcs; ++i) {
    const index_t v = by[i].value.from;
    if (seg_lo[static_cast<size_t>(v)] < 0) seg_lo[static_cast<size_t>(v)] = i;
    seg_hi[static_cast<size_t>(v)] = i;
  }

  // Leader flags via simultaneous forward hand-offs (charged once).
  std::vector<char> leader(static_cast<size_t>(m_arcs), 0);
  {
    Machine::PhaseScope seg(m, "tree_contract/setup");
    std::vector<Clock> before(static_cast<size_t>(m_arcs));
    for (index_t i = 0; i < m_arcs; ++i) {
      before[static_cast<size_t>(i)] = by[i].clock;
    }
    std::vector<MessageEvent> fwd(static_cast<size_t>(m_arcs - 1));
    for (index_t i = 1; i < m_arcs; ++i) {
      fwd[static_cast<size_t>(i - 1)] =
          MessageEvent{by.coord(i - 1), by.coord(i), 0,
                       before[static_cast<size_t>(i - 1)], Clock{}};
    }
    m.send_bulk(fwd);  // bulk-ok: distinct destinations (a shift by one)
    leader[0] = 1;
    for (index_t i = 1; i < m_arcs; ++i) {
      by[i].clock =
          Clock::join(by[i].clock, fwd[static_cast<size_t>(i - 1)].arrival);
      leader[static_cast<size_t>(i)] =
          by[i].value.from != by[i - 1].value.from ? 1 : 0;
    }
    m.op_bulk(m_arcs);
  }

  // ---- degrees: segment sizes via a segmented count, handed to vertices.
  std::vector<index_t> deg(static_cast<size_t>(n), 0);
  std::vector<Clock> v_clock(static_cast<size_t>(n));
  {
    Machine::PhaseScope dp(m, "tree_contract/degrees");
    GridArray<Seg<index_t>> ones(by.region(), Layout::kZOrder, m_arcs);
    for (index_t i = 0; i < m_arcs; ++i) {
      ones[i] = Cell<Seg<index_t>>{
          Seg<index_t>{1, leader[static_cast<size_t>(i)] != 0}, by[i].clock};
    }
    GridArray<Seg<index_t>> counts = segmented_scan(m, ones, Plus{});
    std::vector<MessageEvent> batch(static_cast<size_t>(n));
    for (index_t v = 0; v < n; ++v) {
      const index_t h = seg_hi[static_cast<size_t>(v)];
      batch[static_cast<size_t>(v)] = MessageEvent{
          counts.coord(h), vals.coord(v), 0, counts[h].clock, Clock{}};
    }
    m.send_bulk(batch);  // bulk-ok: one segment per vertex
    for (index_t v = 0; v < n; ++v) {
      const index_t h = seg_hi[static_cast<size_t>(v)];
      deg[static_cast<size_t>(v)] = counts[h].value.value;
      v_clock[static_cast<size_t>(v)] = Clock::join(
          vals[v].clock, batch[static_cast<size_t>(v)].arrival);
    }
    m.op_bulk(n);
  }

  // ---- live state (host mirrors, updated in lockstep with the messages).
  std::vector<char> alive_v(static_cast<size_t>(n), 1);
  std::vector<char> alive_arc(static_cast<size_t>(m_arcs), 1);
  std::vector<index_t> arc_to(static_cast<size_t>(m_arcs));
  std::vector<index_t> arc_twin = twin_pos;
  std::vector<Clock> arc_clock(static_cast<size_t>(m_arcs));
  for (index_t i = 0; i < m_arcs; ++i) {
    arc_to[static_cast<size_t>(i)] = by[i].value.to;
    arc_clock[static_cast<size_t>(i)] = by[i].clock;
  }
  std::vector<T> val = values;
  auto prio = [&](index_t v) { return detail::contract_priority(salt, v); };

  index_t alive_count = n;
  while (alive_count > 1) {
    ++out.rounds;
    index_t live_arcs = 0;
    for (index_t i = 0; i < m_arcs; ++i) {
      if (alive_arc[static_cast<size_t>(i)]) ++live_arcs;
    }
    out.arc_work += live_arcs;

    // -- bcast: degree to segment head, fanned along the segment.
    std::vector<index_t> from_deg(static_cast<size_t>(m_arcs), 0);
    {
      Machine::PhaseScope bp(m, "tree_contract/bcast");
      std::vector<MessageEvent> batch;
      std::vector<index_t> batch_v;
      for (index_t v = 0; v < n; ++v) {
        if (!alive_v[static_cast<size_t>(v)]) continue;
        const index_t lo = seg_lo[static_cast<size_t>(v)];
        batch.push_back(MessageEvent{vals.coord(v), by.coord(lo), 0,
                                     v_clock[static_cast<size_t>(v)],
                                     Clock{}});
        batch_v.push_back(v);
      }
      m.send_bulk(batch);  // bulk-ok: one segment head per vertex
      GridArray<Seg<index_t>> fan(by.region(), Layout::kZOrder, m_arcs);
      for (index_t i = 0; i < m_arcs; ++i) {
        fan[i] = Cell<Seg<index_t>>{
            Seg<index_t>{0, leader[static_cast<size_t>(i)] != 0},
            arc_clock[static_cast<size_t>(i)]};
      }
      for (size_t k = 0; k < batch.size(); ++k) {
        const index_t v = batch_v[k];
        const index_t lo = seg_lo[static_cast<size_t>(v)];
        fan[lo].value.value = deg[static_cast<size_t>(v)];
        fan[lo].clock = Clock::join(fan[lo].clock, batch[k].arrival);
      }
      GridArray<Seg<index_t>> fanned = segmented_scan(m, fan, First{});
      for (index_t i = 0; i < m_arcs; ++i) {
        from_deg[static_cast<size_t>(i)] = fanned[i].value.value;
        arc_clock[static_cast<size_t>(i)] =
            Clock::join(arc_clock[static_cast<size_t>(i)], fanned[i].clock);
      }
      m.op_bulk(m_arcs);
    }

    // -- exchange: live arcs swap degrees across the twin bijection.
    std::vector<index_t> to_deg(static_cast<size_t>(m_arcs), 0);
    {
      Machine::PhaseScope ep(m, "tree_contract/exchange");
      std::vector<MessageEvent> batch;
      std::vector<index_t> batch_src;
      for (index_t i = 0; i < m_arcs; ++i) {
        if (!alive_arc[static_cast<size_t>(i)]) continue;
        batch.push_back(MessageEvent{
            by.coord(i), by.coord(arc_twin[static_cast<size_t>(i)]), 0,
            arc_clock[static_cast<size_t>(i)], Clock{}});
        batch_src.push_back(i);
      }
      m.send_bulk(batch);  // bulk-ok: the live twin map is a bijection
      for (size_t k = 0; k < batch.size(); ++k) {
        const index_t i = batch_src[k];
        const index_t tw = arc_twin[static_cast<size_t>(i)];
        to_deg[static_cast<size_t>(tw)] = from_deg[static_cast<size_t>(i)];
        arc_clock[static_cast<size_t>(tw)] =
            Clock::join(arc_clock[static_cast<size_t>(tw)], batch[k].arrival);
      }
      m.op_bulk(live_arcs);
    }

    // -- digest: per-vertex neighbourhood aggregate to the vertex cell.
    std::vector<detail::Digest> dig(static_cast<size_t>(n));
    {
      Machine::PhaseScope gp(m, "tree_contract/digest");
      GridArray<Seg<detail::Digest>> a(by.region(), Layout::kZOrder, m_arcs);
      for (index_t i = 0; i < m_arcs; ++i) {
        detail::Digest d;
        if (alive_arc[static_cast<size_t>(i)]) {
          const index_t w = arc_to[static_cast<size_t>(i)];
          const index_t wd = to_deg[static_cast<size_t>(i)];
          d.any = true;
          d.min_deg = wd;
          d.max_prio2 = wd == 2 ? prio(w) : 0;
          d.nbr = w;
          d.nbr_deg = wd;
        }
        a[i] = Cell<Seg<detail::Digest>>{
            Seg<detail::Digest>{d, leader[static_cast<size_t>(i)] != 0},
            arc_clock[static_cast<size_t>(i)]};
      }
      GridArray<Seg<detail::Digest>> scanned =
          segmented_scan(m, a, detail::DigestOp{});
      std::vector<MessageEvent> batch;
      std::vector<index_t> batch_v;
      for (index_t v = 0; v < n; ++v) {
        if (!alive_v[static_cast<size_t>(v)]) continue;
        const index_t h = seg_hi[static_cast<size_t>(v)];
        batch.push_back(MessageEvent{scanned.coord(h), vals.coord(v), 0,
                                     scanned[h].clock, Clock{}});
        batch_v.push_back(v);
      }
      m.send_bulk(batch);  // bulk-ok: one segment per vertex
      for (size_t k = 0; k < batch.size(); ++k) {
        const index_t v = batch_v[k];
        const index_t h = seg_hi[static_cast<size_t>(v)];
        dig[static_cast<size_t>(v)] = scanned[h].value.value;
        v_clock[static_cast<size_t>(v)] =
            Clock::join(v_clock[static_cast<size_t>(v)], batch[k].arrival);
      }
      m.op_bulk(alive_count);
    }

    // -- decide (local): rakes and splices from start-of-round state.
    std::vector<index_t> rakes;    // eliminated leaves
    std::vector<index_t> splices;  // eliminated degree-2 vertices
    for (index_t v = 0; v < n; ++v) {
      if (!alive_v[static_cast<size_t>(v)]) continue;
      const detail::Digest& d = dig[static_cast<size_t>(v)];
      if (deg[static_cast<size_t>(v)] == 1) {
        if (d.nbr_deg > 1 || prio(v) < prio(d.nbr)) rakes.push_back(v);
      } else if (deg[static_cast<size_t>(v)] == 2) {
        if (d.min_deg >= 2 && prio(v) > d.max_prio2) splices.push_back(v);
      }
    }
    m.op_bulk(alive_count);
    assert(!rakes.empty() || !splices.empty());

    // -- fold: eliminated vertices ship value + relink data to the twin
    // arcs of their live arcs. Distinct eliminated vertices have distinct
    // incident edges, so every destination is unique.
    std::vector<char> fold_any(static_cast<size_t>(m_arcs), 0);
    std::vector<T> fold_val(static_cast<size_t>(m_arcs));
    std::vector<index_t> fold_raked(static_cast<size_t>(m_arcs), 0);
    {
      Machine::PhaseScope fp(m, "tree_contract/fold");
      std::vector<MessageEvent> batch;
      struct Apply {
        index_t dst{0};
        bool fold{false};
        T value{};
        index_t raked{0};
        bool relink{false};
        index_t new_to{0};
        index_t new_twin{0};
        bool kill{false};
      };
      std::vector<Apply> applies;
      auto live_arcs_of = [&](index_t v) {
        std::vector<index_t> ps;
        for (index_t i = seg_lo[static_cast<size_t>(v)];
             i <= seg_hi[static_cast<size_t>(v)]; ++i) {
          if (alive_arc[static_cast<size_t>(i)]) ps.push_back(i);
        }
        return ps;
      };
      for (const index_t v : rakes) {
        const std::vector<index_t> ps = live_arcs_of(v);
        assert(ps.size() == 1);
        const index_t p = ps[0];
        const index_t tw = arc_twin[static_cast<size_t>(p)];
        batch.push_back(MessageEvent{
            vals.coord(v), by.coord(tw), 0,
            v_clock[static_cast<size_t>(v)], Clock{}});
        applies.push_back(
            Apply{tw, true, val[static_cast<size_t>(v)], 1, false, 0, 0,
                  true});
        alive_arc[static_cast<size_t>(p)] = 0;
        alive_v[static_cast<size_t>(v)] = 0;
        out.elim_round[static_cast<size_t>(v)] = out.rounds;
      }
      for (const index_t v : splices) {
        const std::vector<index_t> ps = live_arcs_of(v);
        assert(ps.size() == 2);
        const index_t p1 = ps[0];
        const index_t p2 = ps[1];
        const index_t t1 = arc_twin[static_cast<size_t>(p1)];
        const index_t t2 = arc_twin[static_cast<size_t>(p2)];
        batch.push_back(MessageEvent{vals.coord(v), by.coord(t1), 0,
                                     v_clock[static_cast<size_t>(v)],
                                     Clock{}});
        applies.push_back(Apply{t1, true, val[static_cast<size_t>(v)], 0,
                                true, arc_to[static_cast<size_t>(p2)], t2,
                                false});
        batch.push_back(MessageEvent{vals.coord(v), by.coord(t2), 0,
                                     v_clock[static_cast<size_t>(v)],
                                     Clock{}});
        applies.push_back(Apply{t2, false, T{}, 0, true,
                                arc_to[static_cast<size_t>(p1)], t1, false});
        alive_arc[static_cast<size_t>(p1)] = 0;
        alive_arc[static_cast<size_t>(p2)] = 0;
        alive_v[static_cast<size_t>(v)] = 0;
        out.elim_round[static_cast<size_t>(v)] = out.rounds;
      }
      m.send_bulk(batch);  // bulk-ok: one incident edge per destination
      for (size_t k = 0; k < applies.size(); ++k) {
        const Apply& ap = applies[k];
        arc_clock[static_cast<size_t>(ap.dst)] = Clock::join(
            arc_clock[static_cast<size_t>(ap.dst)], batch[k].arrival);
        if (ap.fold) {
          fold_any[static_cast<size_t>(ap.dst)] = 1;
          fold_val[static_cast<size_t>(ap.dst)] = ap.value;
          fold_raked[static_cast<size_t>(ap.dst)] = ap.raked;
        }
        if (ap.relink) {
          arc_to[static_cast<size_t>(ap.dst)] = ap.new_to;
          arc_twin[static_cast<size_t>(ap.dst)] = ap.new_twin;
        }
        if (ap.kill) alive_arc[static_cast<size_t>(ap.dst)] = 0;
      }
      m.op_bulk(static_cast<index_t>(applies.size()));
    }

    // -- collect: fold everything that arrived at a vertex's segment into
    // one message to the vertex cell.
    {
      Machine::PhaseScope cp(m, "tree_contract/collect");
      GridArray<Seg<detail::FoldAcc<T>>> a(by.region(), Layout::kZOrder,
                                           m_arcs);
      for (index_t i = 0; i < m_arcs; ++i) {
        detail::FoldAcc<T> f;
        if (fold_any[static_cast<size_t>(i)]) {
          f = detail::FoldAcc<T>{true, fold_val[static_cast<size_t>(i)],
                                 fold_raked[static_cast<size_t>(i)]};
        }
        a[i] = Cell<Seg<detail::FoldAcc<T>>>{
            Seg<detail::FoldAcc<T>>{f, leader[static_cast<size_t>(i)] != 0},
            arc_clock[static_cast<size_t>(i)]};
      }
      GridArray<Seg<detail::FoldAcc<T>>> scanned =
          segmented_scan(m, a, detail::FoldOp<T, Op>{op});
      std::vector<MessageEvent> batch;
      std::vector<index_t> batch_v;
      for (index_t v = 0; v < n; ++v) {
        if (!alive_v[static_cast<size_t>(v)]) continue;
        const index_t h = seg_hi[static_cast<size_t>(v)];
        if (!scanned[h].value.value.any) continue;
        batch.push_back(MessageEvent{scanned.coord(h), vals.coord(v), 0,
                                     scanned[h].clock, Clock{}});
        batch_v.push_back(v);
      }
      if (!batch.empty()) {
        m.send_bulk(batch);  // bulk-ok: one segment per vertex
      }
      for (size_t k = 0; k < batch.size(); ++k) {
        const index_t v = batch_v[k];
        const index_t h = seg_hi[static_cast<size_t>(v)];
        const detail::FoldAcc<T>& acc = scanned[h].value.value;
        val[static_cast<size_t>(v)] =
            op(val[static_cast<size_t>(v)], acc.value);
        deg[static_cast<size_t>(v)] -= acc.raked;
        v_clock[static_cast<size_t>(v)] =
            Clock::join(v_clock[static_cast<size_t>(v)], batch[k].arrival);
      }
      m.op_bulk(static_cast<index_t>(batch.size()));
    }

    alive_count = 0;
    for (index_t v = 0; v < n; ++v) {
      if (alive_v[static_cast<size_t>(v)]) ++alive_count;
    }
  }

  for (index_t v = 0; v < n; ++v) {
    if (alive_v[static_cast<size_t>(v)]) {
      out.survivor = v;
      out.value = val[static_cast<size_t>(v)];
      m.observe(v_clock[static_cast<size_t>(v)]);
      break;
    }
  }
  return out;
}

}  // namespace scm::tree
