// Batched lowest-common-ancestor queries via Euler tour + range minimum.
//
// Classic reduction: write down the tour's vertex occurrence sequence
// O[0..m] (O[0] = root, O[r+1] = head of tour arc r) with depths; then
// LCA(a, b) is the vertex of minimum depth on O between the first
// occurrences of a and b. The pipeline:
//
//   occ       — one bulk batch materializes the occurrence array from the
//               tour square (depth_to is already resident per arc).
//   rmq       — a 4-ary min upsweep over the occurrence square, nodes
//               placed exactly like the scan tree of collectives/scan.hpp
//               (node (lo, h) at Z-order position lo + h, at most two
//               values per cell — Fig. 1a of the SCM paper).
//   endpoints — queries are sorted by each endpoint in turn; one segment
//               leader per distinct endpoint fetches first[v] from the
//               vertex square (request/reply, <= 1 pair per vertex cell)
//               and a segmented First-broadcast fans it out; a final
//               permutation routing restores query order.
//   walk      — each query min-combines the O(log m) canonical RMQ cover
//               of its range. Queries run in groups of <= 16 and each
//               step is its own phase, so a popular tree node serves at
//               most 16 request/reply pairs per conformance epoch.
//
// Costs for q queries on an m-arc tour: the two query sorts give
// O(q^{3/2}) energy; occ/rmq add O(m); the walks add O((q + W) * sqrt(m))
// energy and O(groups * log m) depth, W = total cover nodes fetched.
#pragma once

#include "spatial/grid_array.hpp"
#include "spatial/machine.hpp"
#include "tree/euler.hpp"
#include "tree/tree.hpp"

#include <utility>
#include <vector>

namespace scm::tree {

struct LcaResult {
  std::vector<index_t> answers;  ///< dense ids, one per query, query order
  index_t walk_nodes{0};         ///< total RMQ cover nodes fetched
  index_t groups{0};             ///< query groups walked (<= 16 each)
  index_t max_len{0};            ///< longest canonical cover
};

/// Answers `queries` (pairs of dense vertex ids) against the tour of `t`.
/// `origin` must be the origin the tour was built at; the occurrence and
/// query squares are placed right of the tour square.
[[nodiscard]] LcaResult lca(Machine& m, const DenseTree& t,
                            const EulerTour& tour,
                            const std::vector<std::pair<index_t, index_t>>&
                                queries,
                            Coord origin);

}  // namespace scm::tree
