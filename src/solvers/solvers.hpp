// Iterative solvers on the spatial machine — the scientific-computing
// workloads (conjugate gradients [Hestenes-Stiefel], stationary
// iterations, eigensolvers) the paper's introduction motivates SpMV with.
// Every matrix-vector product runs through scm::spmv (Theorem VIII.2) and
// every inner product through the quadrant reduce, so a whole solve
// carries end-to-end Spatial Computer Model costs.
#pragma once

#include "spatial/machine.hpp"
#include "spmv/coo.hpp"

#include <vector>

namespace scm::solvers {

/// Result of an iterative solve.
struct SolveResult {
  std::vector<double> x;     ///< the solution / eigenvector iterate
  double residual{0.0};      ///< final residual norm (solvers) or
                             ///< eigenvalue estimate (power iteration)
  index_t iterations{0};
  bool converged{false};
};

/// Options shared by the solvers.
struct SolveOptions {
  index_t max_iterations{200};
  double tolerance{1e-10};  ///< on the relative residual norm
};

/// Conjugate gradients for symmetric positive definite A.
[[nodiscard]] SolveResult conjugate_gradient(Machine& m, const CooMatrix& a,
                                             const std::vector<double>& b,
                                             const SolveOptions& opts = {});

/// Jacobi iteration x' = D^{-1} (b - (A - D) x); requires a non-zero
/// diagonal. Converges for diagonally dominant systems.
[[nodiscard]] SolveResult jacobi(Machine& m, const CooMatrix& a,
                                 const std::vector<double>& b,
                                 const SolveOptions& opts = {});

/// Power iteration for the dominant eigenpair; `residual` returns the
/// Rayleigh-quotient eigenvalue estimate.
[[nodiscard]] SolveResult power_iteration(Machine& m, const CooMatrix& a,
                                          std::vector<double> x0,
                                          const SolveOptions& opts = {});

}  // namespace scm::solvers
