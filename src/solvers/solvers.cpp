#include "solvers/solvers.hpp"

#include "solvers/blas1.hpp"
#include "spmv/spmv.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace scm::solvers {

SolveResult conjugate_gradient(Machine& m, const CooMatrix& a,
                               const std::vector<double>& b,
                               const SolveOptions& opts) {
  if (a.n_rows() != a.n_cols()) {
    throw std::invalid_argument("conjugate_gradient: matrix must be square");
  }
  Machine::PhaseScope scope(m, "solver_cg");
  const auto n = static_cast<size_t>(a.n_rows());
  SolveResult out;
  out.x.assign(n, 0.0);
  std::vector<double> r = b;
  std::vector<double> p = r;
  double rr = norm2(m, r);
  const double threshold =
      opts.tolerance * opts.tolerance * std::max(norm2(m, b), 1e-300);

  while (out.iterations < opts.max_iterations && rr > threshold) {
    const std::vector<double> ap = spmv(m, a, p).y;
    const double p_ap = dot(m, p, ap);
    if (p_ap == 0.0) break;  // breakdown (A not SPD)
    const double alpha = rr / p_ap;
    axpy(m, alpha, p, out.x);
    axpy(m, -alpha, ap, r);
    const double rr_next = norm2(m, r);
    const double beta = rr_next / rr;
    scale(m, beta, p);
    axpy(m, 1.0, r, p);  // p = r + beta p
    rr = rr_next;
    ++out.iterations;
  }
  out.residual = std::sqrt(rr);
  out.converged = rr <= threshold;
  return out;
}

SolveResult jacobi(Machine& m, const CooMatrix& a,
                   const std::vector<double>& b, const SolveOptions& opts) {
  if (a.n_rows() != a.n_cols()) {
    throw std::invalid_argument("jacobi: matrix must be square");
  }
  Machine::PhaseScope scope(m, "solver_jacobi");
  const auto n = static_cast<size_t>(a.n_rows());

  // Split A = D + R; D must have no zero entries.
  std::vector<double> diag(n, 0.0);
  CooMatrix rest(a.n_rows(), a.n_cols());
  for (const Triple& t : a.entries()) {
    if (t.row == t.col) {
      diag[static_cast<size_t>(t.row)] += t.value;
    } else {
      rest.add(t.row, t.col, t.value);
    }
  }
  for (double d : diag) {
    if (d == 0.0) {
      throw std::invalid_argument("jacobi: zero diagonal entry");
    }
  }

  SolveResult out;
  out.x.assign(n, 0.0);
  const double b_norm = std::sqrt(std::max(norm2(m, b), 1e-300));
  while (out.iterations < opts.max_iterations) {
    // x' = D^{-1} (b - R x), all vector steps local.
    const std::vector<double> rx =
        rest.nnz() > 0 ? spmv(m, rest, out.x).y
                       : std::vector<double>(n, 0.0);
    std::vector<double> next(n);
    for (size_t i = 0; i < n; ++i) {
      next[i] = (b[i] - rx[i]) / diag[i];
    }
    m.op(static_cast<index_t>(n));
    out.x = std::move(next);
    ++out.iterations;

    // Residual check: ||b - A x||.
    const std::vector<double> ax = spmv(m, a, out.x).y;
    std::vector<double> r(n);
    for (size_t i = 0; i < n; ++i) r[i] = b[i] - ax[i];
    m.op(static_cast<index_t>(n));
    out.residual = std::sqrt(norm2(m, r));
    if (out.residual <= opts.tolerance * b_norm) {
      out.converged = true;
      break;
    }
  }
  return out;
}

SolveResult power_iteration(Machine& m, const CooMatrix& a,
                            std::vector<double> x0,
                            const SolveOptions& opts) {
  if (a.n_rows() != a.n_cols()) {
    throw std::invalid_argument("power_iteration: matrix must be square");
  }
  if (static_cast<index_t>(x0.size()) != a.n_rows()) {
    throw std::invalid_argument("power_iteration: bad initial vector size");
  }
  Machine::PhaseScope scope(m, "solver_power");
  SolveResult out;
  out.x = std::move(x0);
  double lambda = 0.0;
  while (out.iterations < opts.max_iterations) {
    const double nrm = std::sqrt(std::max(norm2(m, out.x), 1e-300));
    scale(m, 1.0 / nrm, out.x);
    const std::vector<double> ax = spmv(m, a, out.x).y;
    const double next_lambda = dot(m, out.x, ax);  // Rayleigh quotient
    const bool settled =
        out.iterations > 0 &&
        std::abs(next_lambda - lambda) <=
            opts.tolerance * std::max(1.0, std::abs(next_lambda));
    lambda = next_lambda;
    out.x = ax;
    ++out.iterations;
    if (settled) {
      out.converged = true;
      break;
    }
  }
  const double nrm = std::sqrt(std::max(norm2(m, out.x), 1e-300));
  scale(m, 1.0 / nrm, out.x);
  out.residual = lambda;
  return out;
}

}  // namespace scm::solvers
