// Level-1 vector operations on the spatial machine, shared by the
// iterative solvers: inner products run as local multiplies followed by
// the quadrant-tree reduce (Section IV-B, O(n) energy / O(log n) depth);
// axpy-style updates are purely local.
#pragma once

#include "collectives/reduce.hpp"
#include "spatial/grid_array.hpp"
#include "spatial/machine.hpp"

#include <cassert>
#include <vector>

namespace scm::solvers {

/// <a, b> via local multiplies + quadrant reduce.
[[nodiscard]] inline double dot(Machine& m, const std::vector<double>& a,
                                const std::vector<double>& b) {
  assert(a.size() == b.size());
  const auto n = static_cast<index_t>(a.size());
  if (n == 0) return 0.0;
  GridArray<double> prod = GridArray<double>::on_square({0, 0}, n);
  for (index_t i = 0; i < n; ++i) {
    prod[i].value = a[static_cast<size_t>(i)] * b[static_cast<size_t>(i)];
    m.op();
  }
  return reduce(m, prod, Plus{}).value;
}

/// Euclidean norm squared.
[[nodiscard]] inline double norm2(Machine& m, const std::vector<double>& a) {
  return dot(m, a, a);
}

/// y += alpha * x (local at every processor).
inline void axpy(Machine& m, double alpha, const std::vector<double>& x,
                 std::vector<double>& y) {
  assert(x.size() == y.size());
  for (size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
  m.op(static_cast<index_t>(x.size()));
}

/// x = alpha * x (local).
inline void scale(Machine& m, double alpha, std::vector<double>& x) {
  for (double& v : x) v *= alpha;
  m.op(static_cast<index_t>(x.size()));
}

}  // namespace scm::solvers
