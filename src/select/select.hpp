// Randomized rank selection with linear energy (Section VI, Theorem VI.3).
//
// Selects the rank-k element of n unsorted elements in O(n) energy,
// O(log^2 n) depth, and O(sqrt n) distance, all with high probability (and
// in expectation):
//
//   Elements start *active*; each iteration (while more than c*sqrt(n)
//   remain active, c >= 3):
//     1. sample every active element independently with prob. c/sqrt(N);
//     2. gather the sample into a square subgrid: a scan assigns each
//        sampled element its index, a broadcast communicates the size;
//     3. sort the sample with Bitonic Sort and pick two pivots at ranks
//        r = min(|S|, c k N^{-1/2} + (c/2) N^{1/4} sqrt(ln n)) and
//        l = c k N^{-1/2} - (c/2) N^{1/4} sqrt(ln n)   (s_l = -infinity
//        when k < (1/2) N^{3/4} sqrt(ln n));
//     4. broadcast the pivots;
//     5. count actives below s_l and above s_r with an all-reduce; if
//        N_<l >= k or N_>r >= N - k (a low-probability bad event, Lemma
//        VI.1), fall back to sorting with 2-D Mergesort; otherwise set
//        k -= N_<l;
//     6. deactivate elements outside (s_l, s_r);
//     7. count the remaining actives; if k > ceil(N/2), select the rank
//        N - k element under the reversed order (a logical comparator
//        flip).
//   Finally the <= c*sqrt(n) survivors are gathered and sorted.
//
// The element type is wrapped with ids internally, so duplicate keys are
// fine; the randomness comes from an explicit seed.
#pragma once

#include "collectives/broadcast.hpp"
#include "collectives/compact.hpp"
#include "collectives/reduce.hpp"
#include "collectives/scan.hpp"
#include "sort/bitonic.hpp"
#include "sort/keyed.hpp"
#include "sort/mergesort2d.hpp"
#include "spatial/grid_array.hpp"
#include "spatial/machine.hpp"

#include <cassert>
#include <cmath>
#include <functional>
#include <random>
#include <vector>

namespace scm {

/// Outcome of a rank selection.
template <class T>
struct SelectResult {
  T value{};           ///< the rank-k element (1-based rank)
  index_t iterations{0};  ///< sampling rounds executed
  bool fell_back{false};  ///< true if a bad event triggered the sort path
};

/// Tuning knobs of the selection loop, exposed for the ablation benchmark
/// (bench_ablation_tuning). The paper requires the sampling constant
/// c >= 3; larger c lowers the failure probability (Lemma VI.1 gives
/// 2 n^{-c/6}) at the price of larger samples per iteration.
struct SelectConfig {
  double c{3.0};
};

/// Selects the rank-k (1-based, 1 <= k <= n) element of `input` under
/// `less` with the randomized algorithm of Section VI. Deterministic given
/// `seed`. Theorem VI.3: O(n) energy, O(log^2 n) depth, O(sqrt n) distance
/// w.h.p.; the fallback path costs one 2-D Mergesort and triggers with
/// probability at most 2 n^{-c/6}.
template <class T, class Less = std::less<T>>
[[nodiscard]] SelectResult<T> select_rank(Machine& m,
                                          const GridArray<T>& input,
                                          index_t k, std::uint64_t seed,
                                          Less less = Less{},
                                          const SelectConfig& config = {}) {
  const index_t n = input.size();
  assert(k >= 1 && k <= n);
  assert(config.c >= 3.0);
  Machine::PhaseScope scope(m, "select_rank");
  using E = WithId<T>;
  const TotalLess<Less> total{less};

  // Lay the elements out in Z-order on the canonical square, tagged with
  // unique ids so ranks are distinct.
  GridArray<E> tagged = attach_ids(m, input);
  GridArray<E> el =
      route_permutation(m, tagged, square_at(input.region().origin(),
                                             square_side_for(n)),
                        Layout::kZOrder);

  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  const double c = config.c;
  const double log_n = std::log(std::max<index_t>(n, 3));
  const auto threshold =
      static_cast<index_t>(c * std::sqrt(static_cast<double>(n)));

  std::vector<char> active(static_cast<size_t>(n), 1);
  index_t big_n = n;       // N: number of active elements
  index_t cur_k = k;       // rank within the active multiset
  bool flipped = false;    // order reversal (step 7)
  index_t iterations = 0;

  // W.l.o.g. k <= ceil(N/2): select the rank N + 1 - k element under the
  // reversed order (Section VI, introduction).
  if (cur_k > (big_n + 1) / 2) {
    cur_k = big_n + 1 - cur_k;
    flipped = true;
  }

  // Flip-aware comparison of raw elements.
  auto flip_less = [&](const E& x, const E& y) {
    return flipped ? total(y, x) : total(x, y);
  };

  SelectResult<T> result{};
  while (big_n > threshold) {
    ++iterations;
    const double p =
        std::min(1.0, c / std::sqrt(static_cast<double>(big_n)));

    // Step 1: Bernoulli sampling (a local decision at each processor).
    std::vector<char> sampled(static_cast<size_t>(n), 0);
    index_t sample_size = 0;
    for (index_t i = 0; i < n; ++i) {
      if (active[static_cast<size_t>(i)] && unif(rng) < p) {
        sampled[static_cast<size_t>(i)] = 1;
        ++sample_size;
      }
      m.op();
    }
    if (sample_size == 0) continue;  // resample (w.h.p. never for real n)

    // Step 2: gather the sample via scan + send.
    GridArray<E> sample = compact_flagged(m, el, sampled, sample_size);

    // Step 3: sort the sample with Bitonic Sort, pick the two pivots.
    GridArray<E> sorted = bitonic_sort_any(
        m, sample, [&](const E& x, const E& y) { return flip_less(x, y); });
    const double nd = static_cast<double>(big_n);
    const double spread = (c / 2.0) * std::pow(nd, 0.25) * std::sqrt(log_n);
    const double mid = c * static_cast<double>(cur_k) / std::sqrt(nd);
    const index_t r = std::min<index_t>(
        sample_size, std::max<index_t>(1, std::llround(mid + spread)));
    const bool has_low =
        static_cast<double>(cur_k) >= 0.5 * std::pow(nd, 0.75) *
                                          std::sqrt(log_n);
    const index_t l =
        has_low ? std::max<index_t>(1, std::llround(mid - spread)) : 0;
    const Cell<E>& upper = sorted[r - 1];
    const Cell<E>* lower = (has_low && l >= 1 && l <= r) ? &sorted[l - 1]
                                                         : nullptr;

    // Step 4: broadcast the pivots over the whole subgrid.
    Clock pivots_ready = upper.clock;
    if (lower != nullptr) {
      pivots_ready = Clock::join(pivots_ready, lower->clock);
    }
    const Clock at_origin =
        m.send(sorted.coord(r - 1), el.region().origin(), pivots_ready);
    const GridArray<char> pivot_bcast =
        broadcast(m, el.region(), Cell<char>{0, at_origin});
    auto ctrl_at = [&](index_t i) {
      const Coord cd = el.coord(i);
      const Rect& reg = el.region();
      return pivot_bcast[(cd.row - reg.row0) * reg.cols + (cd.col - reg.col0)]
          .clock;
    };

    // Step 5: count actives below s_l / above s_r with an all-reduce.
    struct Counts {
      index_t below{0};
      index_t above{0};
    };
    struct AddCounts {
      Counts operator()(const Counts& a, const Counts& b) const {
        return Counts{a.below + b.below, a.above + b.above};
      }
    };
    GridArray<Counts> cnt(el.region(), Layout::kZOrder, n);
    for (index_t i = 0; i < n; ++i) {
      Counts v{};
      if (active[static_cast<size_t>(i)]) {
        if (lower != nullptr && flip_less(el[i].value, lower->value)) {
          v.below = 1;
        }
        if (flip_less(upper.value, el[i].value)) v.above = 1;
      }
      cnt[i] = Cell<Counts>{v, Clock::join(el[i].clock, ctrl_at(i))};
      m.op();
    }
    const GridArray<Counts> totals = all_reduce(m, cnt, AddCounts{});
    const index_t below = totals[0].value.below;
    const index_t above = totals[0].value.above;

    if (below >= cur_k || above >= big_n - cur_k) {
      // Bad event (Lemma VI.1): fall back to sorting everything.
      result.fell_back = true;
      break;
    }
    cur_k -= below;

    // Step 6: deactivate elements outside (s_l, s_r).
    index_t new_n = 0;
    for (index_t i = 0; i < n; ++i) {
      if (!active[static_cast<size_t>(i)]) continue;
      const bool out_low =
          lower != nullptr && flip_less(el[i].value, lower->value);
      const bool out_high = flip_less(upper.value, el[i].value);
      if (out_low || out_high) {
        active[static_cast<size_t>(i)] = 0;
      } else {
        ++new_n;
      }
      // The deactivation decision depends on the pivot broadcast.
      el[i].clock = Clock::join(el[i].clock, ctrl_at(i));
      m.op();
    }

    // Step 7: recount (an all-reduce in the model; the count is already
    // part of `totals`' information flow) and flip if k passed the middle.
    big_n = new_n;
    if (cur_k > (big_n + 1) / 2) {
      // 1-based rank r ascending equals rank N + 1 - r descending.
      cur_k = big_n + 1 - cur_k;
      flipped = !flipped;
    }
  }

  if (result.fell_back) {
    // Sort the active survivors with the energy-optimal 2-D Mergesort and
    // read off the answer (Section VI step 5).
    index_t live = 0;
    for (char f : active) live += f;
    GridArray<E> compact = compact_flagged(m, el, active, live);
    GridArray<E> sorted = mergesort2d(
        m, compact, [&](const E& x, const E& y) { return flip_less(x, y); });
    result.value = sorted[cur_k - 1].value.value;
    result.iterations = iterations;
    return result;
  }

  // Final phase: gather the <= c*sqrt(n) survivors and sort them.
  index_t live = 0;
  for (char f : active) live += f;
  assert(live >= 1 && cur_k >= 1 && cur_k <= live);
  GridArray<E> survivors = compact_flagged(m, el, active, live);
  GridArray<E> sorted = bitonic_sort_any(
      m, survivors, [&](const E& x, const E& y) { return flip_less(x, y); });
  result.value = sorted[cur_k - 1].value.value;
  result.iterations = iterations;
  return result;
}

/// Convenience median: the rank-ceil(n/2) element.
template <class T, class Less = std::less<T>>
[[nodiscard]] SelectResult<T> select_median(Machine& m,
                                            const GridArray<T>& input,
                                            std::uint64_t seed,
                                            Less less = Less{}) {
  return select_rank(m, input, (input.size() + 1) / 2, seed, less);
}

/// The k smallest elements under `less`, sorted, on a compact square at
/// the input's origin — the GNN sort-pooling primitive (Section I): rank
/// selection finds the threshold in O(n) energy, compaction gathers the
/// survivors, and a Bitonic Sort orders the k-element result. Much
/// cheaper than a full sort when k = O(sqrt n): O(n + k^{3/2} log k)
/// energy, poly-log depth.
template <class T, class Less = std::less<T>>
[[nodiscard]] GridArray<T> top_k(Machine& m, const GridArray<T>& input,
                                 index_t k, std::uint64_t seed,
                                 Less less = Less{}) {
  assert(k >= 0 && k <= input.size());
  Machine::PhaseScope scope(m, "top_k");
  if (k == 0) {
    return GridArray<T>(Rect{input.region().row0, input.region().col0, 1, 1},
                        Layout::kZOrder, 0);
  }
  using E = WithId<T>;
  const TotalLess<Less> total{less};
  GridArray<E> tagged = attach_ids(m, input);

  // Threshold = the rank-k element under the induced total order.
  const SelectResult<E> pivot =
      select_rank(m, tagged, k, seed,
                  [&](const E& a, const E& b) { return total(a, b); });

  // Keep everything at or below the threshold — exactly k elements by
  // rank uniqueness — then sort the survivors.
  std::vector<char> keep(static_cast<size_t>(tagged.size()), 0);
  index_t kept = 0;
  for (index_t i = 0; i < tagged.size(); ++i) {
    m.op();
    if (!total(pivot.value, tagged[i].value)) {
      keep[static_cast<size_t>(i)] = 1;
      ++kept;
    }
  }
  assert(kept == k);
  GridArray<E> survivors = compact_flagged(m, tagged, keep, kept);
  GridArray<E> sorted = bitonic_sort_any(
      m, survivors, [&](const E& a, const E& b) { return total(a, b); });
  return detach_ids(m, sorted);
}

}  // namespace scm
