// Sparse matrices in coordinate (COO) format — the input format of the
// SpMV algorithms of Section VIII: each non-zero is a triple
// (row, col, value), initially distributed one per processor over a
// sqrt(m) x sqrt(m) subgrid in arbitrary order.
#pragma once

#include "spatial/geometry.hpp"

#include <vector>

namespace scm {

/// One non-zero entry of a sparse matrix.
struct Triple {
  index_t row{0};
  index_t col{0};
  double value{0.0};

  friend bool operator==(const Triple&, const Triple&) = default;
};

/// An n_rows x n_cols sparse matrix as an unordered list of non-zeros.
class CooMatrix {
 public:
  CooMatrix(index_t n_rows, index_t n_cols) : rows_(n_rows), cols_(n_cols) {}

  /// Appends one non-zero (no duplicate-coordinate checking; duplicates
  /// act additively, as in standard COO semantics).
  void add(index_t row, index_t col, double value);

  [[nodiscard]] index_t n_rows() const { return rows_; }
  [[nodiscard]] index_t n_cols() const { return cols_; }
  [[nodiscard]] index_t nnz() const {
    return static_cast<index_t>(entries_.size());
  }
  [[nodiscard]] const std::vector<Triple>& entries() const { return entries_; }

  /// True when every entry's coordinates are in range.
  [[nodiscard]] bool valid() const;

  /// Entries sorted by (row, col) — the layout the PRAM SpMV baseline
  /// assumes (Section VIII "PRAM Simulation Upper Bound").
  [[nodiscard]] CooMatrix sorted_by_row() const;

  /// Host-side reference product y = A x (used to verify the spatial
  /// implementations).
  [[nodiscard]] std::vector<double> multiply_reference(
      const std::vector<double>& x) const;

 private:
  index_t rows_;
  index_t cols_;
  std::vector<Triple> entries_;
};

}  // namespace scm
