// Sparse matrix workload generators for the examples, tests, and the
// Table I SpMV benchmark. The paper motivates SpMV with scientific
// computing (stencil/banded systems, conjugate gradients) and graph
// workloads (power-law adjacency structure); the generators cover those
// regimes plus the permutation matrices of the energy lower bound
// (Lemma VIII.1).
#pragma once

#include "spmv/coo.hpp"

#include <cstdint>
#include <vector>

namespace scm {

/// `nnz` entries at uniformly random coordinates (duplicates allowed, they
/// act additively) with values uniform in [-1, 1).
[[nodiscard]] CooMatrix random_uniform_matrix(index_t n, index_t nnz,
                                              std::uint64_t seed);

/// The identity-pattern diagonal matrix with the given diagonal values.
[[nodiscard]] CooMatrix diagonal_matrix(const std::vector<double>& diag);

/// A banded matrix with the given half-bandwidth (entries on all diagonals
/// |i - j| <= band), values uniform in [-1, 1).
[[nodiscard]] CooMatrix banded_matrix(index_t n, index_t band,
                                      std::uint64_t seed);

/// A power-law row-degree matrix (graph-like): row i receives about
/// max_degree / (i + 1)^alpha entries at random columns. Rows are then
/// shuffled so the heavy rows are not clustered.
[[nodiscard]] CooMatrix power_law_matrix(index_t n, index_t max_degree,
                                         double alpha, std::uint64_t seed);

/// The permutation matrix P with P x = x permuted by `perm` (perm[i] is
/// the source index of output i). Used by the SpMV lower-bound argument.
[[nodiscard]] CooMatrix permutation_matrix(const std::vector<index_t>& perm);

/// The 5-point 2-D Poisson stencil on a grid_side x grid_side domain
/// (n = grid_side^2 unknowns): 4 on the diagonal, -1 to each neighbour.
/// Symmetric positive definite — the conjugate-gradient example's system.
[[nodiscard]] CooMatrix poisson2d_matrix(index_t grid_side);

}  // namespace scm
