#include "spmv/mm_io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace scm {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("matrix market: " + what);
}

}  // namespace

CooMatrix read_matrix_market(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) fail("empty input");
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket") fail("missing %%MatrixMarket banner");
  if (lower(object) != "matrix") fail("unsupported object '" + object + "'");
  if (lower(format) != "coordinate") {
    fail("unsupported format '" + format + "' (only coordinate)");
  }
  field = lower(field);
  symmetry = lower(symmetry);
  const bool pattern = field == "pattern";
  if (!pattern && field != "real" && field != "integer") {
    fail("unsupported field '" + field + "'");
  }
  const bool symmetric =
      symmetry == "symmetric" || symmetry == "skew-symmetric";
  const bool skew = symmetry == "skew-symmetric";
  if (!symmetric && symmetry != "general") {
    fail("unsupported symmetry '" + symmetry + "'");
  }

  // Skip comments, read the size line.
  index_t rows = 0, cols = 0, nnz = 0;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] == '%') continue;
    std::istringstream sizes(line);
    if (!(sizes >> rows >> cols >> nnz)) continue;  // blank line
    break;
  }
  if (rows <= 0 || cols <= 0 || nnz < 0) fail("bad size line");

  CooMatrix out(rows, cols);
  for (index_t e = 0; e < nnz; ++e) {
    index_t r = 0, c = 0;
    double v = 1.0;
    if (!(in >> r >> c)) fail("truncated entry list");
    if (!pattern && !(in >> v)) fail("missing value");
    if (r < 1 || r > rows || c < 1 || c > cols) {
      fail("entry out of range at line " + std::to_string(e));
    }
    out.add(r - 1, c - 1, v);
    if (symmetric && r != c) out.add(c - 1, r - 1, skew ? -v : v);
  }
  return out;
}

CooMatrix read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot open '" + path + "'");
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const CooMatrix& matrix) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << "% written by scm\n";
  out << matrix.n_rows() << " " << matrix.n_cols() << " " << matrix.nnz()
      << "\n";
  out.precision(17);
  for (const Triple& t : matrix.entries()) {
    out << (t.row + 1) << " " << (t.col + 1) << " " << t.value << "\n";
  }
}

void write_matrix_market_file(const std::string& path,
                              const CooMatrix& matrix) {
  std::ofstream out(path);
  if (!out) fail("cannot open '" + path + "' for writing");
  write_matrix_market(out, matrix);
}

}  // namespace scm
