#include "spmv/generators.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <random>

namespace scm {

CooMatrix random_uniform_matrix(index_t n, index_t nnz, std::uint64_t seed) {
  assert(n >= 1 && nnz >= 0);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<index_t> coord(0, n - 1);
  std::uniform_real_distribution<double> val(-1.0, 1.0);
  CooMatrix a(n, n);
  for (index_t e = 0; e < nnz; ++e) a.add(coord(rng), coord(rng), val(rng));
  return a;
}

CooMatrix diagonal_matrix(const std::vector<double>& diag) {
  const auto n = static_cast<index_t>(diag.size());
  CooMatrix a(n, n);
  for (index_t i = 0; i < n; ++i) a.add(i, i, diag[static_cast<size_t>(i)]);
  return a;
}

CooMatrix banded_matrix(index_t n, index_t band, std::uint64_t seed) {
  assert(n >= 1 && band >= 0);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> val(-1.0, 1.0);
  CooMatrix a(n, n);
  for (index_t i = 0; i < n; ++i) {
    const index_t lo = std::max<index_t>(0, i - band);
    const index_t hi = std::min<index_t>(n - 1, i + band);
    for (index_t j = lo; j <= hi; ++j) a.add(i, j, val(rng));
  }
  return a;
}

CooMatrix power_law_matrix(index_t n, index_t max_degree, double alpha,
                           std::uint64_t seed) {
  assert(n >= 1 && max_degree >= 1);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<index_t> coord(0, n - 1);
  std::uniform_real_distribution<double> val(-1.0, 1.0);
  std::vector<index_t> row_of(static_cast<size_t>(n));
  std::iota(row_of.begin(), row_of.end(), index_t{0});
  std::shuffle(row_of.begin(), row_of.end(), rng);
  CooMatrix a(n, n);
  for (index_t i = 0; i < n; ++i) {
    const double want = static_cast<double>(max_degree) /
                        std::pow(static_cast<double>(i + 1), alpha);
    const auto deg = std::max<index_t>(1, static_cast<index_t>(want));
    for (index_t d = 0; d < deg; ++d) {
      a.add(row_of[static_cast<size_t>(i)], coord(rng), val(rng));
    }
  }
  return a;
}

CooMatrix permutation_matrix(const std::vector<index_t>& perm) {
  const auto n = static_cast<index_t>(perm.size());
  CooMatrix a(n, n);
  for (index_t i = 0; i < n; ++i) a.add(i, perm[static_cast<size_t>(i)], 1.0);
  return a;
}

CooMatrix poisson2d_matrix(index_t grid_side) {
  assert(grid_side >= 1);
  const index_t n = grid_side * grid_side;
  CooMatrix a(n, n);
  auto id = [&](index_t r, index_t c) { return r * grid_side + c; };
  for (index_t r = 0; r < grid_side; ++r) {
    for (index_t c = 0; c < grid_side; ++c) {
      const index_t u = id(r, c);
      a.add(u, u, 4.0);
      if (r > 0) a.add(u, id(r - 1, c), -1.0);
      if (r + 1 < grid_side) a.add(u, id(r + 1, c), -1.0);
      if (c > 0) a.add(u, id(r, c - 1), -1.0);
      if (c + 1 < grid_side) a.add(u, id(r, c + 1), -1.0);
    }
  }
  return a;
}

}  // namespace scm
