#include "spmv/coo.hpp"

#include <algorithm>
#include <cassert>

namespace scm {

void CooMatrix::add(index_t row, index_t col, double value) {
  assert(row >= 0 && row < rows_ && col >= 0 && col < cols_);
  entries_.push_back(Triple{row, col, value});
}

bool CooMatrix::valid() const {
  for (const Triple& t : entries_) {
    if (t.row < 0 || t.row >= rows_ || t.col < 0 || t.col >= cols_) {
      return false;
    }
  }
  return true;
}

CooMatrix CooMatrix::sorted_by_row() const {
  CooMatrix out(rows_, cols_);
  out.entries_ = entries_;
  std::stable_sort(out.entries_.begin(), out.entries_.end(),
                   [](const Triple& a, const Triple& b) {
                     if (a.row != b.row) return a.row < b.row;
                     return a.col < b.col;
                   });
  return out;
}

std::vector<double> CooMatrix::multiply_reference(
    const std::vector<double>& x) const {
  assert(static_cast<index_t>(x.size()) == cols_);
  std::vector<double> y(static_cast<size_t>(rows_), 0.0);
  for (const Triple& t : entries_) {
    y[static_cast<size_t>(t.row)] += t.value * x[static_cast<size_t>(t.col)];
  }
  return y;
}

}  // namespace scm
