#include "spmv/spmm.hpp"

#include "collectives/scan.hpp"
#include "sort/mergesort2d.hpp"
#include "spatial/grid_array.hpp"
#include "spatial/zorder.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

namespace scm {

namespace {

struct ByCol {
  bool operator()(const Triple& a, const Triple& b) const {
    return a.col < b.col;
  }
};

struct ByRow {
  bool operator()(const Triple& a, const Triple& b) const {
    return a.row < b.row;
  }
};

std::vector<char> simultaneous_leaders(Machine& m, GridArray<Triple>& sorted,
                                       bool by_row) {
  const index_t n = sorted.size();
  std::vector<Clock> before(static_cast<size_t>(n));
  for (index_t i = 0; i < n; ++i) before[static_cast<size_t>(i)] =
      sorted[i].clock;
  std::vector<char> leader(static_cast<size_t>(n), 0);
  for (index_t i = 0; i < n; ++i) {
    if (i == 0) {
      leader[0] = 1;
      continue;
    }
    const Clock arrived = m.send(sorted.coord(i - 1), sorted.coord(i),
                                 before[static_cast<size_t>(i - 1)]);
    sorted[i].clock = Clock::join(sorted[i].clock, arrived);
    m.op();
    const bool same = by_row
                          ? sorted[i].value.row == sorted[i - 1].value.row
                          : sorted[i].value.col == sorted[i - 1].value.col;
    leader[static_cast<size_t>(i)] = same ? 0 : 1;
  }
  return leader;
}

}  // namespace

std::vector<std::vector<double>> spmv_multi(
    Machine& machine, const CooMatrix& a,
    const std::vector<std::vector<double>>& xs) {
  if (!a.valid()) throw std::invalid_argument("spmv_multi: invalid matrix");
  for (const auto& x : xs) {
    if (static_cast<index_t>(x.size()) != a.n_cols()) {
      throw std::invalid_argument("spmv_multi: x size mismatch");
    }
  }
  Machine::PhaseScope scope(machine, "spmv_multi");
  const index_t m = a.nnz();
  const index_t n_rows = a.n_rows();
  const index_t n_cols = a.n_cols();
  std::vector<std::vector<double>> ys(
      xs.size(), std::vector<double>(static_cast<size_t>(n_rows), 0.0));
  if (m == 0 || xs.empty()) return ys;

  const index_t mat_side = square_side_for(m);
  const Rect x_rect = square_at({0, mat_side}, square_side_for(n_cols));
  GridArray<Triple> triples = GridArray<Triple>::from_values_square(
      {0, 0}, a.entries(), Layout::kZOrder);

  // --- paid once: structure sorts, leader flags, routing permutation ---
  GridArray<Triple> by_col = mergesort2d(machine, triples, ByCol{});
  std::vector<char> col_leader =
      simultaneous_leaders(machine, by_col, /*by_row=*/false);
  GridArray<Triple> by_col_z = route_permutation(
      machine, by_col, by_col.region(), Layout::kZOrder);

  GridArray<Triple> by_row = mergesort2d(machine, by_col_z, ByRow{});
  GridArray<Triple> by_row_z = route_permutation(
      machine, by_row, by_row.region(), Layout::kZOrder);
  std::vector<char> row_leader(static_cast<size_t>(m), 0);
  for (index_t i = 0; i < m; ++i) {
    row_leader[static_cast<size_t>(i)] =
        (i == 0 || by_row_z[i].value.row != by_row_z[i - 1].value.row) ? 1
                                                                       : 0;
  }
  // The by-col -> by-row position mapping is fixed by the stable sort.
  std::vector<index_t> col_to_row_pos(static_cast<size_t>(m));
  {
    std::vector<index_t> order(static_cast<size_t>(m));
    std::iota(order.begin(), order.end(), index_t{0});
    std::stable_sort(order.begin(), order.end(), [&](index_t x, index_t y) {
      return by_col_z[x].value.row < by_col_z[y].value.row;
    });
    for (index_t pos = 0; pos < m; ++pos) {
      col_to_row_pos[static_cast<size_t>(order[static_cast<size_t>(pos)])] =
          pos;
    }
  }

  // --- per vector: fetch, broadcast, multiply, route, sum, deliver ------
  for (size_t v = 0; v < xs.size(); ++v) {
    const std::vector<double>& x = xs[v];
    GridArray<double> x_grid =
        GridArray<double>::from_values(x_rect, Layout::kRowMajor, x);

    GridArray<Seg<double>> fan(by_col_z.region(), Layout::kZOrder, m);
    for (index_t j = 0; j < m; ++j) {
      Clock clock = by_col_z[j].clock;
      double value = 0.0;
      if (col_leader[static_cast<size_t>(j)]) {
        const index_t col = by_col_z[j].value.col;
        const Coord here = by_col_z.coord(j);
        const Coord there = x_grid.coord(col);
        const Clock req = machine.send(here, there, clock);
        clock = machine.send(there, here,
                             Clock::join(req, x_grid[col].clock));
        value = x[static_cast<size_t>(col)];
      }
      fan[j] = Cell<Seg<double>>{
          Seg<double>{value, col_leader[static_cast<size_t>(j)] != 0}, clock};
      machine.op();
    }
    GridArray<Seg<double>> fanned = segmented_scan(machine, fan, First{});

    // Multiply locally, route along the static permutation into row order.
    GridArray<Seg<double>> sums(by_row_z.region(), Layout::kZOrder, m);
    for (index_t j = 0; j < m; ++j) {
      const double product =
          by_col_z[j].value.value * fanned[j].value.value;
      machine.op();
      const index_t dst = col_to_row_pos[static_cast<size_t>(j)];
      const Clock moved =
          machine.send(by_col_z.coord(j), sums.coord(dst),
                       Clock::join(by_col_z[j].clock, fanned[j].clock));
      sums[dst] = Cell<Seg<double>>{
          Seg<double>{product, row_leader[static_cast<size_t>(dst)] != 0},
          moved};
    }
    GridArray<Seg<double>> summed = segmented_scan(machine, sums, Plus{});

    for (index_t j = 0; j < m; ++j) {
      const bool last =
          j + 1 == m || row_leader[static_cast<size_t>(j + 1)] != 0;
      if (!last) continue;
      ys[v][static_cast<size_t>(by_row_z[j].value.row)] =
          summed[j].value.value;
      machine.observe(summed[j].clock);
    }
  }
  return ys;
}

}  // namespace scm
