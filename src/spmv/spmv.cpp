#include "spmv/spmv.hpp"

#include "collectives/scan.hpp"
#include "sort/mergesort2d.hpp"
#include "spatial/zorder.hpp"

#include <cassert>
#include <stdexcept>

namespace scm {

namespace {

struct ByCol {
  bool operator()(const Triple& a, const Triple& b) const {
    return a.col < b.col;
  }
};

struct ByRow {
  bool operator()(const Triple& a, const Triple& b) const {
    return a.row < b.row;
  }
};

/// Neighbour hand-off leader detection over a sorted triple array: entry j
/// learns entry j-1's key with one message and leads iff the keys differ.
/// Hand-offs are simultaneous (each entry forwards its pre-round clock),
/// adding O(1) depth.
template <class KeyOf>
std::vector<char> detect_leaders(Machine& m, GridArray<Triple>& sorted,
                                 KeyOf key) {
  const index_t n = sorted.size();
  std::vector<Clock> before(static_cast<size_t>(n));
  for (index_t j = 0; j < n; ++j) {
    before[static_cast<size_t>(j)] = sorted[j].clock;
  }
  std::vector<char> leader(static_cast<size_t>(n), 0);
  for (index_t j = 0; j < n; ++j) {
    if (j == 0) {
      leader[0] = 1;
      continue;
    }
    const Clock arrived = m.send(sorted.coord(j - 1), sorted.coord(j),
                                 before[static_cast<size_t>(j - 1)]);
    sorted[j].clock = Clock::join(sorted[j].clock, arrived);
    m.op();
    leader[static_cast<size_t>(j)] =
        key(sorted[j].value) != key(sorted[j - 1].value) ? 1 : 0;
  }
  return leader;
}

}  // namespace

SpmvResult spmv(Machine& machine, const CooMatrix& a,
                const std::vector<double>& x) {
  if (!a.valid()) throw std::invalid_argument("spmv: invalid COO matrix");
  if (static_cast<index_t>(x.size()) != a.n_cols()) {
    throw std::invalid_argument("spmv: x size does not match matrix columns");
  }
  Machine::PhaseScope scope(machine, "spmv");
  const index_t m = a.nnz();
  const index_t n_rows = a.n_rows();
  const index_t n_cols = a.n_cols();

  // Placement: matrix at the origin; x and y subgrids adjacent.
  const index_t mat_side = square_side_for(std::max<index_t>(m, 1));
  const index_t x_side = square_side_for(n_cols);
  const index_t y_side = square_side_for(n_rows);
  const Rect x_rect = square_at({0, mat_side}, x_side);
  const Rect y_rect = square_at({0, mat_side + x_side}, y_side);
  GridArray<double> x_grid =
      GridArray<double>::from_values(x_rect, Layout::kRowMajor, x);
  GridArray<double> y_grid(y_rect, Layout::kRowMajor, n_rows);
  std::vector<double> y(static_cast<size_t>(n_rows), 0.0);
  if (m == 0) return SpmvResult{std::move(y), std::move(y_grid)};

  GridArray<Triple> triples = GridArray<Triple>::from_values_square(
      {0, 0}, a.entries(), Layout::kZOrder);

  // Step 1: sort by column index.
  GridArray<Triple> by_col = mergesort2d(machine, triples, ByCol{});

  // Step 2: column leaders.
  std::vector<char> col_leader =
      detect_leaders(machine, by_col, [](const Triple& t) { return t.col; });

  // Step 3: leaders fetch x_j; segmented broadcast along the segments.
  for (index_t j = 0; j < m; ++j) {
    if (!col_leader[static_cast<size_t>(j)]) continue;
    const index_t col = by_col[j].value.col;
    const Coord here = by_col.coord(j);
    const Coord there = x_grid.coord(col);
    const Clock req = machine.send(here, there, by_col[j].clock);
    const Clock resp =
        machine.send(there, here, Clock::join(req, x_grid[col].clock));
    by_col[j].clock = resp;
  }
  GridArray<Triple> by_col_z =
      route_permutation(machine, by_col, by_col.region(), Layout::kZOrder);
  GridArray<Seg<double>> xseg(by_col_z.region(), Layout::kZOrder, m);
  for (index_t j = 0; j < m; ++j) {
    const bool head = col_leader[static_cast<size_t>(j)] != 0;
    xseg[j] = Cell<Seg<double>>{
        Seg<double>{head ? x[static_cast<size_t>(by_col_z[j].value.col)] : 0.0,
                    head},
        by_col_z[j].clock};
    machine.op();
  }
  GridArray<Seg<double>> fanned = segmented_scan(machine, xseg, First{});

  // Step 4: local partial products.
  GridArray<Triple> products(by_col_z.region(), Layout::kZOrder, m);
  for (index_t j = 0; j < m; ++j) {
    Triple t = by_col_z[j].value;
    t.value *= fanned[j].value.value;
    products[j] = Cell<Triple>{
        t, Clock::join(by_col_z[j].clock, fanned[j].clock)};
    machine.op();
  }

  // Step 5: sort the partial products by row index.
  GridArray<Triple> by_row = mergesort2d(machine, products, ByRow{});

  // Step 6: row leaders.
  std::vector<char> row_leader =
      detect_leaders(machine, by_row, [](const Triple& t) { return t.row; });

  // Step 7: segmented sum per row; the segment's last entry hands the row
  // total to the row leader, which delivers it to the output subgrid.
  GridArray<Triple> by_row_z =
      route_permutation(machine, by_row, by_row.region(), Layout::kZOrder);
  GridArray<Seg<double>> sums(by_row_z.region(), Layout::kZOrder, m);
  for (index_t j = 0; j < m; ++j) {
    sums[j] = Cell<Seg<double>>{
        Seg<double>{by_row_z[j].value.value,
                    row_leader[static_cast<size_t>(j)] != 0},
        by_row_z[j].clock};
    machine.op();
  }
  GridArray<Seg<double>> summed = segmented_scan(machine, sums, Plus{});

  index_t seg_start = 0;
  for (index_t j = 0; j < m; ++j) {
    const bool last =
        j + 1 == m || row_leader[static_cast<size_t>(j + 1)] != 0;
    if (row_leader[static_cast<size_t>(j)]) seg_start = j;
    if (!last) continue;
    const index_t row = by_row_z[j].value.row;
    const double total = summed[j].value.value;
    // Hand the total to the row leader...
    const Clock at_leader = machine.send(by_row_z.coord(j),
                                         by_row_z.coord(seg_start),
                                         summed[j].clock);
    // ...which delivers (i, y_i) to the output subgrid.
    const Clock delivered = machine.send(by_row_z.coord(seg_start),
                                         y_grid.coord(row), at_leader);
    y[static_cast<size_t>(row)] = total;
    y_grid[row] = Cell<double>{total, delivered};
  }
  return SpmvResult{std::move(y), std::move(y_grid)};
}

}  // namespace scm
