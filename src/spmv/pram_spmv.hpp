// The PRAM-simulation SpMV baseline of Section VIII ("PRAM Simulation
// Upper Bound").
//
// A CRCW PRAM algorithm computes the partial products A_ij x_j in parallel
// (the reads of x_j are concurrent) and then forms the row sums with a
// Brent-scheduled work-efficient segmented scan: p = ceil(m / log2 m)
// processors each handle a log2(m)-entry chunk sequentially, a
// Hillis-Steele pass combines the chunk partials, and a fix-up pass
// finishes the prefixes. T = O(log m) steps in total.
//
// Simulated with simulate_crcw (Lemma VII.2) this costs O(m^{3/2}) energy,
// O(log^4 m) depth, and O(sqrt(m) log m) distance — the baseline the
// direct SpMV of Theorem VIII.2 beats by a log factor in depth and
// distance (bench/bench_spmv_vs_pram).
#pragma once

#include "pram/program.hpp"
#include "spatial/machine.hpp"
#include "spmv/coo.hpp"

#include <vector>

namespace scm {

/// The Brent-scheduled CRCW SpMV program for a fixed matrix (entries must
/// be sorted by row; addresses and segment boundaries are baked in at
/// construction, which is what makes the program's control flow static).
class BrentSpmvProgram : public pram::Program {
 public:
  /// `a` must be sorted by row (CooMatrix::sorted_by_row) and non-empty.
  explicit BrentSpmvProgram(const CooMatrix& a);

  [[nodiscard]] index_t num_processors() const override { return p_; }
  [[nodiscard]] index_t num_cells() const override { return cells_; }
  [[nodiscard]] index_t num_steps() const override { return steps_; }

  [[nodiscard]] std::optional<index_t> read_request(
      index_t t, index_t p, const pram::ProcessorState& state) const override;

  std::optional<pram::WriteOp> execute(
      index_t t, index_t p, pram::ProcessorState& state,
      std::optional<pram::Word> read) const override;

  /// Builds the initial memory image for input vector `x`: matrix values,
  /// then x, then zeroed partials and output cells.
  [[nodiscard]] std::vector<pram::Word> initial_memory(
      const std::vector<double>& x) const;

  /// Extracts y from a final memory image.
  [[nodiscard]] std::vector<double> extract_result(
      const std::vector<pram::Word>& memory) const;

 private:
  // Phase boundaries in step indices; see pram_spmv.cpp for the schedule.
  struct Slot {
    int phase;
    index_t offset;
  };
  [[nodiscard]] Slot slot_of(index_t t) const;

  index_t m_;        // non-zeros
  index_t n_rows_;
  index_t n_cols_;
  index_t chunk_;    // L = chunk length ~ log2(m)
  index_t p_;        // processors
  index_t rounds_;   // Hillis-Steele rounds over the chunk partials
  index_t steps_;
  index_t cells_;
  index_t x_base_;
  index_t partial_base_;
  index_t y_base_;

  std::vector<index_t> col_;       // per entry: column index
  std::vector<double> value_;      // per entry: matrix value
  std::vector<index_t> row_;       // per entry: row index
  std::vector<char> head_;         // per entry: first of its row segment
  std::vector<char> row_end_;      // per entry: last of its row segment
  std::vector<index_t> first_head_;  // per chunk: local offset of first
                                     // head, or chunk length if none
  std::vector<std::vector<char>> absorb_;  // [round][chunk]
};

/// Computes y = A x by running the Brent-scheduled program under the CRCW
/// simulation. `a` may be in any entry order (it is row-sorted host-side,
/// mirroring the paper's assumption that the PRAM input is pre-grouped).
[[nodiscard]] std::vector<double> spmv_pram(Machine& machine,
                                            const CooMatrix& a,
                                            const std::vector<double>& x);

}  // namespace scm
