// Low-depth sparse matrix-vector multiplication (Section VIII,
// Theorem VIII.2).
//
// The matrix's m non-zero triples start in arbitrary order on a
// sqrt(m) x sqrt(m) subgrid; the vector x sits on an adjacent
// sqrt(n) x sqrt(n) subgrid. The algorithm:
//   1. sort the triples by column index (2-D Mergesort), grouping entries
//      of the same column into contiguous segments;
//   2. detect *column leaders* by a neighbour hand-off of column indices;
//   3. each leader fetches x_j from the vector subgrid; a segmented
//      broadcast (a segmented scan with the copy-first operator)
//      distributes it along the segment;
//   4. every entry computes its partial product A_ij * x_j locally;
//   5. sort the partial products by row index;
//   6. detect *row leaders*;
//   7. a segmented (+)-scan sums each row; the row's total lands on its
//      last entry and is handed to the row leader, which delivers
//      (i, y_i) to the output subgrid.
//
// Costs (Theorem VIII.2): O(m^{3/2}) energy, O(log^3 n) depth, O(sqrt m)
// distance — dominated by the two sorts and the scans. Rows with no
// non-zeros produce y_i = 0 with no messages. The energy is optimal for
// m = O(n) by the permutation lower bound (Lemma VIII.1).
#pragma once

#include "spatial/grid_array.hpp"
#include "spatial/machine.hpp"
#include "spmv/coo.hpp"

#include <vector>

namespace scm {

/// Result of a spatial SpMV: the output vector y (host copy) plus the
/// GridArray holding it on the output subgrid with per-entry clocks.
struct SpmvResult {
  std::vector<double> y;
  GridArray<double> y_grid;
};

/// Computes y = A x with the sort-and-scan SpMV of Section VIII.
/// The matrix subgrid sits at the origin, the vector subgrid to its right,
/// and the output subgrid to the right of that.
[[nodiscard]] SpmvResult spmv(Machine& machine, const CooMatrix& a,
                              const std::vector<double>& x);

}  // namespace scm
