#include "spmv/pram_spmv.hpp"

#include "pram/crcw.hpp"

#include <cassert>
#include <stdexcept>

namespace scm {

// Step schedule (L = chunk_, R = rounds_):
//   phase 0: 2L steps  — per slot i: read value[e], then read x[col_e] and
//                        write the product to cell e;
//   phase 1: L steps   — chunk-local segmented prefix: read cell e, write
//                        the running prefix (reset at heads);
//   phase 2: 1 step    — write the chunk partial;
//   phase 3: R steps   — segmented Hillis-Steele over the partials;
//   phase 4: 1 step    — read the left neighbour's partial (the incoming
//                        prefix);
//   phase 5: L steps   — fix-up: add the incoming prefix to entries before
//                        the chunk's first head;
//   phase 6: L steps   — row ends write their row's total to y.
namespace {
constexpr int kProducts = 0;
constexpr int kLocalScan = 1;
constexpr int kWritePartial = 2;
constexpr int kCombine = 3;
constexpr int kReadIncoming = 4;
constexpr int kFixup = 5;
constexpr int kEmit = 6;

// Register roles.
constexpr int kRegValue = 0;    // loaded matrix value
constexpr int kRegRunning = 1;  // running chunk prefix / chunk partial
constexpr int kRegIncoming = 2; // incoming cross-chunk prefix
}  // namespace

BrentSpmvProgram::BrentSpmvProgram(const CooMatrix& a)
    : m_(a.nnz()), n_rows_(a.n_rows()), n_cols_(a.n_cols()) {
  if (m_ <= 0) throw std::invalid_argument("BrentSpmvProgram: empty matrix");
  const std::vector<Triple>& e = a.entries();
  for (index_t i = 1; i < m_; ++i) {
    if (e[static_cast<size_t>(i - 1)].row > e[static_cast<size_t>(i)].row) {
      throw std::invalid_argument("BrentSpmvProgram: entries not row-sorted");
    }
  }

  index_t log_m = 1;
  while ((index_t{1} << log_m) < m_) ++log_m;
  chunk_ = log_m;
  p_ = (m_ + chunk_ - 1) / chunk_;
  rounds_ = 0;
  while ((index_t{1} << rounds_) < p_) ++rounds_;
  steps_ = 2 * chunk_ + chunk_ + 1 + rounds_ + 1 + chunk_ + chunk_;
  x_base_ = m_;
  partial_base_ = m_ + n_cols_;
  y_base_ = partial_base_ + p_;
  cells_ = y_base_ + n_rows_;

  col_.resize(static_cast<size_t>(m_));
  value_.resize(static_cast<size_t>(m_));
  row_.resize(static_cast<size_t>(m_));
  head_.resize(static_cast<size_t>(m_));
  row_end_.resize(static_cast<size_t>(m_));
  for (index_t i = 0; i < m_; ++i) {
    const auto s = static_cast<size_t>(i);
    col_[s] = e[s].col;
    value_[s] = e[s].value;
    row_[s] = e[s].row;
    head_[s] = (i == 0 || e[s - 1].row != e[s].row) ? 1 : 0;
    row_end_[s] =
        (i + 1 == m_ || e[s + 1].row != e[s].row) ? 1 : 0;
  }

  first_head_.assign(static_cast<size_t>(p_), chunk_);
  for (index_t c = 0; c < p_; ++c) {
    for (index_t i = 0; i < chunk_; ++i) {
      const index_t entry = c * chunk_ + i;
      if (entry >= m_) break;
      if (head_[static_cast<size_t>(entry)]) {
        first_head_[static_cast<size_t>(c)] = i;
        break;
      }
    }
  }

  // Static flag propagation for the segmented Hillis-Steele over partials:
  // absorb_[t][c] says whether chunk c adds partial[c - 2^t] in round t.
  std::vector<char> flag(static_cast<size_t>(p_));
  for (index_t c = 0; c < p_; ++c) {
    flag[static_cast<size_t>(c)] =
        first_head_[static_cast<size_t>(c)] < chunk_ ? 1 : 0;
  }
  absorb_.assign(static_cast<size_t>(rounds_),
                 std::vector<char>(static_cast<size_t>(p_), 0));
  for (index_t t = 0; t < rounds_; ++t) {
    const index_t stride = index_t{1} << t;
    std::vector<char> next = flag;
    for (index_t c = stride; c < p_; ++c) {
      if (!flag[static_cast<size_t>(c)]) {
        absorb_[static_cast<size_t>(t)][static_cast<size_t>(c)] = 1;
      }
      next[static_cast<size_t>(c)] =
          flag[static_cast<size_t>(c)] | flag[static_cast<size_t>(c - stride)];
    }
    flag = next;
  }
}

BrentSpmvProgram::Slot BrentSpmvProgram::slot_of(index_t t) const {
  if (t < 2 * chunk_) return {kProducts, t};
  t -= 2 * chunk_;
  if (t < chunk_) return {kLocalScan, t};
  t -= chunk_;
  if (t < 1) return {kWritePartial, 0};
  t -= 1;
  if (t < rounds_) return {kCombine, t};
  t -= rounds_;
  if (t < 1) return {kReadIncoming, 0};
  t -= 1;
  if (t < chunk_) return {kFixup, t};
  t -= chunk_;
  return {kEmit, t};
}

std::optional<index_t> BrentSpmvProgram::read_request(
    index_t t, index_t p, const pram::ProcessorState&) const {
  const Slot s = slot_of(t);
  const index_t entry = p * chunk_ + (s.phase == kProducts ? s.offset / 2
                                                           : s.offset);
  switch (s.phase) {
    case kProducts:
      if (entry >= m_) return std::nullopt;
      return (s.offset % 2 == 0)
                 ? entry
                 : x_base_ + col_[static_cast<size_t>(entry)];
    case kLocalScan:
    case kFixup:
      if (entry >= m_) return std::nullopt;
      if (s.phase == kFixup &&
          s.offset >= first_head_[static_cast<size_t>(p)]) {
        return std::nullopt;
      }
      if (s.phase == kFixup && p == 0) return std::nullopt;
      return entry;
    case kWritePartial:
      return std::nullopt;
    case kCombine: {
      const index_t stride = index_t{1} << s.offset;
      if (p < stride ||
          !absorb_[static_cast<size_t>(s.offset)][static_cast<size_t>(p)]) {
        return std::nullopt;
      }
      return partial_base_ + (p - stride);
    }
    case kReadIncoming:
      if (p == 0 || first_head_[static_cast<size_t>(p)] == 0) {
        return std::nullopt;
      }
      return partial_base_ + (p - 1);
    case kEmit:
      if (entry >= m_ || !row_end_[static_cast<size_t>(entry)]) {
        return std::nullopt;
      }
      return entry;
    default:
      return std::nullopt;
  }
}

std::optional<pram::WriteOp> BrentSpmvProgram::execute(
    index_t t, index_t p, pram::ProcessorState& state,
    std::optional<pram::Word> read) const {
  const Slot s = slot_of(t);
  const index_t entry = p * chunk_ + (s.phase == kProducts ? s.offset / 2
                                                           : s.offset);
  switch (s.phase) {
    case kProducts:
      if (entry >= m_) return std::nullopt;
      if (s.offset % 2 == 0) {
        state.reg[kRegValue] = *read;
        return std::nullopt;
      }
      return pram::WriteOp{entry, state.reg[kRegValue] * *read};
    case kLocalScan: {
      if (entry >= m_) return std::nullopt;
      if (head_[static_cast<size_t>(entry)]) {
        state.reg[kRegRunning] = *read;
      } else {
        state.reg[kRegRunning] = (s.offset == 0 ? *read
                                                : state.reg[kRegRunning] +
                                                      *read);
      }
      return pram::WriteOp{entry, state.reg[kRegRunning]};
    }
    case kWritePartial:
      if (p * chunk_ >= m_) return std::nullopt;
      return pram::WriteOp{partial_base_ + p, state.reg[kRegRunning]};
    case kCombine: {
      if (!read) return std::nullopt;
      state.reg[kRegRunning] += *read;
      return pram::WriteOp{partial_base_ + p, state.reg[kRegRunning]};
    }
    case kReadIncoming:
      state.reg[kRegIncoming] = read ? *read : 0.0;
      return std::nullopt;
    case kFixup:
      if (!read) return std::nullopt;
      return pram::WriteOp{entry, *read + state.reg[kRegIncoming]};
    case kEmit:
      if (!read) return std::nullopt;
      return pram::WriteOp{y_base_ + row_[static_cast<size_t>(entry)], *read};
    default:
      return std::nullopt;
  }
}

std::vector<pram::Word> BrentSpmvProgram::initial_memory(
    const std::vector<double>& x) const {
  if (static_cast<index_t>(x.size()) != n_cols_) {
    throw std::invalid_argument("BrentSpmvProgram: x size mismatch");
  }
  std::vector<pram::Word> mem(static_cast<size_t>(cells_), 0.0);
  for (index_t i = 0; i < m_; ++i) {
    mem[static_cast<size_t>(i)] = value_[static_cast<size_t>(i)];
  }
  for (index_t i = 0; i < n_cols_; ++i) {
    mem[static_cast<size_t>(x_base_ + i)] = x[static_cast<size_t>(i)];
  }
  return mem;
}

std::vector<double> BrentSpmvProgram::extract_result(
    const std::vector<pram::Word>& memory) const {
  assert(static_cast<index_t>(memory.size()) == cells_);
  std::vector<double> y(static_cast<size_t>(n_rows_));
  for (index_t i = 0; i < n_rows_; ++i) {
    y[static_cast<size_t>(i)] = memory[static_cast<size_t>(y_base_ + i)];
  }
  return y;
}

std::vector<double> spmv_pram(Machine& machine, const CooMatrix& a,
                              const std::vector<double>& x) {
  Machine::PhaseScope scope(machine, "spmv_pram");
  if (a.nnz() == 0) {
    return std::vector<double>(static_cast<size_t>(a.n_rows()), 0.0);
  }
  const CooMatrix sorted = a.sorted_by_row();
  const BrentSpmvProgram prog(sorted);
  const std::vector<pram::Word> final_mem =
      pram::simulate_crcw(machine, prog, prog.initial_memory(x));
  return prog.extract_result(final_mem);
}

}  // namespace scm
