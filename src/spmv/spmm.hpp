// Multi-vector SpMV (SpMM with a tall-skinny dense right-hand side) —
// the "sparse matrix-multiple vectors" workload the paper cites for
// scientific computing [Aktulga et al.], built as an extension of the
// Section VIII pipeline.
//
// The two 2-D Mergesorts (by column, then by row) depend only on the
// matrix structure, so they are paid ONCE; each right-hand-side vector
// then reuses the sorted orders and the (static) by-column -> by-row
// routing permutation, paying only fetch + segmented broadcast + multiply
// + route + segmented sum. Since the sorts dominate the single-vector
// constant, amortizing them across k vectors is a large constant-factor
// win over k independent spmv() calls (measured by test_spmm).
#pragma once

#include "spatial/machine.hpp"
#include "spmv/coo.hpp"

#include <vector>

namespace scm {

/// Computes y_j = A x_j for every column x_j of `xs`. Equivalent to
/// calling spmv() per vector but with the matrix sorts shared.
[[nodiscard]] std::vector<std::vector<double>> spmv_multi(
    Machine& machine, const CooMatrix& a,
    const std::vector<std::vector<double>>& xs);

}  // namespace scm
