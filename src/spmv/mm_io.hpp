// Matrix Market (.mtx) I/O for COO matrices — the standard interchange
// format for sparse-matrix workloads, so real matrices can be fed to the
// SpMV benchmarks and examples.
//
// Supports the `matrix coordinate` format with `real`, `integer`, or
// `pattern` fields and `general` or `symmetric` symmetry (symmetric
// entries are expanded on read). Writes `matrix coordinate real general`.
#pragma once

#include "spmv/coo.hpp"

#include <iosfwd>
#include <string>

namespace scm {

/// Parses a Matrix Market stream; throws std::runtime_error on malformed
/// input or unsupported qualifiers (complex fields, array format).
[[nodiscard]] CooMatrix read_matrix_market(std::istream& in);

/// Reads a .mtx file; throws std::runtime_error if it cannot be opened.
[[nodiscard]] CooMatrix read_matrix_market_file(const std::string& path);

/// Writes `matrix coordinate real general` (1-based indices, as the
/// format requires).
void write_matrix_market(std::ostream& out, const CooMatrix& matrix);

/// Writes a .mtx file; throws std::runtime_error if it cannot be opened.
void write_matrix_market_file(const std::string& path,
                              const CooMatrix& matrix);

}  // namespace scm
