// The energy-optimal parallel scan (Section IV-C, Lemma IV.3).
//
// Input: an array stored in Z-order on a square power-of-two subgrid.
// Output: inclusive prefix combinations under an associative operator, the
// i-th result stored at the i-th input's processor.
//
// The algorithm forms a 4-ary summation tree over the grid's quadrant
// recursion:
//   * up-sweep   — recursively computes each subtree's total; the root of a
//                  height-i subtree is stored at the i-th processor of the
//                  subtree's subgrid in Z-order, so every processor holds at
//                  most two tree values (Fig. 1a);
//   * down-sweep — passes the prefix "from the left of this subtree" down
//                  the quadrants: quadrant S_i receives x + s_0 + ... +
//                  s_{i-1}, computed by chaining through the quadrant roots
//                  (Fig. 1b).
//
// Costs (Lemma IV.3): O(n) energy (a constant factor over the Z-order curve
// itself), O(log n) depth, O(sqrt(n)) distance.
//
// Arrays may underfill their square region (n need not be a power of 4):
// absent trailing elements are treated as missing, not as identity values,
// so the operator needs no identity element.
#pragma once

#include "collectives/operators.hpp"
#include "spatial/grid_array.hpp"
#include "spatial/machine.hpp"
#include "spatial/zorder.hpp"

#include <cassert>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

namespace scm {

namespace detail {

/// One scan execution: holds the summation-tree nodes produced by the
/// up-sweep so the down-sweep can chain prefixes through them.
///
/// kLog2Arity = 2 gives the paper's 4-ary quadrant tree (the energy-optimal
/// scan); kLog2Arity = 1 gives a binary tree over the array order, which is
/// the paper's "naive 1-D parallel prefix sum" baseline with Theta(n log n)
/// energy when laid out in row-major order.
template <class T, class Op, int kLog2Arity = 2>
class ScanExec {
 public:
  static constexpr int kArity = 1 << kLog2Arity;

  ScanExec(Machine& m, const GridArray<T>& in, GridArray<T>& out, Op op)
      : m_(m), in_(in), out_(out), op_(op), n_(in.size()) {}

  void run() {
    if (n_ == 0) return;
    index_t height = 0;
    while ((index_t{1} << (kLog2Arity * height)) < n_) ++height;
    upsweep(0, height);
    downsweep(0, height, std::nullopt, Coord{});
  }

 private:
  struct Node {
    Cell<T> cell;
    Coord coord;
  };

  static std::uint64_t key(index_t lo, index_t height) {
    return (static_cast<std::uint64_t>(lo) << 6) |
           static_cast<std::uint64_t>(height);
  }

  /// Coordinate of logical position z in the array's layout order over its
  /// full region (valid beyond the array's fill, where summation-tree nodes
  /// of underfilled subtrees may be stored). Honours the array's offset so
  /// scans over z-order sub-ranges stay within their span.
  Coord zcoord(index_t z) const {
    const Rect& r = in_.region();
    const index_t pos = in_.offset() + z;
    if (in_.layout() == Layout::kZOrder) return zorder_coord(r, pos);
    return r.at(pos / r.cols, pos % r.cols);
  }

  /// Computes the subtree total of positions [lo, lo + arity^height),
  /// storing it at position lo + height of the region ("the i-th processor
  /// of the current subgrid in Z-order, where i is the distance to a
  /// leaf").
  Node upsweep(index_t lo, index_t height) {
    if (height == 0) {
      Node node{in_[lo], in_.coord(lo)};
      nodes_[key(lo, 0)] = node;
      return node;
    }
    const index_t child_len = index_t{1} << (kLog2Arity * (height - 1));
    const Coord store_at = zcoord(lo + height);
    std::optional<Cell<T>> acc;
    for (int c = 0; c < kArity; ++c) {
      const index_t child_lo = lo + c * child_len;
      if (child_lo >= n_) break;
      const Node child = upsweep(child_lo, height - 1);
      const Cell<T> arrived{child.cell.value,
                            m_.send(child.coord, store_at, child.cell.clock)};
      if (acc) {
        acc = Cell<T>{op_(acc->value, arrived.value),
                      Clock::join(acc->clock, arrived.clock)};
        m_.op();
        m_.observe(acc->clock);
      } else {
        acc = arrived;
      }
    }
    Node node{*acc, store_at};
    nodes_[key(lo, height)] = node;
    return node;
  }

  /// Delivers the exclusive prefix `x` (resident at `x_at`, or nullopt for
  /// the leftmost spine) into the subtree and writes inclusive results.
  /// Within one level the prefix chains through the quadrant roots:
  /// S_i's prefix is x + s_0 + ... + s_{i-1} (Fig. 1b).
  void downsweep(index_t lo, index_t height, std::optional<Cell<T>> x,
                 Coord x_at) {
    if (height == 0) {
      const Cell<T>& leaf = in_[lo];
      if (x) {
        // x has already been delivered to the leaf's processor by the
        // caller (the height-0 node coordinate is the leaf itself).
        out_[lo] = Cell<T>{op_(x->value, leaf.value),
                           Clock::join(x->clock, leaf.clock)};
        m_.op();
        m_.observe(out_[lo].clock);
      } else {
        out_[lo] = leaf;
      }
      return;
    }
    const index_t child_len = index_t{1} << (kLog2Arity * (height - 1));
    std::optional<Cell<T>> running = x;
    Coord running_at = x_at;
    for (int c = 0; c < kArity; ++c) {
      const index_t child_lo = lo + c * child_len;
      if (child_lo >= n_) break;
      const Node& child = nodes_[key(child_lo, height - 1)];
      // Deliver the current prefix to this child's root processor.
      std::optional<Cell<T>> delivered;
      if (running) {
        delivered = Cell<T>{
            running->value, m_.send(running_at, child.coord, running->clock)};
      }
      downsweep(child_lo, height - 1, delivered, child.coord);
      // Extend the prefix with this child's subtree total; the extension is
      // computed at the child's root, where both operands reside.
      if (delivered) {
        running = Cell<T>{op_(delivered->value, child.cell.value),
                          Clock::join(delivered->clock, child.cell.clock)};
        m_.op();
        m_.observe(running->clock);
      } else {
        running = child.cell;
      }
      running_at = child.coord;
    }
  }

  Machine& m_;
  const GridArray<T>& in_;
  GridArray<T>& out_;
  Op op_;
  index_t n_;
  std::unordered_map<std::uint64_t, Node> nodes_;
};

}  // namespace detail

/// Inclusive prefix scan of a Z-order array under the associative operator
/// `op` (Lemma IV.3: O(n) energy, O(log n) depth, O(sqrt n) distance).
/// Results are returned in an array with the same region and layout; the
/// i-th result lives at the i-th input's processor.
template <class T, class Op>
[[nodiscard]] GridArray<T> scan(Machine& m, const GridArray<T>& a, Op op) {
  assert(a.layout() == Layout::kZOrder);
#ifndef NDEBUG
  // Summation-tree nodes occupy layout positions up to the smallest power
  // of four covering the array; they must fit inside the region.
  index_t cap = 1;
  while (cap < a.size()) cap <<= 2;
  assert(a.offset() + cap <= a.region().size());
#endif
  Machine::PhaseScope scope(m, "scan");
  GridArray<T> out(a.region(), a.layout(), a.size());
  detail::ScanExec<T, Op> exec(m, a, out, op);
  exec.run();
  return out;
}

/// Segmented inclusive scan (Section IV-C "Segmented Scan"): an independent
/// scan per segment, where segments start at elements whose `head` flag is
/// set. Runs the same algorithm under the segmented operator wrapper.
template <class T, class Op>
[[nodiscard]] GridArray<Seg<T>> segmented_scan(Machine& m,
                                               const GridArray<Seg<T>>& a,
                                               Op op) {
  Machine::PhaseScope scope(m, "segmented_scan");
  return scan(m, a, SegOp<Op>{op});
}

/// Exclusive prefix scan: result i combines elements [0, i) and the first
/// result is `identity`. Implemented as the inclusive scan followed by a
/// one-hop shift along the Z-order curve, which adds O(n) energy and O(1)
/// depth (Observation 1) — the bounds of Lemma IV.3 are unchanged.
template <class T, class Op>
[[nodiscard]] GridArray<T> exclusive_scan(Machine& m, const GridArray<T>& a,
                                          Op op, T identity) {
  Machine::PhaseScope scope(m, "exclusive_scan");
  GridArray<T> inclusive = scan(m, a, op);
  GridArray<T> out(a.region(), a.layout(), a.size());
  if (a.size() == 0) return out;
  out[0] = Cell<T>{identity, Clock{}};
  // The shifts are independent (each reads only the inclusive result), so
  // the whole curve walk is one bulk batch over the cached coordinates.
  const std::span<const Coord> at = inclusive.coords();
  std::vector<MessageEvent> batch(static_cast<size_t>(a.size() - 1));
  for (index_t i = 1; i < a.size(); ++i) {
    batch[static_cast<size_t>(i - 1)] =
        MessageEvent{at[static_cast<size_t>(i - 1)],
                     at[static_cast<size_t>(i)], 0, inclusive[i - 1].clock,
                     Clock{}};
  }
  m.send_bulk(batch);
  for (index_t i = 1; i < a.size(); ++i) {
    out[i] = Cell<T>{inclusive[i - 1].value,
                     batch[static_cast<size_t>(i - 1)].arrival};
  }
  return out;
}

}  // namespace scm
