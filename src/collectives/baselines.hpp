// Baseline collectives the paper compares against (Sections II-A and IV-C):
//
//   * sequential_scan   — O(n) energy but Omega(n) depth: a single chain of
//                         messages through the array order;
//   * tree_scan_1d      — the "naive 1-D parallel prefix sum via a binary
//                         tree over the array in row-major order":
//                         O(log n) depth but Omega(n log n) energy;
//   * binomial_broadcast / binomial_reduce
//                       — the binary-tree (binomial) collectives of prior
//                         work [Luczynski et al.]: O(log n) depth but
//                         Theta(n log n) energy on a square grid, which the
//                         paper's quadrant collectives beat by Theta(log n).
//
// These exist to regenerate the paper's comparisons; library users should
// call scan/broadcast/reduce from the optimal headers instead.
#pragma once

#include "collectives/scan.hpp"
#include "spatial/grid_array.hpp"
#include "spatial/machine.hpp"

#include <cassert>
#include <optional>
#include <span>
#include <utility>
#include <vector>

namespace scm {

/// Sequential inclusive scan: element i's running prefix hops to element
/// i+1. O(n) energy on a Z-order layout (Observation 1), Theta(n) depth.
template <class T, class Op>
[[nodiscard]] GridArray<T> sequential_scan(Machine& m, const GridArray<T>& a,
                                           Op op) {
  Machine::PhaseScope scope(m, "sequential_scan");
  GridArray<T> out(a.region(), a.layout(), a.size());
  std::optional<Cell<T>> running;
  for (index_t i = 0; i < a.size(); ++i) {
    if (running) {
      const Cell<T> arrived{running->value, m.send(a.coord(i - 1), a.coord(i),
                                                   running->clock)};
      out[i] = Cell<T>{op(arrived.value, a[i].value),
                       Clock::join(arrived.clock, a[i].clock)};
      m.op();
      m.observe(out[i].clock);
    } else {
      out[i] = a[i];
    }
    running = out[i];
  }
  return out;
}

/// The paper's naive baseline: an inclusive scan over a binary summation
/// tree built on the array order. In row-major layout on a square grid this
/// costs Theta(n log n) energy (Section IV-C). Requires a power-of-two n.
///
/// Ablation note: run on a *Z-order* array the very same binary tree is
/// O(n) energy again (level-k edges span ~2^k curve positions, i.e.
/// O(sqrt(2^k)) Manhattan distance, a geometric series) — demonstrating
/// that the paper's energy win comes from the space-filling layout, with
/// the 4-ary quadrant tree tightening constants and distance. Benchmarked
/// by bench_scan_baselines.
template <class T, class Op>
[[nodiscard]] GridArray<T> tree_scan_1d(Machine& m, const GridArray<T>& a,
                                        Op op) {
  assert(is_pow2(a.size()));
  Machine::PhaseScope scope(m, "tree_scan_1d");
  GridArray<T> out(a.region(), a.layout(), a.size());
  detail::ScanExec<T, Op, /*kLog2Arity=*/1> exec(m, a, out, op);
  exec.run();
  return out;
}

/// Binomial-tree broadcast over the array order of `rect` in row-major:
/// in round d (from the top), the holder at index i forwards to index
/// i + 2^d. Theta(n log n) energy, O(log n) depth on a square grid.
template <class T>
[[nodiscard]] GridArray<T> binomial_broadcast(Machine& m, const Rect& rect,
                                              const Cell<T>& src) {
  Machine::PhaseScope scope(m, "binomial_broadcast");
  const index_t n = rect.size();
  GridArray<T> out(rect, Layout::kRowMajor, n);
  out[0] = src;
  std::vector<bool> has(static_cast<size_t>(n), false);
  has[0] = true;
  index_t span = ceil_pow2(n);
  std::vector<std::pair<index_t, index_t>> moves;
  for (span /= 2; span >= 1; span /= 2) {
    // A round's receivers (index % 2span == span) never send within the
    // round, so all of its forwards are independent: one bulk batch.
    moves.clear();
    for (index_t i = 0; i + span < n; ++i) {
      if (!has[static_cast<size_t>(i)] || has[static_cast<size_t>(i + span)]) {
        continue;
      }
      if (i % (span * 2) != 0) continue;
      moves.push_back({i, i + span});
    }
    send_elements<T>(m, out, out, moves);
    for (const auto& [from, to] : moves) has[static_cast<size_t>(to)] = true;
  }
  return out;
}

/// Binomial-tree reduce over the array order (reverse of the broadcast):
/// round d combines index i + 2^d into index i. Theta(n log n) energy,
/// O(log n) depth on a square grid.
template <class T, class Op>
[[nodiscard]] Cell<T> binomial_reduce(Machine& m, const GridArray<T>& a,
                                      Op op) {
  assert(!a.empty());
  Machine::PhaseScope scope(m, "binomial_reduce");
  const index_t n = a.size();
  std::vector<Cell<T>> acc(static_cast<size_t>(n));
  for (index_t i = 0; i < n; ++i) acc[static_cast<size_t>(i)] = a[i];
  const std::span<const Coord> at = a.coords();
  std::vector<MessageEvent> batch;
  for (index_t span = 1; span < n; span *= 2) {
    // A round's senders (index % 2span == span) and receivers (== 0) are
    // disjoint and every payload is a pre-round accumulator: one batch.
    batch.clear();
    for (index_t i = 0; i + span < n; i += span * 2) {
      batch.push_back(MessageEvent{at[static_cast<size_t>(i + span)],
                                   at[static_cast<size_t>(i)], 0,
                                   acc[static_cast<size_t>(i + span)].clock,
                                   Clock{}});
    }
    m.send_bulk(batch);
    Clock round_max{};
    size_t k = 0;
    for (index_t i = 0; i + span < n; i += span * 2, ++k) {
      const auto lo = static_cast<size_t>(i);
      const auto hi = static_cast<size_t>(i + span);
      acc[lo] = Cell<T>{op(acc[lo].value, acc[hi].value),
                        Clock::join(acc[lo].clock, batch[k].arrival)};
      round_max = Clock::join(round_max, acc[lo].clock);
    }
    m.op_bulk(static_cast<index_t>(k));
    m.observe(round_max);
  }
  return acc[0];
}

}  // namespace scm
