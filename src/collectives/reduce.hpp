// Low-depth reduce and all-reduce (Section IV-B).
//
// Reduce combines n inputs with an associative, commutative operator and
// leaves the result at the subgrid's top-left processor using the reverse
// communication pattern of the broadcast (Corollary IV.2): O(hw + h log h)
// energy, O(log n) depth, O(w + h) distance. On a square subgrid this is a
// logarithmic-depth reduce with optimal O(n) energy — a Theta(log n)
// improvement over the binary-tree reduce baseline (Section II-A).
#pragma once

#include "collectives/broadcast.hpp"
#include "collectives/operators.hpp"
#include "spatial/grid_array.hpp"
#include "spatial/machine.hpp"

#include <cassert>
#include <optional>
#include <vector>

namespace scm {

namespace detail {

/// Accessor mapping a processor coordinate to the array element it holds,
/// or nullptr when the processor holds none (arrays may underfill their
/// region, and reduce subtrees may cover element-free processors that act
/// purely as relays).
template <class T>
class ElementAt {
 public:
  explicit ElementAt(const GridArray<T>& a) : a_(&a) {}

  const Cell<T>* operator()(Coord c) const {
    const Rect& r = a_->region();
    if (!r.contains(c)) return nullptr;
    index_t pos = 0;
    if (a_->layout() == Layout::kRowMajor) {
      pos = (c.row - r.row0) * r.cols + (c.col - r.col0);
    } else {
      pos = zorder_index(r, c);
    }
    const index_t idx = pos - a_->offset();
    if (idx < 0 || idx >= a_->size()) return nullptr;
    return &(*a_)[idx];
  }

 private:
  const GridArray<T>* a_;
};

/// Reverse of broadcast_line: reduces the subtree rooted at `start` over an
/// ordered list of positions whose values are in `acc` (std::optional per
/// position), leaving the subtree result at `acc[start]`.
template <class T, class Op>
void reduce_line(Machine& m, const std::vector<Coord>& pos,
                 std::vector<std::optional<Cell<T>>>& acc, index_t start,
                 index_t len, Op op) {
  if (len <= 1) return;
  const index_t len_a = (len - 1) / 2;
  const index_t len_b = len - 1 - len_a;
  const auto s = static_cast<size_t>(start);
  auto absorb = [&](index_t child) {
    const auto c = static_cast<size_t>(child);
    if (!acc[c]) return;
    const Cell<T> arrived{acc[c]->value,
                          m.send(pos[c], pos[s], acc[c]->clock)};
    if (acc[s]) {
      acc[s] = Cell<T>{op(acc[s]->value, arrived.value),
                       Clock::join(acc[s]->clock, arrived.clock)};
      m.op();
      m.observe(acc[s]->clock);
    } else {
      acc[s] = arrived;
    }
  };
  if (len_a > 0) {
    reduce_line(m, pos, acc, start + 1, len_a, op);
    absorb(start + 1);
  }
  if (len_b > 0) {
    reduce_line(m, pos, acc, start + 1 + len_a, len_b, op);
    absorb(start + 1 + len_a);
  }
}

/// Reduces all elements within `rect` to `rect.origin()` using the reverse
/// broadcast pattern; returns std::nullopt when the rect holds no element.
template <class T, class Op, class Get>
std::optional<Cell<T>> reduce_rect(Machine& m, const Rect& rect, Get&& get,
                                   Op op) {
  assert(rect.size() >= 1);
  if (rect.size() == 1) {
    const Cell<T>* cell = get(rect.origin());
    return cell ? std::optional<Cell<T>>(*cell) : std::nullopt;
  }

  const index_t lo = std::min(rect.rows, rect.cols);
  const index_t hi = std::max(rect.rows, rect.cols);
  if (hi >= 2 * lo && lo >= 1) {
    const bool tall = rect.rows >= rect.cols;
    const index_t blocks = (hi + lo - 1) / lo;
    std::vector<Coord> corners;
    std::vector<std::optional<Cell<T>>> acc;
    std::vector<Rect> block_rects;
    for (index_t b = 0; b < blocks; ++b) {
      const index_t off = b * lo;
      const index_t extent = std::min(lo, hi - off);
      const Rect br = tall ? Rect{rect.row0 + off, rect.col0, extent, lo}
                           : Rect{rect.row0, rect.col0 + off, lo, extent};
      corners.push_back(br.origin());
      block_rects.push_back(br);
    }
    acc.resize(corners.size());
    for (size_t b = 0; b < block_rects.size(); ++b) {
      acc[b] = reduce_rect<T>(m, block_rects[b], get, op);
    }
    reduce_line(m, corners, acc, 0, blocks, op);
    return acc[0];
  }

  const index_t top = (rect.rows + 1) / 2;
  const index_t left = (rect.cols + 1) / 2;
  const Rect quads[4] = {
      Rect{rect.row0, rect.col0, top, left},
      Rect{rect.row0, rect.col0 + left, top, rect.cols - left},
      Rect{rect.row0 + top, rect.col0, rect.rows - top, left},
      Rect{rect.row0 + top, rect.col0 + left, rect.rows - top,
           rect.cols - left},
  };
  std::optional<Cell<T>> result =
      quads[0].size() > 0 ? reduce_rect<T>(m, quads[0], get, op)
                          : std::nullopt;
  for (int q = 1; q < 4; ++q) {
    if (quads[q].size() <= 0) continue;
    std::optional<Cell<T>> part = reduce_rect<T>(m, quads[q], get, op);
    if (!part) continue;
    const Cell<T> arrived{
        part->value, m.send(quads[q].origin(), rect.origin(), part->clock)};
    if (result) {
      result = Cell<T>{op(result->value, arrived.value),
                       Clock::join(result->clock, arrived.clock)};
      m.op();
      m.observe(result->clock);
    } else {
      result = arrived;
    }
  }
  return result;
}

}  // namespace detail

/// Reduces the elements of `a` with the associative, commutative operator
/// `op`, leaving the result at the top-left processor of the array's
/// region. Corollary IV.2 costs. The array must be non-empty.
template <class T, class Op>
[[nodiscard]] Cell<T> reduce(Machine& m, const GridArray<T>& a, Op op) {
  assert(!a.empty());
  Machine::PhaseScope scope(m, "reduce");
  std::optional<Cell<T>> result =
      detail::reduce_rect<T>(m, a.region(), detail::ElementAt<T>(a), op);
  assert(result.has_value());
  return *result;
}

/// Reduce followed by a broadcast of the result to every processor of the
/// array's region (the all-reduce collective used by Section VI's counting
/// steps). Returns a row-major array over the region.
template <class T, class Op>
[[nodiscard]] GridArray<T> all_reduce(Machine& m, const GridArray<T>& a,
                                      Op op) {
  Machine::PhaseScope scope(m, "all_reduce");
  const Cell<T> total = reduce(m, a, op);
  return broadcast(m, a.region(), total);
}

}  // namespace scm
