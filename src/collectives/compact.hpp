// Stream compaction on the spatial grid: gathers the flagged elements of
// an array into a dense Z-order square using a scan to assign slots — the
// "scan to assign each sampled element an index" pattern of Section VI
// step 2, exposed as a reusable collective.
//
// Costs: one energy-optimal scan plus one direct message per surviving
// element — O(n) energy, O(log n) depth, O(sqrt n) distance.
#pragma once

#include "collectives/scan.hpp"
#include "spatial/grid_array.hpp"
#include "spatial/machine.hpp"

#include <cassert>
#include <vector>

namespace scm {

/// Compacts the elements of `a` whose flag is set into a Z-order square at
/// `a`'s region origin, preserving order. `flags` is indexed like `a`;
/// `count` must equal the number of set flags. Each gathered element's
/// clock joins the scan result that told it its slot.
template <class T>
[[nodiscard]] GridArray<T> compact_flagged(Machine& m, const GridArray<T>& a,
                                           const std::vector<char>& flags,
                                           index_t count) {
  assert(static_cast<index_t>(flags.size()) == a.size());
  Machine::PhaseScope scope(m, "compact_flagged");
  GridArray<index_t> indicator(a.region(), Layout::kZOrder, a.size(),
                               a.offset());
  for (index_t i = 0; i < a.size(); ++i) {
    indicator[i] =
        Cell<index_t>{flags[static_cast<size_t>(i)] ? index_t{1} : index_t{0},
                      a[i].clock};
    m.op();
  }
  GridArray<index_t> slots = scan(m, indicator, Plus{});
  GridArray<T> out = GridArray<T>::on_square(a.region().origin(), count);
  for (index_t i = 0; i < a.size(); ++i) {
    if (!flags[static_cast<size_t>(i)]) continue;
    const index_t slot = slots[i].value - 1;
    assert(slot >= 0 && slot < count);
    const Clock ready = Clock::join(a[i].clock, slots[i].clock);
    out[slot] = Cell<T>{a[i].value, m.send(a.coord(i), out.coord(slot), ready)};
  }
  return out;
}

/// Compacts with a host-evaluated predicate over the element values (a
/// local decision at each processor).
template <class T, class Pred>
[[nodiscard]] GridArray<T> compact_if(Machine& m, const GridArray<T>& a,
                                      Pred pred) {
  std::vector<char> flags(static_cast<size_t>(a.size()), 0);
  index_t count = 0;
  for (index_t i = 0; i < a.size(); ++i) {
    m.op();
    if (pred(a[i].value)) {
      flags[static_cast<size_t>(i)] = 1;
      ++count;
    }
  }
  return compact_flagged(m, a, flags, count);
}

}  // namespace scm
