// Broadcast without multicasting (Section IV-A).
//
// Broadcasts a value from the top-left processor of an h x w subgrid to all
// of its processors in O(hw + h log h) energy, O(log n) depth, and O(w + h)
// distance (Lemma IV.1):
//   * 1-D case (a line): a binary tree whose root has one child directly
//     next to it and one child at an offset of half the remaining length;
//   * 2-D square case: send to the top-left corners of the other three
//     quadrants, then recurse into each quadrant;
//   * general h x w, h >= w: a 1-D broadcast down the first column reaching
//     the top-left corner of each w x w block, then a 2-D broadcast inside
//     each block (the partial last block recurses with roles transposed).
//
// On a square subgrid this is an O(n)-energy, O(log n)-depth broadcast — the
// Theta(log n) energy improvement over binary-tree broadcasts claimed in
// Section II-A (see collectives/baselines.hpp for that baseline).
#pragma once

#include "spatial/grid_array.hpp"
#include "spatial/machine.hpp"

#include <cassert>
#include <functional>
#include <vector>

namespace scm {

namespace detail {

/// The paper's 1-D broadcast tree over an ordered list of positions;
/// `cells[start]` holds the value. Root at `start`; child A is the next
/// position with the first half of the remainder as its subtree, child B
/// sits at the start of the second half.
template <class T>
void broadcast_line(Machine& m, const std::vector<Coord>& pos,
                    std::vector<Cell<T>>& cells, index_t start, index_t len) {
  if (len <= 1) return;
  const index_t len_a = (len - 1) / 2;
  const index_t len_b = len - 1 - len_a;
  const auto s = static_cast<size_t>(start);
  if (len_a > 0) {
    const auto a = static_cast<size_t>(start + 1);
    cells[a] = Cell<T>{cells[s].value,
                       m.send(pos[s], pos[a], cells[s].clock)};
    broadcast_line(m, pos, cells, start + 1, len_a);
  }
  if (len_b > 0) {
    const auto b = static_cast<size_t>(start + 1 + len_a);
    cells[b] = Cell<T>{cells[s].value,
                       m.send(pos[s], pos[b], cells[s].clock)};
    broadcast_line(m, pos, cells, start + 1 + len_a, len_b);
  }
}

/// Recursive broadcast over an arbitrary rectangle. `val` is resident at
/// rect.origin(); `store` is called exactly once per processor with the
/// arriving cell. Square-ish rects (aspect < 2) use the quadrant recursion;
/// skewed rects tile square blocks along the long axis, reach each block's
/// corner with a 1-D tree over the block corners, and recurse per block.
template <class T, class Store>
void broadcast_rect(Machine& m, const Rect& rect, const Cell<T>& val,
                    Store&& store) {
  assert(rect.size() >= 1);
  store(rect.origin(), val);
  if (rect.size() == 1) return;

  const index_t lo = std::min(rect.rows, rect.cols);
  const index_t hi = std::max(rect.rows, rect.cols);
  if (hi >= 2 * lo && lo >= 1) {
    // Tile `lo x lo` blocks along the long axis; the last may be partial.
    const bool tall = rect.rows >= rect.cols;
    const index_t blocks = (hi + lo - 1) / lo;
    std::vector<Coord> corners;
    std::vector<Rect> block_rects;
    corners.reserve(static_cast<size_t>(blocks));
    for (index_t b = 0; b < blocks; ++b) {
      const index_t off = b * lo;
      const index_t extent = std::min(lo, hi - off);
      const Rect br = tall ? Rect{rect.row0 + off, rect.col0, extent, lo}
                           : Rect{rect.row0, rect.col0 + off, lo, extent};
      corners.push_back(br.origin());
      block_rects.push_back(br);
    }
    std::vector<Cell<T>> cells(corners.size());
    cells[0] = val;
    broadcast_line(m, corners, cells, 0, blocks);
    for (size_t b = 0; b < block_rects.size(); ++b) {
      broadcast_rect(m, block_rects[b], cells[b], store);
    }
    return;
  }

  // Quadrant recursion (the 2-D broadcast); handles odd sides by splitting
  // into ceil/floor halves.
  const index_t top = (rect.rows + 1) / 2;
  const index_t left = (rect.cols + 1) / 2;
  const Rect quads[4] = {
      Rect{rect.row0, rect.col0, top, left},
      Rect{rect.row0, rect.col0 + left, top, rect.cols - left},
      Rect{rect.row0 + top, rect.col0, rect.rows - top, left},
      Rect{rect.row0 + top, rect.col0 + left, rect.rows - top,
           rect.cols - left},
  };
  // Quadrant 0 keeps the resident value; the others receive a message to
  // their top-left corner.
  for (int q = 1; q < 4; ++q) {
    if (quads[q].size() <= 0) continue;
    const Cell<T> arrived{
        val.value, m.send(rect.origin(), quads[q].origin(), val.clock)};
    broadcast_rect(m, quads[q], arrived, store);
  }
  // Quadrant 0's origin is the rect origin itself, so the recursive call
  // re-stores the identical cell there (harmless) and fans out further.
  if (quads[0].size() > 1) {
    broadcast_rect(m, quads[0], val, store);
  }
}

}  // namespace detail

/// Broadcasts `src` (resident at `rect.origin()`) to every processor of
/// `rect`. Returns a row-major array over the rect holding the value with
/// each processor's arrival clock. Lemma IV.1: O(hw + h log h) energy,
/// O(log n) depth, O(w + h) distance.
template <class T>
[[nodiscard]] GridArray<T> broadcast(Machine& m, const Rect& rect,
                                     const Cell<T>& src) {
  Machine::PhaseScope scope(m, "broadcast");
  GridArray<T> out(rect, Layout::kRowMajor, rect.size());
  auto store = [&](Coord c, const Cell<T>& v) {
    out[(c.row - rect.row0) * rect.cols + (c.col - rect.col0)] = v;
  };
  detail::broadcast_rect(m, rect, src, store);
  return out;
}

}  // namespace scm
