// Associative operators for reduce / scan collectives, plus the segmented
// operator wrapper of Section IV-C ("Segmented Scan"): for any associative
// operator one can define a segmented operator with the segment logic built
// in [Blelloch; Reif], so the same scan algorithm runs segmented scans.
#pragma once

#include <algorithm>

namespace scm {

/// Addition; the paper's running example operator.
struct Plus {
  template <class T>
  T operator()(const T& a, const T& b) const {
    return a + b;
  }
};

/// Minimum.
struct Min {
  template <class T>
  T operator()(const T& a, const T& b) const {
    return std::min(a, b);
  }
};

/// Maximum.
struct Max {
  template <class T>
  T operator()(const T& a, const T& b) const {
    return std::max(a, b);
  }
};

/// Keeps the left operand: scanning with First turns an array whose segment
/// heads hold a value into a segmented broadcast of that value (used by the
/// SpMV column broadcast, Section VIII step 3).
struct First {
  template <class T>
  T operator()(const T& a, const T& /*b*/) const {
    return a;
  }
};

/// An element of a segmented array: a value plus a flag marking the first
/// element of its segment.
template <class T>
struct Seg {
  T value{};
  bool head{false};

  friend bool operator==(const Seg&, const Seg&) = default;
};

/// The segmented wrapper of an associative operator. Associative whenever
/// `Op` is; a scan with SegOp<Op> computes an independent scan per segment.
template <class Op>
struct SegOp {
  Op op{};

  template <class T>
  Seg<T> operator()(const Seg<T>& a, const Seg<T>& b) const {
    if (b.head) return Seg<T>{b.value, true};
    return Seg<T>{op(a.value, b.value), a.head};
  }
};

}  // namespace scm
