// Associative operators for reduce / scan collectives, plus the segmented
// operator wrapper of Section IV-C ("Segmented Scan"): for any associative
// operator one can define a segmented operator with the segment logic built
// in [Blelloch; Reif], so the same scan algorithm runs segmented scans.
//
// Each operator carries an OpTraits annotation of its algebraic laws.
// The batch-independence checker (spatial/independence.hpp) consumes the
// commutativity flag: same-destination fan-in inside one send_bulk batch
// is a write-write race unless delivery order is immaterial, which
// CommutativeDeliveryScope<Op> (below) asserts with a compile-time check
// against the annotation.
#pragma once

#include "spatial/independence.hpp"

#include <algorithm>

namespace scm {

/// Addition; the paper's running example operator.
struct Plus {
  template <class T>
  T operator()(const T& a, const T& b) const {
    return a + b;
  }
};

/// Minimum.
struct Min {
  template <class T>
  T operator()(const T& a, const T& b) const {
    return std::min(a, b);
  }
};

/// Maximum.
struct Max {
  template <class T>
  T operator()(const T& a, const T& b) const {
    return std::max(a, b);
  }
};

/// Keeps the left operand: scanning with First turns an array whose segment
/// heads hold a value into a segmented broadcast of that value (used by the
/// SpMV column broadcast, Section VIII step 3).
struct First {
  template <class T>
  T operator()(const T& a, const T& /*b*/) const {
    return a;
  }
};

/// An element of a segmented array: a value plus a flag marking the first
/// element of its segment.
template <class T>
struct Seg {
  T value{};
  bool head{false};

  friend bool operator==(const Seg&, const Seg&) = default;
};

/// The segmented wrapper of an associative operator. Associative whenever
/// `Op` is; a scan with SegOp<Op> computes an independent scan per segment.
template <class Op>
struct SegOp {
  Op op{};

  template <class T>
  Seg<T> operator()(const Seg<T>& a, const Seg<T>& b) const {
    if (b.head) return Seg<T>{b.value, true};
    return Seg<T>{op(a.value, b.value), a.head};
  }
};

/// Algebraic annotations of an operator. The primary template declares
/// nothing (both laws false) so an unannotated custom operator never
/// silently qualifies for an exemption; specialize it alongside the
/// operator definition.
template <class Op>
struct OpTraits {
  static constexpr bool associative = false;
  static constexpr bool commutative = false;
};

template <>
struct OpTraits<Plus> {
  static constexpr bool associative = true;
  static constexpr bool commutative = true;
};

template <>
struct OpTraits<Min> {
  static constexpr bool associative = true;
  static constexpr bool commutative = true;
};

template <>
struct OpTraits<Max> {
  static constexpr bool associative = true;
  static constexpr bool commutative = true;
};

/// First is associative (keeping the leftmost survives regrouping) but
/// NOT commutative: First(a, b) != First(b, a).
template <>
struct OpTraits<First> {
  static constexpr bool associative = true;
  static constexpr bool commutative = false;
};

/// The segmented wrapper inherits associativity from the wrapped operator
/// but is never commutative: swapping operands moves the segment
/// boundary, so SegOp<Plus>(a, b) != SegOp<Plus>(b, a) whenever b.head.
template <class Op>
struct OpTraits<SegOp<Op>> {
  static constexpr bool associative = OpTraits<Op>::associative;
  static constexpr bool commutative = false;
};

template <class Op>
inline constexpr bool is_associative_v = OpTraits<Op>::associative;

template <class Op>
inline constexpr bool is_commutative_v = OpTraits<Op>::commutative;

/// Compile-time checked form of ScopedUnorderedDelivery: declares that
/// same-destination fan-in in the enclosed batches is combined with `Op`,
/// whose commutativity (per OpTraits) makes delivery order immaterial.
/// Instantiating it for a non-commutative operator (First, any SegOp) is
/// a compile error, so the exemption cannot be claimed by accident.
template <class Op>
class CommutativeDeliveryScope : public ScopedUnorderedDelivery {
  static_assert(is_commutative_v<Op>,
                "CommutativeDeliveryScope requires an operator annotated "
                "commutative via OpTraits; non-commutative reductions must "
                "order their fan-in (or split the batch)");

 public:
  explicit CommutativeDeliveryScope(const char* reason)
      : ScopedUnorderedDelivery(reason) {}
};

}  // namespace scm
