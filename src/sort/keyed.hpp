// Total-order wrappers for the comparison-based algorithms of Sections V
// and VI.
//
// The rank-split merge and the selection routines need *unique* ranks to be
// well-defined under duplicate keys. We attach a unique id to every element
// at the start of a sort and break comparison ties by id; this makes every
// rank unique and, as a bonus, makes the whole sort stable.
#pragma once

#include "spatial/geometry.hpp"
#include "spatial/grid_array.hpp"

#include <functional>
#include <utility>

namespace scm {

/// An element tagged with its unique original position.
template <class T>
struct WithId {
  T value{};
  index_t id{0};

  friend bool operator==(const WithId&, const WithId&) = default;
};

/// Strict total order over WithId: by the user comparator first, by id on
/// ties. Antisymmetric for any strict weak order `Less`.
template <class Less>
struct TotalLess {
  Less less{};

  template <class T>
  bool operator()(const WithId<T>& a, const WithId<T>& b) const {
    if (less(a.value, b.value)) return true;
    if (less(b.value, a.value)) return false;
    return a.id < b.id;
  }
};

/// Tags each element of `a` with its index (a local operation: ids are
/// known to each processor without communication).
template <class T>
[[nodiscard]] GridArray<WithId<T>> attach_ids(Machine& m,
                                              const GridArray<T>& a) {
  GridArray<WithId<T>> out(a.region(), a.layout(), a.size());
  for (index_t i = 0; i < a.size(); ++i) {
    out[i] = Cell<WithId<T>>{WithId<T>{a[i].value, i}, a[i].clock};
    m.op();
  }
  return out;
}

/// Drops the id tags (local).
template <class T>
[[nodiscard]] GridArray<T> detach_ids(Machine& m,
                                      const GridArray<WithId<T>>& a) {
  GridArray<T> out(a.region(), a.layout(), a.size());
  for (index_t i = 0; i < a.size(); ++i) {
    out[i] = Cell<T>{a[i].value.value, a[i].clock};
    m.op();
  }
  return out;
}

}  // namespace scm
