// Histogramming / counting by key on the spatial grid — a derived
// primitive built from the paper's building blocks, following the same
// sort -> segment-leaders -> segmented-scan pipeline as the SpMV
// (Section VIII): sort the keys, count each run with a segmented (+)-scan
// over ones, and deliver (key, count) pairs to a bucket grid.
//
// Costs: one 2-D Mergesort + one scan + one message per distinct key:
// O(n^{3/2}) energy, O(log^3 n) depth, O(sqrt n) distance.
#pragma once

#include "collectives/scan.hpp"
#include "sort/mergesort2d.hpp"
#include "spatial/grid_array.hpp"
#include "spatial/machine.hpp"

#include <cassert>
#include <vector>

namespace scm {

/// Computes the histogram of integer keys in [0, buckets): bucket b of the
/// returned row-major array holds the number of occurrences of key b,
/// delivered to a bucket subgrid right of the input's region.
[[nodiscard]] inline GridArray<index_t> histogram(
    Machine& m, const GridArray<index_t>& keys, index_t buckets) {
  Machine::PhaseScope scope(m, "histogram");
  const index_t n = keys.size();
  const Rect bucket_rect =
      square_at({keys.region().row0,
                 keys.region().col0 + keys.region().cols},
                square_side_for(std::max<index_t>(buckets, 1)));
  GridArray<index_t> counts(bucket_rect, Layout::kRowMajor, buckets);
  for (index_t b = 0; b < buckets; ++b) counts[b].value = 0;
  if (n == 0) return counts;

#ifndef NDEBUG
  for (index_t i = 0; i < n; ++i) {
    assert(keys[i].value >= 0 && keys[i].value < buckets);
  }
#endif

  // Sort the keys (stable, distinct ranks via ids internally).
  GridArray<index_t> sorted = mergesort2d(m, keys);

  // Segment heads via simultaneous neighbour hand-offs.
  std::vector<char> head(static_cast<size_t>(n), 0);
  std::vector<Clock> before(static_cast<size_t>(n));
  for (index_t i = 0; i < n; ++i) before[static_cast<size_t>(i)] =
      sorted[i].clock;
  for (index_t i = 0; i < n; ++i) {
    if (i == 0) {
      head[0] = 1;
      continue;
    }
    const Clock arrived = m.send(sorted.coord(i - 1), sorted.coord(i),
                                 before[static_cast<size_t>(i - 1)]);
    sorted[i].clock = Clock::join(sorted[i].clock, arrived);
    m.op();
    head[static_cast<size_t>(i)] =
        sorted[i].value != sorted[i - 1].value ? 1 : 0;
  }

  // Segmented count: scan ones per segment; the run's last element holds
  // the count and delivers (key, count) to its bucket.
  GridArray<index_t> z =
      route_permutation(m, sorted, sorted.region(), Layout::kZOrder);
  GridArray<Seg<index_t>> ones(z.region(), Layout::kZOrder, n);
  for (index_t i = 0; i < n; ++i) {
    ones[i] = Cell<Seg<index_t>>{Seg<index_t>{1, head[static_cast<size_t>(i)] != 0},
                                 z[i].clock};
    m.op();
  }
  GridArray<Seg<index_t>> run = segmented_scan(m, ones, Plus{});
  for (index_t i = 0; i < n; ++i) {
    const bool last = i + 1 == n || head[static_cast<size_t>(i + 1)] != 0;
    if (!last) continue;
    const index_t key = z[i].value;
    counts[key] = Cell<index_t>{
        run[i].value.value,
        m.send(z.coord(i), counts.coord(key), run[i].clock)};
  }
  return counts;
}

/// Counting sort for integer keys in [0, buckets): sorts via the histogram
/// pipeline's stable mergesort (the histogram itself is the by-product
/// most callers want; the sort result is returned for completeness).
[[nodiscard]] inline GridArray<index_t> counting_sort(
    Machine& m, const GridArray<index_t>& keys, index_t buckets) {
  Machine::PhaseScope scope(m, "counting_sort");
#ifndef NDEBUG
  for (index_t i = 0; i < keys.size(); ++i) {
    assert(keys[i].value >= 0 && keys[i].value < buckets);
  }
#else
  (void)buckets;
#endif
  return mergesort2d(m, keys);
}

}  // namespace scm
