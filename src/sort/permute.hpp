// Direct permutation routing and the permutation energy lower bound
// (Section V-A, Lemma V.1 / Corollary V.2).
//
// Any permutation can be realized by routing every element straight to its
// destination (one message each); on an h x w subgrid the worst case costs
// Theta(max(w,h)^2 * min(w,h)) energy, and the row-reversal permutation
// witnesses the matching lower bound: the first h/3 rows must travel at
// least h/3 each. Since sorting realizes arbitrary permutations, sorting
// inherits the Omega(n^{3/2}) bound — which the 2-D Mergesort matches.
#pragma once

#include "spatial/grid_array.hpp"
#include "spatial/machine.hpp"

#include <cassert>
#include <numeric>
#include <vector>

namespace scm {

/// Applies `perm` to `a` by direct routing: element i is sent to position
/// perm[i] of the result (same region and layout). O(n * diameter) energy
/// worst case, O(1) depth, O(diameter) distance.
template <class T>
[[nodiscard]] GridArray<T> permute(Machine& m, const GridArray<T>& a,
                                   const std::vector<index_t>& perm) {
  assert(static_cast<index_t>(perm.size()) == a.size());
  Machine::PhaseScope scope(m, "permute");
  return route_permutation(m, a, a.region(), a.layout(), perm);
}

/// The lower-bound witness permutation of Lemma V.1: reverses the element
/// order, so elements of the first rows travel to the last rows. Costs
/// Omega(max(w,h)^2 * min(w,h)) energy under any routing.
[[nodiscard]] inline std::vector<index_t> reversal_permutation(index_t n) {
  std::vector<index_t> perm(static_cast<size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    perm[static_cast<size_t>(i)] = n - 1 - i;
  }
  return perm;
}

/// Minimum possible energy of a permutation on `a`'s layout: the sum over
/// elements of the Manhattan distance from source to destination (direct
/// routing achieves it, so this equals the energy permute() charges).
template <class T>
[[nodiscard]] index_t permutation_energy_lower_bound(
    const GridArray<T>& a, const std::vector<index_t>& perm) {
  index_t total = 0;
  for (index_t i = 0; i < a.size(); ++i) {
    total += manhattan(a.coord(i), a.coord(perm[static_cast<size_t>(i)]));
  }
  return total;
}

}  // namespace scm
