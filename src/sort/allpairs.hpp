// All-Pairs Sort (Section V-C-a, Lemma V.5).
//
// A low-depth auxiliary sort that compares every element with every other:
// the computation "explodes" onto an n x n scratch subgrid subdivided into
// n blocks of sqrt(n) x sqrt(n) processors each (one block per element).
//   1. scatter element A_i to the corner of block i;
//   2. broadcast A_i within block i;
//   3. copy the whole array A to every block with the recursive-quadrant
//      2-D broadcast pattern, treating the array and the blocks as units;
//   4. every processor compares its two resident elements;
//   5. each block reduces the comparison bits to the rank of A_i and the
//      element is routed to its sorted position.
//
// Costs: O(n^{5/2}) energy, O(log n) depth, O(n) distance — low depth but
// polynomially sub-optimal energy, which is why the merge machinery only
// applies it to one O(sqrt n)-sized sample per merge node, shared across
// the three split ranks by the Lemma V.6 multiselect (a window-sized
// second application per rank once dominated the whole mergesort).
//
// The comparator must be a strict TOTAL order (distinct ranks); wrap
// elements with WithId/TotalLess for duplicate keys. The scratch subgrid
// overlays the grid starting at the input's region origin; every processor
// holds O(1) extra words during the sort, within the model's memory bound.
#pragma once

#include "collectives/broadcast.hpp"
#include "collectives/reduce.hpp"
#include "sort/keyed.hpp"
#include "spatial/grid_array.hpp"
#include "spatial/machine.hpp"
#include "spatial/zorder.hpp"

#include <cassert>
#include <vector>

namespace scm {

namespace detail {

/// Copies the array resident in block `group_first` (cell j of the block
/// holds A_j in block-local Z-order) to every block of the Z-order block
/// range [group_first, group_first + group_size), recursively by quadrant
/// groups. `copies[b][j]` receives the cell of A_j resident in block b.
/// Blocks at or beyond `live_blocks` are skipped (they host no element).
template <class T>
void copy_array_to_blocks(Machine& m, const Rect& base, index_t block_side,
                          index_t group_first, index_t group_size,
                          index_t live_blocks,
                          std::vector<std::vector<Cell<T>>>& copies) {
  if (group_size <= 1 || group_first >= live_blocks) return;
  const index_t quarter = group_size / 4;
  const index_t n = static_cast<index_t>(copies[0].size());

  auto block_rect = [&](index_t b) {
    const Offset2D off = zorder_decode(b);
    return Rect{base.row0 + off.row * block_side,
                base.col0 + off.col * block_side, block_side, block_side};
  };

  const Rect src_rect = block_rect(group_first);
  const auto src = static_cast<size_t>(group_first);
  std::vector<MessageEvent> batch(static_cast<size_t>(n));
  for (int q = 1; q < 4; ++q) {
    const index_t dst_block = group_first + q * quarter;
    if (dst_block >= live_blocks) break;
    const Rect dst_rect = block_rect(dst_block);
    const auto dst = static_cast<size_t>(dst_block);
    for (index_t j = 0; j < n; ++j) {
      const Coord from = zorder_coord(src_rect, j % src_rect.size());
      const Coord to = zorder_coord(dst_rect, j % dst_rect.size());
      batch[static_cast<size_t>(j)] = MessageEvent{
          from, to, 0, copies[src][static_cast<size_t>(j)].clock, Clock{}};
    }
    // One block-to-block array copy per batch: cell j of the source block
    // feeds cell j of the (disjoint) destination block, so sources and
    // destinations are pairwise distinct within the batch.
    m.send_bulk(batch);  // bulk-ok: caller holds the phase scope
    for (index_t j = 0; j < n; ++j) {
      copies[dst][static_cast<size_t>(j)] =
          Cell<T>{copies[src][static_cast<size_t>(j)].value,
                  batch[static_cast<size_t>(j)].arrival};
    }
  }
  for (int q = 0; q < 4; ++q) {
    copy_array_to_blocks(m, base, block_side, group_first + q * quarter,
                         quarter, live_blocks, copies);
  }
}

}  // namespace detail

/// All-Pairs Sort under the strict total order `less`. Returns the sorted
/// array in Z-order on the canonical square at the input's region origin.
template <class T, class Less>
[[nodiscard]] GridArray<T> allpairs_sort(Machine& m, const GridArray<T>& input,
                                         Less less) {
  const index_t n = input.size();
  const Coord origin = input.region().origin();
  if (n <= 1) {
    GridArray<T> out = GridArray<T>::on_square(origin, n);
    if (n == 1) send_element(m, input, 0, out, 0);
    return out;
  }
  Machine::PhaseScope scope(m, "allpairs_sort");

  const index_t s = square_side_for(n);  // block side; s*s blocks available
  const Rect base = square_at(origin, s);

  // Route the input into block 0 (the base square) in Z-order; free when it
  // is already there.
  GridArray<T> a = route_permutation(m, input, base, Layout::kZOrder);

  auto block_rect = [&](index_t b) {
    const Offset2D off = zorder_decode(b);
    return Rect{base.row0 + off.row * s, base.col0 + off.col * s, s, s};
  };

  // Step 1: scatter A_i to the corner of block i as one bulk batch —
  // distinct elements head for distinct block corners, so the batch is
  // self-independent. (Entry 0 is a zero-length message: A_0 already sits
  // on block 0's corner.)
  std::vector<Cell<T>> at_corner(static_cast<size_t>(n));
  {
    std::vector<MessageEvent> batch(static_cast<size_t>(n));
    for (index_t i = 0; i < n; ++i) {
      batch[static_cast<size_t>(i)] = MessageEvent{
          a.coord(i), block_rect(i).origin(), 0, a[i].clock, Clock{}};
    }
    m.send_bulk(batch);
    for (index_t i = 0; i < n; ++i) {
      at_corner[static_cast<size_t>(i)] =
          Cell<T>{a[i].value, batch[static_cast<size_t>(i)].arrival};
    }
  }

  // Step 2: broadcast A_i within block i.
  std::vector<GridArray<T>> own(
      static_cast<size_t>(n),
      GridArray<T>(Rect{0, 0, 1, 1}, Layout::kRowMajor, 0));
  for (index_t i = 0; i < n; ++i) {
    own[static_cast<size_t>(i)] =
        broadcast(m, block_rect(i), at_corner[static_cast<size_t>(i)]);
  }

  // Step 3: copy A to every block (block 0 holds it already, cost-free).
  std::vector<std::vector<Cell<T>>> copies(
      static_cast<size_t>(n), std::vector<Cell<T>>(static_cast<size_t>(n)));
  for (index_t j = 0; j < n; ++j) copies[0][static_cast<size_t>(j)] = a[j];
  detail::copy_array_to_blocks(m, base, s, 0, s * s, n, copies);

  // Step 4: compare locally (one op per processor of block i, charged as
  // one bulk op event per block), reduce the bits to A_i's rank.
  GridArray<T> out = GridArray<T>::on_square(origin, n);
  std::vector<index_t> ranks(static_cast<size_t>(n));
  std::vector<Clock> ready(static_cast<size_t>(n));
#ifndef NDEBUG
  std::vector<bool> taken(static_cast<size_t>(n), false);
#endif
  for (index_t i = 0; i < n; ++i) {
    const Rect br = block_rect(i);
    GridArray<index_t> bits(br, Layout::kZOrder, n);
    const GridArray<T>& mine = own[static_cast<size_t>(i)];
    for (index_t j = 0; j < n; ++j) {
      const Coord cj = zorder_coord(br, j);
      // own[] is row-major over the block; find A_i's copy at cell j.
      const index_t own_idx =
          (cj.row - br.row0) * br.cols + (cj.col - br.col0);
      const Cell<T>& copy_j = copies[static_cast<size_t>(i)]
                                    [static_cast<size_t>(j)];
      const Cell<T>& self = mine[own_idx];
      bits[j] = Cell<index_t>{less(copy_j.value, self.value) ? index_t{1}
                                                             : index_t{0},
                              Clock::join(copy_j.clock, self.clock)};
    }
    m.op_bulk(n);
    const Cell<index_t> rank = reduce(m, bits, Plus{});
    assert(rank.value >= 0 && rank.value < n);
#ifndef NDEBUG
    assert(!taken[static_cast<size_t>(rank.value)] &&
           "allpairs_sort requires a strict total order (distinct ranks)");
    taken[static_cast<size_t>(rank.value)] = true;
#endif
    ranks[static_cast<size_t>(i)] = rank.value;
    ready[static_cast<size_t>(i)] =
        Clock::join(at_corner[static_cast<size_t>(i)].clock, rank.clock);
  }

  // Step 5: route every A_i (resident at the corner of block i with its
  // rank) to its sorted position, as one bulk batch — the ranks are a
  // permutation under the strict total order, so the n block corners feed
  // n distinct output cells.
  {
    std::vector<MessageEvent> batch(static_cast<size_t>(n));
    for (index_t i = 0; i < n; ++i) {
      batch[static_cast<size_t>(i)] = MessageEvent{
          block_rect(i).origin(), out.coord(ranks[static_cast<size_t>(i)]),
          0, ready[static_cast<size_t>(i)], Clock{}};
    }
    m.send_bulk(batch);
    for (index_t i = 0; i < n; ++i) {
      out[ranks[static_cast<size_t>(i)]] =
          Cell<T>{at_corner[static_cast<size_t>(i)].value,
                  batch[static_cast<size_t>(i)].arrival};
    }
  }
  return out;
}

/// Stable All-Pairs Sort for arbitrary (possibly duplicated) keys: tags
/// elements with their index and sorts under the induced total order.
template <class T, class Less>
[[nodiscard]] GridArray<T> allpairs_sort_stable(Machine& m,
                                                const GridArray<T>& input,
                                                Less less) {
  GridArray<WithId<T>> tagged = attach_ids(m, input);
  GridArray<WithId<T>> sorted =
      allpairs_sort(m, tagged, TotalLess<Less>{less});
  return detach_ids(m, sorted);
}

}  // namespace scm
