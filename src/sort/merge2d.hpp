// The 2-D merge (Section V-C-b, Lemma V.7) and its building blocks.
//
// Merges two sorted arrays living on Z-order sub-ranges of a common parent
// square into a sorted Z-order destination range:
//   1. the rank n/4, n/2, and 3n/4 elements of A||B are found with one
//      deterministic two-array multiselect (Lemma V.6; the three ranks
//      share a single sample sort), splitting A and B into four sub-array
//      pairs;
//   2. the split decision is broadcast over the working area and every
//      element is routed to its quadrant sub-range (a direct permutation);
//   3. each quadrant pair is merged recursively;
//   4. the result is sorted in Z-order over the destination range (the
//      final Z-order -> row-major permutation of Fig. 3(d) happens once, at
//      the top of the mergesort).
//
// Costs (Lemma V.7): O(n^{3/2}) energy, O(log^2 n) depth, O(sqrt n)
// distance — each recursion level moves every element O(sqrt(level size))
// and the level diameters shrink geometrically. The implementation
// matches these shapes (the fitted certificates in testing/bounds.json
// pin them); an earlier revision paid Θ(n²)-looking energy because each
// merge node ran three full rank selections whose window All-Pairs-Sorts
// dominated — see the multiselect note at step 1.
//
// `less` must be a strict TOTAL order (wrap with WithId/TotalLess).
#pragma once

#include "collectives/broadcast.hpp"
#include "sort/rank_select_sorted.hpp"
#include "spatial/grid_array.hpp"
#include "spatial/independence.hpp"
#include "spatial/machine.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <span>
#include <vector>

namespace scm {

namespace detail {

/// Smallest axis-aligned rect covering layout positions [offset, offset+n)
/// of the region (used to scope broadcasts of merge decisions).
inline Rect bounding_rect(const Rect& region, index_t offset, index_t n) {
  assert(n >= 1);
  index_t r0 = region.row0 + region.rows;
  index_t c0 = region.col0 + region.cols;
  index_t r1 = region.row0;
  index_t c1 = region.col0;
  // Aligned Z-order ranges are unions of at most a few squares; walking the
  // covered aligned blocks keeps this O(log n) instead of O(n).
  index_t pos = offset;
  index_t remaining = n;
  while (remaining > 0) {
    index_t block = index_t{1};
    while (block * 4 <= remaining && pos % (block * 4) == 0) block *= 4;
    const Coord corner = zorder_coord(region, pos);
    const index_t side = isqrt(block);
    r0 = std::min(r0, corner.row);
    c0 = std::min(c0, corner.col);
    r1 = std::max(r1, corner.row + side - 1);
    c1 = std::max(c1, corner.col + side - 1);
    pos += block;
    remaining -= block;
  }
  return Rect{r0, c0, r1 - r0 + 1, c1 - c0 + 1};
}

/// Gather-sort-scatter base case: for constant-sized inputs, pull all
/// elements to the destination corner processor, order them locally, and
/// scatter them to the destination range. O(1) depth, O(n * diameter)
/// energy — dominated by the enclosing recursion level.
template <class T, class Less>
GridArray<T> merge_base(Machine& m, const std::vector<const GridArray<T>*>& in,
                        const Rect& region, index_t dst_offset, Less less) {
  index_t n = 0;
  for (const auto* arr : in) n += arr->size();
  GridArray<T> out(region, Layout::kZOrder, n, dst_offset);
  if (n == 0) return out;
  // The gather deliberately parks up to base_size (a compile-time O(1)
  // constant) words on the corner processor; its own phase scope declares
  // that residency window to the conformance checker.
  Machine::PhaseScope scope(m, "merge2d/base");
  const Coord work = zorder_coord(region, dst_offset);

  struct Gathered {
    T value;
    Clock clock;
  };
  std::vector<Gathered> all;
  all.reserve(static_cast<size_t>(n));
  std::vector<MessageEvent> batch;
  batch.reserve(static_cast<size_t>(n));
  for (const auto* arr : in) {
    const std::span<const Coord> at = arr->coords();
    for (index_t i = 0; i < arr->size(); ++i) {
      batch.push_back(MessageEvent{at[static_cast<size_t>(i)], work, 0,
                                   (*arr)[i].clock, Clock{}});
      all.push_back(Gathered{(*arr)[i].value, Clock{}});
    }
  }
  {
    // Up to base_size distinct words converge on the corner processor in
    // one batch. Delivery order is immaterial: the local stable sort
    // below re-orders the whole gathered set under a strict total order
    // before anything depends on it, so the fan-in is declared order-free
    // to the batch-independence checker rather than split into n rounds.
    ScopedUnorderedDelivery gather_fan_in(
        "merge2d/base gather: distinct words re-ordered by the local sort "
        "under a strict total order");
    m.send_bulk(batch);
  }
  Clock ready{};
  for (size_t k = 0; k < batch.size(); ++k) {
    all[k].clock = batch[k].arrival;
    ready = Clock::join(ready, batch[k].arrival);
  }
  std::stable_sort(all.begin(), all.end(),
                   [&](const Gathered& x, const Gathered& y) {
                     return less(x.value, y.value);
                   });
  m.op(n);
  // Every output position depends on the full gathered set (the local sort
  // decides all placements), so scattered elements carry the joined clock.
  const std::span<const Coord> dst = out.coords();
  batch.assign(static_cast<size_t>(n), MessageEvent{});
  for (index_t i = 0; i < n; ++i) {
    batch[static_cast<size_t>(i)] = MessageEvent{
        work, dst[static_cast<size_t>(i)], 0, ready, Clock{}};
  }
  m.send_bulk(batch);
  for (index_t i = 0; i < n; ++i) {
    out[i] = Cell<T>{all[static_cast<size_t>(i)].value,
                     batch[static_cast<size_t>(i)].arrival};
  }
  return out;
}

/// Routes `count` elements of `src` starting at `first` into the output
/// range starting at out position `dst_i`, joining each element's clock
/// with the broadcast plan's arrival at the element's processor.
template <class T>
void route_split(Machine& m, const GridArray<T>& src, index_t first,
                 index_t count, GridArray<T>& out, index_t dst_i,
                 const GridArray<char>& plan, const Rect& plan_rect) {
  if (count == 0) return;
  const std::span<const Coord> src_at = src.coords();
  const std::span<const Coord> out_at = out.coords();
  std::vector<MessageEvent> batch(static_cast<size_t>(count));
  for (index_t i = 0; i < count; ++i) {
    const Coord from = src_at[static_cast<size_t>(first + i)];
    Clock clock = src[first + i].clock;
    if (plan_rect.contains(from)) {
      const index_t pi = (from.row - plan_rect.row0) * plan_rect.cols +
                         (from.col - plan_rect.col0);
      clock = Clock::join(clock, plan[pi].clock);
    }
    batch[static_cast<size_t>(i)] = MessageEvent{
        from, out_at[static_cast<size_t>(dst_i + i)], 0, clock, Clock{}};
  }
  m.send_bulk(batch);  // bulk-ok: caller holds the merge2d phase scope
  for (index_t i = 0; i < count; ++i) {
    out[dst_i + i] = Cell<T>{src[first + i].value,
                             batch[static_cast<size_t>(i)].arrival};
  }
}

// Base-case cutoff. 8 keeps the measured energy curve on Theorem V.8's
// n^{3/2} shape from n ~ 48 up (larger bases make small instances
// base-case-dominated and artificially cheap, which skews log-log fits
// of the asymptotic shape), and parks at most 8 words on the base
// gather's corner processor. The ablation bench (bench_ablation_tuning)
// sweeps this knob.
constexpr index_t kMergeBaseSize = 8;

}  // namespace detail

/// Tuning knobs of the merge/mergesort recursion, exposed for the ablation
/// benchmarks (bench_ablation_tuning). The defaults reproduce the paper's
/// cost shapes; `base_size` trades recursion depth against the
/// O(k * diameter) energy of the gather-sort-scatter base case.
struct MergeConfig {
  index_t base_size{detail::kMergeBaseSize};
};

/// Merges sorted arrays `a` and `b` (Z-order ranges of the same parent
/// square) into a sorted Z-order array over positions [dst_offset,
/// dst_offset + |a| + |b|) of that square. Lemma V.7 costs.
template <class T, class Less>
[[nodiscard]] GridArray<T> merge2d(Machine& m, const GridArray<T>& a,
                                   const GridArray<T>& b, index_t dst_offset,
                                   Less less,
                                   const MergeConfig& config = {}) {
  assert(a.region() == b.region());
  assert(a.layout() == Layout::kZOrder && b.layout() == Layout::kZOrder);
  const Rect region = a.region();
  const index_t n = a.size() + b.size();
  assert(dst_offset + n <= region.size());
  if (n == 0) return GridArray<T>(region, Layout::kZOrder, 0, dst_offset);
  Machine::PhaseScope scope(m, "merge2d");

  // One-sided or constant-sized merges resolve directly.
  if (a.empty() || b.empty() || n <= config.base_size) {
    if (n <= config.base_size) {
      return detail::merge_base(
          m, std::vector<const GridArray<T>*>{&a, &b}, region, dst_offset,
          less);
    }
    // A sorted one-sided input only needs repositioning into the range,
    // charged as one bulk batch over the cached coordinate maps.
    const GridArray<T>& src = a.empty() ? b : a;
    GridArray<T> out(region, Layout::kZOrder, n, dst_offset);
    const std::span<const Coord> from = src.coords();
    const std::span<const Coord> to = out.coords();
    std::vector<MessageEvent> batch(static_cast<size_t>(n));
    for (index_t i = 0; i < n; ++i) {
      batch[static_cast<size_t>(i)] =
          MessageEvent{from[static_cast<size_t>(i)],
                       to[static_cast<size_t>(i)], 0, src[i].clock, Clock{}};
    }
    m.send_bulk(batch);
    for (index_t i = 0; i < n; ++i) {
      out[i] = Cell<T>{src[i].value, batch[static_cast<size_t>(i)].arrival};
    }
    return out;
  }

  // Step 1: split ranks n/4, n/2, 3n/4 (Fig. 3), found with one
  // deterministic multiselect so the three ranks share a single sample
  // gather and sample sort (Lemma V.6) — three independent selections
  // would each re-pay the dominant O(n^{5/4}) sample-sort term. Their
  // clocks join into the routing plan.
  const Coord work = zorder_coord(region, dst_offset);
  const index_t ks[3] = {n / 4, n / 2, (3 * n) / 4};
  const std::vector<SplitResult> splits = multiselect_two_sorted(
      m, a, b, std::span<const index_t>(ks), work, less);
  const SplitResult& s1 = splits[0];
  const SplitResult& s2 = splits[1];
  const SplitResult& s3 = splits[2];
  assert(s1.a_count <= s2.a_count && s2.a_count <= s3.a_count);
  assert(s1.b_count <= s2.b_count && s2.b_count <= s3.b_count);

  // Step 2: broadcast the routing plan over the working area, then route
  // every element to its quadrant sub-range.
  const Rect extent = detail::bounding_rect(region, dst_offset, n);
  const Clock plan_ready =
      Clock::join({s1.clock, s2.clock, s3.clock});
  const Clock plan_at_corner = m.send(work, extent.origin(), plan_ready);
  const GridArray<char> plan =
      broadcast(m, extent, Cell<char>{0, plan_at_corner});

  const index_t a_cuts[5] = {0, s1.a_count, s2.a_count, s3.a_count, a.size()};
  const index_t b_cuts[5] = {0, s1.b_count, s2.b_count, s3.b_count, b.size()};
  GridArray<T> out(region, Layout::kZOrder, n, dst_offset);
  index_t quad_offsets[4];
  index_t quad_a[4];
  index_t quad_b[4];
  {
    GridArray<T> staged(region, Layout::kZOrder, n, dst_offset);
    index_t pos = 0;
    for (int q = 0; q < 4; ++q) {
      quad_offsets[q] = dst_offset + pos;
      quad_a[q] = a_cuts[q + 1] - a_cuts[q];
      quad_b[q] = b_cuts[q + 1] - b_cuts[q];
      detail::route_split(m, a, a_cuts[q], quad_a[q], staged, pos, plan,
                          extent);
      pos += quad_a[q];
      detail::route_split(m, b, b_cuts[q], quad_b[q], staged, pos, plan,
                          extent);
      pos += quad_b[q];
    }
    assert(pos == n);

    // Step 3: recursively merge each quadrant pair. The staged quadrant's
    // A-part and B-part are contiguous sorted runs.
    index_t at = 0;
    for (int q = 0; q < 4; ++q) {
      GridArray<T> qa(region, Layout::kZOrder, quad_a[q], quad_offsets[q]);
      for (index_t i = 0; i < quad_a[q]; ++i) qa[i] = staged[at + i];
      GridArray<T> qb(region, Layout::kZOrder, quad_b[q],
                      quad_offsets[q] + quad_a[q]);
      for (index_t i = 0; i < quad_b[q]; ++i) {
        qb[i] = staged[at + quad_a[q] + i];
      }
      GridArray<T> merged =
          merge2d(m, qa, qb, quad_offsets[q], less, config);
      for (index_t i = 0; i < merged.size(); ++i) {
        out[quad_offsets[q] - dst_offset + i] = merged[i];
      }
      at += quad_a[q] + quad_b[q];
    }
  }
  return out;
}

}  // namespace scm
