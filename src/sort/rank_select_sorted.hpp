// Rank selection in two sorted arrays (Section V-C-c, Lemma V.6) — the
// multiselection subroutine of the 2-D merge.
//
// Given sorted arrays A and B and a rank k (1-based, within |A|+|B|), it
// finds the split (a_count, b_count) with a_count + b_count = k such that
// A[0, a_count) and B[0, b_count) are exactly the k smallest elements of
// the union:
//   1. sample every floor(sqrt(n))-th element of A and of B;
//   2. All-Pairs Sort the sample (once, shared by every requested rank —
//      the deterministic *multiselect* of Lemma V.6);
//   3. per rank k: l = floor((k-1) / floor(sqrt(n)));
//   4. the l-th ranked sample element is the pivot; walking binary
//      searches locate its predecessor counts a and b in A and B;
//   5. the rank-(k-a-b) element lies within the next <= 3 sqrt(n)
//      elements of each array; a walking binary search over the two
//      window boundaries finds the exact split (no second All-Pairs
//      Sort — the window stays in place, only an O(1)-word coordinator
//      travels).
//
// Costs: O(n^{5/4}) energy, O(log n) depth, O(sqrt n) distance —
// dominated by the All-Pairs Sort of the O(sqrt n)-sized sample
// (Lemma V.6); the sample gather is O(n) energy and the per-rank
// searches are O(sqrt(n) log n). Sharing the sample sort across the
// three merge ranks (multiselect) keeps the merge recursion at
// Lemma V.7's O(n^{3/2}) total.
//
// `less` must be a strict TOTAL order over T (wrap with WithId/TotalLess).
#pragma once

#include "sort/allpairs.hpp"
#include "spatial/grid_array.hpp"
#include "spatial/machine.hpp"

#include <algorithm>
#include <cassert>
#include <span>
#include <vector>

namespace scm {

/// Result of a rank-selection over two sorted arrays: the k smallest
/// elements of the union are A[0, a_count) together with B[0, b_count).
/// `clock` is the readiness of this decision at the work origin.
struct SplitResult {
  index_t a_count{0};
  index_t b_count{0};
  Clock clock{};
};

namespace detail {

/// Walking binary search counting the elements of the sorted array `arr`
/// that are <= pivot. The pivot value *travels* from probe to probe rather
/// than round-tripping to its home processor: consecutive midpoints are a
/// geometrically shrinking index distance apart, so on a Z-order (or
/// row-major) layout the probe path's total Manhattan length is a
/// geometric series — O(sqrt n) distance and energy, O(log n) depth. (The
/// paper notes that a naive binary search subroutine would be
/// distance-suboptimal; the walking form avoids that.) The count finally
/// returns to `home`.
struct CountResult {
  index_t count{0};
  Clock clock{};
};

template <class T, class Less>
CountResult count_leq(Machine& m, const GridArray<T>& arr, const T& pivot,
                      Clock pivot_clock, Coord home, Less less) {
  index_t lo = 0;
  index_t hi = arr.size();
  Clock clock = pivot_clock;
  Coord at = home;
  while (lo < hi) {
    const index_t mid = lo + (hi - lo) / 2;
    const Coord probe = arr.coord(mid);
    clock = m.send(at, probe, clock);
    clock = Clock::join(clock, arr[mid].clock);
    at = probe;
    m.op();
    if (less(pivot, arr[mid].value)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  clock = m.send(at, home, clock);
  return {lo, clock};
}

/// An element annotated with its source array (0 = A, 1 = B) and index, so
/// the selected pivot can be traced back to a split position.
template <class T>
struct SampleElem {
  T value{};
  int src{0};
  index_t idx{0};
};

template <class Less>
struct SampleLess {
  Less less{};
  template <class T>
  bool operator()(const SampleElem<T>& a, const SampleElem<T>& b) const {
    return less(a.value, b.value);
  }
};

/// Gathers elements of `arr` at the given indices into a Z-order square at
/// `work_origin` as one bulk batch: distinct source cells feed distinct
/// destination slots, so the batch is self-independent.
template <class T>
GridArray<SampleElem<T>> gather_indexed(Machine& m, const GridArray<T>& a,
                                        const GridArray<T>& b,
                                        const std::vector<index_t>& a_idx,
                                        const std::vector<index_t>& b_idx,
                                        Coord work_origin) {
  const index_t total =
      static_cast<index_t>(a_idx.size() + b_idx.size());
  GridArray<SampleElem<T>> out =
      GridArray<SampleElem<T>>::on_square(work_origin, total);
  std::vector<MessageEvent> batch;
  batch.reserve(static_cast<size_t>(total));
  index_t slot = 0;
  auto stage = [&](const GridArray<T>& src, int tag,
                   const std::vector<index_t>& idx) {
    for (index_t i : idx) {
      batch.push_back(MessageEvent{src.coord(i), out.coord(slot), 0,
                                   src[i].clock, Clock{}});
      out[slot] = Cell<SampleElem<T>>{SampleElem<T>{src[i].value, tag, i},
                                      Clock{}};
      ++slot;
    }
  };
  stage(a, 0, a_idx);
  stage(b, 1, b_idx);
  m.send_bulk(batch);  // bulk-ok: caller holds the phase scope
  for (index_t i = 0; i < total; ++i) {
    out[i].clock = batch[static_cast<size_t>(i)].arrival;
  }
  return out;
}

/// Finds the split of the sorted suffixes A[a_lo, |A|) and B[b_lo, |B|)
/// whose first x and r-x elements are exactly the r smallest of the two
/// suffixes' union. Instead of gathering and All-Pairs-Sorting a window
/// (whose (6 sqrt n)^{5/2} cost dominated the whole merge), an O(1)-word
/// coordinator walks a binary search over x, probing only the four
/// boundary cells A[a_lo+x-1], A[a_lo+x], B[b_lo+y-1], B[b_lo+y] per
/// iteration: O(log r) probes of O(sqrt n) Manhattan length each. Under a
/// strict total order the valid split is unique, so the search always
/// lands. The decision finally travels to `home`.
struct WindowSplit {
  index_t x{0};
  Clock clock{};
};

template <class T, class Less>
WindowSplit split_suffixes(Machine& m, const GridArray<T>& a, index_t a_lo,
                           const GridArray<T>& b, index_t b_lo, index_t r,
                           Clock clock, Coord at, Coord home, Less less) {
  const index_t sa = a.size() - a_lo;
  const index_t sb = b.size() - b_lo;
  assert(r >= 1 && r <= sa + sb);
  index_t lo = sb < r ? r - sb : 0;
  index_t hi = std::min(r, sa);
  auto visit = [&](const GridArray<T>& arr, index_t i) -> const T& {
    const Coord probe = arr.coord(i);
    clock = m.send(at, probe, clock);
    clock = Clock::join(clock, arr[i].clock);
    at = probe;
    return arr[i].value;
  };
  index_t x = lo;
  for (;;) {
    x = lo + (hi - lo) / 2;
    const index_t y = r - x;
    if (x < sa && y >= 1) {
      // Smallest untaken of A vs. largest taken of B: if A[a_lo+x] is
      // still below B's last taken element, x is too small.
      const T& a_untaken = visit(a, a_lo + x);
      const T& b_taken = visit(b, b_lo + y - 1);
      m.op();
      if (less(a_untaken, b_taken)) {
        lo = x + 1;
        continue;
      }
    }
    if (x >= 1 && y < sb) {
      // Smallest untaken of B vs. largest taken of A: symmetric.
      const T& b_untaken = visit(b, b_lo + y);
      const T& a_taken = visit(a, a_lo + x - 1);
      m.op();
      if (less(b_untaken, a_taken)) {
        hi = x - 1;
        continue;
      }
    }
    break;  // every taken element precedes every untaken one: valid split
  }
  clock = m.send(at, home, clock);
  return WindowSplit{x, clock};
}

}  // namespace detail

/// Deterministic multiselect (Lemma V.6): selects the split of two sorted
/// arrays at *each* rank of `ks` while paying for one sample gather and
/// one sample All-Pairs Sort, shared by all ranks. Each k is 1-based in
/// [0, |A|+|B|] (k = 0 gives the empty split). Degenerate ranks (k = 0,
/// k = n) and degenerate inputs (|A| = 0 or |B| = 0, where the split is
/// forced) are resolved host-side for free. Sample gathering and sorting
/// happen on a square overlay at `work_origin`, which callers place at
/// the merge region's corner.
template <class T, class Less>
[[nodiscard]] std::vector<SplitResult> multiselect_two_sorted(
    Machine& m, const GridArray<T>& a, const GridArray<T>& b,
    std::span<const index_t> ks, Coord work_origin, Less less) {
  const index_t na = a.size();
  const index_t nb = b.size();
  const index_t n = na + nb;
  std::vector<SplitResult> results(ks.size());
  std::vector<size_t> pending;
  for (size_t j = 0; j < ks.size(); ++j) {
    const index_t k = ks[j];
    assert(k >= 0 && k <= n);
    if (k == 0) {
      results[j] = SplitResult{0, 0, Clock{}};
    } else if (k == n) {
      results[j] = SplitResult{na, nb, Clock{}};
    } else if (na == 0) {
      results[j] = SplitResult{0, k, Clock{}};
    } else if (nb == 0) {
      results[j] = SplitResult{k, 0, Clock{}};
    } else {
      pending.push_back(j);
    }
  }
  if (pending.empty()) return results;
  Machine::PhaseScope scope(m, "rank_select_two_sorted");

  // Any Theta(sqrt n) spacing realizes Lemma V.6; doubling it halves the
  // sample, and the sample sort's m^{5/2} scratch-area term shrinks by
  // ~5.7x while the per-rank window merely doubles (still O(sqrt n), and
  // the window search below is logarithmic in its width anyway).
  const index_t step = std::max<index_t>(1, 2 * isqrt(n));

  // Step 1: deterministic every-step-th sampling of both arrays (index 0
  // included, so the sample is never empty on a non-empty array). One
  // gather, shared by every rank.
  std::vector<index_t> a_samples;
  std::vector<index_t> b_samples;
  for (index_t i = 0; i * step < na; ++i) a_samples.push_back(i * step);
  for (index_t i = 0; i * step < nb; ++i) b_samples.push_back(i * step);
  GridArray<detail::SampleElem<T>> sample = detail::gather_indexed(
      m, a, b, a_samples, b_samples, work_origin);

  // Step 2: All-Pairs Sort the sample — once, for all ranks.
  GridArray<detail::SampleElem<T>> sorted =
      allpairs_sort(m, sample, detail::SampleLess<Less>{less});

  for (size_t j : pending) {
    const index_t k = ks[j];
    // Steps 3-4: pick the pivot and count its predecessors in A and B.
    // The clamp against sorted.size() is defensively unreachable: the
    // sample holds at least ceil(n / step) > (n - 1) / step >= l elements.
    const index_t l = std::min((k - 1) / step, sorted.size());
    index_t a_lo = 0;
    index_t b_lo = 0;
    Clock decision{};
    Coord at = work_origin;
    if (l >= 1) {
      const Cell<detail::SampleElem<T>>& pivot = sorted[l - 1];
      const Coord pivot_at = sorted.coord(l - 1);
      const auto ca = detail::count_leq(m, a, pivot.value.value, pivot.clock,
                                        pivot_at, less);
      const auto cb = detail::count_leq(m, b, pivot.value.value, pivot.clock,
                                        pivot_at, less);
      a_lo = ca.count;
      b_lo = cb.count;
      decision = Clock::join(ca.clock, cb.clock);
      at = pivot_at;
      assert(a_lo + b_lo <= k - 1);  // rank(pivot) <= k - 1 (Lemma V.6)
    }
    // rank(pivot) = a_lo + b_lo <= k - 1; with l samples at or below the
    // pivot the rank is at least (l-2)*step + 2, so the target lies within
    // the next <= 3*step elements of each array. (The paper states
    // 2*sqrt(n) for the case where both arrays contribute samples below
    // the pivot; one extra step covers the one-sided case, with the same
    // asymptotics.)
    const index_t remaining = k - a_lo - b_lo;
    assert(remaining >= 1 && remaining <= 3 * step);

    // Step 5: walking binary search over the window boundaries.
    const detail::WindowSplit split = detail::split_suffixes(
        m, a, a_lo, b, b_lo, remaining, decision, at, work_origin, less);
    SplitResult result{a_lo + split.x, k - (a_lo + split.x), split.clock};
    assert(result.a_count >= 0 && result.a_count <= na);
    assert(result.b_count >= 0 && result.b_count <= nb);
    results[j] = result;
  }
  return results;
}

/// Selects the rank-k split of two sorted arrays (Lemma V.6): the
/// single-rank form of `multiselect_two_sorted`, with the same costs.
template <class T, class Less>
[[nodiscard]] SplitResult rank_select_two_sorted(Machine& m,
                                                 const GridArray<T>& a,
                                                 const GridArray<T>& b,
                                                 index_t k, Coord work_origin,
                                                 Less less) {
  const index_t ks[1] = {k};
  return multiselect_two_sorted(m, a, b, std::span<const index_t>(ks),
                                work_origin, less)[0];
}

}  // namespace scm
