// Rank selection in two sorted arrays (Section V-C-c, Lemma V.6) — the
// multiselection subroutine of the 2-D merge.
//
// Given sorted arrays A and B and a rank k (1-based, within |A|+|B|), it
// finds the split (a_count, b_count) with a_count + b_count = k such that
// A[0, a_count) and B[0, b_count) are exactly the k smallest elements of
// the union:
//   1. sample every floor(sqrt(n))-th element of A and of B;
//   2. All-Pairs Sort the sample;
//   3. l = floor((k-1) / floor(sqrt(n)));
//   4. the l-th ranked sample element is the pivot; binary searches locate
//      its predecessor counts a and b in A and B;
//   5. the rank-(k-a-b) element is found among the next ~2 sqrt(n)
//      elements of each array with another All-Pairs Sort.
//
// Costs: O(n^{5/4}) energy, O(log n) depth, O(sqrt n) distance — dominated
// by the All-Pairs Sort of the sqrt(n)-sized sample (Lemma V.6).
//
// `less` must be a strict TOTAL order over T (wrap with WithId/TotalLess).
#pragma once

#include "sort/allpairs.hpp"
#include "spatial/grid_array.hpp"
#include "spatial/machine.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

namespace scm {

/// Result of a rank-selection over two sorted arrays: the k smallest
/// elements of the union are A[0, a_count) together with B[0, b_count).
/// `clock` is the readiness of this decision at the work origin.
struct SplitResult {
  index_t a_count{0};
  index_t b_count{0};
  Clock clock{};
};

namespace detail {

/// Walking binary search counting the elements of the sorted array `arr`
/// that are <= pivot. The pivot value *travels* from probe to probe rather
/// than round-tripping to its home processor: consecutive midpoints are a
/// geometrically shrinking index distance apart, so on a Z-order (or
/// row-major) layout the probe path's total Manhattan length is a
/// geometric series — O(sqrt n) distance and energy, O(log n) depth. (The
/// paper notes that a naive binary search subroutine would be
/// distance-suboptimal; the walking form avoids that.) The count finally
/// returns to `home`.
struct CountResult {
  index_t count{0};
  Clock clock{};
};

template <class T, class Less>
CountResult count_leq(Machine& m, const GridArray<T>& arr, const T& pivot,
                      Clock pivot_clock, Coord home, Less less) {
  index_t lo = 0;
  index_t hi = arr.size();
  Clock clock = pivot_clock;
  Coord at = home;
  while (lo < hi) {
    const index_t mid = lo + (hi - lo) / 2;
    const Coord probe = arr.coord(mid);
    clock = m.send(at, probe, clock);
    clock = Clock::join(clock, arr[mid].clock);
    at = probe;
    m.op();
    if (less(pivot, arr[mid].value)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  clock = m.send(at, home, clock);
  return {lo, clock};
}

/// An element annotated with its source array (0 = A, 1 = B) and index, so
/// the selected pivot can be traced back to a split position.
template <class T>
struct SampleElem {
  T value{};
  int src{0};
  index_t idx{0};
};

template <class Less>
struct SampleLess {
  Less less{};
  template <class T>
  bool operator()(const SampleElem<T>& a, const SampleElem<T>& b) const {
    return less(a.value, b.value);
  }
};

/// Gathers elements of `arr` at the given indices into a Z-order square at
/// `work_origin`, one direct message per element; the gather request chains
/// from `ready` (the decision that triggered it) when provided.
template <class T>
GridArray<SampleElem<T>> gather_indexed(Machine& m, const GridArray<T>& a,
                                        const GridArray<T>& b,
                                        const std::vector<index_t>& a_idx,
                                        const std::vector<index_t>& b_idx,
                                        Coord work_origin,
                                        const Clock* ready) {
  const index_t total =
      static_cast<index_t>(a_idx.size() + b_idx.size());
  GridArray<SampleElem<T>> out =
      GridArray<SampleElem<T>>::on_square(work_origin, total);
  index_t slot = 0;
  auto pull = [&](const GridArray<T>& src, int tag,
                  const std::vector<index_t>& idx) {
    for (index_t i : idx) {
      Clock elem_clock = src[i].clock;
      if (ready != nullptr) {
        // The request to fetch this element travels from the coordinator.
        const Clock request = m.send(work_origin, src.coord(i), *ready);
        elem_clock = Clock::join(elem_clock, request);
      }
      out[slot] = Cell<SampleElem<T>>{
          SampleElem<T>{src[i].value, tag, i},
          m.send(src.coord(i), out.coord(slot), elem_clock)};
      ++slot;
    }
  };
  pull(a, 0, a_idx);
  pull(b, 1, b_idx);
  return out;
}

}  // namespace detail

/// Selects the rank-k split of two sorted arrays (Lemma V.6). `k` is
/// 1-based in [0, |A|+|B|] (k = 0 gives the empty split). Sample gathering,
/// sorting, and window scanning happen on a square overlay at
/// `work_origin`, which callers place at the merge region's corner.
template <class T, class Less>
[[nodiscard]] SplitResult rank_select_two_sorted(Machine& m,
                                                 const GridArray<T>& a,
                                                 const GridArray<T>& b,
                                                 index_t k, Coord work_origin,
                                                 Less less) {
  const index_t na = a.size();
  const index_t nb = b.size();
  const index_t n = na + nb;
  assert(k >= 0 && k <= n);
  if (k == 0) return SplitResult{0, 0, Clock{}};
  if (k == n) return SplitResult{na, nb, Clock{}};
  Machine::PhaseScope scope(m, "rank_select_two_sorted");

  const index_t step = std::max<index_t>(1, isqrt(n));

  // Step 1: deterministic every-step-th sampling of both arrays (index 0
  // included, so the sample is never empty on a non-empty array).
  std::vector<index_t> a_samples;
  std::vector<index_t> b_samples;
  for (index_t i = 0; i * step < na; ++i) a_samples.push_back(i * step);
  for (index_t i = 0; i * step < nb; ++i) b_samples.push_back(i * step);
  GridArray<detail::SampleElem<T>> sample = detail::gather_indexed(
      m, a, b, a_samples, b_samples, work_origin, nullptr);

  // Step 2: All-Pairs Sort the sample.
  GridArray<detail::SampleElem<T>> sorted =
      allpairs_sort(m, sample, detail::SampleLess<Less>{less});

  // Steps 3-4: pick the pivot and count its predecessors in A and B.
  const index_t l = std::min((k - 1) / step, sorted.size());
  index_t a_lo = 0;
  index_t b_lo = 0;
  Clock decision{};
  if (l >= 1) {
    const Cell<detail::SampleElem<T>>& pivot = sorted[l - 1];
    const Coord pivot_at = sorted.coord(l - 1);
    const auto ca = detail::count_leq(m, a, pivot.value.value, pivot.clock,
                                      pivot_at, less);
    const auto cb = detail::count_leq(m, b, pivot.value.value, pivot.clock,
                                      pivot_at, less);
    a_lo = ca.count;
    b_lo = cb.count;
    decision = Clock::join(ca.clock, cb.clock);
    assert(a_lo + b_lo <= k - 1);  // rank(pivot) <= k - 1 (Lemma V.6)
  }
  // rank(pivot) = a_lo + b_lo <= k - 1; with l samples at or below the
  // pivot the rank is at least (l-2)*step + 2, so the target lies within
  // the next <= 3*step elements of each array. (The paper states 2*sqrt(n)
  // for the case where both arrays contribute samples below the pivot; one
  // extra step covers the one-sided case, with the same asymptotics.)
  const index_t remaining = k - a_lo - b_lo;
  assert(remaining >= 1 && remaining <= 3 * step);

  // Step 5: narrow windows and find the rank-(remaining) element. The
  // rank-r element of two sorted suffixes lies within the first r of each,
  // so the windows are `remaining` (<= 3*step = O(sqrt n)) wide.
  const index_t wa = std::min(na - a_lo, remaining);
  const index_t wb = std::min(nb - b_lo, remaining);
  std::vector<index_t> a_window(static_cast<size_t>(wa));
  std::vector<index_t> b_window(static_cast<size_t>(wb));
  for (index_t i = 0; i < wa; ++i) {
    a_window[static_cast<size_t>(i)] = a_lo + i;
  }
  for (index_t i = 0; i < wb; ++i) {
    b_window[static_cast<size_t>(i)] = b_lo + i;
  }
  GridArray<detail::SampleElem<T>> window = detail::gather_indexed(
      m, a, b, a_window, b_window, work_origin, l >= 1 ? &decision : nullptr);
  GridArray<detail::SampleElem<T>> window_sorted =
      allpairs_sort(m, window, detail::SampleLess<Less>{less});
  assert(remaining <= window_sorted.size());

  // Count how many of the `remaining` smallest window elements come from A;
  // deliver the decision to the work origin.
  index_t extra_a = 0;
  Clock result_clock{};
  for (index_t i = 0; i < remaining; ++i) {
    if (window_sorted[i].value.src == 0) ++extra_a;
    result_clock = Clock::join(result_clock, window_sorted[i].clock);
  }
  m.op(remaining);
  result_clock =
      m.send(window_sorted.coord(remaining - 1), work_origin, result_clock);

  SplitResult result{a_lo + extra_a, k - (a_lo + extra_a), result_clock};
  assert(result.a_count >= 0 && result.a_count <= na);
  assert(result.b_count >= 0 && result.b_count <= nb);
  return result;
}

}  // namespace scm
