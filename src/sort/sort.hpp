// Umbrella header for the sorting algorithms of Section V.
//
//   * mergesort2d — the energy-optimal sort (Theorem V.8): O(n^{3/2})
//                   energy, O(log^3 n) depth, O(sqrt n) distance;
//   * bitonic     — the sorting-network alternative (Lemma V.4): lower
//                   depth (O(log^2 n)) but a log factor more energy;
//   * allpairs    — the O(log n)-depth auxiliary sort (Lemma V.5) for
//                   sqrt(n)-sized working sets;
//   * merge2d / rank_select_two_sorted — the merge machinery (Lemmas
//                   V.6-V.7);
//   * permute     — direct permutation routing and the Omega(n^{3/2})
//                   lower-bound witness (Lemma V.1).
#pragma once

#include "sort/allpairs.hpp"     // IWYU pragma: export
#include "sort/bitonic.hpp"      // IWYU pragma: export
#include "sort/keyed.hpp"        // IWYU pragma: export
#include "sort/merge2d.hpp"      // IWYU pragma: export
#include "sort/mergesort2d.hpp"  // IWYU pragma: export
#include "sort/permute.hpp"      // IWYU pragma: export
#include "sort/rank_select_sorted.hpp"  // IWYU pragma: export

namespace scm {

/// Stable bitonic sort of an arbitrary-size array: tags elements with ids
/// and runs the padded bitonic network under the induced total order.
/// Returns the sorted array in the input's layout. Lemma V.4 costs.
template <class T, class Less = std::less<T>>
[[nodiscard]] GridArray<T> bitonic_sort_stable(Machine& m,
                                               const GridArray<T>& input,
                                               Less less = Less{}) {
  GridArray<WithId<T>> tagged = attach_ids(m, input);
  GridArray<WithId<T>> sorted =
      bitonic_sort_any(m, tagged, TotalLess<Less>{less});
  return detach_ids(m, sorted);
}

}  // namespace scm
