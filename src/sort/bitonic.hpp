// Bitonic sorting network mapped onto the processor grid (Section V-B).
//
// Each wire of the network is assigned to the processor holding that array
// index (row-major in the paper's Fig. 2); every compare-exchange step
// swaps one pair of wires with two messages. Bitonic Sort is data-oblivious
// with Theta(log^2 n) depth, but on an h x w subgrid it costs
// Theta(h^2 w + w^2 h log h) energy (Lemma V.4) — on a square grid
// Theta(n^{3/2} log n), a log factor off the optimal 2-D Mergesort. It is
// used as a subroutine to sort the gathered sample in the randomized rank
// selection (Section VI step 3), where its low depth matters and its
// energy is not the bottleneck.
#pragma once

#include "sort/keyed.hpp"
#include "spatial/grid_array.hpp"
#include "spatial/machine.hpp"

#include <cassert>
#include <span>
#include <utility>
#include <vector>

namespace scm {

/// One compare-exchange of the network: wires i < l exchange their values
/// (two messages), each processor keeps min or max locally. After the step
/// a[i] <= a[l] when `asc`, a[i] >= a[l] otherwise.
template <class T, class Less>
void compare_exchange(Machine& m, GridArray<T>& a, index_t i, index_t l,
                      bool asc, Less less) {
  assert(i < l);
  Cell<T>& lo = a[i];
  Cell<T>& hi = a[l];
  const Clock to_hi = m.send(a.coord(i), a.coord(l), lo.clock);
  const Clock to_lo = m.send(a.coord(l), a.coord(i), hi.clock);
  const Clock joined_lo = Clock::join(lo.clock, to_lo);
  const Clock joined_hi = Clock::join(hi.clock, to_hi);
  m.op(2);
  const bool out_of_order = asc ? less(hi.value, lo.value)
                                : less(lo.value, hi.value);
  if (out_of_order) std::swap(lo.value, hi.value);
  lo.clock = joined_lo;
  hi.clock = joined_hi;
  m.observe(joined_lo);
  m.observe(joined_hi);
}

namespace detail {

/// One wire pair of a compare-exchange round, with its sort direction.
struct WirePair {
  index_t lo{0};
  index_t hi{0};
  bool asc{true};
};

/// Executes one simultaneous compare-exchange round (all pairs of one
/// network step) as a single Machine::send_bulk batch of 2 messages per
/// pair plus one op_bulk and one observe of the round's joined clocks.
/// Pairs of a step touch disjoint wires, so every exchange reads pre-round
/// clocks — exactly what the scalar per-pair loop did. `batch` is caller
/// scratch reused across rounds.
template <class T, class Less>
void compare_exchange_round(Machine& m, GridArray<T>& a,
                            const std::vector<WirePair>& pairs, Less less,
                            std::vector<MessageEvent>& batch) {
  if (pairs.empty()) return;
  const std::span<const Coord> at = a.coords();
  batch.resize(2 * pairs.size());
  for (size_t k = 0; k < pairs.size(); ++k) {
    const WirePair& p = pairs[k];
    assert(p.lo < p.hi);
    batch[2 * k] = MessageEvent{at[static_cast<size_t>(p.lo)],
                                at[static_cast<size_t>(p.hi)], 0,
                                a[p.lo].clock, Clock{}};
    batch[2 * k + 1] = MessageEvent{at[static_cast<size_t>(p.hi)],
                                    at[static_cast<size_t>(p.lo)], 0,
                                    a[p.hi].clock, Clock{}};
  }
  m.send_bulk(batch);  // bulk-ok: caller's per-step phase scope attributes
  // bulk-ok: same round, same caller-held scope
  m.op_bulk(static_cast<index_t>(2 * pairs.size()));
  Clock round_max{};
  for (size_t k = 0; k < pairs.size(); ++k) {
    const WirePair& p = pairs[k];
    Cell<T>& lo = a[p.lo];
    Cell<T>& hi = a[p.hi];
    const Clock joined_lo = Clock::join(lo.clock, batch[2 * k + 1].arrival);
    const Clock joined_hi = Clock::join(hi.clock, batch[2 * k].arrival);
    const bool out_of_order =
        p.asc ? less(hi.value, lo.value) : less(lo.value, hi.value);
    if (out_of_order) std::swap(lo.value, hi.value);
    lo.clock = joined_lo;
    hi.clock = joined_hi;
    round_max = Clock::join(round_max, Clock::join(joined_lo, joined_hi));
  }
  m.observe(round_max);
}

}  // namespace detail

/// The Bitonic Merge network (Fig. 2, Lemma V.3): sorts a *bitonic*
/// sequence (e.g. an ascending run followed by a descending run) of
/// power-of-two length in place. Recursively compares wire i with wire
/// i + n/2, then merges both halves. On an h x w subgrid it costs
/// Theta(h^2 w + w^2 h) energy, Theta(log n) depth, Theta(w + h) distance.
template <class T, class Less>
void bitonic_merge(Machine& m, GridArray<T>& a, Less less) {
  assert(is_pow2(a.size()) || a.size() == 0);
  Machine::PhaseScope scope(m, "bitonic_merge");
  const index_t n = a.size();
  std::vector<detail::WirePair> pairs;
  std::vector<MessageEvent> batch;
  for (index_t j = n / 2; j > 0; j /= 2) {
    // Each network step is one simultaneous round: every wire holds its
    // value plus at most one arriving partner word (O(1) residency per
    // step, which the per-step scope makes visible to the conformance
    // checker's epoch accounting). The round is charged as one bulk batch.
    Machine::PhaseScope step(m, "bitonic_merge/step");
    pairs.clear();
    for (index_t i = 0; i < n; ++i) {
      if ((i & j) != 0) continue;
      pairs.push_back(detail::WirePair{i, i + j, /*asc=*/true});
    }
    detail::compare_exchange_round(m, a, pairs, less, batch);
  }
}

/// Batcher's bitonic sorting network over the wires of `a` (which must have
/// a power-of-two size). Sorts in place under `less`, ascending. The wire
/// -> processor mapping is the array's own layout (row-major reproduces the
/// paper's Fig. 2 analysis; a Z-order mapping is a supported variant with
/// the same asymptotic energy).
template <class T, class Less>
void bitonic_sort(Machine& m, GridArray<T>& a, Less less) {
  assert(is_pow2(a.size()) || a.size() == 0);
  Machine::PhaseScope scope(m, "bitonic_sort");
  const index_t n = a.size();
  std::vector<detail::WirePair> pairs;
  std::vector<MessageEvent> batch;
  for (index_t k = 2; k <= n; k *= 2) {
    for (index_t j = k / 2; j > 0; j /= 2) {
      // One simultaneous compare-exchange round; see bitonic_merge.
      Machine::PhaseScope step(m, "bitonic_sort/step");
      pairs.clear();
      for (index_t i = 0; i < n; ++i) {
        const index_t l = i ^ j;
        if (l <= i) continue;
        pairs.push_back(detail::WirePair{i, l, /*asc=*/(i & k) == 0});
      }
      detail::compare_exchange_round(m, a, pairs, less, batch);
    }
  }
}

namespace detail {

/// Sentinel-padded element: pads order after every real element, so a
/// padded ascending sort leaves the real elements sorted in the prefix.
template <class T>
struct Padded {
  T value{};
  bool pad{false};
};

template <class Less>
struct PaddedLess {
  Less less{};
  template <class T>
  bool operator()(const Padded<T>& a, const Padded<T>& b) const {
    if (a.pad != b.pad) return b.pad;  // real < pad
    if (a.pad) return false;           // pads tie
    return less(a.value, b.value);
  }
};

}  // namespace detail

/// Bitonic sort for arbitrary n: pads the wire array to the next power of
/// two with +infinity sentinels inside the same region (which must have
/// enough processors), sorts, and returns the real prefix in layout order
/// starting at the array's offset. Energy stays within a constant factor
/// of the power-of-two network.
template <class T, class Less>
[[nodiscard]] GridArray<T> bitonic_sort_any(Machine& m, const GridArray<T>& a,
                                            Less less) {
  const index_t n = a.size();
  if (n <= 1) return a;
  const index_t padded_n = ceil_pow2(n);
  assert(a.offset() + padded_n <= a.region().size());
  GridArray<detail::Padded<T>> wires(a.region(), a.layout(), padded_n,
                                     a.offset());
  for (index_t i = 0; i < n; ++i) {
    wires[i] = Cell<detail::Padded<T>>{{a[i].value, false}, a[i].clock};
  }
  for (index_t i = n; i < padded_n; ++i) {
    wires[i] = Cell<detail::Padded<T>>{{T{}, true}, Clock{}};
  }
  bitonic_sort(m, wires, detail::PaddedLess<Less>{less});
  GridArray<T> out(a.region(), a.layout(), n, a.offset());
  for (index_t i = 0; i < n; ++i) {
    assert(!wires[i].value.pad);
    out[i] = Cell<T>{wires[i].value.value, wires[i].clock};
  }
  return out;
}

}  // namespace scm
