// Energy-optimal 2-D Mergesort (Section V-C, Theorem V.8).
//
// Recursively sorts the four quadrants of the subgrid, merges the two top
// quadrants, merges the two bottom quadrants, then merges the two results
// (all with the 2-D merge of Lemma V.7). The recursion operates on aligned
// Z-order ranges of one parent square; the final result is permuted from
// Z-order into row-major order (Fig. 3(d)).
//
// Costs (Theorem V.8): O(n^{3/2}) energy — matching the permutation lower
// bound of Corollary V.2, so the algorithm is energy-optimal — with
// O(log^3 n) depth and O(sqrt n) distance. The implementation achieves
// the energy shape: measured e / n^{3/2} is flat (~7-11, a power-of-4
// quantization sawtooth with no trend) and the fitted log-log exponent
// is ~1.51 over n in [48, 1024] — see BENCH_simulator.json and the
// certificate in testing/bounds.json. An earlier revision fitted ~1.94
// because every merge node ran three independent rank selections whose
// window All-Pairs-Sorts dominated; the Lemma V.6 multiselect fixed
// that. The sort is stable: elements are tagged with their input index
// and compared under the induced total order.
#pragma once

#include "sort/keyed.hpp"
#include "sort/merge2d.hpp"
#include "spatial/grid_array.hpp"
#include "spatial/machine.hpp"

#include <cassert>
#include <functional>

namespace scm {

namespace detail {

/// Sorts the Z-order sub-range [offset, offset + count) of `arr` (counted
/// within a span of `span` aligned positions) and returns it as a sorted
/// Z-order range array.
template <class T, class Less>
GridArray<WithId<T>> mergesort_rec(Machine& m,
                                   const GridArray<WithId<T>>& arr,
                                   index_t offset, index_t span,
                                   index_t count, TotalLess<Less> less,
                                   const MergeConfig& config) {
  const Rect region = arr.region();
  using E = WithId<T>;
  if (count <= 0) return GridArray<E>(region, Layout::kZOrder, 0, offset);
  if (count <= config.base_size) {
    GridArray<E> slice(region, Layout::kZOrder, count, offset);
    for (index_t i = 0; i < count; ++i) slice[i] = arr[offset + i];
    return merge_base(m, std::vector<const GridArray<E>*>{&slice}, region,
                      offset, less);
  }
  const index_t quarter = span / 4;
  GridArray<E> parts[4] = {
      mergesort_rec(m, arr, offset, quarter,
                    std::min(count, quarter), less, config),
      mergesort_rec(m, arr, offset + quarter, quarter,
                    std::clamp<index_t>(count - quarter, 0, quarter), less,
                    config),
      mergesort_rec(m, arr, offset + 2 * quarter, quarter,
                    std::clamp<index_t>(count - 2 * quarter, 0, quarter),
                    less, config),
      mergesort_rec(m, arr, offset + 3 * quarter, quarter,
                    std::clamp<index_t>(count - 3 * quarter, 0, quarter),
                    less, config),
  };
  // Merge the two top quadrants, the two bottom quadrants, then the
  // results (Section V-C). The bottom merge lands right after the top one
  // so the final merge sees two contiguous sorted runs.
  const index_t top_n = parts[0].size() + parts[1].size();
  GridArray<E> top = merge2d(m, parts[0], parts[1], offset, less, config);
  GridArray<E> bottom =
      merge2d(m, parts[2], parts[3], offset + top_n, less, config);
  return merge2d(m, top, bottom, offset, less, config);
}

}  // namespace detail

/// Sorts `input` (any layout, any size) with the energy-optimal 2-D
/// Mergesort. Returns the sorted array in row-major order on the canonical
/// square at the input's region origin. Stable under `less`.
template <class T, class Less = std::less<T>>
[[nodiscard]] GridArray<T> mergesort2d(Machine& m, const GridArray<T>& input,
                                       Less less = Less{},
                                       const MergeConfig& config = {}) {
  Machine::PhaseScope scope(m, "mergesort2d");
  const index_t n = input.size();
  const Coord origin = input.region().origin();
  if (n <= 1) {
    GridArray<T> out = GridArray<T>::on_square(origin, n, Layout::kRowMajor);
    if (n == 1) send_element(m, input, 0, out, 0);
    return out;
  }

  // Tag with ids (stability + distinct ranks), lay out in Z-order on the
  // canonical square.
  GridArray<WithId<T>> tagged = attach_ids(m, input);
  GridArray<WithId<T>> z = route_permutation(
      m, tagged, square_at(origin, square_side_for(n)), Layout::kZOrder);

  index_t span = 1;
  while (span < n) span *= 4;
  GridArray<WithId<T>> sorted = detail::mergesort_rec(
      m, z, 0, span, n, TotalLess<Less>{less}, config);

  // Fig. 3(d): permute from Z-order into row-major order.
  GridArray<WithId<T>> row_major = route_permutation(
      m, sorted, sorted.region(), Layout::kRowMajor);
  return detach_ids(m, row_major);
}

}  // namespace scm
