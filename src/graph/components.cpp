#include "graph/components.hpp"

#include "collectives/reduce.hpp"
#include "collectives/scan.hpp"
#include "sort/mergesort2d.hpp"
#include "spatial/grid_array.hpp"
#include "spatial/zorder.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace scm::graph {

namespace {

/// One directed arc of the doubled edge list: the tail collects the min
/// label over its heads.
struct Arc {
  index_t head{0};  // label source
  index_t tail{0};  // label destination
  index_t label{0};  // the head's current label (refreshed per round)
};

struct ByHead {
  bool operator()(const Arc& a, const Arc& b) const {
    return a.head < b.head;
  }
};

struct ByTail {
  bool operator()(const Arc& a, const Arc& b) const {
    return a.tail < b.tail;
  }
};

}  // namespace

ComponentsResult connected_components(Machine& m, const EdgeList& graph) {
  Machine::PhaseScope scope(m, "connected_components");
  const index_t n = graph.n_vertices;
  ComponentsResult out;
  out.label.resize(static_cast<size_t>(n));
  std::iota(out.label.begin(), out.label.end(), index_t{0});
  if (graph.edges.empty() || n == 0) {
    out.components = n;
    return out;
  }

  // Doubled arcs on the canonical square at the origin.
  std::vector<Arc> arcs;
  arcs.reserve(graph.edges.size() * 2);
  for (const auto& [u, v] : graph.edges) {
    assert(u >= 0 && u < n && v >= 0 && v < n);
    arcs.push_back(Arc{u, v, 0});
    arcs.push_back(Arc{v, u, 0});
  }
  const auto m_arcs = static_cast<index_t>(arcs.size());
  GridArray<Arc> grid =
      GridArray<Arc>::from_values_square({0, 0}, arcs, Layout::kZOrder);

  // The label vector lives on a subgrid right of the arc grid.
  const index_t arc_side = grid.region().rows;
  const Rect label_rect =
      square_at({0, arc_side}, square_side_for(std::max<index_t>(n, 1)));
  GridArray<index_t> labels(label_rect, Layout::kRowMajor, n);
  for (index_t v = 0; v < n; ++v) labels[v].value = v;

  // Static routing, paid once: sort arcs by head; remember, per sorted
  // position, where the same arc lands in the by-tail order. The by-tail
  // order is computed by a second mergesort over (tail, position) pairs.
  GridArray<Arc> by_head = mergesort2d(m, grid, ByHead{});
  GridArray<Arc> by_tail = mergesort2d(m, by_head, ByTail{});
  // Host-side correspondence by_head position -> by_tail position (the
  // routing decision is fixed by the stable sorts; re-deriving it is
  // local bookkeeping).
  std::vector<index_t> head_to_tail_pos(static_cast<size_t>(m_arcs));
  {
    std::vector<index_t> order(static_cast<size_t>(m_arcs));
    std::iota(order.begin(), order.end(), index_t{0});
    std::stable_sort(order.begin(), order.end(), [&](index_t x, index_t y) {
      return by_head[x].value.tail < by_head[y].value.tail;
    });
    for (index_t pos = 0; pos < m_arcs; ++pos) {
      head_to_tail_pos[static_cast<size_t>(order[static_cast<size_t>(pos)])] =
          pos;
    }
  }

  // Head-segment structure over the by-head order (simultaneous neighbour
  // hand-offs, O(1) depth).
  std::vector<char> head_leader(static_cast<size_t>(m_arcs), 0);
  {
    std::vector<Clock> before(static_cast<size_t>(m_arcs));
    for (index_t i = 0; i < m_arcs; ++i) {
      before[static_cast<size_t>(i)] = by_head[i].clock;
    }
    for (index_t i = 0; i < m_arcs; ++i) {
      if (i == 0) {
        head_leader[0] = 1;
        continue;
      }
      const Clock arrived = m.send(by_head.coord(i - 1), by_head.coord(i),
                                   before[static_cast<size_t>(i - 1)]);
      by_head[i].clock = Clock::join(by_head[i].clock, arrived);
      m.op();
      head_leader[static_cast<size_t>(i)] =
          by_head[i].value.head != by_head[i - 1].value.head ? 1 : 0;
    }
  }
  std::vector<char> tail_leader(static_cast<size_t>(m_arcs), 0);
  for (index_t i = 0; i < m_arcs; ++i) {
    tail_leader[static_cast<size_t>(i)] =
        (i == 0 || by_tail[i].value.tail != by_tail[i - 1].value.tail) ? 1
                                                                       : 0;
  }

  // Propagation rounds.
  bool changed = true;
  while (changed) {
    ++out.rounds;
    changed = false;

    // 1. Head leaders fetch the current label; segmented broadcast along
    //    the head segments (scan with First over the Z-order view).
    GridArray<Seg<index_t>> fan(by_head.region(), Layout::kZOrder, m_arcs);
    for (index_t i = 0; i < m_arcs; ++i) {
      Clock clock = by_head[i].clock;
      index_t value = 0;
      if (head_leader[static_cast<size_t>(i)]) {
        const index_t h = by_head[i].value.head;
        const Coord here = by_head.coord(i);
        const Coord there = labels.coord(h);
        const Clock req = m.send(here, there, clock);
        clock = m.send(there, here, Clock::join(req, labels[h].clock));
        value = labels[h].value;
      }
      fan[i] = Cell<Seg<index_t>>{
          Seg<index_t>{value, head_leader[static_cast<size_t>(i)] != 0},
          clock};
      m.op();
    }
    GridArray<Seg<index_t>> fanned = segmented_scan(m, fan, First{});

    // 2. Route each arc's fetched label to its by-tail position (the
    //    static permutation computed above).
    GridArray<Seg<index_t>> to_min(by_tail.region(), Layout::kZOrder,
                                   m_arcs);
    for (index_t i = 0; i < m_arcs; ++i) {
      const index_t dst = head_to_tail_pos[static_cast<size_t>(i)];
      to_min[dst] = Cell<Seg<index_t>>{
          Seg<index_t>{fanned[i].value.value,
                       tail_leader[static_cast<size_t>(dst)] != 0},
          m.send(fanned.coord(i), to_min.coord(dst), fanned[i].clock)};
    }

    // 3. Segmented MIN per tail segment; the segment's last arc hands the
    //    minimum to the tail's label cell.
    GridArray<Seg<index_t>> mins = segmented_scan(m, to_min, Min{});
    for (index_t i = 0; i < m_arcs; ++i) {
      const bool last =
          i + 1 == m_arcs || tail_leader[static_cast<size_t>(i + 1)] != 0;
      if (!last) continue;
      const index_t v = by_tail[i].value.tail;
      const index_t candidate = mins[i].value.value;
      const Clock arrived =
          m.send(mins.coord(i), labels.coord(v), mins[i].clock);
      labels[v].clock = Clock::join(labels[v].clock, arrived);
      m.op();
      if (candidate < labels[v].value) {
        labels[v].value = candidate;
        changed = true;
      }
    }
  }

  // Collect results.
  for (index_t v = 0; v < n; ++v) {
    out.label[static_cast<size_t>(v)] = labels[v].value;
  }
  index_t components = 0;
  for (index_t v = 0; v < n; ++v) {
    if (out.label[static_cast<size_t>(v)] == v) ++components;
  }
  out.components = components;
  return out;
}

std::vector<index_t> reference_components(const EdgeList& graph) {
  std::vector<index_t> parent(static_cast<size_t>(graph.n_vertices));
  std::iota(parent.begin(), parent.end(), index_t{0});
  auto find = [&](index_t v) {
    while (parent[static_cast<size_t>(v)] != v) {
      parent[static_cast<size_t>(v)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(v)])];
      v = parent[static_cast<size_t>(v)];
    }
    return v;
  };
  for (const auto& [u, v] : graph.edges) {
    const index_t ru = find(u);
    const index_t rv = find(v);
    if (ru != rv) parent[static_cast<size_t>(std::max(ru, rv))] =
        std::min(ru, rv);
  }
  std::vector<index_t> label(static_cast<size_t>(graph.n_vertices));
  for (index_t v = 0; v < graph.n_vertices; ++v) {
    label[static_cast<size_t>(v)] = find(v);
  }
  return label;
}

}  // namespace scm::graph
