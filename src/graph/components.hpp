// Connected components on the spatial machine — a worked demonstration
// that the paper's primitives compose into graph algorithms (the "graph
// algorithms" motivation of Section I).
//
// Min-label propagation over the SpMV pipeline skeleton (Section VIII)
// under the (min, right) semiring:
//   * once: sort the (doubled) edge list by head vertex, then by tail
//     vertex, with the 2-D Mergesort — O(m^{3/2}) energy, paid a single
//     time because the routing pattern is static across rounds;
//   * per round: fetch each head segment's current label (leader fetch +
//     segmented broadcast), take a segmented MIN per tail vertex, update
//     labels, and count changes with an all-reduce — O(m + n sqrt(m))
//     energy, O(log n) depth per round;
//   * stop when a round changes nothing. Rounds needed = the graph
//     diameter (logical; each round is a bulk data-parallel step).
//
// Total: O(m^{3/2} + D (m + n sqrt m)) energy with O(D log n) depth for a
// diameter-D graph.
#pragma once

#include "spatial/machine.hpp"
#include "spmv/coo.hpp"

#include <vector>

namespace scm::graph {

/// An undirected graph as an edge list over vertices [0, n).
struct EdgeList {
  index_t n_vertices{0};
  std::vector<std::pair<index_t, index_t>> edges;
};

/// Result of a components run.
struct ComponentsResult {
  std::vector<index_t> label;  ///< per vertex: the smallest vertex id in
                               ///< its component
  index_t components{0};
  index_t rounds{0};
};

/// Computes connected components by spatial min-label propagation.
[[nodiscard]] ComponentsResult connected_components(Machine& m,
                                                    const EdgeList& graph);

/// Host reference (union-find) used by tests.
[[nodiscard]] std::vector<index_t> reference_components(
    const EdgeList& graph);

}  // namespace scm::graph
