#include "pram/program.hpp"

#include <stdexcept>

namespace scm::pram {

void validate(const Program& prog, const std::vector<Word>& memory) {
  if (prog.num_processors() <= 0) {
    throw std::invalid_argument("PRAM program needs at least one processor");
  }
  if (prog.num_cells() <= 0) {
    throw std::invalid_argument("PRAM program needs at least one memory cell");
  }
  if (prog.num_steps() < 0) {
    throw std::invalid_argument("PRAM program has a negative step count");
  }
  if (static_cast<index_t>(memory.size()) != prog.num_cells()) {
    throw std::invalid_argument(
        "initial memory image size does not match the program's num_cells");
  }
}

}  // namespace scm::pram
