#include "pram/erew.hpp"

#include "spatial/zorder.hpp"

#include <map>
#include <optional>
#include <string>

namespace scm::pram {

PramPlacement default_placement(index_t p, index_t m, Coord origin) {
  const index_t proc_side = square_side_for(p);
  const index_t mem_side = square_side_for(m);
  return PramPlacement{
      square_at(origin, proc_side),
      square_at({origin.row, origin.col + proc_side}, mem_side)};
}

namespace {

Coord mem_coord(const Rect& mem, index_t cell) {
  return mem.at(cell / mem.cols, cell % mem.cols);
}

}  // namespace

std::vector<Word> simulate_erew(Machine& machine, const Program& prog,
                                std::vector<Word> memory) {
  validate(prog, memory);
  Machine::PhaseScope scope(machine, "pram_erew");
  const index_t p = prog.num_processors();
  const index_t mc = prog.num_cells();
  const PramPlacement place = default_placement(p, mc);

  std::vector<ProcessorState> state(static_cast<size_t>(p));
  std::vector<Clock> proc_clock(static_cast<size_t>(p));
  std::vector<Clock> mem_clock(static_cast<size_t>(mc));

  auto proc_coord = [&](index_t i) {
    return zorder_coord(place.processors, i);
  };

  for (index_t t = 0; t < prog.num_steps(); ++t) {
    // Read phase: all requests are issued, exclusivity checked, and the
    // values delivered before any execution.
    std::vector<std::optional<index_t>> request(static_cast<size_t>(p));
    std::map<index_t, index_t> readers;
    for (index_t i = 0; i < p; ++i) {
      request[static_cast<size_t>(i)] =
          prog.read_request(t, i, state[static_cast<size_t>(i)]);
      if (request[static_cast<size_t>(i)]) {
        const index_t cell = *request[static_cast<size_t>(i)];
        if (cell < 0 || cell >= mc) {
          throw std::invalid_argument("PRAM read outside memory");
        }
        if (++readers[cell] > 1) {
          throw ConcurrencyViolation("concurrent read of cell " +
                                     std::to_string(cell) + " at step " +
                                     std::to_string(t));
        }
      }
    }
    std::vector<std::optional<Word>> read_value(static_cast<size_t>(p));
    for (index_t i = 0; i < p; ++i) {
      if (!request[static_cast<size_t>(i)]) continue;
      const index_t cell = *request[static_cast<size_t>(i)];
      const Coord pc = proc_coord(i);
      const Coord cc = mem_coord(place.memory, cell);
      const Clock req = machine.send(pc, cc, proc_clock[static_cast<size_t>(i)]);
      const Clock resp = machine.send(
          cc, pc, Clock::join(req, mem_clock[static_cast<size_t>(cell)]));
      read_value[static_cast<size_t>(i)] = memory[static_cast<size_t>(cell)];
      proc_clock[static_cast<size_t>(i)] =
          Clock::join(proc_clock[static_cast<size_t>(i)], resp);
    }

    // Execute phase: local computation, then all writes applied at once.
    std::vector<std::pair<index_t, WriteOp>> writes;
    std::map<index_t, index_t> writers;
    for (index_t i = 0; i < p; ++i) {
      std::optional<WriteOp> w = prog.execute(
          t, i, state[static_cast<size_t>(i)],
          read_value[static_cast<size_t>(i)]);
      machine.op();
      if (!w) continue;
      if (w->cell < 0 || w->cell >= mc) {
        throw std::invalid_argument("PRAM write outside memory");
      }
      if (++writers[w->cell] > 1) {
        throw ConcurrencyViolation("concurrent write of cell " +
                                   std::to_string(w->cell) + " at step " +
                                   std::to_string(t));
      }
      writes.emplace_back(i, *w);
    }
    for (const auto& [i, w] : writes) {
      const Coord pc = proc_coord(i);
      const Coord cc = mem_coord(place.memory, w.cell);
      mem_clock[static_cast<size_t>(w.cell)] =
          machine.send(pc, cc, proc_clock[static_cast<size_t>(i)]);
      memory[static_cast<size_t>(w.cell)] = w.value;
    }
  }
  return memory;
}

}  // namespace scm::pram
