// A small library of PRAM programs used by tests, benches, and the SpMV
// PRAM-simulation baseline of Section VIII:
//   * TreeReduceProgram      — pairwise tree reduction (EREW, 2 log n steps);
//   * HillisSteeleScanProgram— inclusive prefix scan (EREW, log n + 1 steps);
//   * BroadcastReadProgram   — all processors read cell 0 (CRCW-only);
//   * CommonWriteProgram     — all processors write cell 0 (CRCW-only;
//                              "arbitrary" resolves to the lowest id).
#pragma once

#include "pram/program.hpp"
#include "spatial/geometry.hpp"

#include <cassert>
#include <optional>

namespace scm::pram {

/// Reduces cells [0, n) into cell 0 under an associative, commutative
/// binary operation, with n/2 processors and 2 log2(n) steps (two steps per
/// tree level: fetch the right operand, then combine in place). EREW-safe.
class TreeReduceProgram : public Program {
 public:
  using BinOp = Word (*)(Word, Word);

  TreeReduceProgram(index_t n, BinOp op) : n_(n), op_(op) {
    assert(is_pow2(n));
    levels_ = 0;
    while ((index_t{1} << levels_) < n) ++levels_;
  }

  [[nodiscard]] index_t num_processors() const override {
    return std::max<index_t>(1, n_ / 2);
  }
  [[nodiscard]] index_t num_cells() const override { return n_; }
  [[nodiscard]] index_t num_steps() const override { return 2 * levels_; }

  [[nodiscard]] std::optional<index_t> read_request(
      index_t t, index_t p, const ProcessorState&) const override {
    const index_t level = t / 2;
    const index_t stride = index_t{1} << level;
    if (p >= n_ / (2 * stride)) return std::nullopt;
    const index_t base = p * 2 * stride;
    return (t % 2 == 0) ? base + stride : base;
  }

  std::optional<WriteOp> execute(index_t t, index_t p, ProcessorState& state,
                                 std::optional<Word> read) const override {
    const index_t level = t / 2;
    const index_t stride = index_t{1} << level;
    if (p >= n_ / (2 * stride)) return std::nullopt;
    if (t % 2 == 0) {
      state.reg[0] = *read;
      return std::nullopt;
    }
    return WriteOp{p * 2 * stride, op_(*read, state.reg[0])};
  }

 private:
  index_t n_;
  BinOp op_;
  index_t levels_{0};
};

/// Inclusive prefix-sum scan of cells [0, n) in place, one processor per
/// cell, log2(n) + 1 steps (Hillis-Steele). Reads and writes are exclusive
/// within every step, so it runs on both simulators; it is the classic
/// low-depth PRAM scan the paper's energy-optimal spatial scan is measured
/// against (Section II-B "Work-Depth/PRAM").
class HillisSteeleScanProgram : public Program {
 public:
  explicit HillisSteeleScanProgram(index_t n) : n_(n) {
    assert(is_pow2(n));
    levels_ = 0;
    while ((index_t{1} << levels_) < n) ++levels_;
  }

  [[nodiscard]] index_t num_processors() const override { return n_; }
  [[nodiscard]] index_t num_cells() const override { return n_; }
  [[nodiscard]] index_t num_steps() const override { return levels_ + 1; }

  [[nodiscard]] std::optional<index_t> read_request(
      index_t t, index_t p, const ProcessorState&) const override {
    if (t == 0) return p;  // load own value
    const index_t stride = index_t{1} << (t - 1);
    if (p < stride) return std::nullopt;
    return p - stride;
  }

  std::optional<WriteOp> execute(index_t t, index_t p, ProcessorState& state,
                                 std::optional<Word> read) const override {
    if (t == 0) {
      state.reg[0] = *read;
      return std::nullopt;
    }
    if (!read) return std::nullopt;
    state.reg[0] += *read;
    return WriteOp{p, state.reg[0]};
  }

 private:
  index_t n_;
  index_t levels_{0};
};

/// List ranking by pointer jumping [Wyllie]: given a linked list encoded
/// as successor pointers in cells [0, n) (value n marks the tail), after
/// ceil(log2 n) rounds cell n + i holds node i's distance to the tail.
/// Every round each processor reads its successor's *current* pointer and
/// rank — data-dependent addresses, demonstrating that simulated PRAM
/// programs may compute where to read from register state. Reads are
/// concurrent when chains share successors mid-jump, so this is a CRCW
/// program (simulate_crcw); memory cells [0, n) hold the (mutating)
/// pointers, [n, 2n) the partial ranks.
class ListRankProgram : public Program {
 public:
  explicit ListRankProgram(index_t n) : n_(n) {
    rounds_ = 0;
    while ((index_t{1} << rounds_) < n) ++rounds_;
  }

  [[nodiscard]] index_t num_processors() const override { return n_; }
  [[nodiscard]] index_t num_cells() const override { return 2 * n_; }
  /// Steps per round: load own pointer, read successor's rank, read
  /// successor's pointer + commit (two writes need two steps).
  [[nodiscard]] index_t num_steps() const override { return 4 * rounds_ + 1; }

  [[nodiscard]] std::optional<index_t> read_request(
      index_t t, index_t p, const ProcessorState& state) const override {
    if (t == 0) return p;  // initial pointer load
    const index_t phase = (t - 1) % 4;
    const auto succ = static_cast<index_t>(state.reg[0]);
    switch (phase) {
      case 0:  // read successor's rank (skip at the tail)
        return succ >= n_ ? std::nullopt
                          : std::optional<index_t>(n_ + succ);
      case 1:  // read successor's pointer
        return succ >= n_ ? std::nullopt : std::optional<index_t>(succ);
      default:
        return std::nullopt;  // write-only commit steps
    }
  }

  std::optional<WriteOp> execute(index_t t, index_t p,
                                 ProcessorState& state,
                                 std::optional<Word> read) const override {
    if (t == 0) {
      state.reg[0] = *read;  // successor pointer
      state.reg[1] = state.reg[0] >= static_cast<Word>(n_) ? 0.0 : 1.0;
      return WriteOp{n_ + p, state.reg[1]};
    }
    const index_t phase = (t - 1) % 4;
    switch (phase) {
      case 0:  // accumulate successor's rank
        if (read) state.reg[2] = *read;
        return std::nullopt;
      case 1:  // remember successor's successor
        if (read) state.reg[3] = *read;
        return std::nullopt;
      case 2:  // commit the doubled rank
        if (static_cast<index_t>(state.reg[0]) >= n_) return std::nullopt;
        state.reg[1] += state.reg[2];
        return WriteOp{n_ + p, state.reg[1]};
      default:  // commit the jumped pointer
        if (static_cast<index_t>(state.reg[0]) >= n_) return std::nullopt;
        state.reg[0] = state.reg[3];
        return WriteOp{p, state.reg[0]};
    }
  }

 private:
  index_t n_;
  index_t rounds_{0};
};

/// Every processor reads cell 0 and writes (value + its id) to cell 1 + id.
/// A pure concurrent-read program: EREW simulation must reject it; CRCW
/// resolves it with one fetch plus a segmented broadcast.
class BroadcastReadProgram : public Program {
 public:
  explicit BroadcastReadProgram(index_t p) : p_(p) {}

  [[nodiscard]] index_t num_processors() const override { return p_; }
  [[nodiscard]] index_t num_cells() const override { return p_ + 1; }
  [[nodiscard]] index_t num_steps() const override { return 1; }

  [[nodiscard]] std::optional<index_t> read_request(
      index_t, index_t, const ProcessorState&) const override {
    return 0;
  }

  std::optional<WriteOp> execute(index_t, index_t p, ProcessorState&,
                                 std::optional<Word> read) const override {
    return WriteOp{p + 1, *read + static_cast<Word>(p)};
  }

 private:
  index_t p_;
};

/// Every processor writes its id to cell 0. A pure concurrent-write
/// program: EREW must reject it; the CRCW "arbitrary" rule resolves it to
/// the lowest processor id (deterministically, by the sort-based tie
/// break).
class CommonWriteProgram : public Program {
 public:
  explicit CommonWriteProgram(index_t p) : p_(p) {}

  [[nodiscard]] index_t num_processors() const override { return p_; }
  [[nodiscard]] index_t num_cells() const override { return 1; }
  [[nodiscard]] index_t num_steps() const override { return 1; }

  [[nodiscard]] std::optional<index_t> read_request(
      index_t, index_t, const ProcessorState&) const override {
    return std::nullopt;
  }

  std::optional<WriteOp> execute(index_t, index_t p, ProcessorState&,
                                 std::optional<Word>) const override {
    return WriteOp{0, static_cast<Word>(p)};
  }

 private:
  index_t p_;
};

}  // namespace scm::pram
