#include "pram/crcw.hpp"

#include "collectives/scan.hpp"
#include "sort/mergesort2d.hpp"
#include "spatial/grid_array.hpp"
#include "spatial/zorder.hpp"

#include <optional>
#include <string>

namespace scm::pram {

namespace {

Coord mem_coord(const Rect& mem, index_t cell) {
  return mem.at(cell / mem.cols, cell % mem.cols);
}

/// One access tuple; `cell == sentinel` marks a processor that does not
/// participate in this sub-step (sentinels sort to the end).
struct AccessTuple {
  index_t cell{0};
  index_t proc{0};
  Word value{0};

  friend bool operator==(const AccessTuple&, const AccessTuple&) = default;
};

struct TupleLess {
  bool operator()(const AccessTuple& a, const AccessTuple& b) const {
    if (a.cell != b.cell) return a.cell < b.cell;
    return a.proc < b.proc;
  }
};

struct ProcLess {
  bool operator()(const AccessTuple& a, const AccessTuple& b) const {
    return a.proc < b.proc;
  }
};

/// Neighbour hand-off leader detection: sorted position j learns position
/// j-1's cell with one message and becomes a leader when the cells differ.
/// All hand-offs happen simultaneously (each processor forwards the value
/// it held *before* this round), so the clocks are snapshot first — the
/// step adds O(1) depth, not a chain.
std::vector<char> detect_leaders(Machine& machine,
                                 GridArray<AccessTuple>& sorted,
                                 index_t sentinel) {
  const index_t n = sorted.size();
  std::vector<Clock> before(static_cast<size_t>(n));
  for (index_t j = 0; j < n; ++j) before[static_cast<size_t>(j)] =
      sorted[j].clock;
  std::vector<char> leader(static_cast<size_t>(n), 0);
  for (index_t j = 0; j < n; ++j) {
    if (sorted[j].value.cell == sentinel) continue;
    if (j == 0) {
      leader[0] = 1;
      continue;
    }
    const Clock arrived = machine.send(sorted.coord(j - 1), sorted.coord(j),
                                       before[static_cast<size_t>(j - 1)]);
    sorted[j].clock = Clock::join(sorted[j].clock, arrived);
    machine.op();
    leader[static_cast<size_t>(j)] =
        sorted[j].value.cell != sorted[j - 1].value.cell ? 1 : 0;
  }
  return leader;
}

}  // namespace

std::vector<Word> simulate_crcw(Machine& machine, const Program& prog,
                                std::vector<Word> memory) {
  validate(prog, memory);
  Machine::PhaseScope scope(machine, "pram_crcw");
  const index_t p = prog.num_processors();
  const index_t mc = prog.num_cells();
  const index_t sentinel = mc;  // greater than any real cell index
  const PramPlacement place = default_placement(p, mc);

  std::vector<ProcessorState> state(static_cast<size_t>(p));
  std::vector<Clock> proc_clock(static_cast<size_t>(p));
  std::vector<Clock> mem_clock(static_cast<size_t>(mc));

  for (index_t t = 0; t < prog.num_steps(); ++t) {
    // ---- Read sub-step -------------------------------------------------
    GridArray<AccessTuple> tuples(place.processors, Layout::kZOrder, p);
    std::vector<char> requested(static_cast<size_t>(p), 0);
    for (index_t i = 0; i < p; ++i) {
      const std::optional<index_t> req =
          prog.read_request(t, i, state[static_cast<size_t>(i)]);
      if (req && (*req < 0 || *req >= mc)) {
        throw std::invalid_argument("PRAM read outside memory");
      }
      requested[static_cast<size_t>(i)] = req.has_value() ? 1 : 0;
      tuples[i] = Cell<AccessTuple>{
          AccessTuple{req ? *req : sentinel, i, 0},
          proc_clock[static_cast<size_t>(i)]};
    }

    // Sort by (cell, processor); this is already a strict total order, so
    // the raw merge machinery applies directly.
    GridArray<AccessTuple> by_cell = mergesort2d(machine, tuples, TupleLess{});
    std::vector<char> leader = detect_leaders(machine, by_cell, sentinel);

    // Leaders fetch their cell with one round trip.
    for (index_t j = 0; j < p; ++j) {
      if (!leader[static_cast<size_t>(j)]) continue;
      const index_t cell = by_cell[j].value.cell;
      const Coord here = by_cell.coord(j);
      const Coord there = mem_coord(place.memory, cell);
      const Clock req = machine.send(here, there, by_cell[j].clock);
      const Clock resp = machine.send(
          there, here, Clock::join(req, mem_clock[static_cast<size_t>(cell)]));
      by_cell[j].value.value = memory[static_cast<size_t>(cell)];
      by_cell[j].clock = resp;
    }

    // Segmented broadcast of the fetched values along the cell segments.
    GridArray<AccessTuple> by_cell_z = route_permutation(
        machine, by_cell, place.processors, Layout::kZOrder);
    GridArray<Seg<Word>> seg(place.processors, Layout::kZOrder, p);
    for (index_t j = 0; j < p; ++j) {
      seg[j] = Cell<Seg<Word>>{
          Seg<Word>{by_cell_z[j].value.value,
                    leader[static_cast<size_t>(j)] != 0 ||
                        by_cell_z[j].value.cell == sentinel},
          by_cell_z[j].clock};
      machine.op();
    }
    GridArray<Seg<Word>> fanned = segmented_scan(machine, seg, First{});
    for (index_t j = 0; j < p; ++j) {
      by_cell_z[j].value.value = fanned[j].value.value;
      by_cell_z[j].clock = Clock::join(by_cell_z[j].clock, fanned[j].clock);
    }

    // Sort back by processor index and land each tuple on its processor's
    // Z-order location.
    GridArray<AccessTuple> by_proc =
        mergesort2d(machine, by_cell_z, ProcLess{});
    GridArray<AccessTuple> delivered = route_permutation(
        machine, by_proc, place.processors, Layout::kZOrder);

    // ---- Execute + write sub-step --------------------------------------
    GridArray<AccessTuple> wtuples(place.processors, Layout::kZOrder, p);
    for (index_t i = 0; i < p; ++i) {
      assert(delivered[i].value.proc == i);
      proc_clock[static_cast<size_t>(i)] = Clock::join(
          proc_clock[static_cast<size_t>(i)], delivered[i].clock);
      std::optional<Word> read;
      if (requested[static_cast<size_t>(i)]) {
        read = delivered[i].value.value;
      }
      std::optional<WriteOp> w =
          prog.execute(t, i, state[static_cast<size_t>(i)], read);
      machine.op();
      if (w && (w->cell < 0 || w->cell >= mc)) {
        throw std::invalid_argument("PRAM write outside memory");
      }
      wtuples[i] = Cell<AccessTuple>{
          AccessTuple{w ? w->cell : sentinel, i, w ? w->value : 0},
          proc_clock[static_cast<size_t>(i)]};
    }

    GridArray<AccessTuple> wsorted =
        mergesort2d(machine, wtuples, TupleLess{});
    std::vector<char> wleader = detect_leaders(machine, wsorted, sentinel);
    for (index_t j = 0; j < p; ++j) {
      if (!wleader[static_cast<size_t>(j)]) continue;
      const index_t cell = wsorted[j].value.cell;
      mem_clock[static_cast<size_t>(cell)] =
          machine.send(wsorted.coord(j), mem_coord(place.memory, cell),
                       wsorted[j].clock);
      memory[static_cast<size_t>(cell)] = wsorted[j].value.value;
    }
  }
  return memory;
}

}  // namespace scm::pram
