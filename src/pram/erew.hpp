// EREW PRAM simulation on the Spatial Computer Model (Section VII-A,
// Lemma VII.1).
//
// The PRAM processors occupy a sqrt(p) x sqrt(p) subgrid (Z-order indexed)
// and the shared memory a sqrt(m) x sqrt(m) subgrid next to it (row-major
// indexed). Each simulated step exchanges direct request/response messages
// between processors and the cells they access:
//   O(p (sqrt p + sqrt m)) energy, O(1) message depth, and
//   O(sqrt p + sqrt m) distance per step.
//
// Concurrent reads or writes raise ConcurrencyViolation — use
// simulate_crcw for programs that need them.
#pragma once

#include "pram/program.hpp"
#include "spatial/machine.hpp"

#include <vector>

namespace scm::pram {

/// Where a simulation places the simulated machine on the grid.
struct PramPlacement {
  Rect processors;  ///< Z-order indexed square for the p processors
  Rect memory;      ///< row-major indexed square for the m cells
};

/// The canonical placement at `origin`: processors first, memory adjacent
/// to their right.
[[nodiscard]] PramPlacement default_placement(index_t p, index_t m,
                                              Coord origin = {0, 0});

/// Runs `prog` from the given initial memory image; returns the final
/// image. Costs per Lemma VII.1. Throws ConcurrencyViolation on concurrent
/// access and std::invalid_argument on malformed programs.
std::vector<Word> simulate_erew(Machine& machine, const Program& prog,
                                std::vector<Word> memory);

}  // namespace scm::pram
