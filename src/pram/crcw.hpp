// CRCW PRAM simulation on the Spatial Computer Model (Section VII-B,
// Lemma VII.2).
//
// Concurrent reads and writes are resolved with the energy-optimal sorting
// and scanning primitives:
//   * read step — (processor, cell) tuples are sorted by cell; the first
//     tuple of each cell segment fetches the value; a segmented broadcast
//     distributes it along the segment; tuples are sorted back by
//     processor index (interpreted as a Z-order grid location);
//   * write step — (value, processor, cell) tuples are sorted by (cell,
//     processor); the first tuple of each segment writes, so an
//     "arbitrary" concurrent write deterministically resolves to the
//     lowest processor id.
//
// Costs per simulated step: O(p sqrt(p) + p sqrt(m)) energy and
// O(log^3 p) depth — the sorting dominates the depth, which is exactly the
// log^3 factor of Lemma VII.2.
#pragma once

#include "pram/erew.hpp"
#include "pram/program.hpp"
#include "spatial/machine.hpp"

#include <vector>

namespace scm::pram {

/// Runs `prog` under CRCW semantics from the given initial memory image;
/// returns the final image. Costs per Lemma VII.2.
std::vector<Word> simulate_crcw(Machine& machine, const Program& prog,
                                std::vector<Word> memory);

}  // namespace scm::pram
