// The PRAM program abstraction for the simulations of Section VII.
//
// A program runs p processors against m shared memory cells for T
// synchronous steps. In each step every processor may read at most one
// cell, perform O(1) local computation on its constant-size register file,
// and write at most one cell. All reads of a step happen before all writes
// (standard PRAM step semantics).
//
// The same program object runs under both simulators:
//   * simulate_erew (Lemma VII.1) — rejects any concurrent access;
//   * simulate_crcw (Lemma VII.2) — resolves concurrency by sorting;
//     concurrent writes are "arbitrary", deterministically resolved to the
//     lowest processor id.
#pragma once

#include "spatial/geometry.hpp"

#include <array>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace scm::pram {

/// Machine word of the simulated PRAM (doubles subsume the integer index
/// arithmetic the sample programs need).
using Word = double;

/// Constant-size per-processor register file (the PRAM's local state).
struct ProcessorState {
  std::array<Word, 8> reg{};
};

/// A pending write of one step.
struct WriteOp {
  index_t cell{0};
  Word value{0};
};

/// A synchronous PRAM program. Implementations must be deterministic
/// functions of (step, processor, state, read value).
class Program {
 public:
  virtual ~Program() = default;

  /// Number of PRAM processors p.
  [[nodiscard]] virtual index_t num_processors() const = 0;

  /// Number of shared memory cells m (the initial memory image passed to a
  /// simulator must have exactly this size).
  [[nodiscard]] virtual index_t num_cells() const = 0;

  /// Number of synchronous steps T.
  [[nodiscard]] virtual index_t num_steps() const = 0;

  /// Read phase of step `t`: the cell processor `p` reads, or nullopt.
  [[nodiscard]] virtual std::optional<index_t> read_request(
      index_t t, index_t p, const ProcessorState& state) const = 0;

  /// Execute phase of step `t`: receives the read value (if any), updates
  /// the register file, and optionally emits one write.
  virtual std::optional<WriteOp> execute(index_t t, index_t p,
                                         ProcessorState& state,
                                         std::optional<Word> read) const = 0;
};

/// Thrown by simulate_erew when a program performs a concurrent read or
/// write (which the EREW model forbids).
class ConcurrencyViolation : public std::runtime_error {
 public:
  explicit ConcurrencyViolation(const std::string& what)
      : std::runtime_error(what) {}
};

/// Validates static program parameters (positive processor/step counts,
/// memory image size); throws std::invalid_argument on mismatch.
void validate(const Program& prog, const std::vector<Word>& memory);

}  // namespace scm::pram
