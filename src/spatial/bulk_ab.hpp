// A/B metrics-equivalence harness for the bulk-charging engine.
//
// Machine::send_bulk / birth_bulk / death_bulk promise to be
// *metrics-identical* to their scalar per-event decompositions: same
// Metrics totals, same per-phase records, same conformance verdict. This
// harness makes that contract testable: run_ab executes an algorithm twice
// on fresh Machines — once with bulk charging disabled (every *_bulk call
// decomposes into scalar events; the reference) and once with the bulk
// fast path enabled — each under its own ConformanceChecker plus a
// CongestionMap (so the batched on_send_bulk link decomposition is proven
// byte-identical to the scalar replay, link by link), and compares the two
// runs field by field. tests/test_bulk_equivalence.cpp drives every
// Table-1 algorithm through it.
#pragma once

#include "spatial/congestion.hpp"
#include "spatial/machine.hpp"
#include "spatial/metrics.hpp"
#include "spatial/parallel.hpp"

#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace scm {

/// RAII save/restore of the process-wide bulk-charging switch.
class ScopedBulkCharging {
 public:
  explicit ScopedBulkCharging(bool enabled)
      : saved_(Machine::bulk_charging()) {
    Machine::set_bulk_charging(enabled);
  }
  ~ScopedBulkCharging() { Machine::set_bulk_charging(saved_); }
  ScopedBulkCharging(const ScopedBulkCharging&) = delete;
  ScopedBulkCharging& operator=(const ScopedBulkCharging&) = delete;

 private:
  bool saved_;
};

/// One execution of the algorithm under one charging mode.
struct AbRun {
  Metrics totals{};
  std::map<std::string, Metrics> phases;
  /// Canonical per-link occupancy (CongestionMap::sorted_links) — the
  /// scalar run records the per-message replay, the bulk run the batched
  /// on_send_bulk decomposition.
  std::vector<std::pair<Link, index_t>> links;
  index_t congested_clock{0};
  bool conformance_ok{false};
  std::string conformance_report;  ///< empty when clean
};

/// The two runs and their comparison.
struct AbResult {
  AbRun scalar;
  AbRun bulk;
  bool totals_equal{false};
  bool phases_equal{false};
  bool links_equal{false};  ///< per-link occupancy + congested clock

  /// True when totals, per-phase records, and per-link occupancy match
  /// exactly and both runs were conformance-clean.
  [[nodiscard]] bool ok() const {
    return totals_equal && phases_equal && links_equal &&
           scalar.conformance_ok && bulk.conformance_ok;
  }

  /// Multi-line description of every mismatch; empty when ok().
  [[nodiscard]] std::string diff() const;
};

/// Runs `algorithm` twice on fresh Machines — scalar reference first, then
/// the bulk fast path — each traced by a non-strict ConformanceChecker
/// (verified at the end), and compares Metrics totals and per-phase maps
/// for exact equality. The process-wide bulk-charging switch is restored on
/// return. The callback must be deterministic and self-contained: it
/// receives the Machine to run on and must not depend on charging mode
/// (except, of course, through the *_bulk calls under test).
[[nodiscard]] AbResult run_ab(const std::function<void(Machine&)>& algorithm);

/// The default engine shape of the three-way harness: 4 workers, 64x64
/// tiles, min_parallel_batch 1 so even the smallest test batches exercise
/// the sharded path instead of silently staying serial.
[[nodiscard]] inline parallel::Config abc_default_config() {
  parallel::Config cfg;
  cfg.threads = 4;
  cfg.tile_rows = 64;
  cfg.tile_cols = 64;
  cfg.min_parallel_batch = 1;
  return cfg;
}

/// Three runs — scalar reference, serial bulk, sharded parallel — and
/// their comparison. `parallel` executes under a ScopedParallelEngine and
/// records its links through a ShardedCongestionMap with the engine's
/// tiling, so a mismatch localizes to either the engine's merged charging
/// or the sharded link decomposition.
struct AbcResult {
  AbRun scalar;
  AbRun bulk;
  AbRun parallel;
  bool totals_equal{false};  ///< all three byte-identical
  bool phases_equal{false};
  bool links_equal{false};  ///< per-link occupancy + congested clock

  /// True when every exported number matches across all three runs and
  /// every run was conformance-clean.
  [[nodiscard]] bool ok() const {
    return totals_equal && phases_equal && links_equal &&
           scalar.conformance_ok && bulk.conformance_ok &&
           parallel.conformance_ok;
  }

  /// Multi-line description of every mismatch; empty when ok().
  [[nodiscard]] std::string diff() const;
};

/// Runs `algorithm` three times on fresh Machines — scalar reference,
/// serial bulk, and bulk under the sharded parallel engine configured by
/// `cfg` — and compares Metrics totals, per-phase maps, link occupancies,
/// and congested clocks for exact (bit-identical) equality. Process-wide
/// switches (bulk charging, engine configuration) are restored on return.
/// tests/test_bulk_equivalence.cpp drives every Table-1 algorithm through
/// this.
[[nodiscard]] AbcResult run_abc(
    const std::function<void(Machine&)>& algorithm,
    const parallel::Config& cfg = abc_default_config());

}  // namespace scm
