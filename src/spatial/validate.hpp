// Model-conformance checking for the Spatial Computer Model simulator.
//
// The paper's cost lemmas hold only when algorithms respect the model's
// preconditions (Section III): O(1) live words per processor, honest
// (depth, distance) clocks that advance monotonically across every hop,
// and energy equal to the sum of all messages' Manhattan distances. The
// Machine *charges* costs but historically trusted every algorithm to
// respect those preconditions; the ConformanceChecker enforces them.
//
// The checker is a TraceSink. Attach it per-machine (Machine::set_trace)
// or process-wide (Machine::set_global_trace — how the test harness runs
// every tier-1 test under enforcement) and it verifies, on every event:
//
//   * residency  — net arrivals per processor within one *epoch* (a window
//     between phase boundaries / machine resets) stay under a configurable
//     O(1) cap. Algorithms wrap stages in PhaseScopes, so a conforming
//     execution never parks more than O(1) words on a cell per stage; a
//     cell absorbing Θ(√n) words in one stage is flagged. Machine::birth /
//     Machine::death refine the accounting for explicit input placement
//     and value retirement.
//   * clocks     — every arrival clock equals payload.after_hop(distance),
//     components never go negative, and the reported distance matches the
//     endpoints' Manhattan distance (and is >= 1: zero-length sends are
//     free and must not be reported).
//   * liveness   — no sends from a processor whose value was declared dead
//     (Machine::death) in the current epoch; unknown processors are
//     assumed to hold input values, matching the model where inputs
//     pre-reside on the grid.
//   * geometry   — optionally, all endpoints stay inside a declared arena
//     rectangle.
//   * accounting — verify(machine) re-derives energy, message count, and
//     the max arrival clock from the raw event stream and cross-checks
//     them against the machine's Metrics.
//   * phases     — finish() reports phase scopes entered but never exited.
//
// Violations carry the innermost phase name, the offending coordinate, and
// a ring buffer of the most recent messages (the "message backtrace").
// Under strict mode — compile with SCM_STRICT_MODEL or set the
// SCM_STRICT_MODEL environment variable — the first violation prints its
// report to stderr and aborts, pinpointing the offending send; otherwise
// violations accumulate into a queryable ConformanceReport.
#pragma once

#include "spatial/clock.hpp"
#include "spatial/geometry.hpp"
#include "spatial/trace.hpp"

#include <cstddef>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace scm {

class Machine;

/// What a ConformanceChecker can catch.
enum class ViolationKind {
  kMemoryCapExceeded,     // a cell holds more than the O(1) live-word cap
  kNonMonotoneClock,      // arrival clock != payload.after_hop(distance)
  kCorruptDistance,       // distance < 1 or != manhattan(from, to)
  kSendFromDeadCell,      // send from a cell whose value was retired
  kIllegalCoordinate,     // endpoint outside the declared arena
  kUnbalancedPhase,       // phase entered but never exited
  kEnergyMismatch,        // re-derived energy != Metrics::energy
  kMessageCountMismatch,  // re-derived count != Metrics::messages
  kClockMismatch,         // Metrics::max_clock below an observed arrival
};

/// Human-readable name of a violation kind ("memory-cap-exceeded", ...).
[[nodiscard]] const char* to_string(ViolationKind kind);

/// One detected violation with its forensic context.
struct Violation {
  ViolationKind kind{};
  std::string phase;    // innermost phase at detection; "<top>" when none
  Coord at{};           // offending processor (or {0,0} for global checks)
  std::string detail;   // specifics: counts, clocks, names
  std::vector<MessageEvent> backtrace;  // recent messages, oldest first
};

/// Queryable result of a checked execution.
struct ConformanceReport {
  std::vector<Violation> violations;
  index_t energy{0};         // re-derived from the message stream
  index_t messages{0};       // re-derived from the message stream
  Clock max_arrival{};       // join over all arrival clocks
  index_t peak_residency{0}; // largest per-cell epoch residency observed

  [[nodiscard]] bool ok() const { return violations.empty(); }

  /// Number of violations of the given kind.
  [[nodiscard]] index_t count(ViolationKind kind) const;

  /// Multi-line human-readable report (one block per violation).
  [[nodiscard]] std::string str() const;
};

/// TraceSink that enforces the model's preconditions on every event.
class ConformanceChecker final : public TraceSink {
 public:
  struct Config {
    /// Largest number of live words one processor may accumulate within a
    /// single epoch. The paper's algorithms keep O(1) words per cell; the
    /// library's largest declared constant is the 2-D merge's
    /// gather-sort-scatter base case (kMergeBaseSize = 8 words on the
    /// corner processor), so the default leaves generous headroom over
    /// that (and over moderate MergeConfig::base_size ablations) while
    /// still catching a cell that hoards Θ(√n) words.
    index_t live_word_cap{48};

    /// When set, every message endpoint must lie inside this rectangle.
    std::optional<Rect> arena;

    /// Abort on the first violation instead of accumulating. Defaults to
    /// strict_model_default() (the SCM_STRICT_MODEL build option or
    /// environment variable).
    bool strict{strict_model_default()};

    /// Messages retained for each violation's backtrace.
    std::size_t backtrace_capacity{16};
  };

  ConformanceChecker() : ConformanceChecker(Config{}) {}
  explicit ConformanceChecker(Config config);

  // TraceSink events.
  void on_message(Coord from, Coord to, index_t distance) override;
  void on_send(const MessageEvent& e) override;
  void on_birth(Coord at, Clock c) override;
  void on_death(Coord at) override;
  void on_phase_enter(PhaseId id) override;
  void on_phase_exit(PhaseId id) override;
  void on_reset() override;

  /// End-of-run structural checks (currently: phase balance). Idempotent
  /// per imbalance; call once when the traced execution is over.
  void finish();

  /// finish(), then cross-check the re-derived energy / message count /
  /// max arrival clock against the machine's accumulated Metrics. Only
  /// meaningful when the checker observed the machine's whole life (attach
  /// before the first send; don't reset the machine mid-trace).
  void verify(const Machine& m);

  [[nodiscard]] const ConformanceReport& report() const { return report_; }

  /// True when SCM_STRICT_MODEL was defined at build time or is set (to
  /// anything but "" or "0") in the environment — one env var reproduces
  /// the CI strict-model run locally without a rebuild.
  [[nodiscard]] static bool strict_model_default();

 private:
  struct CoordHash {
    std::size_t operator()(const Coord& c) const {
      return std::hash<std::uint64_t>{}(
          (static_cast<std::uint64_t>(c.row) << 32) ^
          static_cast<std::uint64_t>(c.col & 0xffffffff));
    }
  };

  void record(ViolationKind kind, Coord at, std::string detail);
  void new_epoch();
  [[nodiscard]] std::string current_phase() const;

  Config config_;
  ConformanceReport report_;
  // Interned ids, mirroring the Machine's stack: phase transitions cost
  // two integer ops here, and names are looked up only when a violation
  // is actually recorded.
  std::vector<PhaseId> phase_stack_;
  std::unordered_map<Coord, index_t, CoordHash> residency_;
  std::unordered_set<Coord, CoordHash> dead_;
  std::vector<MessageEvent> ring_;
  std::size_t ring_next_{0};
};

/// RAII detachment of the process-global trace sink. Tests that
/// *deliberately* violate the model (the adversarial fixtures) run inside
/// one of these so the enforcing harness listener doesn't fail the test.
class ScopedGlobalTraceSuspension {
 public:
  ScopedGlobalTraceSuspension();
  ~ScopedGlobalTraceSuspension();
  ScopedGlobalTraceSuspension(const ScopedGlobalTraceSuspension&) = delete;
  ScopedGlobalTraceSuspension& operator=(const ScopedGlobalTraceSuspension&) =
      delete;

 private:
  TraceSink* saved_;
};

}  // namespace scm
