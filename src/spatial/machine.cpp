#include "spatial/machine.hpp"

#include "spatial/trace.hpp"

#include <cassert>
#include <utility>

namespace scm {

TraceSink* Machine::global_trace_ = nullptr;

void Machine::set_global_trace(TraceSink* sink) { global_trace_ = sink; }

TraceSink* Machine::global_trace() { return global_trace_; }

Machine::Machine() {
  emit([](TraceSink& s) { s.on_reset(); });
}

Clock Machine::send(Coord from, Coord to, Clock payload) {
  const index_t dist = manhattan(from, to);
  if (dist == 0) return payload;
  const Clock arrival = payload.after_hop(dist);
  charge(dist, 1);
  observe(arrival);
  emit([&](TraceSink& s) {
    s.on_message(from, to, dist);
    s.on_send(MessageEvent{from, to, dist, payload, arrival});
  });
  return arrival;
}

namespace {

// Recursive algorithms stack the same phase name repeatedly; costs must be
// attributed to each distinct name once.
bool first_occurrence(const std::vector<std::string>& stack, size_t i) {
  for (size_t j = 0; j < i; ++j) {
    if (stack[j] == stack[i]) return false;
  }
  return true;
}

}  // namespace

void Machine::op(index_t n) {
  assert(n >= 0);
  totals_.local_ops += n;
  for (size_t i = 0; i < phase_stack_.size(); ++i) {
    if (first_occurrence(phase_stack_, i)) {
      phase_totals_[phase_stack_[i]].local_ops += n;
    }
  }
}

void Machine::observe(Clock c) {
  totals_.max_clock = Clock::join(totals_.max_clock, c);
  for (size_t i = 0; i < phase_stack_.size(); ++i) {
    if (first_occurrence(phase_stack_, i)) {
      Metrics& pm = phase_totals_[phase_stack_[i]];
      pm.max_clock = Clock::join(pm.max_clock, c);
    }
  }
}

void Machine::birth(Coord at, Clock c) {
  observe(c);
  emit([&](TraceSink& s) { s.on_birth(at, c); });
}

void Machine::death(Coord at) {
  emit([&](TraceSink& s) { s.on_death(at); });
}

void Machine::reset() {
  totals_ = Metrics{};
  phase_totals_.clear();
  // Phase stack intentionally survives a reset so a PhaseScope spanning the
  // reset keeps attributing costs; resetting mid-scope is unusual but legal.
  emit([](TraceSink& s) { s.on_reset(); });
}

const Metrics& Machine::phase(const std::string& name) const {
  static const Metrics kEmpty{};
  const auto it = phase_totals_.find(name);
  return it == phase_totals_.end() ? kEmpty : it->second;
}

void Machine::charge(index_t energy, index_t messages) {
  assert(energy >= 0 && messages >= 0);
  totals_.energy += energy;
  totals_.messages += messages;
  for (size_t i = 0; i < phase_stack_.size(); ++i) {
    if (first_occurrence(phase_stack_, i)) {
      Metrics& pm = phase_totals_[phase_stack_[i]];
      pm.energy += energy;
      pm.messages += messages;
    }
  }
}

void Machine::begin_phase(std::string name) {
  phase_stack_.push_back(std::move(name));
  emit([&](TraceSink& s) { s.on_phase_enter(phase_stack_.back()); });
}

void Machine::end_phase() {
  if (phase_stack_.empty()) return;
  const std::string name = std::move(phase_stack_.back());
  phase_stack_.pop_back();
  emit([&](TraceSink& s) { s.on_phase_exit(name); });
}

Machine::PhaseScope::PhaseScope(Machine& m, std::string name) : machine_(m) {
  machine_.begin_phase(std::move(name));
}

Machine::PhaseScope::~PhaseScope() { machine_.end_phase(); }

}  // namespace scm
