#include "spatial/machine.hpp"

#include "spatial/parallel.hpp"
#include "spatial/trace.hpp"

#include <cassert>

namespace scm {

TraceSink* Machine::global_trace_ = nullptr;

namespace {
// Process-wide A/B switch for the equivalence harness; `true` is the
// production fast path.
bool g_bulk_charging = true;
}  // namespace

void Machine::set_bulk_charging(bool enabled) { g_bulk_charging = enabled; }

bool Machine::bulk_charging() { return g_bulk_charging; }

void Machine::set_global_trace(TraceSink* sink) { global_trace_ = sink; }

TraceSink* Machine::global_trace() { return global_trace_; }

Machine::Machine() {
  emit([](TraceSink& s) { s.on_reset(); });
}

Clock Machine::send(Coord from, Coord to, Clock payload) {
  const index_t dist = manhattan(from, to);
  if (dist == 0) return payload;
  const Clock arrival = payload.after_hop(dist);
  charge(dist, 1);
  observe(arrival);
  emit([&](TraceSink& s) {
    s.on_message(from, to, dist);
    s.on_send(MessageEvent{from, to, dist, payload, arrival});
  });
  return arrival;
}

void Machine::send_bulk(std::span<MessageEvent> batch) {
  if (batch.empty()) return;
  if (!g_bulk_charging) {
    // Scalar reference path: decompose in batch order. The arrival clocks
    // (and filled distances) are the same values the fast path computes.
    for (MessageEvent& e : batch) {
      e.distance = manhattan(e.from, e.to);
      e.arrival = send(e.from, e.to, e.payload);
    }
    return;
  }
  // Sharded fast path: batches at least min_parallel_batch long are
  // charged tile-parallel (spatial/parallel.hpp). The engine fills
  // distance/arrival in place, merges per-worker aggregates in fixed
  // worker order, and we flush through the exact code path the serial
  // loop uses and emit the same single on_send_bulk — bit-identical by
  // construction. The engine *declines* (returns false) when its inline
  // guard finds two entries addressing one destination — an unproven
  // batch — and the serial loop below charges it instead, leaving the
  // IndependenceChecker to report the conflict.
  if (parallel::Engine* const eng = parallel::engine();
      eng != nullptr &&
      static_cast<index_t>(batch.size()) >= eng->config().min_parallel_batch) {
    parallel::BulkAggregate agg;
    if (eng->charge_send_bulk(batch, agg)) {
      if (agg.messages == 0) return;
      apply_send_aggregate(agg.energy, agg.messages, agg.max_clock);
      emit([&](TraceSink& s) { s.on_send_bulk(batch); });
      return;
    }
  }
  // Tight accumulation loop: no phase-set walk, no virtual dispatch.
  index_t energy = 0;
  index_t messages = 0;
  Clock max{};
  for (MessageEvent& e : batch) {
    const index_t dist = manhattan(e.from, e.to);
    e.distance = dist;
    if (dist == 0) {
      // Zero-length sends are free and unreported, as in the scalar path.
      e.arrival = e.payload;
      continue;
    }
    e.arrival = e.payload.after_hop(dist);
    energy += dist;
    ++messages;
    max = Clock::join(max, e.arrival);
  }
  if (messages == 0) return;
  apply_send_aggregate(energy, messages, max);
  emit([&](TraceSink& s) { s.on_send_bulk(batch); });
}

void Machine::apply_send_aggregate(index_t energy, index_t messages,
                                   Clock max) {
  // One flush into the totals and each active phase. Identical to the
  // scalar path's per-message charge/observe because sums commute and
  // Clock::join is an associative/commutative max; the whole batch is
  // attributed to the phase set active at this call (phases cannot change
  // mid-batch by contract).
  totals_.energy += energy;
  totals_.messages += messages;
  totals_.max_clock = Clock::join(totals_.max_clock, max);
  for (const PhaseId id : active_) {
    Metrics& pm = slot(id);
    pm.energy += energy;
    pm.messages += messages;
    pm.max_clock = Clock::join(pm.max_clock, max);
  }
}

void Machine::op(index_t n) {
  assert(n >= 0);
  totals_.local_ops += n;
  for (const PhaseId id : active_) slot(id).local_ops += n;
  emit([&](TraceSink& s) { s.on_op(n); });
}

void Machine::op_bulk(index_t n) {
  // local_ops simply sums, so one op(n) is already metrics-identical to
  // any per-iteration decomposition; the bulk name documents intent at
  // batched call sites. Sinks see a single on_op(n) in both modes (the
  // scalar path never reported op granularity either).
  op(n);
}

void Machine::observe(Clock c) {
  totals_.max_clock = Clock::join(totals_.max_clock, c);
  for (const PhaseId id : active_) {
    Metrics& pm = slot(id);
    pm.max_clock = Clock::join(pm.max_clock, c);
  }
}

void Machine::birth(Coord at, Clock c) {
  observe(c);
  emit([&](TraceSink& s) { s.on_birth(at, c); });
}

void Machine::death(Coord at) {
  emit([&](TraceSink& s) { s.on_death(at); });
}

void Machine::birth_bulk(std::span<const BirthEvent> batch) {
  if (batch.empty()) return;
  if (!g_bulk_charging) {
    for (const BirthEvent& b : batch) birth(b.at, b.clock);
    return;
  }
  Clock max{};
  // Births have no per-entry charge, only the clock-join reduction, so
  // the parallel engine's contribution is a block-partitioned max.
  if (parallel::Engine* const eng = parallel::engine();
      eng != nullptr &&
      static_cast<index_t>(batch.size()) >= eng->config().min_parallel_batch) {
    max = eng->join_birth_clocks(batch);
  } else {
    for (const BirthEvent& b : batch) max = Clock::join(max, b.clock);
  }
  observe(max);
  emit([&](TraceSink& s) { s.on_birth_bulk(batch); });
}

void Machine::death_bulk(std::span<const Coord> batch) {
  if (batch.empty()) return;
  if (!g_bulk_charging) {
    for (const Coord c : batch) death(c);
    return;
  }
  emit([&](TraceSink& s) { s.on_death_bulk(batch); });
}

void Machine::reset() {
  totals_ = Metrics{};
  ++phases_version_;  // per-phase records mutate: invalidate phases() cache
  for (const PhaseId id : touched_) {
    phase_totals_[id] = Metrics{};
    touched_flag_[id] = 0;
  }
  touched_.clear();
  // Phase stack (and with it the active set) intentionally survives a
  // reset so a PhaseScope spanning the reset keeps attributing costs;
  // resetting mid-scope is unusual but legal.
  emit([](TraceSink& s) { s.on_reset(); });
}

const std::map<std::string, Metrics>& Machine::phases() const {
  if (phases_cache_version_ == phases_version_) return phases_cache_;
  const PhaseRegistry& registry = PhaseRegistry::instance();
  phases_cache_.clear();
  for (const PhaseId id : touched_) {
    phases_cache_.emplace(registry.name(id), phase_totals_[id]);
  }
  phases_cache_version_ = phases_version_;
  return phases_cache_;
}

const Metrics& Machine::phase(std::string_view name) const {
  static const Metrics kEmpty{};
  const PhaseId id = PhaseRegistry::instance().find(name);
  if (id == kNoPhase || id >= touched_flag_.size() ||
      touched_flag_[id] == 0) {
    return kEmpty;
  }
  return phase_totals_[id];
}

const Metrics& Machine::phase(PhaseId id) const {
  static const Metrics kEmpty{};
  if (id == kNoPhase || id >= touched_flag_.size() ||
      touched_flag_[id] == 0) {
    return kEmpty;
  }
  return phase_totals_[id];
}

void Machine::charge(index_t energy, index_t messages) {
  assert(energy >= 0 && messages >= 0);
  totals_.energy += energy;
  totals_.messages += messages;
  for (const PhaseId id : active_) {
    Metrics& pm = slot(id);
    pm.energy += energy;
    pm.messages += messages;
  }
}

void Machine::begin_phase(std::string_view name) {
  begin_phase(PhaseRegistry::instance().intern(name));
}

void Machine::begin_phase(PhaseId id) {
  assert(id < PhaseRegistry::instance().size());
  if (id >= stack_count_.size()) {
    const std::size_t size = PhaseRegistry::instance().size();
    stack_count_.resize(size, 0);
    touched_flag_.resize(size, 0);
    phase_totals_.resize(size);
  }
  phase_stack_.push_back(id);
  // First occurrence on the stack: the phase joins the attribution set.
  // Deeper re-entries of the same name only bump the count, which is the
  // whole recursive-name dedup — moved from per-event to per-transition.
  if (stack_count_[id]++ == 0) active_.push_back(id);
  emit([&](TraceSink& s) { s.on_phase_enter(id); });
}

void Machine::end_phase() {
  if (phase_stack_.empty()) return;
  const PhaseId id = phase_stack_.back();
  phase_stack_.pop_back();
  if (--stack_count_[id] == 0) {
    // The popped occurrence was the id's only one, i.e. its first — and
    // first occurrences enter `active_` in stack order, so it is the most
    // recently activated id.
    assert(!active_.empty() && active_.back() == id);
    active_.pop_back();
  }
  emit([&](TraceSink& s) { s.on_phase_exit(id); });
}

Machine::PhaseScope::PhaseScope(Machine& m, std::string_view name)
    : machine_(m) {
  machine_.begin_phase(name);
}

Machine::PhaseScope::PhaseScope(Machine& m, PhaseId id) : machine_(m) {
  machine_.begin_phase(id);
}

Machine::PhaseScope::~PhaseScope() { machine_.end_phase(); }

}  // namespace scm
