#include "spatial/machine.hpp"

#include "spatial/trace.hpp"

#include <cassert>
#include <utility>

namespace scm {

Clock Machine::send(Coord from, Coord to, Clock payload) {
  const index_t dist = manhattan(from, to);
  if (dist == 0) return payload;
  const Clock arrival = payload.after_hop(dist);
  charge(dist, 1);
  observe(arrival);
  if (trace_ != nullptr) trace_->on_message(from, to, dist);
  return arrival;
}

namespace {

// Recursive algorithms stack the same phase name repeatedly; costs must be
// attributed to each distinct name once.
bool first_occurrence(const std::vector<std::string>& stack, size_t i) {
  for (size_t j = 0; j < i; ++j) {
    if (stack[j] == stack[i]) return false;
  }
  return true;
}

}  // namespace

void Machine::op(index_t n) {
  assert(n >= 0);
  totals_.local_ops += n;
  for (size_t i = 0; i < phase_stack_.size(); ++i) {
    if (first_occurrence(phase_stack_, i)) {
      phase_totals_[phase_stack_[i]].local_ops += n;
    }
  }
}

void Machine::observe(Clock c) {
  totals_.max_clock = Clock::join(totals_.max_clock, c);
  for (size_t i = 0; i < phase_stack_.size(); ++i) {
    if (first_occurrence(phase_stack_, i)) {
      Metrics& pm = phase_totals_[phase_stack_[i]];
      pm.max_clock = Clock::join(pm.max_clock, c);
    }
  }
}

void Machine::reset() {
  totals_ = Metrics{};
  phase_totals_.clear();
  // Phase stack intentionally survives a reset so a PhaseScope spanning the
  // reset keeps attributing costs; resetting mid-scope is unusual but legal.
}

Metrics Machine::phase(const std::string& name) const {
  const auto it = phase_totals_.find(name);
  return it == phase_totals_.end() ? Metrics{} : it->second;
}

void Machine::charge(index_t energy, index_t messages) {
  assert(energy >= 0 && messages >= 0);
  totals_.energy += energy;
  totals_.messages += messages;
  for (size_t i = 0; i < phase_stack_.size(); ++i) {
    if (first_occurrence(phase_stack_, i)) {
      Metrics& pm = phase_totals_[phase_stack_[i]];
      pm.energy += energy;
      pm.messages += messages;
    }
  }
}

Machine::PhaseScope::PhaseScope(Machine& m, std::string name) : machine_(m) {
  machine_.phase_stack_.push_back(std::move(name));
}

Machine::PhaseScope::~PhaseScope() { machine_.phase_stack_.pop_back(); }

}  // namespace scm
