// Critical-path clocks for the Spatial Computer Model cost semantics.
//
// Every value held by a processor carries a Clock recording the longest
// chain of dependent messages that produced it:
//   * depth    — the number of messages along that chain (paper: "depth");
//   * distance — the total Manhattan distance along that chain (paper:
//                "distance", the wire latency of the chain).
//
// Receiving a message of Manhattan length d that carries a value with clock
// (depth, distance) yields a value with clock (depth + 1, distance + d).
// Combining several values locally (free in the model) joins their clocks
// component-wise with max, since the result depends on all of them.
#pragma once

#include "spatial/geometry.hpp"

#include <algorithm>
#include <initializer_list>

namespace scm {

/// (depth, distance) critical-path clock attached to every value.
struct Clock {
  index_t depth{0};
  index_t distance{0};

  friend bool operator==(const Clock&, const Clock&) = default;

  /// Component-wise max: the clock of a value computed from both inputs.
  [[nodiscard]] static Clock join(Clock a, Clock b) {
    return Clock{std::max(a.depth, b.depth), std::max(a.distance, b.distance)};
  }

  /// Join of an arbitrary number of input clocks.
  [[nodiscard]] static Clock join(std::initializer_list<Clock> clocks) {
    Clock out{};
    for (const Clock& c : clocks) out = join(out, c);
    return out;
  }

  /// Clock after travelling one message of Manhattan length `dist`.
  [[nodiscard]] Clock after_hop(index_t dist) const {
    return Clock{depth + 1, distance + dist};
  }
};

}  // namespace scm
