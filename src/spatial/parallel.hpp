// Sharded multi-threaded bulk execution for the Spatial Computer Model.
//
// The scalar Machine charges a bulk round with one tight loop; this module
// parallelizes that loop across worker threads without changing a single
// exported number. The license is the batch-independence discipline
// (src/spatial/independence.*): every bulk round is proven race-free
// (distinct sources, distinct destinations), so a batch's entries may be
// charged in any order and merged deterministically. Concretely:
//
//   * The grid is sharded into rectangular power-of-two tiles. A work
//     partitioner keys every message on its *destination* tile and a
//     fixed tile->worker hash, so each destination cell is charged by
//     exactly one worker (Engine::charge_send_bulk pass A bins entry
//     indices into per-(producer, owner) SPSC vectors; a barrier
//     publishes them; pass B charges).
//   * Each worker accumulates into a tile-local BulkAggregate (energy,
//     messages, clock join). Sums are associative and commutative and
//     clock joins are component-wise maxima, so folding the per-worker
//     aggregates in fixed worker order 0..T-1 on the calling thread
//     reproduces the scalar loop's totals bit-for-bit. The Machine then
//     applies the merged aggregate through the exact code path the
//     serial bulk loop uses and emits ONE on_send_bulk, so arbitrary
//     TraceSinks observe an identical event stream.
//   * An epoch-stamped per-tile occupancy guard re-checks the
//     independence contract inline (write-write conflicts, i.e. two
//     entries addressing one destination). Any unproven batch makes the
//     engine *decline* (charge_send_bulk returns false) and the Machine
//     degrades safely to the scalar bulk loop. ScopedUnorderedDelivery
//     exempts batches exactly as the IndependenceChecker does.
//
// Dependent scalar paths (sequential_scan's chained sends, ScanExec, any
// per-message Machine::send) never reach the engine: only send_bulk /
// birth_bulk batches of at least Config::min_parallel_batch entries are
// routed here, everything else stays on the single-threaded path.
//
// ShardedCongestionMap / ShardedLoadMap are the mergeable counterparts of
// the serial observability sinks: per-worker shards own disjoint link /
// cell sets (keyed by the tile of the link's from-cell), messages split
// at tile crossings into Segment runs under the same dimension-ordered
// routing CongestionMap uses, cross-tile segments travel per-(producer,
// consumer) SPSC queues drained in fixed producer order, and every export
// is a fold of sums/maxima over disjoint keys — bit-identical to the
// serial sinks (asserted per Table-1 algorithm by bulk_ab's three-way
// harness). Determinism contract: docs/MODEL.md "Sharded execution".
#pragma once

#include "spatial/clock.hpp"
#include "spatial/congestion.hpp"
#include "spatial/geometry.hpp"
#include "spatial/phase.hpp"
#include "spatial/trace.hpp"

#include <barrier>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace scm::parallel {

/// Engine configuration. Tile sides are rounded up to powers of two so
/// tile lookup is a shift/mask (C++20 two's-complement semantics make the
/// arithmetic shift a floor division, correct for negative coordinates).
struct Config {
  int threads{1};           ///< <= 1 means the engine is disabled (scalar)
  index_t tile_rows{64};    ///< tile height, rounded up to a power of two
  index_t tile_cols{64};    ///< tile width, rounded up to a power of two
  index_t min_parallel_batch{8192};  ///< smaller batches stay scalar
  bool guard{true};  ///< inline write-write independence guard on/off

  friend bool operator==(const Config&, const Config&) = default;
};

/// Tile coordinates (tile_of maps cell -> tile by floor division).
struct TileCoord {
  index_t row{0};
  index_t col{0};

  friend bool operator==(const TileCoord&, const TileCoord&) = default;
};

/// The tile partition plus the fixed tile->shard ownership hash. Both the
/// Engine and the sharded sinks carry one; the parallel fast path of a
/// sink requires its Tiling to equal the engine's so "only worker w
/// writes shard w" holds by construction.
class Tiling {
 public:
  Tiling() : Tiling(64, 64, 1) {}
  Tiling(index_t tile_rows, index_t tile_cols, int shards);

  [[nodiscard]] index_t tile_rows() const { return tile_rows_; }
  [[nodiscard]] index_t tile_cols() const { return tile_cols_; }
  [[nodiscard]] int shards() const { return shards_; }

  /// Floor division by the (power-of-two) tile sides; exact for negative
  /// coordinates via arithmetic shift.
  [[nodiscard]] TileCoord tile_of(Coord c) const {
    return TileCoord{c.row >> log2_rows_, c.col >> log2_cols_};
  }

  /// Row index of the first row of the *next* tile band below `row`.
  [[nodiscard]] index_t next_row_band(index_t row) const {
    return ((row >> log2_rows_) + 1) << log2_rows_;
  }
  /// First row of the tile band containing `row`.
  [[nodiscard]] index_t row_band_start(index_t row) const {
    return row & ~(tile_rows_ - 1);
  }
  [[nodiscard]] index_t next_col_band(index_t col) const {
    return ((col >> log2_cols_) + 1) << log2_cols_;
  }
  [[nodiscard]] index_t col_band_start(index_t col) const {
    return col & ~(tile_cols_ - 1);
  }

  /// Deterministic (platform-independent) owner shard of a tile: a
  /// splitmix64-style finalizer over the packed tile coordinate, mod the
  /// shard count. Exports never depend on this map (disjoint-key folds
  /// are exact under any assignment); determinism keeps worker-local
  /// diagnostics reproducible run-to-run.
  [[nodiscard]] int shard_of(TileCoord t) const {
    if (shards_ == 1) return 0;
    std::uint64_t h =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(t.row)) << 32) |
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(t.col));
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ULL;
    h ^= h >> 33;
    return static_cast<int>(h % static_cast<std::uint64_t>(shards_));
  }

  /// Dense index of a cell within its tile (mask, not modulo, so it is
  /// non-negative for negative coordinates).
  [[nodiscard]] index_t cell_index(Coord c) const {
    return (c.row & (tile_rows_ - 1)) * tile_cols_ + (c.col & (tile_cols_ - 1));
  }
  [[nodiscard]] index_t cells_per_tile() const {
    return tile_rows_ * tile_cols_;
  }

  friend bool operator==(const Tiling&, const Tiling&) = default;

 private:
  index_t tile_rows_{64};
  index_t tile_cols_{64};
  int log2_rows_{6};
  int log2_cols_{6};
  int shards_{1};
};

/// Tile-local accumulator of one worker's share of a send batch. The
/// merged fold over workers reproduces the scalar bulk loop exactly:
/// energy/messages are integer sums and max_clock is a component-wise
/// max, all associative and commutative.
struct BulkAggregate {
  index_t energy{0};
  index_t messages{0};
  Clock max_clock{};

  friend bool operator==(const BulkAggregate&, const BulkAggregate&) = default;
};

/// Associative, commutative merge; `merge(a, b) == merge(b, a)` and any
/// parenthesization of a fold agree (tests/test_parallel.cpp).
[[nodiscard]] inline BulkAggregate merge(const BulkAggregate& a,
                                         const BulkAggregate& b) {
  return BulkAggregate{a.energy + b.energy, a.messages + b.messages,
                       Clock::join(a.max_clock, b.max_clock)};
}

/// Running counters of engine activity (diagnostics, not model costs).
struct EngineStats {
  std::uint64_t parallel_batches{0};   ///< send batches charged in parallel
  std::uint64_t parallel_messages{0};  ///< charged entries in those batches
  std::uint64_t downgraded_batches{0};  ///< guard-declined -> scalar fallback
  std::uint64_t birth_batches{0};       ///< birth batches joined in parallel
};

/// Persistent worker pool + the tile partitioner. One engine serves the
/// whole process (see configure()/engine()); the calling thread is worker
/// 0 and `threads - 1` std::threads are spawned lazily at construction.
/// The Machine stays single-writer: exactly one thread drives a Machine,
/// the engine only parallelizes the arithmetic *inside* one bulk call.
class Engine {
 public:
  explicit Engine(const Config& cfg);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] const Tiling& tiling() const { return tiling_; }
  [[nodiscard]] int threads() const { return config_.threads; }

  /// Run `fn(worker)` once per worker id 0..threads-1 (caller is worker
  /// 0) and return when all are done. Workers may call sync() for
  /// multi-pass protocols; every worker must reach the same sync calls.
  void run(const std::function<void(int)>& fn);

  /// Barrier across all workers of the current run().
  void sync() { barrier_.arrive_and_wait(); }

  /// Block partition [begin, end) of `n` items for `worker`.
  [[nodiscard]] std::pair<std::size_t, std::size_t> slice(std::size_t n,
                                                          int worker) const {
    const auto t = static_cast<std::size_t>(config_.threads);
    const auto w = static_cast<std::size_t>(worker);
    return {n * w / t, n * (w + 1) / t};
  }

  /// Charge a send batch in parallel: fills every entry's distance /
  /// arrival in place and returns the merged totals through `out`.
  /// Returns false — charging nothing — when the inline guard finds two
  /// entries addressing one destination (an unproven batch): the caller
  /// falls back to the scalar loop, which charges it semantically
  /// identically and lets the IndependenceChecker report the conflict.
  /// Batches under ScopedUnorderedDelivery are exempt, like the checker.
  [[nodiscard]] bool charge_send_bulk(std::span<MessageEvent> batch,
                                      BulkAggregate& out);

  /// Parallel component-wise-max reduction of a birth batch's clocks.
  [[nodiscard]] Clock join_birth_clocks(std::span<const BirthEvent> batch);

  [[nodiscard]] const EngineStats& stats() const { return stats_; }
  void reset_stats() { stats_ = EngineStats{}; }

 private:
  /// Per-tile destination-occupancy stamps for the inline guard. A cell
  /// stamped with the current epoch was already targeted this batch.
  struct GuardTile {
    std::vector<std::uint64_t> stamp;
  };
  /// Per-worker result lane, cache-line padded against false sharing.
  struct alignas(64) Lane {
    BulkAggregate agg{};
    Clock clock{};
    bool conflict{false};
  };

  void worker_loop(int id);

  Config config_;
  Tiling tiling_;

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(int)>* job_{nullptr};
  std::uint64_t generation_{0};
  int pending_{0};
  bool shutdown_{false};
  std::barrier<> barrier_;

  /// Entry-index bins, one vector per (producer, owner) worker pair:
  /// written only by `producer` in pass A, read only by `owner` in pass
  /// B — single-producer single-consumer with the barrier as the
  /// publication point. Capacity persists across batches.
  std::vector<std::vector<std::uint32_t>> bins_;
  std::vector<Lane> lanes_;
  /// Guard state, one map per worker (only that worker touches it).
  std::vector<std::unordered_map<std::uint64_t, GuardTile>> guard_;
  std::uint64_t epoch_{0};

  EngineStats stats_{};
};

/// Parse SCM_THREADS / SCM_TILE=WxH (cols x rows) / SCM_PARALLEL_MIN_BATCH
/// into a Config; unset variables keep the scalar defaults.
[[nodiscard]] Config config_from_env();

/// Install `cfg` as the process-wide engine configuration, (re)building
/// or tearing down the worker pool as needed. threads <= 1 disables the
/// engine. Explicit configuration wins over the environment.
void configure(const Config& cfg);

/// The active configuration (environment-initialized on first query).
[[nodiscard]] const Config& config();

/// The process-wide engine, or nullptr when running scalar. First query
/// initializes from the environment (SCM_THREADS et al.).
[[nodiscard]] Engine* engine();

/// RAII reconfiguration for tests, benches, and the fuzzer's parallel
/// replay cadence: installs `cfg`, restores the previous configuration
/// on destruction.
class ScopedParallelEngine {
 public:
  explicit ScopedParallelEngine(const Config& cfg);
  ~ScopedParallelEngine();

  ScopedParallelEngine(const ScopedParallelEngine&) = delete;
  ScopedParallelEngine& operator=(const ScopedParallelEngine&) = delete;

 private:
  Config saved_;
};

/// A maximal run of directed unit links (or cells, for ShardedLoadMap)
/// inside one tile band: `count` steps starting at (row, col), advancing
/// along the axis `dir` moves on. Messages split into at most a handful
/// of segments at tile crossings; cross-tile segments are the unit
/// shipped through the sinks' SPSC queues.
struct Segment {
  index_t row{0};
  index_t col{0};
  index_t count{0};
  std::uint8_t dir{0};  ///< 0 up, 1 down, 2 left, 3 right (CongestionMap's)
};

/// Mergeable, shard-per-worker counterpart of CongestionMap. Each shard
/// owns the links whose from-cell lies in its tiles, so every export —
/// occupancy totals, per-phase peaks, the congested clock — is a fold of
/// sums/maxima over disjoint key sets: exact under any worker completion
/// order, and bit-identical to the serial CongestionMap on the same
/// stream (the three-way bulk_ab harness asserts this per algorithm).
/// Report-time extras (heatmaps, counter samples, Chrome export) stay on
/// the serial sink; this one is the execution-scale accumulator.
class ShardedCongestionMap final : public TraceSink {
 public:
  using PhaseCongestion = CongestionMap::PhaseCongestion;

  explicit ShardedCongestionMap(const Config& cfg = config());

  // TraceSink hooks (same stream contract as CongestionMap).
  void on_message(Coord from, Coord to, index_t distance) override;
  void on_send_bulk(std::span<const MessageEvent> batch) override;
  void on_phase_enter(PhaseId id) override;
  void on_phase_exit(PhaseId id) override;
  void on_reset() override;

  // Exports, each bit-identical to the serial CongestionMap's.
  [[nodiscard]] index_t messages() const { return messages_; }
  [[nodiscard]] index_t total_occupancy() const;
  [[nodiscard]] index_t links() const;
  [[nodiscard]] index_t occupancy(Link link) const;
  [[nodiscard]] index_t max_link_load() const;
  [[nodiscard]] std::vector<std::pair<Link, index_t>> sorted_links() const;
  [[nodiscard]] std::vector<index_t> occupancy_multiset() const;
  [[nodiscard]] std::vector<PhaseCongestion> phase_congestion() const;
  [[nodiscard]] index_t phase_peak(PhaseId id) const;
  [[nodiscard]] index_t congested_clock() const;

  [[nodiscard]] const Tiling& tiling() const { return tiling_; }
  /// Segments shipped across tiles through the SPSC queues so far.
  [[nodiscard]] std::uint64_t cross_tile_segments() const {
    return cross_tile_segments_;
  }
  /// Batches applied through the worker pool (vs the serial path).
  [[nodiscard]] std::uint64_t parallel_batches() const {
    return parallel_batches_;
  }

  void clear();

 private:
  struct LinkKey {
    index_t row{0};
    index_t col{0};
    std::uint8_t dir{0};

    friend bool operator==(const LinkKey&, const LinkKey&) = default;
  };
  struct LinkKeyHash {
    std::size_t operator()(const LinkKey& k) const {
      const auto mix = (static_cast<std::uint64_t>(k.row) << 32) ^
                       static_cast<std::uint64_t>(k.col & 0xffffffff);
      return std::hash<std::uint64_t>{}(mix * 4 + k.dir);
    }
  };
  using LinkLoad = std::unordered_map<LinkKey, index_t, LinkKeyHash>;

  struct Bucket {
    LinkLoad load;
    index_t occupancy{0};
    index_t peak{0};
  };
  struct alignas(64) Shard {
    LinkLoad load;
    index_t total{0};
    index_t peak{0};
    std::unordered_map<PhaseId, Bucket> buckets;
  };

  [[nodiscard]] PhaseId bucket() const {
    return stack_.empty() ? kNoPhase : stack_.back();
  }
  void register_bucket(PhaseId id);
  /// Split the dimension-ordered path of one charged message into tile-
  /// band Segments and hand each to `fn(owner_shard, segment)`.
  template <typename Fn>
  void for_each_segment(Coord from, Coord to, Fn&& fn) const;
  void apply_segment(Shard& shard, Bucket& bucket, const Segment& seg);
  void apply_serial(Coord from, Coord to, PhaseId bucket_id);
  void apply_parallel(Engine& eng, std::span<const MessageEvent> batch,
                      PhaseId bucket_id);

  static Link link_of(LinkKey key);

  Tiling tiling_;
  std::vector<Shard> shards_;
  /// Cross-tile segment queues, one per (producer, consumer) pair:
  /// written only by `producer` before the barrier, drained only by
  /// `consumer` after it, in fixed producer order.
  std::vector<std::vector<Segment>> queues_;
  std::vector<std::uint64_t> cross_;  ///< per-producer cross-tile counts

  index_t messages_{0};
  std::vector<PhaseId> stack_;         ///< mirror of the machine's stack
  std::vector<PhaseId> bucket_order_;  ///< first-touch order of buckets
  std::unordered_set<PhaseId> seen_buckets_;
  std::uint64_t parallel_batches_{0};
  std::uint64_t cross_tile_segments_{0};
};

/// Mergeable, shard-per-worker counterpart of LoadMap: per-cell traffic
/// under the same inclusive-endpoint dimension-ordered walk, cells owned
/// by the shard of their tile. Exports fold disjoint shards and match
/// the serial LoadMap bit-for-bit. Report-time extras (heatmap,
/// percentiles, imbalance) stay on the serial sink.
class ShardedLoadMap final : public TraceSink {
 public:
  explicit ShardedLoadMap(const Config& cfg = config());

  void on_message(Coord from, Coord to, index_t distance) override;
  void on_send_bulk(std::span<const MessageEvent> batch) override;

  [[nodiscard]] index_t load_at(Coord c) const;
  [[nodiscard]] index_t total_load() const;
  [[nodiscard]] index_t messages() const { return messages_; }
  [[nodiscard]] index_t max_load() const;
  [[nodiscard]] index_t touched_cells() const;
  /// Every touched cell with its load, sorted by (row, col) — the
  /// canonical byte-comparable form the tests diff against LoadMap.
  [[nodiscard]] std::vector<std::pair<Coord, index_t>> sorted_loads() const;

  [[nodiscard]] const Tiling& tiling() const { return tiling_; }
  [[nodiscard]] std::uint64_t cross_tile_segments() const {
    return cross_tile_segments_;
  }
  [[nodiscard]] std::uint64_t parallel_batches() const {
    return parallel_batches_;
  }

  void clear();

 private:
  struct CellHash {
    std::size_t operator()(const std::pair<index_t, index_t>& c) const {
      const auto mix = (static_cast<std::uint64_t>(c.first) << 32) ^
                       static_cast<std::uint64_t>(c.second & 0xffffffff);
      return std::hash<std::uint64_t>{}(mix);
    }
  };
  using CellLoad =
      std::unordered_map<std::pair<index_t, index_t>, index_t, CellHash>;

  struct alignas(64) Shard {
    CellLoad load;
    index_t total{0};
    index_t peak{0};
  };

  /// Split the inclusive-endpoint cell walk (vertical run at from.col,
  /// then horizontal run at to.row excluding the corner) into tile-band
  /// Segments; `fn(owner_shard, segment)`. Vertical segments advance the
  /// row; horizontal ones the column (Segment::dir reuses the link dirs:
  /// down for vertical runs, right/left for horizontal).
  template <typename Fn>
  void for_each_cell_segment(Coord from, Coord to, Fn&& fn) const;
  void apply_segment(Shard& shard, const Segment& seg);
  void apply_serial(Coord from, Coord to);

  Tiling tiling_;
  std::vector<Shard> shards_;
  std::vector<std::vector<Segment>> queues_;
  std::vector<std::uint64_t> cross_;

  index_t messages_{0};
  std::uint64_t parallel_batches_{0};
  std::uint64_t cross_tile_segments_{0};
};

}  // namespace scm::parallel
