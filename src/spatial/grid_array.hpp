// Arrays distributed over a processor subgrid, one element per processor.
//
// The paper's algorithms operate on arrays stored on rectangular subgrids
// in one of two element orders:
//   * RowMajor — the i-th element lives at (i / cols, i % cols);
//   * ZOrder   — the i-th element lives at the i-th position of the Morton
//                curve of a square power-of-two subgrid (Section III).
//
// Each element carries its critical-path Clock; moving elements between
// arrays (or within one) goes through Machine::send so costs are charged.
#pragma once

#include "spatial/clock.hpp"
#include "spatial/geometry.hpp"
#include "spatial/machine.hpp"
#include "spatial/zorder.hpp"

#include <cassert>
#include <span>
#include <utility>
#include <vector>

namespace scm {

/// Element order of a GridArray on its subgrid.
enum class Layout { kRowMajor, kZOrder };

/// A value held by one processor together with its critical-path clock.
template <class T>
struct Cell {
  T value{};
  Clock clock{};
};

/// An n-element array distributed over a processor subgrid, one element per
/// processor, in the given layout order. `n` may be smaller than the
/// subgrid (trailing processors hold no element), and the array may start
/// at a non-zero offset of the layout order: element i lives at layout
/// position offset + i of the region. Offset ranges of a common parent
/// square's Z-order are how the 2-D merge recursion (Section V-C) addresses
/// its quadrant sub-ranges.
template <class T>
class GridArray {
 public:
  /// An empty array of `n` default-constructed elements on `region`.
  GridArray(Rect region, Layout layout, index_t n, index_t offset = 0)
      : region_(region),
        layout_(layout),
        offset_(offset),
        cells_(static_cast<size_t>(n)) {
    assert(n >= 0 && offset >= 0 && offset + n <= region.size());
    // A Z-order region must be a power-of-two square — except that an
    // empty array never decodes a Morton position, so any region
    // (including a degenerate 0 x 0 one) is fine for n == 0.
    assert(n == 0 || layout != Layout::kZOrder ||
           (region.square() && is_pow2(region.rows)));
  }

  /// The canonical array for `n` elements: a sqrt(n) x sqrt(n) (rounded up
  /// to a power of two) square at `origin` in the given layout.
  static GridArray on_square(Coord origin, index_t n,
                             Layout layout = Layout::kZOrder) {
    return GridArray(square_at(origin, square_side_for(n)), layout, n);
  }

  /// Builds an array from host values with zero clocks (the values are the
  /// algorithm's input, already resident at their processors).
  static GridArray from_values(Rect region, Layout layout,
                               const std::vector<T>& values) {
    GridArray out(region, layout, static_cast<index_t>(values.size()));
    for (size_t i = 0; i < values.size(); ++i) out.cells_[i].value = values[i];
    return out;
  }

  /// As from_values, on the canonical square subgrid at `origin`.
  static GridArray from_values_square(Coord origin,
                                      const std::vector<T>& values,
                                      Layout layout = Layout::kZOrder) {
    GridArray out =
        on_square(origin, static_cast<index_t>(values.size()), layout);
    for (size_t i = 0; i < values.size(); ++i) out.cells_[i].value = values[i];
    return out;
  }

  [[nodiscard]] index_t size() const {
    return static_cast<index_t>(cells_.size());
  }
  [[nodiscard]] bool empty() const { return cells_.empty(); }
  [[nodiscard]] const Rect& region() const { return region_; }
  [[nodiscard]] Layout layout() const { return layout_; }

  /// Layout position of element 0 within the region's traversal order.
  [[nodiscard]] index_t offset() const { return offset_; }

  /// Coordinate of the processor holding element i: an array load once
  /// coords() has built the cache, otherwise computed on the fly.
  [[nodiscard]] Coord coord(index_t i) const {
    assert(i >= 0 && i < size());
    if (!coords_.empty()) return coords_[static_cast<size_t>(i)];
    return compute_coord(offset_ + i);
  }

  /// Every element's coordinate, lazily computed once and cached for the
  /// array's lifetime (the placement is immutable after construction).
  /// This is a host-side simulator cache — 16 bytes per element on the
  /// simulating machine, not storage charged to the model's O(1)-memory
  /// processors. Bulk routines force it so their inner loops do array
  /// loads instead of per-element Morton decodes.
  [[nodiscard]] std::span<const Coord> coords() const {
    if (coords_.empty() && !cells_.empty()) {
      coords_.reserve(cells_.size());
      for (index_t i = 0; i < size(); ++i) {
        coords_.push_back(compute_coord(offset_ + i));
      }
    }
    return coords_;
  }

  [[nodiscard]] Cell<T>& operator[](index_t i) {
    assert(i >= 0 && i < size());
    return cells_[static_cast<size_t>(i)];
  }
  [[nodiscard]] const Cell<T>& operator[](index_t i) const {
    assert(i >= 0 && i < size());
    return cells_[static_cast<size_t>(i)];
  }

  /// Host-side copy of the element values (for verification / output).
  [[nodiscard]] std::vector<T> values() const {
    std::vector<T> out;
    out.reserve(cells_.size());
    for (const Cell<T>& c : cells_) out.push_back(c.value);
    return out;
  }

  /// Largest clock over all elements (the array's readiness time).
  [[nodiscard]] Clock max_clock() const {
    Clock c{};
    for (const Cell<T>& cell : cells_) c = Clock::join(c, cell.clock);
    return c;
  }

  /// Announces every element as a resident value to `m`'s trace sinks
  /// (Machine::birth). Input arrays materialise on the grid without
  /// messages; announcing them lets residency accounting (the conformance
  /// checker) see the placement explicitly.
  void announce(Machine& m) const {
    if (empty()) return;
    // bulk-ok: coords() is a span over this array's own cached storage
    const std::span<const Coord> at = coords();
    std::vector<BirthEvent> batch(cells_.size());
    for (size_t i = 0; i < cells_.size(); ++i) {
      batch[i] = BirthEvent{at[i], cells_[i].clock};
    }
    m.birth_bulk(batch);  // bulk-ok: attributed to the caller's phase
  }

  /// Announces every element as retired (Machine::death): the array's
  /// processors no longer hold its values. Sending from a retired cell is
  /// a conformance violation until a new value arrives there.
  void retire(Machine& m) const {
    if (empty()) return;
    m.death_bulk(coords());  // bulk-ok: attributed to the caller's phase
  }

 private:
  Coord compute_coord(index_t pos) const {
    if (layout_ == Layout::kRowMajor) {
      return region_.at(pos / region_.cols, pos % region_.cols);
    }
    return zorder_coord(region_, pos);
  }

  Rect region_;
  Layout layout_;
  index_t offset_{0};
  std::vector<Cell<T>> cells_;
  mutable std::vector<Coord> coords_;
};

/// Sends element `i` of `src` to slot `j` of `dst`, charging the message
/// and propagating the clock. Source and destination may be the same array.
template <class T>
void send_element(Machine& m, const GridArray<T>& src, index_t i,
                  GridArray<T>& dst, index_t j) {
  const Cell<T>& from = src[i];
  dst[j] = Cell<T>{from.value, m.send(src.coord(i), dst.coord(j), from.clock)};
}

/// Bulk form of send_element: performs every (src index, dst index) move
/// of `moves` as one Machine::send_bulk batch. All source cells are read
/// before any destination cell is written, so the moves behave as a
/// parallel gather-then-scatter even when src and dst alias.
template <class T>
void send_elements(Machine& m, const GridArray<T>& src, GridArray<T>& dst,
                   std::span<const std::pair<index_t, index_t>> moves) {
  if (moves.empty()) return;
  std::vector<MessageEvent> batch(moves.size());
  std::vector<T> values(moves.size());
  for (size_t k = 0; k < moves.size(); ++k) {
    const auto [i, j] = moves[k];
    const Cell<T>& cell = src[i];
    batch[k] = MessageEvent{src.coord(i), dst.coord(j), 0, cell.clock, {}};
    values[k] = cell.value;
  }
  m.send_bulk(batch);  // bulk-ok: caller holds the phase scope
  for (size_t k = 0; k < moves.size(); ++k) {
    dst[moves[k].second] = Cell<T>{std::move(values[k]), batch[k].arrival};
  }
}

/// Routes every element of `src` directly to its position in a fresh array
/// with the given region/layout (a direct permutation: one message per
/// element, as used for the Z-order -> row-major step of the 2-D merge),
/// charged as a single send_bulk batch over the cached coordinate maps.
/// `perm[i]` gives the destination index of source element i; pass an
/// identity-sized empty vector for the identity routing.
template <class T>
GridArray<T> route_permutation(Machine& m, const GridArray<T>& src,
                               Rect dst_region, Layout dst_layout,
                               const std::vector<index_t>& perm = {}) {
  GridArray<T> dst(dst_region, dst_layout, src.size());
  if (src.empty()) return dst;
  assert(perm.empty() || perm.size() == static_cast<size_t>(src.size()));
  const std::span<const Coord> from = src.coords();
  const std::span<const Coord> to = dst.coords();
  std::vector<MessageEvent> batch(static_cast<size_t>(src.size()));
  for (index_t i = 0; i < src.size(); ++i) {
    const index_t j = perm.empty() ? i : perm[static_cast<size_t>(i)];
    batch[static_cast<size_t>(i)] =
        MessageEvent{from[static_cast<size_t>(i)], to[static_cast<size_t>(j)],
                     0, src[i].clock, Clock{}};
  }
  m.send_bulk(batch);  // bulk-ok: caller holds the phase scope
  for (index_t i = 0; i < src.size(); ++i) {
    const index_t j = perm.empty() ? i : perm[static_cast<size_t>(i)];
    dst[j] = Cell<T>{src[i].value, batch[static_cast<size_t>(i)].arrival};
  }
  return dst;
}

}  // namespace scm
