// Link-level congestion observability for the Spatial Computer Model.
//
// The SCM prices a message only by its Manhattan distance: bandwidth is
// modelled as unbounded and no two messages ever contend. Real spatial
// hardware (the paper's WSE target included) stalls on *link* contention —
// mapping-evaluation work (Sethi; Wu & Liu) shows that placement-dependent
// congestion, not raw distance, dominates real mapping quality. The
// LoadMap sink already counts per-processor traffic; this module refines
// that to the network's actual unit of contention, the directed link
// between adjacent processors.
//
// The CongestionMap TraceSink decomposes every charged message into unit
// hops under the same deterministic dimension-ordered routing LoadMap uses
// (rows first, then columns) and tracks:
//
//   * per-link occupancy totals — a message of Manhattan distance d
//     traverses exactly d links, so the summed occupancy over all links
//     equals the summed message distance, i.e. Metrics::energy (the
//     paper's energy metric IS total link traversals);
//   * per-phase occupancy maps, attributed to the *innermost* active
//     phase (interned PhaseIds, like the profiler) so the buckets
//     partition the traffic;
//   * per-phase and global peak link load — the congestion-depth proxy
//     the cited mapping papers optimize: traffic on one link serializes,
//     so a phase's peak link occupancy lower-bounds its completion time
//     on bandwidth-limited hardware.
//
// On top of the per-phase peaks sits an **opt-in diagnostic metric**,
// congested_clock() = sum over phase buckets of the bucket's peak link
// occupancy. It is deliberately NOT part of Metrics and never feeds the
// conformance checker: the paper's model has exactly three costs (energy,
// depth, distance) and the checker stays authoritative for them. The
// congested clock is a fourth, strictly separate axis for comparing
// algorithms on congestion robustness (docs/MODEL.md).
//
// Exporters: an ASCII link heatmap and summary report, a Chrome
// trace_event counter track (standalone here; merged into the phase trace
// when embedded in the Profiler), and the "congestion" section of the
// versioned JSON run report (schema v3, docs/OBSERVABILITY.md). Wire-up
// for benches/examples is util::ProfileSession's --congestion /
// --congestion-heatmap flags.
#pragma once

#include "spatial/geometry.hpp"
#include "spatial/phase.hpp"
#include "spatial/trace.hpp"

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace scm {

/// One directed unit link of the grid: the wire from `from` to the
/// adjacent processor `to` (Manhattan distance exactly 1). Dimension-
/// ordered routing decomposes a message into a row-run of vertical links
/// followed by a column-run of horizontal links.
struct Link {
  Coord from{};
  Coord to{};

  friend bool operator==(const Link&, const Link&) = default;

  /// Deterministic report order: by source row, source col, then target.
  friend bool operator<(const Link& a, const Link& b) {
    if (a.from.row != b.from.row) return a.from.row < b.from.row;
    if (a.from.col != b.from.col) return a.from.col < b.from.col;
    if (a.to.row != b.to.row) return a.to.row < b.to.row;
    return a.to.col < b.to.col;
  }

  /// "[r,c]->[r,c]" for diagnostics.
  [[nodiscard]] std::string str() const;
};

/// Accumulates per-link occupancy by routing every charged message along
/// the dimension-ordered Manhattan path (rows first, then columns), with
/// per-phase attribution and an opt-in congested-clock diagnostic.
/// Tracking costs O(distance) per message — the same budget as LoadMap —
/// so it is opt-in observability, never attached by default.
class CongestionMap final : public TraceSink {
 public:
  /// One sample of the Chrome counter track, recorded at every phase
  /// transition (and once at export): the running global peak link load
  /// and congested clock at that virtual tick (ticks count charged
  /// messages observed by this sink).
  struct CounterSample {
    std::uint64_t tick{0};
    index_t max_link_load{0};
    index_t congested_clock{0};
  };

  /// Occupancy summary of one phase bucket (innermost-phase attribution;
  /// kNoPhase collects traffic charged outside any PhaseScope).
  struct PhaseCongestion {
    PhaseId phase{kNoPhase};
    index_t occupancy{0};  ///< summed link traversals in this bucket
    index_t links{0};      ///< distinct links touched
    index_t peak{0};       ///< largest per-link occupancy in this bucket
  };

  // TraceSink hooks.
  void on_message(Coord from, Coord to, index_t distance) override;
  /// Batched counterpart: one virtual dispatch per batch, skipping the
  /// per-message on_message+on_send double dispatch of the default
  /// replay. Per-link occupancy is identical to the replayed stream
  /// (asserted algorithm-by-algorithm through the bulk_ab A/B harness).
  void on_send_bulk(std::span<const MessageEvent> batch) override;
  void on_phase_enter(PhaseId id) override;
  void on_phase_exit(PhaseId id) override;
  /// Machine construction/reset drops the recorded data (an exported
  /// artifact describes the last run); open phase scopes survive, exactly
  /// like Machine::reset and Profiler::clear.
  void on_reset() override;

  /// Charged messages observed.
  [[nodiscard]] index_t messages() const { return messages_; }

  /// Summed occupancy over all links == summed Manhattan distance of all
  /// observed messages. Equals Metrics::energy when the sink observed the
  /// machine's whole life — the link-decomposition identity
  /// tests/test_congestion.cpp asserts on every Table-1 algorithm.
  [[nodiscard]] index_t total_occupancy() const { return total_; }

  /// Number of distinct links that carried at least one unit.
  [[nodiscard]] index_t links() const {
    return static_cast<index_t>(load_.size());
  }

  /// Occupancy of one directed link (0 when never traversed).
  [[nodiscard]] index_t occupancy(Link link) const;

  /// Largest per-link occupancy — the global congestion bottleneck.
  [[nodiscard]] index_t max_link_load() const { return max_link_load_; }

  /// The `k` most-loaded links, descending (ties broken by coordinate).
  [[nodiscard]] std::vector<std::pair<Link, index_t>> hotspot_links(
      std::size_t k) const;

  /// Nearest-rank p-th percentile (p in [0, 100]) of the occupancy over
  /// touched links; 0 when no traffic was recorded.
  [[nodiscard]] index_t percentile(double p) const;

  /// Every touched link with its occupancy, sorted by Link order — the
  /// canonical byte-comparable form the A/B harness and the metamorphic
  /// fuzzer oracles diff.
  [[nodiscard]] std::vector<std::pair<Link, index_t>> sorted_links() const;

  /// The occupancy values over touched links, sorted ascending. Grid
  /// translation moves every link but changes no occupancy, so this
  /// multiset is bit-identical under translation (fuzzer oracle).
  [[nodiscard]] std::vector<index_t> occupancy_multiset() const;

  /// Per-phase congestion summaries in first-touch order. A kNoPhase
  /// entry appears iff traffic was charged outside every scope.
  [[nodiscard]] std::vector<PhaseCongestion> phase_congestion() const;

  /// Peak link occupancy attributed to phase `id` (innermost-attribution
  /// bucket); 0 when the phase saw no traffic.
  [[nodiscard]] index_t phase_peak(PhaseId id) const;

  /// The opt-in congestion cost metric: sum over phase buckets of the
  /// bucket's peak link occupancy. Phases execute in sequence and a
  /// link's traffic serializes, so this is a congestion-aware clock
  /// proxy. Diagnostic-only: strictly separate from the paper's three
  /// metrics, never checked by the conformance checker, and always
  /// >= max_link_load() (the peak link's total splits across buckets,
  /// each counted at least at its bucket share).
  [[nodiscard]] index_t congested_clock() const { return congested_clock_; }

  /// Counter-track samples recorded so far (one per phase transition).
  [[nodiscard]] const std::vector<CounterSample>& samples() const {
    return samples_;
  }

  /// Human-readable summary: totals, percentiles, hotspot links, and the
  /// per-phase peak table behind congested_clock().
  [[nodiscard]] std::string ascii_report(std::size_t hotspots = 5) const;

  /// ASCII heatmap of per-cell link pressure over the touched bounding
  /// box: each cell shows the maximum occupancy over the directed links
  /// *leaving* it, downsampled to `max_side` characters per side with the
  /// LoadMap level ramp " .:-=+*#%@".
  [[nodiscard]] std::string heatmap(index_t max_side = 32) const;

  /// Standalone Chrome trace_event JSON: one "C" (counter) event per
  /// recorded sample plus a closing sample at the final tick, counter
  /// name "link congestion" with max_link_load / congested_clock series.
  /// Loads in Perfetto; when the sink is embedded in a Profiler the same
  /// samples ride the profiler's phase trace instead (shared tick axis).
  [[nodiscard]] std::string chrome_counter_json() const;

  /// Drops all recorded data; the mirrored phase stack survives (open
  /// scopes keep attributing, as across Machine::reset).
  void clear();

 private:
  struct LinkKey {
    index_t row{0};
    index_t col{0};
    std::uint8_t dir{0};  ///< 0 up, 1 down, 2 left, 3 right

    friend bool operator==(const LinkKey&, const LinkKey&) = default;
  };
  struct LinkKeyHash {
    std::size_t operator()(const LinkKey& k) const {
      const auto mix = (static_cast<std::uint64_t>(k.row) << 32) ^
                       static_cast<std::uint64_t>(k.col & 0xffffffff);
      return std::hash<std::uint64_t>{}(mix * 4 + k.dir);
    }
  };
  using LinkLoad = std::unordered_map<LinkKey, index_t, LinkKeyHash>;

  /// The bucket traffic is currently attributed to (innermost phase).
  [[nodiscard]] PhaseId bucket() const {
    return stack_.empty() ? kNoPhase : stack_.back();
  }

  /// Per-bucket occupancy map and peak, keyed by innermost PhaseId.
  struct Bucket {
    LinkLoad load;
    index_t occupancy{0};
    index_t peak{0};
  };

  /// The resolved bucket of the innermost phase, fetched lazily and
  /// cached until the next phase transition (unordered_map nodes are
  /// pointer-stable), so the hot path pays one bucket hash lookup per
  /// transition instead of one per unit hop.
  Bucket& current_bucket();

  void route(Coord from, Coord to);
  void bump(LinkKey key);
  void record_sample();

  static Link link_of(LinkKey key);

  LinkLoad load_;
  index_t total_{0};
  index_t messages_{0};
  index_t max_link_load_{0};
  index_t congested_clock_{0};
  std::uint64_t ticks_{0};

  std::unordered_map<PhaseId, Bucket> phases_;
  std::vector<PhaseId> phase_order_;  ///< first-touch order of buckets
  Bucket* cached_bucket_{nullptr};    ///< see current_bucket()

  /// Mirror of the machine's phase stack (survives clear()/on_reset).
  std::vector<PhaseId> stack_;
  std::vector<CounterSample> samples_;
};

}  // namespace scm
