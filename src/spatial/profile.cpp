#include "spatial/profile.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <sstream>
#include <string_view>

namespace scm {

namespace {

/// JSON string escaping per RFC 8259 (control characters as \u00XX).
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(ch));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string phase_name(PhaseId id) {
  return id == kNoPhase ? std::string("<top>")
                        : PhaseRegistry::instance().name(id);
}

void append_coord(std::ostringstream& os, Coord c) {
  os << '[' << c.row << ',' << c.col << ']';
}

void append_clock(std::ostringstream& os, Clock c) {
  os << "{\"depth\":" << c.depth << ",\"distance\":" << c.distance << '}';
}

}  // namespace

void DistanceHistogram::add(index_t distance) {
  assert(distance >= 1);
  const auto b = static_cast<std::size_t>(
      std::bit_width(static_cast<std::uint64_t>(distance)) - 1);
  if (b >= buckets.size()) buckets.resize(b + 1, 0);
  ++buckets[b];
  ++count;
  max_distance = std::max(max_distance, distance);
}

index_t DistanceHistogram::percentile_lower_bound(double p) const {
  if (count == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  // Nearest-rank: the smallest rank covering p percent of the messages.
  const auto rank = std::max<index_t>(
      1, static_cast<index_t>(std::ceil(p / 100.0 *
                                        static_cast<double>(count))));
  index_t seen = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    seen += buckets[b];
    if (seen >= rank) return static_cast<index_t>(index_t{1} << b);
  }
  return static_cast<index_t>(index_t{1} << (buckets.size() - 1));
}

index_t Profiler::WitnessChain::total_distance() const {
  index_t sum = 0;
  for (const WitnessHop& h : hops) sum += h.distance;
  return sum;
}

namespace {

/// The embedded checker reports through the JSON artifact, never aborts:
/// a --profile run under SCM_STRICT_MODEL still produces its report (the
/// harness/fuzzer checkers own the abort-on-violation policy).
IndependenceChecker::Config embedded_independence_config() {
  IndependenceChecker::Config config;
  config.strict = false;
  return config;
}

}  // namespace

Profiler::Profiler(Options options) : options_(options) {
  nodes_.push_back(PhaseNode{});
  if (options_.load_map) load_map_ = std::make_unique<LoadMap>();
  if (options_.congestion) congestion_ = std::make_unique<CongestionMap>();
  if (options_.independence) {
    independence_ =
        std::make_unique<IndependenceChecker>(embedded_independence_config());
  }
}

std::uint32_t Profiler::child_of(std::uint32_t parent, PhaseId id) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(parent) << 32) | id;
  const auto [it, inserted] =
      edges_.try_emplace(key, static_cast<std::uint32_t>(nodes_.size()));
  if (inserted) {
    PhaseNode node;
    node.phase = id;
    node.parent = parent;
    node.depth = nodes_[parent].depth + 1;
    nodes_[parent].children.push_back(it->second);
    nodes_.push_back(std::move(node));
  }
  return it->second;
}

void Profiler::on_message(Coord from, Coord to, index_t distance) {
  if (load_map_ != nullptr) load_map_->on_message(from, to, distance);
  if (congestion_ != nullptr) congestion_->on_message(from, to, distance);
}

void Profiler::on_send(const MessageEvent& e) {
  ++ticks_;
  totals_.energy += e.distance;
  ++totals_.messages;
  totals_.max_clock = Clock::join(totals_.max_clock, e.arrival);
  PhaseNode& node = nodes_[cur_];
  node.self_energy += e.distance;
  ++node.self_messages;
  node.hist.add(e.distance);
  if (options_.witness) {
    record_witness(WitnessEvent{e.from, e.to, e.distance, e.payload,
                                e.arrival, cur_, /*is_birth=*/false});
  }
  if (independence_ != nullptr) independence_->on_send(e);
}

void Profiler::on_send_bulk(std::span<const MessageEvent> batch) {
  if (independence_ != nullptr) independence_->on_send_bulk(batch);
  if (congestion_ != nullptr) congestion_->on_send_bulk(batch);
  index_t energy = 0;
  index_t messages = 0;
  Clock max{};
  // nodes_ only grows at phase transitions, so the current node's
  // reference is stable for the whole batch.
  PhaseNode& node = nodes_[cur_];
  for (const MessageEvent& e : batch) {
    if (e.distance == 0) continue;
    ++ticks_;
    energy += e.distance;
    ++messages;
    max = Clock::join(max, e.arrival);
    node.hist.add(e.distance);
    if (load_map_ != nullptr) {
      load_map_->on_message(e.from, e.to, e.distance);
    }
    if (options_.witness) {
      record_witness(WitnessEvent{e.from, e.to, e.distance, e.payload,
                                  e.arrival, cur_, /*is_birth=*/false});
    }
  }
  totals_.energy += energy;
  totals_.messages += messages;
  totals_.max_clock = Clock::join(totals_.max_clock, max);
  node.self_energy += energy;
  node.self_messages += messages;
}

void Profiler::on_op(index_t n) {
  ++ticks_;
  totals_.local_ops += n;
  nodes_[cur_].self_ops += n;
}

void Profiler::on_birth(Coord at, Clock c) {
  ++ticks_;
  totals_.max_clock = Clock::join(totals_.max_clock, c);
  if (options_.witness) {
    record_witness(
        WitnessEvent{at, at, 0, c, c, cur_, /*is_birth=*/true});
  }
  if (independence_ != nullptr) independence_->on_birth(at, c);
}

void Profiler::on_birth_bulk(std::span<const BirthEvent> batch) {
  Clock max{};
  for (const BirthEvent& b : batch) {
    ++ticks_;
    max = Clock::join(max, b.clock);
    if (options_.witness) {
      record_witness(
          WitnessEvent{b.at, b.at, 0, b.clock, b.clock, cur_,
                       /*is_birth=*/true});
    }
  }
  totals_.max_clock = Clock::join(totals_.max_clock, max);
  if (independence_ != nullptr) independence_->on_birth_bulk(batch);
}

void Profiler::on_death(Coord at) {
  if (independence_ != nullptr) independence_->on_death(at);
}

void Profiler::on_death_bulk(std::span<const Coord> batch) {
  if (independence_ != nullptr) independence_->on_death_bulk(batch);
}

void Profiler::record_witness(const WitnessEvent& e) {
  const auto idx = static_cast<std::uint32_t>(events_.size());
  events_.push_back(e);
  first_depth_.try_emplace(e.arrival.depth, idx);
  first_distance_.try_emplace(e.arrival.distance, idx);
}

void Profiler::on_phase_enter(PhaseId id) {
  if (congestion_ != nullptr) congestion_->on_phase_enter(id);
  stack_.push_back(id);
  cur_ = child_of(cur_, id);
  ScopeEvent s{true, id, ticks_, totals_.energy};
  if (congestion_ != nullptr) {
    s.max_link_load = congestion_->max_link_load();
    s.congested_clock = congestion_->congested_clock();
  }
  scopes_.push_back(s);
  if (independence_ != nullptr) independence_->on_phase_enter(id);
}

void Profiler::on_phase_exit(PhaseId id) {
  if (independence_ != nullptr) independence_->on_phase_exit(id);
  if (congestion_ != nullptr) congestion_->on_phase_exit(id);
  if (stack_.empty()) return;  // imbalance is the checker's to report
  stack_.pop_back();
  cur_ = nodes_[cur_].parent;
  ScopeEvent s{false, id, ticks_, totals_.energy};
  if (congestion_ != nullptr) {
    s.max_link_load = congestion_->max_link_load();
    s.congested_clock = congestion_->congested_clock();
  }
  scopes_.push_back(s);
}

void Profiler::on_reset() { clear(); }

void Profiler::clear() {
  totals_ = Metrics{};
  nodes_.clear();
  nodes_.push_back(PhaseNode{});
  edges_.clear();
  cur_ = 0;
  scopes_.clear();
  ticks_ = 0;
  events_.clear();
  first_depth_.clear();
  first_distance_.clear();
  if (load_map_ != nullptr) load_map_->clear();
  // CongestionMap::clear preserves its own mirrored phase stack (it sees
  // every enter/exit we forward), so no replay below — replaying would
  // double-enter the surviving scopes.
  if (congestion_ != nullptr) congestion_->clear();
  if (independence_ != nullptr) {
    // An exported artifact describes the run since the last reset, so the
    // independence record restarts too; the surviving phase stack is
    // replayed into the fresh checker below.
    independence_ =
        std::make_unique<IndependenceChecker>(embedded_independence_config());
  }
  // Like Machine::reset, open PhaseScopes keep attributing: rebuild the
  // spine of the surviving phase stack at tick 0.
  for (const PhaseId id : stack_) {
    cur_ = child_of(cur_, id);
    scopes_.push_back(ScopeEvent{true, id, 0, 0});
    if (independence_ != nullptr) independence_->on_phase_enter(id);
  }
}

const LoadMap* Profiler::load_map() const { return load_map_.get(); }

const CongestionMap* Profiler::congestion() const {
  return congestion_.get();
}

const IndependenceChecker* Profiler::independence() const {
  return independence_.get();
}

std::vector<std::string> Profiler::phase_path(std::uint32_t node) const {
  std::vector<std::string> names;
  for (std::uint32_t i = node; i != 0; i = nodes_[i].parent) {
    names.push_back(PhaseRegistry::instance().name(nodes_[i].phase));
  }
  std::reverse(names.begin(), names.end());
  return names;
}

Profiler::WitnessChain Profiler::reconstruct_chain(bool by_depth) const {
  // Backward component-wise walk. Every payload clock of a conforming
  // execution is a join (component-wise max) of previously observed
  // clocks, so each component value on the chain was achieved by some
  // earlier recorded event; the first achiever is a valid predecessor.
  // The needed component strictly decreases (a hop adds >= 1 to depth
  // and >= 1 to distance), so the walk terminates.
  const auto& first = by_depth ? first_depth_ : first_distance_;
  const auto component = [by_depth](Clock c) {
    return by_depth ? c.depth : c.distance;
  };
  WitnessChain chain;
  index_t need = component(totals_.max_clock);
  std::vector<WitnessHop> reversed;
  while (need > 0) {
    const auto it = first.find(need);
    if (it == first.end()) {
      // Only possible when the profiler missed part of the history
      // (attached mid-run or raised via Machine::observe of a clock with
      // no recorded origin).
      chain.complete = false;
      break;
    }
    const WitnessEvent& e = events_[it->second];
    if (e.is_birth) {
      chain.start_clock = e.arrival;
      break;
    }
    reversed.push_back(WitnessHop{e.from, e.to, e.distance, e.payload,
                                  e.arrival, phase_path(e.node)});
    need = component(e.payload);
  }
  chain.hops.assign(reversed.rbegin(), reversed.rend());
  return chain;
}

Profiler::CriticalPathWitness Profiler::critical_path() const {
  CriticalPathWitness path;
  if (!options_.witness) return path;
  path.enabled = true;
  path.depth_chain = reconstruct_chain(/*by_depth=*/true);
  path.distance_chain = reconstruct_chain(/*by_depth=*/false);
  return path;
}

std::vector<Metrics> Profiler::rolled_up_totals() const {
  std::vector<Metrics> totals(nodes_.size());
  // Children always have larger indices than their parent, so a reverse
  // index sweep is bottom-up.
  for (std::size_t i = nodes_.size(); i-- > 0;) {
    const PhaseNode& node = nodes_[i];
    Metrics& t = totals[i];
    t.energy += node.self_energy;
    t.messages += node.self_messages;
    t.local_ops += node.self_ops;
    if (i != 0) {
      Metrics& p = totals[node.parent];
      p.energy += t.energy;
      p.messages += t.messages;
      p.local_ops += t.local_ops;
    }
  }
  return totals;
}

std::string Profiler::ascii_report() const {
  const std::vector<Metrics> totals = rolled_up_totals();
  std::ostringstream os;
  os << "phase tree (energy = Manhattan-distance units; dist = per-message "
        "p50/max)\n";
  os << std::left << std::setw(40) << "phase" << std::right
     << std::setw(12) << "energy" << std::setw(12) << "self"
     << std::setw(10) << "msgs" << std::setw(12) << "ops" << std::setw(12)
     << "dist" << "\n";
  // Depth-first over the tree in creation (= first-entered) order.
  std::vector<std::uint32_t> dfs{0};
  while (!dfs.empty()) {
    const std::uint32_t i = dfs.back();
    dfs.pop_back();
    const PhaseNode& node = nodes_[i];
    std::string label(static_cast<std::size_t>(node.depth) * 2, ' ');
    label += phase_name(node.phase);
    if (label.size() > 39) label.resize(39);
    std::string dist = "-";
    if (node.hist.count > 0) {
      dist = std::to_string(node.hist.percentile_lower_bound(50.0)) + "/" +
             std::to_string(node.hist.max_distance);
    }
    os << std::left << std::setw(40) << label << std::right
       << std::setw(12) << totals[i].energy << std::setw(12)
       << node.self_energy << std::setw(10) << totals[i].messages
       << std::setw(12) << totals[i].local_ops << std::setw(12) << dist
       << "\n";
    for (auto it = node.children.rbegin(); it != node.children.rend();
         ++it) {
      dfs.push_back(*it);
    }
  }
  os << "totals: " << totals_.str() << "\n";
  return os.str();
}

std::string Profiler::chrome_trace_json() const {
  // One B/E pair per phase scope over the virtual tick axis ("ts" is in
  // microseconds as far as the viewer is concerned; here 1 us = 1 charged
  // event). Scopes still open at export get a closing E at the final
  // tick so the file is always well-formed.
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  os << "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\","
        "\"args\":{\"name\":\"scm simulated run\"}}";
  // When the congestion map is embedded, a "link congestion" counter
  // track rides the same tick axis: one "C" event per phase transition
  // (deduplicated when the counters did not move) plus a closing sample.
  index_t last_load = 0;
  index_t last_clock = 0;
  bool sampled = false;
  const auto counter = [&](std::uint64_t tick, index_t load,
                           index_t clock) {
    if (congestion_ == nullptr) return;
    if (sampled && load == last_load && clock == last_clock) return;
    sampled = true;
    last_load = load;
    last_clock = clock;
    os << ",\n{\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":" << tick
       << ",\"name\":\"link congestion\",\"args\":{\"max_link_load\":"
       << load << ",\"congested_clock\":" << clock << "}}";
  };
  std::int64_t open = 0;
  for (const ScopeEvent& s : scopes_) {
    os << ",\n{\"ph\":\"" << (s.enter ? 'B' : 'E') << "\",\"pid\":0,"
       << "\"tid\":0,\"ts\":" << s.tick << ",\"name\":\""
       << json_escape(phase_name(s.phase)) << "\",\"cat\":\"phase\","
       << "\"args\":{\"energy\":" << s.energy << "}}";
    counter(s.tick, s.max_link_load, s.congested_clock);
    open += s.enter ? 1 : -1;
  }
  assert(open == static_cast<std::int64_t>(stack_.size()));
  (void)open;
  for (std::size_t i = stack_.size(); i-- > 0;) {
    os << ",\n{\"ph\":\"E\",\"pid\":0,\"tid\":0,\"ts\":" << ticks_
       << ",\"name\":\"" << json_escape(phase_name(stack_[i]))
       << "\",\"cat\":\"phase\",\"args\":{\"energy\":" << totals_.energy
       << "}}";
  }
  if (congestion_ != nullptr) {
    sampled = false;  // always close the track at the final tick
    counter(ticks_, congestion_->max_link_load(),
            congestion_->congested_clock());
  }
  os << "\n]}\n";
  return os.str();
}

namespace {

void append_metrics(std::ostringstream& os, const Metrics& m) {
  os << "{\"energy\":" << m.energy << ",\"messages\":" << m.messages
     << ",\"local_ops\":" << m.local_ops << ",\"depth\":" << m.depth()
     << ",\"distance\":" << m.distance() << '}';
}

void append_chain(std::ostringstream& os,
                  const Profiler::WitnessChain& chain) {
  os << "{\"complete\":" << (chain.complete ? "true" : "false")
     << ",\"hops\":" << chain.hop_count()
     << ",\"total_distance\":" << chain.total_distance()
     << ",\"start_clock\":";
  append_clock(os, chain.start_clock);
  os << ",\"messages\":[";
  for (std::size_t i = 0; i < chain.hops.size(); ++i) {
    const Profiler::WitnessHop& h = chain.hops[i];
    if (i != 0) os << ',';
    os << "\n{\"from\":";
    append_coord(os, h.from);
    os << ",\"to\":";
    append_coord(os, h.to);
    os << ",\"distance\":" << h.distance << ",\"payload\":";
    append_clock(os, h.payload);
    os << ",\"arrival\":";
    append_clock(os, h.arrival);
    os << ",\"phases\":[";
    for (std::size_t p = 0; p < h.phases.size(); ++p) {
      if (p != 0) os << ',';
      os << '"' << json_escape(h.phases[p]) << '"';
    }
    os << "]}";
  }
  os << "]}";
}

}  // namespace

std::string Profiler::json_report() const {
  const std::vector<Metrics> rolled = rolled_up_totals();
  std::ostringstream os;
  os << "{\n\"schema\":\"scm-run-report\",\"schema_version\":"
     << kSchemaVersion << ",\n\"ticks\":" << ticks_ << ",\n\"totals\":";
  append_metrics(os, totals_);

  // Phase tree, recursively. An explicit stack mirrors ascii_report's
  // DFS; each pop closes the node's "children" array and object.
  os << ",\n\"phase_tree\":";
  struct Frame {
    std::uint32_t node;
    std::size_t next_child{0};
  };
  std::vector<Frame> stack{{0, 0}};
  std::vector<bool> opened(nodes_.size(), false);
  while (!stack.empty()) {
    Frame& f = stack.back();
    const PhaseNode& node = nodes_[f.node];
    if (!opened[f.node]) {
      opened[f.node] = true;
      os << "\n{\"name\":\"" << json_escape(phase_name(node.phase))
         << "\",\"self\":";
      Metrics self;
      self.energy = node.self_energy;
      self.messages = node.self_messages;
      self.local_ops = node.self_ops;
      append_metrics(os, self);
      os << ",\"total\":";
      append_metrics(os, rolled[f.node]);
      os << ",\"distance_histogram\":{\"log2_buckets\":[";
      for (std::size_t b = 0; b < node.hist.buckets.size(); ++b) {
        if (b != 0) os << ',';
        os << node.hist.buckets[b];
      }
      os << "],\"max\":" << node.hist.max_distance << '}';
      os << ",\"children\":[";
    }
    if (f.next_child < node.children.size()) {
      if (f.next_child != 0) os << ',';
      const std::uint32_t child = node.children[f.next_child++];
      stack.push_back(Frame{child, 0});
    } else {
      os << "]}";
      stack.pop_back();
    }
  }

  const CriticalPathWitness path = critical_path();
  os << ",\n\"critical_path\":{\"enabled\":"
     << (path.enabled ? "true" : "false");
  if (path.enabled) {
    os << ",\"depth_chain\":";
    append_chain(os, path.depth_chain);
    os << ",\"distance_chain\":";
    append_chain(os, path.distance_chain);
  }
  os << '}';

  os << ",\n\"load\":{\"enabled\":"
     << (load_map_ != nullptr ? "true" : "false");
  if (load_map_ != nullptr) {
    const LoadMap& lm = *load_map_;
    os << ",\"messages\":" << lm.messages()
       << ",\"total_load\":" << lm.total_load()
       << ",\"max_load\":" << lm.max_load() << ",\"imbalance\":"
       << lm.imbalance() << ",\"p50\":" << lm.percentile(50.0)
       << ",\"p95\":" << lm.percentile(95.0)
       << ",\"p99\":" << lm.percentile(99.0) << ",\"hotspots\":[";
    const auto spots = lm.hotspots(5);
    for (std::size_t i = 0; i < spots.size(); ++i) {
      if (i != 0) os << ',';
      os << "{\"at\":";
      append_coord(os, spots[i].first);
      os << ",\"load\":" << spots[i].second << '}';
    }
    os << ']';
  }
  os << '}';

  os << ",\n\"congestion\":{\"enabled\":"
     << (congestion_ != nullptr ? "true" : "false");
  if (congestion_ != nullptr) {
    const CongestionMap& cm = *congestion_;
    // Invariant CI asserts from artifacts: total_occupancy equals
    // totals.energy (every message of Manhattan distance d crosses
    // exactly d links), and congested_clock >= max_link_load.
    os << ",\"messages\":" << cm.messages()
       << ",\"links\":" << cm.links()
       << ",\"total_occupancy\":" << cm.total_occupancy()
       << ",\"max_link_load\":" << cm.max_link_load()
       << ",\"p50\":" << cm.percentile(50.0)
       << ",\"p95\":" << cm.percentile(95.0)
       << ",\"p99\":" << cm.percentile(99.0)
       << ",\"congested_clock\":" << cm.congested_clock()
       << ",\"hotspots\":[";
    const auto spots = cm.hotspot_links(5);
    for (std::size_t i = 0; i < spots.size(); ++i) {
      if (i != 0) os << ',';
      os << "{\"from\":";
      append_coord(os, spots[i].first.from);
      os << ",\"to\":";
      append_coord(os, spots[i].first.to);
      os << ",\"load\":" << spots[i].second << '}';
    }
    os << "],\"phases\":[";
    const auto phases = cm.phase_congestion();
    for (std::size_t i = 0; i < phases.size(); ++i) {
      const CongestionMap::PhaseCongestion& pc = phases[i];
      if (i != 0) os << ',';
      const double mean =
          pc.links == 0 ? 0.0
                        : static_cast<double>(pc.occupancy) /
                              static_cast<double>(pc.links);
      os << "\n{\"name\":\"" << json_escape(phase_name(pc.phase))
         << "\",\"peak\":" << pc.peak << ",\"links\":" << pc.links
         << ",\"mean\":" << mean << ",\"occupancy\":" << pc.occupancy
         << '}';
    }
    os << ']';
  }
  os << '}';

  os << ",\n\"independence\":{\"enabled\":"
     << (independence_ != nullptr ? "true" : "false");
  if (independence_ != nullptr) {
    const IndependenceReport& rep = independence_->report();
    os << ",\"ok\":" << (rep.ok() ? "true" : "false") << ",\"conflicts\":{"
       << "\"total\":" << rep.violations.size() << ",\"write_write\":"
       << rep.count(IndependenceViolationKind::kWriteWriteConflict)
       << ",\"read_write\":"
       << rep.count(IndependenceViolationKind::kReadWriteHazard)
       << ",\"aliasing\":"
       << rep.count(IndependenceViolationKind::kGatherScatterAliasing)
       << "},\"batches\":" << rep.batches
       << ",\"bulk_messages\":" << rep.bulk_messages
       << ",\"exempted_batches\":" << rep.exempted_batches
       << ",\"max_fan_in\":" << rep.max_fan_in << ",\"phases\":[";
    bool first = true;
    for (const auto& [name, fp] : rep.per_phase) {
      if (!first) os << ',';
      first = false;
      os << "\n{\"name\":\"" << json_escape(name)
         << "\",\"batches\":" << fp.batches
         << ",\"bulk_messages\":" << fp.bulk_messages
         << ",\"max_batch\":" << fp.max_batch
         << ",\"max_fan_in\":" << fp.max_fan_in
         << ",\"exempted_batches\":" << fp.exempted_batches
         << ",\"conflicts\":" << fp.conflicts << '}';
    }
    os << ']';
  }
  os << "}\n}\n";
  return os.str();
}

}  // namespace scm
