// Geometry primitives of the Spatial Computer Model: integer grid
// coordinates, Manhattan distance, and axis-aligned rectangular processor
// regions ("subgrids" in the paper, Section III).
//
// The model places processors on an unbounded 2-D Cartesian grid. A message
// from p(i,j) to p(x,y) costs |x-i| + |y-j| (its Manhattan distance); all
// cost accounting in the library flows through these types.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <iosfwd>
#include <string>

namespace scm {

/// Index type for grid coordinates and element counts. Signed so that
/// coordinate arithmetic (offsets, differences) is natural.
using index_t = std::int64_t;

/// A processor coordinate on the unbounded grid. `row` grows downwards,
/// `col` grows rightwards, matching the paper's figures (the top-left
/// processor of a subgrid is its smallest coordinate).
struct Coord {
  index_t row{0};
  index_t col{0};

  friend bool operator==(const Coord&, const Coord&) = default;
};

/// Manhattan (L1) distance between two processors: the cost of sending one
/// message between them in the Spatial Computer Model.
[[nodiscard]] inline index_t manhattan(Coord a, Coord b) {
  return std::abs(a.row - b.row) + std::abs(a.col - b.col);
}

/// An axis-aligned rectangular subgrid of processors: `rows x cols` cells
/// whose top-left processor is (row0, col0).
struct Rect {
  index_t row0{0};
  index_t col0{0};
  index_t rows{0};
  index_t cols{0};

  friend bool operator==(const Rect&, const Rect&) = default;

  /// Number of processors in the subgrid.
  [[nodiscard]] index_t size() const { return rows * cols; }

  /// True when the subgrid is square.
  [[nodiscard]] bool square() const { return rows == cols; }

  /// Top-left processor of the subgrid.
  [[nodiscard]] Coord origin() const { return {row0, col0}; }

  /// Processor at offset (dr, dc) from the origin. The offset must lie
  /// within the rectangle in checked builds.
  [[nodiscard]] Coord at(index_t dr, index_t dc) const;

  /// True when `c` lies inside the subgrid.
  [[nodiscard]] bool contains(Coord c) const {
    return c.row >= row0 && c.row < row0 + rows && c.col >= col0 &&
           c.col < col0 + cols;
  }

  /// True when the two rectangles share at least one processor.
  [[nodiscard]] bool intersects(const Rect& o) const;

  /// The i-th quadrant of the (even-sided) rectangle in the paper's Z-order:
  /// 0 = top-left, 1 = top-right, 2 = bottom-left, 3 = bottom-right.
  [[nodiscard]] Rect quadrant(int i) const;

  /// Largest Manhattan distance between any two processors of the subgrid:
  /// (rows - 1) + (cols - 1).
  [[nodiscard]] index_t diameter() const {
    return (rows > 0 && cols > 0) ? (rows - 1) + (cols - 1) : 0;
  }

  /// Human-readable form "[r0,c0 rxc]" for diagnostics.
  [[nodiscard]] std::string str() const;
};

std::ostream& operator<<(std::ostream& os, Coord c);
std::ostream& operator<<(std::ostream& os, const Rect& r);

/// True when `v` is a power of two (and positive).
[[nodiscard]] constexpr bool is_pow2(index_t v) {
  return v > 0 && (v & (v - 1)) == 0;
}

/// Smallest power of two >= v (v >= 1).
[[nodiscard]] index_t ceil_pow2(index_t v);

/// Integer square root: the largest s with s*s <= v (v >= 0).
[[nodiscard]] index_t isqrt(index_t v);

/// Smallest power-of-two side s such that an s x s grid holds >= n cells.
/// This is the canonical square subgrid the paper places an n-element input
/// on (n is assumed to be a power of 4 in the paper; we round up).
[[nodiscard]] index_t square_side_for(index_t n);

/// A square power-of-two-sided rect at `origin` with side `side`.
[[nodiscard]] inline Rect square_at(Coord origin, index_t side) {
  return Rect{origin.row, origin.col, side, side};
}

}  // namespace scm
