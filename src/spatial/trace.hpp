// Execution tracing for the Spatial Computer Model.
//
// Energy is the paper's proxy for total network load; this module makes
// the load *distribution* and the model's state transitions observable. A
// TraceSink attached to a Machine receives every charged message plus the
// model-level lifecycle events (value births/deaths, phase boundaries,
// resets) that the conformance checker (spatial/validate.hpp) enforces
// invariants over. The LoadMap sink routes each message along the
// dimension-ordered (row-first) Manhattan path and counts the traffic
// through every processor, giving per-PE congestion maps, hotspot lists,
// and an ASCII heatmap — the tooling behind the example_traffic_heatmap
// demo comparing the Z-order scan's balanced load against the 1-D tree
// scan's hotspots.
#pragma once

#include "spatial/clock.hpp"
#include "spatial/geometry.hpp"
#include "spatial/phase.hpp"

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace scm {

/// A charged message with its full cost context, as delivered to
/// TraceSink::on_send. `payload` is the critical-path clock the value
/// carried on departure; `arrival` is its clock on arrival, which for a
/// conforming machine equals payload.after_hop(distance).
///
/// The same struct is the unit of Machine::send_bulk batches: the caller
/// fills from/to/payload and the machine fills distance/arrival.
struct MessageEvent {
  Coord from{};
  Coord to{};
  index_t distance{0};
  Clock payload{};
  Clock arrival{};
};

/// One entry of a Machine::birth_bulk batch (GridArray::announce): a value
/// with clock `clock` becomes resident at `at` without a message.
struct BirthEvent {
  Coord at{};
  Clock clock{};
};

/// Observer of machine events. Attach per-machine with Machine::set_trace,
/// or process-wide with Machine::set_global_trace (how the test harness
/// attaches the conformance checker to every Machine a test creates).
/// Every hook except on_message defaults to a no-op, so sinks implement
/// only what they need.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// Called once per charged message (zero-length sends are free and not
  /// reported).
  virtual void on_message(Coord from, Coord to, index_t distance) = 0;

  /// Called once per charged message with the full clock context; fires
  /// together with on_message.
  virtual void on_send(const MessageEvent& e) { (void)e; }

  /// Called once per Machine::send_bulk batch containing at least one
  /// charged message. The batch MAY contain zero-length entries
  /// (distance == 0); those are free in the model and sinks must skip
  /// them, exactly as the scalar path never reports them. The default
  /// implementation replays the batch through on_message/on_send, so a
  /// sink that only implements the scalar hooks observes a stream
  /// indistinguishable from per-message charging; sinks with batchable
  /// counters (Profiler, LoadMap) override it to amortize the dispatch.
  virtual void on_send_bulk(std::span<const MessageEvent> batch) {
    for (const MessageEvent& e : batch) {
      if (e.distance == 0) continue;
      on_message(e.from, e.to, e.distance);
      on_send(e);
    }
  }

  /// `n` local compute operations were recorded (Machine::op). Free in
  /// the model's cost metrics; reported so profilers can attribute local
  /// work per phase.
  virtual void on_op(index_t n) { (void)n; }

  /// A value with clock `c` became resident at processor `at` without a
  /// message (input placement; Machine::birth).
  virtual void on_birth(Coord at, Clock c) {
    (void)at;
    (void)c;
  }

  /// The value resident at `at` was consumed or freed (Machine::death).
  virtual void on_death(Coord at) { (void)at; }

  /// A batch of value births (Machine::birth_bulk, e.g. one per element
  /// of GridArray::announce). Default replays per birth.
  virtual void on_birth_bulk(std::span<const BirthEvent> batch) {
    for (const BirthEvent& b : batch) on_birth(b.at, b.clock);
  }

  /// A batch of value deaths (Machine::death_bulk, e.g. GridArray::retire).
  /// Default replays per death.
  virtual void on_death_bulk(std::span<const Coord> batch) {
    for (const Coord c : batch) on_death(c);
  }

  /// A named cost-attribution phase was entered (Machine::PhaseScope).
  /// Phase events carry interned ids, not names, so sinks on the hot path
  /// (the conformance checker's epoch accounting) never touch strings;
  /// PhaseRegistry::instance().name(id) rematerializes the name when a
  /// sink needs it for reporting.
  virtual void on_phase_enter(PhaseId id) { (void)id; }

  /// The innermost phase was exited.
  virtual void on_phase_exit(PhaseId id) { (void)id; }

  /// The machine's counters were cleared (Machine construction or reset).
  virtual void on_reset() {}
};

/// Forwards every event to an ordered list of sinks, so several observers
/// (e.g. the conformance checker and the batch-independence checker the
/// test harness attaches together) can share one Machine::set_trace /
/// set_global_trace slot. Bulk events are forwarded as bulk events — NOT
/// replayed per message — so each child sees exactly the stream it would
/// see if attached directly. Sinks are not owned; nullptr entries are
/// skipped.
class FanoutSink final : public TraceSink {
 public:
  FanoutSink() = default;
  explicit FanoutSink(std::vector<TraceSink*> sinks);

  /// Appends a sink (ignored when nullptr).
  void add(TraceSink* sink);

  void on_message(Coord from, Coord to, index_t distance) override;
  void on_send(const MessageEvent& e) override;
  void on_send_bulk(std::span<const MessageEvent> batch) override;
  void on_op(index_t n) override;
  void on_birth(Coord at, Clock c) override;
  void on_birth_bulk(std::span<const BirthEvent> batch) override;
  void on_death(Coord at) override;
  void on_death_bulk(std::span<const Coord> batch) override;
  void on_phase_enter(PhaseId id) override;
  void on_phase_exit(PhaseId id) override;
  void on_reset() override;

 private:
  std::vector<TraceSink*> sinks_;
};

/// Accumulates per-processor traffic by routing every message along the
/// dimension-ordered Manhattan path (rows first, then columns), counting
/// one unit of load at every processor the message transits (endpoints
/// included).
class LoadMap final : public TraceSink {
 public:
  void on_message(Coord from, Coord to, index_t distance) override;

  /// Batched routing: one virtual dispatch per batch instead of two per
  /// message; per-processor counts are identical to the replayed stream.
  void on_send_bulk(std::span<const MessageEvent> batch) override;

  /// Traffic units that passed through processor `c`.
  [[nodiscard]] index_t load_at(Coord c) const;

  /// Total traffic (= sum of per-processor loads).
  [[nodiscard]] index_t total_load() const { return total_; }

  /// Number of messages observed.
  [[nodiscard]] index_t messages() const { return messages_; }

  /// Largest per-processor load (the congestion bottleneck).
  [[nodiscard]] index_t max_load() const { return max_load_; }

  /// The `k` most-loaded processors, descending (ties broken by
  /// coordinate). O(n log k) via partial sort — cheap for the small k a
  /// report shows even when millions of processors saw traffic.
  [[nodiscard]] std::vector<std::pair<Coord, index_t>> hotspots(
      std::size_t k) const;

  /// Nearest-rank p-th percentile (p in [0, 100]) of the load over the
  /// touched processors; 0 when no traffic was recorded. p = 100 is
  /// max_load(); report summaries use p50/p95/p99.
  [[nodiscard]] index_t percentile(double p) const;

  /// Coefficient of variation of the load over the touched processors —
  /// 0 means perfectly balanced traffic.
  [[nodiscard]] double imbalance() const;

  /// Renders an ASCII heatmap of the touched bounding box, downsampled to
  /// at most `max_side` characters per side. Levels " .:-=+*#%@" scale
  /// linearly with the bucket's maximum load.
  [[nodiscard]] std::string heatmap(index_t max_side = 32) const;

  void clear();

 private:
  struct CoordHash {
    std::size_t operator()(const std::pair<index_t, index_t>& p) const {
      return std::hash<std::uint64_t>{}(
          (static_cast<std::uint64_t>(p.first) << 32) ^
          static_cast<std::uint64_t>(p.second & 0xffffffff));
    }
  };

  void bump(Coord c);

  std::unordered_map<std::pair<index_t, index_t>, index_t, CoordHash> load_;
  index_t total_{0};
  index_t messages_{0};
  index_t max_load_{0};
  index_t min_row_{0};
  index_t max_row_{-1};
  index_t min_col_{0};
  index_t max_col_{-1};
};

}  // namespace scm
