#include "spatial/metrics.hpp"

#include <ostream>
#include <sstream>

namespace scm {

Metrics Metrics::since(const Metrics& earlier) const {
  Metrics out = *this;
  out.energy -= earlier.energy;
  out.messages -= earlier.messages;
  out.local_ops -= earlier.local_ops;
  return out;
}

std::string Metrics::str() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Metrics& m) {
  return os << "energy=" << m.energy << " messages=" << m.messages
            << " ops=" << m.local_ops << " depth=" << m.depth()
            << " distance=" << m.distance();
}

}  // namespace scm
