#include "spatial/phase.hpp"

#include <cassert>

namespace scm {

PhaseRegistry& PhaseRegistry::instance() {
  static PhaseRegistry registry;
  return registry;
}

PhaseId PhaseRegistry::intern(std::string_view name) {
  const auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  const auto id = static_cast<PhaseId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

PhaseId PhaseRegistry::find(std::string_view name) const {
  const auto it = ids_.find(name);
  return it == ids_.end() ? kNoPhase : it->second;
}

const std::string& PhaseRegistry::name(PhaseId id) const {
  assert(id < names_.size());
  return names_[id];
}

}  // namespace scm
