#include "spatial/zorder.hpp"

#include <cassert>

namespace scm {

namespace {

// Spreads the low 32 bits of v so that bit i moves to bit 2i.
std::uint64_t spread_bits(std::uint64_t v) {
  v &= 0xffffffffULL;
  v = (v | (v << 16)) & 0x0000ffff0000ffffULL;
  v = (v | (v << 8)) & 0x00ff00ff00ff00ffULL;
  v = (v | (v << 4)) & 0x0f0f0f0f0f0f0f0fULL;
  v = (v | (v << 2)) & 0x3333333333333333ULL;
  v = (v | (v << 1)) & 0x5555555555555555ULL;
  return v;
}

// Inverse of spread_bits: gathers every second bit back together.
std::uint64_t gather_bits(std::uint64_t v) {
  v &= 0x5555555555555555ULL;
  v = (v | (v >> 1)) & 0x3333333333333333ULL;
  v = (v | (v >> 2)) & 0x0f0f0f0f0f0f0f0fULL;
  v = (v | (v >> 4)) & 0x00ff00ff00ff00ffULL;
  v = (v | (v >> 8)) & 0x0000ffff0000ffffULL;
  v = (v | (v >> 16)) & 0x00000000ffffffffULL;
  return v;
}

}  // namespace

index_t zorder_encode(index_t row, index_t col) {
  assert(row >= 0 && col >= 0);
  const auto r = static_cast<std::uint64_t>(row);
  const auto c = static_cast<std::uint64_t>(col);
  return static_cast<index_t>((spread_bits(r) << 1) | spread_bits(c));
}

Offset2D zorder_decode(index_t z) {
  assert(z >= 0);
  const auto v = static_cast<std::uint64_t>(z);
  return Offset2D{static_cast<index_t>(gather_bits(v >> 1)),
                  static_cast<index_t>(gather_bits(v))};
}

Coord zorder_coord(const Rect& rect, index_t i) {
  assert(rect.square() && is_pow2(rect.rows));
  assert(i >= 0 && i < rect.size());
  const Offset2D off = zorder_decode(i);
  return rect.at(off.row, off.col);
}

index_t zorder_index(const Rect& rect, Coord c) {
  assert(rect.square() && is_pow2(rect.rows));
  assert(rect.contains(c));
  return zorder_encode(c.row - rect.row0, c.col - rect.col0);
}

index_t zorder_curve_length(index_t side) {
  assert(is_pow2(side));
  index_t total = 0;
  Offset2D prev{0, 0};
  for (index_t i = 1; i < side * side; ++i) {
    const Offset2D cur = zorder_decode(i);
    total += std::abs(cur.row - prev.row) + std::abs(cur.col - prev.col);
    prev = cur;
  }
  return total;
}

}  // namespace scm
