#include "spatial/zorder.hpp"

#include <array>
#include <cassert>
#include <cstdint>

namespace scm {

namespace {

// Byte-at-a-time Morton tables: kSpread[b] interleaves a zero bit after
// every bit of the byte b (bit i of b lands at bit 2i), kGather[b] is the
// inverse restricted to the even bit positions of b. Four table loads
// replace the five-step parallel-prefix shuffle per encode/decode, which
// is what makes a cached GridArray coordinate sweep an array walk.
constexpr std::uint16_t spread_byte(std::uint32_t b) {
  std::uint32_t v = b & 0xffU;
  v = (v | (v << 4)) & 0x0f0fU;
  v = (v | (v << 2)) & 0x3333U;
  v = (v | (v << 1)) & 0x5555U;
  return static_cast<std::uint16_t>(v);
}

constexpr std::uint8_t gather_byte(std::uint32_t b) {
  std::uint32_t v = b & 0x55U;
  v = (v | (v >> 1)) & 0x33U;
  v = (v | (v >> 2)) & 0x0fU;
  return static_cast<std::uint8_t>(v);
}

template <class T, T (*Fn)(std::uint32_t)>
constexpr std::array<T, 256> make_lut() {
  std::array<T, 256> lut{};
  for (std::uint32_t b = 0; b < 256; ++b) lut[b] = Fn(b);
  return lut;
}

constexpr std::array<std::uint16_t, 256> kSpread =
    make_lut<std::uint16_t, spread_byte>();
// kGather maps a byte to the 4-bit value held in its even bit positions;
// indexing it with (v >> k) & 0xff gathers one byte of interleaved input.
constexpr std::array<std::uint8_t, 256> kGather =
    make_lut<std::uint8_t, gather_byte>();

// Spreads the low 32 bits of v so that bit i moves to bit 2i.
std::uint64_t spread_bits(std::uint64_t v) {
  std::uint64_t out = 0;
  for (int byte = 0; byte < 4; ++byte) {
    out |= static_cast<std::uint64_t>(kSpread[(v >> (8 * byte)) & 0xffU])
           << (16 * byte);
  }
  return out;
}

// Inverse of spread_bits: gathers every second bit back together.
std::uint64_t gather_bits(std::uint64_t v) {
  std::uint64_t out = 0;
  for (int byte = 0; byte < 8; ++byte) {
    out |= static_cast<std::uint64_t>(kGather[(v >> (8 * byte)) & 0xffU])
           << (4 * byte);
  }
  return out;
}

}  // namespace

index_t zorder_encode(index_t row, index_t col) {
  assert(row >= 0 && col >= 0);
  const auto r = static_cast<std::uint64_t>(row);
  const auto c = static_cast<std::uint64_t>(col);
  return static_cast<index_t>((spread_bits(r) << 1) | spread_bits(c));
}

Offset2D zorder_decode(index_t z) {
  assert(z >= 0);
  const auto v = static_cast<std::uint64_t>(z);
  return Offset2D{static_cast<index_t>(gather_bits(v >> 1)),
                  static_cast<index_t>(gather_bits(v))};
}

Coord zorder_coord(const Rect& rect, index_t i) {
  assert(rect.square() && is_pow2(rect.rows));
  assert(i >= 0 && i < rect.size());
  const Offset2D off = zorder_decode(i);
  return rect.at(off.row, off.col);
}

index_t zorder_index(const Rect& rect, Coord c) {
  assert(rect.square() && is_pow2(rect.rows));
  assert(rect.contains(c));
  return zorder_encode(c.row - rect.row0, c.col - rect.col0);
}

index_t zorder_curve_length(index_t side) {
  assert(is_pow2(side));
  index_t total = 0;
  Offset2D prev{0, 0};
  for (index_t i = 1; i < side * side; ++i) {
    const Offset2D cur = zorder_decode(i);
    total += std::abs(cur.row - prev.row) + std::abs(cur.col - prev.col);
    prev = cur;
  }
  return total;
}

}  // namespace scm
