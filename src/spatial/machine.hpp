// The Spatial Computer Model machine: an unbounded 2-D grid of processors
// with O(1) local memory, where sending a message costs its Manhattan
// distance (Section III of the paper).
//
// The Machine is a *cost-exact simulator*: algorithms execute host-side but
// every inter-processor message is charged through Machine::send, which
//   * adds the Manhattan distance to the global energy counter,
//   * advances the value's critical-path clock by (1 message, d distance),
//   * records the running maximum clock (= the computation's depth and
//     distance).
// Local computation joins input clocks (Clock::join) and is charged only to
// the informational local_ops counter, matching the model in which only
// messages cost energy/depth/distance.
//
// Named phases give per-stage cost breakdowns for benchmarks and ablations.
// Phase names are interned into dense PhaseIds (spatial/phase.hpp) and the
// attribution engine works purely on integers: charging a message is
// O(active distinct phases) integer adds with zero string hashing or
// comparison. The name-level deduplication recursive algorithms need (a
// phase stacked at every recursion level is attributed once) happens at
// phase transitions, not per event.
#pragma once

#include "spatial/clock.hpp"
#include "spatial/geometry.hpp"
#include "spatial/metrics.hpp"
#include "spatial/phase.hpp"

#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace scm {

class TraceSink;

/// Cost-accounting simulator of the Spatial Computer Model.
class Machine {
 public:
  /// A fresh machine announces itself to the global trace sink (on_reset),
  /// so cross-machine residency accounting starts from a clean epoch.
  Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  /// Charges one message from `from` to `to` carrying a value whose
  /// critical-path clock is `payload`; returns the clock of the value on
  /// arrival. A zero-length send (from == to) is free: the model only
  /// prices actual wire traversals, and "sending to yourself" is local.
  Clock send(Coord from, Coord to, Clock payload);

  /// Records `n` local compute operations (free in the model's metrics;
  /// reported to trace sinks via TraceSink::on_op for per-phase work
  /// attribution).
  void op(index_t n = 1);

  /// Records that a value with clock `c` now exists (used when a clock is
  /// produced by pure local combination so the running maximum stays
  /// correct even if the value is never sent again).
  void observe(Clock c);

  /// Declares that a value with clock `c` is resident at processor `at`
  /// without a message having delivered it (input placement). Free in the
  /// model's metrics; reported to trace sinks so residency accounting (the
  /// conformance checker's O(1)-memory enforcement) sees it.
  void birth(Coord at, Clock c = Clock{});

  /// Declares that the value resident at processor `at` has been consumed
  /// or freed. Free in the model's metrics; reported to trace sinks.
  void death(Coord at);

  /// Costs accumulated since construction (or the last reset).
  [[nodiscard]] const Metrics& metrics() const { return totals_; }

  /// Clears all counters and per-phase records.
  void reset();

  /// Per-phase cost records, keyed by phase name — a snapshot materialized
  /// from the id-indexed engine (names sorted, as the historical map API
  /// guaranteed). Nested phases accumulate into every active scope, so
  /// "sort" includes its "sort/merge" children; a phase appears once it
  /// has at least one attributed event.
  [[nodiscard]] std::map<std::string, Metrics> phases() const;

  /// Costs recorded under a phase name; a zero Metrics if never entered.
  /// The reference is stable across further charging and phase
  /// transitions (per-phase records never move), so hot query paths pay
  /// no Metrics copy.
  [[nodiscard]] const Metrics& phase(std::string_view name) const;

  /// Attaches a message observer (e.g. a LoadMap building per-processor
  /// congestion maps); pass nullptr to detach. Not owned. Zero-length
  /// sends are free in the model and are not reported.
  void set_trace(TraceSink* sink) { trace_ = sink; }

  /// Process-wide trace sink receiving the events of *every* Machine, in
  /// addition to any per-machine sink. Not owned; pass nullptr to detach.
  /// This is how the test harness attaches the conformance checker to all
  /// machines a test creates without threading a sink through every call.
  static void set_global_trace(TraceSink* sink);
  [[nodiscard]] static TraceSink* global_trace();

  /// Enters a named cost-attribution phase (interning the name). Prefer
  /// the RAII PhaseScope; the explicit form exists for bindings and for
  /// conformance tests that deliberately leave a phase unbalanced.
  void begin_phase(std::string_view name);

  /// Enters a phase by pre-interned id (PhaseRegistry::intern) — the
  /// zero-string-work form for hot recursive call sites.
  void begin_phase(PhaseId id);

  /// Exits the innermost phase. No-op on an empty phase stack (the
  /// imbalance is the conformance checker's to report, not UB).
  void end_phase();

  /// RAII scope that attributes all costs charged during its lifetime to
  /// a phase (in addition to any enclosing phases and the global totals).
  class PhaseScope {
   public:
    PhaseScope(Machine& m, std::string_view name);
    PhaseScope(Machine& m, PhaseId id);
    ~PhaseScope();
    PhaseScope(const PhaseScope&) = delete;
    PhaseScope& operator=(const PhaseScope&) = delete;

   private:
    Machine& machine_;
  };

 private:
  void charge(index_t energy, index_t messages);

  /// The per-phase record for `id`, marking it as touched (= it will
  /// appear in phases()). Precondition: `id` is on the phase stack, so the
  /// per-id tables were sized by begin_phase.
  Metrics& slot(PhaseId id) {
    if (touched_flag_[id] == 0) {
      touched_flag_[id] = 1;
      touched_.push_back(id);
    }
    return phase_totals_[id];
  }

  /// Applies `fn` to every attached sink (per-machine, then global).
  template <class Fn>
  void emit(Fn&& fn) {
    if (trace_ != nullptr) fn(*trace_);
    if (global_trace_ != nullptr && global_trace_ != trace_) {
      fn(*global_trace_);
    }
  }

  Metrics totals_{};

  // The attribution engine. `active_` is the precomputed set of distinct
  // phase ids currently on the stack, ordered by the stack position of
  // each id's first (outermost) occurrence; `stack_count_[id]` counts the
  // occurrences of `id` on the stack. begin/end_phase maintain both in
  // O(1), so the per-event loops in charge/op/observe touch each distinct
  // active phase exactly once with no dedup scan. All id-indexed tables
  // are sized to the PhaseRegistry on demand at phase entry; per-phase
  // Metrics live in a deque so references handed out by phase() stay
  // valid as the id space grows.
  std::vector<PhaseId> phase_stack_;
  std::vector<PhaseId> active_;
  std::vector<index_t> stack_count_;
  std::deque<Metrics> phase_totals_;
  std::vector<char> touched_flag_;
  std::vector<PhaseId> touched_;

  TraceSink* trace_{nullptr};

  static TraceSink* global_trace_;
};

}  // namespace scm
