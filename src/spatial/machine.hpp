// The Spatial Computer Model machine: an unbounded 2-D grid of processors
// with O(1) local memory, where sending a message costs its Manhattan
// distance (Section III of the paper).
//
// The Machine is a *cost-exact simulator*: algorithms execute host-side but
// every inter-processor message is charged through Machine::send, which
//   * adds the Manhattan distance to the global energy counter,
//   * advances the value's critical-path clock by (1 message, d distance),
//   * records the running maximum clock (= the computation's depth and
//     distance).
// Local computation joins input clocks (Clock::join) and is charged only to
// the informational local_ops counter, matching the model in which only
// messages cost energy/depth/distance.
//
// Named phases give per-stage cost breakdowns for benchmarks and ablations.
#pragma once

#include "spatial/clock.hpp"
#include "spatial/geometry.hpp"
#include "spatial/metrics.hpp"

#include <map>
#include <string>
#include <vector>

namespace scm {

class TraceSink;

/// Cost-accounting simulator of the Spatial Computer Model.
class Machine {
 public:
  Machine() = default;

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  /// Charges one message from `from` to `to` carrying a value whose
  /// critical-path clock is `payload`; returns the clock of the value on
  /// arrival. A zero-length send (from == to) is free: the model only
  /// prices actual wire traversals, and "sending to yourself" is local.
  Clock send(Coord from, Coord to, Clock payload);

  /// Records `n` local compute operations (free in the model's metrics).
  void op(index_t n = 1);

  /// Records that a value with clock `c` now exists (used when a clock is
  /// produced by pure local combination so the running maximum stays
  /// correct even if the value is never sent again).
  void observe(Clock c);

  /// Costs accumulated since construction (or the last reset).
  [[nodiscard]] const Metrics& metrics() const { return totals_; }

  /// Clears all counters and per-phase records.
  void reset();

  /// Per-phase cost records, keyed by phase name. Nested phases accumulate
  /// into every active scope, so "sort" includes its "sort/merge" children.
  [[nodiscard]] const std::map<std::string, Metrics>& phases() const {
    return phase_totals_;
  }

  /// Costs recorded under a phase name; zero metrics if never entered.
  [[nodiscard]] Metrics phase(const std::string& name) const;

  /// Attaches a message observer (e.g. a LoadMap building per-processor
  /// congestion maps); pass nullptr to detach. Not owned. Zero-length
  /// sends are free in the model and are not reported.
  void set_trace(TraceSink* sink) { trace_ = sink; }

  /// RAII scope that attributes all costs charged during its lifetime to
  /// `name` (in addition to any enclosing phases and the global totals).
  class PhaseScope {
   public:
    PhaseScope(Machine& m, std::string name);
    ~PhaseScope();
    PhaseScope(const PhaseScope&) = delete;
    PhaseScope& operator=(const PhaseScope&) = delete;

   private:
    Machine& machine_;
  };

 private:
  void charge(index_t energy, index_t messages);

  Metrics totals_{};
  std::vector<std::string> phase_stack_;
  std::map<std::string, Metrics> phase_totals_;
  TraceSink* trace_{nullptr};
};

}  // namespace scm
