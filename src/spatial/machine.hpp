// The Spatial Computer Model machine: an unbounded 2-D grid of processors
// with O(1) local memory, where sending a message costs its Manhattan
// distance (Section III of the paper).
//
// The Machine is a *cost-exact simulator*: algorithms execute host-side but
// every inter-processor message is charged through Machine::send, which
//   * adds the Manhattan distance to the global energy counter,
//   * advances the value's critical-path clock by (1 message, d distance),
//   * records the running maximum clock (= the computation's depth and
//     distance).
// Local computation joins input clocks (Clock::join) and is charged only to
// the informational local_ops counter, matching the model in which only
// messages cost energy/depth/distance.
//
// Named phases give per-stage cost breakdowns for benchmarks and ablations.
// Phase names are interned into dense PhaseIds (spatial/phase.hpp) and the
// attribution engine works purely on integers: charging a message is
// O(active distinct phases) integer adds with zero string hashing or
// comparison. The name-level deduplication recursive algorithms need (a
// phase stacked at every recursion level is attributed once) happens at
// phase transitions, not per event.
#pragma once

#include "spatial/clock.hpp"
#include "spatial/geometry.hpp"
#include "spatial/metrics.hpp"
#include "spatial/phase.hpp"
#include "spatial/trace.hpp"

#include <cstdint>
#include <deque>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace scm {

/// Cost-accounting simulator of the Spatial Computer Model.
class Machine {
 public:
  /// A fresh machine announces itself to the global trace sink (on_reset),
  /// so cross-machine residency accounting starts from a clean epoch.
  Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  /// Charges one message from `from` to `to` carrying a value whose
  /// critical-path clock is `payload`; returns the clock of the value on
  /// arrival. A zero-length send (from == to) is free: the model only
  /// prices actual wire traversals, and "sending to yourself" is local.
  Clock send(Coord from, Coord to, Clock payload);

  /// Bulk-charging fast path: charges every message of `batch` as one
  /// batch. The caller fills each entry's `from`, `to`, and `payload`;
  /// the machine fills `distance` and `arrival` (the returned clocks).
  /// Zero-length entries are free, exactly as in the scalar path.
  ///
  /// Semantics are *metrics-identical* to calling send() per entry in
  /// batch order: same totals, same per-phase records, same events as
  /// observed through the default TraceSink replay. The speedup comes
  /// from amortization: energy/messages/clock maxima accumulate in a
  /// tight local loop, the active-phase set is resolved once per batch
  /// (phases cannot change mid-batch — the whole batch is attributed to
  /// the phase set active at this call), and attached sinks receive one
  /// on_send_bulk event instead of up to two virtual dispatches per
  /// message. No event is emitted when every entry is zero-length.
  ///
  /// When bulk charging is disabled (set_bulk_charging(false) — the A/B
  /// reference mode), the batch decomposes into scalar send() calls.
  void send_bulk(std::span<MessageEvent> batch);

  /// Records `n` local compute operations (free in the model's metrics;
  /// reported to trace sinks via TraceSink::on_op for per-phase work
  /// attribution).
  void op(index_t n = 1);

  /// Bulk form of op(): records `n` local operations accumulated by a
  /// batched loop as one charged event. Metrics-identical to `n` op()
  /// calls (local_ops simply sums); sinks see one on_op(n) instead of n.
  void op_bulk(index_t n);

  /// Records that a value with clock `c` now exists (used when a clock is
  /// produced by pure local combination so the running maximum stays
  /// correct even if the value is never sent again).
  void observe(Clock c);

  /// Declares that a value with clock `c` is resident at processor `at`
  /// without a message having delivered it (input placement). Free in the
  /// model's metrics; reported to trace sinks so residency accounting (the
  /// conformance checker's O(1)-memory enforcement) sees it.
  void birth(Coord at, Clock c = Clock{});

  /// Declares that the value resident at processor `at` has been consumed
  /// or freed. Free in the model's metrics; reported to trace sinks.
  void death(Coord at);

  /// Bulk value placement (GridArray::announce): observes the join of all
  /// birth clocks once and emits a single on_birth_bulk event.
  /// Metrics-identical to per-entry birth() in batch order.
  void birth_bulk(std::span<const BirthEvent> batch);

  /// Bulk value retirement (GridArray::retire): one on_death_bulk event.
  void death_bulk(std::span<const Coord> batch);

  /// Process-wide switch between the bulk fast path (default) and the
  /// scalar reference path, in which every *_bulk call decomposes into
  /// its per-event scalar form. The two paths are metrics-identical by
  /// contract; the A/B equivalence harness (spatial/bulk_ab.hpp) runs
  /// algorithms under both and asserts it.
  static void set_bulk_charging(bool enabled);
  [[nodiscard]] static bool bulk_charging();

  /// Costs accumulated since construction (or the last reset).
  [[nodiscard]] const Metrics& metrics() const { return totals_; }

  /// Clears all counters and per-phase records.
  void reset();

  /// Per-phase cost records, keyed by phase name — a snapshot materialized
  /// from the id-indexed engine (names sorted, as the historical map API
  /// guaranteed). Nested phases accumulate into every active scope, so
  /// "sort" includes its "sort/merge" children; a phase appears once it
  /// has at least one attributed event. The materialization is cached and
  /// invalidated whenever any per-phase record mutates (charging under an
  /// active phase, or reset), so report paths that query it repeatedly —
  /// cost_report, the run-report exporter, the A/B harness — pay the
  /// string-keyed map build once per change, not once per call. Registry
  /// growth alone cannot change the output (names are immutable per id and
  /// a phase appears only once touched), so it does not invalidate. The
  /// reference stays valid until the Machine is destroyed; its *contents*
  /// refresh on the next phases() call after a mutation.
  [[nodiscard]] const std::map<std::string, Metrics>& phases() const;

  /// Costs recorded under a phase name; a zero Metrics if never entered.
  /// The reference is stable across further charging and phase
  /// transitions (per-phase records never move), so hot query paths pay
  /// no Metrics copy.
  [[nodiscard]] const Metrics& phase(std::string_view name) const;

  /// Id-indexed form of phase(): costs recorded under the interned phase
  /// `id`, zero Metrics if never touched. Stable reference; the
  /// zero-string-work accessor for hot query loops.
  [[nodiscard]] const Metrics& phase(PhaseId id) const;

  /// The ids of every phase with at least one attributed event since the
  /// last reset, in first-touch order. With phase(PhaseId) this iterates
  /// per-phase records without materializing the phases() map — use it
  /// (or phase(name)) on hot query paths; phases() copies every record
  /// into a freshly built string-keyed map on each call and exists for
  /// report-time snapshots.
  [[nodiscard]] std::span<const PhaseId> touched_phases() const {
    return touched_;
  }

  /// Attaches a message observer (e.g. a LoadMap building per-processor
  /// congestion maps); pass nullptr to detach. Not owned. Zero-length
  /// sends are free in the model and are not reported.
  void set_trace(TraceSink* sink) { trace_ = sink; }

  /// Process-wide trace sink receiving the events of *every* Machine, in
  /// addition to any per-machine sink. Not owned; pass nullptr to detach.
  /// This is how the test harness attaches the conformance checker to all
  /// machines a test creates without threading a sink through every call.
  static void set_global_trace(TraceSink* sink);
  [[nodiscard]] static TraceSink* global_trace();

  /// Enters a named cost-attribution phase (interning the name). Prefer
  /// the RAII PhaseScope; the explicit form exists for bindings and for
  /// conformance tests that deliberately leave a phase unbalanced.
  void begin_phase(std::string_view name);

  /// Enters a phase by pre-interned id (PhaseRegistry::intern) — the
  /// zero-string-work form for hot recursive call sites.
  void begin_phase(PhaseId id);

  /// Exits the innermost phase. No-op on an empty phase stack (the
  /// imbalance is the conformance checker's to report, not UB).
  void end_phase();

  /// RAII scope that attributes all costs charged during its lifetime to
  /// a phase (in addition to any enclosing phases and the global totals).
  class PhaseScope {
   public:
    PhaseScope(Machine& m, std::string_view name);
    PhaseScope(Machine& m, PhaseId id);
    ~PhaseScope();
    PhaseScope(const PhaseScope&) = delete;
    PhaseScope& operator=(const PhaseScope&) = delete;

   private:
    Machine& machine_;
  };

 private:
  void charge(index_t energy, index_t messages);

  /// One merged flush of a send batch into the totals and every active
  /// phase — the single code path shared by the serial bulk loop and the
  /// parallel engine's merged aggregate, so both are bit-identical by
  /// construction.
  void apply_send_aggregate(index_t energy, index_t messages, Clock max);

  /// The per-phase record for `id`, marking it as touched (= it will
  /// appear in phases()). Precondition: `id` is on the phase stack, so the
  /// per-id tables were sized by begin_phase. Callers mutate the returned
  /// record, so this is the phases()-cache invalidation point.
  Metrics& slot(PhaseId id) {
    ++phases_version_;
    if (touched_flag_[id] == 0) {
      touched_flag_[id] = 1;
      touched_.push_back(id);
    }
    return phase_totals_[id];
  }

  /// Applies `fn` to every attached sink (per-machine, then global).
  template <class Fn>
  void emit(Fn&& fn) {
    if (trace_ != nullptr) fn(*trace_);
    if (global_trace_ != nullptr && global_trace_ != trace_) {
      fn(*global_trace_);
    }
  }

  Metrics totals_{};

  // The attribution engine. `active_` is the precomputed set of distinct
  // phase ids currently on the stack, ordered by the stack position of
  // each id's first (outermost) occurrence; `stack_count_[id]` counts the
  // occurrences of `id` on the stack. begin/end_phase maintain both in
  // O(1), so the per-event loops in charge/op/observe touch each distinct
  // active phase exactly once with no dedup scan. All id-indexed tables
  // are sized to the PhaseRegistry on demand at phase entry; per-phase
  // Metrics live in a deque so references handed out by phase() stay
  // valid as the id space grows.
  std::vector<PhaseId> phase_stack_;
  std::vector<PhaseId> active_;
  std::vector<index_t> stack_count_;
  std::deque<Metrics> phase_totals_;
  std::vector<char> touched_flag_;
  std::vector<PhaseId> touched_;

  // phases() cache: rebuilt when phases_version_ (bumped on any per-phase
  // record mutation — slot() and reset()) outruns the cached version.
  std::uint64_t phases_version_{0};
  mutable std::map<std::string, Metrics> phases_cache_;
  mutable std::uint64_t phases_cache_version_{~std::uint64_t{0}};

  TraceSink* trace_{nullptr};

  static TraceSink* global_trace_;
};

}  // namespace scm
