// The Spatial Computer Model machine: an unbounded 2-D grid of processors
// with O(1) local memory, where sending a message costs its Manhattan
// distance (Section III of the paper).
//
// The Machine is a *cost-exact simulator*: algorithms execute host-side but
// every inter-processor message is charged through Machine::send, which
//   * adds the Manhattan distance to the global energy counter,
//   * advances the value's critical-path clock by (1 message, d distance),
//   * records the running maximum clock (= the computation's depth and
//     distance).
// Local computation joins input clocks (Clock::join) and is charged only to
// the informational local_ops counter, matching the model in which only
// messages cost energy/depth/distance.
//
// Named phases give per-stage cost breakdowns for benchmarks and ablations.
#pragma once

#include "spatial/clock.hpp"
#include "spatial/geometry.hpp"
#include "spatial/metrics.hpp"

#include <map>
#include <string>
#include <vector>

namespace scm {

class TraceSink;

/// Cost-accounting simulator of the Spatial Computer Model.
class Machine {
 public:
  /// A fresh machine announces itself to the global trace sink (on_reset),
  /// so cross-machine residency accounting starts from a clean epoch.
  Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  /// Charges one message from `from` to `to` carrying a value whose
  /// critical-path clock is `payload`; returns the clock of the value on
  /// arrival. A zero-length send (from == to) is free: the model only
  /// prices actual wire traversals, and "sending to yourself" is local.
  Clock send(Coord from, Coord to, Clock payload);

  /// Records `n` local compute operations (free in the model's metrics).
  void op(index_t n = 1);

  /// Records that a value with clock `c` now exists (used when a clock is
  /// produced by pure local combination so the running maximum stays
  /// correct even if the value is never sent again).
  void observe(Clock c);

  /// Declares that a value with clock `c` is resident at processor `at`
  /// without a message having delivered it (input placement). Free in the
  /// model's metrics; reported to trace sinks so residency accounting (the
  /// conformance checker's O(1)-memory enforcement) sees it.
  void birth(Coord at, Clock c = Clock{});

  /// Declares that the value resident at processor `at` has been consumed
  /// or freed. Free in the model's metrics; reported to trace sinks.
  void death(Coord at);

  /// Costs accumulated since construction (or the last reset).
  [[nodiscard]] const Metrics& metrics() const { return totals_; }

  /// Clears all counters and per-phase records.
  void reset();

  /// Per-phase cost records, keyed by phase name. Nested phases accumulate
  /// into every active scope, so "sort" includes its "sort/merge" children.
  [[nodiscard]] const std::map<std::string, Metrics>& phases() const {
    return phase_totals_;
  }

  /// Costs recorded under a phase name; a zero Metrics if never entered.
  /// Returns a reference into the phase table (std::map nodes are stable),
  /// so hot query paths pay no Metrics copy.
  [[nodiscard]] const Metrics& phase(const std::string& name) const;

  /// Attaches a message observer (e.g. a LoadMap building per-processor
  /// congestion maps); pass nullptr to detach. Not owned. Zero-length
  /// sends are free in the model and are not reported.
  void set_trace(TraceSink* sink) { trace_ = sink; }

  /// Process-wide trace sink receiving the events of *every* Machine, in
  /// addition to any per-machine sink. Not owned; pass nullptr to detach.
  /// This is how the test harness attaches the conformance checker to all
  /// machines a test creates without threading a sink through every call.
  static void set_global_trace(TraceSink* sink);
  [[nodiscard]] static TraceSink* global_trace();

  /// Enters a named cost-attribution phase. Prefer the RAII PhaseScope;
  /// the explicit form exists for bindings and for conformance tests that
  /// deliberately leave a phase unbalanced.
  void begin_phase(std::string name);

  /// Exits the innermost phase. No-op on an empty phase stack (the
  /// imbalance is the conformance checker's to report, not UB).
  void end_phase();

  /// RAII scope that attributes all costs charged during its lifetime to
  /// `name` (in addition to any enclosing phases and the global totals).
  class PhaseScope {
   public:
    PhaseScope(Machine& m, std::string name);
    ~PhaseScope();
    PhaseScope(const PhaseScope&) = delete;
    PhaseScope& operator=(const PhaseScope&) = delete;

   private:
    Machine& machine_;
  };

 private:
  void charge(index_t energy, index_t messages);

  /// Applies `fn` to every attached sink (per-machine, then global).
  template <class Fn>
  void emit(Fn&& fn) {
    if (trace_ != nullptr) fn(*trace_);
    if (global_trace_ != nullptr && global_trace_ != trace_) {
      fn(*global_trace_);
    }
  }

  Metrics totals_{};
  std::vector<std::string> phase_stack_;
  std::map<std::string, Metrics> phase_totals_;
  TraceSink* trace_{nullptr};

  static TraceSink* global_trace_;
};

}  // namespace scm
