// The Z-order (Morton) space-filling curve of Section III.
//
// The paper defines it recursively: traverse the four quadrants of a square
// grid in order — top two quadrants first, left to right, then the bottom
// two, left to right. Equivalently, the Z-index interleaves the bits of the
// (row, col) offset with row bits in the more significant positions.
//
// Observation 1 (paper): sending one message along each consecutive edge of
// the Z-order traversal of a sqrt(n) x sqrt(n) subgrid costs O(n) energy.
// Benchmarked by bench/bench_zorder_curve.
#pragma once

#include "spatial/geometry.hpp"

namespace scm {

/// Interleaves the bits of (row, col) into the Z-order index. The curve
/// visits (0,0), (0,1), (1,0), (1,1), then recursively each quadrant, so
/// row bits occupy the odd (more significant of each pair) positions.
[[nodiscard]] index_t zorder_encode(index_t row, index_t col);

/// Offset of the i-th processor along the Z-order curve; inverse of
/// zorder_encode.
struct Offset2D {
  index_t row{0};
  index_t col{0};
  friend bool operator==(const Offset2D&, const Offset2D&) = default;
};
[[nodiscard]] Offset2D zorder_decode(index_t z);

/// Coordinate of the i-th processor of a square power-of-two rect in
/// Z-order (i in [0, rect.size())).
[[nodiscard]] Coord zorder_coord(const Rect& rect, index_t i);

/// Z-order index of coordinate `c` within the square power-of-two rect.
[[nodiscard]] index_t zorder_index(const Rect& rect, Coord c);

/// Total Manhattan length of the Z-order traversal of a side x side grid
/// (the sum over consecutive curve positions of their distance). This is
/// the energy of Observation 1 and is Theta(side^2).
[[nodiscard]] index_t zorder_curve_length(index_t side);

}  // namespace scm
