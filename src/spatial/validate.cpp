#include "spatial/validate.hpp"

#include "spatial/machine.hpp"
#include "spatial/metrics.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>

namespace scm {

const char* to_string(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kMemoryCapExceeded:
      return "memory-cap-exceeded";
    case ViolationKind::kNonMonotoneClock:
      return "non-monotone-clock";
    case ViolationKind::kCorruptDistance:
      return "corrupt-distance";
    case ViolationKind::kSendFromDeadCell:
      return "send-from-dead-cell";
    case ViolationKind::kIllegalCoordinate:
      return "illegal-coordinate";
    case ViolationKind::kUnbalancedPhase:
      return "unbalanced-phase";
    case ViolationKind::kEnergyMismatch:
      return "energy-mismatch";
    case ViolationKind::kMessageCountMismatch:
      return "message-count-mismatch";
    case ViolationKind::kClockMismatch:
      return "clock-mismatch";
  }
  return "unknown-violation";
}

namespace {

std::ostream& operator<<(std::ostream& os, const MessageEvent& e) {
  return os << e.from << " -> " << e.to << " d=" << e.distance << " clock=("
            << e.payload.depth << "," << e.payload.distance << ")->("
            << e.arrival.depth << "," << e.arrival.distance << ")";
}

void format_violation(std::ostream& os, const Violation& v) {
  os << to_string(v.kind) << " in phase \"" << v.phase << "\" at " << v.at
     << ": " << v.detail << "\n";
  if (!v.backtrace.empty()) {
    os << "  message backtrace (oldest first):\n";
    for (const MessageEvent& e : v.backtrace) os << "    " << e << "\n";
  }
}

}  // namespace

index_t ConformanceReport::count(ViolationKind kind) const {
  index_t n = 0;
  for (const Violation& v : violations) {
    if (v.kind == kind) ++n;
  }
  return n;
}

std::string ConformanceReport::str() const {
  std::ostringstream os;
  if (ok()) {
    os << "conformance: ok (" << messages << " messages, energy " << energy
       << ", peak residency " << peak_residency << ")\n";
    return os.str();
  }
  os << "conformance: " << violations.size() << " violation(s)\n";
  for (const Violation& v : violations) format_violation(os, v);
  return os.str();
}

bool ConformanceChecker::strict_model_default() {
#ifdef SCM_STRICT_MODEL
  return true;
#else
  const char* env = std::getenv("SCM_STRICT_MODEL");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
#endif
}

ConformanceChecker::ConformanceChecker(Config config)
    : config_(std::move(config)) {
  ring_.reserve(config_.backtrace_capacity);
}

std::string ConformanceChecker::current_phase() const {
  return phase_stack_.empty()
             ? std::string("<top>")
             : PhaseRegistry::instance().name(phase_stack_.back());
}

void ConformanceChecker::record(ViolationKind kind, Coord at,
                                std::string detail) {
  Violation v{kind, current_phase(), at, std::move(detail), {}};
  // Unroll the ring buffer oldest-first.
  v.backtrace.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    v.backtrace.push_back(ring_[(ring_next_ + i) % ring_.size()]);
  }
  if (config_.strict) {
    std::ostringstream os;
    os << "SCM_STRICT_MODEL: model conformance violation\n";
    format_violation(os, v);
    std::fputs(os.str().c_str(), stderr);
    std::fflush(stderr);
    std::abort();
  }
  report_.violations.push_back(std::move(v));
}

void ConformanceChecker::new_epoch() {
  residency_.clear();
  dead_.clear();
}

void ConformanceChecker::on_message(Coord from, Coord to, index_t distance) {
  // All message checks key off the richer on_send event, which the Machine
  // emits alongside this one.
  (void)from;
  (void)to;
  (void)distance;
}

void ConformanceChecker::on_send(const MessageEvent& e) {
  // Geometry: the reported distance must be the endpoints' Manhattan
  // distance, and zero-length sends are free — never reported.
  if (e.distance < 1 || e.distance != manhattan(e.from, e.to)) {
    std::ostringstream os;
    os << "reported distance " << e.distance << " for " << e.from << " -> "
       << e.to << " (manhattan " << manhattan(e.from, e.to) << ")";
    record(ViolationKind::kCorruptDistance, e.from, os.str());
  }
  // Clocks: components never negative, and each hop advances the clock by
  // exactly (1 message, distance).
  const Clock expected = e.payload.after_hop(e.distance);
  if (e.payload.depth < 0 || e.payload.distance < 0 ||
      e.arrival != expected) {
    std::ostringstream os;
    os << "payload (" << e.payload.depth << "," << e.payload.distance
       << ") over distance " << e.distance << " must arrive at ("
       << expected.depth << "," << expected.distance << "), got ("
       << e.arrival.depth << "," << e.arrival.distance << ")";
    record(ViolationKind::kNonMonotoneClock, e.to, os.str());
  }
  // Arena.
  if (config_.arena) {
    for (const Coord c : {e.from, e.to}) {
      if (!config_.arena->contains(c)) {
        std::ostringstream os;
        os << "endpoint " << c << " outside arena " << config_.arena->str();
        record(ViolationKind::kIllegalCoordinate, c, os.str());
      }
    }
  }
  // Liveness: a retired cell holds no value to send. Cells never seen
  // before are assumed to hold inputs (inputs pre-reside on the grid).
  if (dead_.contains(e.from)) {
    record(ViolationKind::kSendFromDeadCell, e.from,
           "send from a processor whose value was retired in this epoch");
  }
  // Residency: the arriving word now lives at the destination.
  dead_.erase(e.to);
  index_t& words = residency_[e.to];
  ++words;
  report_.peak_residency = std::max(report_.peak_residency, words);
  if (words == config_.live_word_cap + 1) {
    std::ostringstream os;
    os << "processor accumulated " << words
       << " live words in one epoch (cap " << config_.live_word_cap << ")";
    record(ViolationKind::kMemoryCapExceeded, e.to, os.str());
  }
  // Accounting re-derivation.
  report_.energy += e.distance;
  report_.messages += 1;
  report_.max_arrival = Clock::join(report_.max_arrival, e.arrival);
  // Backtrace ring.
  if (config_.backtrace_capacity > 0) {
    if (ring_.size() < config_.backtrace_capacity) {
      ring_.push_back(e);
      ring_next_ = ring_.size() % config_.backtrace_capacity;
    } else {
      ring_[ring_next_] = e;
      ring_next_ = (ring_next_ + 1) % ring_.size();
    }
  }
}

void ConformanceChecker::on_birth(Coord at, Clock c) {
  if (c.depth < 0 || c.distance < 0) {
    std::ostringstream os;
    os << "birth with negative clock (" << c.depth << "," << c.distance
       << ")";
    record(ViolationKind::kNonMonotoneClock, at, os.str());
  }
  dead_.erase(at);
  index_t& words = residency_[at];
  ++words;
  report_.peak_residency = std::max(report_.peak_residency, words);
  if (words == config_.live_word_cap + 1) {
    std::ostringstream os;
    os << "processor accumulated " << words
       << " live words in one epoch (cap " << config_.live_word_cap << ")";
    record(ViolationKind::kMemoryCapExceeded, at, os.str());
  }
}

void ConformanceChecker::on_death(Coord at) {
  index_t& words = residency_[at];
  if (words > 0) --words;
  dead_.insert(at);
}

void ConformanceChecker::on_phase_enter(PhaseId id) {
  phase_stack_.push_back(id);
  new_epoch();
}

void ConformanceChecker::on_phase_exit(PhaseId id) {
  if (phase_stack_.empty()) {
    record(ViolationKind::kUnbalancedPhase, Coord{},
           "phase \"" + PhaseRegistry::instance().name(id) +
               "\" exited but never entered");
  } else {
    // Machines share one checker; exits must match the innermost entry.
    if (phase_stack_.back() != id) {
      record(ViolationKind::kUnbalancedPhase, Coord{},
             "phase \"" + PhaseRegistry::instance().name(id) +
                 "\" exited while \"" +
                 PhaseRegistry::instance().name(phase_stack_.back()) +
                 "\" is innermost");
    }
    phase_stack_.pop_back();
  }
  new_epoch();
}

void ConformanceChecker::on_reset() { new_epoch(); }

void ConformanceChecker::finish() {
  while (!phase_stack_.empty()) {
    record(ViolationKind::kUnbalancedPhase, Coord{},
           "phase \"" + PhaseRegistry::instance().name(phase_stack_.back()) +
               "\" entered but never exited");
    phase_stack_.pop_back();
  }
}

void ConformanceChecker::verify(const Machine& m) {
  finish();
  const Metrics& got = m.metrics();
  if (got.energy != report_.energy) {
    std::ostringstream os;
    os << "machine reports energy " << got.energy
       << ", message stream re-derives " << report_.energy;
    record(ViolationKind::kEnergyMismatch, Coord{}, os.str());
  }
  if (got.messages != report_.messages) {
    std::ostringstream os;
    os << "machine reports " << got.messages
       << " messages, message stream re-derives " << report_.messages;
    record(ViolationKind::kMessageCountMismatch, Coord{}, os.str());
  }
  if (Clock::join(got.max_clock, report_.max_arrival) != got.max_clock) {
    std::ostringstream os;
    os << "machine max clock (" << got.max_clock.depth << ","
       << got.max_clock.distance << ") below observed arrival ("
       << report_.max_arrival.depth << "," << report_.max_arrival.distance
       << ")";
    record(ViolationKind::kClockMismatch, Coord{}, os.str());
  }
}

ScopedGlobalTraceSuspension::ScopedGlobalTraceSuspension()
    : saved_(Machine::global_trace()) {
  Machine::set_global_trace(nullptr);
}

ScopedGlobalTraceSuspension::~ScopedGlobalTraceSuspension() {
  Machine::set_global_trace(saved_);
}

}  // namespace scm
