#include "spatial/geometry.hpp"

#include <cassert>
#include <cmath>
#include <ostream>
#include <sstream>

namespace scm {

Coord Rect::at(index_t dr, index_t dc) const {
  assert(dr >= 0 && dr < rows && dc >= 0 && dc < cols);
  return {row0 + dr, col0 + dc};
}

bool Rect::intersects(const Rect& o) const {
  const bool row_disjoint = row0 + rows <= o.row0 || o.row0 + o.rows <= row0;
  const bool col_disjoint = col0 + cols <= o.col0 || o.col0 + o.cols <= col0;
  return !(row_disjoint || col_disjoint);
}

Rect Rect::quadrant(int i) const {
  assert(i >= 0 && i < 4);
  assert(rows % 2 == 0 && cols % 2 == 0);
  const index_t hr = rows / 2;
  const index_t hc = cols / 2;
  const index_t dr = (i / 2) * hr;
  const index_t dc = (i % 2) * hc;
  return Rect{row0 + dr, col0 + dc, hr, hc};
}

std::string Rect::str() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, Coord c) {
  return os << "(" << c.row << "," << c.col << ")";
}

std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << "[" << r.row0 << "," << r.col0 << " " << r.rows << "x" << r.cols
            << "]";
}

index_t ceil_pow2(index_t v) {
  assert(v >= 1);
  index_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

index_t isqrt(index_t v) {
  assert(v >= 0);
  if (v < 2) return v;
  index_t s = static_cast<index_t>(std::sqrt(static_cast<double>(v)));
  while (s > 0 && s * s > v) --s;
  while ((s + 1) * (s + 1) <= v) ++s;
  return s;
}

index_t square_side_for(index_t n) {
  assert(n >= 0);
  if (n <= 1) return 1;
  index_t side = 1;
  while (side * side < n) side <<= 1;
  return side;
}

}  // namespace scm
