// Phase-tree profiler and critical-path witness tracer for the Spatial
// Computer Model simulator.
//
// The Machine's Metrics answer *how much* a computation cost (energy,
// depth, distance); this module answers *where* and *why*:
//
//   * The Profiler TraceSink maintains a **phase call tree** — one node
//     per distinct stack of interned PhaseIds — with self energy,
//     messages, local ops, and a log2-bucketed message-distance histogram
//     per node. Per-phase totals from Machine::phases() are flat (a
//     "merge2d" entry mixes every call site); the tree keeps
//     "mergesort2d/merge2d" apart from a top-level "merge2d" and makes
//     recursive self-nesting ("mergesort2d/mergesort2d/...") visible.
//     Hot-path cost: O(1) hash work per phase transition, O(1) integer
//     adds per message/op (self counts only; subtree totals are rolled up
//     once at export), which is within the O(depth-of-stack) budget the
//     Machine's own attribution engine already pays.
//
//   * The opt-in **critical-path witness recorder** keeps, per observed
//     value clock, the first event (message arrival or value birth) that
//     achieved each clock-component value. Because every payload clock of
//     a conforming execution is a component-wise max (Clock::join) of
//     previously observed clocks, the exact dependent chain realizing
//     Metrics::depth() — and, separately, the chain realizing
//     Metrics::distance() — can be reconstructed message-by-message and
//     attributed phase-by-phase. The paper argues its bounds by
//     decomposing the critical path per primitive; the witness surfaces
//     that decomposition from real executions ("which 47 messages make
//     the depth 47, and in which phases do they live?").
//
//   * **Exporters**: an ASCII tree report for terminals, a Chrome
//     trace_event JSON of phase scopes (open in Perfetto or
//     chrome://tracing; timestamps are virtual ticks, one per charged
//     event, with a link-congestion counter track when enabled), and a
//     versioned machine-readable JSON run report combining totals, the
//     phase tree, the critical-path witness, an optional LoadMap traffic
//     summary, and an optional CongestionMap link-level congestion
//     section. docs/OBSERVABILITY.md documents the schema.
//
// Attach per-machine (Machine::set_trace) or process-wide
// (Machine::set_global_trace); util::ProfileSession wires the standard
// --profile / --trace-json / --profile-ascii flags into bench and example
// binaries. A machine reset (or construction) clears the profile: an
// exported artifact describes the events since the last reset, i.e. the
// last simulated run.
#pragma once

#include "spatial/clock.hpp"
#include "spatial/congestion.hpp"
#include "spatial/geometry.hpp"
#include "spatial/independence.hpp"
#include "spatial/metrics.hpp"
#include "spatial/phase.hpp"
#include "spatial/trace.hpp"

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace scm {

/// Log2-bucketed histogram of charged message distances: bucket b counts
/// messages whose Manhattan distance d satisfies floor(log2 d) == b, so
/// bucket 0 is d = 1, bucket 1 is d in [2,3], bucket 2 is d in [4,7], ...
/// Distance distributions are the paper's energy story in miniature: a
/// phase whose histogram mass sits in high buckets moves values far
/// (gather/scatter); low buckets are neighbor traffic.
struct DistanceHistogram {
  std::vector<index_t> buckets;
  index_t count{0};
  index_t max_distance{0};

  void add(index_t distance);

  /// Lower bound (2^b) of the bucket containing the p-th percentile
  /// (nearest-rank over messages, p in [0, 100]); 0 when empty.
  [[nodiscard]] index_t percentile_lower_bound(double p) const;
};

/// TraceSink building a phase call tree (and, opt-in, a critical-path
/// witness) from a Machine's event stream.
class Profiler final : public TraceSink {
 public:
  /// Version of the machine-readable run-report schema emitted by
  /// json_report(). Bump on any breaking change to field names/meaning.
  /// v2: added the "independence" section (batch-independence conflict
  /// counts and per-phase batch footprints).
  /// v3: added the "congestion" section (per-link occupancy summary,
  /// per-phase peak link loads, and the opt-in congested-clock metric).
  static constexpr int kSchemaVersion = 3;

  struct Options {
    /// Record per-value witness events so critical_path() can reconstruct
    /// the exact chains realizing depth and distance. Costs O(1) hash
    /// work and ~80 bytes per message/birth; off by default so the plain
    /// tree profiler stays cheap.
    bool witness{false};

    /// Maintain an internal LoadMap (dimension-ordered routing) so the
    /// run report includes a congestion summary. Costs O(distance) per
    /// message; off by default.
    bool load_map{false};

    /// Maintain an embedded CongestionMap (per-link occupancy under the
    /// same dimension-ordered routing as the load map, with per-phase
    /// peak link loads and the diagnostic congested-clock metric) and
    /// export it as the run report's "congestion" section plus a Chrome
    /// counter track. Costs O(distance) per message; off by default.
    bool congestion{false};

    /// Run an embedded IndependenceChecker (always non-strict: findings
    /// land in the report, never abort) and export its conflict counts
    /// and per-phase batch footprints as the run report's "independence"
    /// section, so CI can assert zero conflicts from artifacts. Costs one
    /// O(batch) degree-map pass per bulk event; on by default because
    /// every standard --profile artifact should carry the verdict.
    bool independence{true};
  };

  Profiler() : Profiler(Options{}) {}
  explicit Profiler(Options options);

  /// One node of the phase call tree. Node 0 is the root (phase ==
  /// kNoPhase): costs charged outside any PhaseScope. `self_*` counters
  /// exclude descendants; exporters roll up subtree totals.
  struct PhaseNode {
    PhaseId phase{kNoPhase};
    std::uint32_t parent{0};
    std::uint32_t depth{0};  ///< root = 0
    index_t self_energy{0};
    index_t self_messages{0};
    index_t self_ops{0};
    DistanceHistogram hist;
    std::vector<std::uint32_t> children;
  };

  /// One message of a reconstructed critical-path chain.
  struct WitnessHop {
    Coord from{};
    Coord to{};
    index_t distance{0};
    Clock payload{};  ///< clock carried on departure
    Clock arrival{};  ///< clock on arrival (payload.after_hop(distance))
    /// Active phase names when the message was charged, outermost first.
    std::vector<std::string> phases;
  };

  /// A dependent chain of messages realizing one clock component.
  struct WitnessChain {
    /// True when the chain bottomed out at a value with component 0 or at
    /// a recorded birth — i.e. the witness observed the whole history.
    /// False only when the profiler was attached mid-run.
    bool complete{true};
    /// Clock at the chain's origin: zero unless the chain starts at an
    /// input born with non-zero history (Machine::birth with a clock).
    Clock start_clock{};
    /// The chain's messages in dependency order (first sent first).
    std::vector<WitnessHop> hops;

    [[nodiscard]] index_t hop_count() const {
      return static_cast<index_t>(hops.size());
    }
    /// Sum of the hops' Manhattan lengths.
    [[nodiscard]] index_t total_distance() const;
  };

  /// The two reconstructed chains. Depth and distance are component-wise
  /// maxima over different chains in general, so each gets its own
  /// witness: depth_chain has exactly Metrics::depth() hops and
  /// distance_chain's total_distance() equals Metrics::distance()
  /// (whenever complete with a zero start clock).
  struct CriticalPathWitness {
    bool enabled{false};
    WitnessChain depth_chain;
    WitnessChain distance_chain;
  };

  // TraceSink hooks.
  void on_message(Coord from, Coord to, index_t distance) override;
  void on_send(const MessageEvent& e) override;
  /// Batched counterpart of on_message+on_send: one virtual dispatch and
  /// one flush of totals/self counters per batch, with per-message ticks,
  /// histogram adds, and witness records kept so every exported artifact
  /// is identical to the replayed per-message stream.
  void on_send_bulk(std::span<const MessageEvent> batch) override;
  void on_op(index_t n) override;
  void on_birth(Coord at, Clock c) override;
  void on_birth_bulk(std::span<const BirthEvent> batch) override;
  /// Deaths carry no cost; forwarded to the embedded independence checker
  /// (its read-write-hazard rule tracks retired cells).
  void on_death(Coord at) override;
  void on_death_bulk(std::span<const Coord> batch) override;
  void on_phase_enter(PhaseId id) override;
  void on_phase_exit(PhaseId id) override;
  void on_reset() override;

  /// Totals re-derived from the event stream. Equals the traced machine's
  /// Metrics when the profiler observed its whole life.
  [[nodiscard]] const Metrics& totals() const { return totals_; }

  /// The phase call tree; nodes[0] is the root and children always have
  /// larger indices than their parent (reverse index order is bottom-up).
  [[nodiscard]] const std::vector<PhaseNode>& nodes() const {
    return nodes_;
  }

  /// Virtual clock: number of charged events (messages + op batches +
  /// births) observed; the Chrome trace's time axis.
  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }

  /// Reconstructs the critical-path chains from the witness record.
  /// enabled == false when Options::witness was off.
  [[nodiscard]] CriticalPathWitness critical_path() const;

  /// The internal per-cell load map; nullptr unless Options::load_map.
  [[nodiscard]] const LoadMap* load_map() const;

  /// The embedded link-level congestion map; nullptr unless
  /// Options::congestion.
  [[nodiscard]] const CongestionMap* congestion() const;

  /// The embedded batch-independence checker; nullptr when
  /// Options::independence was off.
  [[nodiscard]] const IndependenceChecker* independence() const;

  /// Human-readable phase tree (self/total energy, messages, ops, and
  /// distance p50/max per node).
  [[nodiscard]] std::string ascii_report() const;

  /// Chrome trace_event JSON of the phase scopes (B/E duration events
  /// over the virtual tick axis). Loads in Perfetto / chrome://tracing.
  [[nodiscard]] std::string chrome_trace_json() const;

  /// Versioned machine-readable run report: totals, phase tree, critical
  /// path (if witnessed), per-cell load summary (if load-mapped), and
  /// link-level congestion section (if congestion-mapped). Schema in
  /// docs/OBSERVABILITY.md; "schema_version" == kSchemaVersion.
  [[nodiscard]] std::string json_report() const;

  /// Drops all recorded data. Open phase scopes survive (like
  /// Machine::reset): the current phase path is re-entered at tick 0.
  void clear();

 private:
  struct ScopeEvent {
    bool enter{true};
    PhaseId phase{kNoPhase};
    std::uint64_t tick{0};
    index_t energy{0};  ///< cumulative energy at the transition
    /// Congestion counters at the transition (0 unless
    /// Options::congestion): the Chrome trace's counter-track samples
    /// share the phase scopes' tick axis.
    index_t max_link_load{0};
    index_t congested_clock{0};
  };

  /// One witnessed clock observation (message arrival or birth).
  struct WitnessEvent {
    Coord from{};
    Coord to{};
    index_t distance{0};  ///< 0 for births
    Clock payload{};      ///< for births: the birth clock itself
    Clock arrival{};
    std::uint32_t node{0};
    bool is_birth{false};
  };

  [[nodiscard]] std::uint32_t child_of(std::uint32_t parent, PhaseId id);
  void record_witness(const WitnessEvent& e);
  /// Phase names along the root path of `node`, outermost first.
  [[nodiscard]] std::vector<std::string> phase_path(
      std::uint32_t node) const;
  /// Self + descendants for every node (indexed like nodes_).
  [[nodiscard]] std::vector<Metrics> rolled_up_totals() const;
  [[nodiscard]] WitnessChain reconstruct_chain(bool by_depth) const;

  Options options_;
  Metrics totals_{};
  std::vector<PhaseNode> nodes_;
  /// (parent << 32 | phase) -> child node index.
  std::unordered_map<std::uint64_t, std::uint32_t> edges_;
  std::uint32_t cur_{0};
  /// Mirror of the machine's phase stack (survives clear()/on_reset).
  std::vector<PhaseId> stack_;
  std::vector<ScopeEvent> scopes_;
  std::uint64_t ticks_{0};

  // Witness record: the event stream plus, per clock-component value, the
  // index of the first event achieving it.
  std::vector<WitnessEvent> events_;
  std::unordered_map<index_t, std::uint32_t> first_depth_;
  std::unordered_map<index_t, std::uint32_t> first_distance_;

  std::unique_ptr<LoadMap> load_map_;
  std::unique_ptr<CongestionMap> congestion_;
  std::unique_ptr<IndependenceChecker> independence_;
};

}  // namespace scm
