// Deterministic pseudo-randomness for the library and its tests/benches.
//
// Random choices in the paper's algorithms (the Bernoulli sampling of
// Section VI) are local, cost-free decisions; we draw them from an explicit
// seeded engine so every run is reproducible.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace scm {

/// Mersenne Twister engine seeded deterministically.
[[nodiscard]] inline std::mt19937_64 make_rng(std::uint64_t seed) {
  return std::mt19937_64{seed};
}

/// `n` doubles uniform in [lo, hi).
[[nodiscard]] inline std::vector<double> random_doubles(std::uint64_t seed,
                                                        std::size_t n,
                                                        double lo = 0.0,
                                                        double hi = 1.0) {
  std::mt19937_64 rng = make_rng(seed);
  std::uniform_real_distribution<double> dist(lo, hi);
  std::vector<double> out(n);
  for (double& v : out) v = dist(rng);
  return out;
}

/// `n` int64s uniform in [lo, hi].
[[nodiscard]] inline std::vector<std::int64_t> random_ints(
    std::uint64_t seed, std::size_t n, std::int64_t lo, std::int64_t hi) {
  std::mt19937_64 rng = make_rng(seed);
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  std::vector<std::int64_t> out(n);
  for (std::int64_t& v : out) v = dist(rng);
  return out;
}

}  // namespace scm
