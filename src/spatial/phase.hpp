// Interned phase identifiers for cost attribution.
//
// Phase names are how algorithms label cost-attribution scopes
// ("mergesort2d", "merge2d/base", ...). The Machine charges every message
// to all distinct active phases, so the per-message work must not involve
// the names themselves: the PhaseRegistry interns each name once into a
// dense PhaseId, and everything downstream of a phase transition — the
// Machine's attribution engine, TraceSink phase events, the conformance
// checker's epoch stack — operates on integer ids. Names are rematerialized
// only at reporting boundaries (phases(), violation reports).
//
// The registry is process-local and append-only: ids are dense indices in
// interning order and are never recycled, so a PhaseId is valid for the
// life of the process and `vector`s indexed by PhaseId never shrink. Like
// the rest of the simulator, it is single-threaded by design.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace scm {

/// Dense identifier of an interned phase name.
using PhaseId = std::uint32_t;

/// Sentinel for "no phase" (the id space is dense from 0, so the max value
/// can never be a real id in any practical process).
inline constexpr PhaseId kNoPhase = static_cast<PhaseId>(-1);

/// Process-local name interner: one hash lookup per `intern`, O(1) array
/// lookup per `name`. Append-only; never shrinks.
class PhaseRegistry {
 public:
  /// The process-wide registry every Machine and TraceSink shares.
  static PhaseRegistry& instance();

  /// Returns the id of `name`, interning it on first sight.
  PhaseId intern(std::string_view name);

  /// Returns the id of `name` if already interned, kNoPhase otherwise.
  /// Never mutates the registry: query paths (Machine::phase) must not
  /// grow the id space.
  [[nodiscard]] PhaseId find(std::string_view name) const;

  /// The name interned as `id`. Precondition: id < size().
  [[nodiscard]] const std::string& name(PhaseId id) const;

  /// Number of interned names (== the smallest never-issued id).
  [[nodiscard]] std::size_t size() const { return names_.size(); }

 private:
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  // Keys view into names_ (deque: stable under growth), so each interned
  // name is stored exactly once.
  std::unordered_map<std::string_view, PhaseId, StringHash, std::equal_to<>>
      ids_;
  std::deque<std::string> names_;
};

}  // namespace scm
