#include "spatial/independence.hpp"

#include "spatial/phase.hpp"
#include "spatial/validate.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>

namespace scm {

namespace {

// The simulator is single-threaded (the analyzer is the gate *for* the
// future sharded engine), so a plain process-global suffices. The reason
// chain restores on scope exit, giving reports the innermost claim.
int g_unordered_depth = 0;
const char* g_unordered_reason = nullptr;

std::ostream& operator<<(std::ostream& os, const MessageEvent& e) {
  return os << e.from << " -> " << e.to << " d=" << e.distance << " clock=("
            << e.payload.depth << "," << e.payload.distance << ")->("
            << e.arrival.depth << "," << e.arrival.distance << ")";
}

void format_violation(std::ostream& os, const IndependenceViolation& v) {
  os << to_string(v.kind) << " in phase \"" << v.phase << "\" at " << v.at
     << ": " << v.detail << "\n";
  if (!v.backtrace.empty()) {
    os << "  message backtrace (oldest first):\n";
    for (const MessageEvent& e : v.backtrace) os << "    " << e << "\n";
  }
}

}  // namespace

const char* to_string(IndependenceViolationKind kind) {
  switch (kind) {
    case IndependenceViolationKind::kWriteWriteConflict:
      return "write-write-conflict";
    case IndependenceViolationKind::kReadWriteHazard:
      return "read-write-hazard";
    case IndependenceViolationKind::kGatherScatterAliasing:
      return "gather-scatter-aliasing";
  }
  return "unknown-violation";
}

index_t IndependenceReport::count(IndependenceViolationKind kind) const {
  index_t n = 0;
  for (const IndependenceViolation& v : violations) {
    if (v.kind == kind) ++n;
  }
  return n;
}

std::string IndependenceReport::str() const {
  std::ostringstream os;
  if (ok()) {
    os << "independence: ok (" << batches << " batches, " << bulk_messages
       << " bulk messages, " << exempted_batches << " exempted, max fan-in "
       << max_fan_in << ")\n";
    return os.str();
  }
  os << "independence: " << violations.size() << " violation(s)\n";
  for (const IndependenceViolation& v : violations) format_violation(os, v);
  return os.str();
}

ScopedUnorderedDelivery::ScopedUnorderedDelivery(const char* reason)
    : prev_reason_(g_unordered_reason) {
  ++g_unordered_depth;
  g_unordered_reason = reason;
}

ScopedUnorderedDelivery::~ScopedUnorderedDelivery() {
  --g_unordered_depth;
  g_unordered_reason = prev_reason_;
}

bool ScopedUnorderedDelivery::active() { return g_unordered_depth > 0; }

const char* ScopedUnorderedDelivery::reason() { return g_unordered_reason; }

bool IndependenceChecker::strict_model_default() {
  return ConformanceChecker::strict_model_default();
}

IndependenceChecker::IndependenceChecker(Config config) : config_(config) {
  ring_.reserve(config_.backtrace_capacity);
}

std::string IndependenceChecker::current_phase() const {
  return phase_stack_.empty()
             ? std::string("<top>")
             : PhaseRegistry::instance().name(phase_stack_.back());
}

void IndependenceChecker::record(IndependenceViolationKind kind, Coord at,
                                 std::string detail) {
  IndependenceViolation v{kind, current_phase(), at, std::move(detail), {}};
  // Unroll the ring buffer oldest-first.
  v.backtrace.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    v.backtrace.push_back(ring_[(ring_next_ + i) % ring_.size()]);
  }
  if (config_.strict) {
    std::ostringstream os;
    os << "SCM_STRICT_MODEL: batch-independence violation\n";
    format_violation(os, v);
    std::fputs(os.str().c_str(), stderr);
    std::fflush(stderr);
    std::abort();
  }
  ++report_.per_phase[v.phase].conflicts;
  report_.violations.push_back(std::move(v));
}

void IndependenceChecker::ring_push(const MessageEvent& e) {
  if (config_.backtrace_capacity == 0) return;
  if (ring_.size() < config_.backtrace_capacity) {
    ring_.push_back(e);
    ring_next_ = ring_.size() % config_.backtrace_capacity;
  } else {
    ring_[ring_next_] = e;
    ring_next_ = (ring_next_ + 1) % ring_.size();
  }
}

void IndependenceChecker::new_epoch() { dead_.clear(); }

void IndependenceChecker::on_message(Coord from, Coord to,
                                     index_t distance) {
  // Scalar sends are inherently ordered; all batch checks key off
  // on_send_bulk. Occupancy is tracked through on_send.
  (void)from;
  (void)to;
  (void)distance;
}

void IndependenceChecker::on_send(const MessageEvent& e) {
  // A scalar arrival revives its destination and joins the backtrace, so
  // batch violations show the surrounding scalar traffic too.
  dead_.erase(e.to);
  ring_push(e);
}

void IndependenceChecker::on_send_bulk(
    std::span<const MessageEvent> batch) {
  // One pass over the charged entries builds the per-cell in/out degrees.
  struct Degrees {
    index_t in{0};
    index_t out{0};
  };
  std::unordered_map<Coord, Degrees, CoordHash> deg;
  deg.reserve(batch.size() * 2);
  index_t charged = 0;
  for (const MessageEvent& e : batch) {
    if (e.distance == 0) continue;  // free in the model, never delivered
    ++charged;
    ++deg[e.to].in;
    ++deg[e.from].out;
    ring_push(e);
  }
  if (charged == 0) return;

  const bool exempt = ScopedUnorderedDelivery::active();
  {
    PhaseFootprint& fp = report_.per_phase[current_phase()];
    ++fp.batches;
    fp.bulk_messages += charged;
    fp.max_batch = std::max(fp.max_batch, charged);
    if (exempt) ++fp.exempted_batches;
    ++report_.batches;
    report_.bulk_messages += charged;
    if (exempt) ++report_.exempted_batches;
  }

  // Deterministic reports: visit conflicted cells in coordinate order
  // (the degree map's iteration order is not stable across platforms).
  std::vector<std::pair<Coord, Degrees>> cells(deg.begin(), deg.end());
  std::sort(cells.begin(), cells.end(),
            [](const auto& a, const auto& b) {
              return a.first.row != b.first.row
                         ? a.first.row < b.first.row
                         : a.first.col < b.first.col;
            });
  for (const auto& [c, d] : cells) {
    report_.max_fan_in = std::max(report_.max_fan_in, d.in);
    PhaseFootprint& fp = report_.per_phase[current_phase()];
    fp.max_fan_in = std::max(fp.max_fan_in, d.in);
    if (d.in >= 2 && !exempt) {
      std::ostringstream os;
      os << d.in << " of " << charged
         << " batch members deliver to the same destination; delivery "
            "order within a batch is unspecified. Declare the fan-in "
            "order-free with ScopedUnorderedDelivery / "
            "CommutativeDeliveryScope, or split the round";
      record(IndependenceViolationKind::kWriteWriteConflict, c, os.str());
    }
    if (d.in >= 1 && d.out >= 1) {
      if (dead_.contains(c)) {
        std::ostringstream os;
        os << "a batch member sends from a cell another member writes, "
              "and the cell held no value at batch start (retired earlier "
              "this epoch): the read can only observe the in-batch "
              "arrival, so the round depends on intra-batch order (in-"
           << d.in << "/out-" << d.out << ")";
        record(IndependenceViolationKind::kReadWriteHazard, c, os.str());
      }
      if (d.in >= 2 || d.out >= 2) {
        std::ostringstream os;
        os << "cell relays concentrated traffic within one batch (in-"
           << d.in << "/out-" << d.out
           << "): gather and scatter fused into one round. Split into "
              "dependent batches";
        record(IndependenceViolationKind::kGatherScatterAliasing, c,
               os.str());
      }
    }
  }

  // Occupancy update happens after analysis: the hazard rule reasons
  // about the state at batch start.
  for (const MessageEvent& e : batch) {
    if (e.distance == 0) continue;
    dead_.erase(e.to);
  }
}

void IndependenceChecker::on_birth(Coord at, Clock c) {
  (void)c;
  dead_.erase(at);
}

void IndependenceChecker::on_death(Coord at) { dead_.insert(at); }

void IndependenceChecker::on_phase_enter(PhaseId id) {
  phase_stack_.push_back(id);
  new_epoch();
}

void IndependenceChecker::on_phase_exit(PhaseId id) {
  (void)id;  // phase balance is the conformance checker's to report
  if (!phase_stack_.empty()) phase_stack_.pop_back();
  new_epoch();
}

void IndependenceChecker::on_reset() { new_epoch(); }

}  // namespace scm
