#include "spatial/congestion.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace scm {

namespace {

/// Direction codes of LinkKey::dir; dimension-ordered routing only ever
/// emits row steps (up/down) before column steps (left/right).
enum : std::uint8_t { kUp = 0, kDown = 1, kLeft = 2, kRight = 3 };

std::string phase_label(PhaseId id) {
  return id == kNoPhase ? std::string("<top>")
                        : PhaseRegistry::instance().name(id);
}

}  // namespace

std::string Link::str() const {
  std::ostringstream os;
  os << '[' << from.row << ',' << from.col << "]->[" << to.row << ','
     << to.col << ']';
  return os.str();
}

Link CongestionMap::link_of(LinkKey key) {
  Coord from{key.row, key.col};
  Coord to = from;
  switch (key.dir) {
    case kUp: to.row -= 1; break;
    case kDown: to.row += 1; break;
    case kLeft: to.col -= 1; break;
    default: to.col += 1; break;
  }
  return Link{from, to};
}

CongestionMap::Bucket& CongestionMap::current_bucket() {
  if (cached_bucket_ != nullptr) return *cached_bucket_;
  const PhaseId id = bucket();
  const auto [it, inserted] = phases_.try_emplace(id);
  if (inserted) phase_order_.push_back(id);
  cached_bucket_ = &it->second;
  return *cached_bucket_;
}

void CongestionMap::bump(LinkKey key) {
  index_t& slot = load_[key];
  ++slot;
  ++total_;
  max_link_load_ = std::max(max_link_load_, slot);

  Bucket& b = current_bucket();
  index_t& bslot = b.load[key];
  ++bslot;
  ++b.occupancy;
  if (bslot > b.peak) {
    // The congested clock is the sum of bucket peaks; maintain it
    // incrementally as each bucket's peak rises.
    congested_clock_ += bslot - b.peak;
    b.peak = bslot;
  }
}

void CongestionMap::route(Coord from, Coord to) {
  // Dimension-ordered routing, matching LoadMap: rows first, then
  // columns. One directed link per unit step, so a message of Manhattan
  // distance d contributes exactly d units of occupancy.
  Coord cur = from;
  const std::uint8_t row_dir = to.row > cur.row ? kDown : kUp;
  const index_t row_step = to.row > cur.row ? 1 : -1;
  while (cur.row != to.row) {
    bump(LinkKey{cur.row, cur.col, row_dir});
    cur.row += row_step;
  }
  const std::uint8_t col_dir = to.col > cur.col ? kRight : kLeft;
  const index_t col_step = to.col > cur.col ? 1 : -1;
  while (cur.col != to.col) {
    bump(LinkKey{cur.row, cur.col, col_dir});
    cur.col += col_step;
  }
}

void CongestionMap::on_message(Coord from, Coord to, index_t distance) {
  assert(distance == manhattan(from, to));
  (void)distance;
  ++messages_;
  ++ticks_;
  route(from, to);
}

void CongestionMap::on_send_bulk(std::span<const MessageEvent> batch) {
  for (const MessageEvent& e : batch) {
    if (e.distance == 0) continue;
    ++messages_;
    ++ticks_;
    route(e.from, e.to);
  }
}

void CongestionMap::record_sample() {
  // Counter tracks render step changes; consecutive identical samples
  // add nothing, so phase-transition storms with no traffic stay cheap.
  if (!samples_.empty() &&
      samples_.back().max_link_load == max_link_load_ &&
      samples_.back().congested_clock == congested_clock_) {
    return;
  }
  samples_.push_back(CounterSample{ticks_, max_link_load_, congested_clock_});
}

void CongestionMap::on_phase_enter(PhaseId id) {
  record_sample();
  stack_.push_back(id);
  cached_bucket_ = nullptr;
}

void CongestionMap::on_phase_exit(PhaseId id) {
  (void)id;
  if (stack_.empty()) return;  // imbalance is the checker's to report
  record_sample();
  stack_.pop_back();
  cached_bucket_ = nullptr;
}

void CongestionMap::on_reset() { clear(); }

void CongestionMap::clear() {
  load_.clear();
  total_ = 0;
  messages_ = 0;
  max_link_load_ = 0;
  congested_clock_ = 0;
  ticks_ = 0;
  phases_.clear();
  phase_order_.clear();
  cached_bucket_ = nullptr;
  samples_.clear();
  // stack_ deliberately survives: open PhaseScopes keep attributing
  // across Machine::reset, exactly like the Profiler.
}

index_t CongestionMap::occupancy(Link link) const {
  std::uint8_t dir = 0;
  const index_t dr = link.to.row - link.from.row;
  const index_t dc = link.to.col - link.from.col;
  if (dr == -1 && dc == 0) {
    dir = kUp;
  } else if (dr == 1 && dc == 0) {
    dir = kDown;
  } else if (dr == 0 && dc == -1) {
    dir = kLeft;
  } else if (dr == 0 && dc == 1) {
    dir = kRight;
  } else {
    return 0;  // not a unit link
  }
  const auto it = load_.find(LinkKey{link.from.row, link.from.col, dir});
  return it == load_.end() ? 0 : it->second;
}

std::vector<std::pair<Link, index_t>> CongestionMap::hotspot_links(
    std::size_t k) const {
  std::vector<std::pair<Link, index_t>> all;
  all.reserve(load_.size());
  for (const auto& [key, count] : load_) {
    all.push_back({link_of(key), count});
  }
  k = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(k),
                    all.end(), [](const auto& a, const auto& b) {
                      if (a.second != b.second) return a.second > b.second;
                      return a.first < b.first;
                    });
  all.resize(k);
  return all;
}

index_t CongestionMap::percentile(double p) const {
  if (load_.empty()) return 0;
  std::vector<index_t> loads;
  loads.reserve(load_.size());
  for (const auto& [key, count] : load_) loads.push_back(count);
  p = std::clamp(p, 0.0, 100.0);
  // Nearest-rank: the smallest occupancy l such that at least
  // ceil(p% * n) touched links carry <= l.
  const auto rank = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(p / 100.0 * static_cast<double>(loads.size()))));
  auto nth = loads.begin() + static_cast<std::ptrdiff_t>(rank - 1);
  std::nth_element(loads.begin(), nth, loads.end());
  return *nth;
}

std::vector<std::pair<Link, index_t>> CongestionMap::sorted_links() const {
  std::vector<std::pair<Link, index_t>> all;
  all.reserve(load_.size());
  for (const auto& [key, count] : load_) {
    all.push_back({link_of(key), count});
  }
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    return a.first < b.first;
  });
  return all;
}

std::vector<index_t> CongestionMap::occupancy_multiset() const {
  std::vector<index_t> values;
  values.reserve(load_.size());
  for (const auto& [key, count] : load_) values.push_back(count);
  std::sort(values.begin(), values.end());
  return values;
}

std::vector<CongestionMap::PhaseCongestion> CongestionMap::phase_congestion()
    const {
  std::vector<PhaseCongestion> out;
  out.reserve(phase_order_.size());
  for (const PhaseId id : phase_order_) {
    const Bucket& b = phases_.at(id);
    out.push_back(PhaseCongestion{id, b.occupancy,
                                  static_cast<index_t>(b.load.size()),
                                  b.peak});
  }
  return out;
}

index_t CongestionMap::phase_peak(PhaseId id) const {
  const auto it = phases_.find(id);
  return it == phases_.end() ? 0 : it->second.peak;
}

std::string CongestionMap::ascii_report(std::size_t hotspots) const {
  std::ostringstream os;
  os << "link congestion (dimension-ordered routing, directed unit links)\n";
  os << "  messages " << messages_ << ", occupancy " << total_
     << " (= total Manhattan distance), links " << links() << "\n";
  os << "  max link load " << max_link_load_ << ", p50 " << percentile(50.0)
     << ", p95 " << percentile(95.0) << ", p99 " << percentile(99.0)
     << ", congested clock " << congested_clock_ << "\n";
  const auto spots = hotspot_links(hotspots);
  if (!spots.empty()) {
    os << "  hotspot links:\n";
    for (const auto& [link, count] : spots) {
      os << "    " << link.str() << "  " << count << "\n";
    }
  }
  const auto phases = phase_congestion();
  if (!phases.empty()) {
    os << "  phases (innermost attribution; congested clock = sum of "
          "peaks):\n";
    for (const PhaseCongestion& pc : phases) {
      const double mean =
          pc.links == 0 ? 0.0
                        : static_cast<double>(pc.occupancy) /
                              static_cast<double>(pc.links);
      std::string label = phase_label(pc.phase);
      if (label.size() > 30) label.resize(30);
      os << "    " << label;
      for (std::size_t i = label.size(); i < 32; ++i) os << ' ';
      os << "peak " << pc.peak << ", links " << pc.links << ", mean "
         << static_cast<index_t>(mean * 100.0 + 0.5) / 100.0
         << ", occupancy " << pc.occupancy << "\n";
    }
  }
  return os.str();
}

std::string CongestionMap::heatmap(index_t max_side) const {
  if (load_.empty()) return "(no traffic)\n";
  static const char kLevels[] = " .:-=+*#%@";
  // Bounding box of touched link source cells, derived here rather than
  // maintained per hop — exporting is cold, bump() is the hot path.
  index_t min_row = 0;
  index_t max_row = -1;
  index_t min_col = 0;
  index_t max_col = -1;
  for (const auto& [key, count] : load_) {
    if (max_row < min_row) {
      min_row = max_row = key.row;
      min_col = max_col = key.col;
    } else {
      min_row = std::min(min_row, key.row);
      max_row = std::max(max_row, key.row);
      min_col = std::min(min_col, key.col);
      max_col = std::max(max_col, key.col);
    }
  }
  // Per-cell pressure: the maximum occupancy over the directed links
  // leaving the cell, downsampled like LoadMap::heatmap.
  const index_t rows = max_row - min_row + 1;
  const index_t cols = max_col - min_col + 1;
  const index_t bucket =
      std::max<index_t>(1, (std::max(rows, cols) + max_side - 1) / max_side);
  const index_t out_rows = (rows + bucket - 1) / bucket;
  const index_t out_cols = (cols + bucket - 1) / bucket;

  std::vector<index_t> grid(static_cast<size_t>(out_rows * out_cols), 0);
  for (const auto& [key, count] : load_) {
    const index_t r = (key.row - min_row) / bucket;
    const index_t c = (key.col - min_col) / bucket;
    index_t& slot = grid[static_cast<size_t>(r * out_cols + c)];
    slot = std::max(slot, count);
  }
  index_t peak = 1;
  for (index_t v : grid) peak = std::max(peak, v);

  std::ostringstream os;
  os << "link heatmap (" << rows << "x" << cols
     << " cells, max outgoing-link load, bucket " << bucket << "x" << bucket
     << ", peak " << peak << ")\n";
  for (index_t r = 0; r < out_rows; ++r) {
    for (index_t c = 0; c < out_cols; ++c) {
      const index_t v = grid[static_cast<size_t>(r * out_cols + c)];
      const auto idx = static_cast<std::size_t>(
          (static_cast<double>(v) / static_cast<double>(peak)) * 9.0);
      os << kLevels[std::min<std::size_t>(idx, 9)];
    }
    os << "\n";
  }
  return os.str();
}

std::string CongestionMap::chrome_counter_json() const {
  // One "C" (counter) event per recorded sample over the same virtual
  // tick axis the Profiler's phase trace uses (1 us = 1 charged event),
  // plus a closing sample so the track always reaches the final tick.
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  os << "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\","
        "\"args\":{\"name\":\"scm simulated run\"}}";
  const auto emit = [&os](const CounterSample& s) {
    os << ",\n{\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":" << s.tick
       << ",\"name\":\"link congestion\",\"args\":{\"max_link_load\":"
       << s.max_link_load << ",\"congested_clock\":" << s.congested_clock
       << "}}";
  };
  for (const CounterSample& s : samples_) emit(s);
  emit(CounterSample{ticks_, max_link_load_, congested_clock_});
  os << "\n]}\n";
  return os.str();
}

}  // namespace scm
