#include "spatial/trace.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace scm {

FanoutSink::FanoutSink(std::vector<TraceSink*> sinks) {
  for (TraceSink* s : sinks) add(s);
}

void FanoutSink::add(TraceSink* sink) {
  if (sink != nullptr) sinks_.push_back(sink);
}

void FanoutSink::on_message(Coord from, Coord to, index_t distance) {
  for (TraceSink* s : sinks_) s->on_message(from, to, distance);
}

void FanoutSink::on_send(const MessageEvent& e) {
  for (TraceSink* s : sinks_) s->on_send(e);
}

void FanoutSink::on_send_bulk(std::span<const MessageEvent> batch) {
  for (TraceSink* s : sinks_) s->on_send_bulk(batch);
}

void FanoutSink::on_op(index_t n) {
  for (TraceSink* s : sinks_) s->on_op(n);
}

void FanoutSink::on_birth(Coord at, Clock c) {
  for (TraceSink* s : sinks_) s->on_birth(at, c);
}

void FanoutSink::on_birth_bulk(std::span<const BirthEvent> batch) {
  for (TraceSink* s : sinks_) s->on_birth_bulk(batch);
}

void FanoutSink::on_death(Coord at) {
  for (TraceSink* s : sinks_) s->on_death(at);
}

void FanoutSink::on_death_bulk(std::span<const Coord> batch) {
  for (TraceSink* s : sinks_) s->on_death_bulk(batch);
}

void FanoutSink::on_phase_enter(PhaseId id) {
  for (TraceSink* s : sinks_) s->on_phase_enter(id);
}

void FanoutSink::on_phase_exit(PhaseId id) {
  for (TraceSink* s : sinks_) s->on_phase_exit(id);
}

void FanoutSink::on_reset() {
  for (TraceSink* s : sinks_) s->on_reset();
}

void LoadMap::bump(Coord c) {
  index_t& slot = load_[{c.row, c.col}];
  ++slot;
  ++total_;
  max_load_ = std::max(max_load_, slot);
  if (max_row_ < min_row_) {
    min_row_ = max_row_ = c.row;
    min_col_ = max_col_ = c.col;
  } else {
    min_row_ = std::min(min_row_, c.row);
    max_row_ = std::max(max_row_, c.row);
    min_col_ = std::min(min_col_, c.col);
    max_col_ = std::max(max_col_, c.col);
  }
}

void LoadMap::on_message(Coord from, Coord to, index_t distance) {
  assert(distance == manhattan(from, to));
  (void)distance;
  ++messages_;
  // Dimension-ordered routing: rows first, then columns.
  Coord cur = from;
  bump(cur);
  const index_t row_step = to.row > cur.row ? 1 : -1;
  while (cur.row != to.row) {
    cur.row += row_step;
    bump(cur);
  }
  const index_t col_step = to.col > cur.col ? 1 : -1;
  while (cur.col != to.col) {
    cur.col += col_step;
    bump(cur);
  }
}

void LoadMap::on_send_bulk(std::span<const MessageEvent> batch) {
  for (const MessageEvent& e : batch) {
    if (e.distance == 0) continue;
    on_message(e.from, e.to, e.distance);
  }
}

index_t LoadMap::load_at(Coord c) const {
  const auto it = load_.find({c.row, c.col});
  return it == load_.end() ? 0 : it->second;
}

std::vector<std::pair<Coord, index_t>> LoadMap::hotspots(
    std::size_t k) const {
  std::vector<std::pair<Coord, index_t>> all;
  all.reserve(load_.size());
  for (const auto& [pos, count] : load_) {
    all.push_back({Coord{pos.first, pos.second}, count});
  }
  k = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(k),
                    all.end(), [](const auto& a, const auto& b) {
                      if (a.second != b.second) return a.second > b.second;
                      if (a.first.row != b.first.row) {
                        return a.first.row < b.first.row;
                      }
                      return a.first.col < b.first.col;
                    });
  all.resize(k);
  return all;
}

index_t LoadMap::percentile(double p) const {
  if (load_.empty()) return 0;
  std::vector<index_t> loads;
  loads.reserve(load_.size());
  for (const auto& [pos, count] : load_) loads.push_back(count);
  p = std::clamp(p, 0.0, 100.0);
  // Nearest-rank: the smallest load l such that at least ceil(p% * n)
  // touched processors carry <= l.
  const auto rank = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(p / 100.0 * static_cast<double>(loads.size()))));
  auto nth = loads.begin() + static_cast<std::ptrdiff_t>(rank - 1);
  std::nth_element(loads.begin(), nth, loads.end());
  return *nth;
}

double LoadMap::imbalance() const {
  if (load_.empty()) return 0.0;
  const double mean =
      static_cast<double>(total_) / static_cast<double>(load_.size());
  double var = 0.0;
  for (const auto& [pos, count] : load_) {
    const double d = static_cast<double>(count) - mean;
    var += d * d;
  }
  var /= static_cast<double>(load_.size());
  return mean == 0.0 ? 0.0 : std::sqrt(var) / mean;
}

std::string LoadMap::heatmap(index_t max_side) const {
  if (max_row_ < min_row_) return "(no traffic)\n";
  static const char kLevels[] = " .:-=+*#%@";
  const index_t rows = max_row_ - min_row_ + 1;
  const index_t cols = max_col_ - min_col_ + 1;
  const index_t bucket =
      std::max<index_t>(1, (std::max(rows, cols) + max_side - 1) / max_side);
  const index_t out_rows = (rows + bucket - 1) / bucket;
  const index_t out_cols = (cols + bucket - 1) / bucket;

  std::vector<index_t> grid(static_cast<size_t>(out_rows * out_cols), 0);
  for (const auto& [pos, count] : load_) {
    const index_t r = (pos.first - min_row_) / bucket;
    const index_t c = (pos.second - min_col_) / bucket;
    index_t& slot = grid[static_cast<size_t>(r * out_cols + c)];
    slot = std::max(slot, count);
  }
  index_t peak = 1;
  for (index_t v : grid) peak = std::max(peak, v);

  std::ostringstream os;
  os << "load heatmap (" << rows << "x" << cols << " cells, bucket "
     << bucket << "x" << bucket << ", peak " << peak << ")\n";
  for (index_t r = 0; r < out_rows; ++r) {
    for (index_t c = 0; c < out_cols; ++c) {
      const index_t v = grid[static_cast<size_t>(r * out_cols + c)];
      const auto idx = static_cast<std::size_t>(
          (static_cast<double>(v) / static_cast<double>(peak)) * 9.0);
      os << kLevels[std::min<std::size_t>(idx, 9)];
    }
    os << "\n";
  }
  return os.str();
}

void LoadMap::clear() {
  load_.clear();
  total_ = 0;
  messages_ = 0;
  max_load_ = 0;
  min_row_ = 0;
  max_row_ = -1;
  min_col_ = 0;
  max_col_ = -1;
}

}  // namespace scm
