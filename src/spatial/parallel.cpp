#include "spatial/parallel.hpp"

#include "spatial/independence.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>

namespace scm::parallel {

namespace {

/// Direction codes, identical to CongestionMap's (congestion.cpp).
enum : std::uint8_t { kUp = 0, kDown = 1, kLeft = 2, kRight = 3 };

std::uint64_t pack_tile(TileCoord t) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(t.row)) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(t.col));
}

index_t pow2_at_least(index_t v) {
  return ceil_pow2(std::max<index_t>(1, v));
}

Config normalized(Config cfg) {
  cfg.threads = std::max(1, cfg.threads);
  cfg.tile_rows = pow2_at_least(cfg.tile_rows);
  cfg.tile_cols = pow2_at_least(cfg.tile_cols);
  cfg.min_parallel_batch = std::max<index_t>(1, cfg.min_parallel_batch);
  return cfg;
}

int log2_of(index_t pow2) {
  return std::countr_zero(static_cast<std::uint64_t>(pow2));
}

struct GlobalState {
  Config cfg{};
  std::unique_ptr<Engine> eng;
  bool initialized{false};
};

GlobalState& global() {
  static GlobalState g;
  return g;
}

}  // namespace

Tiling::Tiling(index_t tile_rows, index_t tile_cols, int shards)
    : tile_rows_(pow2_at_least(tile_rows)),
      tile_cols_(pow2_at_least(tile_cols)),
      log2_rows_(log2_of(tile_rows_)),
      log2_cols_(log2_of(tile_cols_)),
      shards_(std::max(1, shards)) {}

Engine::Engine(const Config& cfg)
    : config_(normalized(cfg)),
      tiling_(config_.tile_rows, config_.tile_cols, config_.threads),
      barrier_(config_.threads) {
  const auto t = static_cast<std::size_t>(config_.threads);
  bins_.resize(t * t);
  lanes_.resize(t);
  guard_.resize(t);
  workers_.reserve(t - 1);
  for (int i = 1; i < config_.threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

Engine::~Engine() {
  {
    const std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void Engine::worker_loop(int id) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_start_.wait(lk, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      job = job_;
    }
    (*job)(id);
    {
      const std::lock_guard<std::mutex> lk(mu_);
      if (--pending_ == 0) cv_done_.notify_one();
    }
  }
}

void Engine::run(const std::function<void(int)>& fn) {
  if (config_.threads == 1) {
    fn(0);
    return;
  }
  {
    const std::lock_guard<std::mutex> lk(mu_);
    job_ = &fn;
    ++generation_;
    pending_ = config_.threads - 1;
  }
  cv_start_.notify_all();
  fn(0);
  std::unique_lock<std::mutex> lk(mu_);
  cv_done_.wait(lk, [&] { return pending_ == 0; });
}

bool Engine::charge_send_bulk(std::span<MessageEvent> batch,
                              BulkAggregate& out) {
  const std::size_t n = batch.size();
  if (n == 0) {
    out = BulkAggregate{};
    ++stats_.parallel_batches;
    return true;
  }
  if (n > std::numeric_limits<std::uint32_t>::max()) return false;
  const int threads = config_.threads;
  const bool guard_on = config_.guard && !ScopedUnorderedDelivery::active();
  ++epoch_;
  if (epoch_ == 0) {  // wrap: stale stamps could alias, drop them all
    for (auto& m : guard_) m.clear();
    epoch_ = 1;
  }
  for (auto& bin : bins_) bin.clear();
  MessageEvent* const data = batch.data();

  run([&](int w) {
    // Pass A: bin my block's entry indices by the worker that owns each
    // destination tile. bins_[w * threads + owner] has one writer (me)
    // now and one reader (owner) after the barrier.
    const auto [lo, hi] = slice(n, w);
    std::vector<std::uint32_t>* const mine =
        &bins_[static_cast<std::size_t>(w) * static_cast<std::size_t>(threads)];
    for (std::size_t i = lo; i < hi; ++i) {
      const int owner = tiling_.shard_of(tiling_.tile_of(data[i].to));
      mine[owner].push_back(static_cast<std::uint32_t>(i));
    }
    sync();
    // Pass B: charge every entry addressed to my tiles, scanning the
    // producers in fixed order. Entry sets are disjoint across workers,
    // so the in-place distance/arrival writes are race-free.
    BulkAggregate agg;
    bool conflict = false;
    auto& gmap = guard_[static_cast<std::size_t>(w)];
    std::uint64_t cached_key = ~std::uint64_t{0};
    GuardTile* cached_tile = nullptr;
    for (int p = 0; p < threads; ++p) {
      const auto& bin =
          bins_[static_cast<std::size_t>(p) * static_cast<std::size_t>(threads) +
                static_cast<std::size_t>(w)];
      for (const std::uint32_t idx : bin) {
        MessageEvent& e = data[idx];
        const index_t dist = manhattan(e.from, e.to);
        e.distance = dist;
        if (dist == 0) {
          e.arrival = e.payload;  // local hand-off: free, no charge
        } else {
          e.arrival = e.payload.after_hop(dist);
          agg.energy += dist;
          ++agg.messages;
          agg.max_clock = Clock::join(agg.max_clock, e.arrival);
        }
        if (guard_on) {
          const TileCoord t = tiling_.tile_of(e.to);
          const std::uint64_t key = pack_tile(t);
          if (key != cached_key || cached_tile == nullptr) {
            GuardTile& gt = gmap[key];
            if (gt.stamp.empty()) {
              gt.stamp.assign(
                  static_cast<std::size_t>(tiling_.cells_per_tile()), 0);
            }
            cached_tile = &gt;
            cached_key = key;
          }
          std::uint64_t& stamp =
              cached_tile->stamp[static_cast<std::size_t>(
                  tiling_.cell_index(e.to))];
          if (stamp == epoch_) {
            conflict = true;  // two entries target one destination cell
          } else {
            stamp = epoch_;
          }
        }
      }
    }
    lanes_[static_cast<std::size_t>(w)].agg = agg;
    lanes_[static_cast<std::size_t>(w)].conflict = conflict;
  });

  bool any_conflict = false;
  for (int w = 0; w < threads; ++w) {
    any_conflict = any_conflict || lanes_[static_cast<std::size_t>(w)].conflict;
  }
  if (any_conflict) {
    // Unproven batch: decline so the Machine's scalar bulk loop charges
    // it (identically) and the IndependenceChecker gets to report it.
    ++stats_.downgraded_batches;
    return false;
  }
  out = BulkAggregate{};
  for (int w = 0; w < threads; ++w) {
    out = merge(out, lanes_[static_cast<std::size_t>(w)].agg);
  }
  ++stats_.parallel_batches;
  stats_.parallel_messages += static_cast<std::uint64_t>(out.messages);
  return true;
}

Clock Engine::join_birth_clocks(std::span<const BirthEvent> batch) {
  const std::size_t n = batch.size();
  run([&](int w) {
    const auto [lo, hi] = slice(n, w);
    Clock c{};
    for (std::size_t i = lo; i < hi; ++i) {
      c = Clock::join(c, batch[i].clock);
    }
    lanes_[static_cast<std::size_t>(w)].clock = c;
  });
  Clock out{};
  for (int w = 0; w < config_.threads; ++w) {
    out = Clock::join(out, lanes_[static_cast<std::size_t>(w)].clock);
  }
  ++stats_.birth_batches;
  return out;
}

Config config_from_env() {
  Config cfg;
  if (const char* s = std::getenv("SCM_THREADS"); s != nullptr && *s != '\0') {
    cfg.threads = std::max(1, std::atoi(s));
  }
  if (const char* s = std::getenv("SCM_TILE"); s != nullptr && *s != '\0') {
    long long w = 0;
    long long h = 0;
    if (std::sscanf(s, "%lldx%lld", &w, &h) == 2 && w > 0 && h > 0) {
      cfg.tile_cols = static_cast<index_t>(w);
      cfg.tile_rows = static_cast<index_t>(h);
    }
  }
  if (const char* s = std::getenv("SCM_PARALLEL_MIN_BATCH");
      s != nullptr && *s != '\0') {
    const long long v = std::atoll(s);
    if (v > 0) cfg.min_parallel_batch = static_cast<index_t>(v);
  }
  return cfg;
}

void configure(const Config& cfg) {
  GlobalState& g = global();
  g.initialized = true;
  const Config norm = normalized(cfg);
  const bool want_engine = norm.threads >= 2;
  if (norm == g.cfg && want_engine == (g.eng != nullptr)) return;
  g.eng.reset();
  g.cfg = norm;
  if (want_engine) g.eng = std::make_unique<Engine>(norm);
}

const Config& config() {
  GlobalState& g = global();
  if (!g.initialized) configure(config_from_env());
  return g.cfg;
}

Engine* engine() {
  GlobalState& g = global();
  if (!g.initialized) configure(config_from_env());
  return g.eng.get();
}

ScopedParallelEngine::ScopedParallelEngine(const Config& cfg)
    : saved_(config()) {
  configure(cfg);
}

ScopedParallelEngine::~ScopedParallelEngine() { configure(saved_); }

// ---------------------------------------------------------------------------
// ShardedCongestionMap

ShardedCongestionMap::ShardedCongestionMap(const Config& cfg) {
  const Config norm = normalized(cfg);
  tiling_ = Tiling(norm.tile_rows, norm.tile_cols, norm.threads);
  const auto s = static_cast<std::size_t>(tiling_.shards());
  shards_.resize(s);
  queues_.resize(s * s);
  cross_.assign(s, 0);
}

Link ShardedCongestionMap::link_of(LinkKey key) {
  Coord from{key.row, key.col};
  Coord to = from;
  switch (key.dir) {
    case kUp: to.row -= 1; break;
    case kDown: to.row += 1; break;
    case kLeft: to.col -= 1; break;
    default: to.col += 1; break;
  }
  return Link{from, to};
}

void ShardedCongestionMap::register_bucket(PhaseId id) {
  if (seen_buckets_.insert(id).second) bucket_order_.push_back(id);
}

template <typename Fn>
void ShardedCongestionMap::for_each_segment(Coord from, Coord to,
                                            Fn&& fn) const {
  // Dimension-ordered routing, rows first then columns, exactly as
  // CongestionMap::route. Each unit hop is keyed by its *from*-cell, so
  // the row run's from-cells are [from.row, to.row-1] going down (or
  // [to.row+1, from.row] going up) at column from.col, and the column
  // run's are at row to.row. Runs split at tile-band boundaries; each
  // resulting Segment lies in exactly one tile.
  if (to.row != from.row) {
    const bool down = to.row > from.row;
    const std::uint8_t dir = down ? kDown : kUp;
    const index_t lo = down ? from.row : to.row + 1;
    const index_t hi = down ? to.row - 1 : from.row;
    index_t r = lo;
    while (r <= hi) {
      const index_t band_end = std::min(hi, tiling_.next_row_band(r) - 1);
      fn(tiling_.shard_of(tiling_.tile_of(Coord{r, from.col})),
         Segment{r, from.col, band_end - r + 1, dir});
      r = band_end + 1;
    }
  }
  if (to.col != from.col) {
    const bool right = to.col > from.col;
    const std::uint8_t dir = right ? kRight : kLeft;
    const index_t lo = right ? from.col : to.col + 1;
    const index_t hi = right ? to.col - 1 : from.col;
    index_t c = lo;
    while (c <= hi) {
      const index_t band_end = std::min(hi, tiling_.next_col_band(c) - 1);
      fn(tiling_.shard_of(tiling_.tile_of(Coord{to.row, c})),
         Segment{to.row, c, band_end - c + 1, dir});
      c = band_end + 1;
    }
  }
}

void ShardedCongestionMap::apply_segment(Shard& shard, Bucket& bucket,
                                         const Segment& seg) {
  const bool vertical = seg.dir == kUp || seg.dir == kDown;
  Coord cur{seg.row, seg.col};
  for (index_t i = 0; i < seg.count; ++i) {
    const LinkKey key{cur.row, cur.col, seg.dir};
    index_t& slot = shard.load[key];
    ++slot;
    ++shard.total;
    shard.peak = std::max(shard.peak, slot);
    index_t& bslot = bucket.load[key];
    ++bslot;
    ++bucket.occupancy;
    bucket.peak = std::max(bucket.peak, bslot);
    if (vertical) {
      ++cur.row;
    } else {
      ++cur.col;
    }
  }
}

void ShardedCongestionMap::apply_serial(Coord from, Coord to,
                                        PhaseId bucket_id) {
  for_each_segment(from, to, [&](int owner, const Segment& seg) {
    Shard& sh = shards_[static_cast<std::size_t>(owner)];
    apply_segment(sh, sh.buckets[bucket_id], seg);
  });
}

void ShardedCongestionMap::apply_parallel(Engine& eng,
                                          std::span<const MessageEvent> batch,
                                          PhaseId bucket_id) {
  const int shards = tiling_.shards();
  for (auto& q : queues_) q.clear();
  const MessageEvent* const data = batch.data();
  const std::size_t n = batch.size();
  eng.run([&](int w) {
    // Pass A: decompose my block's messages; apply my own tiles'
    // segments directly, ship foreign ones through the SPSC queues.
    std::vector<Segment>* const outq =
        &queues_[static_cast<std::size_t>(w) * static_cast<std::size_t>(shards)];
    Shard& mine = shards_[static_cast<std::size_t>(w)];
    Bucket& bk = mine.buckets[bucket_id];
    std::uint64_t cross = 0;
    const auto [lo, hi] = eng.slice(n, w);
    for (std::size_t i = lo; i < hi; ++i) {
      const MessageEvent& e = data[i];
      if (e.distance == 0) continue;
      for_each_segment(e.from, e.to, [&](int owner, const Segment& seg) {
        if (owner == w) {
          apply_segment(mine, bk, seg);
        } else {
          outq[owner].push_back(seg);
          ++cross;
        }
      });
    }
    cross_[static_cast<std::size_t>(w)] = cross;
    eng.sync();
    // Pass B: drain the queues addressed to me, producers in fixed
    // order. Only I touch my shard, so no locks anywhere.
    for (int p = 0; p < shards; ++p) {
      if (p == w) continue;
      const auto& inq =
          queues_[static_cast<std::size_t>(p) * static_cast<std::size_t>(shards) +
                  static_cast<std::size_t>(w)];
      for (const Segment& seg : inq) apply_segment(mine, bk, seg);
    }
  });
  for (int w = 0; w < shards; ++w) {
    cross_tile_segments_ += cross_[static_cast<std::size_t>(w)];
  }
}

void ShardedCongestionMap::on_message(Coord from, Coord to, index_t distance) {
  assert(distance == manhattan(from, to));
  ++messages_;
  if (distance == 0) return;
  const PhaseId id = bucket();
  register_bucket(id);
  apply_serial(from, to, id);
}

void ShardedCongestionMap::on_send_bulk(std::span<const MessageEvent> batch) {
  index_t charged = 0;
  for (const MessageEvent& e : batch) {
    if (e.distance != 0) ++charged;
  }
  if (charged == 0) return;
  messages_ += charged;
  const PhaseId id = bucket();
  register_bucket(id);
  Engine* const eng = engine();
  if (eng != nullptr && eng->tiling() == tiling_ &&
      static_cast<index_t>(batch.size()) >= eng->config().min_parallel_batch) {
    apply_parallel(*eng, batch, id);
    ++parallel_batches_;
  } else {
    for (const MessageEvent& e : batch) {
      if (e.distance != 0) apply_serial(e.from, e.to, id);
    }
  }
}

void ShardedCongestionMap::on_phase_enter(PhaseId id) { stack_.push_back(id); }

void ShardedCongestionMap::on_phase_exit(PhaseId id) {
  (void)id;
  if (stack_.empty()) return;  // imbalance is the checker's to report
  stack_.pop_back();
}

void ShardedCongestionMap::on_reset() { clear(); }

void ShardedCongestionMap::clear() {
  for (Shard& sh : shards_) {
    sh.load.clear();
    sh.total = 0;
    sh.peak = 0;
    sh.buckets.clear();
  }
  messages_ = 0;
  bucket_order_.clear();
  seen_buckets_.clear();
  parallel_batches_ = 0;
  cross_tile_segments_ = 0;
  // stack_ deliberately survives, exactly like CongestionMap::clear().
}

index_t ShardedCongestionMap::total_occupancy() const {
  index_t total = 0;
  for (const Shard& sh : shards_) total += sh.total;
  return total;
}

index_t ShardedCongestionMap::links() const {
  std::size_t n = 0;
  for (const Shard& sh : shards_) n += sh.load.size();
  return static_cast<index_t>(n);
}

index_t ShardedCongestionMap::occupancy(Link link) const {
  std::uint8_t dir = 0;
  const index_t dr = link.to.row - link.from.row;
  const index_t dc = link.to.col - link.from.col;
  if (dr == -1 && dc == 0) {
    dir = kUp;
  } else if (dr == 1 && dc == 0) {
    dir = kDown;
  } else if (dr == 0 && dc == -1) {
    dir = kLeft;
  } else if (dr == 0 && dc == 1) {
    dir = kRight;
  } else {
    return 0;  // not a unit link
  }
  const int owner = tiling_.shard_of(tiling_.tile_of(link.from));
  const Shard& sh = shards_[static_cast<std::size_t>(owner)];
  const auto it = sh.load.find(LinkKey{link.from.row, link.from.col, dir});
  return it == sh.load.end() ? 0 : it->second;
}

index_t ShardedCongestionMap::max_link_load() const {
  index_t peak = 0;
  for (const Shard& sh : shards_) peak = std::max(peak, sh.peak);
  return peak;
}

std::vector<std::pair<Link, index_t>> ShardedCongestionMap::sorted_links()
    const {
  std::vector<std::pair<Link, index_t>> all;
  all.reserve(static_cast<std::size_t>(links()));
  for (const Shard& sh : shards_) {
    for (const auto& [key, count] : sh.load) {
      all.push_back({link_of(key), count});
    }
  }
  std::sort(all.begin(), all.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return all;
}

std::vector<index_t> ShardedCongestionMap::occupancy_multiset() const {
  std::vector<index_t> values;
  values.reserve(static_cast<std::size_t>(links()));
  for (const Shard& sh : shards_) {
    for (const auto& [key, count] : sh.load) values.push_back(count);
  }
  std::sort(values.begin(), values.end());
  return values;
}

std::vector<ShardedCongestionMap::PhaseCongestion>
ShardedCongestionMap::phase_congestion() const {
  std::vector<PhaseCongestion> out;
  out.reserve(bucket_order_.size());
  for (const PhaseId id : bucket_order_) {
    PhaseCongestion pc;
    pc.phase = id;
    for (const Shard& sh : shards_) {
      const auto it = sh.buckets.find(id);
      if (it == sh.buckets.end()) continue;
      pc.occupancy += it->second.occupancy;
      pc.links += static_cast<index_t>(it->second.load.size());
      pc.peak = std::max(pc.peak, it->second.peak);
    }
    out.push_back(pc);
  }
  return out;
}

index_t ShardedCongestionMap::phase_peak(PhaseId id) const {
  index_t peak = 0;
  for (const Shard& sh : shards_) {
    const auto it = sh.buckets.find(id);
    if (it != sh.buckets.end()) peak = std::max(peak, it->second.peak);
  }
  return peak;
}

index_t ShardedCongestionMap::congested_clock() const {
  // The serial map maintains this incrementally; the final value is the
  // sum over buckets of the bucket's final peak, which folds exactly
  // from disjoint shards (max over shards of per-shard peak).
  index_t clock = 0;
  for (const PhaseId id : bucket_order_) clock += phase_peak(id);
  return clock;
}

// ---------------------------------------------------------------------------
// ShardedLoadMap

ShardedLoadMap::ShardedLoadMap(const Config& cfg) {
  const Config norm = normalized(cfg);
  tiling_ = Tiling(norm.tile_rows, norm.tile_cols, norm.threads);
  const auto s = static_cast<std::size_t>(tiling_.shards());
  shards_.resize(s);
  queues_.resize(s * s);
  cross_.assign(s, 0);
}

template <typename Fn>
void ShardedLoadMap::for_each_cell_segment(Coord from, Coord to,
                                           Fn&& fn) const {
  // LoadMap's walk bumps every path cell endpoints-inclusive: the start
  // cell, each cell of the row run at from.col, then each *new* cell of
  // the column run at to.row (the corner is counted once). That is one
  // inclusive vertical run [from.row..to.row] x {from.col} plus a
  // horizontal run at to.row excluding from.col.
  {
    const index_t lo = std::min(from.row, to.row);
    const index_t hi = std::max(from.row, to.row);
    index_t r = lo;
    while (r <= hi) {
      const index_t band_end = std::min(hi, tiling_.next_row_band(r) - 1);
      fn(tiling_.shard_of(tiling_.tile_of(Coord{r, from.col})),
         Segment{r, from.col, band_end - r + 1, kDown});
      r = band_end + 1;
    }
  }
  if (to.col != from.col) {
    const index_t lo = to.col > from.col ? from.col + 1 : to.col;
    const index_t hi = to.col > from.col ? to.col : from.col - 1;
    index_t c = lo;
    while (c <= hi) {
      const index_t band_end = std::min(hi, tiling_.next_col_band(c) - 1);
      fn(tiling_.shard_of(tiling_.tile_of(Coord{to.row, c})),
         Segment{to.row, c, band_end - c + 1, kRight});
      c = band_end + 1;
    }
  }
}

void ShardedLoadMap::apply_segment(Shard& shard, const Segment& seg) {
  const bool vertical = seg.dir == kUp || seg.dir == kDown;
  Coord cur{seg.row, seg.col};
  for (index_t i = 0; i < seg.count; ++i) {
    index_t& slot = shard.load[{cur.row, cur.col}];
    ++slot;
    ++shard.total;
    shard.peak = std::max(shard.peak, slot);
    if (vertical) {
      ++cur.row;
    } else {
      ++cur.col;
    }
  }
}

void ShardedLoadMap::apply_serial(Coord from, Coord to) {
  for_each_cell_segment(from, to, [&](int owner, const Segment& seg) {
    apply_segment(shards_[static_cast<std::size_t>(owner)], seg);
  });
}

void ShardedLoadMap::on_message(Coord from, Coord to, index_t distance) {
  assert(distance == manhattan(from, to));
  (void)distance;
  ++messages_;
  // Matches LoadMap::on_message: even a zero-distance message bumps its
  // (single) cell — the inclusive vertical run covers exactly that.
  apply_serial(from, to);
}

void ShardedLoadMap::on_send_bulk(std::span<const MessageEvent> batch) {
  index_t charged = 0;
  for (const MessageEvent& e : batch) {
    if (e.distance != 0) ++charged;
  }
  if (charged == 0) return;
  messages_ += charged;
  Engine* const eng = engine();
  if (eng != nullptr && eng->tiling() == tiling_ &&
      static_cast<index_t>(batch.size()) >= eng->config().min_parallel_batch) {
    const int shards = tiling_.shards();
    for (auto& q : queues_) q.clear();
    const MessageEvent* const data = batch.data();
    const std::size_t n = batch.size();
    eng->run([&](int w) {
      std::vector<Segment>* const outq =
          &queues_[static_cast<std::size_t>(w) *
                   static_cast<std::size_t>(shards)];
      Shard& mine = shards_[static_cast<std::size_t>(w)];
      std::uint64_t cross = 0;
      const auto [lo, hi] = eng->slice(n, w);
      for (std::size_t i = lo; i < hi; ++i) {
        const MessageEvent& e = data[i];
        if (e.distance == 0) continue;
        for_each_cell_segment(e.from, e.to, [&](int owner, const Segment& seg) {
          if (owner == w) {
            apply_segment(mine, seg);
          } else {
            outq[owner].push_back(seg);
            ++cross;
          }
        });
      }
      cross_[static_cast<std::size_t>(w)] = cross;
      eng->sync();
      for (int p = 0; p < shards; ++p) {
        if (p == w) continue;
        const auto& inq = queues_[static_cast<std::size_t>(p) *
                                      static_cast<std::size_t>(shards) +
                                  static_cast<std::size_t>(w)];
        for (const Segment& seg : inq) apply_segment(mine, seg);
      }
    });
    for (int w = 0; w < shards; ++w) {
      cross_tile_segments_ += cross_[static_cast<std::size_t>(w)];
    }
    ++parallel_batches_;
  } else {
    for (const MessageEvent& e : batch) {
      if (e.distance != 0) apply_serial(e.from, e.to);
    }
  }
}

index_t ShardedLoadMap::load_at(Coord c) const {
  const int owner = tiling_.shard_of(tiling_.tile_of(c));
  const Shard& sh = shards_[static_cast<std::size_t>(owner)];
  const auto it = sh.load.find({c.row, c.col});
  return it == sh.load.end() ? 0 : it->second;
}

index_t ShardedLoadMap::total_load() const {
  index_t total = 0;
  for (const Shard& sh : shards_) total += sh.total;
  return total;
}

index_t ShardedLoadMap::max_load() const {
  index_t peak = 0;
  for (const Shard& sh : shards_) peak = std::max(peak, sh.peak);
  return peak;
}

index_t ShardedLoadMap::touched_cells() const {
  std::size_t n = 0;
  for (const Shard& sh : shards_) n += sh.load.size();
  return static_cast<index_t>(n);
}

std::vector<std::pair<Coord, index_t>> ShardedLoadMap::sorted_loads() const {
  std::vector<std::pair<Coord, index_t>> all;
  all.reserve(static_cast<std::size_t>(touched_cells()));
  for (const Shard& sh : shards_) {
    for (const auto& [cell, count] : sh.load) {
      all.push_back({Coord{cell.first, cell.second}, count});
    }
  }
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    if (a.first.row != b.first.row) return a.first.row < b.first.row;
    return a.first.col < b.first.col;
  });
  return all;
}

void ShardedLoadMap::clear() {
  for (Shard& sh : shards_) {
    sh.load.clear();
    sh.total = 0;
    sh.peak = 0;
  }
  messages_ = 0;
  parallel_batches_ = 0;
  cross_tile_segments_ = 0;
}

}  // namespace scm::parallel
