#include "spatial/bulk_ab.hpp"

#include "spatial/validate.hpp"

#include <sstream>

namespace scm {

namespace {

AbRun run_one(const std::function<void(Machine&)>& algorithm, bool bulk) {
  ScopedBulkCharging mode(bulk);
  ConformanceChecker::Config config;
  config.strict = false;  // mismatches must surface as AbResult, not abort
  ConformanceChecker checker(config);
  Machine m;
  m.set_trace(&checker);
  algorithm(m);
  checker.verify(m);
  AbRun run;
  run.totals = m.metrics();
  run.phases = m.phases();
  run.conformance_ok = checker.report().ok();
  if (!run.conformance_ok) run.conformance_report = checker.report().str();
  return run;
}

void append_metrics(std::ostringstream& os, const Metrics& m) {
  os << "energy=" << m.energy << " messages=" << m.messages
     << " local_ops=" << m.local_ops << " depth=" << m.depth()
     << " distance=" << m.distance();
}

void append_metrics_diff(std::ostringstream& os, const std::string& what,
                         const Metrics& scalar, const Metrics& bulk) {
  os << "  " << what << ":\n    scalar: ";
  append_metrics(os, scalar);
  os << "\n    bulk:   ";
  append_metrics(os, bulk);
  os << '\n';
}

}  // namespace

std::string AbResult::diff() const {
  if (ok()) return {};
  std::ostringstream os;
  if (!totals_equal) append_metrics_diff(os, "totals", scalar.totals, bulk.totals);
  if (!phases_equal) {
    for (const auto& [name, metrics] : scalar.phases) {
      const auto it = bulk.phases.find(name);
      if (it == bulk.phases.end()) {
        os << "  phase \"" << name << "\": present in scalar only\n";
      } else if (!(it->second == metrics)) {
        append_metrics_diff(os, "phase \"" + name + "\"", metrics,
                            it->second);
      }
    }
    for (const auto& [name, metrics] : bulk.phases) {
      if (!scalar.phases.contains(name)) {
        os << "  phase \"" << name << "\": present in bulk only\n";
      }
    }
  }
  if (!scalar.conformance_ok) {
    os << "  scalar run not conformant:\n" << scalar.conformance_report;
  }
  if (!bulk.conformance_ok) {
    os << "  bulk run not conformant:\n" << bulk.conformance_report;
  }
  return os.str();
}

AbResult run_ab(const std::function<void(Machine&)>& algorithm) {
  AbResult result;
  result.scalar = run_one(algorithm, /*bulk=*/false);
  result.bulk = run_one(algorithm, /*bulk=*/true);
  result.totals_equal = result.scalar.totals == result.bulk.totals;
  result.phases_equal = result.scalar.phases == result.bulk.phases;
  return result;
}

}  // namespace scm
