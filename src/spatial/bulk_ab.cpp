#include "spatial/bulk_ab.hpp"

#include "spatial/trace.hpp"
#include "spatial/validate.hpp"

#include <sstream>

namespace scm {

namespace {

/// One traced execution; the caller installs the charging mode (and, for
/// the parallel leg, the engine) before calling. `congestion` is either a
/// serial CongestionMap or a ShardedCongestionMap exposing the same
/// canonical exports through the lambda pair.
template <typename Congestion>
AbRun run_traced(const std::function<void(Machine&)>& algorithm,
                 Congestion& congestion) {
  ConformanceChecker::Config config;
  config.strict = false;  // mismatches must surface as AbResult, not abort
  ConformanceChecker checker(config);
  FanoutSink fanout({&checker, &congestion});
  Machine m;
  m.set_trace(&fanout);
  algorithm(m);
  checker.verify(m);
  AbRun run;
  run.totals = m.metrics();
  run.phases = m.phases();
  run.links = congestion.sorted_links();
  run.congested_clock = congestion.congested_clock();
  run.conformance_ok = checker.report().ok();
  if (!run.conformance_ok) run.conformance_report = checker.report().str();
  return run;
}

AbRun run_one(const std::function<void(Machine&)>& algorithm, bool bulk) {
  ScopedBulkCharging mode(bulk);
  // The scalar run feeds the congestion map per-message replays; the bulk
  // run exercises its batched on_send_bulk. sorted_links() then compares
  // the two decompositions link by link.
  CongestionMap congestion;
  return run_traced(algorithm, congestion);
}

AbRun run_parallel(const std::function<void(Machine&)>& algorithm,
                   const parallel::Config& cfg) {
  ScopedBulkCharging mode(true);
  parallel::ScopedParallelEngine engine(cfg);
  // The sharded sink shares the engine's tiling, so this leg proves both
  // the engine's merged charging and the sharded link decomposition
  // against the serial runs' numbers.
  parallel::ShardedCongestionMap congestion(cfg);
  return run_traced(algorithm, congestion);
}

void append_metrics(std::ostringstream& os, const Metrics& m) {
  os << "energy=" << m.energy << " messages=" << m.messages
     << " local_ops=" << m.local_ops << " depth=" << m.depth()
     << " distance=" << m.distance();
}

void append_metrics_diff(std::ostringstream& os, const std::string& what,
                         const char* label_a, const char* label_b,
                         const Metrics& a, const Metrics& b) {
  os << "  " << what << ":\n    " << label_a << ": ";
  append_metrics(os, a);
  os << "\n    " << label_b << ": ";
  append_metrics(os, b);
  os << '\n';
}

/// Every mismatch between two runs, `a` being the reference; empty when
/// the runs agree on totals, phases, and links (conformance verdicts are
/// reported separately, once per run).
std::string diff_pair(const AbRun& a, const AbRun& b, const char* label_a,
                      const char* label_b) {
  std::ostringstream os;
  if (!(a.totals == b.totals)) {
    append_metrics_diff(os, "totals", label_a, label_b, a.totals, b.totals);
  }
  if (a.phases != b.phases) {
    for (const auto& [name, metrics] : a.phases) {
      const auto it = b.phases.find(name);
      if (it == b.phases.end()) {
        os << "  phase \"" << name << "\": present in " << label_a
           << " only\n";
      } else if (!(it->second == metrics)) {
        append_metrics_diff(os, "phase \"" + name + "\"", label_a, label_b,
                            metrics, it->second);
      }
    }
    for (const auto& [name, metrics] : b.phases) {
      if (!a.phases.contains(name)) {
        os << "  phase \"" << name << "\": present in " << label_b
           << " only\n";
      }
    }
  }
  if (a.congested_clock != b.congested_clock) {
    os << "  congested clock: " << label_a << ' ' << a.congested_clock
       << " vs " << label_b << ' ' << b.congested_clock << '\n';
  }
  if (a.links != b.links) {
    std::size_t reported = 0;
    std::size_t i = 0;
    std::size_t j = 0;
    while ((i < a.links.size() || j < b.links.size()) && reported < 8) {
      const bool take_a =
          j >= b.links.size() ||
          (i < a.links.size() && a.links[i].first < b.links[j].first);
      const bool take_b =
          i >= a.links.size() ||
          (j < b.links.size() && b.links[j].first < a.links[i].first);
      if (take_a) {
        os << "  link " << a.links[i].first.str() << ": " << label_a
           << " only (load " << a.links[i].second << ")\n";
        ++i;
        ++reported;
      } else if (take_b) {
        os << "  link " << b.links[j].first.str() << ": " << label_b
           << " only (load " << b.links[j].second << ")\n";
        ++j;
        ++reported;
      } else {
        if (a.links[i].second != b.links[j].second) {
          os << "  link " << a.links[i].first.str() << ": " << label_a << ' '
             << a.links[i].second << " vs " << label_b << ' '
             << b.links[j].second << '\n';
          ++reported;
        }
        ++i;
        ++j;
      }
    }
  }
  return os.str();
}

void append_conformance(std::ostringstream& os, const AbRun& run,
                        const char* label) {
  if (!run.conformance_ok) {
    os << "  " << label << " run not conformant:\n" << run.conformance_report;
  }
}

}  // namespace

std::string AbResult::diff() const {
  if (ok()) return {};
  std::ostringstream os;
  os << diff_pair(scalar, bulk, "scalar", "bulk");
  append_conformance(os, scalar, "scalar");
  append_conformance(os, bulk, "bulk");
  return os.str();
}

AbResult run_ab(const std::function<void(Machine&)>& algorithm) {
  AbResult result;
  result.scalar = run_one(algorithm, /*bulk=*/false);
  result.bulk = run_one(algorithm, /*bulk=*/true);
  result.totals_equal = result.scalar.totals == result.bulk.totals;
  result.phases_equal = result.scalar.phases == result.bulk.phases;
  result.links_equal =
      result.scalar.links == result.bulk.links &&
      result.scalar.congested_clock == result.bulk.congested_clock;
  return result;
}

std::string AbcResult::diff() const {
  if (ok()) return {};
  std::ostringstream os;
  const std::string sb = diff_pair(scalar, bulk, "scalar", "bulk");
  if (!sb.empty()) os << " scalar vs bulk:\n" << sb;
  const std::string sp = diff_pair(scalar, parallel, "scalar", "parallel");
  if (!sp.empty()) os << " scalar vs parallel:\n" << sp;
  append_conformance(os, scalar, "scalar");
  append_conformance(os, bulk, "bulk");
  append_conformance(os, parallel, "parallel");
  return os.str();
}

AbcResult run_abc(const std::function<void(Machine&)>& algorithm,
                  const parallel::Config& cfg) {
  AbcResult result;
  result.scalar = run_one(algorithm, /*bulk=*/false);
  result.bulk = run_one(algorithm, /*bulk=*/true);
  result.parallel = run_parallel(algorithm, cfg);
  result.totals_equal = result.scalar.totals == result.bulk.totals &&
                        result.scalar.totals == result.parallel.totals;
  result.phases_equal = result.scalar.phases == result.bulk.phases &&
                        result.scalar.phases == result.parallel.phases;
  result.links_equal =
      result.scalar.links == result.bulk.links &&
      result.scalar.links == result.parallel.links &&
      result.scalar.congested_clock == result.bulk.congested_clock &&
      result.scalar.congested_clock == result.parallel.congested_clock;
  return result;
}

}  // namespace scm
