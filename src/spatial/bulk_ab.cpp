#include "spatial/bulk_ab.hpp"

#include "spatial/trace.hpp"
#include "spatial/validate.hpp"

#include <sstream>

namespace scm {

namespace {

AbRun run_one(const std::function<void(Machine&)>& algorithm, bool bulk) {
  ScopedBulkCharging mode(bulk);
  ConformanceChecker::Config config;
  config.strict = false;  // mismatches must surface as AbResult, not abort
  ConformanceChecker checker(config);
  // The scalar run feeds the congestion map per-message replays; the bulk
  // run exercises its batched on_send_bulk. sorted_links() then compares
  // the two decompositions link by link.
  CongestionMap congestion;
  FanoutSink fanout({&checker, &congestion});
  Machine m;
  m.set_trace(&fanout);
  algorithm(m);
  checker.verify(m);
  AbRun run;
  run.totals = m.metrics();
  run.phases = m.phases();
  run.links = congestion.sorted_links();
  run.congested_clock = congestion.congested_clock();
  run.conformance_ok = checker.report().ok();
  if (!run.conformance_ok) run.conformance_report = checker.report().str();
  return run;
}

void append_metrics(std::ostringstream& os, const Metrics& m) {
  os << "energy=" << m.energy << " messages=" << m.messages
     << " local_ops=" << m.local_ops << " depth=" << m.depth()
     << " distance=" << m.distance();
}

void append_metrics_diff(std::ostringstream& os, const std::string& what,
                         const Metrics& scalar, const Metrics& bulk) {
  os << "  " << what << ":\n    scalar: ";
  append_metrics(os, scalar);
  os << "\n    bulk:   ";
  append_metrics(os, bulk);
  os << '\n';
}

}  // namespace

std::string AbResult::diff() const {
  if (ok()) return {};
  std::ostringstream os;
  if (!totals_equal) append_metrics_diff(os, "totals", scalar.totals, bulk.totals);
  if (!phases_equal) {
    for (const auto& [name, metrics] : scalar.phases) {
      const auto it = bulk.phases.find(name);
      if (it == bulk.phases.end()) {
        os << "  phase \"" << name << "\": present in scalar only\n";
      } else if (!(it->second == metrics)) {
        append_metrics_diff(os, "phase \"" + name + "\"", metrics,
                            it->second);
      }
    }
    for (const auto& [name, metrics] : bulk.phases) {
      if (!scalar.phases.contains(name)) {
        os << "  phase \"" << name << "\": present in bulk only\n";
      }
    }
  }
  if (!links_equal) {
    if (scalar.congested_clock != bulk.congested_clock) {
      os << "  congested clock: scalar " << scalar.congested_clock
         << " vs bulk " << bulk.congested_clock << '\n';
    }
    std::size_t reported = 0;
    std::size_t i = 0;
    std::size_t j = 0;
    while ((i < scalar.links.size() || j < bulk.links.size()) &&
           reported < 8) {
      const bool take_scalar =
          j >= bulk.links.size() ||
          (i < scalar.links.size() &&
           scalar.links[i].first < bulk.links[j].first);
      const bool take_bulk =
          i >= scalar.links.size() ||
          (j < bulk.links.size() &&
           bulk.links[j].first < scalar.links[i].first);
      if (take_scalar) {
        os << "  link " << scalar.links[i].first.str()
           << ": scalar only (load " << scalar.links[i].second << ")\n";
        ++i;
        ++reported;
      } else if (take_bulk) {
        os << "  link " << bulk.links[j].first.str()
           << ": bulk only (load " << bulk.links[j].second << ")\n";
        ++j;
        ++reported;
      } else {
        if (scalar.links[i].second != bulk.links[j].second) {
          os << "  link " << scalar.links[i].first.str() << ": scalar "
             << scalar.links[i].second << " vs bulk "
             << bulk.links[j].second << '\n';
          ++reported;
        }
        ++i;
        ++j;
      }
    }
  }
  if (!scalar.conformance_ok) {
    os << "  scalar run not conformant:\n" << scalar.conformance_report;
  }
  if (!bulk.conformance_ok) {
    os << "  bulk run not conformant:\n" << bulk.conformance_report;
  }
  return os.str();
}

AbResult run_ab(const std::function<void(Machine&)>& algorithm) {
  AbResult result;
  result.scalar = run_one(algorithm, /*bulk=*/false);
  result.bulk = run_one(algorithm, /*bulk=*/true);
  result.totals_equal = result.scalar.totals == result.bulk.totals;
  result.phases_equal = result.scalar.phases == result.bulk.phases;
  result.links_equal =
      result.scalar.links == result.bulk.links &&
      result.scalar.congested_clock == result.bulk.congested_clock;
  return result;
}

}  // namespace scm
