// Aggregate cost metrics of a Spatial Computer Model execution.
//
// The Machine accumulates these as algorithms run:
//   * energy    — sum over all sent messages of their Manhattan distance
//                 (paper: the total load on the communication network);
//   * messages  — number of messages sent;
//   * local_ops — local compute operations (free in the model's cost
//                 metrics but tracked as a sanity measure of work);
//   * max_clock — the largest (depth, distance) clock of any value produced
//                 so far, i.e. the depth and distance of the computation.
#pragma once

#include "spatial/clock.hpp"
#include "spatial/geometry.hpp"

#include <iosfwd>
#include <string>

namespace scm {

/// Snapshot of accumulated costs. Differences of snapshots give the cost of
/// a program region; Machine::PhaseScope automates this.
struct Metrics {
  index_t energy{0};
  index_t messages{0};
  index_t local_ops{0};
  Clock max_clock{};

  /// Depth of the computation so far (longest dependent message chain).
  [[nodiscard]] index_t depth() const { return max_clock.depth; }

  /// Distance of the computation so far (largest total Manhattan distance
  /// along any dependent message chain).
  [[nodiscard]] index_t distance() const { return max_clock.distance; }

  friend bool operator==(const Metrics&, const Metrics&) = default;

  /// Cost accumulated between snapshot `earlier` and this snapshot. Energy,
  /// messages, and ops subtract; the clock maxima are kept from the later
  /// snapshot (clocks are global maxima, not per-phase differences).
  [[nodiscard]] Metrics since(const Metrics& earlier) const;

  /// One-line human-readable summary.
  [[nodiscard]] std::string str() const;
};

std::ostream& operator<<(std::ostream& os, const Metrics& m);

}  // namespace scm
