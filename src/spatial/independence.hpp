// Batch-independence analysis for the Spatial Computer Model simulator.
//
// The bulk-transfer engine (Machine::send_bulk and the round loops built
// on it — routing, bitonic exchange, the 2-D merge, the binomial
// collectives) charges a whole round of messages as one batch. That is
// only a legal rewrite of the per-message model when the batch members are
// *independent*: the model delivers a round's messages concurrently, so
// nothing inside one batch may depend on the order the engine happens to
// process entries in. This is exactly the property the planned sharded
// multi-threaded simulation core relies on to merge tile-local results
// deterministically; until this module, it was argued per call site in
// comments. The IndependenceChecker turns the argument into an enforced,
// testable contract.
//
// The checker is a TraceSink (same shape as the ConformanceChecker in
// spatial/validate.hpp). Attach it per-machine (Machine::set_trace) or
// process-wide (Machine::set_global_trace — the test harness attaches it
// next to the conformance checker through a FanoutSink) and it inspects
// every send_bulk batch — which is also how GridArray::send_elements,
// route_permutation, and every library round loop charge — and flags:
//
//   * write-write conflicts — two or more charged batch members deliver
//     to the same destination cell. Destination write order within a
//     batch is unspecified (a parallel engine may apply entries in any
//     order), so same-destination fan-in is a race unless the algorithm
//     declares delivery order immaterial (see the exemption below).
//   * read-write hazards — a member sends *from* a cell that another
//     member writes, when that cell held no value at batch start (it was
//     retired by Machine::death earlier in the current epoch). The only
//     value the read could observe is the in-batch arrival, so the round
//     provably depends on intra-batch ordering. Cells that already held a
//     value may legally be both source and destination in one round
//     (synchronous-round semantics: every payload is captured before any
//     delivery — the API contract of send_bulk/send_elements), which is
//     why exchange, shift, and permutation rounds pass; a read of an
//     in-batch overwrite of a previously-occupied cell is indistinguishable
//     at trace granularity and is NOT flagged (see docs/MODEL.md).
//   * gather/scatter aliasing — a cell that both receives and relays
//     concentrated traffic within a single batch (in-degree and out-degree
//     both >= 1, and either >= 2). A hub cell forwarding what it receives
//     in the same round is the canonical round-fusion bug (e.g. merging a
//     gather batch with its dependent scatter); it fires even under the
//     unordered-delivery exemption, because no delivery-order declaration
//     makes a value available before the round that delivers it ends.
//
// Exemption: legitimately order-free fan-in (a commutative reduction, or
// distinct words parked on one cell and locally re-ordered under a strict
// total order, as in the 2-D merge's gather-sort-scatter base case) is
// declared with a ScopedUnorderedDelivery RAII scope, or its compile-time
// checked wrapper CommutativeDeliveryScope<Op> (collectives/operators.hpp)
// which only instantiates for operators annotated commutative via
// OpTraits. Exempt batches still run the aliasing check and are counted
// separately in the report.
//
// Violations carry the innermost phase name, the offending coordinate, and
// a ring buffer of the most recent messages (including the offending
// batch). Under strict mode — SCM_STRICT_MODEL as build option or
// environment variable, exactly like the conformance checker — the first
// violation prints its report to stderr and aborts; otherwise violations
// accumulate into a queryable IndependenceReport with per-phase batch
// footprints, which the Profiler exports into the versioned JSON run
// report (docs/OBSERVABILITY.md) so CI can assert zero conflicts from
// artifacts.
#pragma once

#include "spatial/clock.hpp"
#include "spatial/geometry.hpp"
#include "spatial/trace.hpp"

#include <cstddef>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace scm {

/// What an IndependenceChecker can catch.
enum class IndependenceViolationKind {
  kWriteWriteConflict,     // same-destination fan-in without an exemption
  kReadWriteHazard,        // a member reads a cell only written in-batch
  kGatherScatterAliasing,  // a cell relays concentrated traffic in-batch
};

/// Human-readable name of a violation kind ("write-write-conflict", ...).
[[nodiscard]] const char* to_string(IndependenceViolationKind kind);

/// One detected violation with its forensic context.
struct IndependenceViolation {
  IndependenceViolationKind kind{};
  std::string phase;    // innermost phase at detection; "<top>" when none
  Coord at{};           // the conflicted cell
  std::string detail;   // specifics: degrees, occupancy, batch size
  std::vector<MessageEvent> backtrace;  // recent messages, oldest first
};

/// Per-phase batch footprint summary (keyed by innermost phase name).
struct PhaseFootprint {
  index_t batches{0};           // send_bulk calls with >= 1 charged entry
  index_t bulk_messages{0};     // charged entries across those batches
  index_t max_batch{0};         // largest charged batch
  index_t max_fan_in{0};        // largest per-cell in-degree in one batch
  index_t exempted_batches{0};  // batches under ScopedUnorderedDelivery
  index_t conflicts{0};         // violations recorded in this phase
};

/// Queryable result of a checked execution.
struct IndependenceReport {
  std::vector<IndependenceViolation> violations;
  index_t batches{0};
  index_t bulk_messages{0};
  index_t exempted_batches{0};
  index_t max_fan_in{0};
  std::map<std::string, PhaseFootprint> per_phase;

  [[nodiscard]] bool ok() const { return violations.empty(); }

  /// Number of violations of the given kind.
  [[nodiscard]] index_t count(IndependenceViolationKind kind) const;

  /// Multi-line human-readable report (one block per violation).
  [[nodiscard]] std::string str() const;
};

/// RAII declaration that, within this scope, delivery order onto a shared
/// destination is immaterial — same-destination fan-in inside one batch is
/// legal. Use for commutative reductions (prefer the compile-time checked
/// CommutativeDeliveryScope<Op> in collectives/operators.hpp) and for
/// gather steps that park distinct words on one cell and re-order them
/// locally under a strict total order. The scope must carry a reason
/// string: the exemption is an auditable claim, not an off switch. Scopes
/// nest; the aliasing check stays active inside them.
class ScopedUnorderedDelivery {
 public:
  explicit ScopedUnorderedDelivery(const char* reason);
  ~ScopedUnorderedDelivery();
  ScopedUnorderedDelivery(const ScopedUnorderedDelivery&) = delete;
  ScopedUnorderedDelivery& operator=(const ScopedUnorderedDelivery&) =
      delete;

  /// True when any scope is active (consulted by every checker).
  [[nodiscard]] static bool active();

  /// The innermost active scope's reason; nullptr when none.
  [[nodiscard]] static const char* reason();

 private:
  const char* prev_reason_;
};

/// TraceSink that enforces batch independence on every bulk event.
class IndependenceChecker final : public TraceSink {
 public:
  struct Config {
    /// Abort on the first violation instead of accumulating. Defaults to
    /// strict_model_default() (the SCM_STRICT_MODEL build option or
    /// environment variable, shared with the conformance checker).
    bool strict{strict_model_default()};

    /// Messages retained for each violation's backtrace.
    std::size_t backtrace_capacity{16};
  };

  IndependenceChecker() : IndependenceChecker(Config{}) {}
  explicit IndependenceChecker(Config config);

  // TraceSink events.
  void on_message(Coord from, Coord to, index_t distance) override;
  void on_send(const MessageEvent& e) override;
  void on_send_bulk(std::span<const MessageEvent> batch) override;
  void on_birth(Coord at, Clock c) override;
  void on_death(Coord at) override;
  void on_phase_enter(PhaseId id) override;
  void on_phase_exit(PhaseId id) override;
  void on_reset() override;

  [[nodiscard]] const IndependenceReport& report() const { return report_; }

  /// Mirrors ConformanceChecker::strict_model_default(): true when
  /// SCM_STRICT_MODEL was defined at build time or is set (to anything but
  /// "" or "0") in the environment.
  [[nodiscard]] static bool strict_model_default();

 private:
  struct CoordHash {
    std::size_t operator()(const Coord& c) const {
      return std::hash<std::uint64_t>{}(
          (static_cast<std::uint64_t>(c.row) << 32) ^
          static_cast<std::uint64_t>(c.col & 0xffffffff));
    }
  };

  void record(IndependenceViolationKind kind, Coord at, std::string detail);
  void ring_push(const MessageEvent& e);
  void new_epoch();
  [[nodiscard]] std::string current_phase() const;

  Config config_;
  IndependenceReport report_;
  std::vector<PhaseId> phase_stack_;
  // Cells retired (Machine::death) in the current epoch and not revived by
  // a later arrival or birth: the occupancy knowledge behind the sound
  // read-write-hazard rule.
  std::unordered_set<Coord, CoordHash> dead_;
  std::vector<MessageEvent> ring_;
  std::size_t ring_next_{0};
};

}  // namespace scm
