// Seeded input generators for the property-based fuzzing engine.
//
// Every generator draws from an explicit SplitMix64-based engine whose
// sequence is fully specified here (no standard-library distributions,
// whose outputs differ across implementations), so a replay token
// `<seed>:<case>` reproduces the exact same instance on every platform and
// compiler. The catalogue covers the domain of the paper's algorithms:
// random permutations, key arrays in adversarial shapes (sorted, reversed,
// duplicate-heavy, all-equal, organ-pipe, negative-valued), sparse
// matrices with controlled density, random EREW PRAM programs, random
// graphs, and grid geometries including the degenerate 1 x n line and
// non-power-of-two rectangles.
#pragma once

#include "spatial/geometry.hpp"
#include "spmv/coo.hpp"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace scm::testing {

/// Deterministic, platform-stable pseudo-random engine (SplitMix64). The
/// whole fuzzing subsystem draws exclusively from this class so that seeds
/// mean the same instance everywhere.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit draw (SplitMix64 step).
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] (inclusive; lo <= hi).
  index_t uniform(index_t lo, index_t hi);

  /// Uniform double in [0, 1).
  double real() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// True with probability p.
  bool chance(double p) { return real() < p; }

 private:
  std::uint64_t state_;
};

/// Derives the per-case seed from the master seed and the case index — the
/// two halves of a replay token. A distinct SplitMix64 mix (not the Rng
/// stream itself) so neighbouring cases are decorrelated.
[[nodiscard]] std::uint64_t derive_case_seed(std::uint64_t master_seed,
                                             index_t case_index);

/// Shapes of generated key arrays. kUniform draws wide (including large
/// negative values); the other shapes are the adversarial corners sorting
/// and selection algorithms historically get wrong.
enum class KeyShape {
  kUniform,       // wide range, positive and negative
  kSorted,        // already ascending
  kReversed,      // descending (the permutation lower-bound shape)
  kFewDistinct,   // duplicate-heavy: values drawn from <= 4 distinct keys
  kAllEqual,      // every key identical
  kOrganPipe,     // ascending then descending
  kAlmostSorted,  // sorted with a few random transpositions
  kZeroOne,       // 0/1 keys (comparator-contract stress)
};

/// Human-readable shape name for failure reports.
[[nodiscard]] const char* to_string(KeyShape shape);

/// `n` keys of the given shape.
[[nodiscard]] std::vector<std::int64_t> gen_keys(Rng& rng, index_t n,
                                                 KeyShape shape);

/// A random shape, biased toward the adversarial ones.
[[nodiscard]] KeyShape gen_key_shape(Rng& rng);

/// A uniformly random permutation of [0, n) (Fisher-Yates over the stable
/// engine). Occasionally callers substitute the reversal permutation to
/// pin the lower-bound witness; this function is always uniform.
[[nodiscard]] std::vector<index_t> gen_permutation(Rng& rng, index_t n);

/// Grid-geometry families an input array can be laid out on. Properties
/// restrict to the families their algorithm supports (e.g. scan requires
/// kSquareZ); the degenerate and non-power-of-two families exist to catch
/// coordinate bugs the canonical square never exercises.
enum class GeomKind {
  kSquareZ,     // canonical Z-order square (square_side_for(n))
  kSquareRow,   // canonical square, row-major
  kLine,        // 1 x w row-major (degenerate height)
  kColumn,      // h x 1 row-major (degenerate width)
  kWideRect,    // h x w row-major with w > h, both non-power-of-two-ish
  kTallRect,    // h x w row-major with h > w
  kBigSquareZ,  // Z-order square with side doubled (sparse occupancy)
};

[[nodiscard]] const char* to_string(GeomKind kind);

/// Concrete placement for `n` elements: region, layout and origin. The
/// returned region always holds at least ceil_pow2(max(n, 1)) layout
/// positions, so padded algorithms (bitonic) fit inside it. Origins may be
/// negative: the model's grid is unbounded and translation must not change
/// any cost.
struct Geometry {
  GeomKind kind{GeomKind::kSquareZ};
  Rect region{};
  bool zorder{true};
  Coord origin() const { return region.origin(); }

  friend bool operator==(const Geometry&, const Geometry&) = default;
};

/// A geometry of the given kind for n elements at a random (possibly
/// negative) origin.
[[nodiscard]] Geometry gen_geometry(Rng& rng, index_t n, GeomKind kind);

/// The deterministic geometry the shrinker rebuilds after structural
/// transforms: origin (0, 0) and the smallest region of the same family
/// (no rng, so shrunk replays are stable).
[[nodiscard]] Geometry canonical_geometry(GeomKind kind, index_t n);

/// A random geometry kind drawn from `allowed`.
[[nodiscard]] GeomKind pick_geom(Rng& rng,
                                 const std::vector<GeomKind>& allowed);

/// A random n_rows x n_cols sparse matrix with ~density * rows * cols
/// non-zeros at distinct random coordinates, values small integers (exact
/// in double arithmetic, so host-reference comparison is exact).
[[nodiscard]] CooMatrix gen_matrix(Rng& rng, index_t n_rows, index_t n_cols,
                                   double density);

/// A random undirected graph over n vertices with ~m edges (self-loops
/// allowed; duplicates allowed — both are legal EdgeList inputs).
[[nodiscard]] std::vector<std::pair<index_t, index_t>> gen_edges(Rng& rng,
                                                                 index_t n,
                                                                 index_t m);

/// Structural families of random trees, biased toward the shapes that
/// stress different corners of the tree pipeline: paths maximize list-
/// ranking rounds and contraction compress chains, stars maximize segment
/// fan-in and one-round rakes, caterpillars mix both, balanced binary
/// trees exercise the generic recursion, and Pruefer decoding covers the
/// uniform distribution over all labeled trees. kNone marks non-tree
/// cases in CaseInput.
enum class TreeShape {
  kNone,            // not a tree case
  kPath,            // 0-1-2-...-(n-1) before relabeling
  kStar,            // one center, n-1 leaves
  kCaterpillar,     // a spine with leaves hanging off it
  kBalancedBinary,  // heap-shaped: parent(i) = (i-1)/2
  kRandomPrufer,    // uniform labeled tree via Pruefer decoding
};

[[nodiscard]] const char* to_string(TreeShape shape);

/// A random tree of `shape` on n labeled vertices (root 0 pre-relabel):
/// the structural skeleton is relabeled by a random permutation, the edge
/// list shuffled, and each edge's orientation flipped with probability
/// 1/2 — so no generator family leaks a canonical vertex order to the
/// algorithms. Single-vertex (n == 1) trees have an empty edge list.
[[nodiscard]] std::vector<std::pair<index_t, index_t>> gen_tree(
    Rng& rng, index_t n, TreeShape shape);

/// A random tree shape (uniform over the concrete families).
[[nodiscard]] TreeShape gen_tree_shape(Rng& rng);

/// A random EREW-safe straight-line PRAM program schedule: for each of
/// `steps` synchronous steps, a read permutation and a write permutation
/// over the p cells (permutations make every step's accesses exclusive by
/// construction). Encoded flat as 2 * steps blocks of p indices:
/// [read_0 | write_0 | read_1 | write_1 | ...].
[[nodiscard]] std::vector<index_t> gen_pram_schedule(Rng& rng, index_t p,
                                                     index_t steps);

}  // namespace scm::testing
