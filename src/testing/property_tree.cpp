// Tree-workload properties: euler_tour, tree_reduce, tree_contract and
// tree_lca, each certified by all seven oracle families of the runner
// (functional, conformance, independence, certificate, metamorphic
// translation + relabeling, bulk-A/B, parallel engine).
//
// The CaseInput field mapping (docs/TESTING.md):
//   n          vertex count          edges  the tree's edge list (labels)
//   k          root label + 1        keys   per-vertex int64 values
//   perm       flattened LCA query pairs (<= 32 queries)
//   algo_seed  contraction priority salt    tree_shape  generator family
//
// All four algorithms normalize to dense first-appearance ids before any
// message is sent, so the relabeling oracle demands bit-identical metrics
// AND an identical per-link occupancy multiset under a random renaming of
// the vertex labels; translation does the same for a grid shift.
#include "testing/property.hpp"

#include "collectives/operators.hpp"
#include "tree/contraction.hpp"
#include "tree/euler.hpp"
#include "tree/lca.hpp"
#include "tree/reductions.hpp"
#include "tree/tree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <unordered_map>
#include <utility>
#include <vector>

namespace scm::testing {

namespace {

double log2ceil(index_t n) {
  index_t bits = 0;
  index_t v = 1;
  while (v < std::max<index_t>(n, 1)) {
    v <<= 1;
    ++bits;
  }
  return static_cast<double>(bits);
}

template <class T>
std::string vec_mismatch(const char* what, const std::vector<T>& got,
                         const std::vector<T>& want) {
  std::ostringstream os;
  os << what << ": ";
  if (got.size() != want.size()) {
    os << "size " << got.size() << " want " << want.size();
    return os.str();
  }
  for (size_t i = 0; i < got.size(); ++i) {
    if (!(got[i] == want[i])) {
      os << "index " << i << ": got " << got[i] << " want " << want[i];
      return os.str();
    }
  }
  os << "no difference";
  return os.str();
}

[[nodiscard]] tree::Tree tree_of(const CaseInput& in) {
  return tree::Tree{in.n, in.edges, in.k - 1};
}

[[nodiscard]] std::vector<std::pair<index_t, index_t>> queries_of(
    const CaseInput& in) {
  std::vector<std::pair<index_t, index_t>> qs;
  qs.reserve(in.perm.size() / 2);
  for (size_t i = 0; i + 1 < in.perm.size(); i += 2) {
    qs.emplace_back(in.perm[i], in.perm[i + 1]);
  }
  return qs;
}

/// Dense-indexed values from the label-indexed key array.
[[nodiscard]] std::vector<std::int64_t> dense_values(
    const tree::DenseTree& dt, const std::vector<std::int64_t>& keys) {
  std::vector<std::int64_t> vals(static_cast<size_t>(dt.n));
  for (index_t d = 0; d < dt.n; ++d) {
    vals[static_cast<size_t>(d)] =
        keys[static_cast<size_t>(dt.to_label[static_cast<size_t>(d)])];
  }
  return vals;
}

/// Dense-indexed machine output mapped back to vertex labels.
[[nodiscard]] std::vector<std::int64_t> to_label_order(
    const tree::DenseTree& dt, const std::vector<std::int64_t>& dense) {
  std::vector<std::int64_t> out(static_cast<size_t>(dt.n));
  for (index_t d = 0; d < dt.n; ++d) {
    out[static_cast<size_t>(dt.to_label[static_cast<size_t>(d)])] =
        dense[static_cast<size_t>(d)];
  }
  return out;
}

CaseInput gen_tree_case(Rng& rng, index_t target, index_t max_n,
                        bool with_queries) {
  CaseInput in;
  in.n = std::clamp<index_t>(target, 1, max_n);
  in.n_vertices = in.n;
  in.tree_shape = gen_tree_shape(rng);
  in.edges = gen_tree(rng, in.n, in.tree_shape);
  in.k = rng.uniform(0, in.n - 1) + 1;  // root label + 1 (k stays >= 1)
  in.shape = gen_key_shape(rng);
  in.keys = gen_keys(rng, in.n, in.shape);
  in.algo_seed = rng.next();
  in.geom = gen_geometry(rng, in.n, GeomKind::kSquareZ);
  if (with_queries) {
    const index_t q =
        std::min<index_t>(32, rng.uniform(1, std::max<index_t>(in.n, 1)));
    in.perm.reserve(static_cast<size_t>(2 * q));
    for (index_t i = 0; i < 2 * q; ++i) {
      in.perm.push_back(rng.uniform(0, in.n - 1));
    }
  }
  return in;
}

bool valid_tree_case(const CaseInput& in) {
  if (in.n < 1 || in.n_vertices != in.n) return false;
  if (in.k < 1 || in.k > in.n) return false;
  if (static_cast<index_t>(in.keys.size()) != in.n) return false;
  if (in.perm.size() % 2 != 0 || in.perm.size() > 64) return false;
  for (const index_t x : in.perm) {
    if (x < 0 || x >= in.n) return false;
  }
  return tree::is_tree(tree_of(in));
}

/// The relabeling oracle's transform: rename every vertex by a salted
/// random permutation. Dense normalization must make this unobservable.
CaseInput relabel_tree_case(const CaseInput& in, std::uint64_t salt) {
  Rng rng(salt);
  const std::vector<index_t> sigma = gen_permutation(rng, in.n);
  CaseInput out = in;
  for (auto& [u, v] : out.edges) {
    u = sigma[static_cast<size_t>(u)];
    v = sigma[static_cast<size_t>(v)];
  }
  out.k = sigma[static_cast<size_t>(in.k - 1)] + 1;
  for (index_t v = 0; v < in.n; ++v) {
    out.keys[static_cast<size_t>(sigma[static_cast<size_t>(v)])] =
        in.keys[static_cast<size_t>(v)];
  }
  for (auto& x : out.perm) x = sigma[static_cast<size_t>(x)];
  return out;
}

/// Shrinker repair: whatever the shrinker left in `edges` becomes a tree
/// again — labels are first-appearance compacted, cycle edges dropped,
/// and the remaining forest chained into one component.
void rebuild_tree_case(CaseInput& in) {
  std::unordered_map<index_t, index_t> remap;
  std::vector<std::pair<index_t, index_t>> edges;
  for (const auto& [u, v] : in.edges) {
    if (u < 0 || v < 0 || u == v) continue;
    auto id = [&](index_t x) {
      return remap.try_emplace(x, static_cast<index_t>(remap.size()))
          .first->second;
    };
    const index_t du = id(u);
    const index_t dv = id(v);
    edges.emplace_back(du, dv);
  }
  const index_t n = std::max<index_t>(static_cast<index_t>(remap.size()), 1);
  std::vector<index_t> uf(static_cast<size_t>(n));
  std::iota(uf.begin(), uf.end(), index_t{0});
  auto find = [&](index_t v) {
    while (uf[static_cast<size_t>(v)] != v) {
      uf[static_cast<size_t>(v)] =
          uf[static_cast<size_t>(uf[static_cast<size_t>(v)])];
      v = uf[static_cast<size_t>(v)];
    }
    return v;
  };
  std::vector<std::pair<index_t, index_t>> kept;
  for (const auto& [u, v] : edges) {
    const index_t ru = find(u);
    const index_t rv = find(v);
    if (ru == rv) continue;  // would close a cycle
    uf[static_cast<size_t>(ru)] = rv;
    kept.emplace_back(u, v);
  }
  index_t prev = -1;
  for (index_t v = 0; v < n; ++v) {
    if (find(v) != v) continue;
    if (prev >= 0) {
      kept.emplace_back(prev, v);
      uf[static_cast<size_t>(find(prev))] = v;
    }
    prev = v;
  }
  in.n = n;
  in.n_vertices = n;
  in.edges = std::move(kept);
  in.k = std::clamp<index_t>(in.k, 1, n);
  in.keys.resize(static_cast<size_t>(n), 0);
  if (in.perm.size() % 2 != 0) in.perm.pop_back();
  if (in.perm.size() > 64) in.perm.resize(64);
  for (auto& x : in.perm) x = ((x % n) + n) % n;
  if (in.tree_shape == TreeShape::kNone) {
    in.tree_shape = TreeShape::kRandomPrufer;
  }
  in.geom = canonical_geometry(GeomKind::kSquareZ, n);
}

/// Shared instance parameters of the tree budgets.
struct TreeDims {
  double s;   ///< arc count 2(n-1), floored at 1
  double sd;  ///< arc square side
  double lg;  ///< log2ceil(s) + 2
};

[[nodiscard]] TreeDims tree_dims(index_t n) {
  const index_t arcs = std::max<index_t>(2 * (n - 1), 1);
  return TreeDims{static_cast<double>(arcs),
                  static_cast<double>(square_side_for(arcs)),
                  log2ceil(arcs) + 2};
}

Property make_euler_tour() {
  Property p;
  p.name = "euler_tour";
  p.min_n = 1;
  p.max_n = 96;
  p.generate = [](Rng& rng, index_t n) {
    return gen_tree_case(rng, n, 96, /*with_queries=*/false);
  };
  p.valid = valid_tree_case;
  p.relabel = relabel_tree_case;
  p.rebuild = rebuild_tree_case;
  p.run = [](Machine& m, const CaseInput& in) {
    CaseOutcome out;
    out.size = in.n;
    const tree::Tree t = tree_of(in);
    const tree::DenseTree dt = tree::normalize(t);
    const tree::EulerTour tour = tree::euler_tour(m, dt, in.geom.origin());
    const tree::HostTour want = tree::host_euler_tour(dt);
    if (tour.parent != want.parent) {
      out.ok = false;
      out.failure = vec_mismatch("euler_tour parent mismatch", tour.parent,
                                 want.parent);
      return out;
    }
    if (tour.depth != want.depth) {
      out.ok = false;
      out.failure =
          vec_mismatch("euler_tour depth mismatch", tour.depth, want.depth);
      return out;
    }
    if (tour.first != want.first) {
      out.ok = false;
      out.failure =
          vec_mismatch("euler_tour first mismatch", tour.first, want.first);
      return out;
    }
    if (tour.last != want.last) {
      out.ok = false;
      out.failure =
          vec_mismatch("euler_tour last mismatch", tour.last, want.last);
      return out;
    }
    // One arc mergesort (s^{3/2}) plus R Wyllie rounds, each a request +
    // reply batch of up to s messages across the arc square (s^{3/2} per
    // round worst case); scans and hand-offs are O(s lg).
    const auto [s, sd, lg] = tree_dims(in.n);
    const auto rounds = static_cast<double>(tour.rank_rounds);
    out.budgets = {
        {"energy", std::pow(s, 1.5) * (rounds + 4) + 4 * s * lg + 64},
        {"depth", lg * lg * lg + (rounds + 4) * lg + 32},
        {"distance", (rounds + 8) * (4 * sd + 8) + 64}};
    return out;
  };
  return p;
}

Property make_tree_reduce() {
  Property p;
  p.name = "tree_reduce";
  p.min_n = 1;
  p.max_n = 96;
  p.generate = [](Rng& rng, index_t n) {
    return gen_tree_case(rng, n, 96, /*with_queries=*/false);
  };
  p.valid = valid_tree_case;
  p.relabel = relabel_tree_case;
  p.rebuild = rebuild_tree_case;
  p.run = [](Machine& m, const CaseInput& in) {
    CaseOutcome out;
    out.size = in.n;
    const tree::Tree t = tree_of(in);
    const tree::DenseTree dt = tree::normalize(t);
    const tree::EulerTour tour = tree::euler_tour(m, dt, in.geom.origin());
    const std::vector<std::int64_t> vals = dense_values(dt, in.keys);
    const auto neg = [](std::int64_t v) { return -v; };
    const std::vector<std::int64_t> down =
        tree::rootfix(m, tour, vals, Plus{}, neg);
    const std::vector<std::int64_t> up =
        tree::leaffix(m, tour, vals, Plus{}, neg, std::int64_t{0});
    const std::vector<std::int64_t> want_down =
        tree::host_rootfix(t, in.keys, Plus{});
    const std::vector<std::int64_t> want_up =
        tree::host_leaffix(t, in.keys, Plus{});
    if (const auto got = to_label_order(dt, down); got != want_down) {
      out.ok = false;
      out.failure = vec_mismatch("rootfix mismatch", got, want_down);
      return out;
    }
    if (const auto got = to_label_order(dt, up); got != want_up) {
      out.ok = false;
      out.failure = vec_mismatch("leaffix mismatch", got, want_up);
      return out;
    }
    // Tour budget plus two fan/scan/deliver passes, each O(s^{3/2}) energy
    // (s messages across the arc square) and O(lg) depth.
    const auto [s, sd, lg] = tree_dims(in.n);
    const auto rounds = static_cast<double>(tour.rank_rounds);
    out.budgets = {
        {"energy", std::pow(s, 1.5) * (rounds + 8) + 8 * s * lg + 64},
        {"depth", lg * lg * lg + (rounds + 8) * lg + 48},
        {"distance", (rounds + 12) * (4 * sd + 8) + 64}};
    return out;
  };
  return p;
}

Property make_tree_contract() {
  Property p;
  p.name = "tree_contract";
  p.min_n = 1;
  p.max_n = 64;
  p.generate = [](Rng& rng, index_t n) {
    return gen_tree_case(rng, n, 64, /*with_queries=*/false);
  };
  p.valid = valid_tree_case;
  p.relabel = relabel_tree_case;
  p.rebuild = rebuild_tree_case;
  p.run = [](Machine& m, const CaseInput& in) {
    CaseOutcome out;
    out.size = in.n;
    const tree::Tree t = tree_of(in);
    const tree::DenseTree dt = tree::normalize(t);
    const std::vector<std::int64_t> vals = dense_values(dt, in.keys);
    const tree::ContractResult<std::int64_t> result = tree::tree_contract(
        m, dt, vals, Plus{}, in.algo_seed, in.geom.origin());
    const std::int64_t want =
        std::accumulate(in.keys.begin(), in.keys.end(), std::int64_t{0});
    if (result.value != want) {
      out.ok = false;
      std::ostringstream os;
      os << "tree_contract total mismatch: got " << result.value << " want "
         << want << " (survivor " << result.survivor << ", "
         << result.rounds << " rounds)";
      out.failure = os.str();
      return out;
    }
    if (result.survivor < 0 || result.survivor >= in.n) {
      out.ok = false;
      out.failure = "tree_contract survivor out of range";
      return out;
    }
    // Per round: three segmented scans over the full arc array plus the
    // degree/fold batches — O(s^{3/2}) energy and O(lg) depth each, C
    // rounds total; the setup sort adds one s^{3/2}.
    const auto [s, sd, lg] = tree_dims(in.n);
    const auto c = static_cast<double>(result.rounds);
    out.budgets = {
        {"energy", std::pow(s, 1.5) * (c + 4) + (c + 4) * s * lg + 64},
        {"depth", lg * lg * lg + (c + 4) * (4 * lg + 8) + 48},
        {"distance", (c + 4) * (6 * sd + 12) + 64}};
    return out;
  };
  return p;
}

Property make_tree_lca() {
  Property p;
  p.name = "tree_lca";
  p.min_n = 1;
  p.max_n = 48;
  p.generate = [](Rng& rng, index_t n) {
    return gen_tree_case(rng, n, 48, /*with_queries=*/true);
  };
  p.valid = valid_tree_case;
  p.relabel = relabel_tree_case;
  p.rebuild = rebuild_tree_case;
  p.run = [](Machine& m, const CaseInput& in) {
    CaseOutcome out;
    out.size = in.n;
    const tree::Tree t = tree_of(in);
    const tree::DenseTree dt = tree::normalize(t);
    const tree::EulerTour tour = tree::euler_tour(m, dt, in.geom.origin());
    const std::vector<std::pair<index_t, index_t>> label_qs = queries_of(in);
    std::vector<std::pair<index_t, index_t>> dense_qs;
    dense_qs.reserve(label_qs.size());
    for (const auto& [a, b] : label_qs) {
      dense_qs.emplace_back(dt.to_dense[static_cast<size_t>(a)],
                            dt.to_dense[static_cast<size_t>(b)]);
    }
    const tree::LcaResult result =
        tree::lca(m, dt, tour, dense_qs, in.geom.origin());
    std::vector<index_t> got;
    got.reserve(result.answers.size());
    for (const index_t d : result.answers) {
      got.push_back(dt.to_label[static_cast<size_t>(d)]);
    }
    const std::vector<index_t> want = tree::host_lca(t, label_qs);
    if (got != want) {
      out.ok = false;
      out.failure = vec_mismatch("tree_lca answers mismatch", got, want);
      return out;
    }
    // Tour + occurrence/RMQ build (O(s^{3/2})), two query mergesorts
    // (q^{3/2}), and W cover fetches in G groups of <= 16 serialized
    // steps.
    const auto [s, sd, lg] = tree_dims(in.n);
    const auto q = static_cast<double>(
        std::max<index_t>(static_cast<index_t>(label_qs.size()), 1));
    const double lq = log2ceil(static_cast<index_t>(q)) + 2;
    const double qsd =
        static_cast<double>(square_side_for(static_cast<index_t>(q)));
    const auto rounds = static_cast<double>(tour.rank_rounds);
    const auto walked = static_cast<double>(result.walk_nodes);
    const auto groups = static_cast<double>(result.groups);
    const auto len = static_cast<double>(result.max_len);
    out.budgets = {
        {"energy", std::pow(s, 1.5) * (rounds + 6) + 4 * s * lg +
                       std::pow(q, 1.5) * (lq + 4) +
                       (q + walked) * (8 * sd + 2 * qsd + 16) + 64},
        {"depth", lg * lg * lg + (rounds + 6) * lg + lq * lq * lq +
                      groups * (len + 4) * 4 + 48},
        {"distance", (rounds + 8) * (4 * sd + 8) + lq * (4 * qsd + 8) +
                         groups * (len + 4) * (12 * sd + 16) + 64}};
    return out;
  };
  return p;
}

}  // namespace

void append_tree_properties(std::vector<Property>& out) {
  out.push_back(make_euler_tour());
  out.push_back(make_tree_reduce());
  out.push_back(make_tree_contract());
  out.push_back(make_tree_lca());
}

}  // namespace scm::testing
