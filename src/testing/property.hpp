// The property registry of the fuzzing engine: one Property per Table-1
// algorithm (plus the baselines and auxiliaries), each bundling
//
//   * generate — build a random CaseInput of roughly a target size from
//     the seeded generator library (testing/gen.hpp);
//   * valid    — structural precondition check, used by the shrinker to
//     reject transformations that leave the algorithm's domain (e.g. a
//     non-power-of-two n for tree_scan_1d);
//   * run      — execute the algorithm on a Machine, compare against a
//     host-side reference (the *functional* oracle), and report the
//     theory budgets for the *cost* oracles: instance-specific upper-bound
//     expressions (exact replays for data-oblivious networks, Θ-shapes
//     with instance parameters like iteration counts otherwise) that the
//     bound certificates of testing/bounds.json scale by a fitted
//     constant;
//   * translate / reflect — metamorphic variants: the same instance on a
//     translated (or mirrored) grid, whose metrics must not change.
//
// Properties are pure: the same CaseInput always produces the same
// execution, which is what makes replay tokens and shrinking sound.
#pragma once

#include "spatial/geometry.hpp"
#include "spatial/machine.hpp"
#include "spmv/coo.hpp"
#include "testing/gen.hpp"

#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace scm::testing {

/// One generated test instance. A single struct covers every property's
/// domain (unused fields stay empty) so the shrinker can apply generic
/// transformations without knowing which algorithm it is minimizing.
struct CaseInput {
  index_t n{0};                     ///< element count (meaning per property)
  std::vector<std::int64_t> keys;   ///< key array (sorts, scans, select)
  std::vector<index_t> perm;        ///< permutation of [0, n)
  std::vector<char> flags;          ///< per-element flags (compact)
  index_t k{1};                     ///< rank (select, rank_select)
  std::uint64_t algo_seed{0};       ///< seed consumed by the algorithm
  Geometry geom{};                  ///< placement on the grid
  KeyShape shape{KeyShape::kUniform};
  // Sparse-matrix / graph instances.
  index_t rows{0};
  index_t cols{0};
  std::vector<Triple> triples;
  index_t n_vertices{0};
  std::vector<std::pair<index_t, index_t>> edges;
  // PRAM instances: a flat schedule of 2 * pram_steps permutations over n
  // cells (see gen_pram_schedule).
  index_t pram_steps{0};
  std::vector<index_t> pram_sched;
  // Tree instances: the generator family the edge list came from (kNone
  // for every non-tree property, keeping their equality and str() output
  // unchanged). The tree itself rides in `edges`, its root in `k` - 1,
  // per-vertex values in `keys`, flattened LCA query pairs in `perm`.
  TreeShape tree_shape{TreeShape::kNone};

  /// One-line description; full element dump when the instance is small
  /// (shrunk reports), sizes only otherwise.
  [[nodiscard]] std::string str() const;

  friend bool operator==(const CaseInput&, const CaseInput&) = default;
};

/// Result of running one case: the functional verdict plus the inputs of
/// the cost oracles.
struct CaseOutcome {
  bool ok{true};
  std::string failure;  ///< functional-oracle mismatch; empty when ok
  index_t size{0};      ///< effective instance size for certificate gating
  bool skip_cost{false};  ///< true when cost oracles do not apply (e.g. the
                          ///< select fallback path, a legal rare event)
  /// metric name ("energy" / "depth" / "distance") -> theory budget for
  /// THIS instance. A certificate checks metric <= constant * slack * budget.
  std::vector<std::pair<std::string, double>> budgets;

  [[nodiscard]] double budget(const std::string& metric) const;
};

/// A fuzzable algorithm property.
struct Property {
  std::string name;
  index_t min_n{2};    ///< smallest size the generator produces
  index_t max_n{256};  ///< largest size (keeps smoke-tier runtime bounded)
  bool metamorphic_translation{true};  ///< costs invariant under translation
  std::function<CaseInput(Rng&, index_t target_n)> generate;
  std::function<bool(const CaseInput&)> valid;  ///< may be null (= always)
  std::function<CaseOutcome(Machine&, const CaseInput&)> run;
  /// The same instance translated by `delta` (null = shift geom.region).
  std::function<CaseInput(const CaseInput&, Coord delta)> translate;
  /// The mirrored instance when representable for this input (a column
  /// reflection of the occupied subgrid), std::nullopt otherwise. Null for
  /// properties with no reflection oracle.
  std::function<std::optional<CaseInput>(const CaseInput&)> reflect;
  /// The same instance under a salted random renaming of its identifier
  /// space (vertex labels for the tree/graph properties). All three
  /// metrics and the per-link occupancy multiset must be bit-identical:
  /// algorithms address through dense normalized ids, so the labeling
  /// must be unobservable. Null for properties with no renaming oracle.
  std::function<CaseInput(const CaseInput&, std::uint64_t salt)> relabel;
  /// Repairs an instance after the shrinker changed its structure (n,
  /// element drops): re-derives dependent fields (geometry, clamped ranks,
  /// schedule shapes) so `valid` can accept the candidate. Null = the
  /// default repair (truncate keys/flags to n, canonical geometry, clamp
  /// k into [1, n]).
  std::function<void(CaseInput&)> rebuild;
};

/// The registry, in a fixed documented order (replay tokens select the
/// property as case_index % size, so the order is part of the replay
/// contract for a given revision).
[[nodiscard]] const std::vector<Property>& all_properties();

/// Registry lookup by name; nullptr when absent.
[[nodiscard]] const Property* find_property(const std::string& name);

/// Registers the tree-workload properties (euler_tour, tree_reduce,
/// tree_contract, tree_lca — testing/property_tree.cpp) at the tail of
/// the registry. Called once from all_properties().
void append_tree_properties(std::vector<Property>& out);

/// Default translation: shifts the geometry region by `delta`.
[[nodiscard]] CaseInput translate_geometry(const CaseInput& in, Coord delta);

/// Test-only fault injection: when enabled, the `permute` property issues
/// one extra bulk batch whose two charged members share a destination — a
/// deliberate write-write conflict the independence oracle must catch,
/// shrink, and report with a replay token (tests/test_independence.cpp).
/// Off by default; never enable outside tests.
void set_inject_bulk_overlap(bool on);
[[nodiscard]] bool inject_bulk_overlap();

}  // namespace scm::testing
