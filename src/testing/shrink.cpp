#include "testing/shrink.hpp"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

namespace scm::testing {

namespace {

/// Which vector a mask-drop transformation operates on: the instance's
/// primary element sequence.
enum class Primary { kKeys, kTriples, kEdges, kNone };

Primary primary_of(const CaseInput& in) {
  if (!in.triples.empty()) return Primary::kTriples;
  if (!in.edges.empty()) return Primary::kEdges;
  if (in.keys.size() > 1) return Primary::kKeys;
  return Primary::kNone;
}

size_t primary_size(const CaseInput& in) {
  switch (primary_of(in)) {
    case Primary::kKeys: return in.keys.size();
    case Primary::kTriples: return in.triples.size();
    case Primary::kEdges: return in.edges.size();
    case Primary::kNone: return 0;
  }
  return 0;
}

/// Remaps a permutation after dropping elements: kept sources keep their
/// order, and each destination becomes its rank among the kept
/// destinations — a permutation of the kept count.
std::vector<index_t> remap_perm(const std::vector<index_t>& perm,
                                const std::vector<char>& keep) {
  std::vector<index_t> kept_dsts;
  for (size_t i = 0; i < perm.size(); ++i) {
    if (keep[i]) kept_dsts.push_back(perm[i]);
  }
  std::vector<index_t> sorted = kept_dsts;
  std::sort(sorted.begin(), sorted.end());
  std::vector<index_t> out;
  out.reserve(kept_dsts.size());
  for (const index_t d : kept_dsts) {
    out.push_back(static_cast<index_t>(
        std::lower_bound(sorted.begin(), sorted.end(), d) - sorted.begin()));
  }
  return out;
}

/// Drops the masked-out elements of the primary sequence, keeping the
/// dependent vectors (flags, perm) aligned.
CaseInput drop_elements(const CaseInput& in, const std::vector<char>& keep) {
  CaseInput out = in;
  switch (primary_of(in)) {
    case Primary::kKeys: {
      out.keys.clear();
      for (size_t i = 0; i < in.keys.size(); ++i) {
        if (keep[i]) out.keys.push_back(in.keys[i]);
      }
      if (!in.flags.empty()) {
        out.flags.clear();
        for (size_t i = 0; i < in.flags.size() && i < keep.size(); ++i) {
          if (keep[i]) out.flags.push_back(in.flags[i]);
        }
      }
      if (!in.perm.empty()) out.perm = remap_perm(in.perm, keep);
      out.n = static_cast<index_t>(out.keys.size());
      break;
    }
    case Primary::kTriples: {
      out.triples.clear();
      for (size_t i = 0; i < in.triples.size(); ++i) {
        if (keep[i]) out.triples.push_back(in.triples[i]);
      }
      break;
    }
    case Primary::kEdges: {
      out.edges.clear();
      for (size_t i = 0; i < in.edges.size(); ++i) {
        if (keep[i]) out.edges.push_back(in.edges[i]);
      }
      break;
    }
    case Primary::kNone:
      break;
  }
  return out;
}

/// Rank-compresses keys toward small integers: the d distinct values
/// become 0..d-1 in order. Preserves every comparison outcome, so
/// comparator-driven failures survive while the report gets readable.
CaseInput canonicalize_keys(const CaseInput& in) {
  CaseInput out = in;
  std::map<std::int64_t, std::int64_t> rank;
  for (const std::int64_t k : in.keys) rank[k] = 0;
  std::int64_t next = 0;
  for (auto& [key, value] : rank) value = next++;
  for (auto& k : out.keys) k = rank[k];
  return out;
}

}  // namespace

void default_rebuild(CaseInput& in) {
  if (!in.keys.empty()) {
    in.n = std::min<index_t>(std::max<index_t>(in.n, 1),
                             static_cast<index_t>(in.keys.size()));
    in.keys.resize(static_cast<size_t>(in.n));
    if (!in.flags.empty()) in.flags.resize(static_cast<size_t>(in.n));
  } else {
    in.n = std::max<index_t>(in.n, 1);
  }
  in.k = std::clamp<index_t>(in.k, 1, std::max<index_t>(in.n, 1));
  in.geom = canonical_geometry(in.geom.kind, in.n);
}

CaseInput shrink_case(const Property& prop, CaseInput failing,
                      const StillFails& still_fails, index_t max_attempts,
                      ShrinkStats* stats) {
  CaseInput cur = std::move(failing);
  index_t attempts = 0;
  index_t accepted = 0;

  // Repairs + validates + re-runs one candidate; adopts it when it still
  // fails. Returns true exactly on adoption (strict progress).
  auto try_adopt = [&](CaseInput cand) -> bool {
    if (attempts >= max_attempts) return false;
    if (prop.rebuild) {
      prop.rebuild(cand);
    } else {
      default_rebuild(cand);
    }
    if (cand == cur) return false;
    if (prop.valid && !prop.valid(cand)) return false;
    ++attempts;
    if (!still_fails(cand)) return false;
    cur = std::move(cand);
    ++accepted;
    return true;
  };

  bool progress = true;
  while (progress && attempts < max_attempts) {
    progress = false;

    // 1. Halve the primary sequence (keep the first half).
    if (const size_t psize = primary_size(cur); psize >= 2) {
      std::vector<char> keep(psize, 1);
      for (size_t i = (psize + 1) / 2; i < psize; ++i) keep[i] = 0;
      if (try_adopt(drop_elements(cur, keep))) {
        progress = true;
        continue;
      }
    }

    // 2. Delta-debugging chunk drops: remove aligned chunks of shrinking
    // width (down to single elements).
    {
      const size_t psize = primary_size(cur);
      bool dropped = false;
      for (size_t chunk = psize / 2; chunk >= 1 && !dropped;
           chunk = chunk / 2) {
        for (size_t start = 0; start < psize; start += chunk) {
          std::vector<char> keep(psize, 1);
          const size_t end = std::min(start + chunk, psize);
          for (size_t i = start; i < end; ++i) keep[i] = 0;
          if (try_adopt(drop_elements(cur, keep))) {
            dropped = true;
            break;
          }
        }
        if (chunk == 1) break;
      }
      if (dropped) {
        progress = true;
        continue;
      }
    }

    // 3. Scalar parameters: n (for instances whose size is not the key
    // count, e.g. broadcast rects and PRAM processor counts), step counts,
    // ranks, and the algorithm seed.
    {
      CaseInput cand = cur;
      cand.n = cur.n / 2;
      if (cand.n >= 1 && try_adopt(std::move(cand))) {
        progress = true;
        continue;
      }
      cand = cur;
      cand.n = cur.n - 1;
      if (cand.n >= 1 && try_adopt(std::move(cand))) {
        progress = true;
        continue;
      }
      if (cur.pram_steps > 1) {
        cand = cur;
        cand.pram_steps = cur.pram_steps / 2;
        if (try_adopt(std::move(cand))) {
          progress = true;
          continue;
        }
      }
      if (cur.k > 1) {
        cand = cur;
        cand.k = cur.k / 2;
        if (try_adopt(std::move(cand))) {
          progress = true;
          continue;
        }
        cand = cur;
        cand.k = 1;
        if (try_adopt(std::move(cand))) {
          progress = true;
          continue;
        }
      }
      if (cur.algo_seed != 0) {
        cand = cur;
        cand.algo_seed = 0;
        if (try_adopt(std::move(cand))) {
          progress = true;
          continue;
        }
      }
    }

    // 4. Canonicalize: origin to (0, 0) via the rebuild hook (an identity
    // transform whose repair moves the geometry), then key values to small
    // ranks, then matrix values to 1.
    {
      if (try_adopt(cur)) {  // rebuild canonicalizes the geometry
        progress = true;
        continue;
      }
      if (!cur.keys.empty() && try_adopt(canonicalize_keys(cur))) {
        progress = true;
        continue;
      }
      if (!cur.triples.empty()) {
        CaseInput cand = cur;
        for (auto& t : cand.triples) t.value = 1.0;
        if (try_adopt(std::move(cand))) {
          progress = true;
          continue;
        }
      }
    }
  }

  if (stats != nullptr) {
    stats->attempts = attempts;
    stats->accepted = accepted;
  }
  return cur;
}

}  // namespace scm::testing
