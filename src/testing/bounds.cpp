#include "testing/bounds.hpp"

#include "util/json.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

namespace scm::testing {

namespace {

/// Round-trip-safe number formatting: certificates are small ratios, six
/// significant digits keep the file diffable while losing nothing the
/// slack would not absorb anyway.
std::string fmt(double v) {
  std::ostringstream os;
  os.precision(6);
  os << v;
  return os.str();
}

}  // namespace

std::optional<BoundSet> BoundSet::parse(const std::string& text) {
  const std::optional<util::json::Value> doc = util::json::parse(text);
  if (!doc || !doc->is_object()) return std::nullopt;
  const util::json::Value* version = doc->find("version");
  if (version == nullptr || !version->is_number() ||
      static_cast<int>(version->number) != kVersion) {
    return std::nullopt;
  }
  BoundSet out;
  if (const util::json::Value* slack = doc->find("slack");
      slack != nullptr && slack->is_number() && slack->number >= 1.0) {
    out.slack_ = slack->number;
  }
  const util::json::Value* certs = doc->find("certificates");
  if (certs == nullptr || !certs->is_array()) return std::nullopt;
  for (const util::json::Value& entry : certs->array) {
    const util::json::Value* property = entry.find("property");
    const util::json::Value* metric = entry.find("metric");
    const util::json::Value* constant = entry.find("constant");
    const util::json::Value* min_n = entry.find("min_n");
    if (property == nullptr || !property->is_string() || metric == nullptr ||
        !metric->is_string() || constant == nullptr ||
        !constant->is_number() || min_n == nullptr || !min_n->is_number()) {
      return std::nullopt;
    }
    out.certificates_.push_back(BoundCertificate{
        property->string, metric->string, constant->number,
        static_cast<index_t>(min_n->number)});
  }
  return out;
}

std::optional<BoundSet> BoundSet::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

std::string BoundSet::serialize() const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"version\": " << kVersion << ",\n";
  os << "  \"slack\": " << fmt(slack_) << ",\n";
  os << "  \"certificates\": [\n";
  for (size_t i = 0; i < certificates_.size(); ++i) {
    const BoundCertificate& c = certificates_[i];
    os << "    {\"property\": \"" << c.property << "\", \"metric\": \""
       << c.metric << "\", \"constant\": " << fmt(c.constant)
       << ", \"min_n\": " << c.min_n << "}"
       << (i + 1 < certificates_.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

bool BoundSet::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << serialize();
  return static_cast<bool>(out);
}

const BoundCertificate* BoundSet::find(const std::string& property,
                                       const std::string& metric) const {
  for (const BoundCertificate& c : certificates_) {
    if (c.property == property && c.metric == metric) return &c;
  }
  return nullptr;
}

void BoundSet::record_ratio(const std::string& property,
                            const std::string& metric, double ratio,
                            index_t min_n) {
  for (BoundCertificate& c : certificates_) {
    if (c.property == property && c.metric == metric) {
      c.constant = std::max(c.constant, ratio);
      return;
    }
  }
  certificates_.push_back(BoundCertificate{property, metric, ratio, min_n});
}

bool BoundSet::check(const std::string& property, const std::string& metric,
                     double measured, double budget, index_t size) const {
  if (budget == 0.0) return measured == 0.0;
  const BoundCertificate* cert = find(property, metric);
  if (cert == nullptr) return true;  // no certificate -> not checked
  if (size < cert->min_n) return true;
  return measured <= cert->constant * slack_ * budget + kCheckHeadroom;
}

std::string BoundSet::explain(const std::string& property,
                              const std::string& metric, double measured,
                              double budget) const {
  std::ostringstream os;
  os << metric << " = " << fmt(measured);
  if (budget == 0.0) {
    os << " but the theory budget is 0 (must be exactly free)";
    return os.str();
  }
  const BoundCertificate* cert = find(property, metric);
  const double constant = cert != nullptr ? cert->constant : 0.0;
  os << " > certificate " << fmt(constant) << " * slack " << fmt(slack_)
     << " * budget " << fmt(budget) << " + headroom " << fmt(kCheckHeadroom)
     << " = " << fmt(constant * slack_ * budget + kCheckHeadroom)
     << " (ratio " << fmt(measured / budget) << ")";
  return os.str();
}

}  // namespace scm::testing
