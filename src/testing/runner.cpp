#include "testing/runner.hpp"

#include "spatial/bulk_ab.hpp"
#include "spatial/congestion.hpp"
#include "spatial/independence.hpp"
#include "spatial/validate.hpp"
#include "testing/shrink.hpp"

#include <chrono>
#include <cstdio>
#include <exception>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>

namespace scm::testing {

namespace {

double metric_of(const Metrics& m, const std::string& name) {
  if (name == "energy") return static_cast<double>(m.energy);
  if (name == "depth") return static_cast<double>(m.depth());
  if (name == "distance") return static_cast<double>(m.distance());
  if (name == "messages") return static_cast<double>(m.messages);
  return -1.0;
}

ConformanceChecker::Config checker_config() {
  ConformanceChecker::Config config;
  // Violations are fuzz findings to report with a replay token, not
  // aborts: non-strict even under SCM_STRICT_MODEL.
  config.strict = false;
  return config;
}

IndependenceChecker::Config independence_config() {
  IndependenceChecker::Config config;
  // Findings, not aborts — same policy as the conformance checker above.
  config.strict = false;
  return config;
}

/// One traced execution: outcome, machine totals, conformance and batch-
/// independence verdicts, plus (on metamorphic cadence) the link-level
/// congestion signature the translation/reflection oracles compare.
struct Execution {
  CaseOutcome outcome;
  Metrics metrics;
  bool conformance_ok{true};
  std::string conformance_report;
  bool independence_ok{true};
  std::string independence_report;
  /// Sorted per-link occupancy values (CongestionMap::occupancy_multiset);
  /// empty unless congestion tracking was requested.
  std::vector<index_t> link_multiset;
  index_t peak_link_load{0};
};

Execution execute(const Property& prop, const CaseInput& in,
                  bool track_congestion = false) {
  Machine m;
  ConformanceChecker checker(checker_config());
  IndependenceChecker independence(independence_config());
  FanoutSink fanout(std::vector<TraceSink*>{&checker, &independence});
  // Congestion tracking costs O(distance) per message, so it rides the
  // metamorphic cadence only.
  CongestionMap congestion;
  if (track_congestion) fanout.add(&congestion);
  m.set_trace(&fanout);
  Execution result;
  // A bug in the code under test may surface as an exception (a broken
  // sort invariant turning a count negative, say) long before any oracle
  // runs. That is a finding to report with a replay token, not a reason
  // to lose the whole fuzz run.
  try {
    result.outcome = prop.run(m, in);
  } catch (const std::exception& e) {
    result.outcome.ok = false;
    result.outcome.failure = std::string("uncaught exception: ") + e.what();
  } catch (...) {
    result.outcome.ok = false;
    result.outcome.failure = "uncaught non-standard exception";
  }
  checker.verify(m);
  m.set_trace(nullptr);
  result.metrics = m.metrics();
  result.conformance_ok = checker.report().ok();
  if (!result.conformance_ok) {
    result.conformance_report = checker.report().str();
  }
  result.independence_ok = independence.report().ok();
  if (!result.independence_ok) {
    result.independence_report = independence.report().str();
  }
  if (track_congestion) {
    result.link_multiset = congestion.occupancy_multiset();
    result.peak_link_load = congestion.max_link_load();
  }
  return result;
}

}  // namespace

std::string FailureRecord::str() const {
  std::ostringstream os;
  os << "FAIL [" << kind << "] " << property << " --replay=" << replay_token
     << "\n";
  os << "  " << detail << "\n";
  os << "  original: " << original.str() << "\n";
  os << "  shrunk:   " << shrunk.str() << " (" << shrink_attempts
     << " shrink attempts)";
  return os.str();
}

FuzzRunner::FuzzRunner(RunnerConfig config, BoundSet bounds)
    : config_(std::move(config)), bounds_(std::move(bounds)) {}

std::optional<std::pair<std::uint64_t, index_t>> FuzzRunner::parse_token(
    const std::string& token) {
  const size_t colon = token.find(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= token.size()) {
    return std::nullopt;
  }
  // Digits only on both sides: stoull/stoll would otherwise accept
  // leading whitespace and signs.
  for (size_t i = 0; i < token.size(); ++i) {
    if (i == colon) continue;
    if (token[i] < '0' || token[i] > '9') return std::nullopt;
  }
  std::uint64_t seed = 0;
  index_t index = 0;
  try {
    size_t used = 0;
    seed = std::stoull(token.substr(0, colon), &used);
    if (used != colon) return std::nullopt;
    const std::string rest = token.substr(colon + 1);
    index = static_cast<index_t>(std::stoll(rest, &used));
    if (used != rest.size() || index < 0) return std::nullopt;
  } catch (...) {
    return std::nullopt;
  }
  return std::make_pair(seed, index);
}

std::optional<FuzzRunner::ReplayToken> FuzzRunner::parse_replay_token(
    const std::string& token) {
  const size_t c1 = token.find(':');
  if (c1 == std::string::npos) return std::nullopt;
  const size_t c2 = token.find(':', c1 + 1);
  const auto head =
      parse_token(c2 == std::string::npos ? token : token.substr(0, c2));
  if (!head) return std::nullopt;
  ReplayToken out;
  out.seed = head->first;
  out.case_index = head->second;
  if (c2 != std::string::npos) {
    const std::string suffix = token.substr(c2 + 1);
    long long threads = 0;
    long long rows = 0;
    long long cols = 0;
    char excess = 0;
    if (std::sscanf(suffix.c_str(), "t%lldx%lldx%lld%c", &threads, &rows,
                    &cols, &excess) != 3 ||
        threads < 1 || rows < 1 || cols < 1) {
      return std::nullopt;
    }
    parallel::Config cfg;
    cfg.threads = static_cast<int>(threads);
    cfg.tile_rows = static_cast<index_t>(rows);
    cfg.tile_cols = static_cast<index_t>(cols);
    cfg.min_parallel_batch = 1;
    out.parallel = cfg;
  }
  return out;
}

std::vector<const Property*> FuzzRunner::selected() const {
  std::vector<const Property*> props;
  for (const Property& p : all_properties()) {
    if (config_.only.empty()) {
      props.push_back(&p);
      continue;
    }
    for (const std::string& name : config_.only) {
      if (p.name == name) {
        props.push_back(&p);
        break;
      }
    }
  }
  return props;
}

CaseInput FuzzRunner::generate_case(const Property& prop,
                                    index_t case_index) const {
  Rng rng(derive_case_seed(config_.seed, case_index));
  index_t hi = prop.max_n;
  if (config_.max_n > 0) hi = std::min(hi, config_.max_n);
  hi = std::max(hi, prop.min_n);
  // Quadratic bias toward small sizes: small instances dominate (cheap,
  // and most bugs reproduce there) while the tail still reaches max_n.
  const double r = rng.real();
  const index_t target =
      prop.min_n +
      static_cast<index_t>(r * r * static_cast<double>(hi - prop.min_n));
  return prop.generate(rng, target);
}

FuzzRunner::Verdict FuzzRunner::evaluate(const Property& prop,
                                         const CaseInput& in,
                                         bool check_metamorphic,
                                         bool check_ab,
                                         bool check_parallel) {
  const Execution base = execute(prop, in, check_metamorphic);
  if (!base.conformance_ok) {
    return {false, "conformance", base.conformance_report};
  }
  if (!base.independence_ok) {
    return {false, "independence", base.independence_report};
  }
  if (!base.outcome.ok) {
    return {false, "functional", base.outcome.failure};
  }
  if (!base.outcome.skip_cost) {
    for (const auto& [metric, budget] : base.outcome.budgets) {
      const double measured = metric_of(base.metrics, metric);
      if (config_.fit) {
        if (budget > 0 && base.outcome.size >= prop.min_n) {
          bounds_.record_ratio(prop.name, metric, measured / budget,
                               prop.min_n);
        }
      } else if (!bounds_.check(prop.name, metric, measured, budget,
                                base.outcome.size)) {
        return {false, "bound:" + metric,
                bounds_.explain(prop.name, metric, measured, budget)};
      }
    }
  }

  if (check_metamorphic && prop.metamorphic_translation) {
    // Translation leaves every message vector unchanged, so ALL metrics —
    // energy, messages, ops, and the (depth, distance) clock — must be
    // bit-identical on the moved grid.
    const Coord delta{17, -9};
    const CaseInput moved = prop.translate ? prop.translate(in, delta)
                                           : translate_geometry(in, delta);
    const Execution shifted = execute(prop, moved, /*track_congestion=*/true);
    if (!(shifted.metrics == base.metrics)) {
      std::ostringstream os;
      os << "metrics changed under translation by (" << delta.row << ","
         << delta.col << "): base " << base.metrics.str() << " vs moved "
         << shifted.metrics.str();
      return {false, "metamorphic:translation", os.str()};
    }
    if (shifted.link_multiset != base.link_multiset) {
      // Translation moves every dimension-ordered route rigidly: links
      // relocate but no occupancy value changes, so the multiset over
      // touched links must be bit-identical.
      std::ostringstream os;
      os << "link-occupancy multiset changed under translation by ("
         << delta.row << "," << delta.col << "): base " << base.link_multiset.size()
         << " links peak " << base.peak_link_load << " vs moved "
         << shifted.link_multiset.size() << " links peak "
         << shifted.peak_link_load;
      return {false, "metamorphic:translation", os.str()};
    }
    if (!shifted.outcome.ok) {
      return {false, "metamorphic:translation",
              "translated instance failed functionally: " +
                  shifted.outcome.failure};
    }
  }
  if (check_metamorphic && prop.relabel) {
    // A random renaming of the identifier space (vertex labels): the
    // algorithms address through dense normalized ids, so every message
    // vector — hence all metrics and the link-occupancy multiset — must
    // be bit-identical, not merely asymptotically equal.
    const CaseInput renamed =
        prop.relabel(in, in.algo_seed ^ 0x9e3779b97f4a7c15ULL);
    const Execution named = execute(prop, renamed, /*track_congestion=*/true);
    if (!(named.metrics == base.metrics)) {
      std::ostringstream os;
      os << "metrics changed under relabeling: base " << base.metrics.str()
         << " vs renamed " << named.metrics.str();
      return {false, "metamorphic:relabel", os.str()};
    }
    if (named.link_multiset != base.link_multiset) {
      std::ostringstream os;
      os << "link-occupancy multiset changed under relabeling: base "
         << base.link_multiset.size() << " links peak "
         << base.peak_link_load << " vs renamed "
         << named.link_multiset.size() << " links peak "
         << named.peak_link_load;
      return {false, "metamorphic:relabel", os.str()};
    }
    if (!named.outcome.ok) {
      return {false, "metamorphic:relabel",
              "relabeled instance failed functionally: " +
                  named.outcome.failure};
    }
  }
  if (check_metamorphic && prop.reflect) {
    if (const std::optional<CaseInput> mirrored = prop.reflect(in)) {
      // Reflection reverses columns; every message's length is preserved,
      // so energy and depth must match exactly.
      const Execution flipped = execute(prop, *mirrored, /*track_congestion=*/true);
      if (flipped.metrics.energy != base.metrics.energy ||
          flipped.metrics.depth() != base.metrics.depth()) {
        std::ostringstream os;
        os << "energy/depth changed under reflection: base "
           << base.metrics.str() << " vs mirrored " << flipped.metrics.str();
        return {false, "metamorphic:reflection", os.str()};
      }
      if (flipped.peak_link_load != base.peak_link_load) {
        // Column reflection maps the dimension-ordered route set onto its
        // mirror image (east/west link directions swap), a bijection on
        // links — so the peak link load is preserved exactly.
        std::ostringstream os;
        os << "peak link load changed under reflection: base "
           << base.peak_link_load << " vs mirrored "
           << flipped.peak_link_load;
        return {false, "metamorphic:reflection", os.str()};
      }
      if (!flipped.outcome.ok) {
        return {false, "metamorphic:reflection",
                "mirrored instance failed functionally: " +
                    flipped.outcome.failure};
      }
    }
  }

  if (check_ab) {
    // Swallow exceptions inside the A/B body: the base execution above
    // already succeeded, so a throw here could only come from a charging
    // divergence — which the totals comparison reports anyway.
    const AbResult ab = run_ab([&](Machine& machine) {
      try {
        (void)prop.run(machine, in);
      } catch (...) {
      }
    });
    if (!ab.ok()) {
      return {false, "bulk-ab", ab.diff()};
    }
  }

  if (check_parallel) {
    // Seventh oracle: re-execute the case with bulk rounds charged
    // through the sharded parallel engine (min_parallel_batch 1, so
    // every batch takes the parallel path) and assert the Metrics are
    // bit-identical to the base execution. The checkers run too: a
    // parallel-only conformance or independence finding is a real bug.
    parallel::Config cfg;
    cfg.threads = config_.parallel_threads;
    cfg.tile_rows = config_.parallel_tile_rows;
    cfg.tile_cols = config_.parallel_tile_cols;
    cfg.min_parallel_batch = 1;
    const ScopedBulkCharging bulk(true);
    const parallel::ScopedParallelEngine engine(cfg);
    const Execution par = execute(prop, in);
    if (!par.conformance_ok) {
      return {false, "parallel",
              "conformance under parallel engine:\n" +
                  par.conformance_report};
    }
    if (!par.independence_ok) {
      return {false, "parallel",
              "independence under parallel engine:\n" +
                  par.independence_report};
    }
    if (!par.outcome.ok) {
      return {false, "parallel",
              "functional failure under parallel engine: " +
                  par.outcome.failure};
    }
    if (!(par.metrics == base.metrics)) {
      std::ostringstream os;
      os << "metrics diverged under parallel engine (threads="
         << cfg.threads << " tile=" << cfg.tile_cols << "x" << cfg.tile_rows
         << "): base " << base.metrics.str() << " vs parallel "
         << par.metrics.str();
      return {false, "parallel", os.str()};
    }
  }
  return {};
}

FailureRecord FuzzRunner::report_failure(const Property& prop,
                                         const CaseInput& in,
                                         index_t case_index, Verdict first,
                                         bool check_metamorphic,
                                         bool check_ab,
                                         bool check_parallel) {
  FailureRecord rec;
  rec.property = prop.name;
  rec.case_index = case_index;
  {
    std::ostringstream os;
    os << config_.seed << ":" << case_index;
    if (check_parallel && first.kind == "parallel") {
      // Carry the engine shape so the replay reproduces the exact
      // thread/tile decomposition this failure was found under. Other
      // failure kinds reproduce without the engine, so their tokens
      // stay in the plain two-field form.
      os << ":t" << config_.parallel_threads << "x"
         << config_.parallel_tile_rows << "x" << config_.parallel_tile_cols;
    }
    rec.replay_token = os.str();
  }
  rec.kind = std::move(first.kind);
  rec.detail = std::move(first.detail);
  rec.original = in;

  // Shrink under the same checks that caught the failure. Fit mode is
  // paused so shrink candidates do not pollute the fitted ratios.
  const bool was_fitting = config_.fit;
  config_.fit = false;
  ShrinkStats stats;
  rec.shrunk = shrink_case(
      prop, in,
      [&](const CaseInput& cand) {
        return !evaluate(prop, cand, check_metamorphic, check_ab,
                         check_parallel)
                    .ok;
      },
      config_.shrink_attempts, &stats);
  config_.fit = was_fitting;
  rec.shrink_attempts = stats.attempts;
  return rec;
}

FuzzReport FuzzRunner::run(std::ostream& log) {
  FuzzReport report;
  const std::vector<const Property*> props = selected();
  if (props.empty()) {
    log << "fuzz: no properties selected\n";
    return report;
  }
  const auto start = std::chrono::steady_clock::now();
  for (index_t i = 0; i < config_.cases; ++i) {
    if (config_.time_budget_seconds > 0) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      if (elapsed.count() > config_.time_budget_seconds) {
        log << "fuzz: time budget (" << config_.time_budget_seconds
            << "s) reached after " << report.cases_run << " cases\n";
        break;
      }
    }
    const Property& prop =
        *props[static_cast<size_t>(i) % props.size()];
    const CaseInput in = generate_case(prop, i);
    if (prop.valid && !prop.valid(in)) {
      // A generator emitting invalid instances is itself a bug worth
      // seeing; count it (the smoke tier asserts zero skips).
      ++report.cases_skipped;
      log << "fuzz: SKIP invalid instance " << config_.seed << ":" << i
          << " " << prop.name << " " << in.str() << "\n";
      continue;
    }
    const bool meta = config_.metamorphic_every > 0 &&
                      i % config_.metamorphic_every == 0;
    const bool ab = config_.ab_every > 0 && i % config_.ab_every == 0;
    const bool par =
        config_.parallel_every > 0 && i % config_.parallel_every == 0;
    Verdict verdict = evaluate(prop, in, meta, ab, par);
    ++report.cases_run;
    ++report.per_property[prop.name];
    if (!verdict.ok) {
      FailureRecord rec =
          report_failure(prop, in, i, std::move(verdict), meta, ab, par);
      log << rec.str() << "\n";
      report.failures.push_back(std::move(rec));
    } else if (config_.verbose) {
      log << "ok " << config_.seed << ":" << i << " " << prop.name
          << " n=" << in.n << "\n";
    }
  }
  log << "fuzz: " << report.cases_run << " cases, " << report.failures.size()
      << " failures, " << report.cases_skipped << " skipped, "
      << report.per_property.size() << " properties\n";
  return report;
}

std::optional<FuzzReport> FuzzRunner::replay(const std::string& token,
                                             std::ostream& log) {
  const auto parsed = parse_replay_token(token);
  if (!parsed) return std::nullopt;
  const std::uint64_t seed = parsed->seed;
  const index_t index = parsed->case_index;
  config_.seed = seed;
  if (parsed->parallel) {
    config_.parallel_threads = parsed->parallel->threads;
    config_.parallel_tile_rows = parsed->parallel->tile_rows;
    config_.parallel_tile_cols = parsed->parallel->tile_cols;
  }
  const std::vector<const Property*> props = selected();
  FuzzReport report;
  if (props.empty()) {
    log << "fuzz: no properties selected\n";
    return report;
  }
  const Property& prop =
      *props[static_cast<size_t>(index) % props.size()];
  const CaseInput in = generate_case(prop, index);
  log << "replay " << token << " -> " << prop.name << " " << in.str()
      << "\n";
  if (prop.valid && !prop.valid(in)) {
    ++report.cases_skipped;
    log << "fuzz: instance invalid (generator bug?)\n";
    return report;
  }
  const bool meta = config_.metamorphic_every > 0 &&
                    index % config_.metamorphic_every == 0;
  const bool ab = config_.ab_every > 0 && index % config_.ab_every == 0;
  // A token suffix forces the parallel check under the carried shape;
  // plain tokens follow the cadence the main loop would have applied.
  const bool par = parsed->parallel.has_value() ||
                   (config_.parallel_every > 0 &&
                    index % config_.parallel_every == 0);
  Verdict verdict = evaluate(prop, in, meta, ab, par);
  ++report.cases_run;
  ++report.per_property[prop.name];
  if (!verdict.ok) {
    FailureRecord rec =
        report_failure(prop, in, index, std::move(verdict), meta, ab, par);
    log << rec.str() << "\n";
    report.failures.push_back(std::move(rec));
  } else {
    log << "replay " << token << ": PASS\n";
  }
  return report;
}

}  // namespace scm::testing
