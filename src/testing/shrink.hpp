// Greedy input minimization for failing fuzz cases.
//
// Given a failing CaseInput and a predicate that re-runs the case, the
// shrinker repeatedly tries simplifying transformations — halving the
// primary element sequence, dropping contiguous chunks (delta-debugging
// style), shrinking scalar parameters (n, steps, rank, seed), moving the
// grid origin to (0, 0), and canonicalizing values (rank-compressing keys
// toward small integers) — keeping any candidate that is still a valid
// instance (Property::valid) AND still fails. The result is the local
// minimum reached within the attempt budget; the loop is deterministic,
// so a shrunk input plus its replay token identifies the same minimal
// failure everywhere.
//
// Structural candidates are repaired with Property::rebuild (or the
// default repair) before validation, so geometry, ranks, and schedule
// shapes always match the new size.
#pragma once

#include "testing/property.hpp"

#include <functional>

namespace scm::testing {

/// Re-evaluates a candidate under the same checks that caught the original
/// failure; true when the candidate still fails.
using StillFails = std::function<bool(const CaseInput&)>;

/// Shrink-loop accounting for reports.
struct ShrinkStats {
  index_t attempts{0};  ///< candidates evaluated (valid ones)
  index_t accepted{0};  ///< candidates adopted (strict improvements)
};

/// The default structural repair used when Property::rebuild is null:
/// truncates keys/flags to n (or n to the key count), clamps the rank k
/// into [1, n], and rebuilds the canonical geometry of the same family at
/// the origin.
void default_rebuild(CaseInput& in);

/// Greedily minimizes `failing` (which must currently fail) under
/// `still_fails`, evaluating at most `max_attempts` candidates.
[[nodiscard]] CaseInput shrink_case(const Property& prop, CaseInput failing,
                                    const StillFails& still_fails,
                                    index_t max_attempts = 400,
                                    ShrinkStats* stats = nullptr);

}  // namespace scm::testing
