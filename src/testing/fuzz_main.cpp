// The fuzz driver binary.
//
//   scm_fuzz --seed=2026 --cases=520 --bounds=testing/bounds.json
//       the ctest smoke tier: N cases round-robin over the property
//       registry, functional + cost + conformance oracles per case,
//       metamorphic and bulk-A/B cadences, exit 1 on any failure.
//
//   scm_fuzz --time-budget=300 ...
//       the nightly tier: wall-clock budgeted instead of case-counted.
//
//   scm_fuzz --replay=<seed>:<case>[:t<threads>x<rows>x<cols>]
//       deterministically re-runs exactly one failing case from its token;
//       the optional suffix (emitted when a failure was found under the
//       sharded parallel engine) replays under that exact engine shape.
//       --parallel-every=N / --parallel-threads=T / --parallel-tile=WxH
//       tune the parallel-oracle cadence of the main loop (0 disables).
//
//   scm_fuzz --fit-bounds --bounds=testing/bounds.json --cases=4000 \
//       --fit-seeds=1,2,3
//       re-fits the certificate constants from scratch and writes the
//       bounds file (run after intentionally changing an algorithm's
//       cost). --fit-seeds runs one fitting pass per seed so the fitted
//       max ratios cover a wider tail than a single seed would.
//
// See docs/TESTING.md for the workflow.
#include "testing/bounds.hpp"
#include "testing/property.hpp"
#include "testing/runner.hpp"
#include "util/cli.hpp"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace {

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream is(csv);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scm::testing;
  scm::util::Cli cli(argc, argv);

  if (cli.has("list")) {
    const auto& props = all_properties();
    for (size_t i = 0; i < props.size(); ++i) {
      std::cout << i << "  " << props[i].name << "  (n in [" << props[i].min_n
                << ", " << props[i].max_n << "])\n";
    }
    cli.warn_unknown();
    return 0;
  }

  RunnerConfig config;
  config.seed = static_cast<std::uint64_t>(
      cli.get_int("seed", static_cast<std::int64_t>(config.seed)));
  config.cases = cli.get_int("cases", config.cases);
  config.time_budget_seconds =
      cli.get_double("time-budget", config.time_budget_seconds);
  config.max_n = cli.get_int("max-n", 0);
  config.metamorphic_every =
      cli.get_int("metamorphic-every", config.metamorphic_every);
  config.ab_every = cli.get_int("ab-every", config.ab_every);
  config.parallel_every =
      cli.get_int("parallel-every", config.parallel_every);
  config.parallel_threads = static_cast<int>(
      cli.get_int("parallel-threads", config.parallel_threads));
  if (const std::string tile = cli.get("parallel-tile", ""); !tile.empty()) {
    // WxH, matching SCM_TILE and ProfileSession's --tile.
    long long w = 0;
    long long h = 0;
    if (std::sscanf(tile.c_str(), "%lldx%lld", &w, &h) == 2 && w > 0 &&
        h > 0) {
      config.parallel_tile_cols = static_cast<scm::index_t>(w);
      config.parallel_tile_rows = static_cast<scm::index_t>(h);
    } else {
      std::cerr << "fuzz: bad --parallel-tile '" << tile
                << "' (expected WxH)\n";
      return 2;
    }
  }
  config.shrink_attempts =
      cli.get_int("shrink-attempts", config.shrink_attempts);
  config.fit = cli.has("fit-bounds");
  const std::vector<std::string> fit_seeds =
      split_csv(cli.get("fit-seeds", ""));
  config.only = split_csv(cli.get("props", ""));
  config.verbose = cli.has("verbose");
  const std::string bounds_path = cli.get("bounds", "");
  const std::string replay_token = cli.get("replay", "");
  const std::string out_path = cli.get("out", "");
  if (cli.warn_unknown() > 0) return 2;

  BoundSet bounds;
  if (!bounds_path.empty() && !config.fit) {
    std::optional<BoundSet> loaded = BoundSet::load(bounds_path);
    if (!loaded) {
      std::cerr << "fuzz: cannot load bound certificates from '"
                << bounds_path << "'\n";
      return 2;
    }
    bounds = std::move(*loaded);
  } else if (!config.fit) {
    std::cerr << "fuzz: no --bounds file given; cost certificates are OFF "
                 "(functional, conformance, metamorphic and A/B oracles "
                 "still apply)\n";
  }

  FuzzRunner runner(std::move(config), std::move(bounds));

  FuzzReport report;
  if (!replay_token.empty()) {
    std::optional<FuzzReport> replayed = runner.replay(replay_token,
                                                       std::cout);
    if (!replayed) {
      std::cerr << "fuzz: malformed replay token '" << replay_token
                << "' (expected <seed>:<case>[:t<threads>x<rows>x<cols>])\n";
      return 2;
    }
    report = std::move(*replayed);
  } else if (config.fit && !fit_seeds.empty()) {
    // One fitting pass per master seed: the constants keep the max ratio
    // across all passes, so the fit covers a wider tail of the per-case
    // ratio distribution than any single seed would.
    for (const std::string& seed_str : fit_seeds) {
      std::uint64_t seed = 0;
      try {
        size_t used = 0;
        seed = std::stoull(seed_str, &used);
        if (used != seed_str.size()) throw std::invalid_argument(seed_str);
      } catch (...) {
        std::cerr << "fuzz: bad seed '" << seed_str << "' in --fit-seeds\n";
        return 2;
      }
      runner.set_seed(seed);
      std::cout << "fuzz: fitting pass, seed " << seed << "\n";
      FuzzReport pass = runner.run(std::cout);
      report.cases_run += pass.cases_run;
      report.cases_skipped += pass.cases_skipped;
      for (auto& [name, count] : pass.per_property) {
        report.per_property[name] += count;
      }
      for (FailureRecord& rec : pass.failures) {
        report.failures.push_back(std::move(rec));
      }
    }
  } else {
    report = runner.run(std::cout);
  }

  if (cli.has("fit-bounds")) {
    if (bounds_path.empty()) {
      std::cerr << "fuzz: --fit-bounds needs --bounds=<path> to write\n";
      return 2;
    }
    if (!runner.bounds().save(bounds_path)) {
      std::cerr << "fuzz: cannot write '" << bounds_path << "'\n";
      return 2;
    }
    std::cout << "fuzz: fitted " << runner.bounds().certificates().size()
              << " certificates -> " << bounds_path << "\n";
  }

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "fuzz: cannot write artifact file '" << out_path << "'\n";
      return 2;
    }
    if (report.ok()) {
      out << "no failures\n";
    } else {
      for (const FailureRecord& rec : report.failures) {
        out << rec.str() << "\n\n";
      }
    }
  }

  return report.ok() && report.cases_skipped == 0 ? 0 : 1;
}
